// Command quickstart is the smallest complete EnTK application on the
// graph API: the paper's character-count workload (Section IV-A) as 16
// two-stage pipelines — stage 1 creates a 10 MB file per pipeline
// (mkfile), stage 2 counts its characters (ccount) — built as explicit
// entk.Pipeline values and executed concurrently by one AppManager on
// an XSEDE Comet allocation. The program prints the campaign's TTC
// decomposition and one pipeline's report.
//
// The same workload fits the classic pattern API in a few lines
// (&entk.EnsembleOfPipelines{Pipelines: 16, Stages: 2, ...} through
// handle.Execute — see examples/pipeline-bioinfo for a full pattern-API
// application); patterns lower onto exactly this graph.
package main

import (
	"fmt"
	"log"
	"time"

	"entk"
)

func main() {
	v := entk.NewClock()

	handle, err := entk.NewResourceHandle("xsede.comet", 16, time.Hour, entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("resource handle: %v", err)
	}

	pipelines := make([]*entk.Pipeline, 16)
	for i := range pipelines {
		file := fmt.Sprintf("file-%02d.dat", i+1)
		pipelines[i] = &entk.Pipeline{
			Name: fmt.Sprintf("sample-%02d", i+1),
			Stages: []*entk.Stage{
				{Name: "mkfile", Tasks: []entk.Task{{
					Name: "mkfile." + file,
					Kernel: &entk.Kernel{
						Name:   "misc.mkfile",
						Args:   []string{"of=" + file},
						Params: map[string]float64{"size_mb": 10},
					},
				}}},
				{Name: "ccount", Tasks: []entk.Task{{
					Name: "ccount." + file,
					Kernel: &entk.Kernel{
						Name:   "misc.ccount",
						Args:   []string{file},
						Params: map[string]float64{"size_mb": 10},
					},
				}}},
			},
		}
	}

	var campaign *entk.CampaignReport
	v.Run(func() {
		if err = handle.Allocate(); err != nil {
			return
		}
		campaign, err = entk.NewAppManager(handle).Run(pipelines...)
		if derr := handle.Deallocate(); err == nil {
			err = derr
		}
	})
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Println("quickstart: 16 concurrent 2-stage pipelines on", campaign.Campaign.Resource)
	fmt.Printf("campaign: %d tasks in %.1fs simulated\n",
		campaign.Campaign.Tasks, campaign.Campaign.TTC.Seconds())
	fmt.Print(campaign.Pipelines[0])
}
