// Command quickstart is the smallest complete EnTK application on the
// graph API: the paper's character-count workload (Section IV-A) as 16
// two-stage pipelines — stage 1 creates a 10 MB file per pipeline
// (mkfile), stage 2 counts its characters (ccount) — built as explicit
// entk.Pipeline values and executed concurrently by one AppManager on
// an XSEDE Comet allocation. The program prints the campaign's TTC
// decomposition and one pipeline's report, then runs the SAME
// pipelines, unchanged, as a two-machine campaign on an
// entk.ResourceSet — the paper's core claim (workload description
// decoupled from resource acquisition) as a dozen lines: a second
// pilot joins, a tag-affinity policy pins the tagged analysis
// pipelines to it while untagged work late-binds across both machines,
// and the campaign report grows per-pilot utilization columns.
//
// The same workload fits the classic pattern API in a few lines
// (&entk.EnsembleOfPipelines{Pipelines: 16, Stages: 2, ...} through
// handle.Execute — see examples/pipeline-bioinfo for a full pattern-API
// application); patterns lower onto exactly this graph.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"entk"
)

// buildPipelines describes the workload once; both the single-pilot and
// the two-machine run execute these same values. tagEvery > 0 tags
// every n-th pipeline's kernels "analysis", the hook the two-machine
// variant's tag-affinity placement routes by (untagged runs ignore
// tags entirely).
func buildPipelines(tagEvery int) []*entk.Pipeline {
	pipelines := make([]*entk.Pipeline, 16)
	for i := range pipelines {
		file := fmt.Sprintf("file-%02d.dat", i+1)
		var tags []string
		if tagEvery > 0 && (i+1)%tagEvery == 0 {
			tags = []string{"analysis"}
		}
		pipelines[i] = &entk.Pipeline{
			Name: fmt.Sprintf("sample-%02d", i+1),
			Stages: []*entk.Stage{
				{Name: "mkfile", Tasks: []entk.Task{{
					Name: "mkfile." + file,
					Kernel: &entk.Kernel{
						Name:   "misc.mkfile",
						Args:   []string{"of=" + file},
						Params: map[string]float64{"size_mb": 10},
						Tags:   tags,
					},
				}}},
				{Name: "ccount", Tasks: []entk.Task{{
					Name: "ccount." + file,
					Kernel: &entk.Kernel{
						Name:   "misc.ccount",
						Args:   []string{file},
						Params: map[string]float64{"size_mb": 10},
						Tags:   tags,
					},
				}}},
			},
		}
	}
	return pipelines
}

func main() {
	// --- Single-pilot campaign: one handle, one machine. ---
	v := entk.NewClock()
	handle, err := entk.NewResourceHandle("xsede.comet", 16, time.Hour, entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("resource handle: %v", err)
	}

	var campaign *entk.CampaignReport
	v.Run(func() {
		if err = handle.Allocate(); err != nil {
			return
		}
		campaign, err = entk.NewAppManager(handle).Run(buildPipelines(0)...)
		if derr := handle.Deallocate(); err == nil {
			err = derr
		}
	})
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Println("quickstart: 16 concurrent 2-stage pipelines on", campaign.Campaign.Resource)
	fmt.Printf("campaign: %d tasks in %.1fs simulated\n",
		campaign.Campaign.Tasks, campaign.Campaign.TTC.Seconds())
	fmt.Print(campaign.Pipelines[0])

	// --- Two-machine campaign: the same pipelines, late-bound across a
	// ResourceSet. Every 4th pipeline is tagged "analysis" and is
	// guaranteed to land on the SuperMIC pilot; untagged work
	// late-binds round-robin across both machines. ---
	v2 := entk.NewClock()
	set, err := entk.NewResourceSet([]entk.PilotSpec{
		{Resource: "xsede.comet", Cores: 16, Walltime: time.Hour},
		{Resource: "lsu.supermic", Cores: 8, Walltime: time.Hour, Tags: []string{"analysis"}},
	}, entk.Config{Clock: v2})
	if err != nil {
		log.Fatalf("resource set: %v", err)
	}
	set.Placement = entk.PlaceTagAffinity(nil)

	var twoSite *entk.CampaignReport
	v2.Run(func() {
		if err = set.Allocate(); err != nil {
			return
		}
		twoSite, err = entk.NewAppManager(set).Run(buildPipelines(4)...)
		if derr := set.Deallocate(); err == nil {
			err = derr
		}
	})
	if err != nil {
		log.Fatalf("two-machine campaign: %v", err)
	}

	fmt.Println("\nquickstart: the same 16 pipelines across", twoSite.Campaign.Resource)
	fmt.Printf("campaign: %d tasks in %.1fs simulated\n",
		twoSite.Campaign.Tasks, twoSite.Campaign.TTC.Seconds())
	for _, u := range twoSite.Pilots {
		tags := strings.Join(u.Tags, ",")
		if tags == "" {
			tags = "-"
		}
		fmt.Printf("  pilot %d  %-14s tags=%-9s units=%3d  busy=%6.1fs  util=%.3f\n",
			u.Pilot, u.Resource, tags, u.Units, u.CoreBusy.Seconds(), u.Utilization)
	}
}
