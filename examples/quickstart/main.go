// Command quickstart is the smallest complete EnTK application: the
// paper's character-count workload (Section IV-A) as an ensemble of 16
// two-stage pipelines on XSEDE Comet. Stage 1 creates a 10 MB file per
// pipeline (mkfile); stage 2 counts its characters (ccount). The program
// prints the TTC decomposition the toolkit reports.
package main

import (
	"fmt"
	"log"
	"time"

	"entk"
)

func main() {
	v := entk.NewClock()

	handle, err := entk.NewResourceHandle("xsede.comet", 16, time.Hour, entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("resource handle: %v", err)
	}

	pattern := &entk.EnsembleOfPipelines{
		Pipelines: 16,
		Stages:    2,
		StageKernel: func(stage, pipe int) *entk.Kernel {
			if stage == 1 {
				return &entk.Kernel{
					Name:   "misc.mkfile",
					Args:   []string{fmt.Sprintf("of=file-%02d.dat", pipe)},
					Params: map[string]float64{"size_mb": 10},
				}
			}
			return &entk.Kernel{
				Name:   "misc.ccount",
				Args:   []string{fmt.Sprintf("file-%02d.dat", pipe)},
				Params: map[string]float64{"size_mb": 10},
			}
		},
	}

	var report *entk.Report
	v.Run(func() {
		report, err = handle.Execute(pattern)
	})
	if err != nil {
		log.Fatalf("execute: %v", err)
	}

	fmt.Println("quickstart: 16 pipelines x 2 stages on", report.Resource)
	fmt.Print(report)
}
