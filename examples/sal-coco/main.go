// Command sal-coco runs the iterative collective-coordinates workflow of
// the paper's Figures 7 and 8 (Amber simulations + CoCo analysis in a
// Simulation-Analysis Loop) with the analysis doing real numerics: every
// simulation task generates an actual Langevin trajectory on a double-well
// potential, and each analysis task pools all frames, runs PCA (CoCo),
// and places the next iteration's start points beyond the sampled
// extremes. The program reports how CoCo-directed restarts improve
// coverage of the second free-energy basin across iterations.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"entk"
	"entk/internal/linalg"
	"entk/internal/md"
)

const (
	simulations = 16
	iterations  = 4
	framesPer   = 400
	tempK       = 300.0
)

func main() {
	sys := md.AlanineDipeptide

	// All walkers start in the left basin; low temperature means they
	// rarely cross on their own — exactly the sampling problem CoCo
	// attacks.
	var mu sync.Mutex
	starts := make([][]float64, simulations)
	for i := range starts {
		starts[i] = make([]float64, sys.Dim)
		starts[i][0] = -1
	}
	var pooled []*linalg.Matrix

	v := entk.NewClock()
	handle, err := entk.NewResourceHandle("xsede.stampede", simulations, 24*time.Hour,
		entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("resource handle: %v", err)
	}

	pattern := &entk.SimulationAnalysisLoop{
		Iterations:  iterations,
		Simulations: simulations,
		Analyses:    1,
		SimulationKernel: func(iter, inst int) *entk.Kernel {
			return &entk.Kernel{
				Name:   "md.amber",
				Params: map[string]float64{"atoms": float64(sys.Atoms), "ps": 0.6},
				Work: func() error {
					mu.Lock()
					start := append([]float64(nil), starts[inst-1]...)
					mu.Unlock()
					traj, err := md.Trajectory(sys, start, framesPer, tempK,
						int64(iter*1000+inst))
					if err != nil {
						return err
					}
					mu.Lock()
					pooled = append(pooled, traj)
					mu.Unlock()
					return nil
				},
			}
		},
		AnalysisKernel: func(iter, inst int) *entk.Kernel {
			return &entk.Kernel{
				Name:   "ana.coco",
				Params: map[string]float64{"sims": simulations, "dims": float64(sys.Dim)},
				Work: func() error {
					mu.Lock()
					defer mu.Unlock()
					all, err := md.Concat(pooled)
					if err != nil {
						return err
					}
					res, err := md.CoCo(all, 2, simulations)
					if err != nil {
						return err
					}
					left, right := md.BasinFractions(all)
					fmt.Printf("iteration %d: %5d frames pooled, basin occupancy L=%.2f R=%.2f, PC1 var %.3f\n",
						iter, all.Rows, left, right, res.Values[0])
					// CoCo directs the next iteration's walkers to the
					// unexplored corners.
					copy(starts, res.StartPoints[:simulations])
					return nil
				},
			}
		},
	}

	var report *entk.Report
	v.Run(func() {
		report, err = handle.Execute(pattern)
	})
	if err != nil {
		log.Fatalf("execute: %v", err)
	}

	all, err := md.Concat(pooled)
	if err != nil {
		log.Fatalf("concat: %v", err)
	}
	left, right := md.BasinFractions(all)
	fmt.Printf("\nfinal sampling after %d iterations: left basin %.2f, right basin %.2f\n",
		iterations, left, right)
	if right == 0 {
		fmt.Println("warning: CoCo never reached the second basin")
	}
	fmt.Println()
	fmt.Print(report)
}
