// Command pipeline-bioinfo shows the toolkit on a domain outside
// molecular science (the paper's intro motivates bioinformatics among
// others): a de-novo transcriptome assembly campaign as an ensemble of
// three-stage pipelines (align -> assemble -> annotate), with custom
// kernel plugins, per-task data staging, and fault tolerance — every
// fifth sample's assembler crashes on its first attempt and the toolkit
// retries it transparently.
package main

import (
	"fmt"
	"log"
	"time"

	"entk"
)

const samples = 20

// registry builds the custom bioinformatics kernel plugins. Cost models
// follow the usual shapes: alignment scales with reads, assembly is the
// heavyweight step, annotation is cheap.
func registry() (*entk.KernelRegistry, error) {
	reg := entk.NewKernelRegistry()
	specs := []*entk.KernelSpec{
		{
			Name:          "bio.align",
			Description:   "align reads against the reference",
			Executables:   map[string]string{"*": "/opt/bio/bin/bwa"},
			DefaultParams: map[string]float64{"reads_m": 10},
			Cost: func(p map[string]float64, cores int, m *entk.Machine) time.Duration {
				return time.Duration(p["reads_m"] * 8 / float64(cores) * float64(time.Second))
			},
		},
		{
			Name:          "bio.assemble",
			Description:   "de-novo assembly of aligned reads",
			Executables:   map[string]string{"*": "/opt/bio/bin/trinity"},
			DefaultParams: map[string]float64{"reads_m": 10},
			Cost: func(p map[string]float64, cores int, m *entk.Machine) time.Duration {
				sec := 30 + p["reads_m"]*20/float64(cores)
				return time.Duration(sec * float64(time.Second))
			},
		},
		{
			Name:          "bio.annotate",
			Description:   "annotate assembled transcripts",
			Executables:   map[string]string{"*": "/opt/bio/bin/annot"},
			DefaultParams: map[string]float64{"transcripts_k": 50},
			Cost: func(p map[string]float64, cores int, m *entk.Machine) time.Duration {
				return time.Duration(p["transcripts_k"] / 10 * float64(time.Second))
			},
		},
	}
	for _, s := range specs {
		if err := reg.Register(s); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

func main() {
	reg, err := registry()
	if err != nil {
		log.Fatalf("kernel registry: %v", err)
	}

	v := entk.NewClock()
	handle, err := entk.NewResourceHandle("xsede.comet", 4*24, 12*time.Hour, entk.Config{
		Clock:      v,
		Cost:       reg,
		MaxRetries: 2,
	})
	if err != nil {
		log.Fatalf("resource handle: %v", err)
	}

	pattern := &entk.EnsembleOfPipelines{
		Pipelines: samples,
		Stages:    3,
		StageKernel: func(stage, sample int) *entk.Kernel {
			reads := float64(5 + sample%7) // heterogeneous sample sizes
			switch stage {
			case 1:
				return &entk.Kernel{
					Name:   "bio.align",
					Params: map[string]float64{"reads_m": reads},
					Cores:  4,
					MPI:    true,
					InputStaging: []entk.StagingDirective{
						{Op: entk.StageUpload, Source: fmt.Sprintf("sample-%02d.fastq", sample), SizeMB: reads * 100},
					},
				}
			case 2:
				k := &entk.Kernel{
					Name:   "bio.assemble",
					Params: map[string]float64{"reads_m": reads},
					Cores:  8,
					MPI:    true,
				}
				if sample%5 == 0 {
					// Flaky assembler: first attempt segfaults; the
					// toolkit's retry layer resubmits it.
					k.FailOn = func(attempt int) bool { return attempt == 0 }
				}
				return k
			default:
				return &entk.Kernel{
					Name:   "bio.annotate",
					Params: map[string]float64{"transcripts_k": 30 + reads*5},
					OutputStaging: []entk.StagingDirective{
						{Op: entk.StageDownload, Source: fmt.Sprintf("annot-%02d.gff", sample), SizeMB: 5},
					},
				}
			}
		},
	}

	var report *entk.Report
	v.Run(func() {
		report, err = handle.Execute(pattern)
	})
	if err != nil {
		log.Fatalf("execute: %v", err)
	}

	fmt.Printf("transcriptome campaign: %d samples x 3 stages\n", samples)
	fmt.Printf("tasks: %d, transparent retries after injected crashes: %d\n",
		report.Tasks, report.Retries)
	fmt.Println()
	fmt.Print(report)
}
