// Command replica-exchange runs temperature-exchange REMD of solvated
// alanine dipeptide with the Ensemble Exchange pattern — the workload of
// the paper's Figures 5 and 6 at laptop scale (16 replicas, 5 cycles on
// SuperMIC). The exchange decisions are real: after every cycle the
// in-framework exchange logic samples replica energies and applies the
// Metropolis criterion (internal/md), so the program reports a physical
// acceptance ratio and the temperature walk of replica 0.
package main

import (
	"fmt"
	"log"
	"time"

	"entk"
	"entk/internal/md"
)

const (
	replicas = 16
	cycles   = 5
	tMin     = 300 // K
	tMax     = 600 // K
)

func main() {
	ensemble, err := md.NewEnsemble(replicas, tMin, tMax, md.AlanineDipeptide.Atoms, 2016)
	if err != nil {
		log.Fatalf("ensemble: %v", err)
	}

	v := entk.NewClock()
	handle, err := entk.NewResourceHandle("lsu.supermic", replicas, 12*time.Hour, entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("resource handle: %v", err)
	}

	tempWalk := []float64{ensemble.Temperatures()[0]}
	pattern := &entk.EnsembleExchange{
		Replicas: replicas,
		Cycles:   cycles,
		SimulationKernel: func(cycle, r int) *entk.Kernel {
			// Each replica runs 6 ps of Amber MD at its current ladder
			// temperature before the exchange.
			return &entk.Kernel{
				Name: "md.amber",
				Args: []string{"-i", "md.in", "-p", "ala.top"},
				Params: map[string]float64{
					"atoms": float64(md.AlanineDipeptide.Atoms),
					"ps":    6,
					"temp":  ensemble.Temperatures()[r-1],
				},
			}
		},
		ExchangeKernel: func(cycle int) *entk.Kernel {
			return &entk.Kernel{
				Name:   "md.remd_exchange",
				Params: map[string]float64{"replicas": replicas},
			}
		},
		ExchangeLogic: func(cycle int) {
			// The real science: sample energies for the cycle and apply
			// Metropolis swaps between ladder neighbours.
			ensemble.SampleEnergies()
			swaps := ensemble.ExchangeSweep(cycle)
			tempWalk = append(tempWalk, ensemble.Temperatures()[0])
			fmt.Printf("cycle %d: %2d swaps accepted, acceptance so far %.2f\n",
				cycle, len(swaps), ensemble.AcceptanceRatio())
		},
	}

	var report *entk.Report
	v.Run(func() {
		report, err = handle.Execute(pattern)
	})
	if err != nil {
		log.Fatalf("execute: %v", err)
	}

	fmt.Printf("\nREMD of %s: %d replicas x %d cycles\n",
		md.AlanineDipeptide.Name, replicas, cycles)
	fmt.Printf("overall exchange acceptance ratio: %.2f\n", ensemble.AcceptanceRatio())
	fmt.Printf("temperature walk of replica 0 (K):")
	for _, t := range tempWalk {
		fmt.Printf(" %.0f", t)
	}
	fmt.Println()
	fmt.Println()
	fmt.Print(report)
}
