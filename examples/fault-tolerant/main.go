// Command fault-tolerant demonstrates the toolkit's robustness layer in
// two acts.
//
// Act 1 — fault injection and unit rebinding: a two-pilot campaign with
// ResourceSet.Rebind enabled loses one pilot mid-execution to an
// injected fault (ResourceSet.Faults schedules it at an exact virtual
// instant, so the run is reproducible). The dying pilot's in-flight and
// queued units are RETURNED, not failed: the unit manager re-places
// them on the survivor and the campaign completes every task with zero
// retries — just later, and with the per-pilot utilization rows showing
// the work shifted.
//
// Act 2 — checkpoint and resume: a single-pilot campaign is killed
// mid-stage-2 with no recovery installed, so it settles as a partial
// failure. The AppManager's always-on campaign tracker holds the last
// stage-barrier snapshot; we persist it with entk.SaveCheckpoint (the
// run's profile trace rides in the same stream), reload it, and
// entk.Resume the same pipeline on a fresh allocation — the settled
// stage prefix is skipped and the final report agrees with an
// uninterrupted run on every reorder-invariant column.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"entk"
)

// buildPipeline is the shared workload: stages of 600s single-core
// tasks, long enough that an injected fault lands mid-execution.
func buildPipeline(name string, width, depth int) *entk.Pipeline {
	kernel := &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 600}}
	stages := make([]*entk.Stage, depth)
	for s := range stages {
		tasks := make([]entk.Task, width)
		for i := range tasks {
			tasks[i] = entk.Task{Kernel: kernel}
		}
		stages[s] = &entk.Stage{Tasks: tasks}
	}
	return &entk.Pipeline{Name: name, Stages: stages}
}

func main() {
	// --- Act 1: kill a pilot mid-wave, rebind its units, finish. ---
	v := entk.NewClock()
	set, err := entk.NewResourceSet([]entk.PilotSpec{
		{Resource: "xsede.comet", Cores: 24, Walltime: 10 * time.Hour},
		{Resource: "xsede.comet", Cores: 24, Walltime: 10 * time.Hour},
	}, entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("resource set: %v", err)
	}
	set.Rebind = true // displaced units re-place instead of failing
	set.Faults = &entk.FaultPlan{Faults: []entk.FaultSpec{
		// Both pilots activate at ~90.5s (60.5s queue + 30s boot); the
		// 600s wave is in full flight at 400s when pilot 1 dies.
		{At: 400 * time.Second, Pilot: 1, Kind: entk.FaultKillPilot},
	}}

	var camp *entk.CampaignReport
	v.Run(func() {
		if err = set.Allocate(); err != nil {
			return
		}
		camp, err = entk.NewAppManager(set).Run(buildPipeline("ensemble", 32, 2))
		if derr := set.Deallocate(); err == nil {
			err = derr
		}
	})
	if err != nil {
		log.Fatalf("rebind campaign: %v", err)
	}
	fmt.Println("act 1: two-pilot campaign, pilot 1 killed at t=400s, units rebound")
	fmt.Printf("campaign: %d/%d tasks, %d retries, TTC %.1fs simulated\n",
		camp.Campaign.Tasks, camp.Campaign.PlannedTasks, camp.Campaign.Retries,
		camp.Campaign.TTC.Seconds())
	for _, u := range camp.Pilots {
		fmt.Printf("  pilot %d  units=%2d  busy=%7.1fs\n",
			u.Pilot, u.Units, u.CoreBusy.Seconds())
	}
	fmt.Println("  (the survivor absorbed every displaced unit)")

	// --- Act 2: no recovery — checkpoint the partial campaign, resume
	// it on a fresh allocation. ---
	v2 := entk.NewClock()
	single, err := entk.NewResourceSet([]entk.PilotSpec{
		{Resource: "xsede.comet", Cores: 24, Walltime: 10 * time.Hour},
	}, entk.Config{Clock: v2})
	if err != nil {
		log.Fatalf("resource set: %v", err)
	}
	// Stage 1 settles at ~693s; the kill at 800s lands mid stage 2.
	single.Faults = &entk.FaultPlan{Faults: []entk.FaultSpec{
		{At: 800 * time.Second, Pilot: 0, Kind: entk.FaultKillPilot},
	}}
	am := entk.NewAppManager(single)
	var runErr error
	v2.Run(func() {
		if err := single.Allocate(); err != nil {
			runErr = err
			return
		}
		_, runErr = am.Run(buildPipeline("campaign", 16, 3))
		single.Deallocate()
	})
	fmt.Printf("\nact 2: single pilot killed mid stage 2 — run failed as expected: %v\n", runErr != nil)

	// Persist the checkpoint (with the run's trace) and reload it — in a
	// real application this buffer is a file that survives the process.
	cp := am.Checkpoint()
	var file bytes.Buffer
	if err := entk.SaveCheckpoint(&file, cp, single.Session().Prof); err != nil {
		log.Fatalf("save checkpoint: %v", err)
	}
	restored, err := entk.LoadCheckpoint(bytes.NewReader(file.Bytes()), nil)
	if err != nil {
		log.Fatalf("load checkpoint: %v", err)
	}
	pc := restored.Pipeline("campaign")
	fmt.Printf("checkpoint: %d bytes, pipeline %q settled %d/3 stages (%d tasks done)\n",
		file.Len(), pc.Name, pc.SettledStages, pc.Tasks)

	// Resume on a fresh clock and allocation: the settled prefix is
	// skipped, only stages 2-3 run again.
	v3 := entk.NewClock()
	fresh, err := entk.NewResourceSet([]entk.PilotSpec{
		{Resource: "xsede.comet", Cores: 24, Walltime: 10 * time.Hour},
	}, entk.Config{Clock: v3})
	if err != nil {
		log.Fatalf("resource set: %v", err)
	}
	var resumed *entk.CampaignReport
	v3.Run(func() {
		if err = fresh.Allocate(); err != nil {
			return
		}
		resumed, err = entk.Resume(fresh, restored, buildPipeline("campaign", 16, 3))
		if derr := fresh.Deallocate(); err == nil {
			err = derr
		}
	})
	if err != nil {
		log.Fatalf("resume: %v", err)
	}
	fmt.Printf("resumed: %d/%d tasks, %d retries, remainder TTC %.1fs simulated\n",
		resumed.Campaign.Tasks, resumed.Campaign.PlannedTasks, resumed.Campaign.Retries,
		resumed.Campaign.TTC.Seconds())
	for _, ph := range resumed.Pipelines[0].Phases {
		fmt.Printf("  %-8s busy=%7.1fs tasks=%2d\n", ph.Name, ph.Busy.Seconds(), ph.Tasks)
	}
}
