package entk_test

import (
	"testing"
	"time"

	"entk"
)

func TestQuickstartThroughPublicAPI(t *testing.T) {
	v := entk.NewClock()
	h, err := entk.NewResourceHandle("xsede.comet", 24, time.Hour, entk.Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	pattern := &entk.EnsembleOfPipelines{
		Pipelines: 12,
		Stages:    2,
		StageKernel: func(stage, pipe int) *entk.Kernel {
			if stage == 1 {
				return &entk.Kernel{Name: "misc.mkfile", Params: map[string]float64{"size_mb": 10}}
			}
			return &entk.Kernel{Name: "misc.ccount", Params: map[string]float64{"size_mb": 10}}
		},
	}
	var rep *entk.Report
	v.Run(func() {
		rep, err = h.Execute(pattern)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 24 {
		t.Errorf("tasks = %d, want 24", rep.Tasks)
	}
	if rep.TTC <= 0 || rep.CoreOverhead <= 0 {
		t.Errorf("report incomplete: %s", rep)
	}
}

func TestResourcesListsPaperMachines(t *testing.T) {
	names := entk.Resources()
	want := map[string]bool{"xsede.comet": false, "xsede.stampede": false, "lsu.supermic": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Resources() missing %s", n)
		}
	}
}

func TestRegisterCustomResource(t *testing.T) {
	m := &entk.Machine{
		Name: "campus.cluster", Nodes: 10, CoresPerNode: 32,
		FSBandwidthMBps: 100,
	}
	if err := entk.RegisterResource(m); err != nil {
		t.Fatal(err)
	}
	got, err := entk.LookupResource("campus.cluster")
	if err != nil || got.CoresPerNode != 32 {
		t.Fatalf("lookup = %v, %v", got, err)
	}

	v := entk.NewClock()
	h, err := entk.NewResourceHandle("campus.cluster", 64, time.Hour, entk.Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	var rep *entk.Report
	v.Run(func() {
		rep, err = h.Execute(&entk.SimulationAnalysisLoop{
			Iterations:  1,
			Simulations: 4,
			Analyses:    1,
			SimulationKernel: func(int, int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}}
			},
			AnalysisKernel: func(int, int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}}
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resource != "campus.cluster" {
		t.Errorf("report resource = %q", rep.Resource)
	}
}

func TestCustomKernelRegistry(t *testing.T) {
	reg := entk.NewKernelRegistry()
	spec := &entk.KernelSpec{
		Name:        "custom.tool",
		Executables: map[string]string{"*": "/bin/tool"},
		Cost: func(p map[string]float64, cores int, m *entk.Machine) time.Duration {
			return time.Duration(p["n"]) * time.Second
		},
		DefaultParams: map[string]float64{"n": 3},
	}
	if err := reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	v := entk.NewClock()
	h, err := entk.NewResourceHandle("xsede.comet", 4, time.Hour, entk.Config{Clock: v, Cost: reg})
	if err != nil {
		t.Fatal(err)
	}
	var rep *entk.Report
	v.Run(func() {
		rep, err = h.Execute(&entk.EnsembleOfPipelines{
			Pipelines: 1, Stages: 1,
			StageKernel: func(int, int) *entk.Kernel {
				return &entk.Kernel{Name: "custom.tool"}
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Phase("stage.1").Busy; got != 3*time.Second {
		t.Errorf("custom kernel busy = %v, want 3s", got)
	}
}
