// Package entk is the public API of the Ensemble Toolkit reproduction: a
// Go implementation of "Ensemble Toolkit: Scalable and Flexible Execution
// of Ensembles of Tasks" (Balasubramanian et al., ICPP 2016), grown past
// the paper's three fixed patterns into an explicit task-graph toolkit.
//
// The primary vocabulary is the graph model: a Task names a kernel
// invocation, a Stage is a set of tasks with a barrier (and an optional
// PostStage hook that may grow or prune the graph at runtime — the
// adaptivity the paper plans in Section V), a Pipeline is an ordered
// sequence of stages, and an AppManager executes any number of
// heterogeneous pipelines concurrently on one resource handle:
//
//	v := entk.NewClock()
//	h, err := entk.NewResourceHandle("xsede.comet", 48, time.Hour, entk.Config{Clock: v})
//	if err != nil { ... }
//	wide := &entk.Pipeline{Name: "wide", Stages: []*entk.Stage{
//		{Tasks: tasks("md.amber", 32)},
//		{Tasks: tasks("ana.coco", 32)},
//	}}
//	narrow := &entk.Pipeline{Name: "narrow", Stages: []*entk.Stage{
//		{Tasks: tasks("md.gromacs", 4)},
//	}}
//	var camp *entk.CampaignReport
//	v.Run(func() {
//		if err = h.Allocate(); err != nil { return }
//		camp, err = entk.NewAppManager(h).Run(wide, narrow)
//		h.Deallocate()
//	})
//
// Resource binding is decoupled from the workload description — the
// paper's core claim. A campaign written once against the graph API
// runs unchanged on a single pilot (ResourceHandle, as above) or on an
// entk.ResourceSet spanning several machines, with every task
// late-bound to whichever pilot the placement policy selects at
// dispatch time (round-robin, least-loaded-by-free-cores, or tag
// affinity routing e.g. MPI-wide tasks to the wide-node machine):
//
//	set, err := entk.NewResourceSet([]entk.PilotSpec{
//		{Resource: "xsede.comet", Cores: 48, Walltime: time.Hour},
//		{Resource: "xsede.stampede", Cores: 64, Walltime: time.Hour, Tags: []string{"mpi"}},
//	}, entk.Config{Clock: v})
//	set.Placement = entk.PlaceTagAffinity(nil)
//	// ... set.Allocate(); entk.NewAppManager(set).Run(pipelines...)
//
// The campaign report then carries per-pilot utilization columns next
// to the per-pipeline TTC decompositions, and a shared submission
// batcher coalesces the live pipelines' waves at the unit manager.
//
// The paper's execution patterns (EnsembleOfPipelines, EnsembleExchange,
// SimulationAnalysisLoop, and the higher-order Composite) remain the
// concise front door for the classic scenarios; they are now thin
// constructors that *lower* onto the graph model and run through the
// same executor (ResourceHandle.Execute / Run). The seed pattern
// executor is kept as a reference path (Config.Exec = ExecRef) and the
// graph-parity tests pin both paths to bit-identical reports.
//
// Execution happens on a simulated HPC testbed (batch queues, pilot
// agents, data staging) driven by a virtual clock, so thousand-core
// experiments complete in milliseconds while preserving the concurrency
// structure of the real system. The same campaign also runs for real:
// NewWallClock returns the wall-clock implementation of the Clock
// interface, and a Config.Runtime.Runner (the local process executor
// behind cmd/entk-run -mode=real) execs kernels that carry an
// Executable as OS processes — same event vocabulary, same reports,
// over wall instants. Real mode is not bit-reproducible; see DESIGN.md
// §15 for the determinism contract, and DESIGN.md generally for the
// substitution map against the paper's physical testbed and the graph
// model's lowering table.
package entk

import (
	"io"
	"time"

	"entk/internal/core"
	"entk/internal/kernels"
	"entk/internal/pilot"
	"entk/internal/profile"
	"entk/internal/stage"
	"entk/internal/vclock"
)

// Version identifies this release of the toolkit reproduction.
const Version = "1.5.0"

// Re-exported user-facing types. The implementations live in
// internal/core (the toolkit) and internal supporting packages.
type (
	// Kernel instantiates a kernel plugin for one task.
	Kernel = core.Kernel
	// Config carries toolkit configuration.
	Config = core.Config
	// ResourceHandle allocates resources and runs patterns — the classic
	// single-pilot binding, now a compatibility shim over a one-spec
	// ResourceSet.
	ResourceHandle = core.ResourceHandle
	// ResourceSet acquires an ordered set of pilots on (possibly
	// different) machines behind one session; campaigns late-bind each
	// task to whichever pilot the placement policy selects.
	ResourceSet = core.ResourceSet
	// PilotSpec requests one pilot of a resource set.
	PilotSpec = core.PilotSpec
	// Binding is what AppManager acquires resources through: a
	// *ResourceHandle or a *ResourceSet.
	Binding = core.Binding
	// PlacementPolicy late-binds each unit to a pilot of a set.
	PlacementPolicy = pilot.PlacementPolicy
	// PilotUtilization is one pilot's share of a campaign
	// (CampaignReport.Pilots).
	PilotUtilization = core.PilotUtilization
	// FaultPlan schedules deterministic failure injection against a
	// resource set (ResourceSet.Faults).
	FaultPlan = pilot.FaultPlan
	// FaultSpec is one scheduled fault of a plan.
	FaultSpec = pilot.Fault
	// FaultKind selects what a scheduled fault does.
	FaultKind = pilot.FaultKind
	// CampaignCheckpoint is the resumable state of one campaign
	// (AppManager.Checkpoint / AppManager.Resume).
	CampaignCheckpoint = core.CampaignCheckpoint
	// PipelineCheckpoint is one pipeline's stage-barrier snapshot.
	PipelineCheckpoint = core.PipelineCheckpoint

	// Task is one node of the graph: a named kernel invocation.
	Task = core.Task
	// Stage is a set of tasks with a barrier and an adaptivity hook.
	Stage = core.Stage
	// Pipeline is an ordered sequence of stages.
	Pipeline = core.Pipeline
	// StageCtl is the PostStage hook's view of a settled stage.
	StageCtl = core.StageCtl
	// AppManager executes heterogeneous pipelines concurrently.
	AppManager = core.AppManager
	// CampaignReport aggregates one AppManager run.
	CampaignReport = core.CampaignReport
	// ComputeUnit is the runtime's handle on one executed task, as seen
	// by StageCtl.Units.
	ComputeUnit = pilot.ComputeUnit
	// ExecPath selects the executor implementation (Config.Exec).
	ExecPath = core.ExecPath

	// Pattern is an execution pattern.
	Pattern = core.Pattern
	// EnsembleOfPipelines is the independent-pipelines pattern.
	EnsembleOfPipelines = core.EnsembleOfPipelines
	// EnsembleExchange is the interacting-ensembles pattern.
	EnsembleExchange = core.EnsembleExchange
	// SimulationAnalysisLoop is the iterative two-stage pattern.
	SimulationAnalysisLoop = core.SimulationAnalysisLoop
	// Composite sequences unit patterns into a higher-order pattern.
	Composite = core.Composite
	// ExchangeMode selects EE exchange semantics.
	ExchangeMode = core.ExchangeMode
	// Report is the TTC decomposition of one pattern or pipeline run.
	Report = core.Report
	// PhaseStat aggregates one pattern phase.
	PhaseStat = core.PhaseStat
	// PatternError reports tasks that exhausted their retries.
	PatternError = core.PatternError
	// StagingDirective moves data before or after a task.
	StagingDirective = stage.Directive
	// Clock is the process clock applications run under: the virtual
	// simulation clock (NewClock / NewClockEngine) or the wall clock
	// (NewWallClock) that real-mode execution uses. It is an interface;
	// construct through this package or vclock.
	Clock = vclock.Clock
	// VirtualClock is the concrete discrete-event clock behind NewClock,
	// exported for callers that need the simulation-only surface.
	VirtualClock = vclock.Virtual
	// ClockEngine selects the discrete-event core behind a Clock.
	ClockEngine = vclock.Engine
	// UnitRunner executes real-mode unit commands; see NewWallClock and
	// internal/realtime for the local process implementation.
	UnitRunner = pilot.UnitRunner
	// ExecRequest is one real-mode execution window handed to a UnitRunner.
	ExecRequest = pilot.ExecRequest
	// RuntimeConfig tunes the pilot runtime.
	RuntimeConfig = pilot.Config
	// ProfilerLayout selects the profiler's event-storage layout
	// (RuntimeConfig.ProfLayout).
	ProfilerLayout = profile.Layout
	// KernelRegistry resolves kernels and their cost models.
	KernelRegistry = kernels.Registry
	// KernelSpec defines a kernel plugin.
	KernelSpec = kernels.Spec
)

// Executor paths (Config.Exec): the graph executor is the default; the
// reference path is the seed pattern executor, kept as the semantic
// baseline the graph-parity tests compare against (the executor
// analogue of EngineRef and ProfLayoutRef).
const (
	ExecGraph = core.ExecGraph
	ExecRef   = core.ExecRef
)

// Exchange mode values.
const (
	CollectiveExchange = core.CollectiveExchange
	PairwiseExchange   = core.PairwiseExchange
)

// Staging operations.
const (
	StageUpload   = stage.Upload
	StageCopy     = stage.Copy
	StageLink     = stage.Link
	StageDownload = stage.Download
)

// Agent placement policies (RuntimeConfig.Agent): how the pilot agent
// packs units onto nodes and disciplines its queue.
const (
	AgentFirstFit = pilot.FirstFit
	AgentBestFit  = pilot.BestFit
	AgentBackfill = pilot.Backfill
)

// Unit-to-pilot scheduling policies (RuntimeConfig.Scheduler).
const (
	ScheduleRoundRobin  = pilot.RoundRobin
	ScheduleLeastLoaded = pilot.LeastLoaded
)

// Fault kinds (FaultSpec.Kind): what a scheduled fault does to its
// target pilot at the planned virtual instant.
const (
	// FaultKillPilot terminates the pilot abruptly.
	FaultKillPilot = pilot.FaultKillPilot
	// FaultExpireWalltime ends the pilot as a walltime expiry.
	FaultExpireWalltime = pilot.FaultExpireWalltime
	// FaultNodeLoss removes the last FaultSpec.Nodes nodes from the
	// pilot's agent; the pilot keeps running at reduced capacity.
	FaultNodeLoss = pilot.FaultNodeLoss
)

// Clock engine values (see NewClockEngine): the direct-handoff engine is
// the default; the reference engine is the seed's global-mutex design,
// kept as the semantic baseline the engine-parity tests compare against.
const (
	EngineHandoff = vclock.EngineHandoff
	EngineRef     = vclock.EngineRef
)

// Profiler event-storage layouts (RuntimeConfig.ProfLayout): the interned
// columnar layout is the default; the reference layout is the seed's
// string-backed store, kept as the baseline the layout-parity tests
// compare against.
const (
	ProfLayoutColumnar = profile.LayoutColumnar
	ProfLayoutRef      = profile.LayoutRef
)

// NewClock returns the virtual clock a simulation runs under, backed by
// the default direct-handoff engine.
func NewClock() Clock { return vclock.NewVirtual() }

// NewClockEngine returns a virtual clock backed by the selected engine.
// Both engines produce bit-identical simulated time; they differ only in
// wall-clock cost (see internal/vclock).
func NewClockEngine(e ClockEngine) Clock { return vclock.NewVirtualEngine(e) }

// NewWallClock returns the monotonic wall clock real-mode execution runs
// under: Sleep really sleeps, walltime and fault timers really fire, and
// the rest of the runtime is unchanged. Pair it with a UnitRunner
// (RuntimeConfig.Runner) so kernels carrying an Executable run as OS
// processes; see internal/realtime.
func NewWallClock() Clock { return vclock.NewWall() }

// NewResourceHandle validates the resource request and prepares a handle.
func NewResourceHandle(resource string, cores int, walltime time.Duration, cfg Config) (*ResourceHandle, error) {
	return core.NewResourceHandle(resource, cores, walltime, cfg)
}

// NewAppManager returns an application manager that executes pipelines
// concurrently on the binding's allocation — a *ResourceHandle (the
// classic single-pilot form) or a *ResourceSet spanning several
// machines.
func NewAppManager(b Binding) *AppManager { return core.NewAppManager(b) }

// NewResourceSet validates the pilot specs and prepares a multi-pilot
// resource set; assign Placement on the returned set before Allocate to
// select a late-binding policy (multi-pilot sets default to
// round-robin over eligible pilots).
func NewResourceSet(specs []PilotSpec, cfg Config) (*ResourceSet, error) {
	return core.NewResourceSet(specs, cfg)
}

// Placement policies for multi-pilot resource sets (ResourceSet.Placement):
// late binding of each unit to a pilot at dispatch time.

// PlaceRoundRobin deals units to eligible pilots in set order.
func PlaceRoundRobin() PlacementPolicy { return pilot.PlaceRoundRobin() }

// PlaceLeastLoaded routes each unit to the eligible pilot with the most
// free cores at dispatch time.
func PlaceLeastLoaded() PlacementPolicy { return pilot.PlaceLeastLoaded() }

// PlaceTagAffinity routes tagged tasks (Kernel.Tags) to pilots carrying
// every one of their tags (PilotSpec.Tags), delegating the choice among
// matches — and all untagged placement — to next (round-robin when nil).
func PlaceTagAffinity(next PlacementPolicy) PlacementPolicy { return pilot.PlaceTagAffinity(next) }

// NewKernelRegistry returns a registry pre-populated with the builtin
// kernel plugins (md.amber, md.gromacs, ana.coco, ana.lsdmap, ...);
// applications may Register additional plugins.
func NewKernelRegistry() *KernelRegistry { return kernels.NewRegistry() }

// DefaultRuntimeConfig returns the pilot runtime configuration used for
// the paper reproduction.
func DefaultRuntimeConfig() RuntimeConfig { return pilot.DefaultConfig() }

// SaveCheckpoint serialises a campaign checkpoint to w; a non-nil prof
// appends the profiler's full trace dump to the same stream, so one
// file carries both the resume state and the evidence of the run that
// produced it.
func SaveCheckpoint(w io.Writer, cp *CampaignCheckpoint, prof *profile.Profiler) error {
	return core.SaveCheckpoint(w, cp, prof)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint; a
// non-nil prof (which must be empty) receives the trace section when
// the stream carries one.
func LoadCheckpoint(r io.Reader, prof *profile.Profiler) (*CampaignCheckpoint, error) {
	return core.LoadCheckpoint(r, prof)
}

// Resume restarts a campaign from a checkpoint on a fresh binding:
// pipelines are matched to the checkpoint's snapshots by name, each
// matched pipeline skips its settled stage prefix, and the resumed
// report agrees with an uninterrupted run on every reorder-invariant
// column. Equivalent to NewAppManager(b).Resume(cp, pls...).
func Resume(b Binding, cp *CampaignCheckpoint, pls ...*Pipeline) (*CampaignReport, error) {
	return core.NewAppManager(b).Resume(cp, pls...)
}

// Resources lists the registered machine labels.
func Resources() []string {
	return resourceNames()
}
