package entk_test

import (
	"reflect"
	"testing"
	"time"

	"entk"
)

// This file is the resource-binding regression gate, the binding-level
// analogue of TestEngineReportParity and TestGraphReportParity: a
// single-pilot entk.ResourceSet must be a representation change only —
// bit-identical Reports to the classic ResourceHandle (which is itself
// the seed path, pinned by the graph-parity suite and the BENCH sim
// columns) across the engine x scheduler x executor matrix, for both
// the pattern path (Execute) and the campaign path (AppManager).

// setParityPattern builds a fresh pattern per run: bulk stages with
// branching and an injected retry — the structurally densest
// sequentially-submitting parity workload (see graph_parity_test.go for
// the reorder-invariance constraints).
func setParityPattern() entk.Pattern {
	return &entk.EnsembleOfPipelines{
		Pipelines:  16,
		Stages:     3,
		BulkStages: true,
		StageKernel: func(stage, pipe int) *entk.Kernel {
			if stage > 1 && pipe%4 == 0 {
				return nil // a quarter of the ensemble branches out
			}
			k := &entk.Kernel{Name: "misc.sleep",
				Params: map[string]float64{"seconds": float64(2 * stage)}}
			if stage == 2 && pipe == 6 {
				k.FailOn = func(attempt int) bool { return attempt < 1 }
				k.Retries = 2
			}
			return k
		},
	}
}

// setParityPipelines builds a fresh heterogeneous campaign per run:
// identical-within-pipeline waves (reorder invariance), mixed widths
// and depths, one 4-core MPI pipeline.
func setParityPipelines() []*entk.Pipeline {
	mk := func(name string, width, depth, cores int, seconds float64) *entk.Pipeline {
		kernel := &entk.Kernel{Name: "misc.sleep",
			Params: map[string]float64{"seconds": seconds},
			Cores:  cores, MPI: cores > 1}
		stages := make([]*entk.Stage, depth)
		for s := range stages {
			tasks := make([]entk.Task, width)
			for t := range tasks {
				tasks[t] = entk.Task{Kernel: kernel}
			}
			stages[s] = &entk.Stage{Tasks: tasks}
		}
		return &entk.Pipeline{Name: name, Stages: stages}
	}
	return []*entk.Pipeline{
		mk("wide", 24, 2, 1, 3),
		mk("mid", 8, 3, 1, 5),
		mk("narrow", 4, 2, 4, 4),
	}
}

type setParityLeg struct {
	name      string
	eng       entk.ClockEngine
	scheduler entk.RuntimeConfig
	exec      entk.ExecPath
}

func setParityLegs() []setParityLeg {
	var legs []setParityLeg
	for _, eng := range []entk.ClockEngine{entk.EngineHandoff, entk.EngineRef} {
		for _, rescan := range []bool{false, true} {
			for _, exec := range []entk.ExecPath{entk.ExecGraph, entk.ExecRef} {
				rcfg := entk.DefaultRuntimeConfig()
				rcfg.Rescan = rescan
				sched := "indexed"
				if rescan {
					sched = "rescan"
				}
				legs = append(legs, setParityLeg{
					name: eng.String() + "/" + sched + "/" + exec.String(),
					eng:  eng, scheduler: rcfg, exec: exec,
				})
			}
		}
	}
	return legs
}

// TestResourceSetReportParity runs the pattern path on a handle and on
// a single-pilot set, over the engine x scheduler x executor matrix,
// requiring bit-identical Reports.
func TestResourceSetReportParity(t *testing.T) {
	for _, l := range setParityLegs() {
		l := l
		t.Run(l.name, func(t *testing.T) {
			run := func(asSet bool) *entk.Report {
				v := entk.NewClockEngine(l.eng)
				cfg := entk.Config{Clock: v, Exec: l.exec, Runtime: l.scheduler}
				var rep *entk.Report
				var err error
				v.Run(func() {
					if asSet {
						var rs *entk.ResourceSet
						rs, err = entk.NewResourceSet([]entk.PilotSpec{
							{Resource: "xsede.stampede", Cores: 48, Walltime: 1000 * time.Hour},
						}, cfg)
						if err != nil {
							return
						}
						rep, err = rs.Execute(setParityPattern())
					} else {
						var h *entk.ResourceHandle
						h, err = entk.NewResourceHandle("xsede.stampede", 48, 1000*time.Hour, cfg)
						if err != nil {
							return
						}
						rep, err = h.Execute(setParityPattern())
					}
				})
				if err != nil {
					t.Fatalf("asSet=%v: %v", asSet, err)
				}
				return rep
			}
			handle := run(false)
			set := run(true)
			if handle.Tasks == 0 || handle.Retries == 0 {
				t.Fatalf("parity workload did not exercise retries: %+v", handle)
			}
			if !reflect.DeepEqual(handle, set) {
				t.Errorf("single-pilot set diverges from handle:\nhandle:\n%v\nset:\n%v", handle, set)
			}
		})
	}
}

// TestResourceSetCampaignParity runs the same heterogeneous campaign
// through an AppManager over a handle and over a single-pilot set,
// requiring bit-identical CampaignReports — per-pipeline reports,
// campaign aggregate, and per-pilot utilization rows alike.
func TestResourceSetCampaignParity(t *testing.T) {
	for _, eng := range []entk.ClockEngine{entk.EngineHandoff, entk.EngineRef} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			run := func(asSet bool) *entk.CampaignReport {
				v := entk.NewClockEngine(eng)
				cfg := entk.Config{Clock: v}
				var camp *entk.CampaignReport
				var err error
				v.Run(func() {
					var b entk.Binding
					if asSet {
						var rs *entk.ResourceSet
						rs, err = entk.NewResourceSet([]entk.PilotSpec{
							{Resource: "xsede.comet", Cores: 48, Walltime: 1000 * time.Hour},
						}, cfg)
						if err != nil {
							return
						}
						b = rs
					} else {
						var h *entk.ResourceHandle
						h, err = entk.NewResourceHandle("xsede.comet", 48, 1000*time.Hour, cfg)
						if err != nil {
							return
						}
						b = h
					}
					rs := b.(interface {
						Allocate() error
						Deallocate() error
					})
					if err = rs.Allocate(); err != nil {
						return
					}
					camp, err = entk.NewAppManager(b).Run(setParityPipelines()...)
					if derr := rs.Deallocate(); err == nil {
						err = derr
					}
				})
				if err != nil {
					t.Fatalf("asSet=%v: %v", asSet, err)
				}
				return camp
			}
			handle := run(false)
			set := run(true)
			if handle.Campaign.Tasks == 0 || len(handle.Pilots) != 1 {
				t.Fatalf("campaign did not run: %+v", handle.Campaign)
			}
			if handle.Pilots[0].Units != handle.Campaign.Tasks {
				t.Errorf("pilot utilization row counts %d units, campaign ran %d",
					handle.Pilots[0].Units, handle.Campaign.Tasks)
			}
			if !reflect.DeepEqual(handle, set) {
				t.Errorf("single-pilot set campaign diverges from handle:\nhandle:\n%v\nset:\n%v",
					handle.Campaign, set.Campaign)
			}
		})
	}
}

// TestResourceSetValidation pins the set constructor's error paths.
func TestResourceSetValidation(t *testing.T) {
	v := entk.NewClock()
	cfg := entk.Config{Clock: v}
	if _, err := entk.NewResourceSet(nil, cfg); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := entk.NewResourceSet([]entk.PilotSpec{{Cores: 4, Walltime: time.Hour}}, cfg); err == nil {
		t.Error("spec without resource accepted")
	}
	if _, err := entk.NewResourceSet([]entk.PilotSpec{
		{Resource: "xsede.comet", Cores: 0, Walltime: time.Hour}}, cfg); err == nil {
		t.Error("zero-core spec accepted")
	}
	if _, err := entk.NewResourceSet([]entk.PilotSpec{
		{Resource: "xsede.comet", Cores: 4, Walltime: time.Hour}}, entk.Config{}); err == nil {
		t.Error("missing clock accepted")
	}
}
