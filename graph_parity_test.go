package entk_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"entk"
)

// This file is the graph-executor regression gate, the executor-level
// analogue of TestEngineReportParity and TestProfilerLayoutParity: the
// graph path (patterns lowered to Task/Stage/Pipeline graphs, the
// default) must be a representation change only. Every legacy pattern —
// EoP in all three submission modes, EE collective and pairwise, SAL
// with every adaptive hook, and Composite — is run on the reference
// pattern executor (Config.Exec = ExecRef) and on the graph executor,
// across the engine × agent-scheduler matrix, and the reports must be
// bit-identical: same TTC, same phase spans, busy times and occurrence
// counts, same task and retry counts — or the lowering changed
// simulated behaviour, not just the execution model.

// graphParityWorkloads builds fresh pattern instances per run (hooks
// close over per-run state, so instances must not be shared between
// legs). Sizes are modest: the point is structural coverage — retries,
// branching, rendezvous, adaptive growth and pruning — not scale.
//
// Determinism constraint: the engine does not promise a wake order for
// processes contending at the same virtual instant, so bit-exact
// comparison is only meaningful for workloads invariant under
// same-instant reordering — a property of the reference path as much
// as of the graph path. Concretely: concurrently-submitting patterns
// (EoP default mode, pairwise EE) use pipelines that are identical to
// each other (durations may vary by stage, not by pipeline, and
// branching/retry classes would couple slot order to the timeline), and
// bulk waves are internally homogeneous (the agent's launcher slots
// pair racily with wave members). Branching and retry coverage
// therefore lives in the sequentially-submitting modes — bulk EoP,
// streamed single-stage EoP, SAL — where wave membership is
// deterministic, and each wave varies durations only across waves.
var graphParityWorkloads = []struct {
	name  string
	cores int
	build func() entk.Pattern
}{
	{"eop-default-multistage", 48, func() entk.Pattern {
		return &entk.EnsembleOfPipelines{
			Pipelines: 12,
			Stages:    3,
			StageKernel: func(stage, pipe int) *entk.Kernel {
				// Identical pipelines; durations vary by stage only.
				return &entk.Kernel{Name: "misc.sleep",
					Params: map[string]float64{"seconds": float64(1 + 2*stage)}}
			},
		}
	}},
	{"eop-single-stage-streamed", 48, func() entk.Pattern {
		return &entk.EnsembleOfPipelines{
			Pipelines: 96,
			Stages:    1,
			StageKernel: func(stage, pipe int) *entk.Kernel {
				if pipe%17 == 0 {
					return nil
				}
				k := &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 3}}
				if pipe == 31 {
					k.FailOn = func(attempt int) bool { return attempt < 1 }
					k.Retries = 1
				}
				return k
			},
		}
	}},
	{"eop-bulk-stages", 48, func() entk.Pattern {
		return &entk.EnsembleOfPipelines{
			Pipelines:  16,
			Stages:     3,
			BulkStages: true,
			StageKernel: func(stage, pipe int) *entk.Kernel {
				if stage > 1 && pipe%4 == 0 {
					return nil // a quarter of the ensemble branches out
				}
				k := &entk.Kernel{Name: "misc.sleep",
					Params: map[string]float64{"seconds": float64(2 * stage)}}
				if stage == 2 && pipe == 6 {
					k.FailOn = func(attempt int) bool { return attempt < 1 } // one retry
					k.Retries = 2
				}
				return k
			},
		}
	}},
	{"ee-collective-stopwhen", 32, func() entk.Pattern {
		exchanged := 0
		return &entk.EnsembleExchange{
			Replicas: 8,
			Cycles:   5,
			SimulationKernel: func(c, r int) *entk.Kernel {
				// Uniform within a cycle's wave, varying across cycles.
				return &entk.Kernel{Name: "misc.sleep",
					Params: map[string]float64{"seconds": float64(4 + c%3)}}
			},
			ExchangeKernel: func(c int) *entk.Kernel {
				return &entk.Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 8}}
			},
			ExchangeLogic: func(c int) { exchanged++ },
			StopWhen:      func(c int) bool { return exchanged >= 3 }, // adaptive termination
		}
	}},
	{"ee-pairwise", 32, func() entk.Pattern {
		// One pair over several cycles: with more pairs, the racy
		// submission-slot → pair assignment makes each pair's rendezvous
		// max vary run to run (on the reference path too), so only the
		// single-pair ladder is bit-exact. The wide pairwise case is
		// gated by TestGraphPairwiseInvariantParity below.
		return &entk.EnsembleExchange{
			Replicas: 2,
			Cycles:   3,
			Mode:     entk.PairwiseExchange,
			Partner:  func(c, r int) int { return 3 - r }, // always (1,2)
			SimulationKernel: func(c, r int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": float64(2 + c)}}
			},
			ExchangeKernel: func(c int) *entk.Kernel {
				return &entk.Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 2}}
			},
		}
	}},
	{"sal-adaptive", 32, func() entk.Pattern {
		widths := []int{3, 6, 2, 4}
		return &entk.SimulationAnalysisLoop{
			Iterations:          4,
			Simulations:         1, // overridden per iteration
			Analyses:            2,
			AdaptiveSimulations: func(iter int) int { return widths[iter-1] },
			AdaptiveStop:        func(iter int) bool { return iter == 3 }, // prunes iteration 4
			PreLoop:             func() *entk.Kernel { return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}} },
			SimulationKernel: func(it, i int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": float64(2 + it)}}
			},
			AnalysisKernel: func(it, i int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 2}}
			},
			PostLoop: func() *entk.Kernel { return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}} },
		}
	}},
	{"composite", 32, func() entk.Pattern {
		return &entk.Composite{
			Name: "equilibrate-then-sample",
			Members: []entk.Pattern{
				&entk.EnsembleOfPipelines{
					Pipelines:   8,
					Stages:      2,
					StageKernel: func(stage, pipe int) *entk.Kernel { return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 2}} },
				},
				&entk.SimulationAnalysisLoop{
					Iterations:       2,
					Simulations:      6,
					Analyses:         1,
					SimulationKernel: func(int, int) *entk.Kernel { return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 3}} },
					AnalysisKernel:   func(int, int) *entk.Kernel { return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}} },
				},
			},
		}
	}},
}

// runGraphParityLeg executes one workload on an explicit executor path,
// clock engine, and agent-scheduler configuration.
func runGraphParityLeg(t *testing.T, build func() entk.Pattern, exec entk.ExecPath,
	eng entk.ClockEngine, rescan bool, cores int) *entk.Report {
	t.Helper()
	v := entk.NewClockEngine(eng)
	rcfg := entk.DefaultRuntimeConfig()
	rcfg.Rescan = rescan
	h, err := entk.NewResourceHandle("xsede.stampede", cores, 1000*time.Hour,
		entk.Config{Clock: v, Exec: exec, Runtime: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	var rep *entk.Report
	var runErr error
	v.Run(func() {
		rep, runErr = h.Execute(build())
	})
	if runErr != nil {
		t.Fatalf("%v engine=%v rescan=%v: %v", exec, eng, rescan, runErr)
	}
	return rep
}

// TestGraphReportParity runs every workload on the reference pattern
// executor and on the graph executor over the engine × scheduler
// matrix, requiring bit-identical reports.
func TestGraphReportParity(t *testing.T) {
	type leg struct {
		name   string
		eng    entk.ClockEngine
		rescan bool
	}
	legs := []leg{
		{"handoff/indexed", entk.EngineHandoff, false},
		{"handoff/rescan", entk.EngineHandoff, true},
		{"ref/indexed", entk.EngineRef, false},
		{"ref/rescan", entk.EngineRef, true},
	}
	for _, w := range graphParityWorkloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			base := runGraphParityLeg(t, w.build, entk.ExecGraph, legs[0].eng, legs[0].rescan, w.cores)
			// Guard against the vacuous pass: the workload must have run.
			if base.Tasks == 0 || base.TTC <= 0 {
				t.Fatalf("parity workload did not run: tasks=%d ttc=%v", base.Tasks, base.TTC)
			}
			for _, l := range legs {
				ref := runGraphParityLeg(t, w.build, entk.ExecRef, l.eng, l.rescan, w.cores)
				if !reflect.DeepEqual(base, ref) {
					t.Errorf("graph vs ref diverge on %s:\ngraph(%s):\n%v\nref(%s):\n%v",
						l.name, legs[0].name, base, l.name, ref)
				}
				if l != legs[0] {
					graph := runGraphParityLeg(t, w.build, entk.ExecGraph, l.eng, l.rescan, w.cores)
					if !reflect.DeepEqual(base, graph) {
						t.Errorf("graph path diverges across engine/scheduler %s:\nbase:\n%v\ngot:\n%v",
							l.name, base, graph)
					}
				}
			}
		})
	}
}

// TestGraphPairwiseInvariantParity covers the wide pairwise-EE case the
// bit-exact table cannot: with several pairs, same-instant submission
// reordering shifts each pair's rendezvous (a property of the pattern's
// no-global-sync semantics, identical on both paths), so the comparison
// projects the report onto its reorder-invariant components — task,
// retry and occurrence counts, cumulative busy times, pattern overhead,
// and the handle-level components — zeroing the wall spans and TTC.
func TestGraphPairwiseInvariantParity(t *testing.T) {
	build := func() entk.Pattern {
		var mu sync.Mutex
		pairs := 0
		return &entk.EnsembleExchange{
			Replicas: 8,
			Cycles:   2,
			Mode:     entk.PairwiseExchange,
			SimulationKernel: func(c, r int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 3}}
			},
			ExchangeKernel: func(c int) *entk.Kernel {
				return &entk.Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 2}}
			},
			PairLogic: func(c, lo, hi int) { mu.Lock(); pairs++; mu.Unlock() },
		}
	}
	invariant := func(r *entk.Report) *entk.Report {
		c := *r
		c.TTC = 0
		c.Phases = append([]entk.PhaseStat(nil), r.Phases...)
		for i := range c.Phases {
			c.Phases[i].Span = 0
		}
		return &c
	}
	base := invariant(runGraphParityLeg(t, build, entk.ExecGraph, entk.EngineHandoff, false, 32))
	if base.Tasks != 8*2+4+3 { // sims + full cycle-1 pairing + cycle-2 pairing
		t.Fatalf("pairwise workload ran %d tasks", base.Tasks)
	}
	for _, eng := range []entk.ClockEngine{entk.EngineHandoff, entk.EngineRef} {
		ref := invariant(runGraphParityLeg(t, build, entk.ExecRef, eng, false, 32))
		if !reflect.DeepEqual(base, ref) {
			t.Errorf("invariant projection diverges on %v:\ngraph:\n%v\nref:\n%v", eng, base, ref)
		}
	}
}

// TestGraphPairwiseFailureParity pins the failure semantics of pairwise
// EE on both executors: a replica whose simulation exhausts its retries
// abandons its current and future pairings, so its partner skips the
// exchange and finishes its remaining cycles — a PatternError, not a
// whole-run rendezvous deadlock. The comparison projects onto the
// reorder-invariant report columns (zeroed TTC and spans): the
// survivor's release time couples to the racy submission-slot order on
// both paths equally, so wall spans are not bit-stable here (see
// TestGraphPairwiseInvariantParity for the same constraint).
func TestGraphPairwiseFailureParity(t *testing.T) {
	build := func() entk.Pattern {
		return &entk.EnsembleExchange{
			Replicas: 2,
			Cycles:   3,
			Mode:     entk.PairwiseExchange,
			Partner:  func(c, r int) int { return 3 - r }, // always (1,2)
			SimulationKernel: func(c, r int) *entk.Kernel {
				k := &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 3}}
				if r == 2 && c == 1 {
					k.FailOn = func(int) bool { return true } // replica 2 dies in cycle 1
				}
				return k
			},
			ExchangeKernel: func(c int) *entk.Kernel {
				return &entk.Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 2}}
			},
		}
	}
	run := func(exec entk.ExecPath) (*entk.Report, error) {
		v := entk.NewClock()
		h, err := entk.NewResourceHandle("xsede.stampede", 16, 1000*time.Hour,
			entk.Config{Clock: v, Exec: exec})
		if err != nil {
			t.Fatal(err)
		}
		var rep *entk.Report
		var runErr error
		v.Run(func() {
			rep, runErr = h.Execute(build())
		})
		return rep, runErr
	}
	graph, gerr := run(entk.ExecGraph)
	ref, rerr := run(entk.ExecRef)
	for name, err := range map[string]error{"graph": gerr, "ref": rerr} {
		var perr *entk.PatternError
		if !errors.As(err, &perr) {
			t.Fatalf("%s path: err = %v, want *PatternError (deadlock fixed?)", name, err)
		}
	}
	// Replica 1 ran all 3 cycles, replica 2 none; no exchange ever ran.
	if sim := graph.Phase("simulation"); sim.Tasks != 3 {
		t.Errorf("surviving replica ran %d sims, want 3", sim.Tasks)
	}
	if exc := graph.Phase("exchange"); exc.Tasks != 0 || exc.Occurrences != 1 {
		t.Errorf("exchange phase = %+v, want 0 tasks (abandoned pairings)", exc)
	}
	invariant := func(r *entk.Report) *entk.Report {
		c := *r
		c.TTC = 0
		c.Phases = append([]entk.PhaseStat(nil), r.Phases...)
		for i := range c.Phases {
			c.Phases[i].Span = 0
		}
		return &c
	}
	if !reflect.DeepEqual(invariant(graph), invariant(ref)) {
		t.Errorf("failure reports diverge:\ngraph:\n%v\nref:\n%v", graph, ref)
	}
}

// TestGraphRetryParity pins retry accounting across the two executors:
// both count the same resubmissions and surface the same PatternError
// once budgets are exhausted.
func TestGraphRetryParity(t *testing.T) {
	build := func() entk.Pattern {
		return &entk.EnsembleOfPipelines{
			Pipelines: 4,
			Stages:    1,
			StageKernel: func(stage, pipe int) *entk.Kernel {
				k := &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}}
				if pipe == 2 {
					k.FailOn = func(attempt int) bool { return attempt < 2 }
					k.Retries = 3
				}
				return k
			},
		}
	}
	graph := runGraphParityLeg(t, build, entk.ExecGraph, entk.EngineHandoff, false, 16)
	ref := runGraphParityLeg(t, build, entk.ExecRef, entk.EngineHandoff, false, 16)
	if graph.Retries != 2 || !reflect.DeepEqual(graph, ref) {
		t.Errorf("retry accounting diverges:\ngraph:\n%v\nref:\n%v", graph, ref)
	}
}
