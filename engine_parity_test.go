package entk_test

import (
	"reflect"
	"testing"

	"entk"
)

// TestEngineReportParity is the vclock-engine regression gate, the
// engine-level analogue of TestIndexedSchedulerReportParity: the
// direct-handoff engine must be a wall-time optimisation only. The same
// 2048-unit ensemble, run on every engine × agent-scheduler combination,
// must produce bit-identical reports — same TTC, same phase spans and
// busy times, same task and retry counts — or the engine rebuild changed
// simulated behaviour, not just speed.
func TestEngineReportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("engine parity skipped in -short mode (rescan legs are slow by design)")
	}
	type leg struct {
		name   string
		rescan bool
		eng    entk.ClockEngine
	}
	legs := []leg{
		{"handoff/indexed", false, entk.EngineHandoff},
		{"handoff/rescan", true, entk.EngineHandoff},
		{"ref/indexed", false, entk.EngineRef},
		{"ref/rescan", true, entk.EngineRef},
	}
	base := runParityEoPOn(t, legs[0].rescan, legs[0].eng)
	// Guard against the vacuous pass: the workload must actually have run.
	if base.Tasks != 2048 || base.TTC <= 0 {
		t.Fatalf("parity workload did not run: tasks=%d ttc=%v", base.Tasks, base.TTC)
	}
	for _, l := range legs[1:] {
		got := runParityEoPOn(t, l.rescan, l.eng)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("report diverges on %s vs %s:\nbase:\n%v\ngot:\n%v",
				l.name, legs[0].name, base, got)
		}
	}
}
