// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section IV). Each benchmark runs the corresponding
// experiment sweep and reports the figure's headline quantities as custom
// metrics, so `go test -bench=. -benchmem` reproduces the evaluation in
// one command. Wall-clock ns/op measures the simulator, not the modelled
// system; the science numbers are in the custom metrics (seconds of
// virtual time).
package entk_test

import (
	"os"
	"testing"
	"time"

	"entk/internal/profile"
	"entk/internal/stats"
	"entk/internal/vclock"
	"entk/internal/workload"
)

// BenchmarkFig3PatternOverheads regenerates Figure 3: the mkfile/ccount
// application under all three patterns at tasks = cores = 24..192 on
// Comet, decomposing TTC into execution time, core overhead, and pattern
// overhead.
func BenchmarkFig3PatternOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig3(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			rows := res.Rows
			b.ReportMetric(rows[0].ExecSec, "exec_s@24")
			b.ReportMetric(rows[len(rows)-1].ExecSec, "exec_s@192")
			b.ReportMetric(rows[0].CoreOverheadSec, "core_ovh_s")
			b.ReportMetric(rows[len(rows)-1].PatternOverhead, "pattern_ovh_s@192")
		}
	}
}

// BenchmarkFig4KernelPlugins regenerates Figure 4: Gromacs-LSDMap SAL on
// Comet; overheads must match Figure 3's despite the kernel change.
func BenchmarkFig4KernelPlugins(b *testing.B) {
	fig3, err := workload.Fig3(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig4(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(fig3); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].CoreOverheadSec, "core_ovh_s")
			b.ReportMetric(res.Rows[len(res.Rows)-1].SimSec, "sim_s@192")
		}
	}
}

// reportEE emits the strong/weak scaling metrics for an EE sweep.
func reportEE(b *testing.B, res *workload.EEResult) {
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(first.SimSec, "sim_s@min")
	b.ReportMetric(last.SimSec, "sim_s@max")
	b.ReportMetric(first.ExchangeSec, "exch_s@min")
	b.ReportMetric(last.ExchangeSec, "exch_s@max")
	var cores, sim []float64
	for _, w := range res.Rows {
		cores = append(cores, float64(w.Cores))
		sim = append(sim, w.SimSec)
	}
	if res.Kind == "strong" {
		if slope, err := stats.LogLogSlope(cores, sim); err == nil {
			b.ReportMetric(slope, "loglog_slope")
		}
	}
}

// BenchmarkFig5EEStrong regenerates Figure 5: EE strong scaling, 2560
// replicas of Amber temperature exchange over 20-2560 cores on SuperMIC.
func BenchmarkFig5EEStrong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig5(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportEE(b, res)
		}
	}
}

// BenchmarkFig6EEWeak regenerates Figure 6: EE weak scaling with
// replicas = cores from 20 to 2560 on SuperMIC.
func BenchmarkFig6EEWeak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig6(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportEE(b, res)
		}
	}
}

// reportSAL emits the scaling metrics for a SAL sweep.
func reportSAL(b *testing.B, res *workload.SALResult) {
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(first.SimSec, "sim_s@min")
	b.ReportMetric(last.SimSec, "sim_s@max")
	b.ReportMetric(first.AnalysisSec, "ana_s@min")
	b.ReportMetric(last.AnalysisSec, "ana_s@max")
}

// BenchmarkFig7SALStrong regenerates Figure 7: SAL strong scaling, 1024
// Amber simulations + serial CoCo over 64-1024 cores on Stampede.
func BenchmarkFig7SALStrong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig7(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSAL(b, res)
		}
	}
}

// BenchmarkFig8SALWeak regenerates Figure 8: SAL weak scaling with
// simulations = cores from 64 to 4096 on Stampede.
func BenchmarkFig8SALWeak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig8(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSAL(b, res)
		}
	}
}

// BenchmarkFig9MPI regenerates Figure 9: 64 concurrent 6 ps simulations
// with 1-64 cores per simulation on Stampede.
func BenchmarkFig9MPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Fig9(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
			b.ReportMetric(first.SimSec, "sim_s@1cps")
			b.ReportMetric(last.SimSec, "sim_s@64cps")
			b.ReportMetric(first.SimSec/last.SimSec, "speedup@64cps")
		}
	}
}

// ---------------------------------------------------------------------------
// Design ablations (DESIGN.md section 5)

// BenchmarkAblationExchangeMode compares collective vs pairwise exchange
// on a heterogeneous REMD ensemble.
func BenchmarkAblationExchangeMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.AblationExchangeMode()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].TTCSec, "collective_ttc_s")
			b.ReportMetric(res.Rows[1].TTCSec, "pairwise_ttc_s")
		}
	}
}

// BenchmarkAblationBackfill compares FIFO and EASY backfill batch
// scheduling for pilot startup.
func BenchmarkAblationBackfill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.AblationBackfill()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].SmallWaitSec, "fifo_wait_s")
			b.ReportMetric(res.Rows[1].SmallWaitSec, "easy_wait_s")
		}
	}
}

// BenchmarkAblationDispatch sweeps the client-side per-unit submission
// cost and reports the induced pattern overhead.
func BenchmarkAblationDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.AblationDispatch()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].PatternOverhead, "ovh_s@1ms")
			b.ReportMetric(res.Rows[len(res.Rows)-1].PatternOverhead, "ovh_s@50ms")
		}
	}
}

// BenchmarkAblationAgentScheduler compares first-fit and best-fit node
// packing in the pilot agent.
func BenchmarkAblationAgentScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.AblationAgentScheduler()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].TTCSec, "firstfit_ttc_s")
			b.ReportMetric(res.Rows[1].TTCSec, "bestfit_ttc_s")
		}
	}
}

// ---------------------------------------------------------------------------
// Engine micro-benchmarks: the simulator itself

// BenchmarkVirtualClockTimers measures the DES engine's timer throughput:
// how fast the virtual clock processes sleep/wake cycles, on the default
// direct-handoff engine (hierarchical timer wheel).
func BenchmarkVirtualClockTimers(b *testing.B) {
	v := vclock.NewVirtual()
	b.ReportAllocs()
	v.Run(func() {
		for i := 0; i < b.N; i++ {
			v.Sleep(time.Millisecond)
		}
	})
}

// BenchmarkVirtualClockTimersRef is the same loop on the reference engine
// (global mutex + binary timer heap) — the in-tree A/B for the engine's
// timer path.
func BenchmarkVirtualClockTimersRef(b *testing.B) {
	v := vclock.NewVirtualEngine(vclock.EngineRef)
	b.ReportAllocs()
	v.Run(func() {
		for i := 0; i < b.N; i++ {
			v.Sleep(time.Millisecond)
		}
	})
}

// BenchmarkPilotUnitThroughput measures how many compute units per second
// (wall time) the simulated runtime pushes through a pilot, on the
// default scheduler configuration. At this workload's 16-node scale the
// adaptive crossover (pilot.linearScanMaxNodes) resolves to the linear
// scan, so this benchmark and its Rescan twin measure the same placement
// code — the point of the crossover is precisely that small pilots never
// pay the index; the segment-tree path is measured by BenchmarkStress10k
// (1024 nodes). The workload is defined once in internal/workload so
// entk-bench records the same thing.
func BenchmarkPilotUnitThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := workload.PilotThroughput(false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(workload.ThroughputUnits)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkPilotUnitThroughputRescan is the same workload on the seed's
// rescan configuration (pilot.Config.Rescan). Placements and simulated
// time are identical (TestIndexedSchedulerReportParity), and since the
// crossover (see above) both legs also run the same placement code at
// this scale — any sustained gap between the two is measurement noise.
func BenchmarkPilotUnitThroughputRescan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := workload.PilotThroughput(true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(workload.ThroughputUnits)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkPilotUnitThroughputRefEngine is the same workload on the
// reference vclock engine (indexed scheduler) — the in-tree A/B for the
// direct-handoff engine's speedup. Simulated time is identical
// (TestEngineReportParity); only wall time differs.
func BenchmarkPilotUnitThroughputRefEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := workload.PilotThroughputOn(false, vclock.EngineRef); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(workload.ThroughputUnits)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkStress10k runs the stress tier's hardest point — 10240
// two-stage pipelines bulk-submitted to an 8192-core pilot — and reports
// simulated units per wall second. This is where the indexed scheduler's
// asymptotic win over the O(pending x nodes) rescan shows up undiluted.
func BenchmarkStress10k(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		res, err := workload.StressEoP([]int{10240})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		units = res.Rows[0].Tasks
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkStress100k runs the 100k tier's hardest point — 102400
// single-stage pipelines bulk-submitted to a 65536-core pilot, two waves —
// and reports simulated units per wall second. The tier exists because the
// columnar interned profiler cut the per-event GC-scanned footprint from
// ~40 B (two string headers) to 16 pointer-free bytes; before that the
// profiler was the largest allocation source at this scale.
func BenchmarkStress100k(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		res, err := workload.Stress100k([]int{102400})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		units = res.Rows[0].Tasks
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkStress100kProfRef is the 100k point on the seed string-backed
// profiler layout (profile.LayoutRef) — the in-tree A/B for the columnar
// layout's allocation win at the scale it was built for. Simulated columns
// are identical (TestProfilerLayoutParity); allocs/op and wall time are
// the difference under measurement.
func BenchmarkStress100kProfRef(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		err := workload.WithProfLayout(profile.LayoutRef, func() error {
			res, err := workload.Stress100k([]int{102400})
			if err != nil {
				return err
			}
			if err := res.Check(); err != nil {
				return err
			}
			units = res.Rows[0].Tasks
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkStress100kMixed runs the mixed tier: a 100352-task campaign
// of three heterogeneous concurrent pipelines (wide/mid/narrow, depth
// 2-4, single-core and 4-core MPI tasks) executed by one AppManager on
// the 65536-core pilot — the graph API's fragmentation workload. It
// reports simulated units per wall second.
func BenchmarkStress100kMixed(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		res, err := workload.Stress100kMixed(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		units = res.Campaign.Tasks
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkStress100kOversub runs the oversubscribed mixed campaign:
// peak demand 1.375x the 65536-core machine, so stages split across
// scheduling waves and the three pipelines contend for cores — the
// multi-wave sibling of BenchmarkStress100kMixed.
func BenchmarkStress100kOversub(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		res, err := workload.Stress100kOversub(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckOversub(); err != nil {
			b.Fatal(err)
		}
		units = res.Campaign.Tasks
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkMultiPilotCampaign runs the two-machine campaign: tagged
// single-core and 4-core-MPI pipelines split by tag-affinity placement
// over a Comet + Stampede resource set through one AppManager.
func BenchmarkMultiPilotCampaign(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		res, err := workload.MultiPilotCampaign(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		units = res.Campaign.Tasks
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}

// BenchmarkStress1M is the 1M-task tier: 2^20 single-stage tasks
// through the 65536-core pilot in 16 scheduling waves. It ran guarded
// (ENTK_STRESS_1M=1) while the seed's flat pending FIFO collapsed the
// tier to ~4k units/s of wall throughput — every scheduling pass
// rebuilt the remaining queue, O(pending) per pass; the segmented
// pending queue makes passes O(placed) and the tier runs unguarded in
// the benchmark matrix at >10x that rate (trajectory in
// BENCH_PR6.json, recorded via entk-bench -stress1m).
func BenchmarkStress1M(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := workload.Stress1MProbe()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].TTCSec, "ttc_s")
			b.ReportMetric(float64(res.Rows[0].Tasks)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
		}
	}
}

// BenchmarkStress10M is the guarded 10M-task probe: one more 10x step
// (160 scheduling waves), holding a multi-gigabyte live heap, so it
// only runs when ENTK_STRESS_10M=1 is set (it is not part of any CI
// row). It pins the segmented pending queue's flat per-unit cost one
// order of magnitude past the wall the seed FIFO collapsed at; its
// allocs/peak-heap trajectory is recorded in BENCH_PR6.json via
// entk-bench -stress10m.
func BenchmarkStress10M(b *testing.B) {
	if os.Getenv("ENTK_STRESS_10M") == "" {
		b.Skip("10M probe skipped (set ENTK_STRESS_10M=1 to run)")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := workload.Stress10MProbe()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rows[0].TTCSec, "ttc_s")
			b.ReportMetric(float64(res.Rows[0].Tasks)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
		}
	}
}

// BenchmarkStress10kRefEngine is the 10k stress point on the reference
// vclock engine — the engine A/B at the tree's hardest scale.
func BenchmarkStress10kRefEngine(b *testing.B) {
	b.ReportAllocs()
	var units int
	for i := 0; i < b.N; i++ {
		res, err := workload.StressEoPOn([]int{10240}, vclock.EngineRef)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Check(); err != nil {
			b.Fatal(err)
		}
		units = res.Rows[0].Tasks
	}
	b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "units/s")
}
