package entk_test

import (
	"reflect"
	"testing"
	"time"

	"entk"
)

// pendLeg is one cell of the pending-queue parity matrix: a clock
// engine, an agent scheduler, an executor path, and a workload shape.
type pendLeg struct {
	name     string
	eng      entk.ClockEngine
	rescan   bool
	exec     entk.ExecPath
	backfill bool
	mixed    bool // heterogeneous core counts and MPI flags
}

// runPendParity executes the pending-queue parity workload on one leg
// with the selected queue implementation: a 1024-unit single-stage
// ensemble on a 1024-core Stampede pilot, homogeneous by default, or a
// four-class mix (1/4-core, serial/MPI) on the backfill leg so units of
// different placement classes genuinely interleave in the queue.
func runPendParity(t *testing.T, pendingRef bool, l pendLeg) *entk.Report {
	t.Helper()
	v := entk.NewClockEngine(l.eng)
	rcfg := entk.DefaultRuntimeConfig()
	rcfg.Rescan = l.rescan
	rcfg.PendingRef = pendingRef
	if l.backfill {
		rcfg.Agent = entk.AgentBackfill
	}
	h, err := entk.NewResourceHandle("xsede.stampede", 1024, 1000*time.Hour,
		entk.Config{Clock: v, Exec: l.exec, Runtime: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	kernel := func(p, _ int) *entk.Kernel {
		k := &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 5}}
		if l.mixed {
			// Four placement classes, interleaved by pipeline index, with
			// durations that differ within a class so the backfill EASY
			// gate takes per-unit decisions.
			k.Params["seconds"] = float64(3 + p%7)
			switch p % 4 {
			case 1:
				k.Cores, k.MPI = 4, true
			case 3:
				k.Cores, k.MPI = 2, true
			}
		}
		return k
	}
	var rep *entk.Report
	var runErr error
	v.Run(func() {
		rep, runErr = h.Execute(&entk.EnsembleOfPipelines{
			Pipelines:   1024,
			Stages:      1,
			StageKernel: kernel,
		})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return rep
}

// TestPendingQueueReportParity is the segmented-pending-queue regression
// gate, the queue-level analogue of TestIndexedSchedulerReportParity:
// the segmented queue must be a wall-time optimisation only. On every
// engine × agent-scheduler × executor combination — including a
// backfill leg whose mixed core counts and MPI flags spread the queue
// across placement classes — the same ensemble must produce a report
// bit-identical to the seed FIFO reference (Config.PendingRef), or the
// queue rebuild changed simulated behaviour, not just speed.
func TestPendingQueueReportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("pending-queue parity skipped in -short mode (reference legs are slow by design)")
	}
	legs := []pendLeg{
		{name: "handoff/indexed/graph", eng: entk.EngineHandoff, exec: entk.ExecGraph},
		{name: "handoff/rescan/graph", eng: entk.EngineHandoff, rescan: true, exec: entk.ExecGraph},
		{name: "handoff/indexed/ref", eng: entk.EngineHandoff, exec: entk.ExecRef},
		{name: "ref/indexed/graph", eng: entk.EngineRef, exec: entk.ExecGraph},
		{name: "handoff/indexed/graph/backfill-mixed", eng: entk.EngineHandoff,
			exec: entk.ExecGraph, backfill: true, mixed: true},
	}
	for _, l := range legs {
		l := l
		t.Run(l.name, func(t *testing.T) {
			ref := runPendParity(t, true, l)
			seg := runPendParity(t, false, l)
			if !reflect.DeepEqual(ref, seg) {
				t.Errorf("reports diverge between pending queues:\nreference:\n%v\nsegmented:\n%v", ref, seg)
			}
			// Guard against the vacuous pass: the workload must have run.
			if seg.Tasks != 1024 || seg.TTC <= 0 {
				t.Errorf("parity workload did not run: tasks=%d ttc=%v", seg.Tasks, seg.TTC)
			}
		})
	}
}
