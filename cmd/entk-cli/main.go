// Command entk-cli is the client for the entk-serve daemon:
//
//	entk-cli [-addr URL] [-tenant NAME] <command> [args]
//
//	submit [-follow] campaign.json   submit a campaign; -follow polls
//	                                 until it settles and prints the
//	                                 final status
//	status <id>                      one campaign's status + progress
//	list                             every campaign's status
//	report <id>                      the settled report JSON (verbatim
//	                                 daemon bytes, golden-diff friendly)
//	trace <id> [-o file]             fetch the ENTKPROF trace stream
//	checkpoint <id> [-o file]        on-demand ENTKCKPT checkpoint
//
// Exit status is nonzero on any HTTP error; error bodies are printed
// to stderr.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"
)

var (
	addr   = flag.String("addr", "http://127.0.0.1:8750", "daemon base URL")
	tenant = flag.String("tenant", "default", "tenant name (X-Entk-Tenant)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("entk-cli: ")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: entk-cli [-addr URL] [-tenant NAME] <submit|status|list|report|trace|checkpoint> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		cmdSubmit(rest)
	case "status":
		cmdGet(rest, "status", "/v1/campaigns/%s")
	case "list":
		body := request("GET", "/v1/campaigns", nil)
		os.Stdout.Write(body)
	case "report":
		cmdGet(rest, "report", "/v1/campaigns/%s/report")
	case "trace":
		cmdFetch(rest, "trace", "GET", "/v1/campaigns/%s/trace")
	case "checkpoint":
		cmdFetch(rest, "checkpoint", "POST", "/v1/campaigns/%s/checkpoint")
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func cmdSubmit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	follow := fs.Bool("follow", false, "poll until the campaign settles")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("submit needs exactly one campaign JSON file")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	body := request("POST", "/v1/campaigns", raw)
	if !*follow {
		os.Stdout.Write(body)
		return
	}
	var st struct{ ID, State string }
	if err := json.Unmarshal(body, &st); err != nil {
		log.Fatalf("submit response: %v", err)
	}
	for !terminal(st.State) {
		time.Sleep(50 * time.Millisecond)
		body = request("GET", "/v1/campaigns/"+st.ID, nil)
		if err := json.Unmarshal(body, &st); err != nil {
			log.Fatalf("status response: %v", err)
		}
	}
	os.Stdout.Write(body)
	if st.State != "done" {
		os.Exit(1)
	}
}

func terminal(state string) bool {
	switch state {
	case "done", "failed", "aborted", "checkpointed":
		return true
	}
	return false
}

func cmdGet(args []string, name, pathFmt string) {
	if len(args) != 1 {
		log.Fatalf("%s needs exactly one campaign id", name)
	}
	body := request("GET", fmt.Sprintf(pathFmt, args[0]), nil)
	os.Stdout.Write(body)
}

func cmdFetch(args []string, name, method, pathFmt string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	out := fs.String("o", "", "write to file instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatalf("%s needs exactly one campaign id", name)
	}
	body := request(method, fmt.Sprintf(pathFmt, fs.Arg(0)), nil)
	if *out == "" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		log.Fatal(err)
	}
}

// request performs one call against the daemon and returns the body;
// any non-2xx response is fatal with the body on stderr.
func request(method, path string, payload []byte) []byte {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, *addr+path, rd)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Entk-Tenant", *tenant)
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		os.Stderr.Write(body)
		log.Fatalf("%s %s: %s", method, path, resp.Status)
	}
	return body
}
