// Command entk-bench regenerates the paper's evaluation: one text table
// per figure (3-9) plus the design ablations. Absolute numbers come from
// the simulated testbed's calibrated cost models; the shapes — who wins,
// by what factor, where the crossovers fall — are the reproduction target
// (see EXPERIMENTS.md).
//
// Usage:
//
//	entk-bench                 # all figures and ablations
//	entk-bench -fig 5          # one figure
//	entk-bench -ablation all   # ablations only
//	entk-bench -stress         # the beyond-paper 10k + 100k stress tiers
//	entk-bench -stress -json BENCH_PR3.json
//	                           # also record throughput, memory (allocs/op,
//	                           # bytes/op, peak heap), and stress metrics
//	entk-bench -engine ref     # run on the reference vclock engine
//	entk-bench -graph          # the graph tier: mixed 100k campaign +
//	                           # graph-vs-ref executor throughput A/B
//	entk-bench -multipilot     # the multi-pilot tier: two-machine
//	                           # tag-affinity campaign with per-pilot
//	                           # utilization columns
//	entk-bench -faults         # the fault-recovery tier: the ~100k-task
//	                           # campaign run clean and with a mid-wave
//	                           # pilot kill + rebind (adds the faults
//	                           # section to -json output)
//	entk-bench -stress1m       # the 1M-task tier (adds the stress_1m
//	                           # section to -json output)
//	entk-bench -stress10m      # the guarded 10M-task probe (adds the
//	                           # stress_10m section to -json output)
//	entk-bench -profdump t.bin # write a binary session trace (one
//	                           # unit-throughput run, profile dump format)
//	entk-bench -cpuprofile entk.prof -stress
//	                           # write a pprof CPU profile of the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"entk/internal/core"
	"entk/internal/profile"
	"entk/internal/vclock"
	"entk/internal/workload"
)

// stopProfile flushes the -cpuprofile output; fatalf routes every fatal
// exit through it, since log.Fatalf's os.Exit skips deferred handlers —
// without this the profile of a failing run (the one worth inspecting)
// would be left truncated.
var stopProfile = func() {}

func fatalf(format string, v ...interface{}) {
	stopProfile()
	log.Fatalf(format, v...)
}

func main() {
	fig := flag.Int("fig", 0, "figure number to run (3-9); 0 runs everything")
	ablation := flag.String("ablation", "", "ablation to run: exchange, backfill, dispatch, placement, or all")
	stress := flag.Bool("stress", false, "run the stress tiers (10k EE/EoP + the 100k, mixed, oversubscribed, and multi-pilot tiers)")
	graph := flag.Bool("graph", false, "run the graph tier: the mixed 100k campaign and the graph-vs-ref executor throughput A/B")
	multipilot := flag.Bool("multipilot", false, "run the multi-pilot tier: the two-machine tag-affinity campaign with per-pilot utilization columns")
	faults := flag.Bool("faults", false, "run the fault-recovery tier: the ~100k-task campaign clean vs mid-wave pilot kill + rebind (recorded in -json as faults)")
	stress1m := flag.Bool("stress1m", false, "run the 1M-task tier (recorded in -json as stress_1m)")
	stress10m := flag.Bool("stress10m", false, "run the guarded 10M-task probe (recorded in -json as stress_10m)")
	profDump := flag.String("profdump", "", "run the unit-throughput workload and write its binary session trace to this file")
	jsonPath := flag.String("json", "", "write throughput and stress metrics to this JSON file")
	engineName := flag.String("engine", "handoff", "vclock engine to run on: handoff or ref")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.Parse()

	log.SetFlags(0)
	eng, err := vclock.ParseEngine(*engineName)
	if err != nil {
		fatalf("entk-bench: %v", err)
	}
	workload.DefaultEngine = eng

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("entk-bench: cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("entk-bench: cpuprofile: %v", err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	runAll := *fig == 0 && *ablation == "" && !*stress && !*graph && !*multipilot && !*faults && !*stress1m && !*stress10m && *profDump == "" && *jsonPath == ""

	figures := map[int]func() error{
		3: func() error { return printFig3() },
		4: func() error { return printFig4() },
		5: func() error { return printEE("Figure 5: EE strong scaling (2560 replicas, SuperMIC)", workload.Fig5) },
		6: func() error { return printEE("Figure 6: EE weak scaling (replicas = cores, SuperMIC)", workload.Fig6) },
		7: func() error {
			return printSAL("Figure 7: SAL strong scaling (1024 simulations, Stampede)", workload.Fig7)
		},
		8: func() error { return printSAL("Figure 8: SAL weak scaling (sims = cores, Stampede)", workload.Fig8) },
		9: func() error {
			return printSAL("Figure 9: MPI capability (64 simulations, 1-64 cores/sim, Stampede)", workload.Fig9)
		},
	}

	if *fig != 0 {
		run, ok := figures[*fig]
		if !ok {
			fatalf("entk-bench: no figure %d (have 3-9)", *fig)
		}
		if err := run(); err != nil {
			fatalf("entk-bench: %v", err)
		}
	}

	if runAll {
		for f := 3; f <= 9; f++ {
			if err := figures[f](); err != nil {
				fatalf("entk-bench: figure %d: %v", f, err)
			}
		}
	}

	if *ablation != "" || runAll {
		which := *ablation
		if runAll {
			which = "all"
		}
		if err := printAblations(which); err != nil {
			fatalf("entk-bench: %v", err)
		}
	}

	if *graph {
		// When the stress path runs too, it prints (and records) the
		// mixed campaign itself — don't simulate the 100k campaign twice.
		if err := runGraphTier(*stress || *jsonPath != ""); err != nil {
			fatalf("entk-bench: graph: %v", err)
		}
	}

	if *multipilot && !*stress && *jsonPath == "" {
		// The stress path runs (and with -json records) the tier itself.
		if err := runMultiPilot(nil); err != nil {
			fatalf("entk-bench: multipilot: %v", err)
		}
	}

	if *profDump != "" {
		if err := writeProfDump(*profDump); err != nil {
			fatalf("entk-bench: profdump: %v", err)
		}
	}

	if *stress || *jsonPath != "" {
		if err := runStress(*jsonPath, *stress1m, *stress10m, *faults); err != nil {
			fatalf("entk-bench: stress: %v", err)
		}
	} else {
		if *faults {
			if _, err := runFaults(nil); err != nil {
				fatalf("entk-bench: faults: %v", err)
			}
		}
		if *stress1m {
			if _, err := runStress1M(); err != nil {
				fatalf("entk-bench: stress1m: %v", err)
			}
		}
		if *stress10m {
			if _, err := runStress10M(); err != nil {
				fatalf("entk-bench: stress10m: %v", err)
			}
		}
	}
}

// runFaults runs the fault-recovery tier — the campaign clean and with a
// mid-wave pilot kill — prints its table, and returns the result for
// JSON recording. A nil plan runs the full 98304-task default.
func runFaults(plan *workload.FaultTierPlan) (*workload.FaultTierResult, error) {
	res, err := workload.FaultTier(plan)
	if err != nil {
		return nil, err
	}
	if err := res.Check(); err != nil {
		return nil, err
	}
	fmt.Println("Faults: recovery tier, clean vs mid-wave pilot kill + rebind (two pilots, sim.stress64k)")
	fmt.Println(res.Table())
	return res, nil
}

// runMultiPilot runs the two-machine tag-affinity campaign, prints its
// tables (campaign rows plus the per-pilot utilization columns), and
// hands the result back for JSON recording.
func runMultiPilot(out *workload.MultiPilotResult) error {
	res, err := workload.MultiPilotCampaign(nil)
	if err != nil {
		return err
	}
	if err := res.Check(); err != nil {
		return err
	}
	fmt.Println("Multi-pilot: two-machine tag-affinity campaign (Comet cpu pilot + Stampede mpi pilot, one AppManager)")
	fmt.Println(res.Table())
	if out != nil {
		*out = *res
	}
	return nil
}

// runStress1M runs the 1M-task tier with allocation sampling.
func runStress1M() (*stress1MMetric, error) {
	return runStressProbe("1M", "Stress: 1M-task tier (16 waves on sim.stress64k)", workload.Stress1MProbe)
}

// runStress10M runs the guarded 10M-task probe with allocation sampling.
func runStress10M() (*stress1MMetric, error) {
	return runStressProbe("10M", "Stress: guarded 10M-task probe (160 waves on sim.stress64k)", workload.Stress10MProbe)
}

// runStressProbe runs one many-wave probe point, printing its table and
// allocation profile.
func runStressProbe(label, title string, probe func() (*workload.Stress100kResult, error)) (*stress1MMetric, error) {
	fmt.Println(title)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err := probe()
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	fmt.Println(res.Table())
	w := res.Rows[0]
	m := &stress1MMetric{
		Stress100kPoint: w,
		AllocsPerUnit:   float64(after.Mallocs-before.Mallocs) / float64(w.Tasks),
		BytesPerUnit:    float64(after.TotalAlloc-before.TotalAlloc) / float64(w.Tasks),
		PeakHeapMB:      float64(after.HeapAlloc) / (1 << 20),
	}
	fmt.Printf("%s probe: %.1fs wall, %.1f allocs/unit, %.1f B/unit, %.1f MB heap after run\n",
		label, wall.Seconds(), m.AllocsPerUnit, m.BytesPerUnit, m.PeakHeapMB)
	return m, nil
}

// runGraphTier prints the graph-API tier on its own: the mixed
// heterogeneous campaign (unless the stress path runs it anyway) and
// the graph-vs-ref executor throughput A/B (both paths produce
// bit-identical simulated reports — TestGraphReportParity; wall time is
// the difference under measurement).
func runGraphTier(skipMixed bool) error {
	if !skipMixed {
		mixed, err := workload.Stress100kMixed(nil)
		if err != nil {
			return err
		}
		if err := mixed.Check(); err != nil {
			return err
		}
		fmt.Println("Graph: mixed 100k campaign, heterogeneous concurrent pipelines (sim.stress64k, one AppManager)")
		fmt.Println(mixed.Table())
	}

	for _, exec := range []core.ExecPath{core.ExecGraph, core.ExecRef} {
		m, err := measureThroughput(workload.DefaultEngine, false, profile.LayoutColumnar, exec, 10)
		if err != nil {
			return err
		}
		fmt.Printf("Graph: unit throughput, exec=%-5s  %.0f units/s (wall), %.1f allocs/unit\n",
			exec, m.UnitsPerS, m.AllocsPerUnit)
	}
	return nil
}

// writeProfDump runs the unit-throughput workload and writes its full
// session trace in the versioned binary dump format (see
// internal/profile dump.go; reload with profile.ReadFrom).
func writeProfDump(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events, bytes, err := workload.ProfileTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("profile trace: %d events, %d bytes written to %s\n", events, bytes, path)
	return nil
}

// ---------------------------------------------------------------------------
// Stress tier and metrics recording

// throughputMetric is one wall-clock measurement of the unit-throughput
// workload (the BenchmarkPilotUnitThroughput configuration). Alongside
// throughput it records the allocation profile of the runs — allocs and
// bytes per simulated unit, and the peak live heap — so the trajectory
// files capture memory wins (the columnar profiler) next to speed wins.
type throughputMetric struct {
	Engine        string  `json:"engine"`
	Scheduler     string  `json:"scheduler"`
	ProfLayout    string  `json:"prof_layout"`
	Exec          string  `json:"exec"`
	Units         int     `json:"units"`
	Cores         int     `json:"cores"`
	Runs          int     `json:"runs"`
	UnitsPerS     float64 `json:"units_per_s_wall"`
	AllocsPerUnit float64 `json:"allocs_per_unit"`
	BytesPerUnit  float64 `json:"bytes_per_unit"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
}

// stress1MMetric is the guarded 1M probe's row plus its allocation
// profile.
type stress1MMetric struct {
	workload.Stress100kPoint
	AllocsPerUnit float64 `json:"allocs_per_unit"`
	BytesPerUnit  float64 `json:"bytes_per_unit"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
}

// multiPilotMetric is the multi-pilot tier's JSON section: campaign and
// pipeline rows plus the per-pilot utilization columns.
type multiPilotMetric struct {
	Placement string                        `json:"placement"`
	Rows      []workload.Stress100kMixedRow `json:"rows"`
	Pilots    []workload.MultiPilotUtilRow  `json:"pilot_utilization"`
}

// faultsMetric is the fault-recovery tier's JSON section: the clean and
// faulted runs of the same campaign plus the recovery overhead.
type faultsMetric struct {
	Machine             string               `json:"machine"`
	PilotCores          int                  `json:"pilot_cores"`
	Tasks               int                  `json:"tasks"`
	KillAtSec           float64              `json:"kill_at_s"`
	Clean               workload.FaultRunRow `json:"clean"`
	Faulted             workload.FaultRunRow `json:"faulted"`
	RecoveryOverheadSec float64              `json:"recovery_overhead_s"`
}

// benchMetrics is the schema of the BENCH_PR<N>.json trajectory files.
type benchMetrics struct {
	Generated         string                        `json:"generated"`
	Notes             string                        `json:"notes"`
	StressEngine      string                        `json:"stress_engine"`
	Throughput        []throughputMetric            `json:"pilot_unit_throughput"`
	StressEoP         []workload.StressEoPPoint     `json:"stress_eop"`
	StressEE          []workload.StressEEPoint      `json:"stress_ee_weak"`
	Stress100k        []workload.Stress100kPoint    `json:"stress_100k"`
	Stress100kRef     []workload.Stress100kPoint    `json:"stress_100k_prof_ref"`
	Stress100kMixed   []workload.Stress100kMixedRow `json:"stress_100k_mixed"`
	Stress100kOversub []workload.Stress100kMixedRow `json:"stress_100k_oversub"`
	MultiPilot        *multiPilotMetric             `json:"multipilot,omitempty"`
	Faults            *faultsMetric                 `json:"faults,omitempty"`
	Stress1M          *stress1MMetric               `json:"stress_1m,omitempty"`
	Stress10M         *stress1MMetric               `json:"stress_10m,omitempty"`
}

// metricsNotes documents how to read the numbers.
const metricsNotes = "wall-clock numbers from the machine that generated this file; " +
	"the throughput matrix sweeps vclock engine (handoff vs ref) x agent scheduler config " +
	"(indexed vs rescan) x profiler layout (columnar vs ref) x executor path (graph vs " +
	"seed pattern executor) — all legs produce bit-identical simulated reports " +
	"(TestEngineReportParity, TestProfilerLayoutParity, TestGraphReportParity), " +
	"only wall time and allocation profile differ; stress_100k_mixed is the graph-API " +
	"campaign tier (heterogeneous concurrent pipelines on one AppManager, per-pipeline " +
	"rows plus the campaign aggregate; engine-parity gated by " +
	"TestStress100kMixedEngineParity); NOTE: at this workload's scale " +
	"(256 cores = 16 nodes) the indexed config's adaptive crossover selects the linear " +
	"scan, so its two scheduler legs run the same placement code and differ only by " +
	"noise — the segment-tree path is measured by the stress rows (1024 nodes) and " +
	"BenchmarkStress10k; allocs/bytes per unit and peak heap come from runtime.MemStats " +
	"around the measured runs (peak sampled per run, so it is a lower bound on the true " +
	"high-water mark); stress rows run on stress_engine; stress_100k vs " +
	"stress_100k_prof_ref is the columnar-vs-seed profiler A/B at 100k tasks; the " +
	"seed-vs-PR comparison per PR is recorded in CHANGES.md; stress_100k_oversub is the " +
	"oversubscribed campaign (peak demand 1.375x the machine, stages span waves; gated by " +
	"CheckOversub and TestStress100kOversubEngineParity); multipilot is the two-machine " +
	"tag-affinity campaign on an entk.ResourceSet (pilot_utilization columns show the " +
	"late-binding split; single-pilot sets are pinned bit-identical to the handle path by " +
	"TestResourceSetReportParity); stress_1m is the 1M-task tier (entk-bench -stress1m / " +
	"BenchmarkStress1M, unguarded since the segmented pending queue made scheduling " +
	"passes O(placed) instead of O(pending) — the queue A/B is gated by " +
	"TestPendingQueueReportParity and the 100k sim columns are pinned byte-identical " +
	"across queue implementations by TestStress100kPendingQueueParity); stress_10m is " +
	"the guarded 10M-task probe (entk-bench -stress10m / BenchmarkStress10M behind " +
	"ENTK_STRESS_10M=1, multi-gigabyte live heap); faults is the " +
	"fault-recovery tier (entk-bench -faults): the same ~100k-task campaign run clean and " +
	"with one of two pilots killed mid-wave-1 — unit rebinding (ResourceSet.Rebind) returns " +
	"the in-flight units to the survivor, so both runs complete every task with zero " +
	"retries and recovery_overhead_s = faulted ttc - clean ttc (one to two extra task " +
	"waves; gated by FaultTierResult.Check and the -race fault matrix in internal/core)"

// measureThroughput runs workload.PilotThroughputOn — the exact workload
// BenchmarkPilotUnitThroughput times — `runs` times on the selected
// engine, scheduler, profiler layout, and executor path, and returns
// wall units/s plus the runs' allocation profile (allocs/op, bytes/op,
// peak live heap).
func measureThroughput(eng vclock.Engine, rescan bool, layout profile.Layout, exec core.ExecPath, runs int) (throughputMetric, error) {
	name := "indexed"
	if rescan {
		name = "rescan"
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	peakHeap := before.HeapAlloc
	t0 := time.Now()
	err := workload.WithExecPath(exec, func() error {
		return workload.WithProfLayout(layout, func() error {
			for i := 0; i < runs; i++ {
				if err := workload.PilotThroughputOn(rescan, eng); err != nil {
					return err
				}
				runtime.ReadMemStats(&after)
				if after.HeapAlloc > peakHeap {
					peakHeap = after.HeapAlloc
				}
			}
			return nil
		})
	})
	if err != nil {
		return throughputMetric{}, err
	}
	elapsed := time.Since(t0)
	units := workload.ThroughputUnits * runs
	return throughputMetric{
		Engine:        eng.String(),
		Scheduler:     name,
		ProfLayout:    layout.String(),
		Exec:          exec.String(),
		Units:         workload.ThroughputUnits,
		Cores:         workload.ThroughputCores,
		Runs:          runs,
		UnitsPerS:     float64(units) / elapsed.Seconds(),
		AllocsPerUnit: float64(after.Mallocs-before.Mallocs) / float64(units),
		BytesPerUnit:  float64(after.TotalAlloc-before.TotalAlloc) / float64(units),
		PeakHeapMB:    float64(peakHeap) / (1 << 20),
	}, nil
}

// runStress executes the stress tier, prints its tables, and (when
// jsonPath is set) records the metrics file that tracks the perf
// trajectory across PRs.
func runStress(jsonPath string, with1M, with10M, withFaults bool) error {
	eop, err := workload.StressEoP(nil)
	if err != nil {
		return err
	}
	if err := eop.Check(); err != nil {
		return err
	}
	fmt.Println("Stress: EoP bulk sweep (2 stages, 8192-core sim.stress8k)")
	fmt.Println(eop.Table())

	ee, err := workload.StressEE(nil)
	if err != nil {
		return err
	}
	if err := ee.Check(); err != nil {
		return err
	}
	fmt.Println("Stress: EE weak scaling + oversubscribed tail (sim.stress8k)")
	fmt.Println(ee.Table())

	s100k, err := workload.Stress100k(nil)
	if err != nil {
		return err
	}
	if err := s100k.Check(); err != nil {
		return err
	}
	fmt.Println("Stress: 100k tier, bulk single-stage EoP (65536-core sim.stress64k)")
	fmt.Println(s100k.Table())

	mixed, err := workload.Stress100kMixed(nil)
	if err != nil {
		return err
	}
	if err := mixed.Check(); err != nil {
		return err
	}
	fmt.Println("Stress: mixed 100k campaign, heterogeneous concurrent pipelines (graph API, one AppManager)")
	fmt.Println(mixed.Table())

	oversub, err := workload.Stress100kOversub(nil)
	if err != nil {
		return err
	}
	if err := oversub.CheckOversub(); err != nil {
		return err
	}
	fmt.Println("Stress: oversubscribed campaign, peak demand 1.375x the machine (stages span waves)")
	fmt.Println(oversub.Table())

	var mp workload.MultiPilotResult
	if err := runMultiPilot(&mp); err != nil {
		return err
	}

	var fm *faultsMetric
	if withFaults {
		fres, err := runFaults(nil)
		if err != nil {
			return err
		}
		fm = &faultsMetric{
			Machine:             fres.Plan.Machine,
			PilotCores:          fres.Plan.PilotCores,
			Tasks:               fres.Plan.Tasks(),
			KillAtSec:           fres.KillAtSec,
			Clean:               fres.Clean,
			Faulted:             fres.Faulted,
			RecoveryOverheadSec: fres.RecoveryOverheadSec,
		}
	}

	var probe *stress1MMetric
	if with1M {
		if probe, err = runStress1M(); err != nil {
			return err
		}
	}
	var probe10 *stress1MMetric
	if with10M {
		if probe10, err = runStress10M(); err != nil {
			return err
		}
	}

	if jsonPath == "" {
		return nil
	}

	// The columnar-vs-seed profiler A/B at 100k tasks: simulated columns
	// must match s100k's byte for byte (TestProfilerLayoutParity); only
	// wall time differs, and the allocation delta shows in the throughput
	// matrix's prof_layout legs.
	var s100kRef *workload.Stress100kResult
	err = workload.WithProfLayout(profile.LayoutRef, func() error {
		var err error
		if s100kRef, err = workload.Stress100k(nil); err != nil {
			return err
		}
		return s100kRef.Check()
	})
	if err != nil {
		return err
	}

	mpRows := append(append([]workload.Stress100kMixedRow(nil), mp.Pipelines...), mp.Campaign)
	mpUtil := append([]workload.MultiPilotUtilRow(nil), mp.Pilots...)
	metrics := benchMetrics{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		Notes:             metricsNotes,
		StressEngine:      workload.DefaultEngine.String(),
		StressEoP:         eop.Rows,
		StressEE:          ee.Rows,
		Stress100k:        s100k.Rows,
		Stress100kRef:     s100kRef.Rows,
		Stress100kMixed:   append(append([]workload.Stress100kMixedRow(nil), mixed.Pipelines...), mixed.Campaign),
		Stress100kOversub: append(append([]workload.Stress100kMixedRow(nil), oversub.Pipelines...), oversub.Campaign),
		MultiPilot:        &multiPilotMetric{Placement: mp.Placement, Rows: mpRows, Pilots: mpUtil},
		Faults:            fm,
		Stress1M:          probe,
		Stress10M:         probe10,
	}
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		for _, rescan := range []bool{false, true} {
			m, err := measureThroughput(eng, rescan, profile.LayoutColumnar, core.ExecGraph, 20)
			if err != nil {
				return err
			}
			metrics.Throughput = append(metrics.Throughput, m)
		}
	}
	// The profiler-layout and executor-path A/Bs on the default
	// engine/scheduler config.
	refLeg, err := measureThroughput(vclock.EngineHandoff, false, profile.LayoutRef, core.ExecGraph, 20)
	if err != nil {
		return err
	}
	metrics.Throughput = append(metrics.Throughput, refLeg)
	execLeg, err := measureThroughput(vclock.EngineHandoff, false, profile.LayoutColumnar, core.ExecRef, 20)
	if err != nil {
		return err
	}
	metrics.Throughput = append(metrics.Throughput, execLeg)
	buf, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("metrics written to %s\n", jsonPath)
	return nil
}

func printFig3() error {
	res, err := workload.Fig3(nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: pattern characterisation, mkfile/ccount on Comet (tasks = cores)")
	fmt.Println(res.Table())
	return nil
}

func printFig4() error {
	res, err := workload.Fig4(nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: kernel-plugin validation, Gromacs-LSDMap SAL on Comet")
	fmt.Println(res.Table())
	return nil
}

func printEE(title string, run func([]int) (*workload.EEResult, error)) error {
	res, err := run(nil)
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Println(res.Table())
	return nil
}

func printSAL(title string, run func([]int) (*workload.SALResult, error)) error {
	res, err := run(nil)
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Println(res.Table())
	return nil
}

func printAblations(which string) error {
	type ab struct {
		name  string
		title string
		run   func() (interface{ Table() string }, error)
	}
	abs := []ab{
		{"exchange", "Ablation: collective vs pairwise exchange (heterogeneous EE)", func() (interface{ Table() string }, error) {
			return workload.AblationExchangeMode()
		}},
		{"backfill", "Ablation: batch policy FIFO vs EASY backfill (pilot startup)", func() (interface{ Table() string }, error) {
			return workload.AblationBackfill()
		}},
		{"dispatch", "Ablation: per-unit dispatch cost vs pattern overhead", func() (interface{ Table() string }, error) {
			return workload.AblationDispatch()
		}},
		{"placement", "Ablation: agent node packing first-fit vs best-fit", func() (interface{ Table() string }, error) {
			return workload.AblationAgentScheduler()
		}},
	}
	ran := false
	for _, a := range abs {
		if which != "all" && which != a.name {
			continue
		}
		ran = true
		res, err := a.run()
		if err != nil {
			return fmt.Errorf("ablation %s: %w", a.name, err)
		}
		fmt.Println(a.title)
		fmt.Println(res.Table())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "entk-bench: unknown ablation %q (have exchange, backfill, dispatch, placement, all)\n", which)
		os.Exit(2)
	}
	return nil
}
