// Command entk-serve is the multi-tenant campaign daemon: a long-
// running HTTP/JSON service that accepts declarative campaign
// descriptions (the cmd/entk-run schema) from concurrent clients and
// executes them on shared, pooled resource sets.
//
//	entk-serve -addr 127.0.0.1:8750 -state /var/lib/entk
//
// Endpoints (see internal/serve):
//
//	POST /v1/campaigns                 submit (returns {"id": ...})
//	GET  /v1/campaigns                 list
//	GET  /v1/campaigns/{id}            status + live progress
//	GET  /v1/campaigns/{id}/report     settled report JSON
//	GET  /v1/campaigns/{id}/trace      ENTKPROF trace stream
//	POST /v1/campaigns/{id}/checkpoint on-demand ENTKCKPT stream
//
// Tenants identify themselves with the X-Entk-Tenant header; fair-
// share admission keeps any one tenant from monopolising the shared
// submission path (-tenant-cap, -max-inflight, -weights a=2,b=1).
//
// -mode=real runs every pool on the wall clock with one shared local
// process executor: kernels carrying an "executable" exec as OS
// processes (output under -outdir), and shutdown reaps every live
// process group. Real pools cannot freeze time between campaigns, so
// idle pilots keep burning walltime; see DESIGN.md §15.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: every in-flight
// graph campaign is checkpointed into the state directory, and a
// restarted daemon (same -state) resumes them where the barriers left
// off. Use cmd/entk-cli to talk to the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"entk/internal/campaign"
	"entk/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("entk-serve: ")
	addr := flag.String("addr", "127.0.0.1:8750", "listen address")
	state := flag.String("state", "", "state directory for persistence and resume (empty: none)")
	engine := flag.String("engine", "handoff", "clock engine: handoff or ref")
	layout := flag.String("layout", "columnar", "profiler layout: columnar or ref")
	tenantCap := flag.Int("tenant-cap", 0, "max in-flight campaigns per tenant (0: unlimited)")
	maxInFlight := flag.Int("max-inflight", 0, "max in-flight campaigns total (0: unlimited)")
	weights := flag.String("weights", "", "fair-share weights, e.g. alice=2,bob=1")
	mode := flag.String("mode", "sim", "execution mode: sim (virtual time) or real (wall clock, kernels with an executable run as OS processes)")
	outdir := flag.String("outdir", "", "real mode: directory for per-unit stdout/stderr captures (default: a fresh temp dir)")
	flag.Parse()

	eng, err := campaign.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	lay, err := campaign.ParseLayout(*layout)
	if err != nil {
		log.Fatal(err)
	}
	w, err := parseWeights(*weights)
	if err != nil {
		log.Fatal(err)
	}
	md, err := campaign.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}

	o, err := serve.New(serve.Options{
		Engine:      eng,
		Layout:      lay,
		Mode:        md,
		RealDir:     *outdir,
		StateDir:    *state,
		TenantCap:   *tenantCap,
		MaxInFlight: *maxInFlight,
		Weights:     w,
	})
	if err != nil {
		log.Fatal(err)
	}
	if n := len(o.List()); n > 0 {
		log.Printf("restored %d campaign(s) from %s", n, *state)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(o)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on http://%s (mode=%s engine=%s layout=%s)", *addr, md, eng, lay)
	if dir := o.RunnerDir(); dir != "" {
		log.Printf("real mode: unit output under %s", dir)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%v: shutting down, checkpointing in-flight campaigns", sig)
	}
	if err := o.Shutdown(); err != nil {
		log.Printf("shutdown checkpoint: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
}

func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		tenant, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("weights: %q is not tenant=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("weights: %q needs a positive number", part)
		}
		out[tenant] = w
	}
	return out, nil
}
