// Command entk-validate reruns every reproduced experiment and asserts
// the paper's qualitative findings hold (the Check methods in
// internal/workload): similar execution times across patterns, constant
// core overhead, task-linear pattern overhead, ~ideal strong scaling,
// flat weak scaling, growing serial stages, and the ablation expectations.
// It exits non-zero if any shape check fails.
package main

import (
	"fmt"
	"os"

	"entk/internal/workload"
)

type check struct {
	name string
	run  func() error
}

func main() {
	var fig3 *workload.Fig3Result

	checks := []check{
		{"fig3 pattern characterisation", func() error {
			res, err := workload.Fig3(nil)
			if err != nil {
				return err
			}
			fig3 = res
			return res.Check()
		}},
		{"fig4 kernel-plugin invariance", func() error {
			res, err := workload.Fig4(nil)
			if err != nil {
				return err
			}
			return res.Check(fig3)
		}},
		{"fig5 EE strong scaling", func() error {
			res, err := workload.Fig5(nil)
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"fig6 EE weak scaling", func() error {
			res, err := workload.Fig6(nil)
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"fig7 SAL strong scaling", func() error {
			res, err := workload.Fig7(nil)
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"fig8 SAL weak scaling", func() error {
			res, err := workload.Fig8(nil)
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"fig9 MPI capability", func() error {
			res, err := workload.Fig9(nil)
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"ablation exchange mode", func() error {
			res, err := workload.AblationExchangeMode()
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"ablation batch backfill", func() error {
			res, err := workload.AblationBackfill()
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"ablation dispatch cost", func() error {
			res, err := workload.AblationDispatch()
			if err != nil {
				return err
			}
			return res.Check()
		}},
		{"ablation agent placement", func() error {
			res, err := workload.AblationAgentScheduler()
			if err != nil {
				return err
			}
			return res.Check()
		}},
	}

	failed := 0
	for _, c := range checks {
		if err := c.run(); err != nil {
			fmt.Printf("FAIL  %-32s %v\n", c.name, err)
			failed++
		} else {
			fmt.Printf("ok    %s\n", c.name)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed\n", len(checks))
}
