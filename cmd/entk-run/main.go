// Command entk-run executes an ensemble campaign described by a JSON
// file, for experimenting with workloads without writing Go:
//
//	entk-run campaign.json
//
// The description names resources and a workload. Resources are either
// the legacy single-pilot triple (resource/cores/walltime_min at the
// top level) or a "resources" list of pilots with an optional
// "placement" policy (round_robin, least_loaded, tag_affinity, or
// tag_affinity+least_loaded). The workload is either an explicit
// pipelines/stages/tasks graph:
//
//	{
//	  "resources": [
//	    {"resource": "xsede.comet", "cores": 48, "walltime_min": 120},
//	    {"resource": "xsede.stampede", "cores": 64, "walltime_min": 120, "tags": ["mpi"]}
//	  ],
//	  "placement": "tag_affinity",
//	  "pipelines": [
//	    {"name": "md", "stages": [
//	      {"name": "sim", "tasks": [
//	        {"name": "eq", "count": 16,
//	         "kernel": {"name": "misc.sleep", "params": {"seconds": 60}}}
//	      ]}
//	    ]}
//	  ]
//	}
//
// or one of the classic patterns under "pattern": "eop" with
// "pipelines" and "stages"; "ee" with "replicas", "cycles",
// "simulation", "exchange" (and optional "pairwise": true); "sal" with
// "iterations", "simulations", "analyses", "simulation", "analysis".
// Task entries take "count" (replica expansion), "retries", and
// kernel-level "cores"/"mpi"/"tags"; stages take "streamed". Unknown
// fields are rejected with their line number.
//
// Beyond printing the report, the runner checks campaign semantics
// against recorded evidence:
//
//	entk-run -record golden.trace campaign.json   # persist the run's trace
//	entk-run -check golden.trace campaign.json    # diff the run against it
//	entk-run -assert asserts.json campaign.json   # declarative trace assertions
//
// -check exits nonzero on divergence, rendering the differing entities'
// virtual-time timelines side by side; -assert does the same for unmet
// expectations. -engine (handoff|ref) and -layout (columnar|ref) select
// the simulation substrate; goldens recorded on one substrate are
// comparable across layouts always, and across engines for campaigns
// whose unit numbering does not depend on same-instant wake order
// (single-pipeline campaigns).
//
// -mode=real executes the same campaign file for real on the wall
// clock: kernels carrying an "executable" (plus "args") run as local OS
// processes with stdout/stderr captured under -outdir, kernels without
// one sleep their modelled durations, and the report is the same table
// over wall-clock instants. Real mode is not bit-reproducible, so
// -record/-check are rejected; see examples/realmode and DESIGN.md §15.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"entk/internal/campaign"
	"entk/internal/realtime"
)

// The original runner's JSON types survive as aliases of the campaign
// schema: descriptions written against the old single-pilot pattern
// form parse unchanged.
type (
	kernelJSON  = campaign.Kernel
	patternJSON = campaign.Pattern
	appJSON     = campaign.Campaign
)

func main() {
	log.SetFlags(0)
	var (
		record  = flag.String("record", "", "write the run's trace to this golden file")
		check   = flag.String("check", "", "diff the run's trace against this golden file")
		asserts = flag.String("assert", "", "check the run's trace against this assertion spec file")
		engine  = flag.String("engine", "handoff", "clock engine: handoff or ref (sim mode only)")
		layout  = flag.String("layout", "columnar", "profiler layout: columnar or ref")
		mode    = flag.String("mode", "sim", "execution mode: sim (virtual time) or real (wall clock, kernels with an executable run as OS processes)")
		outdir  = flag.String("outdir", "", "real mode: directory for per-unit stdout/stderr captures (default: a fresh temp dir)")
	)
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: entk-run [flags] <campaign.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	var opts campaign.Options
	var err error
	if opts.Engine, err = campaign.ParseEngine(*engine); err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	if opts.Layout, err = campaign.ParseLayout(*layout); err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	if opts.Mode, err = campaign.ParseMode(*mode); err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	if opts.Mode == campaign.ModeReal {
		// Golden-trace tooling pins bit-reproducible virtual timelines;
		// wall-clock instants can never match them (see DESIGN.md §15).
		if *record != "" || *check != "" {
			log.Fatalf("entk-run: -record/-check are sim-only (real mode is not bit-reproducible)")
		}
		opts.Dir = *outdir
		ex, err := realtime.New(realtime.Config{Dir: opts.Dir})
		if err != nil {
			log.Fatalf("entk-run: %v", err)
		}
		defer ex.Close()
		opts.Runner = ex
		fmt.Fprintf(os.Stderr, "entk-run: real mode, unit output under %s\n", ex.Dir())
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	c, err := campaign.Parse(f)
	f.Close()
	if err != nil {
		log.Fatalf("entk-run: %s: %v", path, err)
	}

	res, err := campaign.Run(c, opts)
	if err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	fmt.Print(res.Summary())

	fail := false
	if *asserts != "" {
		af, err := os.Open(*asserts)
		if err != nil {
			log.Fatalf("entk-run: %v", err)
		}
		specs, err := campaign.ParseAsserts(af)
		af.Close()
		if err != nil {
			log.Fatalf("entk-run: %s: %v", *asserts, err)
		}
		fails := campaign.CheckAsserts(res.Prof, specs)
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, f)
		}
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "entk-run: %d of %d assertions failed\n", len(fails), len(specs))
			fail = true
		}
	}
	if *check != "" {
		want, err := campaign.LoadGolden(*check)
		if err != nil {
			log.Fatalf("entk-run: %v", err)
		}
		if diffs := campaign.DiffTraces(res.Prof, want); len(diffs) > 0 {
			fmt.Fprint(os.Stderr, campaign.RenderDiffs(diffs, 5))
			fmt.Fprintf(os.Stderr, "entk-run: trace diverges from golden %s on %d entities\n",
				*check, len(diffs))
			fail = true
		}
	}
	if *record != "" {
		if err := campaign.WriteGolden(*record, res.Prof); err != nil {
			log.Fatalf("entk-run: %v", err)
		}
		fmt.Fprintf(os.Stderr, "entk-run: recorded %d events to %s\n",
			res.Prof.EventCount(), *record)
	}
	if fail {
		os.Exit(1)
	}
}
