// Command entk-run executes an ensemble application described by a JSON
// file, for experimenting with workloads without writing Go:
//
//	entk-run app.json
//
// Example description (ensemble of pipelines):
//
//	{
//	  "resource": "xsede.comet",
//	  "cores": 48,
//	  "walltime_min": 120,
//	  "pattern": {
//	    "type": "eop",
//	    "pipelines": 24,
//	    "stages": [
//	      {"name": "misc.mkfile", "params": {"size_mb": 10}},
//	      {"name": "misc.ccount", "params": {"size_mb": 10}}
//	    ]
//	  }
//	}
//
// EE uses "type": "ee" with "replicas", "cycles", "simulation",
// "exchange" (and optional "pairwise": true); SAL uses "type": "sal"
// with "iterations", "simulations", "analyses", "simulation",
// "analysis".
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"entk"
)

// kernelJSON is the JSON form of a kernel invocation.
type kernelJSON struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params"`
	Cores  int                `json:"cores"`
	MPI    bool               `json:"mpi"`
}

func (k *kernelJSON) kernel() *entk.Kernel {
	if k == nil {
		return nil
	}
	return &entk.Kernel{Name: k.Name, Params: k.Params, Cores: k.Cores, MPI: k.MPI}
}

// patternJSON is the JSON form of a pattern parametrisation.
type patternJSON struct {
	Type string `json:"type"` // "eop", "ee", "sal"

	// eop
	Pipelines int          `json:"pipelines"`
	Stages    []kernelJSON `json:"stages"`

	// ee
	Replicas   int         `json:"replicas"`
	Cycles     int         `json:"cycles"`
	Simulation *kernelJSON `json:"simulation"`
	Exchange   *kernelJSON `json:"exchange"`
	Pairwise   bool        `json:"pairwise"`

	// sal
	Iterations  int         `json:"iterations"`
	Simulations int         `json:"simulations"`
	Analyses    int         `json:"analyses"`
	Analysis    *kernelJSON `json:"analysis"`
}

// appJSON is the top-level application description.
type appJSON struct {
	Resource    string      `json:"resource"`
	Cores       int         `json:"cores"`
	WalltimeMin int         `json:"walltime_min"`
	Pattern     patternJSON `json:"pattern"`
}

func (a *appJSON) pattern() (entk.Pattern, error) {
	p := &a.Pattern
	switch p.Type {
	case "eop":
		if len(p.Stages) == 0 {
			return nil, fmt.Errorf("eop pattern needs stages")
		}
		stages := make([]*entk.Kernel, len(p.Stages))
		for i := range p.Stages {
			stages[i] = p.Stages[i].kernel()
		}
		return &entk.EnsembleOfPipelines{
			Pipelines: p.Pipelines,
			Stages:    len(stages),
			StageKernel: func(stage, pipe int) *entk.Kernel {
				k := *stages[stage-1] // copy so tasks don't share state
				return &k
			},
		}, nil
	case "ee":
		if p.Simulation == nil || p.Exchange == nil {
			return nil, fmt.Errorf("ee pattern needs simulation and exchange kernels")
		}
		mode := entk.CollectiveExchange
		if p.Pairwise {
			mode = entk.PairwiseExchange
		}
		return &entk.EnsembleExchange{
			Replicas: p.Replicas,
			Cycles:   p.Cycles,
			Mode:     mode,
			SimulationKernel: func(cycle, r int) *entk.Kernel {
				k := *p.Simulation.kernel()
				return &k
			},
			ExchangeKernel: func(cycle int) *entk.Kernel {
				k := *p.Exchange.kernel()
				return &k
			},
		}, nil
	case "sal":
		if p.Simulation == nil || p.Analysis == nil {
			return nil, fmt.Errorf("sal pattern needs simulation and analysis kernels")
		}
		return &entk.SimulationAnalysisLoop{
			Iterations:  p.Iterations,
			Simulations: p.Simulations,
			Analyses:    p.Analyses,
			SimulationKernel: func(it, i int) *entk.Kernel {
				k := *p.Simulation.kernel()
				return &k
			},
			AnalysisKernel: func(it, i int) *entk.Kernel {
				k := *p.Analysis.kernel()
				return &k
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown pattern type %q (want eop, ee, or sal)", p.Type)
	}
}

func main() {
	log.SetFlags(0)
	if len(os.Args) != 2 {
		log.Fatal("usage: entk-run <app.json>")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	var app appJSON
	if err := json.Unmarshal(raw, &app); err != nil {
		log.Fatalf("entk-run: parsing %s: %v", os.Args[1], err)
	}
	pattern, err := app.pattern()
	if err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	if app.WalltimeMin <= 0 {
		app.WalltimeMin = 60
	}

	v := entk.NewClock()
	handle, err := entk.NewResourceHandle(app.Resource, app.Cores,
		time.Duration(app.WalltimeMin)*time.Minute, entk.Config{Clock: v})
	if err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	var report *entk.Report
	v.Run(func() {
		report, err = handle.Execute(pattern)
	})
	if err != nil {
		log.Fatalf("entk-run: %v", err)
	}
	fmt.Print(report)
}
