module entk

go 1.24
