package entk_test

import (
	"reflect"
	"testing"
	"time"

	"entk"
)

// runParityEoPLayout executes the parity workload — the same 2048-unit
// single-stage ensemble as runParityEoP — on an explicit clock engine,
// agent-scheduler configuration, and profiler event-storage layout.
func runParityEoPLayout(t *testing.T, rescan bool, eng entk.ClockEngine, layout entk.ProfilerLayout) *entk.Report {
	t.Helper()
	v := entk.NewClockEngine(eng)
	rcfg := entk.DefaultRuntimeConfig()
	rcfg.Rescan = rescan
	rcfg.ProfLayout = layout
	h, err := entk.NewResourceHandle("xsede.stampede", 1024, 1000*time.Hour,
		entk.Config{Clock: v, Runtime: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	var rep *entk.Report
	var runErr error
	v.Run(func() {
		rep, runErr = h.Execute(&entk.EnsembleOfPipelines{
			Pipelines: 2048,
			Stages:    1,
			StageKernel: func(int, int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 5}}
			},
		})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return rep
}

// TestProfilerLayoutParity is the columnar-profiler regression gate, the
// profiler-level analogue of TestEngineReportParity: the interned columnar
// event layout must be a memory/wall-time optimisation only. The same
// 2048-unit ensemble, run over the engine × agent-scheduler matrix, must
// produce bit-identical reports on the columnar layout and on the seed
// string-backed reference layout (profile.LayoutRef) — same TTC, same
// queue wait and agent startup (both reconstructed from profiler queries),
// same phase spans and busy times, same task and retry counts — or the
// storage rebuild changed simulated behaviour, not just representation.
func TestProfilerLayoutParity(t *testing.T) {
	if testing.Short() {
		t.Skip("layout parity skipped in -short mode (rescan legs are slow by design)")
	}
	type leg struct {
		name   string
		rescan bool
		eng    entk.ClockEngine
	}
	legs := []leg{
		{"handoff/indexed", false, entk.EngineHandoff},
		{"handoff/rescan", true, entk.EngineHandoff},
		{"ref/indexed", false, entk.EngineRef},
		{"ref/rescan", true, entk.EngineRef},
	}
	for _, l := range legs {
		columnar := runParityEoPLayout(t, l.rescan, l.eng, entk.ProfLayoutColumnar)
		ref := runParityEoPLayout(t, l.rescan, l.eng, entk.ProfLayoutRef)
		if !reflect.DeepEqual(columnar, ref) {
			t.Errorf("report diverges between profiler layouts on %s:\ncolumnar:\n%v\nref:\n%v",
				l.name, columnar, ref)
		}
		// Guard against the vacuous pass: the workload must have run.
		if columnar.Tasks != 2048 || columnar.TTC <= 0 || columnar.QueueWait <= 0 {
			t.Errorf("parity workload did not run on %s: tasks=%d ttc=%v queueWait=%v",
				l.name, columnar.Tasks, columnar.TTC, columnar.QueueWait)
		}
	}
}
