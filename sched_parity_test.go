package entk_test

import (
	"reflect"
	"testing"
	"time"

	"entk"
)

// runParityEoP executes the parity workload — a 2048-unit single-stage
// ensemble on a 1024-core Stampede pilot — on either the seed-equivalent
// rescan scheduler or the indexed scheduler (default clock engine).
func runParityEoP(t *testing.T, rescan bool) *entk.Report {
	return runParityEoPOn(t, rescan, entk.EngineHandoff)
}

// runParityEoPOn is runParityEoP on an explicit clock engine.
func runParityEoPOn(t *testing.T, rescan bool, eng entk.ClockEngine) *entk.Report {
	t.Helper()
	v := entk.NewClockEngine(eng)
	rcfg := entk.DefaultRuntimeConfig()
	rcfg.Rescan = rescan
	h, err := entk.NewResourceHandle("xsede.stampede", 1024, 1000*time.Hour,
		entk.Config{Clock: v, Runtime: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	var rep *entk.Report
	var runErr error
	v.Run(func() {
		rep, runErr = h.Execute(&entk.EnsembleOfPipelines{
			Pipelines: 2048,
			Stages:    1,
			StageKernel: func(int, int) *entk.Kernel {
				return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 5}}
			},
		})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return rep
}

// TestIndexedSchedulerReportParity is the throughput-refactor regression
// gate: the indexed agent scheduler must be a wall-time optimisation
// only. Running the same 2048-unit ensemble on the seed-equivalent rescan
// path and on the indexed path must produce bit-identical reports — same
// TTC, same phase spans and busy times, same task and retry counts — or
// the refactor changed simulated behaviour, not just speed.
func TestIndexedSchedulerReportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity test skipped in -short mode (rescan path is slow by design)")
	}
	rescan := runParityEoP(t, true)
	indexed := runParityEoP(t, false)
	if !reflect.DeepEqual(rescan, indexed) {
		t.Errorf("reports diverge between schedulers:\nrescan:\n%v\nindexed:\n%v", rescan, indexed)
	}
	// Guard against the vacuous pass: the workload must actually have run.
	if indexed.Tasks != 2048 || indexed.TTC <= 0 {
		t.Errorf("parity workload did not run: tasks=%d ttc=%v", indexed.Tasks, indexed.TTC)
	}
}
