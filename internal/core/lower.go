package core

import (
	"fmt"

	"entk/internal/pad"
)

// Pattern lowering: the paper's execution patterns compiled to the graph
// model. Each pattern becomes a set of Pipelines whose stages, hooks,
// and submission modes reproduce the reference executor's coordination
// structure exactly — same bulk waves, same barriers, same rendezvous,
// same phase accounting — so a lowered run's Report is bit-identical to
// the reference path's (gated by TestGraphReportParity). Adaptive
// pattern features (StopWhen, AdaptiveSimulations, AdaptiveStop, nil
// kernels ending a pipeline) all lower onto one mechanism: the
// PostStage hook growing or pruning the graph at runtime.
//
// Kernel callbacks are resolved when the consuming stage is built,
// which the hook chaining below keeps at the same virtual instant as
// the reference executor's resolution point — after the preceding
// barrier, before the wave's submission — so callbacks that close over
// earlier results observe the same state on both paths.

// lowerPattern compiles a unit pattern to pipelines. Composite is
// handled by runComposite (its members lower individually).
func (ex *executor) lowerPattern(p Pattern) ([]*Pipeline, error) {
	switch p := p.(type) {
	case *EnsembleOfPipelines:
		return ex.lowerEoP(p), nil
	case *EnsembleExchange:
		if p.Mode == PairwiseExchange {
			return ex.lowerEEPairwise(p), nil
		}
		return []*Pipeline{lowerEECollective(p)}, nil
	case *SimulationAnalysisLoop:
		return lowerSAL(p)
	default:
		return nil, fmt.Errorf("core: no lowering for pattern %T", p)
	}
}

// ---------------------------------------------------------------------------
// Ensemble of Pipelines

func (ex *executor) lowerEoP(p *EnsembleOfPipelines) []*Pipeline {
	if p.BulkStages {
		return []*Pipeline{lowerEoPBulk(p)}
	}
	if p.Stages == 1 {
		return []*Pipeline{lowerEoPSingleStage(p)}
	}
	// Default mode: one graph pipeline per paper pipeline, executing
	// concurrently; stage stats aggregate per stage index after the
	// whole ensemble completes, so each stage appears once in the
	// report no matter how pipelines interleave.
	for st := 1; st <= p.Stages; st++ {
		ex.registerDeferredPhase("stage."+pad.Int(st, 1), false)
	}
	pls := make([]*Pipeline, 0, p.Pipelines)
	for pl := 1; pl <= p.Pipelines; pl++ {
		pipe := &Pipeline{Name: "pipe" + pad.Int(pl, 4)}
		if st := eopStage(p, pl, 1); st != nil {
			pipe.Stages = []*Stage{st}
		}
		pls = append(pls, pipe)
	}
	return pls
}

// eopStage builds stage st of paper pipeline pl: one task, with a hook
// chaining the next stage. A nil StageKernel ends the pipeline early
// (branching), exactly as in the reference executor.
func eopStage(p *EnsembleOfPipelines, pl, st int) *Stage {
	k := p.StageKernel(st, pl)
	if k == nil {
		return nil
	}
	s := &Stage{
		Name:       "stage." + pad.Int(st, 1),
		Tasks:      []Task{{Name: eopTaskName(pl, st), Kernel: k}},
		deferPhase: true,
	}
	if st < p.Stages {
		s.PostStage = func(ctl *StageCtl) error {
			if ctl.Err() != nil {
				return nil
			}
			if next := eopStage(p, pl, st+1); next != nil {
				ctl.InsertStages(next)
			}
			return nil
		}
	}
	return s
}

// lowerEoPSingleStage is the streamed fast path: with no inter-stage
// ordering, the whole ensemble is one streamed wave (see
// runEoPSingleStage for the timing argument).
func lowerEoPSingleStage(p *EnsembleOfPipelines) *Pipeline {
	tasks := make([]Task, 0, p.Pipelines)
	for pl := 1; pl <= p.Pipelines; pl++ {
		k := p.StageKernel(1, pl)
		if k == nil {
			continue // branching: this pipeline ends before stage 1
		}
		tasks = append(tasks, Task{Name: eopTaskName(pl, 1), Kernel: k})
	}
	return &Pipeline{Name: "eop", Stages: []*Stage{{
		Name:         "stage.1",
		Tasks:        tasks,
		Streamed:     true,
		statsOnError: true,
	}}}
}

// lowerEoPBulk is the phase-batched mode: stage s of every live paper
// pipeline is one bulk wave with a barrier, the next wave built only
// after the barrier (so branching decisions see a settled stage).
func lowerEoPBulk(p *EnsembleOfPipelines) *Pipeline {
	live := make([]bool, p.Pipelines+1)
	for pl := 1; pl <= p.Pipelines; pl++ {
		live[pl] = true
	}
	var mkStage func(st int) *Stage
	mkStage = func(st int) *Stage {
		s := &Stage{Name: "stage." + pad.Int(st, 1)}
		s.Tasks = make([]Task, 0, p.Pipelines)
		for pl := 1; pl <= p.Pipelines; pl++ {
			if !live[pl] {
				continue
			}
			k := p.StageKernel(st, pl)
			if k == nil {
				live[pl] = false // branching: pipeline ends early
				continue
			}
			s.Tasks = append(s.Tasks, Task{Name: eopTaskName(pl, st), Kernel: k})
		}
		if len(s.Tasks) == 0 {
			return nil // every pipeline branched out: pattern ends
		}
		if st < p.Stages {
			s.PostStage = func(ctl *StageCtl) error {
				if ctl.Err() != nil {
					return nil
				}
				if next := mkStage(st + 1); next != nil {
					ctl.InsertStages(next)
				}
				return nil
			}
		}
		return s
	}
	pipe := &Pipeline{Name: "eop"}
	if first := mkStage(1); first != nil {
		pipe.Stages = []*Stage{first}
	}
	return pipe
}

// ---------------------------------------------------------------------------
// Ensemble Exchange (collective mode)

// lowerEECollective chains simulate-exchange cycles through PostStage
// hooks: each cycle's exchange hook runs ExchangeLogic, consults
// StopWhen (adaptive termination lowers to Terminate), and builds the
// next cycle only then — so kernel callbacks observe post-exchange
// state exactly as in the reference executor.
func lowerEECollective(p *EnsembleExchange) *Pipeline {
	var mkSim func(cycle int) *Stage
	mkSim = func(cycle int) *Stage {
		tasks := make([]Task, p.Replicas)
		for r := 1; r <= p.Replicas; r++ {
			tasks[r-1] = Task{Name: eeTaskName(cycle, r), Kernel: p.SimulationKernel(cycle, r)}
		}
		sim := &Stage{Name: "simulation", Tasks: tasks}
		sim.PostStage = func(ctl *StageCtl) error {
			if ctl.Err() != nil {
				return nil
			}
			exch := &Stage{
				Name:  "exchange",
				Tasks: []Task{{Name: fmt.Sprintf("cycle%03d.exchange", cycle), Kernel: p.ExchangeKernel(cycle)}},
			}
			exch.PostStage = func(ctl2 *StageCtl) error {
				if ctl2.Err() != nil {
					return nil
				}
				if p.ExchangeLogic != nil {
					p.ExchangeLogic(cycle)
				}
				if p.StopWhen != nil && p.StopWhen(cycle) {
					ctl2.Terminate()
					return nil
				}
				if cycle < p.Cycles {
					ctl2.InsertStages(mkSim(cycle + 1))
				}
				return nil
			}
			ctl.InsertStages(exch)
			return nil
		}
		return sim
	}
	return &Pipeline{Name: "ee", Stages: []*Stage{mkSim(1)}}
}

// ---------------------------------------------------------------------------
// Ensemble Exchange (pairwise mode)

// lowerEEPairwise gives each replica its own pipeline; partner pairs
// rendezvous through PostStage hooks on a shared pairRendezvous table
// (the same type the reference executor uses), and the second arriver
// inserts the exchange task into its own pipeline — no global barrier
// anywhere, matching the reference executor's "no obligatory global
// synchronisation" semantics. A replica whose simulation dies abandons
// its current and future pairings from the failure hook, so partners
// skip the exchange instead of deadlocking.
func (ex *executor) lowerEEPairwise(p *EnsembleExchange) []*Pipeline {
	partner := p.Partner
	if partner == nil {
		partner = func(cycle, replica int) int {
			return defaultPartner(cycle, replica, p.Replicas)
		}
	}
	ex.registerDeferredPhase("simulation", true)
	ex.registerDeferredPhase("exchange", true)

	rv := newPairRendezvous(ex.v, p, partner)

	var mkSim func(r, cycle int) *Stage
	mkSim = func(r, cycle int) *Stage {
		sim := &Stage{
			Name:       "simulation",
			Tasks:      []Task{{Name: eeTaskName(cycle, r), Kernel: p.SimulationKernel(cycle, r)}},
			deferPhase: true,
		}
		sim.PostStage = func(ctl *StageCtl) error {
			if ctl.Err() != nil {
				// The replica dies here: release current and future
				// partners before the pipeline aborts.
				rv.abandon(r, cycle)
				return nil
			}
			advance := func(c *StageCtl) {
				if cycle < p.Cycles {
					c.InsertStages(mkSim(r, cycle+1))
				}
			}
			e, role := rv.arrive(r, cycle)
			switch role {
			case pairUnpaired:
				advance(ctl) // unpaired this cycle (or partner died)
				return nil
			case pairFirst:
				// First arriver waits for its partner to run the
				// exchange — no other replicas are involved.
				e.ev.Wait()
				advance(ctl)
				return nil
			}
			// Second arriver executes the pairwise exchange task.
			exch := &Stage{
				Name: "exchange",
				Tasks: []Task{{
					Name:   fmt.Sprintf("cycle%03d.exchange.%05d-%05d", cycle, e.lo, e.hi),
					Kernel: p.ExchangeKernel(cycle),
				}},
				deferPhase: true,
			}
			exch.PostStage = func(ctl2 *StageCtl) error {
				if ctl2.Err() != nil {
					// Release the waiting partner and abandon this
					// replica's future pairings even on failure.
					e.ev.Fire()
					rv.abandon(r, cycle+1)
					return nil
				}
				if p.PairLogic != nil {
					p.PairLogic(cycle, e.lo, e.hi)
				}
				e.ev.Fire()
				advance(ctl2)
				return nil
			}
			ctl.InsertStages(exch)
			return nil
		}
		return sim
	}

	pls := make([]*Pipeline, 0, p.Replicas)
	for r := 1; r <= p.Replicas; r++ {
		pls = append(pls, &Pipeline{
			Name:   "replica" + pad.Int(r, 5),
			Stages: []*Stage{mkSim(r, 1)},
		})
	}
	return pls
}

// ---------------------------------------------------------------------------
// Simulation Analysis Loop

func salSimName(iter, i int) string {
	return "iter" + pad.Int(iter, 3) + ".sim" + pad.Int(i, 5)
}

func salAnaName(iter, i int) string {
	return "iter" + pad.Int(iter, 3) + ".ana" + pad.Int(i, 5)
}

// lowerSAL chains global-barrier iterations through PostStage hooks:
// each analysis hook consults AdaptiveStop, and the next iteration's
// simulation width (AdaptiveSimulations) is resolved only then — so
// hooks that close over analysis state observe the same state as on
// the reference path, and width validation errors surface at the same
// point of the run.
func lowerSAL(p *SimulationAnalysisLoop) ([]*Pipeline, error) {
	appendPost := func(ctl *StageCtl) {
		if p.PostLoop == nil {
			return
		}
		if k := p.PostLoop(); k != nil {
			ctl.InsertStages(&Stage{Name: "post_loop", Tasks: []Task{{Name: "post_loop", Kernel: k}}})
		}
	}
	var mkIter func(iter int) ([]*Stage, error)
	mkIter = func(iter int) ([]*Stage, error) {
		width := p.Simulations
		if p.AdaptiveSimulations != nil {
			width = p.AdaptiveSimulations(iter)
			if err := validateAdaptiveWidth(width, iter); err != nil {
				return nil, err
			}
		}
		sims := make([]Task, width)
		for i := 1; i <= width; i++ {
			sims[i-1] = Task{Name: salSimName(iter, i), Kernel: p.SimulationKernel(iter, i)}
		}
		anas := make([]Task, p.Analyses)
		for i := 1; i <= p.Analyses; i++ {
			anas[i-1] = Task{Name: salAnaName(iter, i), Kernel: p.AnalysisKernel(iter, i)}
		}
		ana := &Stage{Name: "analysis", Tasks: anas}
		ana.PostStage = func(ctl *StageCtl) error {
			if ctl.Err() != nil {
				return nil
			}
			if p.AdaptiveStop != nil && p.AdaptiveStop(iter) {
				appendPost(ctl) // converged: the loop ends, post_loop still runs
				return nil
			}
			if iter < p.Iterations {
				next, err := mkIter(iter + 1)
				if err != nil {
					return err
				}
				ctl.InsertStages(next...)
				return nil
			}
			appendPost(ctl)
			return nil
		}
		return []*Stage{{Name: "simulation", Tasks: sims}, ana}, nil
	}

	pipe := &Pipeline{Name: "sal"}
	if p.PreLoop != nil {
		// The pre-loop stage runs first; iteration 1 is built at its
		// barrier, so a first-iteration adaptive-width error surfaces
		// after pre_loop ran, as on the reference path. A nil PreLoop
		// kernel leaves the stage empty (it still chains iteration 1).
		pre := &Stage{Name: "pre_loop"}
		if k := p.PreLoop(); k != nil {
			pre.Tasks = []Task{{Name: "pre_loop", Kernel: k}}
		}
		pre.PostStage = func(ctl *StageCtl) error {
			if ctl.Err() != nil {
				return nil
			}
			first, err := mkIter(1)
			if err != nil {
				return err
			}
			ctl.InsertStages(first...)
			return nil
		}
		pipe.Stages = []*Stage{pre}
		return []*Pipeline{pipe}, nil
	}
	first, err := mkIter(1)
	if err != nil {
		return nil, err
	}
	pipe.Stages = first
	return []*Pipeline{pipe}, nil
}
