package core

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/kernels"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// Config carries the toolkit's runtime knobs.
type Config struct {
	// Clock is the virtual clock driving the simulation. Required.
	Clock vclock.Clock
	// Cost predicts kernel runtimes; nil installs the builtin kernel
	// registry.
	Cost pilot.CostModel
	// Runtime tunes the pilot layer; zero value takes pilot defaults.
	Runtime pilot.Config
	// Exec selects the executor implementation: the graph executor
	// (default — patterns are lowered to Task/Stage/Pipeline graphs and
	// run by the engine in graph.go) or the seed pattern executor
	// (ExecRef), kept as the reference path the graph-parity tests
	// compare against. Both produce bit-identical Reports.
	Exec ExecPath
	// MaxRetries is the default per-task retry budget (0 = no retries).
	MaxRetries int
	// InitOverhead models toolkit bootstrap (module loading, state
	// database connection); part of the constant core overhead.
	InitOverhead time.Duration
}

// defaultCost lazily builds the shared builtin kernel registry used by
// every binding that does not bring its own cost model. The registry is
// concurrency-safe and bindings only read from it, so sharing one
// instance avoids rebuilding the builtin table per binding.
var defaultCost = sync.OnceValue(func() pilot.CostModel { return kernels.NewRegistry() })

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Clock == nil {
		return c, fmt.Errorf("core: config needs a clock")
	}
	if c.Cost == nil {
		c.Cost = defaultCost()
	}
	zero := pilot.Config{}
	if c.Runtime == zero {
		c.Runtime = pilot.DefaultConfig()
	}
	if c.InitOverhead == 0 {
		c.InitOverhead = time.Second
	}
	return c, nil
}

// ResourceHandle acquires resources and runs patterns on them (Section
// III-B3): Allocate submits the pilot, Run executes a pattern, Deallocate
// releases the allocation. Execute chains all three and produces the full
// TTC report.
//
// Since the resource-binding redesign the handle is a compatibility
// shim over a single-pilot ResourceSet (binding.go): the set carries
// the session, the unit manager, and the shared submission batcher,
// and the single-pilot path is bit-identical to the seed handle
// (gated by TestResourceSetReportParity). Multi-machine campaigns use
// a ResourceSet directly.
type ResourceHandle struct {
	// Resource is the machine label, e.g. "xsede.comet".
	Resource string
	// Cores is the pilot size.
	Cores int
	// Walltime bounds the allocation.
	Walltime time.Duration
	// Queue and Project pass through to the batch system.
	Queue   string
	Project string

	rs *ResourceSet
}

// NewResourceHandle validates the request and prepares a handle.
func NewResourceHandle(resource string, cores int, walltime time.Duration, cfg Config) (*ResourceHandle, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if resource == "" {
		return nil, fmt.Errorf("core: resource handle needs a resource")
	}
	if cores < 1 {
		return nil, fmt.Errorf("core: resource handle needs at least one core")
	}
	if walltime <= 0 {
		return nil, fmt.Errorf("core: resource handle needs a positive walltime")
	}
	h := &ResourceHandle{
		Resource: resource,
		Cores:    cores,
		Walltime: walltime,
	}
	h.rs = &ResourceSet{
		Specs: []PilotSpec{{Resource: resource, Cores: cores, Walltime: walltime}},
		cfg:   full,
	}
	return h, nil
}

// BindingLabel implements Binding.
func (h *ResourceHandle) BindingLabel() string { return h.Resource }

// TotalCores implements Binding.
func (h *ResourceHandle) TotalCores() int { return h.Cores }

// bind exposes the underlying single-pilot set.
func (h *ResourceHandle) bind() *ResourceSet { return h.rs }

// Session exposes the underlying runtime session (profiling, tests).
func (h *ResourceHandle) Session() *pilot.Session { return h.rs.Session() }

// Pilot exposes the allocated pilot, nil before Allocate.
func (h *ResourceHandle) Pilot() *pilot.ComputePilot {
	if len(h.rs.pilots) == 0 {
		return nil
	}
	return h.rs.pilots[0]
}

// ControlOverhead returns the toolkit's control-plane time so far
// (Allocate plus any completed Deallocate) — what Execute patches into
// Report.CoreOverhead after deallocation. Campaign runners that
// sequence Allocate / AppManager.Run / Deallocate themselves use it to
// account the dealloc phase like the pattern path does.
func (h *ResourceHandle) ControlOverhead() time.Duration { return h.rs.ControlOverhead() }

// Allocate initialises the toolkit and submits the resource request. It
// returns once the request is submitted (not when it becomes active);
// Run waits for activation. The time spent here is control-plane work and
// counts toward the core overhead.
func (h *ResourceHandle) Allocate() error {
	// The public fields may have been adjusted after construction
	// (Queue, Project); sync them into the spec late, like the seed
	// handle read them at Allocate.
	h.rs.Specs[0] = PilotSpec{
		Resource: h.Resource,
		Cores:    h.Cores,
		Walltime: h.Walltime,
		Queue:    h.Queue,
		Project:  h.Project,
	}
	return h.rs.Allocate()
}

// Run executes one pattern on the allocated resources and returns its
// report. Multiple patterns may run sequentially on one handle.
func (h *ResourceHandle) Run(p Pattern) (*Report, error) { return h.rs.Run(p) }

// Deallocate cancels the pilot and releases the session. Its control time
// joins the core overhead of subsequently produced reports.
func (h *ResourceHandle) Deallocate() error { return h.rs.Deallocate() }

// Execute allocates, runs the pattern, and deallocates, returning a
// report whose core overhead includes both control phases. This is what
// the experiment harness uses.
func (h *ResourceHandle) Execute(p Pattern) (*Report, error) { return h.rs.Execute(p) }
