package core

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/kernels"
	"entk/internal/pilot"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// Config carries the toolkit's runtime knobs.
type Config struct {
	// Clock is the virtual clock driving the simulation. Required.
	Clock *vclock.Virtual
	// Cost predicts kernel runtimes; nil installs the builtin kernel
	// registry.
	Cost pilot.CostModel
	// Runtime tunes the pilot layer; zero value takes pilot defaults.
	Runtime pilot.Config
	// Exec selects the executor implementation: the graph executor
	// (default — patterns are lowered to Task/Stage/Pipeline graphs and
	// run by the engine in graph.go) or the seed pattern executor
	// (ExecRef), kept as the reference path the graph-parity tests
	// compare against. Both produce bit-identical Reports.
	Exec ExecPath
	// MaxRetries is the default per-task retry budget (0 = no retries).
	MaxRetries int
	// InitOverhead models toolkit bootstrap (module loading, state
	// database connection); part of the constant core overhead.
	InitOverhead time.Duration
}

// defaultCost lazily builds the shared builtin kernel registry used by
// every handle that does not bring its own cost model. The registry is
// concurrency-safe and handles only read from it, so sharing one
// instance avoids rebuilding the builtin table per handle.
var defaultCost = sync.OnceValue(func() pilot.CostModel { return kernels.NewRegistry() })

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Clock == nil {
		return c, fmt.Errorf("core: config needs a clock")
	}
	if c.Cost == nil {
		c.Cost = defaultCost()
	}
	zero := pilot.Config{}
	if c.Runtime == zero {
		c.Runtime = pilot.DefaultConfig()
	}
	if c.InitOverhead == 0 {
		c.InitOverhead = time.Second
	}
	return c, nil
}

// ResourceHandle acquires resources and runs patterns on them (Section
// III-B3): Allocate submits the pilot, Run executes a pattern, Deallocate
// releases the allocation. Execute chains all three and produces the full
// TTC report.
type ResourceHandle struct {
	// Resource is the machine label, e.g. "xsede.comet".
	Resource string
	// Cores is the pilot size.
	Cores int
	// Walltime bounds the allocation.
	Walltime time.Duration
	// Queue and Project pass through to the batch system.
	Queue   string
	Project string

	cfg  Config
	sess *pilot.Session
	pm   *pilot.PilotManager
	um   *pilot.UnitManager
	p    *pilot.ComputePilot

	// Core-layer profiler ids, interned once at Allocate: the toolkit's
	// own control-plane phases record onto the "core" entity so the TTC
	// decomposition's constant overhead is reconstructible from events.
	coreEnt                        profile.EntityID
	evBootstrapDone, evPilotSubmit profile.NameID
	evRunStart, evRunStop          profile.NameID
	evDeallocStart, evDeallocStop  profile.NameID

	mu           sync.Mutex
	allocated    bool
	allocCtl     time.Duration // control-plane time spent in Allocate
	deallocCtl   time.Duration // control-plane time spent in Deallocate
	queueWait    time.Duration
	agentStartup time.Duration
}

// NewResourceHandle validates the request and prepares a handle.
func NewResourceHandle(resource string, cores int, walltime time.Duration, cfg Config) (*ResourceHandle, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if resource == "" {
		return nil, fmt.Errorf("core: resource handle needs a resource")
	}
	if cores < 1 {
		return nil, fmt.Errorf("core: resource handle needs at least one core")
	}
	if walltime <= 0 {
		return nil, fmt.Errorf("core: resource handle needs a positive walltime")
	}
	return &ResourceHandle{
		Resource: resource,
		Cores:    cores,
		Walltime: walltime,
		cfg:      full,
	}, nil
}

// Session exposes the underlying runtime session (profiling, tests).
func (h *ResourceHandle) Session() *pilot.Session { return h.sess }

// Pilot exposes the allocated pilot, nil before Allocate.
func (h *ResourceHandle) Pilot() *pilot.ComputePilot { return h.p }

// ControlOverhead returns the toolkit's control-plane time so far
// (Allocate plus any completed Deallocate) — what Execute patches into
// Report.CoreOverhead after deallocation. Campaign runners that
// sequence Allocate / AppManager.Run / Deallocate themselves use it to
// account the dealloc phase like the pattern path does.
func (h *ResourceHandle) ControlOverhead() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocCtl + h.deallocCtl
}

// Allocate initialises the toolkit and submits the resource request. It
// returns once the request is submitted (not when it becomes active);
// Run waits for activation. The time spent here is control-plane work and
// counts toward the core overhead.
func (h *ResourceHandle) Allocate() error {
	h.mu.Lock()
	if h.allocated {
		h.mu.Unlock()
		return fmt.Errorf("core: resource handle already allocated")
	}
	h.allocated = true
	h.mu.Unlock()

	v := h.cfg.Clock
	t0 := v.Now()
	v.Sleep(h.cfg.InitOverhead) // toolkit bootstrap
	h.sess = pilot.NewSession(v, h.cfg.Cost, h.cfg.Runtime)
	prof := h.sess.Prof
	h.coreEnt = prof.Intern("core")
	h.evBootstrapDone = prof.InternName("bootstrap_done")
	h.evPilotSubmit = prof.InternName("pilot_submitted")
	h.evRunStart = prof.InternName("run_start")
	h.evRunStop = prof.InternName("run_stop")
	h.evDeallocStart = prof.InternName("dealloc_start")
	h.evDeallocStop = prof.InternName("dealloc_stop")
	prof.RecordID(h.coreEnt, h.evBootstrapDone)
	h.pm = pilot.NewPilotManager(h.sess)
	h.um = pilot.NewUnitManager(h.sess)
	p, err := h.pm.Submit(pilot.PilotDescription{
		Resource: h.Resource,
		Cores:    h.Cores,
		Walltime: h.Walltime,
		Queue:    h.Queue,
		Project:  h.Project,
	})
	if err != nil {
		h.mu.Lock()
		h.allocated = false
		h.mu.Unlock()
		return err
	}
	h.p = p
	h.um.AddPilot(p)
	prof.RecordID(h.coreEnt, h.evPilotSubmit)
	h.mu.Lock()
	h.allocCtl = v.Now() - t0
	h.mu.Unlock()
	return nil
}

// waitActive blocks until the pilot accepts units, recording the queue
// wait (which is resource wait, not toolkit overhead).
func (h *ResourceHandle) waitActive() error {
	if h.p == nil {
		return fmt.Errorf("core: resource handle not allocated")
	}
	v := h.cfg.Clock
	t0 := v.Now()
	h.p.WaitActive()
	if h.p.State() != pilot.PilotActive {
		return fmt.Errorf("core: pilot failed before activation (%v)", h.p.State())
	}
	h.mu.Lock()
	h.queueWait = h.p.QueueWait()
	h.agentStartup = v.Now() - t0 - h.queueWait
	if h.agentStartup < 0 {
		h.agentStartup = 0
	}
	h.mu.Unlock()
	return nil
}

// Run executes one pattern on the allocated resources and returns its
// report. Multiple patterns may run sequentially on one handle.
func (h *ResourceHandle) Run(p Pattern) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	h.mu.Lock()
	ok := h.allocated
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: Run before Allocate")
	}
	if err := h.waitActive(); err != nil {
		return nil, err
	}

	ex := newExecutor(h, p)
	v := h.cfg.Clock
	h.sess.Prof.RecordID(h.coreEnt, h.evRunStart)
	t0 := v.Now()
	err := ex.run()
	ttc := v.Now() - t0
	h.sess.Prof.RecordID(h.coreEnt, h.evRunStop)

	rep := ex.report()
	rep.TTC = ttc
	h.mu.Lock()
	rep.CoreOverhead = h.allocCtl + h.deallocCtl
	rep.QueueWait = h.queueWait
	rep.AgentStartup = h.agentStartup
	h.mu.Unlock()
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// Deallocate cancels the pilot and releases the session. Its control time
// joins the core overhead of subsequently produced reports.
func (h *ResourceHandle) Deallocate() error {
	h.mu.Lock()
	if !h.allocated {
		h.mu.Unlock()
		return fmt.Errorf("core: Deallocate before Allocate")
	}
	h.mu.Unlock()
	v := h.cfg.Clock
	h.sess.Prof.RecordID(h.coreEnt, h.evDeallocStart)
	t0 := v.Now()
	if h.p != nil {
		h.p.Cancel()
		h.p.WaitFinal()
	}
	h.sess.Prof.RecordID(h.coreEnt, h.evDeallocStop)
	h.mu.Lock()
	h.deallocCtl = v.Now() - t0
	h.mu.Unlock()
	return nil
}

// Execute allocates, runs the pattern, and deallocates, returning a
// report whose core overhead includes both control phases. This is what
// the experiment harness uses.
func (h *ResourceHandle) Execute(p Pattern) (*Report, error) {
	if err := h.Allocate(); err != nil {
		return nil, err
	}
	rep, runErr := h.Run(p)
	if err := h.Deallocate(); err != nil && runErr == nil {
		runErr = err
	}
	if rep != nil {
		h.mu.Lock()
		rep.CoreOverhead = h.allocCtl + h.deallocCtl
		h.mu.Unlock()
	}
	return rep, runErr
}
