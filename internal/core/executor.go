package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"entk/internal/pad"
	"entk/internal/pilot"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// PatternError reports tasks that failed after exhausting their retries.
type PatternError struct {
	Pattern string
	Failed  []string // task names with causes
}

// Error implements error.
func (e *PatternError) Error() string {
	return fmt.Sprintf("core: pattern %s: %d task(s) failed: %s",
		e.Pattern, len(e.Failed), strings.Join(e.Failed, "; "))
}

// taskSpec pairs a task name with its kernel.
type taskSpec struct {
	name string
	k    *Kernel
}

// eopTaskName formats "pipeNNNN.stageMM" (pad: task naming sits on the
// per-unit hot path).
func eopTaskName(pipe, stage int) string {
	return "pipe" + pad.Int(pipe, 4) + ".stage" + pad.Int(stage, 2)
}

// eeTaskName formats "cycleNNN.replicaNNNNN".
func eeTaskName(cycle, replica int) string {
	return "cycle" + pad.Int(cycle, 3) + ".replica" + pad.Int(replica, 5)
}

// executor is the execution engine's per-run state: it binds kernels
// into pilot units, submits them (serialized, like the real toolkit's
// client process), enforces synchronisation, retries failures, and
// accumulates the report. Two implementations share it: the graph
// executor (graph.go, the default — patterns are lowered to Pipelines,
// see lower.go) and the seed pattern executor kept below as the
// ExecRef reference path.
type executor struct {
	rs    *ResourceSet
	pat   Pattern // nil for AppManager pipeline runs
	name  string  // report label: pattern name or pipeline name
	v     vclock.Clock
	batch *pilot.WaveBatcher

	// subLock serializes task submission; the time spent holding it is
	// the pattern overhead.
	subLock *vclock.Semaphore

	// Pattern-overhead profiler ids, interned once per executor: every
	// tracked submission brackets itself on the "pattern" entity, so the
	// growing overhead component of the TTC is reconstructible from
	// events without per-batch string formatting.
	prof                  *profile.Profiler
	patEnt                profile.EntityID
	evSubStart, evSubStop profile.NameID

	mu              sync.Mutex
	planned         int // static task plan (Pattern/Pipeline TaskCount)
	patternOverhead time.Duration
	tasks           int
	retries         int
	phases          *phaseAccumulator

	// Deferred phase buckets (graph executor only): units accumulated
	// under a phase name and folded into the stats once the pipeline set
	// completes. See registerDeferredPhase in graph.go.
	deferOrder []string
	deferUnits map[string][]*pilot.ComputeUnit
	deferForce map[string]bool

	// Checkpoint hooks (campaign pipeline runs): skipStages makes
	// runPipeline treat the first n stages as already settled (the
	// resumed prefix), and onSettled — when set — receives a cumulative
	// snapshot after every settled stage barrier. Both are configured
	// before run() starts; onSettled is called outside ex.mu.
	// hookSnaps accumulates the settled-unit snapshots of hook-carrying
	// stages (seeded from the checkpoint on resume, grown at each new
	// hook barrier) — runPipeline replays skipped hooks from it, and
	// noteSettled carries it into every later checkpoint.
	skipStages int
	onSettled  func(PipelineCheckpoint)
	hookSnaps  []StageSnapshot
}

func newExecutor(rs *ResourceSet, p Pattern) *executor {
	ex := newNamedExecutor(rs, p.PatternName())
	ex.pat = p
	ex.planned = p.TaskCount()
	return ex
}

// newNamedExecutor builds an executor without a pattern — the AppManager
// uses it to run application-built pipelines directly.
func newNamedExecutor(rs *ResourceSet, name string) *executor {
	ex := &executor{
		rs:         rs,
		name:       name,
		v:          rs.cfg.Clock,
		batch:      rs.batch,
		subLock:    vclock.NewSemaphore(rs.cfg.Clock, "core submit", 1),
		phases:     newPhaseAccumulator(),
		deferUnits: make(map[string][]*pilot.ComputeUnit),
		deferForce: make(map[string]bool),
	}
	ex.prof = rs.sess.Prof
	ex.patEnt = ex.prof.Intern("pattern")
	ex.evSubStart = ex.prof.InternName("submit_start")
	ex.evSubStop = ex.prof.InternName("submit_stop")
	return ex
}

// seedFrom preloads the executor from a checkpoint snapshot: the
// settled prefix is skipped and the counters continue where the
// interrupted run stopped, so the resumed report agrees with an
// uninterrupted one on every reorder-invariant column.
func (ex *executor) seedFrom(pc *PipelineCheckpoint) {
	ex.skipStages = pc.SettledStages
	ex.tasks = pc.Tasks
	ex.retries = pc.Retries
	ex.patternOverhead = pc.PatternOverhead
	ex.phases.merge("", pc.Phases)
	ex.hookSnaps = append([]StageSnapshot(nil), pc.HookStages...)
}

// hookSnapshot returns the checkpointed unit snapshot for the hook
// stage at execution index seq, nil if the checkpoint never recorded
// one (a stage without a hook, or a pre-v2 checkpoint).
func (ex *executor) hookSnapshot(seq int) *StageSnapshot {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for i := range ex.hookSnaps {
		if ex.hookSnaps[i].Seq == seq {
			return &ex.hookSnaps[i]
		}
	}
	return nil
}

// captureHookStage snapshots a just-settled hook stage's units for
// checkpointing, so a later Resume can replay the PostStage hook.
// Only campaign runs (onSettled set) pay for this; lowered pattern
// runs are never resumed and skip it.
func (ex *executor) captureHookStage(seq int, units []*pilot.ComputeUnit) {
	// nil (not empty) when the stage had no units, so an in-memory
	// checkpoint stays DeepEqual to its serialised round trip.
	var snaps []UnitSnapshot
	for _, u := range units {
		if u == nil {
			continue
		}
		start, stop, _ := u.ExecWindow()
		snaps = append(snaps, UnitSnapshot{
			Name:   u.Desc.Name,
			Kernel: u.Desc.Kernel,
			Params: u.Desc.Params,
			Cores:  u.Desc.Cores,
			MPI:    u.Desc.MPI,
			Tags:   u.Desc.Tags,
			Start:  start,
			Stop:   stop,
		})
	}
	ex.mu.Lock()
	ex.hookSnaps = append(ex.hookSnaps, StageSnapshot{Seq: seq, Units: snaps})
	ex.mu.Unlock()
}

// noteSettled snapshots the executor at a settled stage barrier for the
// campaign tracker; seq is the stage's execution index from the
// pipeline's start (including any resumed prefix).
func (ex *executor) noteSettled(seq int) {
	if ex.onSettled == nil {
		return
	}
	ex.mu.Lock()
	snap := PipelineCheckpoint{
		Name:            ex.name,
		SettledStages:   seq,
		Tasks:           ex.tasks,
		Retries:         ex.retries,
		PatternOverhead: ex.patternOverhead,
		Phases:          ex.phases.stats(),
	}
	if len(ex.hookSnaps) > 0 {
		snap.HookStages = append([]StageSnapshot(nil), ex.hookSnaps...)
	}
	ex.mu.Unlock()
	ex.onSettled(snap)
}

// report assembles the final Report.
func (ex *executor) report() *Report {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return &Report{
		Pattern:         ex.name,
		Resource:        ex.rs.BindingLabel(),
		Cores:           ex.rs.TotalCores(),
		PlannedTasks:    ex.planned,
		Tasks:           ex.tasks,
		Retries:         ex.retries,
		PatternOverhead: ex.patternOverhead,
		Phases:          ex.phases.stats(),
	}
}

// run executes the pattern on the configured path: the graph executor
// (default) or the seed reference executor (Config.Exec = ExecRef).
func (ex *executor) run() error {
	if ex.rs.cfg.Exec == ExecRef {
		return ex.runRef()
	}
	return ex.runGraph()
}

// runRef dispatches to the seed pattern-specific plugin — the reference
// execution path the graph-parity tests compare against.
func (ex *executor) runRef() error {
	switch p := ex.pat.(type) {
	case *EnsembleOfPipelines:
		return ex.runEoP(p)
	case *EnsembleExchange:
		if p.Mode == PairwiseExchange {
			return ex.runEEPairwise(p)
		}
		return ex.runEECollective(p)
	case *SimulationAnalysisLoop:
		return ex.runSAL(p)
	case *Composite:
		return ex.runComposite(p)
	default:
		return fmt.Errorf("core: no execution plugin for pattern %T", ex.pat)
	}
}

// runGraph lowers the pattern to pipelines and runs them on the graph
// executor. Composite recurses through runComposite (whose member
// sub-executors dispatch per the configured path again), so composite
// members lower individually and the accounting merge is shared with
// the reference path.
func (ex *executor) runGraph() error {
	if c, ok := ex.pat.(*Composite); ok {
		return ex.runComposite(c)
	}
	pls, err := ex.lowerPattern(ex.pat)
	if err != nil {
		return err
	}
	return ex.runPipelineSet(pls)
}

// ---------------------------------------------------------------------------
// Task execution with retry

// submitTracked validates kernels, binds them to unit descriptions, and
// submits them under the submission lock, charging the elapsed time to
// the pattern overhead. Submission goes through the binding's shared
// wave batcher, so waves from concurrent executors (one per campaign
// pipeline) coalesce at the unit manager.
func (ex *executor) submitTracked(specs []taskSpec, attempts []int) ([]*pilot.ComputeUnit, error) {
	return ex.submitVia(specs, attempts, ex.batch.Submit)
}

// submitStreamedTracked is submitTracked over the unit manager's
// streaming path: units are dispatched one by one as their client-side
// submission cost elapses, instead of all at once after the whole batch's
// cost. It reproduces the event timing of N sequential single-unit
// submissions while paying the client bookkeeping only once.
func (ex *executor) submitStreamedTracked(specs []taskSpec, attempts []int) ([]*pilot.ComputeUnit, error) {
	return ex.submitVia(specs, attempts, ex.batch.SubmitStreamed)
}

func (ex *executor) submitVia(specs []taskSpec, attempts []int,
	submit func([]pilot.UnitDescription) ([]*pilot.ComputeUnit, error)) ([]*pilot.ComputeUnit, error) {
	descs := make([]pilot.UnitDescription, len(specs))
	// Homogeneous waves share one kernel instance (every stress tier and
	// most lowered stages); validate each distinct kernel once. A nil
	// kernel must never match the memo's zero value — Validate is what
	// turns it into the "core: nil kernel" error instead of a panic in
	// bind.
	var lastOK *Kernel
	for i, s := range specs {
		if s.k == nil || s.k != lastOK {
			if err := s.k.Validate(); err != nil {
				return nil, err
			}
			lastOK = s.k
		}
		descs[i] = s.k.bind(s.name, attempts[i])
	}
	ex.subLock.Acquire(1)
	ex.prof.RecordID(ex.patEnt, ex.evSubStart)
	t0 := ex.v.Now()
	units, err := submit(descs)
	dt := ex.v.Now() - t0
	ex.prof.RecordID(ex.patEnt, ex.evSubStop)
	ex.subLock.Release(1)
	if err != nil {
		return nil, err
	}
	ex.mu.Lock()
	ex.patternOverhead += dt
	ex.mu.Unlock()
	return units, nil
}

// runTasks executes specs to completion with per-task retry, returning
// the successful unit for each spec (in order).
func (ex *executor) runTasks(specs []taskSpec) ([]*pilot.ComputeUnit, error) {
	return ex.runTasksVia(specs, ex.submitTracked)
}

// runTasksStreamed is runTasks over the streaming submission path.
func (ex *executor) runTasksStreamed(specs []taskSpec) ([]*pilot.ComputeUnit, error) {
	return ex.runTasksVia(specs, ex.submitStreamedTracked)
}

func (ex *executor) runTasksVia(specs []taskSpec,
	submit func([]taskSpec, []int) ([]*pilot.ComputeUnit, error)) ([]*pilot.ComputeUnit, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	ex.mu.Lock()
	ex.tasks += len(specs)
	ex.mu.Unlock()

	result := make([]*pilot.ComputeUnit, len(specs))
	attempts := make([]int, len(specs))
	var pending []int // indices into specs; unused on the first wave
	var failures []string
	first := true
	for first || len(pending) > 0 {
		// The first wave is the whole spec set: submit it as built, no
		// per-wave rematerialisation (the ~5-10% graph-path overhead on
		// big streamed waves). Only retry waves — a handful of indices —
		// gather into fresh slices.
		batch, att := specs, attempts
		if !first {
			batch = make([]taskSpec, len(pending))
			att = make([]int, len(pending))
			for i, idx := range pending {
				batch[i] = specs[idx]
				att[i] = attempts[idx]
			}
		}
		units, err := submit(batch, att)
		if err != nil {
			return nil, err
		}
		var next []int
		for i, u := range units {
			idx := i
			if !first {
				idx = pending[i]
			}
			switch u.WaitFinal() {
			case pilot.UnitDone:
				result[idx] = u
			case pilot.UnitCanceled:
				failures = append(failures, fmt.Sprintf("%s: canceled", specs[idx].name))
			default: // failed
				budget := specs[idx].k.retries(ex.rs.cfg.MaxRetries)
				if attempts[idx] < budget {
					attempts[idx]++
					ex.mu.Lock()
					ex.retries++
					ex.mu.Unlock()
					next = append(next, idx)
				} else {
					failures = append(failures, fmt.Sprintf("%s: %v", specs[idx].name, u.Err()))
				}
			}
		}
		pending = next
		first = false
	}
	if len(failures) > 0 {
		return result, &PatternError{Pattern: ex.name, Failed: failures}
	}
	return result, nil
}

// unitStats computes the wall span and cumulative busy time of a set of
// completed units.
func unitStats(units []*pilot.ComputeUnit) (span, busy time.Duration, n int) {
	var minStart, maxStop time.Duration
	first := true
	for _, u := range units {
		if u == nil {
			continue
		}
		start, stop, ok := u.ExecWindow()
		if !ok {
			continue
		}
		n++
		busy += stop - start
		if first || start < minStart {
			minStart = start
		}
		if first || stop > maxStop {
			maxStop = stop
		}
		first = false
	}
	if !first {
		span = maxStop - minStart
	}
	return span, busy, n
}

// runPhase executes specs as one occurrence of the named phase and
// records its stats.
func (ex *executor) runPhase(name string, specs []taskSpec) ([]*pilot.ComputeUnit, error) {
	units, err := ex.runTasks(specs)
	if err != nil {
		return units, err
	}
	span, busy, n := unitStats(units)
	ex.mu.Lock()
	ex.phases.add(name, span, busy, n)
	ex.mu.Unlock()
	return units, nil
}

// ---------------------------------------------------------------------------
// Ensemble of Pipelines plugin

func (ex *executor) runEoP(p *EnsembleOfPipelines) error {
	if p.BulkStages {
		return ex.runEoPBulk(p)
	}
	if p.Stages == 1 {
		return ex.runEoPSingleStage(p)
	}
	// Pipelines execute independently; stages within a pipeline are
	// sequential. Stage statistics are aggregated after the fact so that
	// each stage appears once in the report.
	stageUnits := make([][]*pilot.ComputeUnit, p.Stages)
	var mu sync.Mutex
	var firstErr error
	wg := vclock.NewWaitGroup(ex.v, "eop pipelines")
	for pl := 1; pl <= p.Pipelines; pl++ {
		pl := pl
		wg.Add(1)
		ex.v.Go(func() {
			defer wg.Done()
			for st := 1; st <= p.Stages; st++ {
				k := p.StageKernel(st, pl)
				if k == nil {
					// A nil kernel ends this pipeline early (branching).
					return
				}
				name := eopTaskName(pl, st)
				units, err := ex.runTasks([]taskSpec{{name, k}})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				stageUnits[st-1] = append(stageUnits[st-1], units...)
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	for st := 1; st <= p.Stages; st++ {
		units := stageUnits[st-1]
		if len(units) == 0 {
			continue
		}
		span, busy, n := unitStats(units)
		ex.mu.Lock()
		ex.phases.add(fmt.Sprintf("stage.%d", st), span, busy, n)
		ex.mu.Unlock()
	}
	return firstErr
}

// runEoPSingleStage executes a one-stage ensemble without per-pipeline
// goroutines: with no inter-stage ordering to enforce, the tasks are
// independent and can be submitted as one stream. The streaming path
// dispatches unit i after i+1 client-side submission costs, exactly when
// the default mode's i-th serialized single-unit submission would have,
// so the simulated timeline of a clean run is unchanged — only the
// client bookkeeping (goroutines, per-call locking) is saved. One
// intended semantic difference: failed units are resubmitted per wave
// (after the whole batch is waited on), like every other multi-task
// phase (EE, SAL), instead of the seed's per-pipeline immediate retry.
// This is the hot path of the unit-throughput benchmark and the EoP
// stress tier.
func (ex *executor) runEoPSingleStage(p *EnsembleOfPipelines) error {
	specs := make([]taskSpec, 0, p.Pipelines)
	for pl := 1; pl <= p.Pipelines; pl++ {
		k := p.StageKernel(1, pl)
		if k == nil {
			continue // branching: this pipeline ends before stage 1
		}
		specs = append(specs, taskSpec{eopTaskName(pl, 1), k})
	}
	if len(specs) == 0 {
		return nil
	}
	units, err := ex.runTasksStreamed(specs)
	if len(units) > 0 {
		span, busy, n := unitStats(units)
		ex.mu.Lock()
		ex.phases.add("stage.1", span, busy, n)
		ex.mu.Unlock()
	}
	return err
}

// runEoPBulk executes the ensemble with a barrier between stages: stage s
// of every still-live pipeline is one bulk submission (one tracked call),
// the way EnTK submits a stage's CU descriptions with a single
// submit_units. Selected by EnsembleOfPipelines.BulkStages.
func (ex *executor) runEoPBulk(p *EnsembleOfPipelines) error {
	live := make([]bool, p.Pipelines+1)
	for pl := 1; pl <= p.Pipelines; pl++ {
		live[pl] = true
	}
	for st := 1; st <= p.Stages; st++ {
		specs := make([]taskSpec, 0, p.Pipelines)
		for pl := 1; pl <= p.Pipelines; pl++ {
			if !live[pl] {
				continue
			}
			k := p.StageKernel(st, pl)
			if k == nil {
				live[pl] = false // branching: pipeline ends early
				continue
			}
			specs = append(specs, taskSpec{eopTaskName(pl, st), k})
		}
		if len(specs) == 0 {
			return nil
		}
		if _, err := ex.runPhase(fmt.Sprintf("stage.%d", st), specs); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ensemble Exchange plugin (collective mode)

func (ex *executor) runEECollective(p *EnsembleExchange) error {
	for cycle := 1; cycle <= p.Cycles; cycle++ {
		specs := make([]taskSpec, p.Replicas)
		for r := 1; r <= p.Replicas; r++ {
			specs[r-1] = taskSpec{
				name: eeTaskName(cycle, r),
				k:    p.SimulationKernel(cycle, r),
			}
		}
		if _, err := ex.runPhase("simulation", specs); err != nil {
			return err
		}
		exSpec := taskSpec{
			name: fmt.Sprintf("cycle%03d.exchange", cycle),
			k:    p.ExchangeKernel(cycle),
		}
		if _, err := ex.runPhase("exchange", []taskSpec{exSpec}); err != nil {
			return err
		}
		if p.ExchangeLogic != nil {
			p.ExchangeLogic(cycle)
		}
		if p.StopWhen != nil && p.StopWhen(cycle) {
			break
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ensemble Exchange plugin (pairwise mode)

func (ex *executor) runEEPairwise(p *EnsembleExchange) error {
	partner := p.Partner
	if partner == nil {
		partner = func(cycle, replica int) int {
			return defaultPartner(cycle, replica, p.Replicas)
		}
	}

	rv := newPairRendezvous(ex.v, p, partner)
	var mu sync.Mutex
	var simUnits, exUnits []*pilot.ComputeUnit
	var firstErr error

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	wg := vclock.NewWaitGroup(ex.v, "ee replicas")
	for r := 1; r <= p.Replicas; r++ {
		r := r
		wg.Add(1)
		ex.v.Go(func() {
			defer wg.Done()
			for cycle := 1; cycle <= p.Cycles; cycle++ {
				name := eeTaskName(cycle, r)
				units, err := ex.runTasks([]taskSpec{{name, p.SimulationKernel(cycle, r)}})
				if err != nil {
					fail(err)
					// Release current and future partners before the
					// replica disappears, or they would deadlock at
					// their rendezvous.
					rv.abandon(r, cycle)
					return
				}
				mu.Lock()
				simUnits = append(simUnits, units...)
				mu.Unlock()

				e, role := rv.arrive(r, cycle)
				switch role {
				case pairUnpaired:
					continue // unpaired this cycle (or partner failed)
				case pairFirst:
					// First arriver waits for its partner to run the
					// exchange — no other replicas are involved.
					e.ev.Wait()
					continue
				}
				// Second arriver executes the pairwise exchange task.
				exName := fmt.Sprintf("cycle%03d.exchange.%05d-%05d", cycle, e.lo, e.hi)
				exu, err := ex.runTasks([]taskSpec{{exName, p.ExchangeKernel(cycle)}})
				if err != nil {
					fail(err)
					e.ev.Fire()
					rv.abandon(r, cycle+1)
					return
				}
				mu.Lock()
				exUnits = append(exUnits, exu...)
				mu.Unlock()
				if p.PairLogic != nil {
					p.PairLogic(cycle, e.lo, e.hi)
				}
				e.ev.Fire()
			}
		})
	}
	wg.Wait()

	span, busy, n := unitStats(simUnits)
	ex.mu.Lock()
	ex.phases.add("simulation", span, busy, n)
	ex.mu.Unlock()
	span, busy, n = unitStats(exUnits)
	ex.mu.Lock()
	ex.phases.add("exchange", span, busy, n)
	ex.mu.Unlock()
	return firstErr
}

// ---------------------------------------------------------------------------
// Simulation Analysis Loop plugin

func (ex *executor) runSAL(p *SimulationAnalysisLoop) error {
	if p.PreLoop != nil {
		if k := p.PreLoop(); k != nil {
			if _, err := ex.runPhase("pre_loop", []taskSpec{{"pre_loop", k}}); err != nil {
				return err
			}
		}
	}
	for iter := 1; iter <= p.Iterations; iter++ {
		width := p.Simulations
		if p.AdaptiveSimulations != nil {
			width = p.AdaptiveSimulations(iter)
			if err := validateAdaptiveWidth(width, iter); err != nil {
				return err
			}
		}
		sims := make([]taskSpec, width)
		for i := 1; i <= width; i++ {
			sims[i-1] = taskSpec{
				name: fmt.Sprintf("iter%03d.sim%05d", iter, i),
				k:    p.SimulationKernel(iter, i),
			}
		}
		if _, err := ex.runPhase("simulation", sims); err != nil {
			return err
		}
		anas := make([]taskSpec, p.Analyses)
		for i := 1; i <= p.Analyses; i++ {
			anas[i-1] = taskSpec{
				name: fmt.Sprintf("iter%03d.ana%05d", iter, i),
				k:    p.AnalysisKernel(iter, i),
			}
		}
		if _, err := ex.runPhase("analysis", anas); err != nil {
			return err
		}
		if p.AdaptiveStop != nil && p.AdaptiveStop(iter) {
			break
		}
	}
	if p.PostLoop != nil {
		if k := p.PostLoop(); k != nil {
			if _, err := ex.runPhase("post_loop", []taskSpec{{"post_loop", k}}); err != nil {
				return err
			}
		}
	}
	return nil
}
