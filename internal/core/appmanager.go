package core

import (
	"errors"
	"fmt"

	"entk/internal/pad"
	"entk/internal/vclock"
)

// AppManager executes application-built pipelines — many, heterogeneous,
// concurrent — on one resource handle (the session-level application
// manager the paper's fixed patterns hide). Each pipeline submits its
// bulk waves independently, so waves from different live pipelines
// interleave at the unit manager and the pilot packs them onto one
// allocation; per-pipeline accounting stays separate and the campaign
// report aggregates it.
type AppManager struct {
	h *ResourceHandle
}

// NewAppManager returns an application manager bound to the handle. The
// handle must be allocated before Run (Allocate, or via Execute-style
// sequencing by the caller).
func NewAppManager(h *ResourceHandle) *AppManager {
	return &AppManager{h: h}
}

// Handle returns the underlying resource handle.
func (am *AppManager) Handle() *ResourceHandle { return am.h }

// CampaignReport is the outcome of one AppManager.Run: the aggregate
// campaign view plus one report per pipeline.
type CampaignReport struct {
	// Campaign aggregates the whole run: TTC is the campaign span (first
	// submission to last completion), task/retry/overhead counters are
	// sums over pipelines, and each pipeline's phases appear prefixed
	// with "<pipeline>.". CoreOverhead, QueueWait, and AgentStartup are
	// handle-level quantities and appear here, not per pipeline.
	Campaign *Report
	// Pipelines holds per-pipeline reports in submission order. Each
	// TTC spans that pipeline's own first-submission-to-completion
	// window; pipelines run concurrently, so these overlap and their
	// sum exceeds the campaign TTC.
	Pipelines []*Report
}

// Run executes the pipelines concurrently on the allocated resources
// and blocks until every pipeline settles. A failing pipeline never
// cancels its siblings; the returned error joins every pipeline
// failure. Like ResourceHandle.Run it must be called from a registered
// clock process, and multiple campaigns (or campaigns and patterns)
// may run sequentially on one handle.
func (am *AppManager) Run(pls ...*Pipeline) (*CampaignReport, error) {
	h := am.h
	if len(pls) == 0 {
		return nil, fmt.Errorf("core: campaign with no pipelines")
	}
	names := make([]string, len(pls))
	for i, pl := range pls {
		if err := pl.validate(); err != nil {
			return nil, err
		}
		names[i] = pl.Name
		if names[i] == "" {
			names[i] = "p" + pad.Int(i+1, 1)
		}
	}
	h.mu.Lock()
	ok := h.allocated
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: campaign Run before Allocate")
	}
	if err := h.waitActive(); err != nil {
		return nil, err
	}

	v := h.cfg.Clock
	h.sess.Prof.RecordID(h.coreEnt, h.evRunStart)
	t0 := v.Now()
	reports := make([]*Report, len(pls))
	errs := make([]error, len(pls))
	wg := vclock.NewWaitGroup(v, "campaign pipelines")
	for i := range pls {
		i := i
		pl := pls[i]
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			ex := newNamedExecutor(h, names[i])
			ex.planned = pl.TaskCount()
			pt0 := v.Now()
			err := ex.runPipelineSet([]*Pipeline{pl})
			rep := ex.report()
			rep.TTC = v.Now() - pt0
			reports[i] = rep
			errs[i] = err
		})
	}
	wg.Wait()
	ttc := v.Now() - t0
	h.sess.Prof.RecordID(h.coreEnt, h.evRunStop)

	agg := &Report{
		Pattern:  "campaign",
		Resource: h.Resource,
		Cores:    h.Cores,
		TTC:      ttc,
	}
	phases := newPhaseAccumulator()
	var joined []error
	for i, rep := range reports {
		agg.PlannedTasks += rep.PlannedTasks
		agg.Tasks += rep.Tasks
		agg.Retries += rep.Retries
		agg.PatternOverhead += rep.PatternOverhead
		phases.merge(names[i]+".", rep.Phases)
		if errs[i] != nil {
			joined = append(joined, fmt.Errorf("core: campaign pipeline %s: %w", names[i], errs[i]))
		}
	}
	agg.Phases = phases.stats()
	h.mu.Lock()
	agg.CoreOverhead = h.allocCtl + h.deallocCtl
	agg.QueueWait = h.queueWait
	agg.AgentStartup = h.agentStartup
	h.mu.Unlock()
	return &CampaignReport{Campaign: agg, Pipelines: reports}, errors.Join(joined...)
}
