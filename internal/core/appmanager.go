package core

import (
	"errors"
	"fmt"
	"sync"

	"entk/internal/pad"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// AppManager executes application-built pipelines — many, heterogeneous,
// concurrent — on one resource binding (the session-level application
// manager the paper's fixed patterns hide). The binding is either a
// classic single-pilot ResourceHandle or a multi-pilot ResourceSet:
// campaigns are written once against the graph API and late-bind to
// whichever pilot of the set has capacity at dispatch time. Each
// pipeline submits its bulk waves independently; the binding's shared
// wave batcher coalesces waves from the live pipelines at the unit
// manager, and per-pipeline accounting stays separate while the
// campaign report aggregates it — including per-pilot utilization
// columns for the campaign window.
type AppManager struct {
	b  Binding
	rs *ResourceSet

	// Campaign tracker: every pipeline's latest stage-barrier snapshot,
	// keyed by name and kept in campaign submission order. Always on —
	// the per-barrier cost is one counter snapshot — so Checkpoint can
	// be called at any time, including after a fault-aborted Run.
	mu     sync.Mutex
	order  []string
	byName map[string]PipelineCheckpoint
}

// NewAppManager returns an application manager bound to the binding —
// a *ResourceHandle (the classic single-pilot form) or a *ResourceSet.
// The binding must be allocated before Run (Allocate, or via
// Execute-style sequencing by the caller).
func NewAppManager(b Binding) *AppManager {
	return &AppManager{b: b, rs: b.bind(), byName: make(map[string]PipelineCheckpoint)}
}

// noteSettled is the campaign tracker's sink: executors push a
// cumulative snapshot at every settled stage barrier.
func (am *AppManager) noteSettled(pc PipelineCheckpoint) {
	am.mu.Lock()
	if _, ok := am.byName[pc.Name]; !ok {
		am.order = append(am.order, pc.Name)
	}
	am.byName[pc.Name] = pc
	am.mu.Unlock()
}

// Checkpoint returns the campaign state at the last settled stage
// barriers of the most recent Run or Resume — callable mid-campaign
// from another clock process, or after a Run returned (fully or
// partially). Persist it with SaveCheckpoint and restart the campaign
// with Resume.
func (am *AppManager) Checkpoint() *CampaignCheckpoint {
	am.mu.Lock()
	defer am.mu.Unlock()
	cp := &CampaignCheckpoint{}
	for _, name := range am.order {
		cp.Pipelines = append(cp.Pipelines, am.byName[name])
	}
	return cp
}

// Handle returns the underlying resource handle when the manager was
// built over one, nil for a direct multi-pilot set.
func (am *AppManager) Handle() *ResourceHandle {
	h, _ := am.b.(*ResourceHandle)
	return h
}

// Binding returns the resource binding the manager runs on.
func (am *AppManager) Binding() Binding { return am.b }

// CampaignReport is the outcome of one AppManager.Run: the aggregate
// campaign view plus one report per pipeline and one utilization row
// per pilot.
type CampaignReport struct {
	// Campaign aggregates the whole run: TTC is the campaign span (first
	// submission to last completion), task/retry/overhead counters are
	// sums over pipelines, and each pipeline's phases appear prefixed
	// with "<pipeline>.". CoreOverhead, QueueWait, and AgentStartup are
	// binding-level quantities and appear here, not per pipeline.
	Campaign *Report
	// Pipelines holds per-pipeline reports in submission order. Each
	// TTC spans that pipeline's own first-submission-to-completion
	// window; pipelines run concurrently, so these overlap and their
	// sum exceeds the campaign TTC.
	Pipelines []*Report
	// Pilots holds one utilization row per pilot of the binding, in set
	// order — how the late-bound campaign actually spread over the
	// machines.
	Pilots []PilotUtilization
}

// Run executes the pipelines concurrently on the allocated resources
// and blocks until every pipeline settles. A failing pipeline never
// cancels its siblings; the returned error joins every pipeline
// failure. Like ResourceHandle.Run it must be called from a registered
// clock process, and multiple campaigns (or campaigns and patterns)
// may run sequentially on one binding.
func (am *AppManager) Run(pls ...*Pipeline) (*CampaignReport, error) {
	return am.run(nil, pls)
}

// Resume restarts a campaign from a checkpoint: pipelines are matched
// to the checkpoint's snapshots by name, each matched pipeline skips
// its settled stage prefix and seeds its counters from the snapshot,
// and unmatched pipelines run from the start. The pipelines passed in
// must be the same graph the checkpoint was taken from (same names,
// same stage order) — the checkpoint records progress, not structure.
func (am *AppManager) Resume(cp *CampaignCheckpoint, pls ...*Pipeline) (*CampaignReport, error) {
	if cp == nil {
		return nil, fmt.Errorf("core: Resume with nil checkpoint")
	}
	return am.run(cp, pls)
}

func (am *AppManager) run(cp *CampaignCheckpoint, pls []*Pipeline) (*CampaignReport, error) {
	rs := am.rs
	if len(pls) == 0 {
		return nil, fmt.Errorf("core: campaign with no pipelines")
	}
	names := make([]string, len(pls))
	for i, pl := range pls {
		if err := pl.validate(); err != nil {
			return nil, err
		}
		names[i] = pl.Name
		if names[i] == "" {
			names[i] = "p" + pad.Int(i+1, 1)
		}
	}
	rs.mu.Lock()
	ok := rs.allocated
	rs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: campaign Run before Allocate")
	}
	if err := rs.waitActive(); err != nil {
		return nil, err
	}

	// Reset the campaign tracker and pre-register every pipeline in
	// submission order, so Checkpoint() ordering is deterministic no
	// matter which pipeline settles a barrier first. On resume the
	// registrations start from the checkpoint's snapshots — a pipeline
	// that settles nothing further re-checkpoints unchanged.
	am.mu.Lock()
	am.order = am.order[:0]
	clear(am.byName)
	for i := range pls {
		reg := PipelineCheckpoint{Name: names[i]}
		if pc := cp.Pipeline(names[i]); pc != nil {
			reg = *pc
		}
		am.order = append(am.order, names[i])
		am.byName[names[i]] = reg
	}
	am.mu.Unlock()

	// Per-pilot utilization snapshots bracketing the campaign window,
	// keyed by identity: the set may grow (AddPilot) or shrink
	// (DrainPilot, injected faults) mid-campaign, so positions are not
	// stable. A pilot added mid-campaign has no "before" snapshot — the
	// map's zero value is exactly the right baseline.
	before := make(map[*pilot.ComputePilot]pilot.UtilSnapshot, len(rs.pilots))
	for _, p := range rs.Pilots() {
		before[p] = p.Util()
	}

	v := rs.cfg.Clock
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evRunStart)
	t0 := v.Now()
	reports := make([]*Report, len(pls))
	errs := make([]error, len(pls))
	wg := vclock.NewWaitGroup(v, "campaign pipelines")
	for i := range pls {
		i := i
		pl := pls[i]
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			ex := newNamedExecutor(rs, names[i])
			ex.planned = pl.TaskCount()
			if pc := cp.Pipeline(names[i]); pc != nil {
				ex.seedFrom(pc)
			}
			ex.onSettled = am.noteSettled
			pt0 := v.Now()
			err := ex.runPipelineSet([]*Pipeline{pl})
			rep := ex.report()
			rep.TTC = v.Now() - pt0
			reports[i] = rep
			errs[i] = err
		})
	}
	wg.Wait()
	ttc := v.Now() - t0
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evRunStop)

	agg := &Report{
		Pattern:  "campaign",
		Resource: rs.BindingLabel(),
		Cores:    rs.TotalCores(),
		TTC:      ttc,
	}
	phases := newPhaseAccumulator()
	var joined []error
	for i, rep := range reports {
		agg.PlannedTasks += rep.PlannedTasks
		agg.Tasks += rep.Tasks
		agg.Retries += rep.Retries
		agg.PatternOverhead += rep.PatternOverhead
		phases.merge(names[i]+".", rep.Phases)
		if errs[i] != nil {
			joined = append(joined, fmt.Errorf("core: campaign pipeline %s: %w", names[i], errs[i]))
		}
	}
	agg.Phases = phases.stats()
	rs.mu.Lock()
	agg.CoreOverhead = rs.allocCtl + rs.deallocCtl
	agg.QueueWait = rs.queueWait
	agg.AgentStartup = rs.agentStartup
	rs.mu.Unlock()

	endPilots := rs.Pilots()
	utils := make([]PilotUtilization, len(endPilots))
	for i, p := range endPilots {
		d := p.Util().Sub(before[p])
		u := PilotUtilization{
			Pilot:     p.ID,
			Resource:  p.Desc.Resource,
			Cores:     p.Desc.Cores,
			Tags:      p.Desc.Tags,
			Units:     d.Units,
			CoreBusy:  d.CoreBusy,
			QueueWait: p.QueueWait(),
		}
		if ttc > 0 && p.Desc.Cores > 0 {
			u.Utilization = d.CoreBusy.Seconds() / (float64(p.Desc.Cores) * ttc.Seconds())
		}
		utils[i] = u
	}
	return &CampaignReport{Campaign: agg, Pipelines: reports, Pilots: utils}, errors.Join(joined...)
}
