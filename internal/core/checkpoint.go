package core

// Campaign checkpoint/resume. The AppManager tracks every pipeline's
// progress at stage-barrier granularity — the only instants at which a
// pipeline's state is a pure prefix (every task of the settled stages is
// final, none of the remainder has started). A checkpoint is the set of
// per-pipeline barrier snapshots; resuming re-runs the same pipelines
// with each settled prefix skipped and the executor counters seeded, so
// the resumed report agrees with an uninterrupted run on every
// reorder-invariant column (tasks, retries, per-phase busy/task/
// occurrence counts — TestResumeReportParity pins this).
//
// PostStage hooks of settled stages ARE replayed on resume: each
// settled stage that carries a hook checkpoints a snapshot of its
// compute units (name, kernel, params, exec window), and resume
// invokes the hook against replay units reconstructed from the
// snapshot, so InsertStages/AppendStages/Terminate graph growth is
// re-derived exactly. The contract this leans on: hooks must be
// deterministic functions of their StageCtl — a hook that consults
// external mutable state may replay differently than it ran.
//
// On disk a checkpoint is the "ENTKCKPT" section below, optionally
// followed — in the same stream — by a full profile dump
// (profile.WriteTo), so one file carries both the resume state and the
// trace evidence of the run that produced it. The profile section
// round-trips through either profiler storage layout.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"entk/internal/profile"
)

// PipelineCheckpoint is one pipeline's state at its last settled stage
// barrier.
type PipelineCheckpoint struct {
	// Name identifies the pipeline (campaign names are defaulted before
	// tracking, so the checkpoint key is always non-empty).
	Name string
	// SettledStages counts the stages settled from the pipeline's start
	// (execution order, including inserted stages). Resume skips exactly
	// this prefix.
	SettledStages int
	// Tasks and Retries are the executor counters at the barrier.
	Tasks   int
	Retries int
	// PatternOverhead is the submission overhead accumulated so far.
	PatternOverhead time.Duration
	// Phases are the per-phase aggregates at the barrier.
	Phases []PhaseStat
	// HookStages snapshots the settled units of every settled stage
	// that carries a PostStage hook, keyed by execution index — the
	// data Resume replays the hooks against to reconstruct graph
	// growth. Stages without hooks checkpoint nothing here.
	HookStages []StageSnapshot
}

// StageSnapshot is the checkpointed unit set of one settled stage that
// carries a PostStage hook.
type StageSnapshot struct {
	// Seq is the stage's 1-based execution index within its pipeline
	// (counting executed stages, including inserted ones) — the same
	// index StageCtl.StageIndex reports.
	Seq int
	// Units describes the stage's settled units in task order. A
	// settled stage's units are all final and successful; a control
	// stage (no tasks) snapshots an empty list.
	Units []UnitSnapshot
}

// UnitSnapshot is one settled compute unit as a PostStage hook saw it:
// enough to rebuild a replay unit whose accessors answer as the
// original did.
type UnitSnapshot struct {
	Name   string
	Kernel string
	Params map[string]float64
	Cores  int
	MPI    bool
	Tags   []string
	// Start and Stop are the unit's exec window on the virtual clock.
	Start, Stop time.Duration
}

// CampaignCheckpoint is the resumable state of one campaign: every
// pipeline's latest barrier snapshot, in campaign submission order.
type CampaignCheckpoint struct {
	Pipelines []PipelineCheckpoint
}

// Pipeline returns the named pipeline's snapshot, nil if the pipeline
// never settled a stage.
func (cp *CampaignCheckpoint) Pipeline(name string) *PipelineCheckpoint {
	if cp == nil {
		return nil
	}
	for i := range cp.Pipelines {
		if cp.Pipelines[i].Name == name {
			return &cp.Pipelines[i]
		}
	}
	return nil
}

// Checkpoint file format, little-endian throughout:
//
//	[8]  magic "ENTKCKPT"
//	u32  version (currently 2)
//	u32  pipeline count, then per pipeline:
//	     string name (u32 length + bytes)
//	     u32 settled stages, u64 tasks, u64 retries, i64 overhead
//	     u32 phase count, then per phase:
//	       string name, i64 span, i64 busy, u64 tasks, u64 occurrences
//	     u32 hook-stage count (v2+), then per hook stage:
//	       u32 seq, u32 unit count, then per unit:
//	         string name, string kernel, u32 cores, u8 mpi,
//	         i64 start, i64 stop,
//	         u32 param count, per param: string key, f64 value (key order),
//	         u32 tag count, per tag: string
//	u8   trace flag: 1 = a profile dump ("ENTKPROF") follows, 0 = end
//
// Version 1 streams (pre hook-replay) still load: they simply carry no
// hook-stage snapshots, and a resume across a hook stage of such a
// checkpoint reports the missing replay data instead of silently
// running the wrong graph.
const (
	ckptMagic   = "ENTKCKPT"
	ckptVersion = 2
	// ckptMaxString/ckptMaxCount bound one string / one repeated section
	// so corrupted length fields fail cleanly instead of asking the
	// allocator for gigabytes.
	ckptMaxString = 1 << 20
	ckptMaxCount  = 1 << 24
)

// SaveCheckpoint serialises the checkpoint, then — when prof is non-nil —
// appends the profiler's full dump to the same stream. The profiler must
// be quiescent (save between runs, not mid-campaign).
func SaveCheckpoint(w io.Writer, cp *CampaignCheckpoint, prof *profile.Profiler) error {
	if cp == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	bw := bufio.NewWriter(w)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeString := func(s string) error {
		if err := write(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	if err := write(uint32(ckptVersion)); err != nil {
		return err
	}
	if err := write(uint32(len(cp.Pipelines))); err != nil {
		return err
	}
	for _, pc := range cp.Pipelines {
		if err := writeString(pc.Name); err != nil {
			return err
		}
		for _, v := range []any{
			uint32(pc.SettledStages), uint64(pc.Tasks), uint64(pc.Retries),
			int64(pc.PatternOverhead), uint32(len(pc.Phases)),
		} {
			if err := write(v); err != nil {
				return err
			}
		}
		for _, ph := range pc.Phases {
			if err := writeString(ph.Name); err != nil {
				return err
			}
			for _, v := range []any{
				int64(ph.Span), int64(ph.Busy), uint64(ph.Tasks), uint64(ph.Occurrences),
			} {
				if err := write(v); err != nil {
					return err
				}
			}
		}
		if err := write(uint32(len(pc.HookStages))); err != nil {
			return err
		}
		for _, hs := range pc.HookStages {
			if err := write(uint32(hs.Seq)); err != nil {
				return err
			}
			if err := write(uint32(len(hs.Units))); err != nil {
				return err
			}
			for _, us := range hs.Units {
				if err := writeString(us.Name); err != nil {
					return err
				}
				if err := writeString(us.Kernel); err != nil {
					return err
				}
				mpi := uint8(0)
				if us.MPI {
					mpi = 1
				}
				for _, v := range []any{
					uint32(us.Cores), mpi, int64(us.Start), int64(us.Stop),
					uint32(len(us.Params)),
				} {
					if err := write(v); err != nil {
						return err
					}
				}
				// Key order keeps the serialisation deterministic (maps
				// iterate randomly).
				keys := make([]string, 0, len(us.Params))
				for k := range us.Params {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					if err := writeString(k); err != nil {
						return err
					}
					if err := write(math.Float64bits(us.Params[k])); err != nil {
						return err
					}
				}
				if err := write(uint32(len(us.Tags))); err != nil {
					return err
				}
				for _, tag := range us.Tags {
					if err := writeString(tag); err != nil {
						return err
					}
				}
			}
		}
	}
	flag := uint8(0)
	if prof != nil {
		flag = 1
	}
	if err := write(flag); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if prof != nil {
		if _, err := prof.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. When the
// stream carries a trace section, it is loaded into prof (which must be
// empty, either storage layout); a nil prof skips the trace. The
// trace-flag byte is consumed either way, so the checkpoint section
// alone round-trips regardless of what follows.
func LoadCheckpoint(r io.Reader, prof *profile.Profiler) (*CampaignCheckpoint, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	readString := func() (string, error) {
		var length uint32
		if err := read(&length); err != nil {
			return "", err
		}
		if length > ckptMaxString {
			return "", fmt.Errorf("core: checkpoint string length %d exceeds cap (corrupt?)", length)
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version < 1 || version > ckptVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want 1-%d", version, ckptVersion)
	}
	var nPipes uint32
	if err := read(&nPipes); err != nil {
		return nil, err
	}
	if nPipes > ckptMaxCount {
		return nil, fmt.Errorf("core: checkpoint pipeline count %d exceeds cap (corrupt?)", nPipes)
	}
	cp := &CampaignCheckpoint{}
	for i := uint32(0); i < nPipes; i++ {
		var pc PipelineCheckpoint
		var err error
		if pc.Name, err = readString(); err != nil {
			return nil, err
		}
		var settled, nPhases uint32
		var tasks, retries uint64
		var overhead int64
		for _, v := range []any{&settled, &tasks, &retries, &overhead, &nPhases} {
			if err := read(v); err != nil {
				return nil, err
			}
		}
		if nPhases > ckptMaxCount {
			return nil, fmt.Errorf("core: checkpoint phase count %d exceeds cap (corrupt?)", nPhases)
		}
		pc.SettledStages = int(settled)
		pc.Tasks = int(tasks)
		pc.Retries = int(retries)
		pc.PatternOverhead = time.Duration(overhead)
		for j := uint32(0); j < nPhases; j++ {
			var ph PhaseStat
			if ph.Name, err = readString(); err != nil {
				return nil, err
			}
			var span, busy int64
			var tasks, occ uint64
			for _, v := range []any{&span, &busy, &tasks, &occ} {
				if err := read(v); err != nil {
					return nil, err
				}
			}
			ph.Span = time.Duration(span)
			ph.Busy = time.Duration(busy)
			ph.Tasks = int(tasks)
			ph.Occurrences = int(occ)
			pc.Phases = append(pc.Phases, ph)
		}
		if version >= 2 {
			var nHooks uint32
			if err := read(&nHooks); err != nil {
				return nil, err
			}
			if nHooks > ckptMaxCount {
				return nil, fmt.Errorf("core: checkpoint hook-stage count %d exceeds cap (corrupt?)", nHooks)
			}
			for h := uint32(0); h < nHooks; h++ {
				var hs StageSnapshot
				var seq, nUnits uint32
				if err := read(&seq); err != nil {
					return nil, err
				}
				if err := read(&nUnits); err != nil {
					return nil, err
				}
				if nUnits > ckptMaxCount {
					return nil, fmt.Errorf("core: checkpoint unit count %d exceeds cap (corrupt?)", nUnits)
				}
				hs.Seq = int(seq)
				for u := uint32(0); u < nUnits; u++ {
					var us UnitSnapshot
					if us.Name, err = readString(); err != nil {
						return nil, err
					}
					if us.Kernel, err = readString(); err != nil {
						return nil, err
					}
					var cores, nParams uint32
					var mpi uint8
					var start, stop int64
					for _, v := range []any{&cores, &mpi, &start, &stop, &nParams} {
						if err := read(v); err != nil {
							return nil, err
						}
					}
					if nParams > ckptMaxCount {
						return nil, fmt.Errorf("core: checkpoint param count %d exceeds cap (corrupt?)", nParams)
					}
					us.Cores = int(cores)
					us.MPI = mpi != 0
					us.Start = time.Duration(start)
					us.Stop = time.Duration(stop)
					for pi := uint32(0); pi < nParams; pi++ {
						key, err := readString()
						if err != nil {
							return nil, err
						}
						var bits uint64
						if err := read(&bits); err != nil {
							return nil, err
						}
						if us.Params == nil {
							us.Params = make(map[string]float64, nParams)
						}
						us.Params[key] = math.Float64frombits(bits)
					}
					var nTags uint32
					if err := read(&nTags); err != nil {
						return nil, err
					}
					if nTags > ckptMaxCount {
						return nil, fmt.Errorf("core: checkpoint tag count %d exceeds cap (corrupt?)", nTags)
					}
					for ti := uint32(0); ti < nTags; ti++ {
						tag, err := readString()
						if err != nil {
							return nil, err
						}
						us.Tags = append(us.Tags, tag)
					}
					hs.Units = append(hs.Units, us)
				}
				pc.HookStages = append(pc.HookStages, hs)
			}
		}
		cp.Pipelines = append(cp.Pipelines, pc)
	}
	var flag uint8
	if err := read(&flag); err != nil {
		return nil, err
	}
	if flag == 1 && prof != nil {
		// The trace section starts wherever the buffered reader stands;
		// hand the profiler the same reader so no bytes are lost.
		if _, err := prof.ReadFrom(br); err != nil {
			return cp, fmt.Errorf("core: checkpoint trace section: %w", err)
		}
	}
	return cp, nil
}
