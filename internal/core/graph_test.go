package core

import (
	"reflect"
	"strings"
	"testing"

	"entk/internal/vclock"
)

// mkTasks builds n identical sleep tasks.
func mkTasks(n int, seconds float64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Kernel: sleepKernel(seconds)}
	}
	return tasks
}

// runCampaign allocates a fresh handle on the test machine and runs the
// pipelines through an AppManager.
func runCampaign(t *testing.T, v *vclock.Virtual, cores int, build func() []*Pipeline) (*CampaignReport, error) {
	t.Helper()
	h := newHandle(t, v, cores)
	var camp *CampaignReport
	var runErr error
	v.Run(func() {
		if err := h.Allocate(); err != nil {
			t.Error(err)
			return
		}
		camp, runErr = NewAppManager(h).Run(build()...)
		h.Deallocate()
	})
	if camp == nil {
		t.Fatal("campaign did not run")
	}
	return camp, runErr
}

func TestAppManagerHeterogeneousCampaign(t *testing.T) {
	build := func() []*Pipeline {
		wide := &Pipeline{Name: "wide", Stages: []*Stage{
			{Tasks: mkTasks(12, 4)},
			{Tasks: mkTasks(12, 2)},
		}}
		narrow := &Pipeline{Name: "narrow", Stages: []*Stage{
			{Name: "a", Tasks: mkTasks(2, 1)},
			{Name: "b", Tasks: mkTasks(2, 1)},
			{Name: "c", Tasks: mkTasks(2, 1)},
		}}
		return []*Pipeline{wide, narrow}
	}
	camp, err := runCampaign(t, vclock.NewVirtual(), 32, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Pipelines) != 2 {
		t.Fatalf("pipeline reports = %d, want 2", len(camp.Pipelines))
	}
	wideRep, narrowRep := camp.Pipelines[0], camp.Pipelines[1]
	if wideRep.Pattern != "wide" || narrowRep.Pattern != "narrow" {
		t.Errorf("report names = %q/%q", wideRep.Pattern, narrowRep.Pattern)
	}
	if wideRep.Tasks != 24 || narrowRep.Tasks != 6 || camp.Campaign.Tasks != 30 {
		t.Errorf("tasks = %d/%d/%d, want 24/6/30", wideRep.Tasks, narrowRep.Tasks, camp.Campaign.Tasks)
	}
	if wideRep.PlannedTasks != 24 || camp.Campaign.PlannedTasks != 30 {
		t.Errorf("planned = %d/%d, want 24/30", wideRep.PlannedTasks, camp.Campaign.PlannedTasks)
	}
	// Default stage names per pipeline; aggregate phases carry the
	// pipeline prefix.
	if got := wideRep.Phase("stage.1").Tasks; got != 12 {
		t.Errorf("wide stage.1 tasks = %d, want 12", got)
	}
	if got := camp.Campaign.Phase("narrow.b").Tasks; got != 2 {
		t.Errorf("campaign narrow.b tasks = %d, want 2", got)
	}
	// Pipelines ran concurrently: the campaign span is the slowest
	// pipeline, strictly less than the serialized sum.
	maxTTC := wideRep.TTC
	if narrowRep.TTC > maxTTC {
		maxTTC = narrowRep.TTC
	}
	if camp.Campaign.TTC != maxTTC {
		t.Errorf("campaign TTC %v != max pipeline TTC %v", camp.Campaign.TTC, maxTTC)
	}
	if camp.Campaign.TTC >= wideRep.TTC+narrowRep.TTC {
		t.Errorf("campaign TTC %v not overlapping pipelines (%v + %v)",
			camp.Campaign.TTC, wideRep.TTC, narrowRep.TTC)
	}
	if camp.Campaign.QueueWait <= 0 || camp.Campaign.CoreOverhead <= 0 {
		t.Errorf("campaign missing handle-level components: %+v", camp.Campaign)
	}
}

// TestPostStageGrowsAndPrunes is the adaptivity gate: a PostStage hook
// widens the next stage from observed execution (growth), a sibling
// pipeline terminates itself early (pruning), and the resulting
// campaign must be deterministic — bit-identical reports across runs
// and across both clock engines.
func TestPostStageGrowsAndPrunes(t *testing.T) {
	build := func(v *vclock.Virtual) []*Pipeline {
		var grow func(depth, width int) *Stage
		grow = func(depth, width int) *Stage {
			return &Stage{
				Name:  "gen",
				Tasks: mkTasks(width, float64(depth)),
				PostStage: func(ctl *StageCtl) error {
					if ctl.Err() != nil {
						return nil
					}
					done := 0
					for _, u := range ctl.Units() {
						if u != nil {
							if _, _, ok := u.ExecWindow(); ok {
								done++
							}
						}
					}
					if depth < 4 {
						// Widen by what actually completed: 2, 4, 8, 16.
						ctl.InsertStages(grow(depth+1, 2*done))
					}
					return nil
				},
			}
		}
		pruner := &Pipeline{Name: "pruner", Stages: []*Stage{
			{Name: "probe", Tasks: mkTasks(3, 1), PostStage: func(ctl *StageCtl) error {
				ctl.Terminate() // converged immediately: prune the rest
				return nil
			}},
			{Name: "never", Tasks: mkTasks(64, 100)},
		}}
		return []*Pipeline{{Name: "grower", Stages: []*Stage{grow(1, 2)}}, pruner}
	}
	run := func(eng vclock.Engine) *CampaignReport {
		v := vclock.NewVirtualEngine(eng)
		camp, err := runCampaign(t, v, 32, func() []*Pipeline { return build(v) })
		if err != nil {
			t.Fatal(err)
		}
		return camp
	}
	base := run(vclock.EngineHandoff)
	grower, pruner := base.Pipelines[0], base.Pipelines[1]
	if grower.Tasks != 2+4+8+16 {
		t.Errorf("grower executed %d tasks, want 30", grower.Tasks)
	}
	if got := grower.Phase("gen").Occurrences; got != 4 {
		t.Errorf("gen occurrences = %d, want 4", got)
	}
	if pruner.Tasks != 3 {
		t.Errorf("pruner executed %d tasks, want 3 (termination ignored?)", pruner.Tasks)
	}
	if got := pruner.Phase("never").Tasks; got != 0 {
		t.Errorf("pruned stage ran %d tasks", got)
	}
	// PlannedTasks records the static plan; Tasks the adaptive actual.
	if grower.PlannedTasks != 2 || pruner.PlannedTasks != 67 {
		t.Errorf("planned = %d/%d, want 2/67", grower.PlannedTasks, pruner.PlannedTasks)
	}
	// Determinism: repeated runs on both engines must reproduce the
	// campaign bit for bit — adaptive growth steered by observed
	// execution does not make the simulation nondeterministic.
	for i := 0; i < 2; i++ {
		for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
			got := run(eng)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("adaptive campaign not deterministic on %v run %d:\nbase:\n%v\ngot:\n%v",
					eng, i, base.Campaign, got.Campaign)
			}
		}
	}
}

func TestStageCtlInsertAndAppendOrdering(t *testing.T) {
	v := vclock.NewVirtual()
	var order []string
	mark := func(name string) *Stage {
		k := sleepKernel(1)
		k.Work = func() error { order = append(order, name); return nil }
		return &Stage{Name: name, Tasks: []Task{{Kernel: k}}}
	}
	build := func() []*Pipeline {
		first := mark("first")
		first.PostStage = func(ctl *StageCtl) error {
			ctl.AppendStages(mark("appended"))
			ctl.InsertStages(mark("ins1"), mark("ins2"))
			return nil
		}
		return []*Pipeline{{Name: "p", Stages: []*Stage{first, mark("second")}}}
	}
	if _, err := runCampaign(t, v, 8, build); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "ins1", "ins2", "second", "appended"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("execution order = %v, want %v", order, want)
	}
}

func TestTaskRetriesOverride(t *testing.T) {
	v := vclock.NewVirtual()
	build := func() []*Pipeline {
		k := sleepKernel(1)
		k.FailOn = func(attempt int) bool { return attempt < 2 }
		return []*Pipeline{{Name: "p", Stages: []*Stage{
			{Tasks: []Task{{Name: "flaky", Kernel: k, Retries: 3}}},
		}}}
	}
	camp, err := runCampaign(t, v, 8, build)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Campaign.Retries != 2 {
		t.Errorf("retries = %d, want 2", camp.Campaign.Retries)
	}
}

func TestCampaignPipelineFailureIsIsolated(t *testing.T) {
	v := vclock.NewVirtual()
	build := func() []*Pipeline {
		bad := sleepKernel(1)
		bad.FailOn = func(int) bool { return true }
		return []*Pipeline{
			{Name: "doomed", Stages: []*Stage{
				{Name: "boom", Tasks: []Task{{Name: "boom.task", Kernel: bad}}},
				{Name: "after", Tasks: mkTasks(1, 1)},
			}},
			{Name: "healthy", Stages: []*Stage{{Tasks: mkTasks(4, 2)}}},
		}
	}
	camp, err := runCampaign(t, v, 8, build)
	if err == nil || !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("campaign error = %v, want pipeline-named failure", err)
	}
	if camp.Pipelines[1].Tasks != 4 {
		t.Errorf("healthy pipeline ran %d tasks, want 4 (sibling cancelation?)", camp.Pipelines[1].Tasks)
	}
	if got := camp.Pipelines[0].Phase("after").Tasks; got != 0 {
		t.Errorf("doomed pipeline continued past failed stage: %d tasks", got)
	}
}

func TestCampaignValidation(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	v.Run(func() {
		am := NewAppManager(h)
		if _, err := am.Run(); err == nil {
			t.Error("empty campaign accepted")
		}
		ok := &Pipeline{Stages: []*Stage{{Tasks: mkTasks(1, 1)}}}
		if _, err := am.Run(ok); err == nil || !strings.Contains(err.Error(), "before Allocate") {
			t.Errorf("campaign before Allocate: %v", err)
		}
		if _, err := am.Run(&Pipeline{Name: "x"}); err == nil {
			t.Error("stageless pipeline accepted")
		}
		if _, err := am.Run(&Pipeline{Name: "x", Stages: []*Stage{nil}}); err == nil {
			t.Error("nil stage accepted")
		}
		if _, err := am.Run(&Pipeline{Name: "x", Stages: []*Stage{{Tasks: []Task{{}}}}}); err == nil {
			t.Error("kernel-less task accepted")
		}
		if err := h.Allocate(); err != nil {
			t.Fatal(err)
		}
		camp, err := am.Run(ok)
		if err != nil {
			t.Fatal(err)
		}
		// Anonymous pipelines get positional names.
		if camp.Pipelines[0].Pattern != "p1" {
			t.Errorf("default pipeline name = %q, want p1", camp.Pipelines[0].Pattern)
		}
		h.Deallocate()
	})
}

func TestPipelineTaskCount(t *testing.T) {
	pl := &Pipeline{Stages: []*Stage{
		{Tasks: mkTasks(3, 1)},
		nil,
		{Tasks: mkTasks(2, 1)},
	}}
	if got := pl.TaskCount(); got != 5 {
		t.Errorf("TaskCount = %d, want 5", got)
	}
}
