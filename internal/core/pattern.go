package core

import (
	"fmt"
	"sync"

	"entk/internal/vclock"
)

// Pattern is an execution pattern: a parametrised template capturing the
// coordination and synchronisation of an ensemble (Section III-B1). The
// three unit patterns below cover the application scenarios the paper
// identifies; higher-order patterns compose them by running several
// patterns in sequence against one resource handle.
type Pattern interface {
	// PatternName identifies the pattern in reports.
	PatternName() string
	// TaskCount returns the static task plan — how many tasks the
	// pattern will generate if no adaptive hook fires. Adaptive runs
	// may execute more or fewer; Report.Tasks carries the actual
	// executed count (and Report.PlannedTasks echoes this plan).
	TaskCount() int
	// validate checks the parametrisation before execution.
	validate() error
}

// ---------------------------------------------------------------------------
// Ensemble of Pipelines

// EnsembleOfPipelines runs N independent pipelines of M ordered stages
// (Fig. 2a). Stages within a pipeline are sequential; pipelines never
// synchronise with each other.
type EnsembleOfPipelines struct {
	// Pipelines is the ensemble width N.
	Pipelines int
	// Stages is the pipeline depth M.
	Stages int
	// StageKernel returns the kernel for the given stage of the given
	// pipeline (both 1-based, matching the paper's figures).
	StageKernel func(stage, pipeline int) *Kernel
	// BulkStages selects phase-batched execution: stage s of every
	// pipeline is submitted to the runtime in one tracked call and a
	// barrier separates stages. This trades pipeline-level asynchrony
	// (normally pipeline i may run stage 2 while pipeline j is still in
	// stage 1) for a single bulk submission per stage, which is how the
	// stress tier drives 10k+ pipelines through the scheduler at once. A
	// pipeline whose StageKernel returns nil at stage s takes no further
	// part in later stages, matching the default mode's early exit.
	BulkStages bool
}

// PatternName implements Pattern.
func (p *EnsembleOfPipelines) PatternName() string { return "ensemble-of-pipelines" }

// TaskCount implements Pattern.
func (p *EnsembleOfPipelines) TaskCount() int { return p.Pipelines * p.Stages }

func (p *EnsembleOfPipelines) validate() error {
	switch {
	case p.Pipelines < 1:
		return fmt.Errorf("core: ensemble of pipelines with %d pipelines", p.Pipelines)
	case p.Stages < 1:
		return fmt.Errorf("core: ensemble of pipelines with %d stages", p.Stages)
	case p.StageKernel == nil:
		return fmt.Errorf("core: ensemble of pipelines has no StageKernel")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ensemble Exchange

// ExchangeMode selects how EE members interact in the exchange stage.
type ExchangeMode int

const (
	// CollectiveExchange runs one serial exchange task over all replicas
	// after each cycle's simulations — the configuration measured in the
	// paper's Figures 5 and 6.
	CollectiveExchange ExchangeMode = iota
	// PairwiseExchange synchronises only partner pairs, with no global
	// barrier across the ensemble — the paper's "no obligatory global
	// synchronisation" semantics (Section III-D2).
	PairwiseExchange
)

func (m ExchangeMode) String() string {
	if m == PairwiseExchange {
		return "pairwise"
	}
	return "collective"
}

// EnsembleExchange runs interacting ensemble members that alternate
// between a simulation state and an exchange state (Fig. 2b), e.g.
// replica-exchange molecular dynamics.
type EnsembleExchange struct {
	// Replicas is the ensemble size.
	Replicas int
	// Cycles is the number of simulate-exchange rounds.
	Cycles int
	// SimulationKernel returns the kernel for one replica's simulation in
	// one cycle (both 1-based).
	SimulationKernel func(cycle, replica int) *Kernel
	// ExchangeKernel returns the exchange-stage kernel for a cycle. In
	// CollectiveExchange mode it runs once over all replicas; in
	// PairwiseExchange mode it runs once per partner pair (the kernel's
	// params should then describe a two-replica exchange).
	ExchangeKernel func(cycle int) *Kernel
	// ExchangeLogic, if non-nil, runs in-framework after each cycle's
	// exchange completes — the hook where applications apply Metropolis
	// swaps to their replica state (see internal/md).
	ExchangeLogic func(cycle int)
	// PairLogic, if non-nil, runs in-framework after each pairwise
	// exchange task completes (PairwiseExchange mode only).
	PairLogic func(cycle, replicaLo, replicaHi int)
	// StopWhen, if non-nil, is consulted after each cycle's exchange (and
	// ExchangeLogic); returning true ends the ensemble early — adaptive
	// termination (Section V). CollectiveExchange mode only.
	StopWhen func(cycle int) bool
	// Mode selects collective or pairwise exchange; zero value is
	// collective.
	Mode ExchangeMode
	// Partner returns the partner replica for pairwise exchange (1-based;
	// return 0 for "sit this cycle out"). Nil selects the standard REMD
	// neighbour pairing alternating by cycle parity.
	Partner func(cycle, replica int) int
}

// PatternName implements Pattern.
func (p *EnsembleExchange) PatternName() string { return "ensemble-exchange" }

// TaskCount implements Pattern.
func (p *EnsembleExchange) TaskCount() int {
	switch p.Mode {
	case PairwiseExchange:
		// Simulations plus up to one exchange task per pair per cycle.
		return p.Replicas*p.Cycles + p.Cycles*(p.Replicas/2)
	default:
		return p.Replicas*p.Cycles + p.Cycles
	}
}

func (p *EnsembleExchange) validate() error {
	switch {
	case p.Replicas < 2:
		return fmt.Errorf("core: ensemble exchange with %d replicas", p.Replicas)
	case p.Cycles < 1:
		return fmt.Errorf("core: ensemble exchange with %d cycles", p.Cycles)
	case p.SimulationKernel == nil:
		return fmt.Errorf("core: ensemble exchange has no SimulationKernel")
	case p.ExchangeKernel == nil:
		return fmt.Errorf("core: ensemble exchange has no ExchangeKernel")
	case p.StopWhen != nil && p.Mode == PairwiseExchange:
		return fmt.Errorf("core: StopWhen requires CollectiveExchange mode")
	}
	return nil
}

// pairRendezvous coordinates pairwise-EE partners, shared by the
// reference executor and the graph lowering so both paths fail the same
// way. Each (cycle, pair) shares one entry holding the rendezvous
// event; a replica that dies (retries exhausted) abandons its current
// and future pairings so partners proceed without an exchange instead
// of deadlocking at a rendezvous nobody will ever complete.
type pairRendezvous struct {
	v       vclock.Clock
	p       *EnsembleExchange
	partner func(cycle, replica int) int

	mu      sync.Mutex
	entries map[pairKey]*pairEntry
}

type pairKey struct{ cycle, lo int }

type pairEntry struct {
	ev     *vclock.Event
	lo, hi int
	dead   bool // a member died before the rendezvous: no exchange
}

// pairRole is a replica's role at one cycle's rendezvous.
type pairRole int

const (
	// pairUnpaired: sit this cycle out (no partner, or partner died).
	pairUnpaired pairRole = iota
	// pairFirst: wait on the entry's event for the partner's exchange.
	pairFirst
	// pairSecond: run the exchange task, then fire the event.
	pairSecond
)

func newPairRendezvous(v vclock.Clock, p *EnsembleExchange, partner func(cycle, replica int) int) *pairRendezvous {
	return &pairRendezvous{v: v, p: p, partner: partner, entries: make(map[pairKey]*pairEntry)}
}

// pairFor resolves replica r's cycle pairing, ok=false when unpaired.
func (rv *pairRendezvous) pairFor(r, cycle int) (lo, hi int, ok bool) {
	q := rv.partner(cycle, r)
	if q < 1 || q > rv.p.Replicas || q == r {
		return 0, 0, false
	}
	if q < r {
		return q, r, true
	}
	return r, q, true
}

// arrive registers replica r at its cycle rendezvous and returns its
// entry and role.
func (rv *pairRendezvous) arrive(r, cycle int) (*pairEntry, pairRole) {
	lo, hi, ok := rv.pairFor(r, cycle)
	if !ok {
		return nil, pairUnpaired
	}
	key := pairKey{cycle, lo}
	rv.mu.Lock()
	e, exists := rv.entries[key]
	if !exists {
		e = &pairEntry{
			ev: vclock.NewEvent(rv.v, fmt.Sprintf("ee pair c%d (%d,%d)", cycle, lo, hi)),
			lo: lo, hi: hi,
		}
		rv.entries[key] = e
	}
	dead := e.dead
	rv.mu.Unlock()
	switch {
	case dead:
		return e, pairUnpaired
	case !exists:
		return e, pairFirst
	default:
		return e, pairSecond
	}
}

// abandon poisons replica r's pairings from cycle `from` onward: a
// partner already waiting is woken, a partner yet to arrive will skip
// the exchange (pairUnpaired). Idempotent; safe when both members of a
// pair die.
func (rv *pairRendezvous) abandon(r, from int) {
	for cycle := from; cycle <= rv.p.Cycles; cycle++ {
		lo, hi, ok := rv.pairFor(r, cycle)
		if !ok {
			continue
		}
		key := pairKey{cycle, lo}
		rv.mu.Lock()
		e, exists := rv.entries[key]
		if !exists {
			rv.entries[key] = &pairEntry{lo: lo, hi: hi, dead: true}
			rv.mu.Unlock()
			continue
		}
		e.dead = true
		ev := e.ev
		rv.mu.Unlock()
		if ev != nil {
			ev.Fire() // harmless no-op if the exchange already fired it
		}
	}
}

// defaultPartner implements neighbour pairing with alternating parity:
// odd cycles pair (1,2),(3,4),...; even cycles pair (2,3),(4,5),...
// Unpaired replicas (the ends) get 0 and skip the exchange.
func defaultPartner(cycle, replica, replicas int) int {
	offset := 1
	if cycle%2 == 0 {
		offset = 2
	}
	if replica < offset {
		return 0
	}
	if (replica-offset)%2 == 0 {
		p := replica + 1
		if p > replicas {
			return 0
		}
		return p
	}
	return replica - 1
}

// ---------------------------------------------------------------------------
// Simulation Analysis Loop

// SimulationAnalysisLoop iterates a global-barrier two-stage pattern
// (Fig. 2c): N simulations, then M analyses, repeated. Optional pre- and
// post-loop kernels run once before and after.
type SimulationAnalysisLoop struct {
	// Iterations is the loop count.
	Iterations int
	// Simulations is the simulation-stage width N.
	Simulations int
	// Analyses is the analysis-stage width M.
	Analyses int
	// PreLoop, if non-nil, runs once before iteration 1.
	PreLoop func() *Kernel
	// SimulationKernel returns the kernel for one simulation instance of
	// one iteration (both 1-based).
	SimulationKernel func(iteration, instance int) *Kernel
	// AnalysisKernel returns the kernel for one analysis instance of one
	// iteration (both 1-based).
	AnalysisKernel func(iteration, instance int) *Kernel
	// PostLoop, if non-nil, runs once after the last iteration.
	PostLoop func() *Kernel
	// AdaptiveSimulations, if non-nil, overrides Simulations per
	// iteration — the paper's "vary the number of tasks between stages"
	// adaptivity (Section V). Close over analysis state to let results
	// steer the width.
	AdaptiveSimulations func(iteration int) int
	// AdaptiveStop, if non-nil, is consulted after each iteration's
	// analysis; returning true ends the loop early (PostLoop still runs).
	AdaptiveStop func(iteration int) bool
}

// PatternName implements Pattern.
func (p *SimulationAnalysisLoop) PatternName() string { return "simulation-analysis-loop" }

// TaskCount implements Pattern. By contract it is the static plan: it
// counts Iterations full iterations at the static Simulations width
// even when AdaptiveSimulations or AdaptiveStop is set (the hooks run
// only during execution, so no better estimate exists up front).
// Adaptive runs read their actual task count from Report.Tasks, which
// counts executed first attempts.
func (p *SimulationAnalysisLoop) TaskCount() int {
	n := p.Iterations * (p.Simulations + p.Analyses)
	if p.PreLoop != nil {
		n++
	}
	if p.PostLoop != nil {
		n++
	}
	return n
}

func (p *SimulationAnalysisLoop) validate() error {
	switch {
	case p.Iterations < 1:
		return fmt.Errorf("core: SAL with %d iterations", p.Iterations)
	case p.Simulations < 1:
		return fmt.Errorf("core: SAL with %d simulations", p.Simulations)
	case p.Analyses < 1:
		return fmt.Errorf("core: SAL with %d analyses", p.Analyses)
	case p.SimulationKernel == nil:
		return fmt.Errorf("core: SAL has no SimulationKernel")
	case p.AnalysisKernel == nil:
		return fmt.Errorf("core: SAL has no AnalysisKernel")
	}
	return nil
}
