package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// Fault-tolerance suite: every injected failure must settle — full
// completion when the survivors can absorb the displaced units, a
// PatternError partial report when they cannot — and never deadlock or
// panic. The whole file runs under -race in CI (twice), on both vclock
// engines.

// faultPipeline builds one untagged pipeline of width x depth 1-core
// sleep tasks.
func faultPipeline(name string, width, depth int, seconds float64, streamed bool) *Pipeline {
	kernel := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": seconds}}
	stages := make([]*Stage, depth)
	for s := range stages {
		tasks := make([]Task, width)
		for i := range tasks {
			tasks[i] = Task{Kernel: kernel}
		}
		stages[s] = &Stage{Tasks: tasks, Streamed: streamed}
	}
	return &Pipeline{Name: name, Stages: stages}
}

// infeasiblePipelines builds the partial-failure campaign: a "small"
// pipeline that runs anywhere, and a "big" pipeline of 32-core MPI
// tasks only the wide pilot can host — once that pilot dies, the big
// units are infeasible on the 16-core survivor and must settle as a
// PatternError, while the small pipeline rebinds and completes.
func infeasiblePipelines(streamed bool) []*Pipeline {
	big := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 5},
		Cores: 32, MPI: true}
	bigStages := make([]*Stage, 2)
	for s := range bigStages {
		bigStages[s] = &Stage{Tasks: []Task{{Kernel: big}, {Kernel: big}}, Streamed: streamed}
	}
	return []*Pipeline{
		faultPipeline("small", 8, 2, 5, streamed),
		{Name: "big", Stages: bigStages},
	}
}

// TestFaultMatrix is the injection-point matrix: a pilot of a
// two-machine set dies {before activation, mid-wave, around a stage
// barrier, during a streamed submission drain}, crossed with {the
// survivor can run everything — rebinding completes the campaign
// exactly — or the displaced units are infeasible anywhere else and the
// campaign settles as a PatternError partial report}, on both engines.
//
// Timing notes: pilot 0 (test.bind.narrow) activates at ~3s, pilot 1
// (test.bind.wide) at ~6s; campaigns gate on the slowest, so dispatch
// starts just past 6s. All fault instants carry a +1ns offset so they
// can never tie with a model-derived event (same-instant wake order is
// engine-dependent; see internal/pilot/faults.go).
func TestFaultMatrix(t *testing.T) {
	points := []struct {
		name     string
		at       time.Duration
		kind     pilot.FaultKind
		streamed bool
	}{
		// Before the narrow pilot's 2s queue wait elapses.
		{"pre-activation", time.Second + time.Nanosecond, pilot.FaultKillPilot, false},
		// Mid first wave (exec spans ~6.3s-11.3s).
		{"mid-wave", 7500*time.Millisecond + time.Nanosecond, pilot.FaultExpireWalltime, false},
		// Around the stage-1 barrier / stage-2 submission window.
		{"stage-barrier", 11300*time.Millisecond + time.Nanosecond, pilot.FaultKillPilot, false},
		// During the streamed wave's per-unit submission drain
		// (dispatches spread from ~6s at 10ms per unit).
		{"batcher-drain", 6200*time.Millisecond + time.Nanosecond, pilot.FaultKillPilot, true},
	}
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		for _, pt := range points {
			for _, infeasible := range []bool{false, true} {
				name := pt.name + "/rebind"
				if infeasible {
					name = pt.name + "/infeasible"
				}
				t.Run(eng.String()+"/"+name, func(t *testing.T) {
					v := vclock.NewVirtualEngine(eng)
					rs := newTestSet(t, v)
					rs.Rebind = true
					var pls []*Pipeline
					if infeasible {
						// Kill the wide pilot: the big pipeline's 32-core MPI
						// units exceed the 16-core survivor and must fail at
						// placement (tag affinity would fall back to any
						// eligible pilot; capacity cannot).
						rs.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
							{At: pt.at, Pilot: 1, Kind: pt.kind},
						}}
						pls = infeasiblePipelines(pt.streamed)
					} else {
						rs.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
							{At: pt.at, Pilot: 0, Kind: pt.kind},
						}}
						pls = []*Pipeline{faultPipeline("bulk", 24, 2, 5, pt.streamed)}
					}
					var camp *CampaignReport
					var err error
					v.Run(func() {
						if aerr := rs.Allocate(); aerr != nil {
							t.Fatal(aerr)
						}
						camp, err = NewAppManager(rs).Run(pls...)
						rs.Deallocate()
					})
					if camp == nil {
						t.Fatalf("no campaign report (err=%v)", err)
					}
					if len(camp.Pilots) != 2 {
						t.Fatalf("pilot rows = %d, want 2", len(camp.Pilots))
					}
					if infeasible {
						var perr *PatternError
						if !errors.As(err, &perr) {
							t.Fatalf("err = %v, want a PatternError partial report", err)
						}
						// Exact partial accounting: the small pipeline rebinds
						// and completes in full; the big pipeline always fails
						// within stage 1 (its 5s units serialize on the doomed
						// pilot, so the barrier is never reached), submitting
						// exactly that stage's 2 units — each completed before
						// the fault or named in the failure list, never lost.
						small, big := camp.Pipelines[0], camp.Pipelines[1]
						if small.Tasks != 16 || small.Retries != 0 {
							t.Errorf("small pipeline tasks/retries = %d/%d, want 16/0",
								small.Tasks, small.Retries)
						}
						if big.Tasks != 2 || len(perr.Failed) < 1 || len(perr.Failed) > 2 {
							t.Errorf("big pipeline submitted=%d failed=%d, want 2 submitted with 1-2 failures\n%v",
								big.Tasks, len(perr.Failed), perr.Failed)
						}
						if camp.Campaign.Tasks != small.Tasks+big.Tasks {
							t.Errorf("campaign tasks %d != small %d + big %d",
								camp.Campaign.Tasks, small.Tasks, big.Tasks)
						}
					} else {
						if err != nil {
							t.Fatalf("rebind campaign failed: %v", err)
						}
						if camp.Campaign.Tasks != 48 {
							t.Errorf("campaign tasks = %d, want 48", camp.Campaign.Tasks)
						}
						// Rebinding returns units, it does not fail them:
						// recovery must not burn the retry budget.
						if camp.Campaign.Retries != 0 {
							t.Errorf("campaign retries = %d, want 0 (rebind is not a retry)",
								camp.Campaign.Retries)
						}
						// Every unit is counted exactly once, on the pilot
						// where it actually finished.
						if got := camp.Pilots[0].Units + camp.Pilots[1].Units; got != 48 {
							t.Errorf("pilot units %d+%d = %d, want 48",
								camp.Pilots[0].Units, camp.Pilots[1].Units, got)
						}
						if pt.name == "pre-activation" && camp.Pilots[0].Units != 0 {
							t.Errorf("pilot killed before activation ran %d units", camp.Pilots[0].Units)
						}
					}
				})
			}
		}
	}
}

// TestFaultNodeLoss pins partial node loss: the pilot survives at
// reduced capacity, displaced units rebind onto the surviving nodes
// (an extra wave), and a unit too big for the shrunken pilot settles as
// a PatternError instead of wedging the queue.
func TestFaultNodeLoss(t *testing.T) {
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		t.Run(eng.String()+"/rebind", func(t *testing.T) {
			v := vclock.NewVirtualEngine(eng)
			registerBindingMachines(t)
			rs, err := NewResourceSet([]PilotSpec{
				{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
			}, Config{Clock: v})
			if err != nil {
				t.Fatal(err)
			}
			rs.Rebind = true
			// Lose 1 of the pilot's 2 nodes mid-wave: 16 executing units
			// are displaced and must re-run on the surviving node.
			rs.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
				{At: 8*time.Second + time.Nanosecond, Pilot: 0, Kind: pilot.FaultNodeLoss, Nodes: 1},
			}}
			var camp *CampaignReport
			v.Run(func() {
				if err := rs.Allocate(); err != nil {
					t.Fatal(err)
				}
				var rerr error
				camp, rerr = NewAppManager(rs).Run(faultPipeline("bulk", 32, 1, 5, false))
				if rerr != nil {
					t.Fatalf("node-loss rebind campaign failed: %v", rerr)
				}
				rs.Deallocate()
			})
			if camp.Campaign.Tasks != 32 || camp.Campaign.Retries != 0 {
				t.Errorf("tasks/retries = %d/%d, want 32/0", camp.Campaign.Tasks, camp.Campaign.Retries)
			}
			// The displaced half re-ran after the survivors finished: the
			// stage spans at least two 5s waves.
			if exec := camp.Pipelines[0].ExecTime(); exec < 10*time.Second {
				t.Errorf("exec span %v, want >= two 5s waves after displacement", exec)
			}
		})
		t.Run(eng.String()+"/infeasible", func(t *testing.T) {
			v := vclock.NewVirtualEngine(eng)
			registerBindingMachines(t)
			rs, err := NewResourceSet([]PilotSpec{
				{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
			}, Config{Clock: v})
			if err != nil {
				t.Fatal(err)
			}
			rs.Rebind = true
			rs.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
				{At: 5*time.Second + time.Nanosecond, Pilot: 0, Kind: pilot.FaultNodeLoss, Nodes: 1},
			}}
			var err2 error
			v.Run(func() {
				if err := rs.Allocate(); err != nil {
					t.Fatal(err)
				}
				// One 32-core MPI task spanning both nodes: after the loss
				// the 16-core remainder can never host it.
				_, err2 = NewAppManager(rs).Run(&Pipeline{Name: "big", Stages: []*Stage{{
					Tasks: []Task{{Kernel: &Kernel{Name: "misc.sleep",
						Params: map[string]float64{"seconds": 30}, Cores: 32, MPI: true}}},
				}}})
				rs.Deallocate()
			})
			var perr *PatternError
			if !errors.As(err2, &perr) || len(perr.Failed) != 1 {
				t.Fatalf("err = %v, want a 1-task PatternError after the node loss", err2)
			}
		})
	}
}

// TestFaultWalltimeExpiry pins the no-recovery path: without Rebind a
// dying pilot fails its units with the walltime cause, which surfaces
// in the PatternError — the campaign settles, it does not hang.
func TestFaultWalltimeExpiry(t *testing.T) {
	v := vclock.NewVirtual()
	registerBindingMachines(t)
	rs, err := NewResourceSet([]PilotSpec{
		{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
	}, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	rs.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
		{At: 8*time.Second + time.Nanosecond, Pilot: 0, Kind: pilot.FaultExpireWalltime},
	}}
	var err2 error
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		_, err2 = NewAppManager(rs).Run(faultPipeline("bulk", 8, 1, 30, false))
		rs.Deallocate()
	})
	var perr *PatternError
	if !errors.As(err2, &perr) {
		t.Fatalf("err = %v, want PatternError", err2)
	}
	if !strings.Contains(err2.Error(), "walltime expired") {
		t.Errorf("failure cause lost the walltime expiry: %v", err2)
	}
}

// registerStuckMachine installs a machine whose queue never drains
// within any test horizon.
func registerStuckMachine(t *testing.T) {
	t.Helper()
	if err := cluster.Register(&cluster.Machine{
		Name: "test.fault.stuck", Nodes: 8, CoresPerNode: 4, MemPerNodeGB: 8,
		AgentBootTime: time.Second, TaskLaunchLatency: 10 * time.Millisecond,
		NetLatency: time.Millisecond, FSBandwidthMBps: 200, FSLatency: time.Millisecond,
		QueueWaitBase: 600 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestActivationDeadline pins the stuck-pilot guard: a pilot that
// misses its activation deadline is killed, and the campaign either
// proceeds on the survivors or errors out — never hangs on waitActive.
func TestActivationDeadline(t *testing.T) {
	registerBindingMachines(t)
	registerStuckMachine(t)

	t.Run("survivor-carries-campaign", func(t *testing.T) {
		v := vclock.NewVirtual()
		rs, err := NewResourceSet([]PilotSpec{
			{Resource: "test.fault.stuck", Cores: 16, Walltime: 100 * time.Hour,
				ActivationDeadline: 10 * time.Second},
			{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
		}, Config{Clock: v})
		if err != nil {
			t.Fatal(err)
		}
		var camp *CampaignReport
		v.Run(func() {
			if err := rs.Allocate(); err != nil {
				t.Fatal(err)
			}
			var rerr error
			camp, rerr = NewAppManager(rs).Run(faultPipeline("bulk", 16, 1, 5, false))
			if rerr != nil {
				t.Fatalf("campaign failed: %v", rerr)
			}
			rs.Deallocate()
		})
		if camp.Campaign.Tasks != 16 {
			t.Errorf("tasks = %d, want 16 on the surviving pilot", camp.Campaign.Tasks)
		}
		if camp.Pilots[0].Units != 0 || camp.Pilots[1].Units != 16 {
			t.Errorf("unit split = %d/%d, want 0/16", camp.Pilots[0].Units, camp.Pilots[1].Units)
		}
	})

	t.Run("all-dead-errors", func(t *testing.T) {
		v := vclock.NewVirtual()
		rs, err := NewResourceSet([]PilotSpec{
			{Resource: "test.fault.stuck", Cores: 16, Walltime: 100 * time.Hour,
				ActivationDeadline: 10 * time.Second},
		}, Config{Clock: v})
		if err != nil {
			t.Fatal(err)
		}
		var err2 error
		v.Run(func() {
			if err := rs.Allocate(); err != nil {
				t.Fatal(err)
			}
			_, err2 = NewAppManager(rs).Run(faultPipeline("bulk", 4, 1, 5, false))
			rs.Deallocate()
		})
		if err2 == nil || !strings.Contains(err2.Error(), "every pilot failed before activation") {
			t.Errorf("err = %v, want every-pilot-failed error (not a hang)", err2)
		}
	})
}

// TestElasticAddPilot grows the set mid-campaign: a pilot added while
// stage 1 runs picks up stage 2's units, and the campaign report grows
// a utilization row covering only the new pilot's partial lifetime.
func TestElasticAddPilot(t *testing.T) {
	v := vclock.NewVirtual()
	registerBindingMachines(t)
	rs, err := NewResourceSet([]PilotSpec{
		{Resource: "test.bind.narrow", Cores: 16, Walltime: 100 * time.Hour},
	}, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.AddPilot(PilotSpec{Resource: "test.bind.wide", Cores: 32,
		Walltime: 100 * time.Hour}); err == nil {
		t.Error("AddPilot before Allocate succeeded")
	}
	var camp *CampaignReport
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		v.Go(func() {
			// Stage 1 (16 units on 16 cores, 30s each) is executing; the
			// new pilot activates in time for stage 2's dispatch.
			v.Sleep(10 * time.Second)
			if _, err := rs.AddPilot(PilotSpec{Resource: "test.bind.wide", Cores: 32,
				Walltime: 100 * time.Hour}); err != nil {
				t.Errorf("AddPilot: %v", err)
			}
		})
		var rerr error
		camp, rerr = NewAppManager(rs).Run(faultPipeline("bulk", 16, 2, 30, false))
		if rerr != nil {
			t.Fatalf("elastic campaign failed: %v", rerr)
		}
		rs.Deallocate()
	})
	if camp.Campaign.Tasks != 32 {
		t.Errorf("tasks = %d, want 32", camp.Campaign.Tasks)
	}
	if len(camp.Pilots) != 2 {
		t.Fatalf("pilot rows = %d, want 2 (added pilot must get a row)", len(camp.Pilots))
	}
	if camp.Pilots[1].Units == 0 {
		t.Error("added pilot ran no units")
	}
	if got := camp.Pilots[0].Units + camp.Pilots[1].Units; got != 32 {
		t.Errorf("pilot units sum = %d, want 32", got)
	}
}

// TestElasticDrainPilot shrinks the set mid-campaign: DrainPilot stops
// new placements, re-dispatches the drained pilot's backlog, waits for
// its running units, and cancels it — the campaign completes exactly
// and the drained pilot keeps its utilization row.
func TestElasticDrainPilot(t *testing.T) {
	v := vclock.NewVirtual()
	registerBindingMachines(t)
	rs, err := NewResourceSet([]PilotSpec{
		{Resource: "test.bind.narrow", Cores: 16, Walltime: 100 * time.Hour},
		{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
	}, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	var camp *CampaignReport
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		v.Go(func() {
			// Mid-stage-1: the narrow pilot has ~24 running+queued units
			// (96 round-robined over 48 cores). Drain it.
			v.Sleep(10 * time.Second)
			if err := rs.DrainPilot(rs.Pilots()[0]); err != nil {
				t.Errorf("DrainPilot: %v", err)
			}
		})
		var rerr error
		camp, rerr = NewAppManager(rs).Run(faultPipeline("bulk", 96, 2, 5, false))
		if rerr != nil {
			t.Fatalf("drain campaign failed: %v", rerr)
		}
		rs.Deallocate()
	})
	if camp.Campaign.Tasks != 192 || camp.Campaign.Retries != 0 {
		t.Errorf("tasks/retries = %d/%d, want 192/0", camp.Campaign.Tasks, camp.Campaign.Retries)
	}
	if len(camp.Pilots) != 2 {
		t.Fatalf("pilot rows = %d, want 2 (drained pilot keeps its row)", len(camp.Pilots))
	}
	if camp.Pilots[0].Units == 0 {
		t.Error("drained pilot shows no work before the drain")
	}
	if got := camp.Pilots[0].Units + camp.Pilots[1].Units; got != 192 {
		t.Errorf("pilot units sum = %d, want 192", got)
	}
}
