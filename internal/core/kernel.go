// Package core implements the Ensemble Toolkit itself — the paper's
// contribution (Section III): kernel plugins as the task abstraction,
// the three execution patterns (ensemble of pipelines, ensemble exchange,
// simulation-analysis loop), the resource handle, and the execution
// plugins that bind a pattern's kernels into compute units and forward
// them to the pilot runtime. Applications parametrise a pattern with
// kernels and hand it to a ResourceHandle; everything below — task
// creation, submission, synchronisation, staging, scheduling — is hidden
// in this layer and the runtime.
package core

import (
	"fmt"

	"entk/internal/pilot"
	"entk/internal/stage"
)

// Kernel instantiates a kernel plugin for one task: the science tool, its
// arguments and cost-model parameters, its resource needs, and its data
// staging. It is the only vocabulary applications need to describe work.
type Kernel struct {
	// Name selects the kernel plugin, e.g. "md.amber".
	Name string
	// Executable is the task's real command. Simulation ignores it (the
	// cost model supplies the duration); in real mode the runner execs it
	// as an OS process, and a task without one sleeps its modelled
	// duration in wall time.
	Executable string
	// Args are the tool's command-line arguments: the real argv in real
	// mode, informational in simulation.
	Args []string
	// Params feed the plugin's cost model (atoms, ps, sims, ...).
	Params map[string]float64
	// Cores is the core count (default 1).
	Cores int
	// MPI marks the task as an MPI executable allowed to span nodes.
	MPI bool
	// Tags request pilot affinity in multi-pilot resource sets: under a
	// tag-affinity placement policy the task lands on a pilot carrying
	// every one of these tags (matched against PilotSpec.Tags). Ignored
	// by single-pilot bindings and non-affinity policies.
	Tags []string
	// InputStaging and OutputStaging move data before/after execution.
	InputStaging  []stage.Directive
	OutputStaging []stage.Directive
	// Work, if non-nil, runs real computation when the task completes;
	// the analysis examples use it to produce actual numbers.
	Work func() error
	// Retries overrides the pattern's retry budget for this task;
	// negative means "use the default".
	Retries int
	// FailOn injects deterministic failures per attempt (testing and
	// fault-tolerance demos).
	FailOn func(attempt int) bool
}

// Validate rejects malformed kernels.
func (k *Kernel) Validate() error {
	if k == nil {
		return fmt.Errorf("core: nil kernel")
	}
	if k.Name == "" {
		return fmt.Errorf("core: kernel has no name")
	}
	if k.Cores < 0 {
		return fmt.Errorf("core: kernel %s has negative cores", k.Name)
	}
	if k.Cores > 1 && !k.MPI {
		return fmt.Errorf("core: kernel %s wants %d cores but is not MPI", k.Name, k.Cores)
	}
	return nil
}

// bind translates the kernel into a pilot unit description — the job of
// the execution plugin's static binding step.
func (k *Kernel) bind(taskName string, attempt int) pilot.UnitDescription {
	cores := k.Cores
	if cores == 0 {
		cores = 1
	}
	return pilot.UnitDescription{
		Name:          taskName,
		Kernel:        k.Name,
		Executable:    k.Executable,
		Args:          k.Args,
		Params:        k.Params,
		Cores:         cores,
		MPI:           k.MPI,
		Tags:          k.Tags,
		InputStaging:  k.InputStaging,
		OutputStaging: k.OutputStaging,
		Work:          k.Work,
		Attempt:       attempt,
		FailOn:        k.FailOn,
	}
}

// retries resolves the kernel's retry budget against the default.
func (k *Kernel) retries(def int) int {
	if k.Retries < 0 {
		return def
	}
	if k.Retries > 0 {
		return k.Retries
	}
	return def
}
