package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/vclock"
)

// registerTestMachine installs a private machine so core tests don't
// depend on the paper machines' latency calibration.
func registerTestMachine(t *testing.T) *cluster.Machine {
	t.Helper()
	m := &cluster.Machine{
		Name:              "test.core",
		Nodes:             16,
		CoresPerNode:      8,
		MemPerNodeGB:      16,
		AgentBootTime:     2 * time.Second,
		TaskLaunchLatency: 10 * time.Millisecond,
		NetLatency:        5 * time.Millisecond,
		FSBandwidthMBps:   200,
		FSLatency:         time.Millisecond,
		QueueWaitBase:     5 * time.Second,
		QueueWaitPerNode:  0,
	}
	if err := cluster.Register(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func newHandle(t *testing.T, v *vclock.Virtual, cores int) *ResourceHandle {
	t.Helper()
	registerTestMachine(t)
	h, err := NewResourceHandle("test.core", cores, 100*time.Hour, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func sleepKernel(seconds float64) *Kernel {
	return &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": seconds}}
}

func TestNewResourceHandleValidation(t *testing.T) {
	v := vclock.NewVirtual()
	if _, err := NewResourceHandle("", 4, time.Hour, Config{Clock: v}); err == nil {
		t.Error("empty resource accepted")
	}
	if _, err := NewResourceHandle("r", 0, time.Hour, Config{Clock: v}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewResourceHandle("r", 4, 0, Config{Clock: v}); err == nil {
		t.Error("zero walltime accepted")
	}
	if _, err := NewResourceHandle("r", 4, time.Hour, Config{}); err == nil {
		t.Error("missing clock accepted")
	}
}

func TestKernelValidate(t *testing.T) {
	if err := (&Kernel{Name: "x"}).Validate(); err != nil {
		t.Error(err)
	}
	var nilK *Kernel
	if err := nilK.Validate(); err == nil {
		t.Error("nil kernel accepted")
	}
	if err := (&Kernel{}).Validate(); err == nil {
		t.Error("unnamed kernel accepted")
	}
	if err := (&Kernel{Name: "x", Cores: -1}).Validate(); err == nil {
		t.Error("negative cores accepted")
	}
	if err := (&Kernel{Name: "x", Cores: 2}).Validate(); err == nil {
		t.Error("multicore non-MPI accepted")
	}
}

func TestPatternValidation(t *testing.T) {
	sk := func(int, int) *Kernel { return sleepKernel(1) }
	ek := func(int) *Kernel { return sleepKernel(1) }
	cases := []Pattern{
		&EnsembleOfPipelines{Pipelines: 0, Stages: 1, StageKernel: sk},
		&EnsembleOfPipelines{Pipelines: 1, Stages: 0, StageKernel: sk},
		&EnsembleOfPipelines{Pipelines: 1, Stages: 1},
		&EnsembleExchange{Replicas: 1, Cycles: 1, SimulationKernel: sk, ExchangeKernel: ek},
		&EnsembleExchange{Replicas: 2, Cycles: 0, SimulationKernel: sk, ExchangeKernel: ek},
		&EnsembleExchange{Replicas: 2, Cycles: 1, ExchangeKernel: ek},
		&EnsembleExchange{Replicas: 2, Cycles: 1, SimulationKernel: sk},
		&SimulationAnalysisLoop{Iterations: 0, Simulations: 1, Analyses: 1, SimulationKernel: sk, AnalysisKernel: sk},
		&SimulationAnalysisLoop{Iterations: 1, Simulations: 0, Analyses: 1, SimulationKernel: sk, AnalysisKernel: sk},
		&SimulationAnalysisLoop{Iterations: 1, Simulations: 1, Analyses: 0, SimulationKernel: sk, AnalysisKernel: sk},
		&SimulationAnalysisLoop{Iterations: 1, Simulations: 1, Analyses: 1, AnalysisKernel: sk},
		&SimulationAnalysisLoop{Iterations: 1, Simulations: 1, Analyses: 1, SimulationKernel: sk},
	}
	for i, p := range cases {
		if err := p.validate(); err == nil {
			t.Errorf("case %d (%s): invalid pattern accepted", i, p.PatternName())
		}
	}
}

func TestTaskCounts(t *testing.T) {
	sk := func(int, int) *Kernel { return sleepKernel(1) }
	ek := func(int) *Kernel { return sleepKernel(1) }
	eop := &EnsembleOfPipelines{Pipelines: 4, Stages: 3, StageKernel: sk}
	if got := eop.TaskCount(); got != 12 {
		t.Errorf("EoP tasks = %d, want 12", got)
	}
	ee := &EnsembleExchange{Replicas: 8, Cycles: 2, SimulationKernel: sk, ExchangeKernel: ek}
	if got := ee.TaskCount(); got != 18 {
		t.Errorf("EE tasks = %d, want 18", got)
	}
	eep := &EnsembleExchange{Replicas: 8, Cycles: 2, SimulationKernel: sk, ExchangeKernel: ek, Mode: PairwiseExchange}
	if got := eep.TaskCount(); got != 24 {
		t.Errorf("pairwise EE tasks = %d, want 24", got)
	}
	sal := &SimulationAnalysisLoop{Iterations: 2, Simulations: 4, Analyses: 1,
		SimulationKernel: sk, AnalysisKernel: sk,
		PreLoop:  func() *Kernel { return sleepKernel(1) },
		PostLoop: func() *Kernel { return sleepKernel(1) },
	}
	if got := sal.TaskCount(); got != 12 {
		t.Errorf("SAL tasks = %d, want 12", got)
	}
}

func TestEnsembleOfPipelinesRuns(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 16)
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(&EnsembleOfPipelines{
			Pipelines: 8,
			Stages:    2,
			StageKernel: func(stage, pipe int) *Kernel {
				return sleepKernel(float64(stage)) // stage 1: 1s, stage 2: 2s
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if rep.Tasks != 16 {
		t.Errorf("tasks = %d, want 16", rep.Tasks)
	}
	s1, s2 := rep.Phase("stage.1"), rep.Phase("stage.2")
	if s1.Tasks != 8 || s2.Tasks != 8 {
		t.Errorf("stage tasks = %d/%d, want 8/8", s1.Tasks, s2.Tasks)
	}
	// All 16 cores free: each stage runs fully parallel.
	if s1.Busy != 8*time.Second || s2.Busy != 16*time.Second {
		t.Errorf("stage busy = %v/%v, want 8s/16s", s1.Busy, s2.Busy)
	}
	if rep.CoreOverhead <= 0 || rep.PatternOverhead <= 0 || rep.TTC <= 0 {
		t.Errorf("missing overheads: %+v", rep)
	}
	if rep.QueueWait < 5*time.Second {
		t.Errorf("queue wait = %v, want >= 5s", rep.QueueWait)
	}
}

func TestPipelineStagesAreOrdered(t *testing.T) {
	// Within a pipeline stage 2 must start after stage 1 stops; across
	// pipelines there is no ordering.
	v := vclock.NewVirtual()
	h := newHandle(t, v, 4)
	v.Run(func() {
		if err := h.Allocate(); err != nil {
			t.Fatal(err)
		}
		rep, err := h.Run(&EnsembleOfPipelines{
			Pipelines:   2,
			Stages:      2,
			StageKernel: func(stage, pipe int) *Kernel { return sleepKernel(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		// 2 stages of 1s sequential => span of the whole run >= 2s.
		if rep.TTC < 2*time.Second {
			t.Errorf("TTC = %v, want >= 2s for 2 ordered stages", rep.TTC)
		}
		h.Deallocate()
	})
}

func TestEnsembleExchangeCollective(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	var rep *Report
	exchanged := 0
	v.Run(func() {
		var err error
		rep, err = h.Execute(&EnsembleExchange{
			Replicas:         8,
			Cycles:           3,
			SimulationKernel: func(c, r int) *Kernel { return sleepKernel(10) },
			ExchangeKernel: func(c int) *Kernel {
				return &Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 8}}
			},
			ExchangeLogic: func(c int) { exchanged++ },
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if exchanged != 3 {
		t.Errorf("exchange logic ran %d times, want 3", exchanged)
	}
	sim := rep.Phase("simulation")
	exc := rep.Phase("exchange")
	if sim.Tasks != 24 || sim.Occurrences != 3 {
		t.Errorf("sim phase = %+v", sim)
	}
	if exc.Tasks != 3 || exc.Occurrences != 3 {
		t.Errorf("exchange phase = %+v", exc)
	}
	// 8 replicas on 8 cores: each cycle's sim span ~10s; 3 cycles ~30s.
	if sim.Span < 30*time.Second || sim.Span > 33*time.Second {
		t.Errorf("sim span = %v, want ~30s", sim.Span)
	}
}

func TestEnsembleExchangePairwiseNoGlobalBarrier(t *testing.T) {
	// With 4 replicas where replica 1-2 are fast and 3-4 are slow, the
	// fast pair must complete its exchange before the slow pair finishes
	// simulating — proving there is no global synchronisation.
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	var fastExchangeAt, slowSimDoneAt time.Duration
	v.Run(func() {
		_, err := h.Execute(&EnsembleExchange{
			Replicas: 4,
			Cycles:   1,
			Mode:     PairwiseExchange,
			SimulationKernel: func(c, r int) *Kernel {
				if r <= 2 {
					return sleepKernel(1)
				}
				return sleepKernel(100)
			},
			ExchangeKernel: func(c int) *Kernel {
				return &Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 2}}
			},
			PairLogic: func(c, lo, hi int) {
				if lo == 1 {
					fastExchangeAt = v.Now()
				} else {
					slowSimDoneAt = v.Now()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if fastExchangeAt == 0 || slowSimDoneAt == 0 {
		t.Fatal("pair logic did not run for both pairs")
	}
	if fastExchangeAt >= slowSimDoneAt {
		t.Errorf("fast pair exchanged at %v, after slow pair at %v: global barrier detected",
			fastExchangeAt, slowSimDoneAt)
	}
}

func TestSimulationAnalysisLoop(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(&SimulationAnalysisLoop{
			Iterations:       2,
			Simulations:      8,
			Analyses:         1,
			PreLoop:          func() *Kernel { return sleepKernel(1) },
			SimulationKernel: func(it, i int) *Kernel { return sleepKernel(5) },
			AnalysisKernel: func(it, i int) *Kernel {
				return &Kernel{Name: "ana.coco", Params: map[string]float64{"sims": 8}}
			},
			PostLoop: func() *Kernel { return sleepKernel(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if rep.Tasks != 2+2*9 {
		t.Errorf("tasks = %d, want 20", rep.Tasks)
	}
	if got := rep.Phase("pre_loop").Tasks; got != 1 {
		t.Errorf("pre_loop tasks = %d", got)
	}
	if got := rep.Phase("simulation").Occurrences; got != 2 {
		t.Errorf("simulation occurrences = %d, want 2", got)
	}
	if got := rep.Phase("analysis").Tasks; got != 2 {
		t.Errorf("analysis tasks = %d, want 2", got)
	}
	if rep.ExecTime() <= 0 {
		t.Error("zero exec time")
	}
	if !strings.Contains(rep.String(), "simulation") {
		t.Error("report string missing phases")
	}
}

func TestSALBarrierBetweenStages(t *testing.T) {
	// Analysis must not start before every simulation of the iteration
	// finished (global barrier).
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	var simDone, anaStart time.Duration
	v.Run(func() {
		_, err := h.Execute(&SimulationAnalysisLoop{
			Iterations:  1,
			Simulations: 4,
			Analyses:    1,
			SimulationKernel: func(it, i int) *Kernel {
				k := sleepKernel(float64(i)) // 1..4s: stragglers
				if i == 4 {
					k.Work = func() error { simDone = v.Now(); return nil }
				}
				return k
			},
			AnalysisKernel: func(it, i int) *Kernel {
				k := sleepKernel(1)
				k.Work = func() error {
					if anaStart == 0 {
						anaStart = v.Now()
					}
					return nil
				}
				return k
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if anaStart <= simDone {
		t.Errorf("analysis finished work at %v before last sim at %v", anaStart, simDone)
	}
}

func TestRetrySucceedsAfterInjectedFailures(t *testing.T) {
	v := vclock.NewVirtual()
	registerTestMachine(t)
	h, err := NewResourceHandle("test.core", 8, 100*time.Hour, Config{Clock: v, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var rep *Report
	v.Run(func() {
		var runErr error
		rep, runErr = h.Execute(&EnsembleOfPipelines{
			Pipelines: 2,
			Stages:    1,
			StageKernel: func(st, pl int) *Kernel {
				k := sleepKernel(1)
				if pl == 1 {
					k.FailOn = func(attempt int) bool { return attempt < 2 }
				}
				return k
			},
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
	})
	if rep.Retries != 2 {
		t.Errorf("retries = %d, want 2", rep.Retries)
	}
}

func TestRetryBudgetExhaustedReportsPatternError(t *testing.T) {
	v := vclock.NewVirtual()
	registerTestMachine(t)
	h, _ := NewResourceHandle("test.core", 8, 100*time.Hour, Config{Clock: v, MaxRetries: 1})
	v.Run(func() {
		_, err := h.Execute(&EnsembleOfPipelines{
			Pipelines: 1,
			Stages:    1,
			StageKernel: func(st, pl int) *Kernel {
				k := sleepKernel(1)
				k.FailOn = func(int) bool { return true } // always fails
				return k
			},
		})
		var perr *PatternError
		if !errors.As(err, &perr) {
			t.Fatalf("err = %v, want *PatternError", err)
		}
		if len(perr.Failed) != 1 || !strings.Contains(perr.Error(), "pipe0001") {
			t.Errorf("pattern error = %v", perr)
		}
	})
}

func TestRunBeforeAllocateFails(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 4)
	v.Run(func() {
		_, err := h.Run(&EnsembleOfPipelines{
			Pipelines: 1, Stages: 1,
			StageKernel: func(int, int) *Kernel { return sleepKernel(1) },
		})
		if err == nil {
			t.Error("Run before Allocate succeeded")
		}
		if err := h.Deallocate(); err == nil {
			t.Error("Deallocate before Allocate succeeded")
		}
	})
}

func TestDoubleAllocateFails(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 4)
	v.Run(func() {
		if err := h.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := h.Allocate(); err == nil {
			t.Error("double Allocate succeeded")
		}
		h.Deallocate()
	})
}

func TestRunNilOrInvalidPattern(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 4)
	v.Run(func() {
		h.Allocate()
		if _, err := h.Run(nil); err == nil {
			t.Error("nil pattern accepted")
		}
		if _, err := h.Run(&EnsembleOfPipelines{}); err == nil {
			t.Error("invalid pattern accepted")
		}
		h.Deallocate()
	})
}

func TestMultiplePatternsOnOneHandle(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	v.Run(func() {
		if err := h.Allocate(); err != nil {
			t.Fatal(err)
		}
		eop := &EnsembleOfPipelines{Pipelines: 4, Stages: 1,
			StageKernel: func(int, int) *Kernel { return sleepKernel(1) }}
		if _, err := h.Run(eop); err != nil {
			t.Fatal(err)
		}
		sal := &SimulationAnalysisLoop{Iterations: 1, Simulations: 4, Analyses: 1,
			SimulationKernel: func(int, int) *Kernel { return sleepKernel(1) },
			AnalysisKernel:   func(int, int) *Kernel { return sleepKernel(1) }}
		if _, err := h.Run(sal); err != nil {
			t.Fatal(err)
		}
		h.Deallocate()
	})
}

func TestDefaultPartnerPairing(t *testing.T) {
	// Odd cycle: (1,2),(3,4); replica 5 unpaired in a 5-replica ladder.
	cases := []struct{ cycle, replica, replicas, want int }{
		{1, 1, 5, 2}, {1, 2, 5, 1}, {1, 3, 5, 4}, {1, 4, 5, 3}, {1, 5, 5, 0},
		{2, 1, 5, 0}, {2, 2, 5, 3}, {2, 3, 5, 2}, {2, 4, 5, 5}, {2, 5, 5, 4},
	}
	for _, c := range cases {
		if got := defaultPartner(c.cycle, c.replica, c.replicas); got != c.want {
			t.Errorf("partner(c=%d, r=%d, n=%d) = %d, want %d",
				c.cycle, c.replica, c.replicas, got, c.want)
		}
	}
	// Pairing must be symmetric.
	for cycle := 1; cycle <= 4; cycle++ {
		for n := 2; n <= 9; n++ {
			for r := 1; r <= n; r++ {
				p := defaultPartner(cycle, r, n)
				if p == 0 {
					continue
				}
				if back := defaultPartner(cycle, p, n); back != r {
					t.Errorf("asymmetric pairing: c=%d n=%d r=%d -> %d -> %d", cycle, n, r, p, back)
				}
			}
		}
	}
}

func TestExchangeModeString(t *testing.T) {
	if CollectiveExchange.String() != "collective" || PairwiseExchange.String() != "pairwise" {
		t.Error("exchange mode strings wrong")
	}
}

func TestMPIKernelRunsThroughPattern(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 32)
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(&SimulationAnalysisLoop{
			Iterations:  1,
			Simulations: 2,
			Analyses:    1,
			SimulationKernel: func(it, i int) *Kernel {
				return &Kernel{
					Name:   "md.amber",
					Params: map[string]float64{"ps": 6, "atoms": 2881},
					Cores:  16, // spans 2 nodes of 8
					MPI:    true,
				}
			},
			AnalysisKernel: func(it, i int) *Kernel { return sleepKernel(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if rep.Phase("simulation").Tasks != 2 {
		t.Errorf("sim tasks = %d", rep.Phase("simulation").Tasks)
	}
}
