package core

import (
	"math"
	"sync"
	"testing"

	"entk/internal/linalg"
	"entk/internal/md"
	"entk/internal/vclock"
)

// TestREMDPhysicsIntegration runs the EE pattern with the real
// replica-exchange logic end to end: the exchange hook samples energies
// and applies Metropolis swaps, and the physical invariants (temperature
// ladder conservation, sane acceptance) must hold after execution
// through the full toolkit + runtime stack.
func TestREMDPhysicsIntegration(t *testing.T) {
	const replicas, cycles = 16, 6
	ensemble, err := md.NewEnsemble(replicas, 300, 600, md.AlanineDipeptide.Atoms, 99)
	if err != nil {
		t.Fatal(err)
	}
	ladder := append([]float64(nil), ensemble.Temperatures()...)

	v := vclock.NewVirtual()
	h := newHandle(t, v, replicas)
	var rep *Report
	v.Run(func() {
		var runErr error
		rep, runErr = h.Execute(&EnsembleExchange{
			Replicas: replicas,
			Cycles:   cycles,
			SimulationKernel: func(cycle, r int) *Kernel {
				return &Kernel{
					Name:   "md.amber",
					Params: map[string]float64{"atoms": float64(md.AlanineDipeptide.Atoms), "ps": 6},
				}
			},
			ExchangeKernel: func(cycle int) *Kernel {
				return &Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": replicas}}
			},
			ExchangeLogic: func(cycle int) {
				ensemble.SampleEnergies()
				ensemble.ExchangeSweep(cycle)
			},
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
	})

	// Toolkit-side invariants.
	if got := rep.Phase("simulation").Tasks; got != replicas*cycles {
		t.Errorf("simulation tasks = %d, want %d", got, replicas*cycles)
	}
	if got := rep.Phase("exchange").Occurrences; got != cycles {
		t.Errorf("exchange occurrences = %d, want %d", got, cycles)
	}

	// Physics-side invariants: the temperature multiset is conserved and
	// some exchanges were accepted.
	final := ensemble.Temperatures()
	sortFloats(final)
	ref := append([]float64(nil), ladder...)
	sortFloats(ref)
	for i := range ref {
		if math.Abs(final[i]-ref[i]) > 1e-9 {
			t.Fatalf("temperature ladder not conserved: %v vs %v", final, ref)
		}
	}
	if ar := ensemble.AcceptanceRatio(); ar <= 0 || ar > 1 {
		t.Errorf("acceptance ratio = %v", ar)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}

// TestSALCoCoIntegration runs the SAL pattern with real trajectories and
// CoCo analysis through the full stack and asserts the sampling actually
// improves (the second basin gets visited after CoCo-directed restarts).
func TestSALCoCoIntegration(t *testing.T) {
	const sims, iters, frames = 8, 3, 300
	sys := md.AlanineDipeptide
	starts := make([][]float64, sims)
	for i := range starts {
		starts[i] = make([]float64, sys.Dim)
		starts[i][0] = -1
	}
	var mu sync.Mutex
	var pooled []*linalg.Matrix
	v := vclock.NewVirtual()
	h := newHandle(t, v, sims)
	v.Run(func() {
		_, err := h.Execute(&SimulationAnalysisLoop{
			Iterations:  iters,
			Simulations: sims,
			Analyses:    1,
			SimulationKernel: func(iter, inst int) *Kernel {
				k := &Kernel{
					Name:   "md.amber",
					Params: map[string]float64{"atoms": float64(sys.Atoms), "ps": 0.6},
				}
				k.Work = func() error {
					mu.Lock()
					start := append([]float64(nil), starts[inst-1]...)
					mu.Unlock()
					traj, err := md.Trajectory(sys, start, frames, 300, int64(iter*100+inst))
					if err != nil {
						return err
					}
					mu.Lock()
					pooled = append(pooled, traj)
					mu.Unlock()
					return nil
				}
				return k
			},
			AnalysisKernel: func(iter, inst int) *Kernel {
				k := &Kernel{Name: "ana.coco", Params: map[string]float64{"sims": sims}}
				k.Work = func() error {
					mu.Lock()
					defer mu.Unlock()
					all, err := md.Concat(pooled)
					if err != nil {
						return err
					}
					res, err := md.CoCo(all, 2, sims)
					if err != nil {
						return err
					}
					copy(starts, res.StartPoints[:sims])
					return nil
				}
				return k
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	all, err := md.Concat(pooled)
	if err != nil {
		t.Fatal(err)
	}
	left, right := md.BasinFractions(all)
	if left == 0 {
		t.Error("lost the starting basin entirely")
	}
	if right == 0 {
		t.Error("CoCo-directed sampling never reached the second basin")
	}
	// Work hooks run synchronously at task completion: the pool holds
	// every trajectory.
	if len(pooled) != sims*iters {
		t.Errorf("%d trajectories pooled, want %d", len(pooled), sims*iters)
	}
}
