package core

import (
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// registerEagerMachines installs a fast-activating and a very
// slow-activating machine (10-minute batch queue), so the two regimes
// — wait-all vs eager — produce visibly different campaign starts.
func registerEagerMachines(t *testing.T) {
	t.Helper()
	for _, m := range []*cluster.Machine{
		{
			Name: "test.eager.fast", Nodes: 4, CoresPerNode: 8, MemPerNodeGB: 16,
			AgentBootTime: time.Second, TaskLaunchLatency: 10 * time.Millisecond,
			NetLatency: time.Millisecond, FSBandwidthMBps: 200, FSLatency: time.Millisecond,
			QueueWaitBase: 2 * time.Second,
		},
		{
			Name: "test.eager.slow", Nodes: 4, CoresPerNode: 8, MemPerNodeGB: 16,
			AgentBootTime: time.Second, TaskLaunchLatency: 10 * time.Millisecond,
			NetLatency: time.Millisecond, FSBandwidthMBps: 200, FSLatency: time.Millisecond,
			QueueWaitBase: 600 * time.Second,
		},
	} {
		if err := cluster.Register(m); err != nil {
			t.Fatal(err)
		}
	}
}

// eagerCampaign is one pipeline of fast-tagged single-core tasks: under
// tag affinity every unit binds to the fast pilot, so the slow machine
// contributes nothing but its (very long) activation wait.
func eagerCampaign() *Pipeline {
	kernel := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 5},
		Cores: 1, Tags: []string{"fast"}}
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Kernel: kernel}
	}
	return &Pipeline{Name: "fastwork", Stages: []*Stage{{Tasks: tasks}}}
}

// runEagerCampaign executes the fast-tagged campaign on a fast+slow
// two-pilot set and returns the campaign report plus the virtual time
// at which the campaign (not the teardown) finished.
func runEagerCampaign(t *testing.T, eager bool) (*CampaignReport, time.Duration) {
	t.Helper()
	registerEagerMachines(t)
	v := vclock.NewVirtual()
	rs, err := NewResourceSet([]PilotSpec{
		{Resource: "test.eager.fast", Cores: 16, Walltime: 100 * time.Hour, Tags: []string{"fast"}},
		{Resource: "test.eager.slow", Cores: 16, Walltime: 100 * time.Hour, Tags: []string{"slow"}},
	}, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	rs.Placement = pilot.PlaceTagAffinity(nil)
	rs.EagerSubmit = eager
	var camp *CampaignReport
	var done time.Duration
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		camp, err = NewAppManager(rs).Run(eagerCampaign())
		if err != nil {
			t.Fatal(err)
		}
		done = v.Now()
		if err := rs.Deallocate(); err != nil {
			t.Fatal(err)
		}
	})
	return camp, done
}

// TestEagerSubmitSkipsSlowPilot is the PR 5 loose-end regression gate:
// with EagerSubmit, a slow-activating pilot no longer delays units
// bound to a fast one. The fast-tagged campaign must finish well before
// the slow machine's 600s queue wait would even admit its pilot, the
// reported queue wait must be the fast pilot's, and the per-pilot rows
// must carry each pilot's own wait.
func TestEagerSubmitSkipsSlowPilot(t *testing.T) {
	camp, done := runEagerCampaign(t, true)
	if done >= 600*time.Second {
		t.Errorf("eager campaign finished at %v, after the slow pilot's 600s queue wait", done)
	}
	if camp.Campaign.Tasks != 8 {
		t.Errorf("campaign tasks = %d, want 8", camp.Campaign.Tasks)
	}
	// Queue wait is the fast pilot's (2s base + per-node), not the slow
	// machine's 600s.
	if qw := camp.Campaign.QueueWait; qw < 2*time.Second || qw >= 600*time.Second {
		t.Errorf("campaign queue wait = %v, want the fast pilot's (~2s)", qw)
	}
	if len(camp.Pilots) != 2 {
		t.Fatalf("pilot rows = %d, want 2", len(camp.Pilots))
	}
	fast, slow := camp.Pilots[0], camp.Pilots[1]
	if fast.Units != 8 || slow.Units != 0 {
		t.Errorf("unit split = %d/%d, want 8/0 (tag affinity)", fast.Units, slow.Units)
	}
	if fast.QueueWait < 2*time.Second || fast.QueueWait >= 600*time.Second {
		t.Errorf("fast pilot row queue wait = %v, want ~2s", fast.QueueWait)
	}
	// The slow pilot had not activated when the campaign settled, so its
	// row reports no queue wait yet.
	if slow.QueueWait != 0 {
		t.Errorf("slow pilot row queue wait = %v, want 0 (still queued)", slow.QueueWait)
	}
}

// TestEagerSubmitDefaultStillGates pins the default: without
// EagerSubmit the same campaign cannot start before the slowest pilot
// activates — the seed wait-all semantics the recorded multi-pilot
// tiers depend on.
func TestEagerSubmitDefaultStillGates(t *testing.T) {
	camp, done := runEagerCampaign(t, false)
	if done < 600*time.Second {
		t.Errorf("wait-all campaign finished at %v, before the slow pilot's 600s queue wait", done)
	}
	if qw := camp.Campaign.QueueWait; qw < 600*time.Second {
		t.Errorf("campaign queue wait = %v, want the slow pilot's (>= 600s)", qw)
	}
	// Under wait-all both pilots were active before the campaign, so
	// both rows carry their own full waits.
	if len(camp.Pilots) == 2 && camp.Pilots[1].QueueWait < 600*time.Second {
		t.Errorf("slow pilot row queue wait = %v, want >= 600s", camp.Pilots[1].QueueWait)
	}
}
