package core

import (
	"fmt"
	"slices"
	"sync"

	"entk/internal/pad"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// This file is the toolkit's graph model: the explicit Task / Stage /
// Pipeline vocabulary the executor actually runs, and the engine that
// executes sets of pipelines concurrently. The paper ships three fixed
// execution patterns and names their generalisation as future work
// (Section V: adaptivity, higher-order composition); here the patterns
// are *lowered* onto this model (see lower.go) and any workload the
// patterns cannot express — mixed-width ensembles, heterogeneous
// concurrent campaigns, runtime graph growth — is written against the
// graph directly and submitted through an AppManager (appmanager.go).

// ExecPath selects the executor implementation behind ResourceHandle.Run
// (Config.Exec). The graph path is the default; the seed pattern
// executor is kept as the reference implementation the graph-parity
// tests compare against — the executor analogue of pilot.Config.Rescan,
// vclock.EngineRef, and profile.LayoutRef.
type ExecPath int

const (
	// ExecGraph lowers patterns to Pipelines and runs them on the graph
	// executor.
	ExecGraph ExecPath = iota
	// ExecRef runs patterns on the seed pattern executor, kept as the
	// semantic baseline. The two paths produce bit-identical Reports.
	ExecRef
)

func (e ExecPath) String() string {
	if e == ExecRef {
		return "ref"
	}
	return "graph"
}

// Task is one node of the graph: a named kernel invocation. The kernel
// carries the science tool, its cost-model parameters, core count, and
// data staging (Kernel.InputStaging/OutputStaging); the task adds
// identity and an optional retry override.
type Task struct {
	// Name identifies the task in errors and traces; empty names default
	// to "<stage>.taskNNNNN".
	Name string
	// Kernel is the work. Required.
	Kernel *Kernel
	// Retries, if positive, overrides the kernel's and the pattern's
	// retry budget for this task.
	Retries int
}

// Stage is a set of tasks executed together with a barrier at the end:
// every task of the stage (including retries) settles before the next
// stage of its pipeline starts. The PostStage hook runs at that barrier
// and may grow or prune the graph — the adaptivity point the paper
// plans in Section V.
type Stage struct {
	// Name labels the stage's phase in the report; repeats aggregate
	// under one name. Empty defaults to "stage.<n>" by execution order.
	Name string
	// Tasks are submitted as one bulk wave. A stage may have no tasks
	// and exist only for its PostStage hook (a control node).
	Tasks []Task
	// Streamed selects the runtime's streaming submission path: tasks
	// are dispatched one by one as their client-side submission cost
	// elapses, instead of all at once after the whole wave's cost.
	Streamed bool
	// PostStage, if non-nil, runs after the stage settles — on success
	// or failure (consult StageCtl.Err). It may inspect the stage's
	// units and reshape the rest of the pipeline: insert stages to run
	// next, append stages at the end, or terminate the pipeline. On a
	// failed stage the pipeline aborts after the hook regardless (the
	// hook still runs so rendezvous state can be released).
	PostStage func(ctl *StageCtl) error

	// deferPhase and statsOnError are set by pattern lowering only, to
	// reproduce the reference executor's phase accounting bit for bit:
	// deferPhase accumulates the stage's units into a per-name bucket
	// flushed once when the pipeline set completes (the reference EoP
	// default and pairwise-EE aggregation), and statsOnError records
	// phase stats even when the stage errored (the reference streamed
	// single-stage behaviour).
	deferPhase   bool
	statsOnError bool
}

// Pipeline is an ordered sequence of stages. Pipelines never
// synchronise with each other except through PostStage hooks the
// application writes (e.g. a pairwise rendezvous).
type Pipeline struct {
	// Name labels the pipeline in campaign reports; empty defaults to
	// "p<k>" by submission order.
	Name string
	// Stages run in order; PostStage hooks may extend the list at
	// runtime. Running a pipeline does not mutate it.
	Stages []*Stage
}

// TaskCount returns the number of tasks in the pipeline's current
// stages — the static plan; PostStage hooks may grow it at runtime, so
// the executed count is reported in Report.Tasks.
func (pl *Pipeline) TaskCount() int {
	n := 0
	for _, st := range pl.Stages {
		if st != nil {
			n += len(st.Tasks)
		}
	}
	return n
}

// validate checks an application-built pipeline before execution.
// Lowered pipelines bypass this (they may use empty stage lists and
// lazily resolved kernels to mirror the reference executor).
func (pl *Pipeline) validate() error {
	if pl == nil {
		return fmt.Errorf("core: nil pipeline")
	}
	if len(pl.Stages) == 0 {
		return fmt.Errorf("core: pipeline %q has no stages", pl.Name)
	}
	for i, st := range pl.Stages {
		if st == nil {
			return fmt.Errorf("core: pipeline %q stage %d is nil", pl.Name, i+1)
		}
		for j := range st.Tasks {
			if st.Tasks[j].Kernel == nil {
				return fmt.Errorf("core: pipeline %q stage %d task %d has no kernel", pl.Name, i+1, j+1)
			}
		}
	}
	return nil
}

// StageCtl is the PostStage hook's view of a just-settled stage and its
// lever on the rest of the pipeline.
type StageCtl struct {
	pipeline *Pipeline
	seq      int
	units    []*pilot.ComputeUnit
	err      error

	insert     []*Stage
	appended   []*Stage
	terminated bool
}

// PipelineName returns the owning pipeline's name.
func (c *StageCtl) PipelineName() string { return c.pipeline.Name }

// StageIndex returns the 1-based execution index of the settled stage
// within its pipeline (counting executed stages, including inserted
// ones).
func (c *StageCtl) StageIndex() int { return c.seq }

// Units returns the stage's compute units in task order. With retries
// exhausted a failed task's slot is nil; on a clean stage every unit is
// final and its ExecWindow is queryable — the data adaptive hooks steer
// by.
func (c *StageCtl) Units() []*pilot.ComputeUnit { return c.units }

// Err returns the stage's error, nil on success.
func (c *StageCtl) Err() error { return c.err }

// InsertStages schedules stages to run immediately after this one,
// before the pipeline's remaining stages.
func (c *StageCtl) InsertStages(stages ...*Stage) {
	c.insert = append(c.insert, stages...)
}

// AppendStages schedules stages after the pipeline's current last
// stage.
func (c *StageCtl) AppendStages(stages ...*Stage) {
	c.appended = append(c.appended, stages...)
}

// Terminate ends the pipeline after this stage; remaining and newly
// added stages do not run.
func (c *StageCtl) Terminate() { c.terminated = true }

// ---------------------------------------------------------------------------
// Graph execution engine

// registerDeferredPhase pre-registers a deferred phase bucket so the
// flush order is fixed by the lowering, not by which pipeline finishes
// a stage first. force makes the flush emit the phase even with no
// units (the reference pairwise-EE accounting).
func (ex *executor) registerDeferredPhase(name string, force bool) {
	ex.mu.Lock()
	if _, ok := ex.deferUnits[name]; !ok {
		ex.deferUnits[name] = nil
		ex.deferOrder = append(ex.deferOrder, name)
	}
	if force {
		ex.deferForce[name] = true
	}
	ex.mu.Unlock()
}

// flushDeferredPhases folds the deferred buckets into the phase stats in
// registration order, skipping empty non-forced buckets (the reference
// EoP default skips stages no pipeline reached).
func (ex *executor) flushDeferredPhases() {
	ex.mu.Lock()
	order := ex.deferOrder
	ex.deferOrder = nil
	ex.mu.Unlock()
	for _, name := range order {
		ex.mu.Lock()
		units := ex.deferUnits[name]
		force := ex.deferForce[name]
		delete(ex.deferUnits, name)
		delete(ex.deferForce, name)
		ex.mu.Unlock()
		if len(units) == 0 && !force {
			continue
		}
		span, busy, n := unitStats(units)
		ex.mu.Lock()
		ex.phases.add(name, span, busy, n)
		ex.mu.Unlock()
	}
}

// runPipelineSet executes pipelines to completion — concurrently when
// there are several, inline when there is one — then flushes deferred
// phase buckets. It returns the first pipeline error; other pipelines
// still run to completion (a failing pipeline never cancels its
// siblings, matching the reference executor).
func (ex *executor) runPipelineSet(pls []*Pipeline) error {
	var err error
	if len(pls) == 1 {
		err = ex.runPipeline(pls[0])
	} else {
		var mu sync.Mutex
		var firstErr error
		wg := vclock.NewWaitGroup(ex.v, "graph pipelines")
		for _, pl := range pls {
			pl := pl
			wg.Add(1)
			ex.v.Go(func() {
				defer wg.Done()
				if perr := ex.runPipeline(pl); perr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = perr
					}
					mu.Unlock()
				}
			})
		}
		wg.Wait()
		err = firstErr
	}
	ex.flushDeferredPhases()
	return err
}

// runPipeline executes one pipeline's stages in order, applying
// PostStage graph edits as it goes. The pipeline value itself is not
// mutated; execution works on a private copy of the stage list.
func (ex *executor) runPipeline(pl *Pipeline) error {
	queue := slices.Clone(pl.Stages)
	seq := 0
	for i := 0; i < len(queue); i++ {
		st := queue[i]
		if st == nil {
			continue
		}
		seq++
		if seq <= ex.skipStages {
			// Resumed prefix: the checkpointed run settled this stage and
			// its counters are already seeded, so its tasks are not
			// re-executed — but a PostStage hook IS replayed, against
			// units rebuilt from the checkpoint snapshot, so the graph
			// growth the original hook produced (InsertStages /
			// AppendStages / Terminate) is reconstructed before the live
			// suffix runs (see checkpoint.go).
			if st.PostStage != nil {
				ctl := &StageCtl{pipeline: pl, seq: seq}
				if err := ex.replayHook(st, ctl); err != nil {
					return err
				}
				if ctl.terminated {
					return nil
				}
				if len(ctl.insert) > 0 {
					queue = slices.Insert(queue, i+1, ctl.insert...)
				}
				if len(ctl.appended) > 0 {
					queue = append(queue, ctl.appended...)
				}
			}
			continue
		}
		ctl := &StageCtl{pipeline: pl, seq: seq}
		err := ex.runStage(st, ctl)
		if err != nil {
			return err
		}
		if st.PostStage != nil && ex.onSettled != nil {
			ex.captureHookStage(seq, ctl.units)
		}
		ex.noteSettled(seq)
		if ctl.terminated {
			return nil
		}
		if len(ctl.insert) > 0 {
			queue = slices.Insert(queue, i+1, ctl.insert...)
		}
		if len(ctl.appended) > 0 {
			queue = append(queue, ctl.appended...)
		}
	}
	return nil
}

// replayHook re-runs a settled stage's PostStage hook during resume.
// The hook sees replay units reconstructed from the checkpoint
// snapshot — same names, kernels, params, and exec windows as the
// settled originals — so a deterministic hook makes the same graph
// edits it made on the interrupted run. Phase stats and counters are
// untouched: the checkpoint already accounts for the settled prefix.
func (ex *executor) replayHook(st *Stage, ctl *StageCtl) error {
	snap := ex.hookSnapshot(ctl.seq)
	if snap == nil {
		return fmt.Errorf("core: resume: stage %d of pipeline %q carries a PostStage hook but the checkpoint has no replay snapshot for it (checkpoint from a pre-replay version?)", ctl.seq, ctl.pipeline.Name)
	}
	var units []*pilot.ComputeUnit
	if len(snap.Units) > 0 {
		units = make([]*pilot.ComputeUnit, len(snap.Units))
		for i, us := range snap.Units {
			units[i] = pilot.NewReplayUnit(ex.v, pilot.UnitDescription{
				Name:   us.Name,
				Kernel: us.Kernel,
				Params: us.Params,
				Cores:  us.Cores,
				MPI:    us.MPI,
				Tags:   us.Tags,
			}, pilot.UnitDone, us.Start, us.Stop)
		}
	}
	ctl.units = units
	return st.PostStage(ctl)
}

// runStage submits a stage's tasks as one wave, waits out the barrier
// (including retries), records its phase stats, and runs the PostStage
// hook.
func (ex *executor) runStage(st *Stage, ctl *StageCtl) error {
	name := st.Name
	if name == "" {
		name = "stage." + pad.Int(ctl.seq, 1)
	}
	var units []*pilot.ComputeUnit
	var err error
	if len(st.Tasks) > 0 {
		specs := make([]taskSpec, len(st.Tasks))
		for i := range st.Tasks {
			t := &st.Tasks[i]
			k := t.Kernel
			if t.Retries > 0 && k != nil && k.Retries != t.Retries {
				kk := *k
				kk.Retries = t.Retries
				k = &kk
			}
			tn := t.Name
			if tn == "" {
				tn = name + ".task" + pad.Int(i+1, 5)
			}
			specs[i] = taskSpec{tn, k}
		}
		submit := ex.submitTracked
		if st.Streamed {
			submit = ex.submitStreamedTracked
		}
		units, err = ex.runTasksVia(specs, submit)
		if (err == nil || st.statsOnError) && len(units) > 0 {
			if st.deferPhase {
				ex.mu.Lock()
				// Self-register names the lowering did not pre-register
				// (pre-registration only fixes the flush order), so no
				// bucket is ever silently dropped at flush.
				if _, ok := ex.deferUnits[name]; !ok {
					ex.deferOrder = append(ex.deferOrder, name)
				}
				ex.deferUnits[name] = append(ex.deferUnits[name], units...)
				ex.mu.Unlock()
			} else {
				span, busy, n := unitStats(units)
				ex.mu.Lock()
				ex.phases.add(name, span, busy, n)
				ex.mu.Unlock()
			}
		}
	}
	ctl.units = units
	ctl.err = err
	if st.PostStage != nil {
		if herr := st.PostStage(ctl); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}
