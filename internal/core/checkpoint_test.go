package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"entk/internal/pilot"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// ckptFixture is a hand-built checkpoint exercising every field: multiple
// pipelines, a zero-progress pipeline, and phase lists of mixed size.
func ckptFixture() *CampaignCheckpoint {
	return &CampaignCheckpoint{Pipelines: []PipelineCheckpoint{
		{Name: "md", SettledStages: 3, Tasks: 48, Retries: 2,
			PatternOverhead: 480 * time.Millisecond,
			Phases: []PhaseStat{
				{Name: "stage.1", Span: 5 * time.Second, Busy: 80 * time.Second, Tasks: 16, Occurrences: 1},
				{Name: "stage.2", Span: 6 * time.Second, Busy: 80 * time.Second, Tasks: 16, Occurrences: 2},
			},
			HookStages: []StageSnapshot{
				{Seq: 2, Units: []UnitSnapshot{
					{Name: "md.task00001", Kernel: "misc.sleep",
						Params: map[string]float64{"seconds": 5, "warmup": 0.5},
						Cores:  2, MPI: true, Tags: []string{"cpu", "fast"},
						Start: 11 * time.Second, Stop: 16 * time.Second},
					{Name: "md.task00002", Kernel: "misc.ccount", Cores: 1,
						Start: 11 * time.Second, Stop: 12 * time.Second},
				}},
				{Seq: 3}, // control node: hook with no tasks
			}},
		{Name: "analysis"},
	}}
}

// ckptProfFixture records a small deterministic trace on the given
// storage layout.
func ckptProfFixture(layout profile.Layout) *profile.Profiler {
	v := vclock.NewVirtual()
	p := profile.NewLayout(v, layout)
	v.Run(func() {
		for i := 0; i < 64; i++ {
			v.Sleep(time.Millisecond)
			p.Record("unit.0000", "exec_start")
			v.Sleep(5 * time.Millisecond)
			p.Record("unit.0000", "exec_stop")
			p.Record("core", "tick")
		}
	})
	return p
}

// TestCheckpointRoundTrip pins the checkpoint serialisation: the state
// section round-trips exactly, the appended trace section round-trips
// across both profiler storage layouts, and corrupt streams error out
// instead of panicking.
func TestCheckpointRoundTrip(t *testing.T) {
	t.Run("state-only", func(t *testing.T) {
		for _, cp := range []*CampaignCheckpoint{ckptFixture(), {}} {
			var buf bytes.Buffer
			if err := SaveCheckpoint(&buf, cp, nil); err != nil {
				t.Fatal(err)
			}
			got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, cp) {
				t.Errorf("round trip diverges:\ngot  %+v\nwant %+v", got, cp)
			}
		}
	})

	for _, srcLayout := range []profile.Layout{profile.LayoutColumnar, profile.LayoutRef} {
		for _, dstLayout := range []profile.Layout{profile.LayoutColumnar, profile.LayoutRef} {
			t.Run("with-trace/"+srcLayout.String()+"-to-"+dstLayout.String(), func(t *testing.T) {
				src := ckptProfFixture(srcLayout)
				var buf bytes.Buffer
				if err := SaveCheckpoint(&buf, ckptFixture(), src); err != nil {
					t.Fatal(err)
				}
				dst := profile.NewLayout(vclock.NewVirtual(), dstLayout)
				got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, ckptFixture()) {
					t.Error("state section diverged when a trace follows")
				}
				if dst.EventCount() != src.EventCount() {
					t.Errorf("trace events = %d, want %d", dst.EventCount(), src.EventCount())
				}
				a, ok1 := src.First("unit.", "exec_start")
				b, ok2 := dst.First("unit.", "exec_start")
				if a != b || ok1 != ok2 {
					t.Errorf("trace query diverges after round trip: %v/%v vs %v/%v", a, ok1, b, ok2)
				}
				// A nil profiler skips the trace but still consumes the flag
				// byte: the state section alone must load from the same bytes.
				got2, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), nil)
				if err != nil || !reflect.DeepEqual(got2, ckptFixture()) {
					t.Errorf("nil-prof load of traced stream: %v", err)
				}
			})
		}
	}

	t.Run("corrupt", func(t *testing.T) {
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, ckptFixture(), nil); err != nil {
			t.Fatal(err)
		}
		good := buf.Bytes()
		if _, err := LoadCheckpoint(bytes.NewReader([]byte("NOTACKPT")), nil); err == nil {
			t.Error("bad magic accepted")
		}
		bad := append([]byte(nil), good...)
		bad[8] = 99 // version
		if _, err := LoadCheckpoint(bytes.NewReader(bad), nil); err == nil {
			t.Error("bad version accepted")
		}
		if _, err := LoadCheckpoint(bytes.NewReader(good[:len(good)-5]), nil); err == nil {
			t.Error("truncated stream accepted")
		}
	})
}

// FuzzCheckpoint feeds arbitrary bytes to LoadCheckpoint: it must never
// panic or over-allocate, and whatever it does accept must re-serialise
// canonically (save → load is the identity on accepted states).
func FuzzCheckpoint(f *testing.F) {
	for _, cp := range []*CampaignCheckpoint{ckptFixture(), {}} {
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, cp, nil); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("ENTKCKPT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := LoadCheckpoint(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, cp, nil); err != nil {
			t.Fatalf("accepted checkpoint fails to save: %v", err)
		}
		cp2, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			t.Fatalf("canonical re-load: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatalf("canonical round trip diverges:\ngot  %+v\nwant %+v", cp2, cp)
		}
	})
}

// phaseProjection is the reorder-invariant view of a phase list: the
// timeline-position column (Span start offsets) is dropped, everything
// whose value is independent of when the work ran is kept.
type phaseProjection struct {
	Name        string
	Busy        time.Duration
	Tasks       int
	Occurrences int
}

func projectPhases(phs []PhaseStat) []phaseProjection {
	out := make([]phaseProjection, len(phs))
	for i, ph := range phs {
		out[i] = phaseProjection{ph.Name, ph.Busy, ph.Tasks, ph.Occurrences}
	}
	return out
}

// TestResumeReportParity is the checkpoint/resume acceptance gate: a
// campaign killed mid-run and resumed from its persisted checkpoint (on
// a fresh clock, binding, and session) must agree with an uninterrupted
// run on every reorder-invariant report column — task and retry counts
// at campaign and pipeline level, and the per-phase busy/task/occurrence
// aggregates. The checkpoint round-trips through disk bytes alongside
// the run's trace before resuming, so the gate covers persistence, not
// just the in-memory tracker.
func TestResumeReportParity(t *testing.T) {
	registerBindingMachines(t)
	parity := func() *Pipeline { return faultPipeline("par", 8, 4, 5, false) }
	newWideSet := func(v *vclock.Virtual) *ResourceSet {
		rs, err := NewResourceSet([]PilotSpec{
			{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
		}, Config{Clock: v})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	// Baseline: the uninterrupted run.
	v0 := vclock.NewVirtual()
	rs0 := newWideSet(v0)
	var r0 *CampaignReport
	v0.Run(func() {
		if err := rs0.Allocate(); err != nil {
			t.Fatal(err)
		}
		var err error
		r0, err = NewAppManager(rs0).Run(parity())
		if err != nil {
			t.Fatalf("baseline run: %v", err)
		}
		rs0.Deallocate()
	})

	// Faulted run: the pilot dies mid stage 2 with no recovery installed;
	// the campaign settles as a partial failure and the tracker holds the
	// stage-1 barrier snapshot.
	v1 := vclock.NewVirtual()
	rs1 := newWideSet(v1)
	rs1.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
		{At: 14*time.Second + time.Nanosecond, Pilot: 0, Kind: pilot.FaultKillPilot},
	}}
	am := NewAppManager(rs1)
	var ferr error
	v1.Run(func() {
		if err := rs1.Allocate(); err != nil {
			t.Fatal(err)
		}
		_, ferr = am.Run(parity())
		rs1.Deallocate()
	})
	var perr *PatternError
	if !errors.As(ferr, &perr) {
		t.Fatalf("faulted run err = %v, want PatternError", ferr)
	}
	cp := am.Checkpoint()
	pc := cp.Pipeline("par")
	if pc == nil {
		t.Fatal("checkpoint lost the pipeline")
	}
	if pc.SettledStages < 1 || pc.SettledStages > 3 {
		t.Fatalf("settled stages = %d, want a proper prefix (1-3) of the 4-stage pipeline",
			pc.SettledStages)
	}

	// Persist the checkpoint alongside the faulted run's trace, then
	// reload both from the bytes.
	prof := rs1.Session().Prof
	savedEvents := prof.EventCount()
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cp, prof); err != nil {
		t.Fatal(err)
	}
	evidence := profile.New(vclock.NewVirtual())
	cp2, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), evidence)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp2, cp) {
		t.Fatal("checkpoint diverged through the save/load round trip")
	}
	if evidence.EventCount() != savedEvents {
		t.Errorf("trace evidence = %d events, want %d", evidence.EventCount(), savedEvents)
	}

	// Resume on a fresh binding from the reloaded checkpoint.
	v2 := vclock.NewVirtual()
	rs2 := newWideSet(v2)
	var r1 *CampaignReport
	v2.Run(func() {
		if err := rs2.Allocate(); err != nil {
			t.Fatal(err)
		}
		var err error
		r1, err = NewAppManager(rs2).Resume(cp2, parity())
		if err != nil {
			t.Fatalf("resumed run: %v", err)
		}
		rs2.Deallocate()
	})

	// Reorder-invariant parity, campaign and pipeline level.
	if r1.Campaign.Tasks != r0.Campaign.Tasks || r1.Campaign.Retries != r0.Campaign.Retries {
		t.Errorf("campaign tasks/retries = %d/%d, want %d/%d",
			r1.Campaign.Tasks, r1.Campaign.Retries, r0.Campaign.Tasks, r0.Campaign.Retries)
	}
	p0, p1 := r0.Pipelines[0], r1.Pipelines[0]
	if p1.Tasks != p0.Tasks || p1.Retries != p0.Retries || p1.PlannedTasks != p0.PlannedTasks {
		t.Errorf("pipeline tasks/retries/planned = %d/%d/%d, want %d/%d/%d",
			p1.Tasks, p1.Retries, p1.PlannedTasks, p0.Tasks, p0.Retries, p0.PlannedTasks)
	}
	if p1.PatternOverhead != p0.PatternOverhead {
		t.Errorf("pattern overhead = %v, want %v (each wave submitted exactly once)",
			p1.PatternOverhead, p0.PatternOverhead)
	}
	if got, want := projectPhases(p1.Phases), projectPhases(p0.Phases); !reflect.DeepEqual(got, want) {
		t.Errorf("phase projection diverges:\nresumed  %+v\nbaseline %+v", got, want)
	}
}

// TestResumePostStageGrowth gates the PostStage-replay fix: a campaign
// whose settled prefix contains an adaptive hook — one that inserts and
// appends stages based on the units it inspects — is killed mid-run and
// resumed from the persisted checkpoint. The replayed hook must
// reconstruct the same graph growth from the checkpointed unit
// snapshots, so the resumed run executes the full adaptive graph and
// agrees with an uninterrupted run on every reorder-invariant report
// column. Before the fix the skipped prefix dropped the hook, the
// inserted/appended stages never existed on resume, and the task counts
// diverged.
func TestResumePostStageGrowth(t *testing.T) {
	registerBindingMachines(t)
	sleep := func(sec float64) *Kernel {
		return &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": sec}}
	}
	wave := func(name string, width int, sec float64) *Stage {
		tasks := make([]Task, width)
		for i := range tasks {
			tasks[i] = Task{Kernel: sleep(sec)}
		}
		return &Stage{Name: name, Tasks: tasks}
	}
	// The adaptive pipeline: the seed stage's hook is a deterministic
	// function of its units — one refine task per unit that ran at
	// least a second, plus an appended summary stage half that wide.
	// Executed shape: seed → refine → mid → tail → summary.
	growth := func() *Pipeline {
		seed := wave("seed", 6, 5)
		seed.PostStage = func(ctl *StageCtl) error {
			done := 0
			for _, u := range ctl.Units() {
				if u == nil {
					continue
				}
				if start, stop, ok := u.ExecWindow(); ok && stop-start >= time.Second {
					done++
				}
			}
			if done > 0 {
				ctl.InsertStages(wave("refine", done, 3))
				ctl.AppendStages(wave("summary", done/2+1, 2))
			}
			return nil
		}
		return &Pipeline{Name: "adapt", Stages: []*Stage{
			seed, wave("mid", 8, 5), wave("tail", 4, 4),
		}}
	}
	newWideSet := func(v *vclock.Virtual) *ResourceSet {
		rs, err := NewResourceSet([]PilotSpec{
			{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
		}, Config{Clock: v})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	// Baseline: the uninterrupted adaptive run.
	v0 := vclock.NewVirtual()
	rs0 := newWideSet(v0)
	var r0 *CampaignReport
	v0.Run(func() {
		if err := rs0.Allocate(); err != nil {
			t.Fatal(err)
		}
		var err error
		r0, err = NewAppManager(rs0).Run(growth())
		if err != nil {
			t.Fatalf("baseline run: %v", err)
		}
		rs0.Deallocate()
	})
	// 6 seed + 6 refine + 8 mid + 4 tail + 4 summary.
	if r0.Campaign.Tasks != 28 {
		t.Fatalf("baseline tasks = %d, want 28 (hook growth missing from the fresh run?)",
			r0.Campaign.Tasks)
	}

	// Faulted run: the pilot dies after the seed stage (and its hook)
	// settled but before the grown graph finishes.
	v1 := vclock.NewVirtual()
	rs1 := newWideSet(v1)
	rs1.Faults = &pilot.FaultPlan{Faults: []pilot.Fault{
		{At: 14*time.Second + time.Nanosecond, Pilot: 0, Kind: pilot.FaultKillPilot},
	}}
	am := NewAppManager(rs1)
	var ferr error
	v1.Run(func() {
		if err := rs1.Allocate(); err != nil {
			t.Fatal(err)
		}
		_, ferr = am.Run(growth())
		rs1.Deallocate()
	})
	var perr *PatternError
	if !errors.As(ferr, &perr) {
		t.Fatalf("faulted run err = %v, want PatternError", ferr)
	}
	cp := am.Checkpoint()
	pc := cp.Pipeline("adapt")
	if pc == nil {
		t.Fatal("checkpoint lost the pipeline")
	}
	if pc.SettledStages < 1 {
		t.Fatalf("settled stages = %d; the fault landed before the hook stage settled, "+
			"so the test would not exercise replay", pc.SettledStages)
	}
	// The settled hook stage must carry its replay snapshot.
	var hook *StageSnapshot
	for i := range pc.HookStages {
		if pc.HookStages[i].Seq == 1 {
			hook = &pc.HookStages[i]
		}
	}
	if hook == nil {
		t.Fatalf("checkpoint carries no replay snapshot for the settled hook stage (HookStages = %+v)",
			pc.HookStages)
	}
	if len(hook.Units) != 6 {
		t.Fatalf("hook snapshot has %d units, want the seed stage's 6", len(hook.Units))
	}

	// Persist through bytes, then resume on a fresh binding.
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cp, rs1.Session().Prof); err != nil {
		t.Fatal(err)
	}
	cp2, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp2, cp) {
		t.Fatal("checkpoint diverged through the save/load round trip")
	}
	v2 := vclock.NewVirtual()
	rs2 := newWideSet(v2)
	var r1 *CampaignReport
	v2.Run(func() {
		if err := rs2.Allocate(); err != nil {
			t.Fatal(err)
		}
		var err error
		r1, err = NewAppManager(rs2).Resume(cp2, growth())
		if err != nil {
			t.Fatalf("resumed run: %v", err)
		}
		rs2.Deallocate()
	})

	// Reorder-invariant parity with the uninterrupted adaptive run.
	if r1.Campaign.Tasks != r0.Campaign.Tasks || r1.Campaign.Retries != r0.Campaign.Retries {
		t.Errorf("campaign tasks/retries = %d/%d, want %d/%d",
			r1.Campaign.Tasks, r1.Campaign.Retries, r0.Campaign.Tasks, r0.Campaign.Retries)
	}
	p0, p1 := r0.Pipelines[0], r1.Pipelines[0]
	if p1.Tasks != p0.Tasks || p1.Retries != p0.Retries {
		t.Errorf("pipeline tasks/retries = %d/%d, want %d/%d",
			p1.Tasks, p1.Retries, p0.Tasks, p0.Retries)
	}
	if got, want := projectPhases(p1.Phases), projectPhases(p0.Phases); !reflect.DeepEqual(got, want) {
		t.Errorf("phase projection diverges:\nresumed  %+v\nbaseline %+v", got, want)
	}
}
