package core

import "fmt"

// This file implements the adaptive capabilities the paper plans in
// Section V: varying the number of tasks between stages, terminating an
// ensemble when a condition is met (the basis of kill-replace style
// control), and composing unit patterns into higher-order patterns.

// AdaptiveSimulations, when set on a SimulationAnalysisLoop, overrides
// the Simulations width per iteration: it receives the 1-based iteration
// and returns the number of simulation tasks for it. Applications close
// over their analysis state to let results steer the next iteration's
// width ("vary the number of tasks between stages"). Returning a value
// < 1 is an error.
//
// AdaptiveStop, when set, is consulted after each iteration's analysis;
// returning true ends the loop early ("adaptive execution"), running the
// PostLoop kernel next.
//
// Both hooks live on the pattern structs so the zero values keep the
// paper's static semantics.

// validateAdaptive is called from the executor when hooks are present.
func validateAdaptiveWidth(n, iter int) error {
	if n < 1 {
		return fmt.Errorf("core: adaptive width %d for iteration %d", n, iter)
	}
	return nil
}

// Composite is a higher-order pattern: a sequence of unit patterns
// executed in order on one allocation (Section V: "higher order patterns
// as functions of unit patterns"). Phase statistics of the k-th member
// are prefixed with "pk." in the report.
type Composite struct {
	// Name labels the composite in reports; defaults to "composite".
	Name string
	// Members are executed sequentially.
	Members []Pattern
}

// PatternName implements Pattern.
func (c *Composite) PatternName() string {
	if c.Name != "" {
		return c.Name
	}
	return "composite"
}

// TaskCount implements Pattern.
func (c *Composite) TaskCount() int {
	n := 0
	for _, m := range c.Members {
		n += m.TaskCount()
	}
	return n
}

func (c *Composite) validate() error {
	if len(c.Members) == 0 {
		return fmt.Errorf("core: composite pattern with no members")
	}
	for i, m := range c.Members {
		if m == nil {
			return fmt.Errorf("core: composite member %d is nil", i)
		}
		if _, nested := m.(*Composite); nested {
			return fmt.Errorf("core: composite member %d: nesting composites is not supported", i)
		}
		if err := m.validate(); err != nil {
			return fmt.Errorf("core: composite member %d: %w", i, err)
		}
	}
	return nil
}

// runComposite executes members sequentially, merging phase stats with
// member prefixes.
func (ex *executor) runComposite(c *Composite) error {
	for i, m := range c.Members {
		sub := newExecutor(ex.rs, m)
		// Share the submission lock so pattern overhead accounting stays
		// serialized across members.
		sub.subLock = ex.subLock
		err := sub.run()

		// Merge the member's accounting into the parent under a prefix.
		sub.mu.Lock()
		memberPhases := sub.phases.stats()
		tasks, retries, overhead := sub.tasks, sub.retries, sub.patternOverhead
		sub.mu.Unlock()
		ex.mu.Lock()
		ex.tasks += tasks
		ex.retries += retries
		ex.patternOverhead += overhead
		ex.phases.merge(fmt.Sprintf("p%d.", i+1), memberPhases)
		ex.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: composite member %d (%s): %w", i+1, m.PatternName(), err)
		}
	}
	return nil
}
