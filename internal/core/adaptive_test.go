package core

import (
	"strings"
	"testing"
	"time"

	"entk/internal/vclock"
)

func TestAdaptiveSimulationsVariesWidth(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 16)
	widths := []int{2, 8, 4}
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(&SimulationAnalysisLoop{
			Iterations:          3,
			Simulations:         1, // overridden per iteration
			Analyses:            1,
			AdaptiveSimulations: func(iter int) int { return widths[iter-1] },
			SimulationKernel:    func(it, i int) *Kernel { return sleepKernel(1) },
			AnalysisKernel:      func(it, i int) *Kernel { return sleepKernel(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	sim := rep.Phase("simulation")
	if sim.Tasks != 2+8+4 {
		t.Errorf("adaptive sim tasks = %d, want 14", sim.Tasks)
	}
	if sim.Occurrences != 3 {
		t.Errorf("occurrences = %d, want 3", sim.Occurrences)
	}
}

func TestAdaptiveWidthValidation(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	v.Run(func() {
		_, err := h.Execute(&SimulationAnalysisLoop{
			Iterations:          2,
			Simulations:         1,
			Analyses:            1,
			AdaptiveSimulations: func(iter int) int { return 0 },
			SimulationKernel:    func(it, i int) *Kernel { return sleepKernel(1) },
			AnalysisKernel:      func(it, i int) *Kernel { return sleepKernel(1) },
		})
		if err == nil || !strings.Contains(err.Error(), "adaptive width") {
			t.Errorf("zero adaptive width accepted: %v", err)
		}
	})
}

func TestAdaptiveStopEndsLoopEarly(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	post := 0
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(&SimulationAnalysisLoop{
			Iterations:       10,
			Simulations:      2,
			Analyses:         1,
			SimulationKernel: func(it, i int) *Kernel { return sleepKernel(1) },
			AnalysisKernel:   func(it, i int) *Kernel { return sleepKernel(1) },
			AdaptiveStop:     func(iter int) bool { return iter == 3 }, // "converged"
			PostLoop: func() *Kernel {
				k := sleepKernel(1)
				k.Work = func() error { post++; return nil }
				return k
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if got := rep.Phase("simulation").Occurrences; got != 3 {
		t.Errorf("loop ran %d iterations, want 3", got)
	}
	if post != 1 {
		t.Errorf("post_loop ran %d times, want 1", post)
	}
}

func TestEEStopWhenEndsEnsembleEarly(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(&EnsembleExchange{
			Replicas:         4,
			Cycles:           10,
			SimulationKernel: func(c, r int) *Kernel { return sleepKernel(1) },
			ExchangeKernel: func(c int) *Kernel {
				return &Kernel{Name: "md.remd_exchange", Params: map[string]float64{"replicas": 4}}
			},
			StopWhen: func(cycle int) bool { return cycle >= 2 },
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if got := rep.Phase("simulation").Occurrences; got != 2 {
		t.Errorf("EE ran %d cycles, want 2", got)
	}
}

func TestEEStopWhenRejectedInPairwiseMode(t *testing.T) {
	p := &EnsembleExchange{
		Replicas:         4,
		Cycles:           2,
		Mode:             PairwiseExchange,
		SimulationKernel: func(c, r int) *Kernel { return sleepKernel(1) },
		ExchangeKernel:   func(c int) *Kernel { return sleepKernel(1) },
		StopWhen:         func(int) bool { return false },
	}
	if err := p.validate(); err == nil {
		t.Error("StopWhen with pairwise mode accepted")
	}
}

func TestCompositePattern(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	comp := &Composite{
		Name: "equilibrate-then-sample",
		Members: []Pattern{
			&EnsembleOfPipelines{
				Pipelines:   4,
				Stages:      1,
				StageKernel: func(int, int) *Kernel { return sleepKernel(2) },
			},
			&SimulationAnalysisLoop{
				Iterations:       2,
				Simulations:      4,
				Analyses:         1,
				SimulationKernel: func(int, int) *Kernel { return sleepKernel(1) },
				AnalysisKernel:   func(int, int) *Kernel { return sleepKernel(1) },
			},
		},
	}
	if got := comp.TaskCount(); got != 4+2*5 {
		t.Errorf("composite task count = %d, want 14", got)
	}
	var rep *Report
	v.Run(func() {
		var err error
		rep, err = h.Execute(comp)
		if err != nil {
			t.Fatal(err)
		}
	})
	if rep.Pattern != "equilibrate-then-sample" {
		t.Errorf("pattern name = %q", rep.Pattern)
	}
	if rep.Tasks != 14 {
		t.Errorf("tasks = %d, want 14", rep.Tasks)
	}
	if got := rep.Phase("p1.stage.1").Tasks; got != 4 {
		t.Errorf("p1.stage.1 tasks = %d, want 4", got)
	}
	if got := rep.Phase("p2.simulation").Tasks; got != 8 {
		t.Errorf("p2.simulation tasks = %d, want 8", got)
	}
	// Members are sequential: the SAL must start after the EoP finishes.
	if rep.TTC < 4*time.Second {
		t.Errorf("TTC = %v, want >= 4s (2s EoP + 2x(1+1)s SAL)", rep.TTC)
	}
}

func TestCompositeValidation(t *testing.T) {
	if err := (&Composite{}).validate(); err == nil {
		t.Error("empty composite accepted")
	}
	if err := (&Composite{Members: []Pattern{nil}}).validate(); err == nil {
		t.Error("nil member accepted")
	}
	bad := &Composite{Members: []Pattern{&EnsembleOfPipelines{}}}
	if err := bad.validate(); err == nil {
		t.Error("invalid member accepted")
	}
	nested := &Composite{Members: []Pattern{&Composite{Members: []Pattern{
		&EnsembleOfPipelines{Pipelines: 1, Stages: 1, StageKernel: func(int, int) *Kernel { return sleepKernel(1) }},
	}}}}
	if err := nested.validate(); err == nil {
		t.Error("nested composite accepted")
	}
	anon := &Composite{Members: []Pattern{
		&EnsembleOfPipelines{Pipelines: 1, Stages: 1, StageKernel: func(int, int) *Kernel { return sleepKernel(1) }},
	}}
	if anon.PatternName() != "composite" {
		t.Errorf("default name = %q", anon.PatternName())
	}
}

func TestCompositeMemberFailurePropagates(t *testing.T) {
	v := vclock.NewVirtual()
	h := newHandle(t, v, 8)
	v.Run(func() {
		_, err := h.Execute(&Composite{
			Members: []Pattern{
				&EnsembleOfPipelines{
					Pipelines: 1, Stages: 1,
					StageKernel: func(int, int) *Kernel {
						k := sleepKernel(1)
						k.FailOn = func(int) bool { return true }
						return k
					},
				},
				&EnsembleOfPipelines{
					Pipelines: 1, Stages: 1,
					StageKernel: func(int, int) *Kernel { return sleepKernel(1) },
				},
			},
		})
		if err == nil || !strings.Contains(err.Error(), "member 1") {
			t.Errorf("composite failure not propagated: %v", err)
		}
	})
}
