package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"entk/internal/pilot"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// This file is the resource-binding layer: the paper's core claim is
// that decoupling workload description from resource acquisition lets
// one ensemble application run unchanged across heterogeneous HPC
// resources (Section III-B3), and the Binding abstraction is where that
// decoupling lives. A ResourceSet holds an ordered set of pilots — on
// one machine or several — behind one session, one unit manager, and
// one shared submission batcher; every executor (pattern runs and
// AppManager campaigns alike) runs against a set, and a classic
// ResourceHandle is now a compatibility shim over a single-pilot set
// (handle.go). Placement of each unit onto a pilot is late-bound at
// dispatch time through a pluggable pilot.PlacementPolicy, so a
// campaign's tasks drain to whichever machine has capacity — or, with
// tag affinity, to the machine provisioned for them.

// PilotSpec requests one pilot of a resource set.
type PilotSpec struct {
	// Resource is the machine label, e.g. "xsede.comet".
	Resource string
	// Cores is the pilot size on that machine.
	Cores int
	// Walltime bounds the allocation.
	Walltime time.Duration
	// Queue and Project pass through to the machine's batch system.
	Queue   string
	Project string
	// Tags label the pilot for tag-affinity placement (matched against
	// Kernel.Tags), e.g. "mpi" on the wide-node machine.
	Tags []string
	// ActivationDeadline, if positive, bounds how long the pilot may sit
	// unactivated in the batch queue, measured from its submission: a
	// pilot still PENDING at the deadline is killed, and the campaign
	// proceeds on the surviving pilots (work the survivors cannot hold
	// settles as a partial PatternError) instead of gating forever on a
	// stuck resource request. Zero waits indefinitely — the seed
	// behaviour.
	ActivationDeadline time.Duration
}

// validate rejects malformed specs with the handle's error vocabulary.
func (s *PilotSpec) validate() error {
	switch {
	case s.Resource == "":
		return fmt.Errorf("core: pilot spec needs a resource")
	case s.Cores < 1:
		return fmt.Errorf("core: pilot spec needs at least one core")
	case s.Walltime <= 0:
		return fmt.Errorf("core: pilot spec needs a positive walltime")
	}
	return nil
}

// Binding is what executors acquire resources through: either a classic
// single-pilot ResourceHandle (the compatibility shim) or a multi-pilot
// ResourceSet. AppManager accepts any Binding; the interface is sealed
// to the core implementations, which share one runtime underneath.
type Binding interface {
	// BindingLabel names the binding in reports: the machine label for
	// a single-pilot binding, the joined labels for a set.
	BindingLabel() string
	// TotalCores is the summed pilot size of the binding.
	TotalCores() int
	// bind exposes the shared runtime (seals the interface).
	bind() *ResourceSet
}

// ResourceSet acquires an ordered set of pilots — possibly on different
// machines — and runs patterns and campaigns on them: Allocate submits
// every pilot, Run/AppManager execute work with units late-bound to
// pilots per the Placement policy, Deallocate releases everything. A
// single-spec set behaves bit-identically to a ResourceHandle (the
// handle is implemented on top of it).
type ResourceSet struct {
	// Specs are the requested pilots, in set order.
	Specs []PilotSpec
	// Placement selects the unit-to-pilot late-binding policy. Nil
	// keeps the legacy per-unit scheduler (RuntimeConfig.Scheduler) for
	// single-pilot sets — the seed code path — and defaults to
	// round-robin over structurally eligible pilots for multi-pilot
	// sets. Set it before Allocate.
	Placement pilot.PlacementPolicy
	// EagerSubmit makes Run and AppManager.Run start submitting as soon
	// as the FIRST pilot of the set activates instead of waiting for
	// all of them: units late-bound to already-active pilots start
	// immediately, while units bound to still-queued pilots wait in
	// those pilots' agents and start on activation — so a
	// slow-activating machine no longer delays work routed to a fast
	// one. The reported QueueWait is then the earliest pilot's (the
	// bound actual work start is measured against); per-pilot waits
	// appear on the campaign utilization rows. Off by default: the run
	// start gates on the slowest pilot, the seed semantics the recorded
	// multi-pilot tiers pin. Set it before Run.
	EagerSubmit bool
	// Faults, if non-nil, schedules deterministic resource failures —
	// pilot deaths, walltime expiries, node losses — at exact virtual
	// instants, measured from the moment Allocate arms the plan (its
	// return). The virtual clock makes the same plan bit-reproducible
	// run after run; pick instants no cost model produces (odd
	// nanosecond offsets) so fault wakes never race model events. Set it
	// before Allocate.
	Faults *pilot.FaultPlan
	// Rebind opts displaced units into recovery: when a pilot dies or
	// loses nodes, its pending backlog and in-flight units are returned
	// and re-dispatched onto the surviving pilots through the placement
	// policy, instead of failing with the death cause. Units no survivor
	// can hold fail placement and settle through the executor's retry
	// budget as a partial PatternError — the campaign always settles,
	// it never hangs on lost work. Set it before Allocate.
	Rebind bool

	cfg    Config
	sess   *pilot.Session
	pm     *pilot.PilotManager
	um     *pilot.UnitManager
	batch  *pilot.WaveBatcher
	pilots []*pilot.ComputePilot

	// Core-layer profiler ids, interned once at Allocate: the toolkit's
	// own control-plane phases record onto the "core" entity so the TTC
	// decomposition's constant overhead is reconstructible from events.
	coreEnt                        profile.EntityID
	evBootstrapDone, evPilotSubmit profile.NameID
	evRunStart, evRunStop          profile.NameID
	evDeallocStart, evDeallocStop  profile.NameID

	mu           sync.Mutex
	allocated    bool
	allocCtl     time.Duration // control-plane time spent in Allocate
	deallocCtl   time.Duration // control-plane time spent in Deallocate
	queueWait    time.Duration
	agentStartup time.Duration
}

// NewResourceSet validates the specs and prepares a set. Placement may
// be assigned on the returned set before Allocate.
func NewResourceSet(specs []PilotSpec, cfg Config) (*ResourceSet, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: resource set needs at least one pilot spec")
	}
	for i := range specs {
		if err := specs[i].validate(); err != nil {
			return nil, fmt.Errorf("core: pilot spec %d: %w", i+1, err)
		}
	}
	return &ResourceSet{
		Specs: append([]PilotSpec(nil), specs...),
		cfg:   full,
	}, nil
}

// BindingLabel implements Binding: the single machine label, or the
// spec labels joined with "+" in set order.
func (rs *ResourceSet) BindingLabel() string {
	if len(rs.Specs) == 1 {
		return rs.Specs[0].Resource
	}
	names := make([]string, len(rs.Specs))
	for i, s := range rs.Specs {
		names[i] = s.Resource
	}
	return strings.Join(names, "+")
}

// TotalCores implements Binding: the summed pilot size.
func (rs *ResourceSet) TotalCores() int {
	total := 0
	for _, s := range rs.Specs {
		total += s.Cores
	}
	return total
}

func (rs *ResourceSet) bind() *ResourceSet { return rs }

// Session exposes the underlying runtime session (profiling, tests).
func (rs *ResourceSet) Session() *pilot.Session { return rs.sess }

// Pilots returns the allocated pilots in set order, nil before
// Allocate. Pilots added mid-campaign (AddPilot) appear after the
// initial specs; drained pilots remain listed — their utilization rows
// cover the part of the campaign they served.
func (rs *ResourceSet) Pilots() []*pilot.ComputePilot {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*pilot.ComputePilot(nil), rs.pilots...)
}

// Batcher exposes the set's shared submission batcher (tests).
func (rs *ResourceSet) Batcher() *pilot.WaveBatcher { return rs.batch }

// ControlOverhead returns the toolkit's control-plane time so far
// (Allocate plus any completed Deallocate) — what Execute patches into
// Report.CoreOverhead after deallocation. Campaign runners that
// sequence Allocate / AppManager.Run / Deallocate themselves use it to
// account the dealloc phase like the pattern path does.
func (rs *ResourceSet) ControlOverhead() time.Duration {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.allocCtl + rs.deallocCtl
}

// Allocate initialises the toolkit and submits every pilot's resource
// request, in set order. It returns once the requests are submitted
// (not when they become active); Run waits for activation. The time
// spent here is control-plane work and counts toward the core
// overhead. A submission failure cancels the pilots already submitted
// and leaves the set unallocated.
func (rs *ResourceSet) Allocate() error {
	rs.mu.Lock()
	if rs.allocated {
		rs.mu.Unlock()
		return fmt.Errorf("core: resource set already allocated")
	}
	rs.allocated = true
	rs.mu.Unlock()

	v := rs.cfg.Clock
	t0 := v.Now()
	v.Sleep(rs.cfg.InitOverhead) // toolkit bootstrap
	rs.sess = pilot.NewSession(v, rs.cfg.Cost, rs.cfg.Runtime)
	prof := rs.sess.Prof
	rs.coreEnt = prof.Intern("core")
	rs.evBootstrapDone = prof.InternName("bootstrap_done")
	rs.evPilotSubmit = prof.InternName("pilot_submitted")
	rs.evRunStart = prof.InternName("run_start")
	rs.evRunStop = prof.InternName("run_stop")
	rs.evDeallocStart = prof.InternName("dealloc_start")
	rs.evDeallocStop = prof.InternName("dealloc_stop")
	prof.RecordID(rs.coreEnt, rs.evBootstrapDone)
	rs.pm = pilot.NewPilotManager(rs.sess)
	rs.um = pilot.NewUnitManager(rs.sess)
	if rs.Placement != nil {
		rs.um.SetPlacement(rs.Placement)
	} else if len(rs.Specs) > 1 || rs.Rebind {
		// Multi-pilot sets need eligibility-aware placement (the legacy
		// per-unit scheduler would route units to pilots that must
		// reject them); single-pilot sets keep the seed path bit for
		// bit. Rebind always needs it: re-dispatch must exclude the dead
		// pilot, which only eligibility-aware placement does.
		rs.um.SetPlacement(pilot.PlaceRoundRobin())
	}
	rs.batch = pilot.NewWaveBatcher(rs.um)
	for _, spec := range rs.Specs {
		p, err := rs.pm.Submit(pilot.PilotDescription{
			Resource: spec.Resource,
			Cores:    spec.Cores,
			Walltime: spec.Walltime,
			Queue:    spec.Queue,
			Project:  spec.Project,
			Tags:     spec.Tags,
		})
		if err != nil {
			// Unwind: cancel and await the pilots already submitted,
			// then drop the half-built runtime so a corrected retry
			// starts from a clean session.
			for _, q := range rs.pilots {
				q.Cancel()
			}
			for _, q := range rs.pilots {
				q.WaitFinal()
			}
			rs.pilots = nil
			rs.sess, rs.pm, rs.um, rs.batch = nil, nil, nil, nil
			rs.mu.Lock()
			rs.allocated = false
			rs.mu.Unlock()
			return err
		}
		rs.pilots = append(rs.pilots, p)
		rs.um.AddPilot(p)
		prof.RecordID(rs.coreEnt, rs.evPilotSubmit)
		rs.armPilot(p, spec)
	}
	if rs.Faults != nil {
		var displaced func([]*pilot.ComputeUnit)
		if rs.Rebind {
			displaced = rs.redispatch
		}
		if err := rs.Faults.Arm(v, rs.pilots, displaced); err != nil {
			return err
		}
	}
	rs.mu.Lock()
	rs.allocCtl = v.Now() - t0
	rs.mu.Unlock()
	return nil
}

// armPilot attaches the fault-tolerance machinery of one freshly
// submitted pilot: the rebind recovery path, the scheduling withdrawal
// on death, and the activation deadline. Shared by Allocate and the
// mid-campaign AddPilot.
func (rs *ResourceSet) armPilot(p *pilot.ComputePilot, spec PilotSpec) {
	v := rs.cfg.Clock
	if rs.Rebind {
		// Installed before the pilot can activate (agent boot is still
		// ahead), so every placement is tracked and teardown returns the
		// backlog instead of failing it.
		p.SetRecovery(rs.redispatch)
		// Withdraw a dead pilot from scheduling so late-binding picks
		// stop seeing it (placement would skip it anyway; this keeps the
		// set's "no pilots" accounting honest when every pilot dies).
		p := p
		v.Go(func() {
			p.WaitFinal()
			rs.um.RemovePilot(p)
		})
	}
	if spec.ActivationDeadline > 0 {
		p := p
		deadline := spec.ActivationDeadline
		v.After(deadline, func() {
			if p.State() == pilot.PilotPending {
				p.Kill(fmt.Errorf("core: pilot %d missed activation deadline %v", p.ID, deadline))
			}
		})
	}
}

// redispatch is the recovery callback rebinding displaced units: they
// re-enter late binding over the surviving pilots at the current instant
// (re-dispatch charges no client-side submission cost — the units were
// already created and paid it). Units no survivor can hold fail
// placement and settle through the executor's retry budget.
func (rs *ResourceSet) redispatch(units []*pilot.ComputeUnit) {
	rs.um.Dispatch(units)
}

// waitActive blocks until the set can accept units, recording the
// queue wait (which is resource wait, not toolkit overhead). By
// default it waits for every pilot and reports the slowest one's wait
// — work cannot start on the full set before then, and that is the
// bound the campaign TTC is measured against. With EagerSubmit it
// waits only for the first activation (see waitFirstActive).
func (rs *ResourceSet) waitActive() error {
	if len(rs.pilots) == 0 {
		return fmt.Errorf("core: resource set not allocated")
	}
	if rs.EagerSubmit {
		return rs.waitFirstActive()
	}
	v := rs.cfg.Clock
	t0 := v.Now()
	var queueWait time.Duration
	active := 0
	for _, p := range rs.pilots {
		p.WaitActive()
		if p.State() != pilot.PilotActive {
			// An injected fault — a planned kill, or a missed activation
			// deadline — degrades the set to the survivors instead of
			// failing the run; natural deaths keep the seed's hard error.
			if p.FaultCause() != nil {
				continue
			}
			return fmt.Errorf("core: pilot failed before activation (%v)", p.State())
		}
		active++
		if qw := p.QueueWait(); qw > queueWait {
			queueWait = qw
		}
	}
	if active == 0 {
		return fmt.Errorf("core: every pilot failed before activation")
	}
	rs.mu.Lock()
	rs.queueWait = queueWait
	rs.agentStartup = v.Now() - t0 - queueWait
	if rs.agentStartup < 0 {
		rs.agentStartup = 0
	}
	rs.mu.Unlock()
	return nil
}

// waitFirstActive blocks until at least one pilot of the set accepts
// units, failing only when every pilot died before activation. The
// recorded queue wait is the first-activated pilot's: submission
// begins against it immediately, and units bound to the still-queued
// pilots wait inside those pilots' agents — their machines' queue
// waits then show up in the campaign timeline (and on the per-pilot
// utilization rows), not as a gate before it.
func (rs *ResourceSet) waitFirstActive() error {
	v := rs.cfg.Clock
	t0 := v.Now()
	first := vclock.NewEvent(v, "resource set first activation")
	var mu sync.Mutex
	var winner *pilot.ComputePilot
	dead := 0
	for _, p := range rs.pilots {
		// Already active (a second Run, or a zero-wait machine): no
		// watcher processes needed. Prefer the earliest-activated pilot
		// so repeated Runs report a stable queue wait.
		if p.State() == pilot.PilotActive &&
			(winner == nil || p.QueueWait() < winner.QueueWait()) {
			winner = p
		}
	}
	if winner == nil {
		for _, p := range rs.pilots {
			p := p
			v.Go(func() {
				p.WaitActive()
				mu.Lock()
				defer mu.Unlock()
				if p.State() == pilot.PilotActive {
					if winner == nil {
						winner = p
					}
				} else if dead++; dead == len(rs.pilots) {
					winner = nil // all failed: release the waiter empty-handed
				} else {
					return
				}
				first.Fire() // idempotent
			})
		}
		first.Wait()
		mu.Lock()
		defer mu.Unlock()
	}
	if winner == nil {
		return fmt.Errorf("core: every pilot failed before activation")
	}
	queueWait := winner.QueueWait()
	rs.mu.Lock()
	rs.queueWait = queueWait
	rs.agentStartup = v.Now() - t0 - queueWait
	if rs.agentStartup < 0 {
		rs.agentStartup = 0
	}
	rs.mu.Unlock()
	return nil
}

// AddPilot grows an allocated set mid-campaign: the spec is validated
// and submitted like an Allocate-time pilot (batch queue, agent boot,
// recovery and deadline arming included), joins late binding
// immediately — units bound to it before activation wait in its agent —
// and appears on campaign utilization rows with a zero baseline, so its
// row covers only the work it actually absorbed. Must be called from a
// registered clock process; the submission's control time is charged to
// the caller, not the core overhead.
func (rs *ResourceSet) AddPilot(spec PilotSpec) (*pilot.ComputePilot, error) {
	rs.mu.Lock()
	ok := rs.allocated
	rs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: AddPilot before Allocate")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	p, err := rs.pm.Submit(pilot.PilotDescription{
		Resource: spec.Resource,
		Cores:    spec.Cores,
		Walltime: spec.Walltime,
		Queue:    spec.Queue,
		Project:  spec.Project,
		Tags:     spec.Tags,
	})
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.pilots = append(rs.pilots, p)
	rs.mu.Unlock()
	rs.um.AddPilot(p)
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evPilotSubmit)
	rs.armPilot(p, spec)
	return p, nil
}

// DrainPilot shrinks an allocated set mid-campaign: the pilot is
// withdrawn from late binding, its pending backlog is re-dispatched
// onto the remaining pilots, its running units finish normally, and the
// allocation is then released. The drained pilot stays in Pilots() —
// its utilization row covers the partial lifetime it served. Units the
// remaining pilots cannot hold settle through the executor's retry
// budget (partial PatternError); draining the last pilot strands
// nothing but fails everything still pending. Must be called from a
// registered clock process; blocks until the pilot is released.
func (rs *ResourceSet) DrainPilot(p *pilot.ComputePilot) error {
	rs.mu.Lock()
	member := false
	for _, q := range rs.pilots {
		if q == p {
			member = true
			break
		}
	}
	rs.mu.Unlock()
	if !member {
		return fmt.Errorf("core: DrainPilot of a pilot not in the set")
	}
	rs.um.RemovePilot(p) // no new work arrives past this point
	if backlog := p.DrainPending(); len(backlog) > 0 {
		rs.redispatch(backlog)
	}
	p.Quiesced().Wait() // running units finish normally
	p.Cancel()
	p.WaitFinal()
	return nil
}

// Run executes one pattern on the allocated set and returns its report.
// Multiple patterns may run sequentially on one set.
func (rs *ResourceSet) Run(p Pattern) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	rs.mu.Lock()
	ok := rs.allocated
	rs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: Run before Allocate")
	}
	if err := rs.waitActive(); err != nil {
		return nil, err
	}

	ex := newExecutor(rs, p)
	v := rs.cfg.Clock
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evRunStart)
	t0 := v.Now()
	err := ex.run()
	ttc := v.Now() - t0
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evRunStop)

	rep := ex.report()
	rep.TTC = ttc
	rs.mu.Lock()
	rep.CoreOverhead = rs.allocCtl + rs.deallocCtl
	rep.QueueWait = rs.queueWait
	rep.AgentStartup = rs.agentStartup
	rs.mu.Unlock()
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// Deallocate cancels every pilot and releases the session. Its control
// time joins the core overhead of subsequently produced reports.
func (rs *ResourceSet) Deallocate() error {
	rs.mu.Lock()
	if !rs.allocated {
		rs.mu.Unlock()
		return fmt.Errorf("core: Deallocate before Allocate")
	}
	rs.mu.Unlock()
	v := rs.cfg.Clock
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evDeallocStart)
	t0 := v.Now()
	for _, p := range rs.pilots {
		p.Cancel()
	}
	for _, p := range rs.pilots {
		p.WaitFinal()
	}
	rs.sess.Prof.RecordID(rs.coreEnt, rs.evDeallocStop)
	rs.mu.Lock()
	rs.deallocCtl = v.Now() - t0
	rs.mu.Unlock()
	return nil
}

// Execute allocates, runs the pattern, and deallocates, returning a
// report whose core overhead includes both control phases.
func (rs *ResourceSet) Execute(p Pattern) (*Report, error) {
	if err := rs.Allocate(); err != nil {
		return nil, err
	}
	rep, runErr := rs.Run(p)
	if err := rs.Deallocate(); err != nil && runErr == nil {
		runErr = err
	}
	if rep != nil {
		rs.mu.Lock()
		rep.CoreOverhead = rs.allocCtl + rs.deallocCtl
		rs.mu.Unlock()
	}
	return rep, runErr
}
