package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseStat aggregates one logical phase of a pattern (e.g. all
// simulations of cycle 3, or all stage-2 tasks).
type PhaseStat struct {
	// Name identifies the phase, e.g. "simulation", "exchange",
	// "stage.2". Repeats (per cycle/iteration) aggregate under one name.
	Name string
	// Span is the wall time from the first execution start to the last
	// execution stop, summed over the phase's occurrences.
	Span time.Duration
	// Busy is the cumulative execution time over all tasks of the phase.
	Busy time.Duration
	// Tasks is the number of tasks that executed in the phase.
	Tasks int
	// Occurrences counts how many times the phase ran (cycles).
	Occurrences int
}

// PilotUtilization is one pilot's share of a campaign: how many units
// the late-binding placement routed to it and how busy they kept its
// allocation over the campaign window. The utilization denominator is
// the campaign TTC, so a pilot that sat idle while another machine
// carried the campaign shows near-zero utilization.
type PilotUtilization struct {
	// Pilot is the pilot's runtime id (set order follows the spec list).
	Pilot int
	// Resource is the machine the pilot runs on.
	Resource string
	// Cores is the pilot size.
	Cores int
	// Tags are the pilot's affinity tags.
	Tags []string
	// Units is the number of units that executed on the pilot during
	// the campaign.
	Units int
	// CoreBusy is the core-weighted execution time those units consumed.
	CoreBusy time.Duration
	// QueueWait is this pilot's own batch queue wait (zero if it never
	// activated). Under the default wait-all gate every pilot's wait has
	// elapsed before the campaign starts; with ResourceSet.EagerSubmit
	// the per-pilot waits diverge from the campaign-level QueueWait,
	// which then reports only the earliest pilot's.
	QueueWait time.Duration
	// Utilization is CoreBusy over the pilot's capacity for the
	// campaign span (cores × campaign TTC), in [0, 1] up to launcher
	// and staging slack.
	Utilization float64
}

// Report is the TTC decomposition of one pattern execution, the data
// behind the paper's stacked-bar and scaling figures.
type Report struct {
	// Pattern is the pattern name.
	Pattern string
	// Resource is the machine label.
	Resource string
	// Cores is the pilot size used.
	Cores int
	// PlannedTasks is the static task plan (Pattern.TaskCount or
	// Pipeline.TaskCount before execution). Adaptive hooks
	// (AdaptiveSimulations, StopWhen, AdaptiveStop, PostStage) make the
	// executed count diverge from the plan in either direction.
	PlannedTasks int
	// Tasks is the number of tasks actually executed (first attempts;
	// retries are counted separately). This — not PlannedTasks — is the
	// number adaptive runs should report.
	Tasks int
	// Retries is the number of resubmitted task attempts.
	Retries int

	// TTC is the total time from Run start (pilot active) to pattern
	// completion.
	TTC time.Duration
	// CoreOverhead is the toolkit's constant overhead: initialisation
	// plus launching and cancelling the resource request (Fig. 3's "EnTK
	// Core overhead").
	CoreOverhead time.Duration
	// PatternOverhead is the time spent creating tasks and submitting
	// them to the runtime; it grows with the task count (Fig. 3's "EnTK
	// Pattern overhead").
	PatternOverhead time.Duration
	// QueueWait is the batch-queue wait of the pilot (resource wait, not
	// toolkit overhead).
	QueueWait time.Duration
	// AgentStartup is the pilot agent bootstrap time.
	AgentStartup time.Duration

	// Phases lists per-phase aggregates in first-occurrence order.
	Phases []PhaseStat
}

// Phase returns the aggregate for the named phase, or a zero PhaseStat.
func (r *Report) Phase(name string) PhaseStat {
	for _, p := range r.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStat{Name: name}
}

// ExecTime is the summed span of all phases: the application execution
// component of the TTC.
func (r *Report) ExecTime() time.Duration {
	var t time.Duration
	for _, p := range r.Phases {
		t += p.Span
	}
	return t
}

// String renders the report as the kind of table the paper's figures are
// drawn from.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern=%s resource=%s cores=%d tasks=%d retries=%d\n",
		r.Pattern, r.Resource, r.Cores, r.Tasks, r.Retries)
	fmt.Fprintf(&b, "  TTC               %12.2fs\n", r.TTC.Seconds())
	fmt.Fprintf(&b, "  core overhead     %12.2fs\n", r.CoreOverhead.Seconds())
	fmt.Fprintf(&b, "  pattern overhead  %12.2fs\n", r.PatternOverhead.Seconds())
	fmt.Fprintf(&b, "  queue wait        %12.2fs\n", r.QueueWait.Seconds())
	fmt.Fprintf(&b, "  agent startup     %12.2fs\n", r.AgentStartup.Seconds())
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  phase %-12s span %10.2fs  busy %10.2fs  tasks %5d  runs %3d\n",
			p.Name, p.Span.Seconds(), p.Busy.Seconds(), p.Tasks, p.Occurrences)
	}
	return b.String()
}

// phaseAccumulator collects phase occurrences during execution.
type phaseAccumulator struct {
	order []string
	byKey map[string]*PhaseStat
}

func newPhaseAccumulator() *phaseAccumulator {
	return &phaseAccumulator{byKey: make(map[string]*PhaseStat)}
}

// add records one occurrence of a phase.
func (a *phaseAccumulator) add(name string, span, busy time.Duration, tasks int) {
	st, ok := a.byKey[name]
	if !ok {
		st = &PhaseStat{Name: name}
		a.byKey[name] = st
		a.order = append(a.order, name)
	}
	st.Span += span
	st.Busy += busy
	st.Tasks += tasks
	st.Occurrences++
}

// merge folds already-aggregated phase stats into the accumulator under
// a prefix — how composite members and campaign pipelines appear in a
// parent report. Caller synchronises.
func (a *phaseAccumulator) merge(prefix string, phases []PhaseStat) {
	for _, ph := range phases {
		name := prefix + ph.Name
		st, ok := a.byKey[name]
		if !ok {
			st = &PhaseStat{Name: name}
			a.byKey[name] = st
			a.order = append(a.order, name)
		}
		st.Span += ph.Span
		st.Busy += ph.Busy
		st.Tasks += ph.Tasks
		st.Occurrences += ph.Occurrences
	}
}

// stats returns the aggregates in first-occurrence order.
func (a *phaseAccumulator) stats() []PhaseStat {
	out := make([]PhaseStat, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, *a.byKey[name])
	}
	return out
}

// sortedNames is a test helper: phase names sorted alphabetically.
func (a *phaseAccumulator) sortedNames() []string {
	out := append([]string(nil), a.order...)
	sort.Strings(out)
	return out
}
