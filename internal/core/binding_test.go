package core

import (
	"strings"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// registerBindingMachines installs two private machines with different
// node widths: narrow 4-core nodes and wide 16-core nodes.
func registerBindingMachines(t *testing.T) {
	t.Helper()
	for _, m := range []*cluster.Machine{
		{
			Name: "test.bind.narrow", Nodes: 8, CoresPerNode: 4, MemPerNodeGB: 8,
			AgentBootTime: time.Second, TaskLaunchLatency: 10 * time.Millisecond,
			NetLatency: time.Millisecond, FSBandwidthMBps: 200, FSLatency: time.Millisecond,
			QueueWaitBase: 2 * time.Second,
		},
		{
			Name: "test.bind.wide", Nodes: 4, CoresPerNode: 16, MemPerNodeGB: 32,
			AgentBootTime: 2 * time.Second, TaskLaunchLatency: 10 * time.Millisecond,
			NetLatency: time.Millisecond, FSBandwidthMBps: 200, FSLatency: time.Millisecond,
			QueueWaitBase: 4 * time.Second,
		},
	} {
		if err := cluster.Register(m); err != nil {
			t.Fatal(err)
		}
	}
}

func newTestSet(t *testing.T, v *vclock.Virtual) *ResourceSet {
	t.Helper()
	registerBindingMachines(t)
	rs, err := NewResourceSet([]PilotSpec{
		{Resource: "test.bind.narrow", Cores: 16, Walltime: 100 * time.Hour, Tags: []string{"cpu"}},
		{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour, Tags: []string{"mpi"}},
	}, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// bindingPipelines builds a tagged campaign: 8x2 single-core tasks for
// the cpu pilot, 4x2 4-core MPI tasks for the mpi pilot.
func bindingPipelines() []*Pipeline {
	mk := func(name string, width, depth, cores int, tags []string) *Pipeline {
		kernel := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 5},
			Cores: cores, MPI: cores > 1, Tags: tags}
		stages := make([]*Stage, depth)
		for s := range stages {
			tasks := make([]Task, width)
			for i := range tasks {
				tasks[i] = Task{Kernel: kernel}
			}
			stages[s] = &Stage{Tasks: tasks}
		}
		return &Pipeline{Name: name, Stages: stages}
	}
	return []*Pipeline{
		mk("serial", 8, 2, 1, []string{"cpu"}),
		mk("mpi", 4, 2, 4, []string{"mpi"}),
	}
}

// TestMultiPilotCampaignSplitsByTag runs a tagged campaign over a
// two-machine set and asserts exact tag routing, the per-pilot
// utilization rows, and the binding-level report labels.
func TestMultiPilotCampaignSplitsByTag(t *testing.T) {
	v := vclock.NewVirtual()
	rs := newTestSet(t, v)
	rs.Placement = pilot.PlaceTagAffinity(nil)
	var camp *CampaignReport
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		var err error
		camp, err = NewAppManager(rs).Run(bindingPipelines()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Deallocate(); err != nil {
			t.Fatal(err)
		}
	})
	if got := camp.Campaign.Resource; got != "test.bind.narrow+test.bind.wide" {
		t.Errorf("campaign resource label = %q", got)
	}
	if got := camp.Campaign.Cores; got != 48 {
		t.Errorf("campaign cores = %d, want 48", got)
	}
	if camp.Campaign.Tasks != 16+8 {
		t.Errorf("campaign tasks = %d, want 24", camp.Campaign.Tasks)
	}
	if len(camp.Pilots) != 2 {
		t.Fatalf("pilot rows = %d, want 2", len(camp.Pilots))
	}
	cpu, mpi := camp.Pilots[0], camp.Pilots[1]
	if cpu.Resource != "test.bind.narrow" || cpu.Units != 16 {
		t.Errorf("cpu pilot row = %+v, want 16 units on test.bind.narrow", cpu)
	}
	if mpi.Resource != "test.bind.wide" || mpi.Units != 8 {
		t.Errorf("mpi pilot row = %+v, want 8 units on test.bind.wide", mpi)
	}
	// Core-busy is exact: 16 x 5s x 1 core and 8 x 5s x 4 cores.
	if cpu.CoreBusy != 80*time.Second || mpi.CoreBusy != 160*time.Second {
		t.Errorf("core-busy = %v/%v, want 80s/160s", cpu.CoreBusy, mpi.CoreBusy)
	}
	for _, u := range camp.Pilots {
		if u.Utilization <= 0 || u.Utilization > 1 {
			t.Errorf("pilot %d utilization %.3f out of range", u.Pilot, u.Utilization)
		}
	}
	// Queue wait is the slowest pilot's (the wide machine's 4s base).
	if camp.Campaign.QueueWait < 4*time.Second {
		t.Errorf("queue wait %v, want >= the slowest pilot's 4s", camp.Campaign.QueueWait)
	}
}

// TestMultiPilotDefaultPlacementSpreads pins the multi-pilot default:
// with no policy assigned, units round-robin over the eligible pilots,
// so an untagged campaign uses both machines.
func TestMultiPilotDefaultPlacementSpreads(t *testing.T) {
	v := vclock.NewVirtual()
	rs := newTestSet(t, v)
	var camp *CampaignReport
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		mpiKernel := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 2},
			Cores: 8, MPI: true}
		tasks := make([]Task, 6)
		for i := range tasks {
			tasks[i] = Task{Kernel: mpiKernel}
		}
		serialKernel := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 2}}
		serialTasks := make([]Task, 8)
		for i := range serialTasks {
			serialTasks[i] = Task{Kernel: serialKernel}
		}
		var err error
		camp, err = NewAppManager(rs).Run(
			&Pipeline{Name: "mpi8", Stages: []*Stage{{Tasks: tasks}}},
			&Pipeline{Name: "serial", Stages: []*Stage{{Tasks: serialTasks}}},
		)
		if err != nil {
			t.Fatal(err)
		}
		rs.Deallocate()
	})
	if camp.Pilots[0].Units+camp.Pilots[1].Units != 14 {
		t.Errorf("units across pilots = %d+%d, want 14", camp.Pilots[0].Units, camp.Pilots[1].Units)
	}
	if camp.Pilots[0].Units == 0 || camp.Pilots[1].Units == 0 {
		t.Errorf("round-robin left a pilot unused: %d/%d units",
			camp.Pilots[0].Units, camp.Pilots[1].Units)
	}
}

// TestMultiPilotLeastLoadedSpreads drives PlaceLeastLoaded through a
// live campaign: one bulk wave of twice one pilot's capacity over two
// equal pilots must split evenly — the dispatch loop flushes each run
// at the pilot's free-core count, so the policy sees the units it
// already dispatched (a frozen-counter dispatch would pour the whole
// wave onto pilot 1 and serialize it into two waves).
func TestMultiPilotLeastLoadedSpreads(t *testing.T) {
	v := vclock.NewVirtual()
	registerBindingMachines(t)
	rs, err := NewResourceSet([]PilotSpec{
		{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
		{Resource: "test.bind.wide", Cores: 32, Walltime: 100 * time.Hour},
	}, Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	rs.Placement = pilot.PlaceLeastLoaded()
	var camp *CampaignReport
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		kernel := &Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 30}}
		tasks := make([]Task, 64)
		for i := range tasks {
			tasks[i] = Task{Kernel: kernel}
		}
		var err error
		camp, err = NewAppManager(rs).Run(&Pipeline{Name: "bulk", Stages: []*Stage{{Tasks: tasks}}})
		if err != nil {
			t.Fatal(err)
		}
		rs.Deallocate()
	})
	if camp.Pilots[0].Units != 32 || camp.Pilots[1].Units != 32 {
		t.Errorf("least-loaded split = %d/%d units, want 32/32",
			camp.Pilots[0].Units, camp.Pilots[1].Units)
	}
	// One wave in parallel across both machines: the stage span is one
	// 30s wave plus launcher slack, not two serialized waves.
	if exec := camp.Pipelines[0].ExecTime(); exec >= 60*time.Second {
		t.Errorf("stage exec span %v: wave serialized onto one pilot", exec)
	}
}

// TestMultiPilotInfeasibleUnitFails pins the error path: a unit no
// pilot of the set can run fails its task with a placement error
// rather than wedging a queue.
func TestMultiPilotInfeasibleUnitFails(t *testing.T) {
	v := vclock.NewVirtual()
	rs := newTestSet(t, v)
	v.Run(func() {
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		_, err := NewAppManager(rs).Run(&Pipeline{Name: "big", Stages: []*Stage{{
			Tasks: []Task{{Kernel: &Kernel{Name: "misc.sleep",
				Params: map[string]float64{"seconds": 1}, Cores: 64, MPI: true}}},
		}}})
		if err == nil || !strings.Contains(err.Error(), "no pilot in the set") {
			t.Errorf("infeasible campaign error = %v, want placement failure", err)
		}
		rs.Deallocate()
	})
}

// TestNilKernelErrorsNotPanics pins the seed contract the validation
// memo must preserve: a kernel callback returning nil where a kernel is
// required (EE simulation slots) surfaces "core: nil kernel" as an
// error on both executor paths — never a nil dereference in bind.
func TestNilKernelErrorsNotPanics(t *testing.T) {
	for _, exec := range []ExecPath{ExecGraph, ExecRef} {
		v := vclock.NewVirtual()
		registerTestMachine(t)
		h, err := NewResourceHandle("test.core", 8, 100*time.Hour, Config{Clock: v, Exec: exec})
		if err != nil {
			t.Fatal(err)
		}
		v.Run(func() {
			_, err := h.Execute(&EnsembleExchange{
				Replicas: 2,
				Cycles:   1,
				SimulationKernel: func(c, r int) *Kernel {
					if r == 1 {
						return nil
					}
					return sleepKernel(1)
				},
				ExchangeKernel: func(c int) *Kernel { return sleepKernel(1) },
			})
			if err == nil || !strings.Contains(err.Error(), "nil kernel") {
				t.Errorf("exec=%v: err = %v, want nil-kernel error", exec, err)
			}
		})
	}
}

// TestResourceSetLifecycleErrors pins the allocation state machine.
func TestResourceSetLifecycleErrors(t *testing.T) {
	v := vclock.NewVirtual()
	rs := newTestSet(t, v)
	v.Run(func() {
		if _, err := rs.Run(&EnsembleOfPipelines{Pipelines: 1, Stages: 1,
			StageKernel: func(int, int) *Kernel { return sleepKernel(1) }}); err == nil {
			t.Error("Run before Allocate succeeded")
		}
		if err := rs.Deallocate(); err == nil {
			t.Error("Deallocate before Allocate succeeded")
		}
		if err := rs.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := rs.Allocate(); err == nil {
			t.Error("double Allocate succeeded")
		}
		if err := rs.Deallocate(); err != nil {
			t.Error(err)
		}
	})
}
