// End-to-end real-mode fault coverage, through the same campaign driver
// the CLI uses: killing a unit's process mid-run must surface as an
// ordinary unit failure that burns a retry, and the retried attempt must
// carry the campaign to success. This is the real-mode twin of the fault
// suite's injected-failure tests — the failure is a signal from outside
// instead of a FailOn hook.

package realtime_test

import (
	"strings"
	"syscall"
	"testing"
	"time"

	"entk/internal/campaign"
	"entk/internal/realtime"
)

// killerCampaign: one task, one retry. Attempt 0 hangs (so the test can
// kill it); attempt 1 exits immediately.
const killerCampaign = `{
  "resources": [{"resource": "local.localhost", "cores": 2, "walltime_min": 10}],
  "pipelines": [{"name": "p", "stages": [{"name": "s", "tasks": [
    {"name": "victim", "retries": 1, "kernel": {
      "name": "misc.sleep", "params": {"seconds": 0.05},
      "executable": "/bin/sh",
      "args": ["-c", "if [ \"$ENTK_ATTEMPT\" = 0 ]; then sleep 300; fi"]
    }}
  ]}]}]
}`

func TestKillMidRunBurnsRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("real mode runs on the wall clock")
	}
	c, err := campaign.Parse(strings.NewReader(killerCampaign))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := realtime.New(realtime.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	// The killer: SIGKILL the first process group that appears (attempt
	// 0's hanging shell), exactly once. Attempt 1 spawns only after the
	// first window settles, so it is never the one shot.
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if gs := ex.RunningGroups(); len(gs) > 0 {
				syscall.Kill(-gs[0], syscall.SIGKILL)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	res, err := campaign.Run(c, campaign.Options{Mode: campaign.ModeReal, Runner: ex})
	if err != nil {
		t.Fatalf("campaign should survive the kill via retry: %v", err)
	}
	rep := res.Campaign.Campaign
	if rep.Tasks != 1 || rep.Retries != 1 {
		t.Errorf("tasks=%d retries=%d, want tasks=1 retries=1", rep.Tasks, rep.Retries)
	}
	// The trace tells the full story: a failure event on the unit, then
	// a successful completion.
	if n := res.Prof.Count("unit.", "state_FAILED"); n != 1 {
		t.Errorf("state_FAILED events: %d, want 1", n)
	}
	if n := res.Prof.Count("unit.", "state_DONE"); n != 1 {
		t.Errorf("state_DONE events: %d, want 1", n)
	}
}
