// Package realtime is the local process backend for real-mode execution:
// the pilot.UnitRunner that turns a unit's execution window into an
// actual OS process on the local machine.
//
// The discrete-event runtime above it is unchanged — batch admission,
// agent scheduling, staging, retries, and profiling all run exactly as in
// simulation, just on the wall clock (vclock.NewWall). This package only
// owns the window between exec_start and exec_stop:
//
//   - Kernels carrying a real command (UnitDescription.Executable/Args,
//     campaign schema field "executable") are exec'd with their stdout
//     and stderr captured to per-unit files under the executor's
//     directory. A non-zero exit becomes the unit's failure and burns a
//     retry through the ordinary machinery.
//   - Kernels without a command sleep their cost-model duration in wall
//     time — "modelled kernels", which is what makes a sim-only campaign
//     runnable in real mode at all and what the sim-vs-real parity test
//     exercises.
//   - Core-count enforcement: each pilot gets a bounded slot pool sized
//     to PilotSpec.Cores, and a window holds Cores slots for its
//     duration. The agent's scheduler already guarantees the bound, so
//     the pool is belt-and-braces; a request that cannot ever fit is an
//     error, not a deadlock.
//   - Teardown: every process is started in its own process group, and
//     ReleasePilot / Close kill the groups (SIGKILL to -pgid), so agent
//     teardown — drain, fault, walltime expiry, daemon shutdown — reaps
//     grandchildren too. No orphans.
package realtime

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"entk/internal/pilot"
)

// Config tunes an Executor.
type Config struct {
	// Dir receives per-unit capture files (<unit>.a<attempt>.out/.err).
	// Empty means a fresh temporary directory.
	Dir string
	// Env is appended to the inherited environment of every process.
	Env []string
}

// Executor is the local process UnitRunner. Safe for concurrent use; one
// executor typically serves every pilot of a session.
type Executor struct {
	cfg Config
	dir string

	mu     sync.Mutex
	pilots map[int]*pilotState
	procs  map[*proc]struct{}
	closed bool
}

// pilotState is one pilot's slot pool plus its release latch.
type pilotState struct {
	cores int
	sem   chan struct{} // one token per core
	acq   sync.Mutex    // serializes multi-token acquisition (no interleaving)
	once  sync.Once
	gone  chan struct{} // closed by ReleasePilot: modelled sleeps wake early
}

// proc is one live process group.
type proc struct {
	pilotID int
	unit    string
	pgid    int
}

// New returns an Executor capturing unit output under cfg.Dir (a fresh
// temp directory when empty).
func New(cfg Config) (*Executor, error) {
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "entk-real-")
		if err != nil {
			return nil, fmt.Errorf("realtime: %w", err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("realtime: %w", err)
	}
	return &Executor{
		cfg:    cfg,
		dir:    dir,
		pilots: make(map[int]*pilotState),
		procs:  make(map[*proc]struct{}),
	}, nil
}

// Dir reports the capture directory.
func (x *Executor) Dir() string { return x.dir }

var _ pilot.UnitRunner = (*Executor)(nil)

// RunUnit implements pilot.UnitRunner: hold the unit's core slots, run
// the window (process or modelled sleep), release.
func (x *Executor) RunUnit(req pilot.ExecRequest) error {
	ps, err := x.pilotFor(req.PilotID, req.PilotCores)
	if err != nil {
		return err
	}
	cores := req.Cores
	if cores <= 0 {
		cores = 1
	}
	if cores > ps.cores {
		return fmt.Errorf("realtime: unit %q wants %d cores on a %d-core pilot", req.Unit, cores, ps.cores)
	}
	ps.acq.Lock()
	for i := 0; i < cores; i++ {
		ps.sem <- struct{}{}
	}
	ps.acq.Unlock()
	defer func() {
		for i := 0; i < cores; i++ {
			<-ps.sem
		}
	}()

	if req.Executable == "" {
		return x.sleepModel(ps, req)
	}
	return x.execProcess(ps, req)
}

// sleepModel is the modelled-kernel window: a wall sleep of the cost
// model's duration, cut short (with an error) if the pilot is released.
func (x *Executor) sleepModel(ps *pilotState, req pilot.ExecRequest) error {
	if req.Model <= 0 {
		return nil
	}
	t := time.NewTimer(req.Model)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ps.gone:
		return fmt.Errorf("realtime: unit %q interrupted: pilot %d released", req.Unit, req.PilotID)
	}
}

// execProcess runs the unit's command in its own process group with
// captured output, blocking until it exits.
func (x *Executor) execProcess(ps *pilotState, req pilot.ExecRequest) error {
	base := fmt.Sprintf("%s.a%02d", sanitize(req.Unit), req.Attempt)
	outPath := filepath.Join(x.dir, base+".out")
	errPath := filepath.Join(x.dir, base+".err")
	outF, err := os.Create(outPath)
	if err != nil {
		return fmt.Errorf("realtime: unit %q: %w", req.Unit, err)
	}
	defer outF.Close()
	errF, err := os.Create(errPath)
	if err != nil {
		return fmt.Errorf("realtime: unit %q: %w", req.Unit, err)
	}
	defer errF.Close()

	cmd := exec.Command(req.Executable, req.Args...)
	cmd.Stdout = outF
	cmd.Stderr = errF
	cmd.Env = append(os.Environ(),
		"ENTK_UNIT="+req.Unit,
		"ENTK_KERNEL="+req.Kernel,
		"ENTK_PILOT="+strconv.Itoa(req.PilotID),
		"ENTK_ATTEMPT="+strconv.Itoa(req.Attempt),
		"ENTK_CORES="+strconv.Itoa(req.Cores),
	)
	cmd.Env = append(cmd.Env, x.cfg.Env...)
	// Own process group: teardown kills the whole tree, not just the
	// immediate child, so shell kernels cannot leak grandchildren.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}

	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return fmt.Errorf("realtime: unit %q: executor closed", req.Unit)
	}
	if err := cmd.Start(); err != nil {
		x.mu.Unlock()
		return fmt.Errorf("realtime: unit %q: %w", req.Unit, err)
	}
	p := &proc{pilotID: req.PilotID, unit: req.Unit, pgid: cmd.Process.Pid}
	x.procs[p] = struct{}{}
	released := isClosed(ps.gone)
	x.mu.Unlock()
	if released {
		// The pilot died between dispatch and Start: reap immediately.
		killGroup(p.pgid)
	}

	werr := cmd.Wait()
	x.mu.Lock()
	delete(x.procs, p)
	x.mu.Unlock()
	// The window is over: reap whatever is left of the group. A shell
	// kernel's backgrounded children would otherwise outlive the unit —
	// unkillable later, since the proc table only tracks live windows.
	killGroup(p.pgid)
	if werr != nil {
		return fmt.Errorf("realtime: unit %q attempt %d: %s %s: %w (stderr: %s)",
			req.Unit, req.Attempt, req.Executable, strings.Join(req.Args, " "), werr, errPath)
	}
	return nil
}

// ReleasePilot implements pilot.UnitRunner: kill every process group the
// pilot still has running and wake its modelled sleeps. Idempotent.
func (x *Executor) ReleasePilot(pilotID int) {
	x.mu.Lock()
	ps := x.pilots[pilotID]
	var groups []int
	for p := range x.procs {
		if p.pilotID == pilotID {
			groups = append(groups, p.pgid)
		}
	}
	x.mu.Unlock()
	if ps != nil {
		ps.once.Do(func() { close(ps.gone) })
	}
	for _, pg := range groups {
		killGroup(pg)
	}
}

// Close reaps every process group of every pilot. The executor refuses
// new work afterwards. Idempotent.
func (x *Executor) Close() {
	x.mu.Lock()
	x.closed = true
	var pss []*pilotState
	for _, ps := range x.pilots {
		pss = append(pss, ps)
	}
	var groups []int
	for p := range x.procs {
		groups = append(groups, p.pgid)
	}
	x.mu.Unlock()
	for _, ps := range pss {
		ps.once.Do(func() { close(ps.gone) })
	}
	for _, pg := range groups {
		killGroup(pg)
	}
}

// RunningGroups snapshots the live process-group ids (tests: orphan
// checks via kill(-pgid, 0)).
func (x *Executor) RunningGroups() []int {
	x.mu.Lock()
	defer x.mu.Unlock()
	groups := make([]int, 0, len(x.procs))
	for p := range x.procs {
		groups = append(groups, p.pgid)
	}
	return groups
}

func (x *Executor) pilotFor(id, cores int) (*pilotState, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("realtime: pilot %d has %d cores", id, cores)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, fmt.Errorf("realtime: executor closed")
	}
	if ps, ok := x.pilots[id]; ok {
		return ps, nil
	}
	ps := &pilotState{
		cores: cores,
		sem:   make(chan struct{}, cores),
		gone:  make(chan struct{}),
	}
	x.pilots[id] = ps
	return ps, nil
}

// killGroup SIGKILLs an entire process group. ESRCH (already gone) is
// the success case of a reap.
func killGroup(pgid int) {
	_ = syscall.Kill(-pgid, syscall.SIGKILL)
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// sanitize maps a unit name onto a safe file-name fragment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, name)
}
