package realtime

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"entk/internal/pilot"
)

func newTestExecutor(t *testing.T) *Executor {
	t.Helper()
	x, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(x.Close)
	return x
}

func shReq(unit string, attempt int, script string) pilot.ExecRequest {
	return pilot.ExecRequest{
		PilotID: 1, PilotCores: 4, Unit: unit, Attempt: attempt,
		Kernel: "test", Executable: "/bin/sh", Args: []string{"-c", script}, Cores: 1,
	}
}

func TestCaptureAndEnv(t *testing.T) {
	x := newTestExecutor(t)
	req := shReq("cap", 2, `echo "unit=$ENTK_UNIT attempt=$ENTK_ATTEMPT cores=$ENTK_CORES pilot=$ENTK_PILOT"; echo oops >&2`)
	if err := x.RunUnit(req); err != nil {
		t.Fatalf("RunUnit: %v", err)
	}
	out, err := os.ReadFile(filepath.Join(x.Dir(), "cap.a02.out"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(string(out)), "unit=cap attempt=2 cores=1 pilot=1"; got != want {
		t.Errorf("stdout %q, want %q", got, want)
	}
	errb, err := os.ReadFile(filepath.Join(x.Dir(), "cap.a02.err"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(errb)); got != "oops" {
		t.Errorf("stderr %q, want %q", got, "oops")
	}
}

func TestExitStatusBecomesError(t *testing.T) {
	x := newTestExecutor(t)
	err := x.RunUnit(shReq("bad", 0, "echo diagnostics >&2; exit 3"))
	if err == nil {
		t.Fatal("want error for exit 3")
	}
	// The error must carry enough to debug the failure: unit, attempt,
	// and where stderr went.
	for _, want := range []string{"bad", "attempt 0", ".err"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestOversizedRequestIsError(t *testing.T) {
	x := newTestExecutor(t)
	req := shReq("big", 0, "true")
	req.Cores = 8 // pilot has 4
	if err := x.RunUnit(req); err == nil {
		t.Fatal("want error for a request larger than the pilot")
	}
}

func TestModelledKernelSleepsAndWakesOnRelease(t *testing.T) {
	x := newTestExecutor(t)
	req := pilot.ExecRequest{PilotID: 1, PilotCores: 2, Unit: "model", Cores: 1,
		Model: 30 * time.Second}
	done := make(chan error, 1)
	go func() { done <- x.RunUnit(req) }()
	time.Sleep(50 * time.Millisecond)
	x.ReleasePilot(1)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("released modelled sleep should report interruption")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("modelled sleep did not wake on ReleasePilot")
	}
}

// waitGone polls until the process group is fully dead (ESRCH) — the
// no-orphans assertion.
func waitGone(t *testing.T, pgid int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := syscall.Kill(-pgid, 0); err == syscall.ESRCH {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("process group %d still alive after release", pgid)
}

func TestReleasePilotKillsRunningGroup(t *testing.T) {
	x := newTestExecutor(t)
	done := make(chan error, 1)
	go func() { done <- x.RunUnit(shReq("long", 0, "sleep 30")) }()

	var pgid int
	deadline := time.Now().Add(5 * time.Second)
	for pgid == 0 && time.Now().Before(deadline) {
		if gs := x.RunningGroups(); len(gs) > 0 {
			pgid = gs[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if pgid == 0 {
		t.Fatal("unit process never appeared")
	}

	x.ReleasePilot(1)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("killed unit should report an exec error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunUnit did not return after ReleasePilot")
	}
	waitGone(t, pgid)
	if gs := x.RunningGroups(); len(gs) != 0 {
		t.Errorf("RunningGroups after release: %v", gs)
	}
}

func TestWindowEndReapsBackgroundedChildren(t *testing.T) {
	x := newTestExecutor(t)
	// The shell backgrounds a long sleep and exits successfully: the
	// grandchild must not outlive the unit's window.
	if err := x.RunUnit(shReq("bg", 0, "sleep 60 & echo $!")); err != nil {
		t.Fatalf("RunUnit: %v", err)
	}
	out, err := os.ReadFile(filepath.Join(x.Dir(), "bg.a00.out"))
	if err != nil {
		t.Fatal(err)
	}
	pidStr := strings.TrimSpace(string(out))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// The grandchild re-parents to init on its shell's exit; poll
		// until the kill has landed and the zombie (if any) is reaped.
		if err := syscall.Kill(atoiOrFail(t, pidStr), 0); err == syscall.ESRCH {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("backgrounded child %s survived the unit window", pidStr)
}

func TestCloseRefusesNewWork(t *testing.T) {
	x, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	x.Close()
	x.Close() // idempotent
	if err := x.RunUnit(shReq("late", 0, "true")); err == nil {
		t.Fatal("closed executor accepted work")
	}
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("not a pid: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	if n == 0 {
		t.Fatalf("not a pid: %q", s)
	}
	return n
}
