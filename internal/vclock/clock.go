// Package vclock provides the process clock the toolkit runs under: a
// virtual-time engine for discrete-event simulation with real Go
// concurrency, and a monotonic wall-clock twin for real-mode execution.
//
// The virtual engine lets ordinary goroutines cooperate on a simulated
// clock: a goroutine that calls Sleep suspends in virtual time, and the
// clock only advances when every registered process is blocked. Durations
// therefore model time (an MD task "runs" for 200 virtual seconds) while
// the wall clock cost is microseconds. All blocking must go through the
// primitives in this package (Sleep, Event, Queue, WaitGroup, Semaphore,
// Barrier) so the engine can account for runnable processes; blocking on a
// bare channel from a registered process stalls the simulation.
//
// The wall clock (NewWall) implements the same Clock contract against
// real time: Sleep really sleeps, the primitives really block, and
// registration is a no-op because the operating system, not the engine,
// decides when time passes. Code written against Clock runs unchanged on
// either — that seam is what lets one campaign execute simulated or for
// real (see internal/realtime).
package vclock

import "time"

// Clock is the process-clock contract the runtime is written against: a
// time source plus the process-accounting hooks (Go/Run/Attach/Detach)
// the discrete-event engine needs to know when it may advance time. The
// virtual clock (NewVirtual) and the wall clock (NewWall) both satisfy
// it; on the wall clock the accounting hooks are no-ops because real time
// advances on its own.
//
// The interface carries an unexported method on purpose: a Clock must be
// constructed by this package, because the blocking primitives park and
// wake through the clock's internal engine.
type Clock interface {
	// Now returns the elapsed time since the clock's origin.
	Now() time.Duration
	// Sleep suspends the calling process for d of this clock's time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)
	// Go spawns fn as a new registered process.
	Go(fn func())
	// Run executes fn inline as a registered process.
	Run(fn func())
	// After schedules fn to run at instant Now()+d as its own process —
	// the timer primitive behind fault arming and deadlines.
	After(d time.Duration, fn func())
	// Attach counts a process back into the runnable accounting.
	Attach()
	// Detach removes the calling process from the runnable accounting.
	Detach()
	// EngineKind reports which engine backs this clock.
	EngineKind() Engine

	// core exposes the internal engine to this package's primitives.
	core() engine
}

var _ Clock = (*Virtual)(nil)
var _ Clock = (*Wall)(nil)
