// Package vclock provides a virtual-time engine for discrete-event
// simulation with real Go concurrency.
//
// The engine lets ordinary goroutines cooperate on a simulated clock: a
// goroutine that calls Sleep suspends in virtual time, and the clock only
// advances when every registered process is blocked. Durations therefore
// model time (an MD task "runs" for 200 virtual seconds) while the wall
// clock cost is microseconds. All blocking must go through the primitives
// in this package (Sleep, Event, Queue, WaitGroup, Semaphore, Barrier) so
// the engine can account for runnable processes; blocking on a bare channel
// from a registered process stalls the simulation.
package vclock

import "time"

// Clock is the minimal time source used throughout the simulator. Now
// reports elapsed time since the clock's origin; Sleep suspends the calling
// process for d. Both the virtual and the real implementation satisfy it,
// so components can be exercised against wall-clock time in tests.
type Clock interface {
	// Now returns the elapsed time since the clock's origin.
	Now() time.Duration
	// Sleep suspends the caller for d of this clock's time. Non-positive
	// durations return immediately.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock. Its origin is the moment it is
// created with NewReal.
type Real struct {
	start time.Time
}

// NewReal returns a wall-clock Clock whose origin is now.
func NewReal() *Real { return &Real{start: time.Now()} }

// Now reports wall-clock time elapsed since NewReal.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep blocks the calling goroutine for d of wall-clock time.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

var _ Clock = (*Real)(nil)
var _ Clock = (*Virtual)(nil)
