package vclock

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The blocking primitives. Each primitive owns its waiter bookkeeping
// behind its own mutex and talks to the engine only through park/wake, so
// under the direct-handoff engine two unrelated primitives never contend
// on a shared lock, and settled-state reads (Event.Fired, a fired Wait, a
// zero WaitGroup Wait) are single atomic loads with no lock at all. The
// protocol every primitive follows:
//
//	block:  publish a waiter in the primitive's list (under its lock),
//	        release the lock, then park. Any handoff data the parker
//	        reads after park (queue item, ok flag) is written by the
//	        waker before wake.
//	wake:   pop the waiter (under the lock), release the lock, write the
//	        handoff data, then wake. Each waiter is woken exactly once.

// Event is a one-shot broadcast flag on a virtual clock, analogous to
// closing a channel. Wait blocks the calling process until Fire is called;
// once fired, Wait returns immediately forever after — a lockless atomic
// check. Hosts may also embed an Event value and Init it in place.
type Event struct {
	v       Clock
	name    string
	fired   atomic.Bool
	mu      sync.Mutex
	waiters []*waiter
}

// NewEvent returns an unfired Event. The name appears in deadlock reports.
func NewEvent(v Clock, name string) *Event {
	e := &Event{}
	e.Init(v, name)
	return e
}

// Init prepares a zero Event in place (for hosts embedding the value).
// It must be called before any other method, and only once.
func (e *Event) Init(v Clock, name string) {
	e.v = v
	e.name = name
}

// Fired reports whether the event has been fired. Settled state is read
// with a single atomic load: no lock.
func (e *Event) Fired() bool {
	return e.fired.Load()
}

// Fire marks the event fired and wakes all waiters. Firing twice is a
// harmless no-op.
func (e *Event) Fire() {
	e.mu.Lock()
	if e.fired.Load() {
		e.mu.Unlock()
		return
	}
	e.fired.Store(true)
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, w := range ws {
		e.v.core().wake(w)
	}
}

// Wait blocks the calling process until the event fires.
func (e *Event) Wait() {
	if e.fired.Load() {
		return // settled: no lock
	}
	e.mu.Lock()
	if e.fired.Load() {
		e.mu.Unlock()
		return
	}
	w := getWaiter()
	e.waiters = append(e.waiters, w)
	e.mu.Unlock()
	e.v.core().park(w, e)
	putWaiter(w)
}

// blockDesc implements descSource for the deadlock report.
func (e *Event) blockDesc(*waiter) string { return "event " + e.name }

// WaitGroup is the virtual-time analogue of sync.WaitGroup. A Wait on a
// zero counter is a lockless atomic check.
type WaitGroup struct {
	v     Clock
	name  string
	count atomic.Int64
	mu    sync.Mutex
	done  *Event
}

// NewWaitGroup returns a WaitGroup with a zero counter.
func NewWaitGroup(v Clock, name string) *WaitGroup {
	return &WaitGroup{v: v, name: name}
}

// Add adds delta (which may be negative) to the counter. If the counter
// reaches zero, waiters are released; if it goes negative, Add panics.
func (wg *WaitGroup) Add(delta int) {
	n := wg.count.Add(int64(delta))
	if n < 0 {
		panic("vclock: negative WaitGroup counter")
	}
	if n == 0 {
		wg.mu.Lock()
		release := wg.done
		wg.done = nil
		wg.mu.Unlock()
		if release != nil {
			release.Fire()
		}
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks the calling process until the counter is zero.
func (wg *WaitGroup) Wait() {
	if wg.count.Load() == 0 {
		return // settled: no lock
	}
	wg.mu.Lock()
	if wg.count.Load() == 0 {
		wg.mu.Unlock()
		return
	}
	if wg.done == nil {
		wg.done = NewEvent(wg.v, "waitgroup "+wg.name)
	}
	ev := wg.done
	wg.mu.Unlock()
	ev.Wait()
}

// Queue is an unbounded FIFO channel between virtual-time processes.
// Get blocks until an item is available; Put never blocks. Close releases
// all pending and future Gets with ok=false once the buffer drains.
type Queue struct {
	v       Clock
	name    string
	mu      sync.Mutex
	buf     []interface{}
	waiters []*waiter // FIFO consumers, each handed one item
	closed  bool
}

// NewQueue returns an empty open queue.
func NewQueue(v Clock, name string) *Queue {
	return &Queue{v: v, name: name}
}

// Put appends an item, handing it directly to the oldest waiting consumer
// if one exists. Put on a closed queue panics.
func (q *Queue) Put(item interface{}) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("vclock: Put on closed queue " + q.name)
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.mu.Unlock()
		w.item, w.ok = item, true
		q.v.core().wake(w)
		return
	}
	q.buf = append(q.buf, item)
	q.mu.Unlock()
}

// Get removes and returns the oldest item. It blocks the calling process
// until an item is available or the queue is closed and drained, in which
// case it returns (nil, false).
func (q *Queue) Get() (interface{}, bool) {
	q.mu.Lock()
	if len(q.buf) > 0 {
		item := q.buf[0]
		q.buf = q.buf[1:]
		q.mu.Unlock()
		return item, true
	}
	if q.closed {
		q.mu.Unlock()
		return nil, false
	}
	w := getWaiter()
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()
	q.v.core().park(w, q)
	item, ok := w.item, w.ok
	putWaiter(w)
	return item, ok
}

// blockDesc implements descSource for the deadlock report.
func (q *Queue) blockDesc(*waiter) string { return "queue " + q.name }

// TryGet removes and returns the oldest item without blocking. ok is false
// if the queue is empty.
func (q *Queue) TryGet() (interface{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil, false
	}
	item := q.buf[0]
	q.buf = q.buf[1:]
	return item, true
}

// Len reports the number of buffered items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Close marks the queue closed and releases all blocked consumers with
// ok=false. Closing twice is a no-op.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range ws {
		w.item, w.ok = nil, false
		q.v.core().wake(w)
	}
}

// Semaphore is a counting semaphore on a virtual clock with FIFO waiters.
type Semaphore struct {
	v       Clock
	name    string
	mu      sync.Mutex
	avail   int
	waiters []*waiter // FIFO; each waiter's n is its permit request
}

// NewSemaphore returns a semaphore with n initially available permits.
func NewSemaphore(v Clock, name string, n int) *Semaphore {
	if n < 0 {
		panic("vclock: negative semaphore capacity")
	}
	return &Semaphore{v: v, name: name, avail: n}
}

// Acquire takes n permits, blocking the calling process until available.
// Waiters are served strictly FIFO to avoid starvation of large requests.
func (s *Semaphore) Acquire(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return
	}
	w := getWaiter()
	w.n = n
	w.aux = s.avail // availability snapshot for the deadlock report
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	s.v.core().park(w, s)
	putWaiter(w)
}

// blockDesc implements descSource for the deadlock report.
func (s *Semaphore) blockDesc(w *waiter) string {
	return fmt.Sprintf("semaphore %s (acquire %d, avail %d)", s.name, w.n, w.aux)
}

// TryAcquire takes n permits only if immediately available, reporting
// whether it did. It never blocks and never jumps the FIFO queue.
func (s *Semaphore) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and serves FIFO waiters whose requests now fit.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.avail += n
	var served []*waiter
	for len(s.waiters) > 0 && s.waiters[0].n <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		served = append(served, w)
	}
	s.mu.Unlock()
	for _, w := range served {
		s.v.core().wake(w)
	}
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail
}

// Barrier is a reusable synchronisation barrier for a fixed party count:
// the n-th arrival releases everyone and resets the barrier for the next
// round.
type Barrier struct {
	v       Clock
	name    string
	parties int
	mu      sync.Mutex
	arrived int
	round   int
	gen     *Event
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(v Clock, name string, parties int) *Barrier {
	if parties < 1 {
		panic("vclock: barrier needs at least one party")
	}
	b := &Barrier{v: v, name: name, parties: parties}
	b.gen = NewEvent(v, fmt.Sprintf("barrier %s round 0", name))
	return b
}

// Await blocks the calling process until all parties have arrived, then
// returns the round number that just completed.
func (b *Barrier) Await() int {
	b.mu.Lock()
	round := b.round
	b.arrived++
	if b.arrived == b.parties {
		release := b.gen
		b.arrived = 0
		b.round++
		b.gen = NewEvent(b.v, fmt.Sprintf("barrier %s round %d", b.name, b.round))
		b.mu.Unlock()
		release.Fire()
		return round
	}
	ev := b.gen
	b.mu.Unlock()
	ev.Wait()
	return round
}
