package vclock

import (
	"fmt"
	"sync"
)

// Event is a one-shot broadcast flag on a virtual clock, analogous to
// closing a channel. Wait blocks the calling process until Fire is called;
// once fired, Wait returns immediately forever after. The wake channel is
// created lazily by the first blocked waiter, so events that fire before
// anyone waits (or are never waited on) cost a single struct — hosts may
// also embed an Event value and Init it in place.
type Event struct {
	v       *Virtual
	name    string
	fired   bool
	waiting int
	ch      chan struct{}
}

// NewEvent returns an unfired Event. The name appears in deadlock reports.
func NewEvent(v *Virtual, name string) *Event {
	e := &Event{}
	e.Init(v, name)
	return e
}

// Init prepares a zero Event in place (for hosts embedding the value).
// It must be called before any other method, and only once.
func (e *Event) Init(v *Virtual, name string) {
	e.v = v
	e.name = name
}

// Fired reports whether the event has been fired.
func (e *Event) Fired() bool {
	e.v.mu.Lock()
	defer e.v.mu.Unlock()
	return e.fired
}

// Fire marks the event fired and wakes all waiters. Firing twice is a
// harmless no-op.
func (e *Event) Fire() {
	e.v.mu.Lock()
	if !e.fired {
		e.fired = true
		e.v.wake(e.waiting)
		e.waiting = 0
		if e.ch != nil {
			close(e.ch)
		}
	}
	e.v.mu.Unlock()
}

// Wait blocks the calling process until the event fires.
func (e *Event) Wait() {
	e.v.mu.Lock()
	if e.fired {
		e.v.mu.Unlock()
		return
	}
	if e.ch == nil {
		e.ch = make(chan struct{})
	}
	e.waiting++
	tok := e.v.blockOn(func() string { return "event " + e.name })
	e.v.mu.Unlock()
	<-e.ch
	e.v.mu.Lock()
	e.v.unblocked(tok)
	e.v.mu.Unlock()
}

// WaitGroup is the virtual-time analogue of sync.WaitGroup.
type WaitGroup struct {
	v     *Virtual
	name  string
	count int
	done  *Event
}

// NewWaitGroup returns a WaitGroup with a zero counter.
func NewWaitGroup(v *Virtual, name string) *WaitGroup {
	return &WaitGroup{v: v, name: name}
}

// Add adds delta (which may be negative) to the counter. If the counter
// reaches zero, waiters are released; if it goes negative, Add panics.
func (wg *WaitGroup) Add(delta int) {
	wg.v.mu.Lock()
	wg.count += delta
	if wg.count < 0 {
		wg.v.mu.Unlock()
		panic("vclock: negative WaitGroup counter")
	}
	var release *Event
	if wg.count == 0 && wg.done != nil {
		release = wg.done
		wg.done = nil
	}
	wg.v.mu.Unlock()
	if release != nil {
		release.Fire()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks the calling process until the counter is zero.
func (wg *WaitGroup) Wait() {
	wg.v.mu.Lock()
	if wg.count == 0 {
		wg.v.mu.Unlock()
		return
	}
	if wg.done == nil {
		wg.done = &Event{v: wg.v, name: "waitgroup " + wg.name, ch: make(chan struct{})}
	}
	ev := wg.done
	wg.v.mu.Unlock()
	ev.Wait()
}

// Queue is an unbounded FIFO channel between virtual-time processes.
// Get blocks until an item is available; Put never blocks. Close releases
// all pending and future Gets with ok=false once the buffer drains.
type Queue struct {
	v       *Virtual
	name    string
	buf     []interface{}
	waiters []*qwaiter // FIFO consumers, each handed one item
	closed  bool
}

type qwaiter struct {
	ch chan qresult
}

type qresult struct {
	item interface{}
	ok   bool
}

// NewQueue returns an empty open queue.
func NewQueue(v *Virtual, name string) *Queue {
	return &Queue{v: v, name: name}
}

// Put appends an item, handing it directly to the oldest waiting consumer
// if one exists. Put on a closed queue panics.
func (q *Queue) Put(item interface{}) {
	q.v.mu.Lock()
	if q.closed {
		q.v.mu.Unlock()
		panic("vclock: Put on closed queue " + q.name)
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.v.wake(1)
		q.v.mu.Unlock()
		w.ch <- qresult{item, true}
		return
	}
	q.buf = append(q.buf, item)
	q.v.mu.Unlock()
}

// Get removes and returns the oldest item. It blocks the calling process
// until an item is available or the queue is closed and drained, in which
// case it returns (nil, false).
func (q *Queue) Get() (interface{}, bool) {
	q.v.mu.Lock()
	if len(q.buf) > 0 {
		item := q.buf[0]
		q.buf = q.buf[1:]
		q.v.mu.Unlock()
		return item, true
	}
	if q.closed {
		q.v.mu.Unlock()
		return nil, false
	}
	w := &qwaiter{ch: make(chan qresult, 1)}
	q.waiters = append(q.waiters, w)
	tok := q.v.blockOn(func() string { return "queue " + q.name })
	q.v.mu.Unlock()
	r := <-w.ch
	q.v.mu.Lock()
	q.v.unblocked(tok)
	q.v.mu.Unlock()
	return r.item, r.ok
}

// TryGet removes and returns the oldest item without blocking. ok is false
// if the queue is empty.
func (q *Queue) TryGet() (interface{}, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	if len(q.buf) == 0 {
		return nil, false
	}
	item := q.buf[0]
	q.buf = q.buf[1:]
	return item, true
}

// Len reports the number of buffered items.
func (q *Queue) Len() int {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	return len(q.buf)
}

// Close marks the queue closed and releases all blocked consumers with
// ok=false. Closing twice is a no-op.
func (q *Queue) Close() {
	q.v.mu.Lock()
	if q.closed {
		q.v.mu.Unlock()
		return
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.v.wake(len(ws))
	q.v.mu.Unlock()
	for _, w := range ws {
		w.ch <- qresult{nil, false}
	}
}

// Semaphore is a counting semaphore on a virtual clock with FIFO waiters.
type Semaphore struct {
	v       *Virtual
	name    string
	avail   int
	waiters []*swaiter
}

type swaiter struct {
	n  int
	ch chan struct{} // pooled capacity-1 channel, signalled by send
}

// swaiterPool recycles semaphore waiters; launcher semaphores park once
// per task, which made the waiter the engine's second-largest allocation.
var swaiterPool = sync.Pool{
	New: func() interface{} { return &swaiter{ch: make(chan struct{}, 1)} },
}

// NewSemaphore returns a semaphore with n initially available permits.
func NewSemaphore(v *Virtual, name string, n int) *Semaphore {
	if n < 0 {
		panic("vclock: negative semaphore capacity")
	}
	return &Semaphore{v: v, name: name, avail: n}
}

// Acquire takes n permits, blocking the calling process until available.
// Waiters are served strictly FIFO to avoid starvation of large requests.
func (s *Semaphore) Acquire(n int) {
	if n <= 0 {
		return
	}
	s.v.mu.Lock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		s.v.mu.Unlock()
		return
	}
	w := swaiterPool.Get().(*swaiter)
	w.n = n
	s.waiters = append(s.waiters, w)
	avail := s.avail
	tok := s.v.blockOn(func() string {
		return fmt.Sprintf("semaphore %s (acquire %d, avail %d)", s.name, n, avail)
	})
	s.v.mu.Unlock()
	<-w.ch
	s.v.mu.Lock()
	s.v.unblocked(tok)
	s.v.mu.Unlock()
	swaiterPool.Put(w)
}

// TryAcquire takes n permits only if immediately available, reporting
// whether it did. It never blocks and never jumps the FIFO queue.
func (s *Semaphore) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	s.v.mu.Lock()
	defer s.v.mu.Unlock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and serves FIFO waiters whose requests now fit.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		return
	}
	s.v.mu.Lock()
	s.avail += n
	var served []*swaiter
	for len(s.waiters) > 0 && s.waiters[0].n <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		served = append(served, w)
	}
	s.v.wake(len(served))
	s.v.mu.Unlock()
	for _, w := range served {
		w.ch <- struct{}{} // never blocks: cap 1, exactly one acquirer
	}
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int {
	s.v.mu.Lock()
	defer s.v.mu.Unlock()
	return s.avail
}

// Barrier is a reusable synchronisation barrier for a fixed party count:
// the n-th arrival releases everyone and resets the barrier for the next
// round.
type Barrier struct {
	v       *Virtual
	name    string
	parties int
	arrived int
	round   int
	gen     *Event
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(v *Virtual, name string, parties int) *Barrier {
	if parties < 1 {
		panic("vclock: barrier needs at least one party")
	}
	b := &Barrier{v: v, name: name, parties: parties}
	b.gen = NewEvent(v, fmt.Sprintf("barrier %s round 0", name))
	return b
}

// Await blocks the calling process until all parties have arrived, then
// returns the round number that just completed.
func (b *Barrier) Await() int {
	b.v.mu.Lock()
	round := b.round
	b.arrived++
	if b.arrived == b.parties {
		release := b.gen
		b.arrived = 0
		b.round++
		b.gen = &Event{v: b.v, name: fmt.Sprintf("barrier %s round %d", b.name, b.round), ch: make(chan struct{})}
		b.v.mu.Unlock()
		release.Fire()
		return round
	}
	ev := b.gen
	b.v.mu.Unlock()
	ev.Wait()
	return round
}
