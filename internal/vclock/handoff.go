package vclock

import (
	"sync"
	"sync/atomic"
	"time"

	"entk/internal/pad"
)

// handoffEngine is the production discrete-event core (EngineHandoff).
// Where the reference engine serialises every operation on one global
// mutex, this engine splits the state by contention domain:
//
//   - the runnable count is a lone atomic: blocking is one atomic
//     decrement, waking one atomic increment, and only the process that
//     decrements it to zero pays for time advancement;
//   - timers live in a hierarchical wheel (wheel.go) behind a dedicated
//     timer lock touched only by Sleep and the advance loop, and all
//     timers sharing the earliest deadline fire as one batch;
//   - primitive state (event/queue/semaphore waiter lists) moved behind
//     per-primitive locks (primitives.go), so two unrelated semaphores
//     never contend;
//   - blocked-waiter diagnostics live in a cache-line-padded striped
//     table, touched twice per park and never on the wake fast path.
//
// Direct handoff: when a wake races the window between a process
// publishing its waiter and actually parking (common under semaphore
// release / queue put storms), the waker flips the waiter's state word
// and walks away, and the parker sees the flip and never blocks — the
// runnable token crosses the pair with zero counter traffic, zero
// channel operations, and zero blocked-table churn.
type handoffEngine struct {
	// nowAtomic is read on every profiler event from every executing
	// unit; it gets a cache line to itself so the write-hot runnable
	// counter below cannot invalidate it.
	nowAtomic atomic.Int64
	_         pad.Line
	runnable  atomic.Int64
	dead      atomic.Bool
	_         pad.Line

	// timerMu guards the wheel, seq, and fireBuf. Time itself is read
	// through nowAtomic and written only by the advance loop.
	timerMu sync.Mutex
	wh      wheel
	seq     int64
	fireBuf []*waiter

	blocked blockedTable
}

func newHandoffEngine() *handoffEngine { return &handoffEngine{} }

func (e *handoffEngine) kind() Engine { return EngineHandoff }

func (e *handoffEngine) now() time.Duration {
	return time.Duration(e.nowAtomic.Load())
}

func (e *handoffEngine) register() {
	e.runnable.Add(1)
}

func (e *handoffEngine) deregister() {
	e.blockOne()
}

// blockOne retires the caller's runnable token; the process that takes
// the count to zero runs the advance loop.
func (e *handoffEngine) blockOne() {
	if e.dead.Load() {
		return
	}
	n := e.runnable.Add(-1)
	if n < 0 {
		panic(underflowPanic)
	}
	if n == 0 {
		e.advance()
	}
}

func (e *handoffEngine) park(w *waiter, src descSource) {
	if w.state.Swap(wParked) == wSignaled {
		// Direct handoff: the waker already passed through the window
		// between this process publishing the waiter and parking here.
		// Keep the runnable token and return — no counter, no channel,
		// no blocked-table entry.
		w.state.Store(wIdle)
		return
	}
	if src != nil {
		e.blocked.add(w, src)
	}
	e.blockOne()
	<-w.ch
	w.state.Store(wIdle)
	if src != nil {
		e.blocked.remove(w)
	}
}

func (e *handoffEngine) wake(w *waiter) {
	if w.state.Swap(wSignaled) != wParked {
		// The parker has not parked yet: it will observe the signal at
		// its swap and keep its own runnable token (direct handoff).
		return
	}
	e.runnable.Add(1)
	w.ch <- struct{}{} // never blocks: cap 1, exactly one parker
}

func (e *handoffEngine) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	w := getWaiter()
	e.timerMu.Lock()
	w.deadline = e.nowAtomic.Load() + int64(d)
	e.seq++
	w.tseq = e.seq
	e.wh.push(w)
	e.timerMu.Unlock()
	e.park(w, nil) // the wheel, not the blocked table, tracks sleepers
	putWaiter(w)
}

// advance jumps virtual time to the earliest pending deadline and wakes
// its sleepers, batch by batch, while no process is runnable. It runs on
// whichever process took the runnable count to zero; timerMu serialises
// competing advancers, each of which re-checks the count under the lock.
//
// The count can only be zero when every registered process has fully
// parked (a process is counted until its own blockOne, and every wake
// credits the counter before signalling), so the loop body observes the
// wheel and the blocked table at rest.
func (e *handoffEngine) advance() {
	e.timerMu.Lock()
	for !e.dead.Load() && e.runnable.Load() == 0 {
		batch, deadline, ok := e.wh.popBatch(e.fireBuf)
		if !ok {
			if e.blocked.count() > 0 {
				// Fatal: no process can ever run again. Mark the engine
				// dead and release the lock before panicking so deferred
				// exits on the unwinding goroutine do not self-deadlock.
				msg := formatDeadlock(e.now(), e.blocked.descs())
				e.dead.Store(true)
				e.timerMu.Unlock()
				panic(msg)
			}
			break // simulation quiescent: all processes finished
		}
		if deadline < e.nowAtomic.Load() {
			panic("vclock: timer deadline in the past")
		}
		e.nowAtomic.Store(deadline)
		// Every sleeper in the batch is fully parked (see above), so the
		// batch is credited with one atomic add and signalled directly.
		e.runnable.Add(int64(len(batch)))
		for _, w := range batch {
			w.ch <- struct{}{} // never blocks: cap 1, one sleeper
		}
		e.fireBuf = batch[:0]
	}
	e.timerMu.Unlock()
}

// ---------------------------------------------------------------------------
// Striped blocked-waiter table

// blockedStripes is the stripe count of the blocked table. Power of two.
const blockedStripes = 16

// blockedStripe is one shard: a mutex, its slice of the table, and
// padding so adjacent stripes do not share a cache line.
type blockedStripe struct {
	mu sync.Mutex
	m  map[*waiter]descSource
	_  pad.Line
}

// blockedTable tracks which waiters are parked and why, for the deadlock
// report. Striping by the waiter's pool-assigned stripe id keeps parks on
// unrelated primitives from serialising; the aggregate count is an atomic
// so deadlock detection never sweeps the stripes in the common case.
type blockedTable struct {
	n atomic.Int64
	// n is bumped by every park/unpark on every stripe; keep it off
	// stripe 0's cache line (stripes pad only at their tails).
	_       pad.Line
	stripes [blockedStripes]blockedStripe
}

func (t *blockedTable) add(w *waiter, src descSource) {
	s := &t.stripes[w.sid&(blockedStripes-1)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[*waiter]descSource)
	}
	s.m[w] = src
	s.mu.Unlock()
	t.n.Add(1)
}

func (t *blockedTable) remove(w *waiter) {
	s := &t.stripes[w.sid&(blockedStripes-1)]
	s.mu.Lock()
	delete(s.m, w)
	s.mu.Unlock()
	t.n.Add(-1)
}

func (t *blockedTable) count() int64 { return t.n.Load() }

// descs formats every blocked waiter's description (deadlock path only).
func (t *blockedTable) descs() []string {
	var out []string
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for w, src := range s.m {
			out = append(out, src.blockDesc(w))
		}
		s.mu.Unlock()
	}
	return out
}
