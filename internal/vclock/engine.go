package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Engine selects the discrete-event core behind a Virtual clock. Both
// engines drive simulated time identically — same advance rule, same
// deadline/seq tiebreak, same deadlock diagnostics — and the engine-parity
// suite holds them to bit-identical reports; they differ only in how much
// wall-clock the bookkeeping costs.
type Engine int

const (
	// EngineHandoff is the production engine: a direct-handoff design with
	// an atomic runnable counter, a hierarchical timer wheel that fires
	// all same-deadline timers as one batch, per-primitive locks, and a
	// cache-line-padded striped blocked table. When a wake lands in the
	// window between a process publishing itself as a waiter and actually
	// parking, the runnable token is handed straight across — neither side
	// touches the global counter or a channel.
	EngineHandoff Engine = iota
	// EngineRef is the reference engine: the seed's single global mutex,
	// integer runnable count, and binary timer heap. It is kept as the
	// semantic baseline the parity tests compare against, mirroring how
	// pilot.Config.Rescan keeps the seed's agent scheduler.
	EngineRef
	// EngineWall backs a Wall clock: real time, real sleeps, no runnable
	// accounting. It is selected by constructing NewWall, never by
	// ParseEngine — the -engine flag picks between simulation cores, the
	// sim/real decision is a mode, not an engine.
	EngineWall
)

func (e Engine) String() string {
	switch e {
	case EngineRef:
		return "ref"
	case EngineWall:
		return "wall"
	}
	return "handoff"
}

// ParseEngine maps an engine name ("handoff", "ref") to its Engine value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "handoff":
		return EngineHandoff, nil
	case "ref":
		return EngineRef, nil
	}
	return 0, fmt.Errorf("vclock: unknown engine %q (have handoff, ref)", s)
}

// engine is the internal contract between the Virtual façade (and the
// blocking primitives) and a discrete-event core. A primitive blocks by
// publishing a waiter in its own data structure (under its own lock) and
// then calling park; whoever later pops that waiter calls wake. All
// runnable accounting, time advancement, and deadlock detection live
// behind this interface.
type engine interface {
	// now returns the current virtual time.
	now() time.Duration
	// sleep suspends the calling process for d of virtual time.
	sleep(d time.Duration)
	// register counts a new runnable process (Go/Run entry).
	register()
	// deregister removes an exiting process and may advance the clock.
	deregister()
	// park blocks the calling process until a matching wake. The caller
	// must already have published w where exactly one waker will find it.
	// src lazily describes what is being waited on for the deadlock
	// report; nil skips blocked tracking (used by sleep internally). It
	// is an interface, not a closure, so the hot path allocates nothing.
	park(w *waiter, src descSource)
	// wake makes the process parked on w runnable again and releases it.
	// Each published waiter must be woken exactly once.
	wake(w *waiter)
	// kind reports which engine this is.
	kind() Engine
}

// Virtual is a discrete-event virtual clock.
//
// Processes are goroutines registered with Go or Run. The clock tracks how
// many registered processes are runnable; when the count drops to zero it
// advances time to the earliest pending timer and wakes its sleepers. If no
// timer is pending and blocked waiters remain, the simulation is deadlocked
// and the engine panics with a dump of what everyone is waiting on. The
// panic is raised on whichever goroutine blocked last: recoverable when
// that is the Run caller, fatal (by design — it is a programming-error
// diagnostic) when it is a spawned process.
//
// The zero value is not usable; construct with NewVirtual (direct-handoff
// engine) or NewVirtualEngine.
type Virtual struct {
	eng engine
}

// NewVirtual returns a virtual clock at time zero with no processes,
// backed by the default direct-handoff engine.
func NewVirtual() *Virtual { return NewVirtualEngine(EngineHandoff) }

// NewVirtualEngine returns a virtual clock backed by the selected engine.
func NewVirtualEngine(e Engine) *Virtual {
	if e == EngineRef {
		return &Virtual{eng: newRefEngine()}
	}
	return &Virtual{eng: newHandoffEngine()}
}

// EngineKind reports which engine backs this clock.
func (v *Virtual) EngineKind() Engine { return v.eng.kind() }

func (v *Virtual) core() engine { return v.eng }

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration { return v.eng.now() }

// Sleep suspends the calling process for d of virtual time. The caller must
// be a registered process (spawned via Go or running inside Run); otherwise
// the runnable accounting is corrupted.
func (v *Virtual) Sleep(d time.Duration) { v.eng.sleep(d) }

// Go spawns fn as a new registered process. It may be called from inside or
// outside the simulation; the process is counted as runnable from the
// moment Go returns, so the clock cannot advance past work that fn is about
// to do.
func (v *Virtual) Go(fn func()) {
	v.eng.register()
	go func() {
		defer v.eng.deregister()
		fn()
	}()
}

// Run executes fn inline as a registered process and returns when fn
// returns. It is the usual entry point: tests and binaries call
// v.Run(func(){ ... }) and spawn further processes with v.Go from inside.
func (v *Virtual) Run(fn func()) {
	v.eng.register()
	defer v.eng.deregister()
	fn()
}

// After schedules fn to run at virtual instant Now()+d as its own
// registered process. It is the arming primitive behind deterministic
// fault injection: the trigger process is counted runnable from the
// moment After returns, so the clock can neither advance past the
// pending trigger nor fire it early — fn runs at exactly the requested
// instant, bit-reproducibly. fn must follow the same rules as a Go
// process body.
func (v *Virtual) After(d time.Duration, fn func()) {
	v.Go(func() {
		v.Sleep(d)
		fn()
	})
}

// Detach removes the calling process from the runnable accounting, as if
// it had exited. It exists for worker pools that keep goroutines alive
// between simulated tasks: a detached goroutine is invisible to the
// clock — it must not touch any vclock primitive — and typically parks
// on a plain channel. The clock may advance (or the simulation finish)
// while it is parked.
func (v *Virtual) Detach() { v.eng.deregister() }

// Attach counts a process back into the runnable accounting, as Go does
// for a new process. Call it on behalf of a detached worker BEFORE
// handing it work (from a registered running process), so the clock
// cannot advance past work the worker is about to do.
func (v *Virtual) Attach() { v.eng.register() }

// descSource lazily renders a blocked waiter's description for the
// deadlock report. Primitives implement it on their own receiver and read
// per-waiter details (permit count, availability snapshot) from the
// waiter's scratch fields, so blocking never allocates a closure; the
// (rare) deadlock report pays for all formatting.
type descSource interface {
	blockDesc(w *waiter) string
}

// waiter is one parked process, published by a primitive and woken by
// exactly one waker. The channel is a reusable capacity-1 signal; the
// state word implements the handoff engine's wake-before-park fast path
// (the reference engine parks and wakes through the channel only). item,
// ok, and n are scratch owned by the primitive that published the waiter:
// the waker writes them before wake, the parker reads them after park.
type waiter struct {
	ch    chan struct{}
	state atomic.Int32
	sid   uint32      // pool-assigned id selecting a blocked-table stripe
	n     int         // semaphore: permits requested
	aux   int         // semaphore: availability snapshot for the report
	item  interface{} // queue: handed-off element
	ok    bool        // queue: false when released by Close

	// Timer-wheel fields (handoff engine sleeps only): the waiter doubles
	// as the intrusive wheel node, so the sleep path allocates nothing.
	deadline int64
	tseq     int64
	tnext    *waiter
}

// Waiter states for the handoff fast path. A parker swaps in wParked; if
// it reads back wSignaled the waker already passed through and the parker
// returns without ever blocking. A waker swaps in wSignaled; if it reads
// back wParked the parker is (or is about to be) asleep and needs a
// counted wake through the channel.
const (
	wIdle int32 = iota
	wSignaled
	wParked
)

// waiterPool recycles waiters (and their wake channels) across blocks:
// simulations park millions of times, and the waiter allocation was among
// the largest sources of garbage in the engine.
var waiterSid atomic.Uint32

var waiterPool = sync.Pool{
	New: func() interface{} {
		return &waiter{ch: make(chan struct{}, 1), sid: waiterSid.Add(1)}
	},
}

func getWaiter() *waiter { return waiterPool.Get().(*waiter) }

func putWaiter(w *waiter) {
	w.n = 0
	w.aux = 0
	w.item = nil
	w.ok = false
	w.tnext = nil
	waiterPool.Put(w)
}

// formatDeadlock renders the deadlock panic message shared by both
// engines: the time of death and a sorted dump of every blocked waiter.
func formatDeadlock(now time.Duration, descs []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vclock: deadlock at t=%v: no runnable process, no pending timer, %d blocked waiter(s):",
		now, len(descs))
	sort.Strings(descs)
	for _, d := range descs {
		b.WriteString("\n  - ")
		b.WriteString(d)
	}
	return b.String()
}

const underflowPanic = "vclock: runnable count underflow (blocking call from unregistered goroutine?)"
