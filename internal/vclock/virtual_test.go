package vclock

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWallClockMonotonic(t *testing.T) {
	r := NewWall()
	a := r.Now()
	r.Sleep(time.Millisecond)
	b := r.Now()
	if b < a {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
	r.Sleep(-time.Second) // must not block
}

func TestVirtualStartsAtZero(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); got != 0 {
		t.Fatalf("new virtual clock at %v, want 0", got)
	}
}

func TestSleepAdvancesExactly(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		v.Sleep(5 * time.Second)
		if got := v.Now(); got != 5*time.Second {
			t.Errorf("after Sleep(5s) clock at %v", got)
		}
		v.Sleep(2500 * time.Millisecond)
		if got := v.Now(); got != 7500*time.Millisecond {
			t.Errorf("after second sleep clock at %v", got)
		}
	})
}

func TestSleepNonPositiveReturnsImmediately(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		v.Sleep(0)
		v.Sleep(-time.Hour)
		if got := v.Now(); got != 0 {
			t.Errorf("non-positive sleeps advanced clock to %v", got)
		}
	})
}

func TestConcurrentSleepersWakeInOrder(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []time.Duration
	v.Run(func() {
		wg := NewWaitGroup(v, "sleepers")
		for _, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
			d := d
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				v.Sleep(d)
				mu.Lock()
				order = append(order, v.Now())
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	if len(order) != len(want) {
		t.Fatalf("got %d wakeups, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("wakeup %d at %v, want %v", i, order[i], want[i])
		}
	}
}

func TestSimultaneousTimersAllFire(t *testing.T) {
	v := NewVirtual()
	const n = 50
	var fired int
	var mu sync.Mutex
	v.Run(func() {
		wg := NewWaitGroup(v, "simul")
		for i := 0; i < n; i++ {
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				v.Sleep(time.Second)
				mu.Lock()
				fired++
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	if fired != n {
		t.Fatalf("%d timers fired, want %d", fired, n)
	}
	if got := v.Now(); got != time.Second {
		t.Fatalf("clock at %v, want 1s", got)
	}
}

func TestNestedSpawns(t *testing.T) {
	v := NewVirtual()
	var total time.Duration
	v.Run(func() {
		wg := NewWaitGroup(v, "outer")
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			v.Sleep(time.Second)
			inner := NewWaitGroup(v, "inner")
			inner.Add(1)
			v.Go(func() {
				defer inner.Done()
				v.Sleep(2 * time.Second)
			})
			inner.Wait()
		})
		wg.Wait()
		total = v.Now()
	})
	if total != 3*time.Second {
		t.Fatalf("nested spawn finished at %v, want 3s", total)
	}
}

func TestDeadlockPanics(t *testing.T) {
	v := NewVirtual()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "event never-fired") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	v.Run(func() {
		ev := NewEvent(v, "never-fired")
		ev.Wait()
	})
}

// Regression: the deadlock panic must be recoverable from the Run caller
// without self-deadlocking on the engine mutex (Run's deferred exit used
// to re-lock the mutex the panicking goroutine still held), and the
// engine must stay usable enough afterwards to be inspected.
func TestDeadlockPanicIsRecoverable(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		v.Run(func() {
			NewEvent(v, "stuck").Wait()
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock panic did not unwind: engine self-deadlocked")
	}
	// Post-mortem inspection must not hang or panic.
	if got := v.Now(); got != 0 {
		t.Errorf("clock at %v after deadlock, want 0", got)
	}
}

func TestEventBroadcast(t *testing.T) {
	v := NewVirtual()
	const n = 10
	var woke int
	var mu sync.Mutex
	v.Run(func() {
		ev := NewEvent(v, "go")
		wg := NewWaitGroup(v, "waiters")
		for i := 0; i < n; i++ {
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				ev.Wait()
				mu.Lock()
				woke++
				mu.Unlock()
			})
		}
		v.Sleep(time.Second)
		if ev.Fired() {
			t.Error("event fired prematurely")
		}
		ev.Fire()
		ev.Fire() // double fire is a no-op
		wg.Wait()
		ev.Wait() // post-fire wait returns immediately
	})
	if woke != n {
		t.Fatalf("%d waiters woke, want %d", woke, n)
	}
}

func TestQueueFIFO(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		q := NewQueue(v, "fifo")
		for i := 0; i < 5; i++ {
			q.Put(i)
		}
		if q.Len() != 5 {
			t.Fatalf("queue length %d, want 5", q.Len())
		}
		for i := 0; i < 5; i++ {
			item, ok := q.Get()
			if !ok || item.(int) != i {
				t.Fatalf("Get = (%v,%v), want (%d,true)", item, ok, i)
			}
		}
	})
}

func TestQueueBlockingHandoff(t *testing.T) {
	v := NewVirtual()
	var got interface{}
	v.Run(func() {
		q := NewQueue(v, "handoff")
		done := NewEvent(v, "done")
		v.Go(func() {
			item, ok := q.Get() // blocks: queue empty
			if !ok {
				t.Error("Get returned !ok")
			}
			got = item
			done.Fire()
		})
		v.Sleep(time.Second)
		q.Put("hello")
		done.Wait()
	})
	if got != "hello" {
		t.Fatalf("handoff got %v", got)
	}
}

func TestQueueCloseReleasesConsumers(t *testing.T) {
	v := NewVirtual()
	var oks []bool
	var mu sync.Mutex
	v.Run(func() {
		q := NewQueue(v, "close")
		q.Put(1)
		wg := NewWaitGroup(v, "consumers")
		for i := 0; i < 3; i++ {
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				_, ok := q.Get()
				mu.Lock()
				oks = append(oks, ok)
				mu.Unlock()
			})
		}
		v.Sleep(time.Second)
		q.Close()
		q.Close() // idempotent
		wg.Wait()
		if _, ok := q.Get(); ok {
			t.Error("Get on closed drained queue returned ok")
		}
	})
	var trues int
	for _, ok := range oks {
		if ok {
			trues++
		}
	}
	if trues != 1 {
		t.Fatalf("%d consumers got items, want exactly 1 (the buffered item)", trues)
	}
}

func TestQueueTryGet(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		q := NewQueue(v, "try")
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty queue returned ok")
		}
		q.Put(7)
		item, ok := q.TryGet()
		if !ok || item.(int) != 7 {
			t.Errorf("TryGet = (%v,%v), want (7,true)", item, ok)
		}
	})
}

func TestQueuePutOnClosedPanics(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		q := NewQueue(v, "closed-put")
		q.Close()
		defer func() {
			if recover() == nil {
				t.Error("Put on closed queue did not panic")
			}
		}()
		q.Put(1)
	})
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	v := NewVirtual()
	const permits = 3
	const tasks = 10
	var cur, peak int
	var mu sync.Mutex
	v.Run(func() {
		sem := NewSemaphore(v, "limit", permits)
		wg := NewWaitGroup(v, "tasks")
		for i := 0; i < tasks; i++ {
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				sem.Acquire(1)
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				v.Sleep(time.Second)
				mu.Lock()
				cur--
				mu.Unlock()
				sem.Release(1)
			})
		}
		wg.Wait()
	})
	if peak > permits {
		t.Fatalf("peak concurrency %d exceeded %d permits", peak, permits)
	}
	// 10 tasks, 3 permits, 1s each => ceil(10/3) = 4 virtual seconds.
	if got := v.Now(); got != 4*time.Second {
		t.Fatalf("semaphore-limited run took %v, want 4s", got)
	}
}

func TestSemaphoreFIFONoStarvation(t *testing.T) {
	v := NewVirtual()
	var order []int
	var mu sync.Mutex
	v.Run(func() {
		sem := NewSemaphore(v, "fifo", 2)
		sem.Acquire(2)
		wg := NewWaitGroup(v, "waiters")
		// A large request queued first must be served before a small
		// later one (strict FIFO).
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			sem.Acquire(2)
			mu.Lock()
			order = append(order, 2)
			mu.Unlock()
			sem.Release(2)
		})
		v.Sleep(time.Second)
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			sem.Acquire(1)
			mu.Lock()
			order = append(order, 1)
			mu.Unlock()
			sem.Release(1)
		})
		v.Sleep(time.Second)
		if got := sem.Available(); got != 0 {
			t.Errorf("available = %d with holder active", got)
		}
		if sem.TryAcquire(1) {
			t.Error("TryAcquire jumped the FIFO queue")
		}
		sem.Release(2)
		wg.Wait()
	})
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("service order %v, want [2 1]", order)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		sem := NewSemaphore(v, "try", 2)
		if !sem.TryAcquire(2) {
			t.Fatal("TryAcquire(2) failed with 2 available")
		}
		if sem.TryAcquire(1) {
			t.Fatal("TryAcquire(1) succeeded with 0 available")
		}
		sem.Release(2)
		if !sem.TryAcquire(0) {
			t.Fatal("TryAcquire(0) must always succeed")
		}
	})
}

func TestBarrierRounds(t *testing.T) {
	v := NewVirtual()
	const parties = 4
	const rounds = 3
	counts := make([]int, rounds)
	var mu sync.Mutex
	v.Run(func() {
		b := NewBarrier(v, "rounds", parties)
		wg := NewWaitGroup(v, "parties")
		for p := 0; p < parties; p++ {
			p := p
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					v.Sleep(time.Duration(p+1) * time.Second)
					round := b.Await()
					if round != r {
						t.Errorf("party %d saw round %d, want %d", p, round, r)
					}
					mu.Lock()
					counts[r]++
					mu.Unlock()
				}
			})
		}
		wg.Wait()
	})
	for r, c := range counts {
		if c != parties {
			t.Errorf("round %d released %d parties, want %d", r, c, parties)
		}
	}
}

func TestWaitGroupZeroWaitReturnsImmediately(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		wg := NewWaitGroup(v, "zero")
		wg.Wait() // counter is 0: must not block
	})
}

func TestWaitGroupNegativePanics(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		wg := NewWaitGroup(v, "neg")
		defer func() {
			if recover() == nil {
				t.Error("negative WaitGroup did not panic")
			}
		}()
		wg.Done()
	})
}

// Property: for any set of sleep durations, the clock ends at the maximum
// duration and every sleeper observes exactly its own duration.
func TestPropertySleepMaxIsTTC(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		v := NewVirtual()
		var max time.Duration
		ok := true
		var mu sync.Mutex
		v.Run(func() {
			wg := NewWaitGroup(v, "prop")
			for _, r := range raw {
				d := time.Duration(r) * time.Millisecond
				if d > max {
					max = d
				}
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					start := v.Now()
					v.Sleep(d)
					if v.Now()-start != d {
						mu.Lock()
						ok = false
						mu.Unlock()
					}
				})
			}
			wg.Wait()
		})
		return ok && v.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequential sleeps accumulate exactly.
func TestPropertySequentialSleepsAccumulate(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		v := NewVirtual()
		var sum time.Duration
		v.Run(func() {
			for _, r := range raw {
				d := time.Duration(r) * time.Millisecond
				sum += d
				v.Sleep(d)
			}
		})
		return v.Now() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: time never moves backwards as observed by any process under a
// randomized mix of sleeps and spawns.
func TestPropertyMonotonicTime(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		v := NewVirtual()
		var mu sync.Mutex
		var last time.Duration
		violated := false
		observe := func() {
			mu.Lock()
			now := v.Now()
			if now < last {
				violated = true
			}
			last = now
			mu.Unlock()
		}
		n := 2 + rng.Intn(10)
		steps := make([][]time.Duration, n)
		for i := range steps {
			k := 1 + rng.Intn(5)
			for j := 0; j < k; j++ {
				steps[i] = append(steps[i], time.Duration(rng.Intn(1000))*time.Millisecond)
			}
		}
		v.Run(func() {
			wg := NewWaitGroup(v, "mono")
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					for _, d := range steps[i] {
						v.Sleep(d)
						observe()
					}
				})
			}
			wg.Wait()
		})
		if violated {
			t.Fatalf("trial %d: observed time going backwards", trial)
		}
	}
}
