package vclock

import "time"

// Wall is the wall-clock implementation of Clock: the real-mode twin of
// Virtual. Now is monotonic elapsed time since construction, Sleep is a
// real time.Sleep, and the blocking primitives park on their waiter
// channels until woken — plain Go concurrency, with the operating system
// as the scheduler.
//
// What Wall deliberately does NOT have:
//
//   - Runnable accounting. Register/deregister (Go, Run, Attach, Detach)
//     are no-ops: real time advances whether or not anyone is blocked, so
//     there is no count to keep and nothing for an idle pool's phantom
//     registration to freeze.
//   - Deadlock detection. A simulation with no runnable process and no
//     timer is provably stuck and the virtual engines panic with a dump;
//     on the wall clock an external event (a process exiting, a signal)
//     can always arrive, so a lost wake simply blocks — exactly as it
//     would in any concurrent program.
//   - Determinism. Two wall runs interleave however the OS schedules
//     them. The structural shape of a campaign (which units ran, what
//     retried, the per-unit event order) is reproducible; instants and
//     cross-unit orderings are not. Golden-trace tooling stays sim-only.
//
// The zero value is not usable; construct with NewWall.
type Wall struct {
	eng engine
}

// NewWall returns a wall clock whose origin is now.
func NewWall() *Wall { return &Wall{eng: newWallEngine()} }

// EngineKind reports EngineWall.
func (w *Wall) EngineKind() Engine { return w.eng.kind() }

// Now returns the monotonic wall time elapsed since NewWall.
func (w *Wall) Now() time.Duration { return w.eng.now() }

// Sleep blocks the calling goroutine for d of real time.
func (w *Wall) Sleep(d time.Duration) { w.eng.sleep(d) }

// Go spawns fn as an ordinary goroutine (registration is a no-op on the
// wall clock, kept so Clock callers behave identically on either engine).
func (w *Wall) Go(fn func()) {
	w.eng.register()
	go func() {
		defer w.eng.deregister()
		fn()
	}()
}

// Run executes fn inline.
func (w *Wall) Run(fn func()) {
	w.eng.register()
	defer w.eng.deregister()
	fn()
}

// After runs fn in its own goroutine once d of real time has passed.
func (w *Wall) After(d time.Duration, fn func()) {
	w.Go(func() {
		w.Sleep(d)
		fn()
	})
}

// Detach is a no-op: the wall clock keeps no runnable accounting.
func (w *Wall) Detach() { w.eng.deregister() }

// Attach is a no-op: the wall clock keeps no runnable accounting.
func (w *Wall) Attach() { w.eng.register() }

func (w *Wall) core() engine { return w.eng }

// wallEngine implements the internal engine contract against real time.
// park/wake use the waiter's reusable capacity-1 channel exactly like the
// reference engine: a wake that races ahead of its park leaves the token
// in the channel and the parker returns immediately. No runnable
// accounting, no timer queue — the OS runs the show.
type wallEngine struct {
	start time.Time
}

func newWallEngine() *wallEngine { return &wallEngine{start: time.Now()} }

func (e *wallEngine) kind() Engine { return EngineWall }

func (e *wallEngine) now() time.Duration { return time.Since(e.start) }

func (e *wallEngine) sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (e *wallEngine) register()   {}
func (e *wallEngine) deregister() {}

func (e *wallEngine) park(w *waiter, _ descSource) {
	<-w.ch
}

func (e *wallEngine) wake(w *waiter) {
	w.ch <- struct{}{} // never blocks: cap 1, exactly one parker
}
