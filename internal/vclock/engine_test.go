package vclock

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// engines lists every engine the parity suite runs on.
var engines = []Engine{EngineHandoff, EngineRef}

// forEachEngine runs fn as a subtest per engine.
func forEachEngine(t *testing.T, fn func(t *testing.T, v *Virtual)) {
	for _, e := range engines {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			fn(t, NewVirtualEngine(e))
		})
	}
}

func TestEngineKind(t *testing.T) {
	if got := NewVirtual().EngineKind(); got != EngineHandoff {
		t.Fatalf("default engine = %v, want handoff", got)
	}
	if got := NewVirtualEngine(EngineRef).EngineKind(); got != EngineRef {
		t.Fatalf("NewVirtualEngine(EngineRef) = %v", got)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine accepted junk")
	}
	for _, e := range engines {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
}

// TestEngineSleepOrdering: wake order and final time match on both
// engines for out-of-order sleepers.
func TestEngineSleepOrdering(t *testing.T) {
	forEachEngine(t, func(t *testing.T, v *Virtual) {
		var mu sync.Mutex
		var order []time.Duration
		v.Run(func() {
			wg := NewWaitGroup(v, "sleepers")
			for _, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
				d := d
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					v.Sleep(d)
					mu.Lock()
					order = append(order, v.Now())
					mu.Unlock()
				})
			}
			wg.Wait()
		})
		want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("wakeup %d at %v, want %v", i, order[i], want[i])
			}
		}
	})
}

// TestEngineSimultaneousBatch: all same-deadline timers fire together.
func TestEngineSimultaneousBatch(t *testing.T) {
	forEachEngine(t, func(t *testing.T, v *Virtual) {
		const n = 300
		var fired int
		var mu sync.Mutex
		v.Run(func() {
			wg := NewWaitGroup(v, "simul")
			for i := 0; i < n; i++ {
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					v.Sleep(time.Second)
					mu.Lock()
					fired++
					mu.Unlock()
				})
			}
			wg.Wait()
		})
		if fired != n || v.Now() != time.Second {
			t.Fatalf("fired=%d now=%v, want %d at 1s", fired, v.Now(), n)
		}
	})
}

// TestEngineWheelSpread exercises every wheel level: deadlines from
// microseconds to days, plus an overflow-range sleeper beyond the top
// level's horizon, all on one clock.
func TestEngineWheelSpread(t *testing.T) {
	durs := []time.Duration{
		10 * time.Microsecond, 500 * time.Microsecond, // below one base tick
		3 * time.Millisecond, 200 * time.Millisecond, // level 0-1
		5 * time.Second, 90 * time.Second, // level 1-2
		2 * time.Hour, 3 * 24 * time.Hour, // level 2-3
		60 * 24 * time.Hour, // level 4
		400000 * time.Hour,  // ~45 years: overflow list
	}
	forEachEngine(t, func(t *testing.T, v *Virtual) {
		var mu sync.Mutex
		got := make(map[time.Duration]time.Duration)
		v.Run(func() {
			wg := NewWaitGroup(v, "spread")
			for _, d := range durs {
				d := d
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					v.Sleep(d)
					mu.Lock()
					got[d] = v.Now()
					mu.Unlock()
				})
			}
			wg.Wait()
		})
		for _, d := range durs {
			if got[d] != d {
				t.Errorf("sleeper(%v) woke at %v", d, got[d])
			}
		}
	})
}

// TestEngineRepeatedDeadlineReuse re-sleeps the same durations many times
// so wheel buckets are reused, cascaded, and refilled across advances.
func TestEngineRepeatedDeadlineReuse(t *testing.T) {
	forEachEngine(t, func(t *testing.T, v *Virtual) {
		var total time.Duration
		v.Run(func() {
			wg := NewWaitGroup(v, "reuse")
			for p := 0; p < 8; p++ {
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						v.Sleep(250 * time.Millisecond)
					}
				})
			}
			wg.Wait()
			total = v.Now()
		})
		if want := 200 * 250 * time.Millisecond; total != want {
			t.Fatalf("clock at %v, want %v", total, want)
		}
	})
}

// TestEngineDeadlockParity: both engines detect the deadlock, report the
// same shape, and stay inspectable afterwards.
func TestEngineDeadlockParity(t *testing.T) {
	for _, e := range engines {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			v := NewVirtualEngine(e)
			done := make(chan interface{}, 1)
			go func() {
				defer func() { done <- recover() }()
				v.Run(func() {
					sem := NewSemaphore(v, "starved", 1)
					v.Go(func() {
						NewEvent(v, "never-fired").Wait()
					})
					// Sleep so the event waiter parks first: the deadlock
					// panic is raised on whichever process blocks last —
					// here the Run caller, where it is recoverable.
					v.Sleep(time.Second)
					sem.Acquire(5)
				})
			}()
			var r interface{}
			select {
			case r = <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("deadlock panic did not unwind")
			}
			msg, ok := r.(string)
			if !ok {
				t.Fatalf("panic payload %T: %v", r, r)
			}
			for _, want := range []string{
				"deadlock", "2 blocked waiter(s)",
				"event never-fired", "semaphore starved (acquire 5, avail 1)",
			} {
				if !strings.Contains(msg, want) {
					t.Errorf("%s: deadlock report missing %q:\n%s", e, want, msg)
				}
			}
			if got := v.Now(); got != time.Second {
				t.Errorf("clock at %v after deadlock, want 1s", got)
			}
		})
	}
}

// TestEnginePrimitiveMix drives every primitive on both engines with a
// virtually deterministic workload (contended arrivals are staggered onto
// distinct instants, so FIFO service order is fixed by simulated time,
// not the real scheduler) and checks the simulated end state matches
// exactly.
func TestEnginePrimitiveMix(t *testing.T) {
	type result struct {
		now    time.Duration
		served []int
		qGot   []int
	}
	run := func(e Engine) result {
		v := NewVirtualEngine(e)
		var res result
		var mu sync.Mutex
		v.Run(func() {
			sem := NewSemaphore(v, "mix", 2)
			q := NewQueue(v, "mix")
			ev := NewEvent(v, "go")
			prod := NewWaitGroup(v, "producers")
			cons := NewWaitGroup(v, "consumer")
			for i := 0; i < 6; i++ {
				i := i
				prod.Add(1)
				v.Go(func() {
					defer prod.Done()
					ev.Wait()
					// Distinct arrival instants: semaphore FIFO order is
					// then determined by virtual time on both engines.
					v.Sleep(time.Duration(i+1) * 100 * time.Millisecond)
					sem.Acquire(1)
					v.Sleep(time.Second)
					mu.Lock()
					res.served = append(res.served, i)
					mu.Unlock()
					sem.Release(1)
					q.Put(i)
				})
			}
			cons.Add(1)
			v.Go(func() {
				defer cons.Done()
				for {
					item, ok := q.Get()
					if !ok {
						return
					}
					mu.Lock()
					res.qGot = append(res.qGot, item.(int))
					mu.Unlock()
				}
			})
			v.Sleep(time.Second)
			ev.Fire()
			prod.Wait()
			q.Close()
			cons.Wait()
		})
		res.now = v.Now()
		return res
	}
	a, b := run(EngineHandoff), run(EngineRef)
	if a.now != b.now {
		t.Fatalf("final time differs: handoff %v, ref %v", a.now, b.now)
	}
	if fmt.Sprint(a.served) != fmt.Sprint(b.served) || fmt.Sprint(a.qGot) != fmt.Sprint(b.qGot) {
		t.Fatalf("activity differs:\nhandoff %+v\nref     %+v", a, b)
	}
}

// TestEngineTieSoak runs a fixed-seed tie-heavy workload on both engines
// and demands identical wake traces: the sequence of distinct wake
// instants with the sorted process ids woken at each instant. Ties
// collapse to one entry, so the trace is independent of goroutine
// interleave within an instant but pins the engines' virtual-time
// evolution — including equal-deadline batching — exactly.
func TestEngineTieSoak(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a := runSoak(EngineHandoff, seed)
		b := runSoak(EngineRef, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: handoff %d, ref %d\nhandoff: %v\nref: %v",
				seed, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at step %d:\nhandoff: %s\nref:     %s",
					seed, i, a[i], b[i])
			}
		}
	}
}

// runSoak executes the fixed-seed tie-heavy workload on one engine and
// returns its wake trace. The workload is virtually deterministic —
// sleeps and full barriers only, so every wake instant is a function of
// the script, not of real-time races — while producing dense
// equal-deadline ties (durations drawn from a tiny set, and a barrier
// re-synchronising everyone every few steps).
func runSoak(e Engine, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	const procs = 24
	const rounds = 5
	durSet := []time.Duration{
		10 * time.Millisecond, 10 * time.Millisecond, // weighted for ties
		25 * time.Millisecond, 100 * time.Millisecond, time.Second,
	}
	steps := make([][][]time.Duration, procs)
	for i := range steps {
		steps[i] = make([][]time.Duration, rounds)
		for r := 0; r < rounds; r++ {
			k := 1 + rng.Intn(4)
			for j := 0; j < k; j++ {
				steps[i][r] = append(steps[i][r], durSet[rng.Intn(len(durSet))])
			}
		}
	}

	type obs struct {
		at time.Duration
		id int
	}
	var mu sync.Mutex
	var log []obs
	v := NewVirtualEngine(e)
	v.Run(func() {
		bar := NewBarrier(v, "soak", procs)
		wg := NewWaitGroup(v, "soak")
		for i := 0; i < procs; i++ {
			i := i
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for _, d := range steps[i][r] {
						v.Sleep(d)
						mu.Lock()
						log = append(log, obs{v.Now(), i})
						mu.Unlock()
					}
					bar.Await()
				}
			})
		}
		wg.Wait()
	})

	// Group observations by instant; sort ids within an instant (their
	// real-time interleave is scheduler noise on both engines).
	byAt := make(map[time.Duration][]int)
	var ats []time.Duration
	for _, o := range log {
		if _, seen := byAt[o.at]; !seen {
			ats = append(ats, o.at)
		}
		byAt[o.at] = append(byAt[o.at], o.id)
	}
	// Observation instants arrive in nondecreasing virtual time per
	// process but interleave across processes; sort the distinct times.
	for i := 1; i < len(ats); i++ {
		for j := i; j > 0 && ats[j] < ats[j-1]; j-- {
			ats[j], ats[j-1] = ats[j-1], ats[j]
		}
	}
	var trace []string
	for _, at := range ats {
		ids := byAt[at]
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		trace = append(trace, fmt.Sprintf("t=%v ids=%v", at, ids))
	}
	return trace
}
