package vclock

import (
	"math/bits"
	"slices"
)

// The hierarchical timer wheel behind the direct-handoff engine.
//
// The reference engine keeps pending timers in a binary heap: O(log n)
// per push and per pop, with n the total pending-timer count — 8k+ during
// the stress sweeps, and the paper's workloads fire thousands of timers
// at the same deadline (same-length tasks started at the same instant).
// The wheel makes push O(1) (a shift, a mask, a pointer link) and pops
// the entire set of earliest-deadline timers as one batch.
//
// Storage is intrusive: a sleeping process's pooled waiter IS the timer
// node (deadline, seq, tnext), so the wheel allocates nothing on the
// sleep path — buckets are just head/tail pointers and cascading relinks
// nodes instead of copying them.
//
// Layout: wheelLevels levels of wheelSlots buckets each. Level l has tick
// t_l = 2^(wheelBaseShift + wheelSlotBits*l) nanoseconds; a bucket at
// level l spans one t_l-sized window of absolute time. The base tick of
// ~1ms fits the cost model's duration distribution — launch latencies are
// tens of milliseconds, kernel durations are seconds — so level 0 buckets
// hold few distinct deadlines and levels 1-2 absorb almost all pushes:
//
//	level 0:  ~1.05ms tick,   ~268ms horizon
//	level 1:  ~268ms tick,    ~68.7s horizon
//	level 2:  ~68.7s tick,    ~4.9h horizon
//	level 3:  ~4.9h tick,     ~52d horizon
//	level 4:  ~52d tick,      ~36.6y horizon (beyond: overflow list)
//
// A timer is filed at the finest level whose window, measured from the
// wheel cursor, still contains its deadline: slot = (deadline >> shift) &
// mask. Because filing requires (deadline>>shift) - (cursor>>shift) <
// wheelSlots and the cursor never exceeds a pending deadline, each ring
// slot maps to exactly one absolute window — no lap aliasing.
//
// Unlike a ticking wheel, a discrete-event clock jumps straight to the
// earliest pending deadline, so popBatch locates the minimum instead of
// stepping: per level, an occupancy bitmap scan (four words) finds the
// first occupied bucket at or after the cursor; the candidate bucket with
// the smallest start time either fires (level 0: extract the exact
// minimum-deadline set) or cascades its contents one level down, with the
// cursor advanced to the bucket start so re-filing always lands strictly
// finer — each timer is touched at most wheelLevels times in its life.
const (
	wheelLevels    = 5
	wheelSlotBits  = 8
	wheelSlots     = 1 << wheelSlotBits
	wheelSlotMask  = wheelSlots - 1
	wheelBaseShift = 20 // ~1.05ms base tick
	wheelOccWords  = wheelSlots / 64
)

func wheelShift(l int) uint { return uint(wheelBaseShift + wheelSlotBits*l) }

// wbucket is one bucket: an intrusive FIFO list of waiters linked through
// their tnext fields.
type wbucket struct {
	head, tail *waiter
}

func (b *wbucket) append(w *waiter) {
	w.tnext = nil
	if b.tail == nil {
		b.head = w
	} else {
		b.tail.tnext = w
	}
	b.tail = w
}

// wlevel is one wheel level: its buckets, their occupancy bitmap, and the
// level's timer count (so popBatch skips empty levels without touching
// their bitmaps — in steady state most levels are empty).
type wlevel struct {
	bucket [wheelSlots]wbucket
	occ    [wheelOccWords]uint64
	cnt    int
}

// scan returns the ring distance (0..wheelSlots-1) from slot `from` to
// the first occupied bucket, searching forward with wraparound.
func (lv *wlevel) scan(from int) (dist int, ok bool) {
	w, b := from>>6, uint(from&63)
	for i := 0; i <= wheelOccWords; i++ {
		idx := (w + i) & (wheelOccWords - 1)
		word := lv.occ[idx]
		if i == 0 {
			word &= ^uint64(0) << b // only bits at or after `from`
		} else if i == wheelOccWords {
			word &= 1<<b - 1 // wrapped back: only bits before `from`
		}
		if word != 0 {
			slot := idx<<6 + bits.TrailingZeros64(word)
			return (slot - from) & wheelSlotMask, true
		}
	}
	return 0, false
}

// wheel is the hierarchical calendar. Not safe for concurrent use; the
// engine serialises access under its timer lock.
type wheel struct {
	level [wheelLevels]wlevel
	// cursor is a monotone lower bound on every pending deadline; slots
	// are computed relative to it. It trails the engine's clock only
	// transiently (between a fire and the next push).
	cursor int64
	count  int
	// overflow holds timers beyond the top level's horizon (~36 years of
	// virtual time — only pathological walltime guards land here). It is
	// walked linearly, and drained back into the wheel if its earliest
	// deadline ever becomes the global minimum.
	overflow    wbucket
	overflowMin int64
}

// push files w (whose deadline and tseq the caller has set) at the finest
// level whose window contains its deadline.
func (wh *wheel) push(w *waiter) {
	wh.count++
	for l := 0; l < wheelLevels; l++ {
		sh := wheelShift(l)
		if (w.deadline>>sh)-(wh.cursor>>sh) < wheelSlots {
			slot := int(w.deadline>>sh) & wheelSlotMask
			lv := &wh.level[l]
			lv.bucket[slot].append(w)
			lv.occ[slot>>6] |= 1 << uint(slot&63)
			lv.cnt++
			return
		}
	}
	if wh.overflow.head == nil || w.deadline < wh.overflowMin {
		wh.overflowMin = w.deadline
	}
	wh.overflow.append(w)
}

// popBatch removes and returns every timer sharing the minimum pending
// deadline, in seq order, reusing buf's storage. ok is false if the wheel
// is empty; the returned slice is valid until the caller is done with it.
func (wh *wheel) popBatch(buf []*waiter) (batch []*waiter, deadline int64, ok bool) {
	if wh.count == 0 {
		return nil, 0, false
	}
	for {
		bestLevel, bestSlot := -1, 0
		var bestStart int64
		for l := 0; l < wheelLevels; l++ {
			if wh.level[l].cnt == 0 {
				continue
			}
			sh := wheelShift(l)
			csn := wh.cursor >> sh
			dist, occ := wh.level[l].scan(int(csn) & wheelSlotMask)
			if !occ {
				continue
			}
			start := (csn + int64(dist)) << sh
			// On ties the coarser level wins: its bucket spans a window
			// that may hide an earlier deadline than anything in the
			// finer bucket, so it must cascade before the finer fires.
			if bestLevel < 0 || start <= bestStart {
				bestLevel, bestStart = l, start
				bestSlot = (int(csn) + dist) & wheelSlotMask
			}
		}
		if wh.overflow.head != nil && (bestLevel < 0 || wh.overflowMin <= bestStart) {
			wh.drainOverflow()
			continue
		}
		if bestLevel == 0 {
			return wh.fire(bestSlot, buf)
		}
		wh.cascade(bestLevel, bestSlot, bestStart)
	}
}

// fire extracts the exact minimum-deadline set from a level-0 bucket. The
// bucket may mix nearby deadlines within one base tick; only the minimum
// fires, the rest stay filed.
func (wh *wheel) fire(slot int, buf []*waiter) ([]*waiter, int64, bool) {
	lv := &wh.level[0]
	b := &lv.bucket[slot]
	min := b.head.deadline
	for n := b.head.tnext; n != nil; n = n.tnext {
		if n.deadline < min {
			min = n.deadline
		}
	}
	batch := buf[:0]
	var rest wbucket
	for n := b.head; n != nil; {
		next := n.tnext
		if n.deadline == min {
			n.tnext = nil
			batch = append(batch, n)
		} else {
			rest.append(n)
		}
		n = next
	}
	*b = rest
	if rest.head == nil {
		lv.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	lv.cnt -= len(batch)
	wh.count -= len(batch)
	if min > wh.cursor {
		wh.cursor = min
	}
	// Equal-deadline timers fire in registration order, matching the
	// reference heap's (deadline, seq) tiebreak; cascading can interleave
	// bucket append order, so restore it explicitly. (Generic sort: a
	// reflect-based one boxes the batch on the engine's hottest loop.)
	if len(batch) > 1 {
		slices.SortFunc(batch, func(a, b *waiter) int {
			if a.tseq < b.tseq {
				return -1
			}
			return 1
		})
	}
	return batch, min, true
}

// cascade re-files a coarse bucket's timers one level finer. Advancing
// the cursor to the bucket's start first guarantees every entry now fits
// a strictly finer level (the bucket spans one t_l window above the new
// cursor), so cascading always terminates.
func (wh *wheel) cascade(l, slot int, start int64) {
	lv := &wh.level[l]
	b := lv.bucket[slot]
	lv.bucket[slot] = wbucket{}
	lv.occ[slot>>6] &^= 1 << uint(slot&63)
	if start > wh.cursor {
		wh.cursor = start
	}
	for n := b.head; n != nil; {
		next := n.tnext
		lv.cnt--
		wh.count-- // push re-counts
		wh.push(n)
		n = next
	}
}

// drainOverflow re-files the overflow list after advancing the cursor to
// the top-level window below its earliest deadline, which is about to
// become (or already is) the global minimum.
func (wh *wheel) drainOverflow() {
	ov := wh.overflow
	wh.overflow = wbucket{}
	top := wheelShift(wheelLevels - 1)
	if c := (wh.overflowMin >> top) << top; c > wh.cursor {
		wh.cursor = c
	}
	wh.overflowMin = 0
	for n := ov.head; n != nil; {
		next := n.tnext
		wh.count-- // push re-counts
		wh.push(n)
		n = next
	}
}
