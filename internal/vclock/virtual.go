package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a discrete-event virtual clock.
//
// Processes are goroutines registered with Go or Run. The clock tracks how
// many registered processes are runnable; when the count drops to zero it
// advances time to the earliest pending timer and wakes its sleepers. If no
// timer is pending and blocked waiters remain, the simulation is deadlocked
// and the engine panics with a dump of what everyone is waiting on. The
// panic is raised on whichever goroutine blocked last: recoverable when
// that is the Run caller, fatal (by design — it is a programming-error
// diagnostic) when it is a spawned process.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu sync.Mutex
	// now mirrors nowAtomic; the atomic copy lets Now() — which sits on
	// the profiler's per-event hot path — avoid taking mu. Only advance()
	// writes time, under mu.
	now       time.Duration
	nowAtomic atomic.Int64
	runnable  int
	timers    timerHeap
	seq       int64
	// blocked tracks descriptions of processes blocked on non-timer
	// primitives, keyed by a unique token, for deadlock diagnostics. The
	// descriptions are lazy closures so the (rare) deadlock report pays
	// for formatting, not every block on the hot path.
	blocked map[int64]func() string
	// dead marks the clock as having detected a deadlock; all further
	// accounting becomes a no-op so the panic can unwind (and deferred
	// exits can run) without corrupting or re-locking the engine.
	dead bool
}

// NewVirtual returns a virtual clock at time zero with no processes.
func NewVirtual() *Virtual {
	return &Virtual{blocked: make(map[int64]func() string)}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	return time.Duration(v.nowAtomic.Load())
}

// timerPool recycles timers (and their wake channels) across sleeps:
// simulations sleep millions of times, and the timer allocation was the
// single largest source of garbage in the engine.
var timerPool = sync.Pool{
	New: func() interface{} { return &timer{ch: make(chan struct{}, 1)} },
}

// Sleep suspends the calling process for d of virtual time. The caller must
// be a registered process (spawned via Go or running inside Run); otherwise
// the runnable accounting is corrupted.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := timerPool.Get().(*timer)
	v.mu.Lock()
	t.deadline = v.now + d
	t.seq = v.nextSeq()
	v.timers.push(t)
	v.becomeBlocked()
	v.mu.Unlock()
	<-t.ch
	timerPool.Put(t)
}

// Go spawns fn as a new registered process. It may be called from inside or
// outside the simulation; the process is counted as runnable from the
// moment Go returns, so the clock cannot advance past work that fn is about
// to do.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
	go func() {
		defer v.exit()
		fn()
	}()
}

// Run executes fn inline as a registered process and returns when fn
// returns. It is the usual entry point: tests and binaries call
// v.Run(func(){ ... }) and spawn further processes with v.Go from inside.
func (v *Virtual) Run(fn func()) {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
	defer v.exit()
	fn()
}

// exit deregisters the calling process.
func (v *Virtual) exit() {
	v.mu.Lock()
	v.becomeBlockedNoWait()
	v.mu.Unlock()
}

// nextSeq returns a fresh sequence number. Caller holds mu.
func (v *Virtual) nextSeq() int64 {
	v.seq++
	return v.seq
}

// becomeBlocked transitions the calling process from runnable to blocked
// and, if it was the last runnable process, advances the clock. Caller
// holds mu and must wait on its wake channel after unlocking.
func (v *Virtual) becomeBlocked() {
	v.becomeBlockedNoWait()
}

func (v *Virtual) becomeBlockedNoWait() {
	if v.dead {
		return
	}
	v.runnable--
	if v.runnable < 0 {
		panic("vclock: runnable count underflow (blocking call from unregistered goroutine?)")
	}
	if v.runnable == 0 {
		v.advance()
	}
}

// wake marks n processes runnable again. Caller holds mu and must signal
// the woken processes itself. The waker is either a runnable process or the
// advance loop, so the clock cannot be mid-jump.
func (v *Virtual) wake(n int) {
	v.runnable += n
}

// advance jumps virtual time to the earliest pending timer deadline and
// fires every timer sharing that deadline. Caller holds mu, and the
// runnable count is zero. If there are no timers but blocked waiters
// remain, the simulation can never make progress: panic with diagnostics.
func (v *Virtual) advance() {
	for v.runnable == 0 {
		if len(v.timers) == 0 {
			if len(v.blocked) > 0 {
				// Fatal: no process can ever run again. Mark the engine
				// dead and release the mutex before panicking so that
				// deferred exits on the unwinding goroutine (Run's
				// v.exit, callers' cleanup) do not self-deadlock on mu.
				msg := v.deadlockReport()
				v.dead = true
				v.mu.Unlock()
				panic(msg)
			}
			return // simulation quiescent: all processes finished
		}
		deadline := v.timers[0].deadline
		if deadline < v.now {
			panic("vclock: timer deadline in the past")
		}
		v.now = deadline
		v.nowAtomic.Store(int64(deadline))
		for len(v.timers) > 0 && v.timers[0].deadline == deadline {
			t := v.timers.pop()
			v.runnable++
			t.ch <- struct{}{} // never blocks: cap 1, exactly one sleeper
		}
	}
}

// deadlockReport formats the blocked-waiter table for the deadlock panic.
// Caller holds mu.
func (v *Virtual) deadlockReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vclock: deadlock at t=%v: no runnable process, no pending timer, %d blocked waiter(s):",
		v.now, len(v.blocked))
	descs := make([]string, 0, len(v.blocked))
	for _, d := range v.blocked {
		descs = append(descs, d())
	}
	sort.Strings(descs)
	for _, d := range descs {
		b.WriteString("\n  - ")
		b.WriteString(d)
	}
	return b.String()
}

// blockOn records that the calling process is blocked on the primitive
// described by desc (formatted only if a deadlock report is built),
// transitions it to blocked, and returns a token to pass to unblocked
// once it resumes. Caller holds mu.
func (v *Virtual) blockOn(desc func() string) int64 {
	tok := v.nextSeq()
	v.blocked[tok] = desc
	v.becomeBlocked()
	return tok
}

// unblocked clears the diagnostic entry for a process that has resumed.
// Caller holds mu. The wake(n) call that made the process runnable again
// must have happened already.
func (v *Virtual) unblocked(tok int64) {
	delete(v.blocked, tok)
}

// timer is a pending virtual-time wakeup. Timers are pooled: ch is a
// reusable capacity-1 channel signalled by send, not close.
type timer struct {
	deadline time.Duration
	seq      int64 // FIFO tiebreak among equal deadlines
	ch       chan struct{}
}

// timerHeap is a min-heap of timers ordered by (deadline, seq). It is a
// concrete implementation (no container/heap interface boxing): the heap
// sits on the engine's innermost loop.
type timerHeap []*timer

func (h timerHeap) less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

// push inserts t, sifting up.
func (h *timerHeap) push(t *timer) {
	*h = append(*h, t)
	s := *h
	for c := len(s) - 1; c > 0; {
		p := (c - 1) / 2
		if s.less(p, c) {
			break
		}
		s[p], s[c] = s[c], s[p]
		c = p
	}
}

// pop removes and returns the minimum timer.
func (h *timerHeap) pop() *timer {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	for c := 0; ; {
		l, r := 2*c+1, 2*c+2
		m := c
		if l < n && s.less(l, m) {
			m = l
		}
		if r < n && s.less(r, m) {
			m = r
		}
		if m == c {
			break
		}
		s[c], s[m] = s[m], s[c]
		c = m
	}
	return top
}
