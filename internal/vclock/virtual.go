package vclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// refEngine is the reference discrete-event core (EngineRef): the seed's
// design of one global mutex, an integer runnable count, and a binary
// timer heap. Every operation — sleep, park, wake — serializes on mu,
// which makes the invariants easy to audit: the runnable count, the heap,
// and the blocked table can never be observed mid-update. The
// direct-handoff engine (handoff.go) must stay bit-identical to this one
// in simulated time; only wall-clock cost may differ.
type refEngine struct {
	mu sync.Mutex
	// cur mirrors nowAtomic; the atomic copy lets now() — which sits on
	// the profiler's per-event hot path — avoid taking mu. Only advance()
	// writes time, under mu.
	cur       time.Duration
	nowAtomic atomic.Int64
	runnable  int
	timers    timerHeap
	seq       int64
	// blocked tracks processes blocked on non-timer primitives, keyed by
	// their waiter, for deadlock diagnostics. The descriptions are lazy
	// descSources so the (rare) deadlock report pays for formatting, not
	// every block on the hot path.
	blocked map[*waiter]descSource
	// dead marks the clock as having detected a deadlock; all further
	// accounting becomes a no-op so the panic can unwind (and deferred
	// exits can run) without corrupting or re-locking the engine.
	dead bool
}

func newRefEngine() *refEngine {
	return &refEngine{blocked: make(map[*waiter]descSource)}
}

func (v *refEngine) kind() Engine { return EngineRef }

func (v *refEngine) now() time.Duration {
	return time.Duration(v.nowAtomic.Load())
}

// timerPool recycles timers (and their wake channels) across sleeps:
// simulations sleep millions of times, and the timer allocation was the
// single largest source of garbage in the engine.
var timerPool = sync.Pool{
	New: func() interface{} { return &timer{ch: make(chan struct{}, 1)} },
}

func (v *refEngine) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := timerPool.Get().(*timer)
	v.mu.Lock()
	t.deadline = v.cur + d
	t.seq = v.nextSeq()
	v.timers.push(t)
	v.becomeBlocked()
	v.mu.Unlock()
	<-t.ch
	timerPool.Put(t)
}

func (v *refEngine) register() {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
}

func (v *refEngine) deregister() {
	v.mu.Lock()
	v.becomeBlocked()
	v.mu.Unlock()
}

// park transitions the calling process to blocked (recording src for the
// deadlock report), advances the clock if it was the last runnable
// process, and waits for the matching wake.
func (v *refEngine) park(w *waiter, src descSource) {
	v.mu.Lock()
	if src != nil {
		v.blocked[w] = src
	}
	v.becomeBlocked()
	v.mu.Unlock()
	<-w.ch
	if src != nil {
		v.mu.Lock()
		delete(v.blocked, w)
		v.mu.Unlock()
	}
}

// wake marks the process parked on w runnable again and signals it. The
// waker is itself a running registered process (or the advance loop), so
// the clock cannot be mid-jump.
func (v *refEngine) wake(w *waiter) {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
	w.ch <- struct{}{} // never blocks: cap 1, exactly one parker
}

// nextSeq returns a fresh sequence number. Caller holds mu.
func (v *refEngine) nextSeq() int64 {
	v.seq++
	return v.seq
}

// becomeBlocked transitions the calling process from runnable to blocked
// and, if it was the last runnable process, advances the clock. Caller
// holds mu.
func (v *refEngine) becomeBlocked() {
	if v.dead {
		return
	}
	v.runnable--
	if v.runnable < 0 {
		panic(underflowPanic)
	}
	if v.runnable == 0 {
		v.advance()
	}
}

// advance jumps virtual time to the earliest pending timer deadline and
// fires every timer sharing that deadline. Caller holds mu, and the
// runnable count is zero. If there are no timers but blocked waiters
// remain, the simulation can never make progress: panic with diagnostics.
func (v *refEngine) advance() {
	for v.runnable == 0 {
		if len(v.timers) == 0 {
			if len(v.blocked) > 0 {
				// Fatal: no process can ever run again. Mark the engine
				// dead and release the mutex before panicking so that
				// deferred exits on the unwinding goroutine (Run's
				// deregister, callers' cleanup) do not self-deadlock on mu.
				descs := make([]string, 0, len(v.blocked))
				for w, src := range v.blocked {
					descs = append(descs, src.blockDesc(w))
				}
				msg := formatDeadlock(v.cur, descs)
				v.dead = true
				v.mu.Unlock()
				panic(msg)
			}
			return // simulation quiescent: all processes finished
		}
		deadline := v.timers[0].deadline
		if deadline < v.cur {
			panic("vclock: timer deadline in the past")
		}
		v.cur = deadline
		v.nowAtomic.Store(int64(deadline))
		for len(v.timers) > 0 && v.timers[0].deadline == deadline {
			t := v.timers.pop()
			v.runnable++
			t.ch <- struct{}{} // never blocks: cap 1, exactly one sleeper
		}
	}
}

// timer is a pending virtual-time wakeup. Timers are pooled: ch is a
// reusable capacity-1 channel signalled by send, not close.
type timer struct {
	deadline time.Duration
	seq      int64 // FIFO tiebreak among equal deadlines
	ch       chan struct{}
}

// timerHeap is a min-heap of timers ordered by (deadline, seq). It is a
// concrete implementation (no container/heap interface boxing): the heap
// sits on the engine's innermost loop.
type timerHeap []*timer

func (h timerHeap) less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

// push inserts t, sifting up.
func (h *timerHeap) push(t *timer) {
	*h = append(*h, t)
	s := *h
	for c := len(s) - 1; c > 0; {
		p := (c - 1) / 2
		if s.less(p, c) {
			break
		}
		s[p], s[c] = s[c], s[p]
		c = p
	}
}

// pop removes and returns the minimum timer.
func (h *timerHeap) pop() *timer {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	for c := 0; ; {
		l, r := 2*c+1, 2*c+2
		m := c
		if l < n && s.less(l, m) {
			m = l
		}
		if r < n && s.less(r, m) {
			m = r
		}
		if m == c {
			break
		}
		s[c], s[m] = s[m], s[c]
		c = m
	}
	return top
}
