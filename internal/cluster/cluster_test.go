package cluster

import (
	"testing"
	"testing/quick"
)

func TestPaperTopologies(t *testing.T) {
	cases := []struct {
		m            Machine
		nodes, cores int
	}{
		{Comet, 1984, 24},
		{Stampede, 6400, 16},
		{SuperMIC, 360, 20},
	}
	for _, c := range cases {
		if c.m.Nodes != c.nodes || c.m.CoresPerNode != c.cores {
			t.Errorf("%s: %d nodes x %d cores, want %d x %d",
				c.m.Name, c.m.Nodes, c.m.CoresPerNode, c.nodes, c.cores)
		}
		if err := c.m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.m.Name, err)
		}
	}
	if got := SuperMIC.TotalCores(); got != 7200 {
		t.Errorf("SuperMIC cores = %d, want 7200", got)
	}
}

func TestNodesFor(t *testing.T) {
	m := Machine{Name: "t", Nodes: 10, CoresPerNode: 24, FSBandwidthMBps: 1}
	cases := []struct{ cores, nodes int }{
		{0, 0}, {-5, 0}, {1, 1}, {24, 1}, {25, 2}, {48, 2}, {49, 3},
	}
	for _, c := range cases {
		if got := m.NodesFor(c.cores); got != c.nodes {
			t.Errorf("NodesFor(%d) = %d, want %d", c.cores, got, c.nodes)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Machine{
		{},
		{Name: "x", Nodes: 0, CoresPerNode: 1, FSBandwidthMBps: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 0, FSBandwidthMBps: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 1, FSBandwidthMBps: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid machine accepted", i)
		}
	}
}

func TestLookupAndRegister(t *testing.T) {
	m, err := Lookup("xsede.comet")
	if err != nil || m.Name != "xsede.comet" {
		t.Fatalf("Lookup comet = %v, %v", m, err)
	}
	if _, err := Lookup("no.such.machine"); err == nil {
		t.Fatal("unknown resource accepted")
	}
	custom := &Machine{Name: "test.custom", Nodes: 2, CoresPerNode: 4, FSBandwidthMBps: 100}
	if err := Register(custom); err != nil {
		t.Fatal(err)
	}
	got, err := Lookup("test.custom")
	if err != nil || got != custom {
		t.Fatalf("Lookup custom = %v, %v", got, err)
	}
	if err := Register(&Machine{}); err == nil {
		t.Fatal("invalid machine registered")
	}
	found := false
	for _, n := range Names() {
		if n == "test.custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing registered machine")
	}
}

// Property: NodesFor is the minimal node count whose capacity covers the
// request.
func TestPropertyNodesForMinimalCover(t *testing.T) {
	m := Machine{Name: "p", Nodes: 1000, CoresPerNode: 16, FSBandwidthMBps: 1}
	f := func(c uint16) bool {
		cores := int(c)
		n := m.NodesFor(cores)
		if cores <= 0 {
			return n == 0
		}
		return n*m.CoresPerNode >= cores && (n-1)*m.CoresPerNode < cores
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
