// Package cluster models the HPC machines the paper evaluates on. A
// Machine carries the node/core topology used by the batch-queue simulator
// and the pilot agent, plus the latency/bandwidth parameters that drive the
// overhead model (task launch latency, filesystem bandwidth, network
// round-trip to the machine).
package cluster

import (
	"fmt"
	"time"
)

// Machine describes an HPC platform.
type Machine struct {
	// Name is the canonical resource label, e.g. "xsede.comet".
	Name string
	// Nodes is the total number of compute nodes.
	Nodes int
	// CoresPerNode is the number of cores on each node.
	CoresPerNode int
	// MemPerNodeGB is the memory per node in gigabytes.
	MemPerNodeGB int

	// AgentBootTime is the time the pilot agent needs from batch-job start
	// to accepting units (environment setup, bootstrapping).
	AgentBootTime time.Duration
	// TaskLaunchLatency is the per-task launch cost paid by the agent
	// executor (fork/exec, aprun/ibrun startup).
	TaskLaunchLatency time.Duration
	// NetLatency is the one-way latency between the client (where EnTK
	// runs) and the machine; every control message pays it.
	NetLatency time.Duration
	// FSBandwidthMBps is the shared-filesystem bandwidth seen by one task.
	FSBandwidthMBps float64
	// FSLatency is the per-operation filesystem latency (open/create).
	FSLatency time.Duration
	// QueueWaitBase is the fixed component of the batch queue wait model.
	QueueWaitBase time.Duration
	// QueueWaitPerNode is the incremental queue wait per requested node:
	// bigger requests wait longer, a crude but monotone model of real
	// scheduler behaviour.
	QueueWaitPerNode time.Duration
}

// TotalCores returns the machine's total core count.
func (m *Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// NodesFor returns how many whole nodes are needed to hold cores.
func (m *Machine) NodesFor(cores int) int {
	if cores <= 0 {
		return 0
	}
	return (cores + m.CoresPerNode - 1) / m.CoresPerNode
}

// Validate reports whether the machine definition is self-consistent.
func (m *Machine) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("cluster: machine has no name")
	case m.Nodes <= 0:
		return fmt.Errorf("cluster: machine %s has %d nodes", m.Name, m.Nodes)
	case m.CoresPerNode <= 0:
		return fmt.Errorf("cluster: machine %s has %d cores/node", m.Name, m.CoresPerNode)
	case m.FSBandwidthMBps <= 0:
		return fmt.Errorf("cluster: machine %s has non-positive fs bandwidth", m.Name)
	}
	return nil
}

// The paper's testbed (Section IV): Comet for the validation experiments,
// Stampede for SAL scaling and the MPI test, SuperMIC for EE scaling.
// Topology figures come from the paper; latency parameters are calibrated
// so toolkit overheads land in the seconds range the paper reports.
var (
	// Comet is XSEDE Comet: 1944 standard compute nodes (the paper rounds
	// to 1984), 24 cores and 120 GB per node.
	Comet = Machine{
		Name:              "xsede.comet",
		Nodes:             1984,
		CoresPerNode:      24,
		MemPerNodeGB:      120,
		AgentBootTime:     30 * time.Second,
		TaskLaunchLatency: 100 * time.Millisecond,
		NetLatency:        40 * time.Millisecond,
		FSBandwidthMBps:   300,
		FSLatency:         5 * time.Millisecond,
		QueueWaitBase:     60 * time.Second,
		QueueWaitPerNode:  500 * time.Millisecond,
	}

	// Stampede is XSEDE Stampede: 6400 nodes, 16 cores and 32 GB per node.
	Stampede = Machine{
		Name:              "xsede.stampede",
		Nodes:             6400,
		CoresPerNode:      16,
		MemPerNodeGB:      32,
		AgentBootTime:     45 * time.Second,
		TaskLaunchLatency: 120 * time.Millisecond,
		NetLatency:        35 * time.Millisecond,
		FSBandwidthMBps:   350,
		FSLatency:         5 * time.Millisecond,
		QueueWaitBase:     90 * time.Second,
		QueueWaitPerNode:  400 * time.Millisecond,
	}

	// SuperMIC is LSU SuperMIC: 360 nodes, 20 cores and 60 GB per node.
	SuperMIC = Machine{
		Name:              "lsu.supermic",
		Nodes:             360,
		CoresPerNode:      20,
		MemPerNodeGB:      60,
		AgentBootTime:     40 * time.Second,
		TaskLaunchLatency: 110 * time.Millisecond,
		NetLatency:        50 * time.Millisecond,
		FSBandwidthMBps:   250,
		FSLatency:         6 * time.Millisecond,
		QueueWaitBase:     75 * time.Second,
		QueueWaitPerNode:  600 * time.Millisecond,
	}

	// Stress8k is a synthetic 8192-core machine (512 nodes x 16 cores)
	// for the beyond-paper stress tier: latencies sit between Stampede's
	// and Local's so 10k-task sweeps exercise the schedulers hard without
	// queue-wait noise dominating the decomposition.
	Stress8k = Machine{
		Name:              "sim.stress8k",
		Nodes:             512,
		CoresPerNode:      16,
		MemPerNodeGB:      64,
		AgentBootTime:     30 * time.Second,
		TaskLaunchLatency: 50 * time.Millisecond,
		NetLatency:        10 * time.Millisecond,
		FSBandwidthMBps:   1000,
		FSLatency:         time.Millisecond,
		QueueWaitBase:     30 * time.Second,
		QueueWaitPerNode:  100 * time.Millisecond,
	}

	// Stress64k is a synthetic 65536-core machine (4096 nodes x 16 cores)
	// for the 100k-task stress tier opened by the columnar profiler: the
	// same latency profile as Stress8k so the two tiers differ only in
	// scale, with the per-node queue-wait component dominating the fixed
	// base by design (a 4096-node request models a near-whole-machine
	// backfill wait).
	Stress64k = Machine{
		Name:              "sim.stress64k",
		Nodes:             4096,
		CoresPerNode:      16,
		MemPerNodeGB:      64,
		AgentBootTime:     30 * time.Second,
		TaskLaunchLatency: 50 * time.Millisecond,
		NetLatency:        10 * time.Millisecond,
		FSBandwidthMBps:   1000,
		FSLatency:         time.Millisecond,
		QueueWaitBase:     30 * time.Second,
		QueueWaitPerNode:  100 * time.Millisecond,
	}

	// Local is a workstation-scale machine for examples and quick tests:
	// no queue wait, tiny latencies.
	Local = Machine{
		Name:              "local.localhost",
		Nodes:             1,
		CoresPerNode:      8,
		MemPerNodeGB:      16,
		AgentBootTime:     time.Second,
		TaskLaunchLatency: 10 * time.Millisecond,
		NetLatency:        time.Millisecond,
		FSBandwidthMBps:   500,
		FSLatency:         time.Millisecond,
		QueueWaitBase:     0,
		QueueWaitPerNode:  0,
	}
)

// registry maps resource labels to machine definitions.
var registry = map[string]*Machine{
	Comet.Name:     &Comet,
	Stampede.Name:  &Stampede,
	SuperMIC.Name:  &SuperMIC,
	Stress8k.Name:  &Stress8k,
	Stress64k.Name: &Stress64k,
	Local.Name:     &Local,
}

// Lookup returns the machine registered under name.
func Lookup(name string) (*Machine, error) {
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown resource %q", name)
	}
	return m, nil
}

// Names returns the registered resource labels (order unspecified).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// Register adds or replaces a machine definition; tests use it to install
// synthetic machines.
func Register(m *Machine) error {
	if err := m.Validate(); err != nil {
		return err
	}
	registry[m.Name] = m
	return nil
}
