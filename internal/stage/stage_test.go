package stage

import (
	"strings"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/vclock"
)

func testMachine() *cluster.Machine {
	return &cluster.Machine{
		Name:            "test.machine",
		Nodes:           1,
		CoresPerNode:    4,
		FSBandwidthMBps: 100,
		FSLatency:       10 * time.Millisecond,
		NetLatency:      50 * time.Millisecond,
	}
}

func TestDirectiveValidate(t *testing.T) {
	if err := (Directive{Op: Copy, Source: "a", SizeMB: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Directive{Op: Copy, Source: "  "}).Validate(); err == nil {
		t.Error("empty source accepted")
	}
	if err := (Directive{Op: Upload, Source: "a", SizeMB: -1}).Validate(); err == nil {
		t.Error("negative size accepted")
	}
}

func TestDirectiveString(t *testing.T) {
	s := Directive{Op: Copy, Source: "in.dat", Target: "sandbox/in.dat", SizeMB: 12.5}.String()
	for _, want := range []string{"copy", "in.dat", "sandbox/in.dat", "12.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	if !strings.Contains((Directive{Op: Link, Source: "x"}).String(), "> .") {
		t.Error("empty target not rendered as '.'")
	}
	for _, op := range []Op{Upload, Copy, Link, Download, Op(9)} {
		if op.String() == "" {
			t.Error("empty op string")
		}
	}
}

func TestCostModel(t *testing.T) {
	v := vclock.NewVirtual()
	m := NewMover(v, testMachine())
	// Link: latency only.
	if got := m.Cost(Directive{Op: Link, Source: "x", SizeMB: 999}); got != 10*time.Millisecond {
		t.Errorf("link cost = %v", got)
	}
	// Copy 100MB at 100MB/s = 1s + 10ms latency.
	if got := m.Cost(Directive{Op: Copy, Source: "x", SizeMB: 100}); got != 1010*time.Millisecond {
		t.Errorf("copy cost = %v", got)
	}
	// Upload 50MB at 100MB/s WAN = 0.5s + 2*50ms.
	if got := m.Cost(Directive{Op: Upload, Source: "x", SizeMB: 50}); got != 600*time.Millisecond {
		t.Errorf("upload cost = %v", got)
	}
	if got := m.Cost(Directive{Op: Download, Source: "x", SizeMB: 0}); got != 100*time.Millisecond {
		t.Errorf("empty download cost = %v", got)
	}
}

func TestRunAdvancesClockAndAccounts(t *testing.T) {
	v := vclock.NewVirtual()
	m := NewMover(v, testMachine())
	dirs := []Directive{
		{Op: Upload, Source: "input.gro", Target: "staging/", SizeMB: 10},
		{Op: Link, Source: "staging/input.gro", Target: "unit0/"},
		{Op: Copy, Source: "ref.pdb", Target: "unit0/", SizeMB: 5},
	}
	var total time.Duration
	v.Run(func() {
		var err error
		total, err = m.Run(dirs)
		if err != nil {
			t.Fatal(err)
		}
	})
	want := (2*50*time.Millisecond + 100*time.Millisecond) + // upload
		10*time.Millisecond + // link
		(10*time.Millisecond + 50*time.Millisecond) // copy
	if total != want {
		t.Errorf("total staging = %v, want %v", total, want)
	}
	if got := v.Now(); got != want {
		t.Errorf("clock advanced %v, want %v", got, want)
	}
	ops, mb := m.Stats()
	if ops != 3 {
		t.Errorf("ops = %d, want 3", ops)
	}
	if mb != 15 { // link does not count as transfer
		t.Errorf("transferred = %v MB, want 15", mb)
	}
}

func TestRunStopsOnInvalidDirective(t *testing.T) {
	v := vclock.NewVirtual()
	m := NewMover(v, testMachine())
	v.Run(func() {
		_, err := m.Run([]Directive{
			{Op: Copy, Source: "ok", SizeMB: 1},
			{Op: Copy, Source: ""},
			{Op: Copy, Source: "never-reached", SizeMB: 1},
		})
		if err == nil {
			t.Fatal("invalid directive accepted")
		}
	})
	ops, _ := m.Stats()
	if ops != 1 {
		t.Errorf("ops after failure = %d, want 1", ops)
	}
}
