// Package stage models data staging between the client, the shared
// filesystem, and task sandboxes. Kernel plugins declare staging
// directives (upload, copy, link, download); the pilot agent executes them
// through a Mover, whose cost model charges per-operation latency plus
// size/bandwidth transfer time. The figures' staging components come from
// here.
package stage

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"entk/internal/cluster"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// Op is a staging operation type, mirroring the staging directives of
// RADICAL-Pilot (and EnTK kernel plugins' upload/copy/link/download).
type Op int

const (
	// Upload transfers a file from the client to the resource over the
	// WAN: pays network latency and WAN bandwidth.
	Upload Op = iota
	// Copy duplicates a file within the shared filesystem.
	Copy
	// Link creates a symlink within the shared filesystem: latency only.
	Link
	// Download transfers a file from the resource back to the client.
	Download
)

func (o Op) String() string {
	switch o {
	case Upload:
		return "upload"
	case Copy:
		return "copy"
	case Link:
		return "link"
	case Download:
		return "download"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Directive is one staging action: move Source to Target using Op.
// SizeMB drives the transfer-time model; links ignore it.
type Directive struct {
	Op     Op
	Source string
	Target string
	SizeMB float64
}

// Validate rejects malformed directives.
func (d Directive) Validate() error {
	if strings.TrimSpace(d.Source) == "" {
		return fmt.Errorf("stage: %s directive with empty source", d.Op)
	}
	if d.SizeMB < 0 {
		return fmt.Errorf("stage: %s %q has negative size", d.Op, d.Source)
	}
	return nil
}

// String renders the directive like "copy src > dst (12.5 MB)".
func (d Directive) String() string {
	t := d.Target
	if t == "" {
		t = "."
	}
	return fmt.Sprintf("%s %s > %s (%.1f MB)", d.Op, d.Source, t, d.SizeMB)
}

// Mover executes staging directives on a machine's filesystem, advancing
// the virtual clock according to the cost model. WANBandwidthMBps covers
// Upload/Download; the machine's FS bandwidth covers Copy.
type Mover struct {
	v       vclock.Clock
	machine *cluster.Machine
	// WANBandwidthMBps is the client<->resource transfer bandwidth.
	WANBandwidthMBps float64

	// prof, when set, receives one event per completed staging op on the
	// mover's entity, recorded with the pre-interned per-op name ids —
	// the staging component of the TTC decomposition. Ops run on the
	// per-unit hot path, so no strings are formatted here.
	prof    *profile.Profiler
	entity  profile.EntityID
	opNames [4]profile.NameID // indexed by Op

	mu          sync.Mutex
	transferred float64 // cumulative MB moved (for accounting/tests)
	ops         int
}

// SetProfiler wires per-op recording into p under the given entity key.
func (m *Mover) SetProfiler(p *profile.Profiler, entity string) {
	m.prof = p
	m.entity = p.Intern(entity)
	for _, op := range []Op{Upload, Copy, Link, Download} {
		m.opNames[op] = p.InternName("op_" + op.String())
	}
}

// NewMover returns a Mover for machine with a default 100 MB/s WAN.
func NewMover(v vclock.Clock, machine *cluster.Machine) *Mover {
	return &Mover{v: v, machine: machine, WANBandwidthMBps: 100}
}

// Cost returns the modelled duration of a single directive.
func (m *Mover) Cost(d Directive) time.Duration {
	switch d.Op {
	case Link:
		return m.machine.FSLatency
	case Copy:
		return m.machine.FSLatency + mbTime(d.SizeMB, m.machine.FSBandwidthMBps)
	case Upload, Download:
		return 2*m.machine.NetLatency + mbTime(d.SizeMB, m.WANBandwidthMBps)
	default:
		return 0
	}
}

// Run executes the directives sequentially (as the agent stager does),
// sleeping their modelled cost on the virtual clock. It returns the total
// staging time.
func (m *Mover) Run(dirs []Directive) (time.Duration, error) {
	var total time.Duration
	for _, d := range dirs {
		if err := d.Validate(); err != nil {
			return total, err
		}
		c := m.Cost(d)
		m.v.Sleep(c)
		total += c
		if m.prof != nil && d.Op >= Upload && d.Op <= Download {
			m.prof.RecordID(m.entity, m.opNames[d.Op])
		}
		m.mu.Lock()
		m.ops++
		if d.Op != Link {
			m.transferred += d.SizeMB
		}
		m.mu.Unlock()
	}
	return total, nil
}

// Stats reports cumulative operations and megabytes moved.
func (m *Mover) Stats() (ops int, transferredMB float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops, m.transferred
}

// mbTime converts a size and bandwidth to a duration.
func mbTime(sizeMB, mbps float64) time.Duration {
	if sizeMB <= 0 || mbps <= 0 {
		return 0
	}
	return time.Duration(sizeMB / mbps * float64(time.Second))
}
