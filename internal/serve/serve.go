// Package serve is the multi-tenant campaign service over the library
// core: a long-running daemon (cmd/entk-serve) that accepts declarative
// campaign descriptions (internal/campaign JSON) from concurrent
// clients and executes them on shared infrastructure.
//
// The package separates three lifetimes the library conflates:
//
//   - A campaign outlives the HTTP request that submitted it: POST
//     returns an id immediately and the campaign runs on; status,
//     report, trace, and checkpoint are fetched later against the id.
//   - A resource set outlives any one campaign: the orchestrator keys
//     shared pools by resource signature (pilot specs + placement +
//     retry budget + simulation substrate), so tenants submitting
//     against the same machines share one allocated ResourceSet, one
//     unit manager, and one wave batcher — the multi-AppManager path
//     the core grew in PR 5.
//   - The daemon outlives neither forever: graceful shutdown
//     checkpoints every in-flight graph campaign (PR 7 machinery) into
//     the state directory, and a restarted daemon resumes them.
//
// The virtual clock makes the first point non-trivial: a pool's
// simulation must not advance while the pool is idle (the clock would
// fast-forward straight to the pilots' walltime-expiry timers), yet
// must run freely while campaigns execute. The pool holds an idle
// phantom process for this — see pool.go.
//
// Fairness between tenants is enforced ahead of the shared batcher: a
// weighted admission queue (admission.go) dispatches queued campaigns
// so that each tenant's in-flight share tracks its weight, with
// per-tenant and global in-flight caps.
package serve

import (
	"time"

	"entk"
	"entk/internal/campaign"
)

// Options configures an Orchestrator.
type Options struct {
	// Engine and Layout select the simulation substrate every pool of
	// this daemon runs on (part of the pool key, so a daemon restarted
	// with different values simply builds different pools).
	Engine entk.ClockEngine
	Layout entk.ProfilerLayout

	// Mode selects simulated (default) or real execution for every pool
	// of this daemon (part of the pool key). In real mode pools run on
	// the wall clock and one shared local process executor runs kernels
	// that carry an executable; note an idle real pool's walltime keeps
	// counting down — wall time cannot be frozen between campaigns.
	Mode campaign.Mode
	// RealDir receives real-mode per-unit output captures; empty means
	// a fresh temporary directory.
	RealDir string

	// StateDir, when non-empty, is where campaign specs, reports,
	// traces, and shutdown checkpoints persist. Empty disables
	// persistence (and therefore resume-after-restart).
	StateDir string

	// TenantCap bounds each tenant's concurrently running campaigns.
	// Zero means unlimited.
	TenantCap int
	// MaxInFlight bounds the daemon's total concurrently running
	// campaigns. Zero means unlimited.
	MaxInFlight int
	// Weights assigns fair-share weights per tenant; tenants not
	// listed weigh 1. A tenant with weight 2 is admitted twice as much
	// in-flight work as a tenant with weight 1 under contention.
	Weights map[string]float64
}

// Campaign lifecycle states, as surfaced by Status.State.
const (
	// StateQueued: accepted, waiting for admission.
	StateQueued = "queued"
	// StateRunning: admitted onto a pool and executing.
	StateRunning = "running"
	// StateDone: settled successfully; report and trace available.
	StateDone = "done"
	// StateFailed: settled with an error; report (if any) and trace
	// are still available — the evidence of a failed run is exactly
	// what post-mortems want.
	StateFailed = "failed"
	// StateCheckpointed: interrupted by daemon shutdown with a resume
	// checkpoint persisted; a restarted daemon re-admits it.
	StateCheckpointed = "checkpointed"
	// StateAborted: interrupted by daemon shutdown without a resumable
	// checkpoint (pattern-form campaigns have no stage barriers to
	// checkpoint).
	StateAborted = "aborted"
)

// Status is the wire view of one campaign's lifecycle.
type Status struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Pool   string `json:"pool,omitempty"`
	Error  string `json:"error,omitempty"`
	// Pipelines reports live progress for graph campaigns: the
	// always-on campaign tracker's latest stage-barrier snapshots.
	Pipelines []PipelineProgress `json:"pipelines,omitempty"`
}

// PipelineProgress is one pipeline's settled-barrier progress.
type PipelineProgress struct {
	Name          string        `json:"name"`
	SettledStages int           `json:"settled_stages"`
	Tasks         int           `json:"tasks"`
	Retries       int           `json:"retries"`
	Busy          time.Duration `json:"busy,omitempty"`
}

// ReportDoc is the wire form of a settled campaign's report: the
// campaign report for graph-form campaigns, the classic report for
// pattern-form ones.
type ReportDoc struct {
	ID       string               `json:"id"`
	Tenant   string               `json:"tenant"`
	Name     string               `json:"name,omitempty"`
	Campaign *entk.CampaignReport `json:"campaign,omitempty"`
	Pattern  *entk.Report         `json:"pattern,omitempty"`
}

// buildReportDoc renders a library result as the wire document. The
// service and the parity tests share it, so "byte-identical to the
// library run" is checked against the exact serialisation the daemon
// produces.
func buildReportDoc(id, tenant, name string, res *campaign.Result) *ReportDoc {
	doc := &ReportDoc{ID: id, Tenant: tenant, Name: name}
	if res != nil {
		doc.Campaign = res.Campaign
		doc.Pattern = res.Report
	}
	return doc
}
