package serve

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// admissionHarness drives the queue with jobs that start instantly and
// release only when the test says so, making dispatch order fully
// deterministic.
type admissionHarness struct {
	t      *testing.T
	starts chan string
	mu     sync.Mutex
	rels   []harnessRelease
}

type harnessRelease struct {
	tenant string
	fn     func()
}

func (ah *admissionHarness) job(tenant string) func(release func()) {
	return func(release func()) {
		ah.mu.Lock()
		ah.rels = append(ah.rels, harnessRelease{tenant, release})
		ah.mu.Unlock()
		ah.starts <- tenant
	}
}

func (ah *admissionHarness) nextStart() string {
	select {
	case t := <-ah.starts:
		return t
	case <-time.After(5 * time.Second):
		ah.t.Fatal("no job started within 5s")
		return ""
	}
}

// releaseOne settles the oldest in-flight job.
func (ah *admissionHarness) releaseOne() {
	ah.releaseTenant("")
}

// releaseTenant settles the oldest in-flight job of one tenant ("" for
// any tenant).
func (ah *admissionHarness) releaseTenant(tenant string) {
	ah.mu.Lock()
	idx := -1
	for i, r := range ah.rels {
		if tenant == "" || r.tenant == tenant {
			idx = i
			break
		}
	}
	if idx < 0 {
		ah.mu.Unlock()
		ah.t.Fatalf("no in-flight job of tenant %q to release", tenant)
		return
	}
	rel := ah.rels[idx].fn
	ah.rels = append(ah.rels[:idx], ah.rels[idx+1:]...)
	ah.mu.Unlock()
	rel()
}

// TestAdmissionWeights pins the weighted round sequence: tenants a
// (weight 2) and b (weight 1) each queue three campaigns with one
// global slot; the serve order must track the weights — a twice as
// often — not submission order.
func TestAdmissionWeights(t *testing.T) {
	a := newAdmission(map[string]float64{"a": 2, "b": 1}, 0, 1)
	ah := &admissionHarness{t: t, starts: make(chan string, 8)}
	for i := 0; i < 3; i++ {
		a.Submit("a", ah.job("a"))
	}
	for i := 0; i < 3; i++ {
		a.Submit("b", ah.job("b"))
	}
	var order []string
	order = append(order, ah.nextStart()) // a1 dispatched on first Submit
	for len(order) < 6 {
		ah.releaseOne()
		order = append(order, ah.nextStart())
	}
	ah.releaseOne()
	// a starts first (sole submitter at dispatch time); from there the
	// started/weight tiebreak alternates 2:1 until a's queue drains.
	want := []string{"a", "b", "a", "a", "b", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("start order = %v, want %v", order, want)
	}
}

// TestAdmissionCaps pins both caps: with a per-tenant cap of 2 and a
// global cap of 3, a tenant dumping five campaigns holds at most two
// slots, the daemon at most three, and everything still runs as slots
// free up — including the case where a freed slot admits nothing
// because the only tenant with backlog is at its own cap.
func TestAdmissionCaps(t *testing.T) {
	a := newAdmission(nil, 2, 3)
	ah := &admissionHarness{t: t, starts: make(chan string, 16)}
	for i := 0; i < 5; i++ {
		a.Submit("big", ah.job("big"))
	}
	for i := 0; i < 2; i++ {
		a.Submit("small", ah.job("small"))
	}
	started := map[string]int{}
	started[ah.nextStart()]++
	started[ah.nextStart()]++
	started[ah.nextStart()]++ // caps admit exactly 3: big, big, small
	if started["big"] != 2 || started["small"] != 1 {
		t.Fatalf("initial starts = %v, want big:2 small:1", started)
	}

	// In flight: big×2 (at cap), small×1. Queued: big×3, small×1.
	// A freed big slot goes to small first (lower inflight share).
	ah.releaseTenant("big")
	if got := ah.nextStart(); got != "small" {
		t.Fatalf("after big release: %q started, want small (fair share)", got)
	}
	// In flight: big×1, small×2. The next freed big slot re-admits big.
	ah.releaseTenant("big")
	if got := ah.nextStart(); got != "big" {
		t.Fatalf("after second big release: %q started, want big", got)
	}
	// Small settles both; its first freed slot admits big's backlog, the
	// second admits nothing — big holds one queued campaign but already
	// sits at its per-tenant cap.
	ah.releaseTenant("small")
	if got := ah.nextStart(); got != "big" {
		t.Fatalf("after small release: %q started, want big", got)
	}
	ah.releaseTenant("small")
	// In flight: big×2 (at cap), queue big×1: only a big release admits it.
	ah.releaseTenant("big")
	if got := ah.nextStart(); got != "big" {
		t.Fatalf("after third big release: %q started, want the last big campaign", got)
	}
	ah.releaseTenant("big")
	ah.releaseTenant("big")

	total, per := a.Peak()
	if total > 3 {
		t.Errorf("peak total in-flight = %d, want <= 3", total)
	}
	if per["big"] > 2 {
		t.Errorf("peak big in-flight = %d, want <= 2", per["big"])
	}
}
