// A pool is one shared simulation: a virtual clock plus the allocated
// ResourceSet that campaigns with the same resource signature run on.
//
// The daemon lives in wall-clock time but every pool runs in virtual
// time, and the two meet at exactly one seam: launching a campaign
// into the pool's simulation. Two invariants keep that seam safe.
//
// First, an idle pool's clock must not advance. The virtual clock
// advances whenever its runnable count drops to zero, and an allocated
// pool always has pending timers (the pilots' walltime expiries), so a
// pool with no campaigns would fast-forward to those timers and kill
// its own pilots between requests. The pool therefore attaches a
// phantom registered process the moment its last campaign finishes:
// with the phantom counted runnable (it is not a goroutine, only a
// registration), the count never reaches zero and the clock freezes at
// the instant the pool went idle.
//
// Second, the runnable count must never transiently hit zero during a
// launch. launch registers the new campaign process (v.Go) BEFORE
// detaching the phantom, so the handoff is count-neutral-or-positive
// at every step; the symmetric shutdown direction holds because the
// finishing campaign attaches the phantom from inside its own still-
// registered process, before that process deregisters.
//
// In-simulation waits use vclock primitives only: later campaigns wait
// for the first campaign's Allocate on a vclock.Event — a registered
// process parking on a plain Go channel would freeze the clock for
// everyone else.
//
// Real-mode pools run the same seam on the wall clock, where Attach/
// Detach are no-ops and time cannot be frozen: the phantom is harmless
// but an idle real pool's pilots keep burning walltime toward expiry.
// That is physics, not a bug — serve.Options.Mode documents it.

package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"entk"
	"entk/internal/campaign"
	"entk/internal/vclock"
)

// pool is one shared virtual clock + ResourceSet. Campaigns whose
// resource signature hashes to the same key share a pool; the first
// campaign to arrive allocates the set, later ones reuse it.
type pool struct {
	name  string // stable daemon-scoped label ("pool1", ...)
	key   string // canonical resource signature
	v     entk.Clock
	opts  campaign.Options
	ready *vclock.Event // fired once the first campaign's Allocate settled

	mu       sync.Mutex
	rs       *entk.ResourceSet // nil until the first Allocate succeeds
	allocErr error             // sticky: a pool whose Allocate failed stays broken
	started  bool              // a first campaign has been launched
	active   int               // campaigns launched and not yet finished
	idle     bool              // phantom currently attached
}

// poolSignature is the canonical identity of a pool: everything that
// is fixed per ResourceSet. Two campaigns land on the same pool iff
// these all match — placement and retry budget are set on the
// set/config once, and the simulation substrate is per clock.
type poolSignature struct {
	Resource    string           `json:"resource,omitempty"`
	Cores       int              `json:"cores,omitempty"`
	WalltimeMin int              `json:"walltime_min,omitempty"`
	Resources   []campaign.Pilot `json:"resources,omitempty"`
	Placement   string           `json:"placement,omitempty"`
	MaxRetries  int              `json:"max_retries,omitempty"`
	Engine      string           `json:"engine"`
	Layout      string           `json:"layout"`
	Mode        string           `json:"mode,omitempty"`
}

// poolKey canonicalises a campaign's resource signature.
func poolKey(c *campaign.Campaign, opts campaign.Options) string {
	sig := poolSignature{
		Resource:    c.Resource,
		Cores:       c.Cores,
		WalltimeMin: c.WalltimeMin,
		Resources:   c.Resources,
		Placement:   c.Placement,
		Engine:      opts.Engine.String(),
		Layout:      opts.Layout.String(),
	}
	if opts.Mode == campaign.ModeReal {
		sig.Mode = opts.Mode.String()
	}
	if c.Runtime != nil {
		sig.MaxRetries = c.Runtime.MaxRetries
	}
	b, err := json.Marshal(sig)
	if err != nil {
		// The signature is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: pool signature: %v", err))
	}
	return string(b)
}

func newPool(name, key string, opts campaign.Options) *pool {
	v := opts.NewClock()
	return &pool{
		name:  name,
		key:   key,
		v:     v,
		opts:  opts,
		ready: vclock.NewEvent(v, "pool "+name+" allocated"),
	}
}

// launch runs body as a campaign process of the pool's simulation. The
// first launch builds and allocates the ResourceSet from c (so a fresh
// pool replays campaign.Run's exact Allocate sequence from t=0 —
// that is what makes the first campaign's report byte-identical to a
// library run); later launches wait for that allocation and reuse the
// set. body receives the allocated set, or the sticky allocation
// error. launch may be called from any wall-clock goroutine.
func (p *pool) launch(c *campaign.Campaign, body func(rs *entk.ResourceSet, err error)) {
	p.mu.Lock()
	first := !p.started
	p.started = true
	wasIdle := p.idle
	p.idle = false
	p.active++
	p.mu.Unlock()

	p.v.Go(func() {
		defer p.finish()
		if first {
			rs, err := c.Bind(p.v, p.opts)
			if err == nil {
				err = rs.Allocate()
			}
			p.mu.Lock()
			if err != nil {
				p.allocErr = fmt.Errorf("serve: pool %s allocation: %w", p.name, err)
			} else {
				p.rs = rs
			}
			p.mu.Unlock()
			p.ready.Fire()
		} else {
			p.ready.Wait()
		}
		p.mu.Lock()
		rs, err := p.rs, p.allocErr
		p.mu.Unlock()
		body(rs, err)
	})
	if wasIdle {
		// The new process is already counted runnable; dropping the
		// phantom now can never zero the count.
		p.v.Detach()
	}
}

// finish is the launched process's last act (before its own
// deregistration): when the pool just went idle it attaches the
// phantom, freezing the clock at the current instant until the next
// launch.
func (p *pool) finish() {
	p.mu.Lock()
	p.active--
	if p.active == 0 {
		p.v.Attach()
		p.idle = true
	}
	p.mu.Unlock()
}

// set returns the allocated ResourceSet, nil before the first
// Allocate settles (or forever on a broken pool).
func (p *pool) set() *entk.ResourceSet {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rs
}
