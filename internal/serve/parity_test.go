package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"entk"
	"entk/internal/campaign"
)

// declarativeExample is the committed two-machine example campaign —
// the same file the e2e CI smoke submits through entk-cli.
const declarativeExample = "../../examples/declarative/campaign.json"

// TestServeLibraryParity is the service↔library acceptance gate: the
// example campaign submitted over HTTP against a loopback daemon must
// yield a report byte-identical to the same JSON run via campaign.Run,
// on both clock engines. This holds because a fresh pool's first
// campaign replays the library driver's exact sequence (Bind →
// Allocate → AppManager.Run from t=0) — the service layer adds no
// virtual-time perturbation.
func TestServeLibraryParity(t *testing.T) {
	raw, err := os.ReadFile(declarativeExample)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []entk.ClockEngine{entk.EngineHandoff, entk.EngineRef} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			// Library run.
			c, err := campaign.Parse(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			res, err := campaign.Run(c, campaign.Options{Engine: eng})
			if err != nil {
				t.Fatalf("library run: %v", err)
			}
			want, err := json.Marshal(buildReportDoc("c0001", "default", c.Name, res))
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n') // the handler's json.Encoder framing

			// Service run over loopback HTTP.
			o, err := New(Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(NewHandler(o))
			defer ts.Close()
			resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated || st.ID != "c0001" {
				t.Fatalf("submit: status %d id %q, want 201 c0001", resp.StatusCode, st.ID)
			}
			if err := o.Wait(st.ID); err != nil {
				t.Fatal(err)
			}
			resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/report")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var got bytes.Buffer
			if _, err := got.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("report: status %d body %s", resp.StatusCode, got.Bytes())
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("service report diverges from library run:\nservice %s\nlibrary %s",
					got.Bytes(), want)
			}
		})
	}
}

// TestServePatternCampaign covers the pattern-form path end to end:
// submitted over HTTP, a classic eop campaign settles and reports the
// same bytes as the library driver.
func TestServePatternCampaign(t *testing.T) {
	raw := []byte(`{
	  "name": "classic",
	  "resource": "xsede.comet", "cores": 16, "walltime_min": 60,
	  "pattern": {"type": "eop", "pipelines": 4, "stages": [
	    {"name": "misc.mkfile", "params": {"size_mb": 10}},
	    {"name": "misc.ccount", "params": {"size_mb": 10}}
	  ]}
	}`)
	c, err := campaign.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(c, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(buildReportDoc("c0001", "alice", "classic", res))
	want = append(want, '\n')

	o, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := o.Submit("alice", raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "classic" {
		t.Errorf("status name = %q, want the campaign's label", st.Name)
	}
	if err := o.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	doc, err := o.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(doc)
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("pattern report diverges:\nservice %s\nlibrary %s", got, want)
	}
}
