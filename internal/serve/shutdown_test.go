package serve

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"entk"
	"entk/internal/campaign"
)

// shutdownCampaign is an eight-stage, single-pipeline graph campaign:
// wide enough that a daemon shutdown lands mid-run, single-pipeline so
// the report's first-occurrence phase order is deterministic.
const shutdownCampaign = `{
  "name": "shutdown-gate",
  "resource": "xsede.comet", "cores": 16, "walltime_min": 600,
  "pipelines": [{"name": "long", "stages": [
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 8}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 7}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 6}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 5}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 4}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 3}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 2}}}]},
    {"tasks": [{"count": 256, "kernel": {"name": "misc.sleep", "params": {"seconds": 1}}}]}
  ]}]
}`

const queuedCampaign = `{
  "name": "queued-at-shutdown",
  "resource": "xsede.comet", "cores": 16, "walltime_min": 600,
  "pipelines": [{"name": "short", "stages": [
    {"tasks": [{"count": 4, "kernel": {"name": "misc.sleep", "params": {"seconds": 2}}}]}
  ]}]
}`

// phaseProj is the reorder-invariant view of a phase list: the
// timeline-position column (Span) is dropped, everything independent of
// when the work ran is kept.
type phaseProj struct {
	Name        string
	Busy        time.Duration
	Tasks       int
	Occurrences int
}

type pipeProj struct {
	Tasks, Retries, PlannedTasks int
	Phases                       []phaseProj
}

// invariantView projects a campaign report onto its reorder-invariant
// columns — the ones a checkpoint/resume cycle must preserve exactly.
func invariantView(r *entk.CampaignReport) (camp pipeProj, pipes []pipeProj) {
	proj := func(rep *entk.Report) pipeProj {
		p := pipeProj{Tasks: rep.Tasks, Retries: rep.Retries, PlannedTasks: rep.PlannedTasks}
		for _, ph := range rep.Phases {
			p.Phases = append(p.Phases, phaseProj{ph.Name, ph.Busy, ph.Tasks, ph.Occurrences})
		}
		return p
	}
	camp = proj(r.Campaign)
	for _, pl := range r.Pipelines {
		pipes = append(pipes, proj(pl))
	}
	return camp, pipes
}

// TestShutdownResume is the graceful-shutdown acceptance gate: a daemon
// is shut down while a graph campaign is mid-run, the campaign is
// checkpointed into the state directory, and a restarted daemon resumes
// it to a report that agrees with an uninterrupted library run on every
// reorder-invariant column. A second campaign held in the admission
// queue by the global cap must survive the restart as well (fresh
// re-admission). The gate holds no matter where the wall-clock race
// lands the shutdown — checkpointed mid-run, still queued, or already
// done — because the resumed executor seeds its counters from the
// checkpoint; the test only logs which path it exercised.
func TestShutdownResume(t *testing.T) {
	// Baseline: the uninterrupted library run of the same description.
	c, err := campaign.Parse(strings.NewReader(shutdownCampaign))
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(c, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantCamp, wantPipes := invariantView(res.Campaign)

	dir := t.TempDir()
	opts := Options{StateDir: dir, MaxInFlight: 1}
	o1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := o1.Submit("ops", []byte(shutdownCampaign))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := o1.Submit("ops", []byte(queuedCampaign))
	if err != nil {
		t.Fatal(err)
	}

	// Let the first campaign get properly under way — at least one
	// settled stage barrier — then pull the plug. If the simulation
	// outruns the poll the campaign is simply done, which the gate also
	// covers.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := o1.Status(st1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued && st.State != StateRunning {
			break
		}
		if st.State == StateRunning && len(st.Pipelines) > 0 && st.Pipelines[0].SettledStages >= 1 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := o1.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st, err := o1.Status(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shutdown caught %s in state %q", st1.ID, st.State)
	if _, err := o1.Submit("ops", []byte(queuedCampaign)); err != ErrClosed {
		t.Errorf("submit after shutdown: err = %v, want ErrClosed", err)
	}

	// Restart on the same state directory: the checkpointed campaign is
	// re-admitted and resumed, the queued one re-admitted from scratch.
	o2, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		if err := o2.Wait(id); err != nil {
			t.Fatal(err)
		}
		st, err := o2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("after restart, %s: state %q error %q, want done", id, st.State, st.Error)
		}
	}

	doc, err := o2.Report(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Campaign == nil {
		t.Fatal("resumed report has no campaign section")
	}
	gotCamp, gotPipes := invariantView(doc.Campaign)
	if !reflect.DeepEqual(gotCamp, wantCamp) {
		t.Errorf("campaign projection diverges from uninterrupted baseline:\nresumed  %+v\nbaseline %+v",
			gotCamp, wantCamp)
	}
	if !reflect.DeepEqual(gotPipes, wantPipes) {
		t.Errorf("pipeline projections diverge from uninterrupted baseline:\nresumed  %+v\nbaseline %+v",
			gotPipes, wantPipes)
	}
}
