package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"entk"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// liveCampaign is deliberately huge (18k tasks): its simulation takes
// long enough in wall-clock terms that HTTP requests fired right after
// submission reliably land mid-run.
const liveCampaign = `{
  "name": "live-probe",
  "resource": "xsede.comet", "cores": 64, "walltime_min": 6000,
  "pipelines": [{"name": "live", "stages": [
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 12}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 11}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 10}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 9}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 8}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 7}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 6}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 5}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 4}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 3}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 2}}}]},
    {"tasks": [{"count": 1500, "kernel": {"name": "misc.sleep", "params": {"seconds": 1}}}]}
  ]}]
}`

// TestLiveEndpoints exercises the mid-run observability surface over
// real HTTP: while a campaign executes, /report answers 202 with the
// live status, POST /checkpoint streams a loadable ENTKCKPT document,
// and /trace streams a parseable ENTKPROF snapshot of the live session.
// None of them block on the running campaign.
func TestLiveEndpoints(t *testing.T) {
	o, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(o))
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Post(ts.URL+"/v1/campaigns", "application/json",
		bytes.NewReader([]byte(liveCampaign)))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// /report immediately after submit: the 18k-task campaign cannot
	// have settled yet, so the endpoint must answer 202 with the live
	// status rather than blocking until completion.
	resp, err = client.Get(ts.URL + "/v1/campaigns/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("mid-run report: status %d, want 202", resp.StatusCode)
	}
	var live Status
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatalf("mid-run report body: %v", err)
	}
	resp.Body.Close()
	if live.ID != st.ID || (live.State != StateQueued && live.State != StateRunning) {
		t.Errorf("mid-run report status = %+v, want queued/running %s", live, st.ID)
	}

	// POST /checkpoint: 409 until the campaign holds live simulation
	// state, then an ENTKCKPT stream that LoadCheckpoint accepts. The
	// endpoint also works on a settled campaign (the tracker keeps its
	// final barrier state), so polling past the 409s always converges.
	var ckpt []byte
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = client.Post(ts.URL+"/v1/campaigns/"+st.ID+"/checkpoint", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ckpt = body.Bytes()
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("checkpoint: status %d body %s", resp.StatusCode, body.Bytes())
		}
		time.Sleep(200 * time.Microsecond)
	}
	if ckpt == nil {
		t.Fatal("checkpoint endpoint never answered 200")
	}
	cp, err := entk.LoadCheckpoint(bytes.NewReader(ckpt), nil)
	if err != nil {
		t.Fatalf("checkpoint stream does not load: %v", err)
	}
	if cp.Pipeline("live") == nil {
		t.Error("checkpoint lost the campaign's pipeline")
	}

	// /trace: a live snapshot in ENTKPROF format, parseable by an empty
	// profiler. Poll past the pre-launch 409 window.
	var trace []byte
	for time.Now().Before(deadline) {
		resp, err = client.Get(ts.URL + "/v1/campaigns/" + st.ID + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			trace = body.Bytes()
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("trace: status %d body %s", resp.StatusCode, body.Bytes())
		}
		time.Sleep(200 * time.Microsecond)
	}
	if trace == nil {
		t.Fatal("trace endpoint never answered 200")
	}
	into := profile.New(vclock.NewVirtual())
	if _, err := into.ReadFrom(bytes.NewReader(trace)); err != nil {
		t.Fatalf("trace stream does not parse: %v", err)
	}
	if into.EventCount() == 0 {
		t.Error("trace snapshot is empty")
	}

	// Let the campaign settle; the same endpoints now serve the final
	// report and the full trace.
	if err := o.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(ts.URL + "/v1/campaigns/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("settled report: status %d", resp.StatusCode)
	}
	var doc ReportDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Campaign == nil || doc.Campaign.Campaign.Tasks == 0 {
		t.Errorf("settled report looks empty: %+v", doc)
	}

	// Unknown ids are 404 everywhere.
	resp, err = client.Get(ts.URL + "/v1/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
}
