// The HTTP/JSON surface. Versioned under /v1; tenants identify
// themselves with the X-Entk-Tenant header (missing means "default").
//
//	POST /v1/campaigns                 submit a campaign JSON, returns its status (201)
//	GET  /v1/campaigns                 list campaigns (submission order)
//	GET  /v1/campaigns/{id}            status; live per-pipeline progress while running
//	GET  /v1/campaigns/{id}/report     settled report JSON (202 + status while running)
//	GET  /v1/campaigns/{id}/trace      ENTKPROF dump (live snapshot while running)
//	POST /v1/campaigns/{id}/checkpoint on-demand ENTKCKPT stream (graph campaigns)
//
// The report and trace endpoints never block on a running campaign:
// trace serves a consistent point-in-time snapshot of the live session
// (profile.Snapshot), and report answers 202 with the live progress
// status until the campaign settles.

package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxCampaignBytes bounds a submitted description; the schema's own
// expansion caps bound what a description this size can cost.
const maxCampaignBytes = 8 << 20

// NewHandler returns the daemon's HTTP handler over the orchestrator.
func NewHandler(o *Orchestrator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxCampaignBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(raw) > maxCampaignBytes {
			writeError(w, http.StatusRequestEntityTooLarge,
				errors.New("serve: campaign description exceeds 8 MiB"))
			return
		}
		st, err := o.Submit(tenantOf(r), raw)
		if err != nil {
			writeError(w, submitCode(err), err)
			return
		}
		writeJSONResponse(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, o.List())
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := o.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, errCode(err), err)
			return
		}
		writeJSONResponse(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		doc, err := o.Report(id)
		if errors.Is(err, ErrNotSettled) {
			// Not ready: answer with the live progress instead of
			// blocking the request on the campaign.
			st, serr := o.Status(id)
			if serr != nil {
				writeError(w, errCode(serr), serr)
				return
			}
			writeJSONResponse(w, http.StatusAccepted, st)
			return
		}
		if err != nil {
			writeError(w, errCode(err), err)
			return
		}
		writeJSONResponse(w, http.StatusOK, doc)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := o.Trace(r.PathValue("id"), w); err != nil {
			// Headers may be gone already for a mid-stream error; this
			// covers the not-found / not-running cases, which fail
			// before the first byte.
			writeError(w, errCode(err), err)
		}
	})

	mux.HandleFunc("POST /v1/campaigns/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := o.CheckpointTo(r.PathValue("id"), w); err != nil {
			writeError(w, errCode(err), err)
		}
	})

	return mux
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Entk-Tenant"); t != "" {
		return t
	}
	return "default"
}

func submitCode(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest // parse/validation errors
}

func errCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNotSettled), errors.Is(err, ErrNotRunning),
		errors.Is(err, ErrNotCheckpointable):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSONResponse(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSONResponse(w, code, map[string]string{"error": err.Error()})
}
