// The orchestrator: tenant sessions → running campaigns → shared
// pools. It owns the campaign registry (ids, lifecycle states, results),
// the pool table (shared ResourceSets keyed by resource signature), the
// admission queue, and — through state.go — the persistence that
// decouples campaign lifetime from daemon lifetime.

package serve

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"entk"
	"entk/internal/campaign"
	"entk/internal/realtime"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotFound: no campaign with that id.
	ErrNotFound = fmt.Errorf("serve: no such campaign")
	// ErrNotSettled: the campaign has not reached a terminal state yet
	// (report requested mid-run).
	ErrNotSettled = fmt.Errorf("serve: campaign not settled yet")
	// ErrNotRunning: the campaign holds no live simulation state
	// (trace or checkpoint requested before launch or after restart).
	ErrNotRunning = fmt.Errorf("serve: campaign not running")
	// ErrNotCheckpointable: pattern-form campaigns have no stage
	// barriers to checkpoint.
	ErrNotCheckpointable = fmt.Errorf("serve: campaign is not checkpointable")
	// ErrClosed: the daemon is shutting down.
	ErrClosed = fmt.Errorf("serve: daemon shutting down")
)

// handle is the orchestrator's view of one campaign: submission data,
// lifecycle state, and (once launched) the live simulation handles the
// trace/checkpoint endpoints read through.
type handle struct {
	id     string
	tenant string
	name   string
	raw    []byte // the submitted JSON, persisted verbatim
	spec   *campaign.Campaign
	resume *entk.CampaignCheckpoint // non-nil for restored campaigns

	mu       sync.Mutex
	state    string
	errText  string
	pool     *pool
	rs       *entk.ResourceSet
	am       *entk.AppManager // graph campaigns only, set before Run
	result   *campaign.Result
	fromDisk bool // terminal state restored from the state dir
	done     chan struct{}
}

func (h *handle) snapshotStatus() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Status{ID: h.id, Tenant: h.tenant, Name: h.name, State: h.state, Error: h.errText}
	if h.pool != nil {
		st.Pool = h.pool.name
	}
	if h.am != nil {
		// The always-on campaign tracker: live (and final) per-pipeline
		// progress at the last settled stage barriers.
		for _, pc := range h.am.Checkpoint().Pipelines {
			prog := PipelineProgress{Name: pc.Name, SettledStages: pc.SettledStages,
				Tasks: pc.Tasks, Retries: pc.Retries}
			for _, ph := range pc.Phases {
				prog.Busy += ph.Busy
			}
			st.Pipelines = append(st.Pipelines, prog)
		}
	}
	return st
}

// Orchestrator is the daemon's core: it accepts campaigns, admits them
// fairly, runs them on shared pools, and persists their lifecycle.
type Orchestrator struct {
	opts Options
	adm  *admission
	// runner is the daemon-wide local process executor in real mode
	// (nil in sim mode): one executor shared by every pool, so teardown
	// reaping is a single Close at shutdown.
	runner *realtime.Executor

	mu          sync.Mutex
	pools       map[string]*pool
	campaigns   map[string]*handle
	order       []string // ids in submission order
	completions []string // ids in completion order (fairness evidence)
	seq         int
	closed      bool
}

// New builds an orchestrator. With a state directory configured it
// restores persisted campaigns first: terminal ones become queryable
// again, checkpointed ones are re-admitted and resumed, queued ones
// are re-admitted from scratch.
func New(opts Options) (*Orchestrator, error) {
	o := &Orchestrator{
		opts:      opts,
		adm:       newAdmission(opts.Weights, opts.TenantCap, opts.MaxInFlight),
		pools:     make(map[string]*pool),
		campaigns: make(map[string]*handle),
	}
	if opts.Mode == campaign.ModeReal {
		ex, err := realtime.New(realtime.Config{Dir: opts.RealDir})
		if err != nil {
			return nil, err
		}
		o.runner = ex
	}
	if err := o.restore(); err != nil {
		if o.runner != nil {
			o.runner.Close()
		}
		return nil, err
	}
	return o, nil
}

// RunnerDir returns the real-mode capture directory ("" in sim mode).
func (o *Orchestrator) RunnerDir() string {
	if o.runner == nil {
		return ""
	}
	return o.runner.Dir()
}

// Submit parses, validates, registers, and enqueues one campaign,
// returning its initial status. The campaign runs on after Submit
// returns; poll Status (or Wait) for progress.
func (o *Orchestrator) Submit(tenant string, raw []byte) (Status, error) {
	c, err := campaign.Parse(bytes.NewReader(raw))
	if err != nil {
		return Status{}, err
	}
	if tenant == "" {
		tenant = "default"
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return Status{}, ErrClosed
	}
	o.seq++
	h := &handle{
		id:     fmt.Sprintf("c%04d", o.seq),
		tenant: tenant,
		name:   c.Name,
		raw:    append([]byte(nil), raw...),
		spec:   c,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	o.campaigns[h.id] = h
	o.order = append(o.order, h.id)
	o.mu.Unlock()

	o.persistSubmission(h)
	o.enqueue(h)
	return h.snapshotStatus(), nil
}

// enqueue hands the handle to admission; shared by Submit and restore.
func (o *Orchestrator) enqueue(h *handle) {
	o.adm.Submit(h.tenant, func(release func()) { o.launch(h, release) })
}

// poolFor returns (building if needed) the shared pool matching the
// campaign's resource signature.
func (o *Orchestrator) poolFor(c *campaign.Campaign) *pool {
	opts := campaign.Options{Engine: o.opts.Engine, Layout: o.opts.Layout,
		Mode: o.opts.Mode, Runner: o.runner}
	key := poolKey(c, opts)
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.pools[key]
	if !ok {
		p = newPool(fmt.Sprintf("pool%d", len(o.pools)+1), key, opts)
		o.pools[key] = p
	}
	return p
}

// launch runs the campaign on its pool. Called by admission on a
// wall-clock goroutine once a fair-share slot frees up.
func (o *Orchestrator) launch(h *handle, release func()) {
	p := o.poolFor(h.spec)
	h.mu.Lock()
	if h.state == StateQueued {
		h.state = StateRunning
	}
	h.pool = p
	h.mu.Unlock()

	p.launch(h.spec, func(rs *entk.ResourceSet, err error) {
		if err != nil {
			o.settle(h, nil, err, release)
			return
		}
		h.mu.Lock()
		h.rs = rs
		var am *entk.AppManager
		if h.spec.Pattern == nil {
			am = entk.NewAppManager(rs)
			h.am = am
		}
		h.mu.Unlock()

		res := &campaign.Result{Prof: rs.Session().Prof}
		var runErr error
		switch {
		case h.resume != nil:
			res.Campaign, runErr = am.Resume(h.resume, h.spec.GraphPipelines()...)
		case h.spec.Pattern != nil:
			res.Report, runErr = rs.Run(h.spec.LegacyPattern())
		default:
			res.Campaign, runErr = am.Run(h.spec.GraphPipelines()...)
		}
		o.settle(h, res, runErr, release)
	})
}

// settle records a campaign's terminal state. It runs inside the
// pool's simulation process (its last act before the pool idles), so
// everything here must stay wall-clock-light and must not block on
// vclock primitives of other pools.
func (o *Orchestrator) settle(h *handle, res *campaign.Result, err error, release func()) {
	h.mu.Lock()
	h.result = res
	interrupted := h.state == StateCheckpointed || h.state == StateAborted
	if !interrupted {
		if err != nil {
			h.state = StateFailed
			h.errText = err.Error()
		} else {
			h.state = StateDone
		}
	}
	h.mu.Unlock()

	o.mu.Lock()
	closed := o.closed
	if !closed && !interrupted {
		o.completions = append(o.completions, h.id)
	}
	o.mu.Unlock()
	if !closed && !interrupted {
		o.persistTerminal(h)
	}
	close(h.done)
	release()
}

// Status returns one campaign's current status.
func (o *Orchestrator) Status(id string) (Status, error) {
	h, err := o.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return h.snapshotStatus(), nil
}

// List returns every campaign's status in submission order.
func (o *Orchestrator) List() []Status {
	o.mu.Lock()
	ids := append([]string(nil), o.order...)
	o.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if st, err := o.Status(id); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// CompletionOrder returns the ids of settled campaigns in the order
// they completed — the fairness tests' interleaving evidence.
func (o *Orchestrator) CompletionOrder() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.completions...)
}

// Wait blocks until the campaign reaches a terminal state.
func (o *Orchestrator) Wait(id string) error {
	h, err := o.lookup(id)
	if err != nil {
		return err
	}
	<-h.done
	return nil
}

// Report returns the settled campaign's report document. ErrNotSettled
// while the campaign is still queued or running.
func (o *Orchestrator) Report(id string) (*ReportDoc, error) {
	h, err := o.lookup(id)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case StateDone, StateFailed:
	default:
		return nil, ErrNotSettled
	}
	if h.fromDisk {
		return o.loadReport(h)
	}
	return buildReportDoc(h.id, h.tenant, h.name, h.result), nil
}

// Trace streams the campaign's trace as an ENTKPROF dump: the live
// session trace of the pool the campaign runs on (a consistent
// point-in-time snapshot — Record keeps running), or the persisted
// trace for campaigns restored from the state directory. The trace is
// per pool session: campaigns sharing a pool share a timeline.
func (o *Orchestrator) Trace(id string, w io.Writer) error {
	h, err := o.lookup(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	rs, fromDisk := h.rs, h.fromDisk
	h.mu.Unlock()
	if fromDisk {
		return o.copyTrace(h, w)
	}
	if rs == nil {
		return ErrNotRunning
	}
	_, err = rs.Session().Prof.Snapshot().WriteTo(w)
	return err
}

// CheckpointTo takes an on-demand checkpoint of a running (or settled)
// graph campaign and streams it — resume state plus a snapshot of the
// session trace — in SaveCheckpoint's ENTKCKPT format.
func (o *Orchestrator) CheckpointTo(id string, w io.Writer) error {
	h, err := o.lookup(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	am, rs := h.am, h.rs
	h.mu.Unlock()
	if h.spec != nil && h.spec.Pattern != nil {
		return ErrNotCheckpointable
	}
	if am == nil || rs == nil {
		return ErrNotRunning
	}
	return entk.SaveCheckpoint(w, am.Checkpoint(), rs.Session().Prof.Snapshot())
}

// PeakInFlight exposes the admission queue's observed peaks (tests).
func (o *Orchestrator) PeakInFlight() (total int, perTenant map[string]int) {
	return o.adm.Peak()
}

func (o *Orchestrator) lookup(id string) (*handle, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.campaigns[id]
	if !ok {
		return nil, ErrNotFound
	}
	return h, nil
}

// Shutdown closes the daemon gracefully: no new submissions are
// accepted, every in-flight graph campaign is checkpointed (state plus
// trace snapshot) into the state directory for a restarted daemon to
// resume, queued campaigns are persisted for fresh re-admission, and
// non-resumable in-flight work is marked aborted. The pools' simulations
// are left to wind down on their own — the checkpoint is barrier-
// granular, so whatever settles after it is simply re-done on resume.
func (o *Orchestrator) Shutdown() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	ids := append([]string(nil), o.order...)
	o.mu.Unlock()

	sort.Strings(ids)
	var firstErr error
	for _, id := range ids {
		h, err := o.lookup(id)
		if err != nil {
			continue
		}
		if err := o.interrupt(h); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.runner != nil {
		// Reap every live process group: no orphans survive the daemon.
		o.runner.Close()
	}
	return firstErr
}

// interrupt checkpoints or parks one campaign at shutdown.
func (o *Orchestrator) interrupt(h *handle) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case StateQueued:
		// Never launched: persist for fresh re-admission.
		return o.persistMetaLocked(h)
	case StateRunning:
		switch {
		case h.am != nil:
			if err := o.persistCheckpointLocked(h, h.am.Checkpoint()); err != nil {
				return err
			}
			h.state = StateCheckpointed
		case h.spec != nil && h.spec.Pattern == nil:
			// A graph campaign caught before its AppManager existed
			// (still allocating): nothing ran, re-admit from scratch.
			h.state = StateQueued
		default:
			// Pattern campaigns have no stage barriers to checkpoint.
			h.state = StateAborted
			h.errText = "interrupted by daemon shutdown"
		}
		return o.persistMetaLocked(h)
	}
	return nil
}
