package serve

import (
	"fmt"
	"testing"
)

// smallCampaign is a one-pilot graph campaign small enough to run in
// milliseconds; every instance shares one resource signature, so all
// of them land on one pool (one shared ResourceSet and batcher).
func smallCampaign(tenant string, n int) []byte {
	return []byte(fmt.Sprintf(`{
	  "name": "%s-%d",
	  "resource": "xsede.comet", "cores": 8, "walltime_min": 600,
	  "pipelines": [{"name": "%s%d", "stages": [
	    {"tasks": [{"count": 24, "kernel": {"name": "misc.sleep", "params": {"seconds": 5}}}]},
	    {"tasks": [{"count": 16, "kernel": {"name": "misc.sleep", "params": {"seconds": 3}}}]},
	    {"tasks": [{"count": 8, "kernel": {"name": "misc.sleep", "params": {"seconds": 2}}}]}
	  ]}]
	}`, tenant, n, tenant, n))
}

// TestFairShareThreeTenants is the starvation gate: three tenants each
// submit three campaigns back to back — tenant a's full backlog lands
// before b's, b's before c's — onto one shared resource set, with one
// in-flight campaign allowed per tenant. Everything must settle, the
// per-tenant cap must hold, and the completion order must interleave
// the tenants round by round (a FIFO queue would finish all of a
// before b ever started).
func TestFairShareThreeTenants(t *testing.T) {
	o, err := New(Options{TenantCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"a", "b", "c"}
	owner := map[string]string{} // campaign id -> tenant
	var ids []string
	for _, tn := range tenants { // staggered: a,a,a, b,b,b, c,c,c
		for i := 0; i < 3; i++ {
			st, err := o.Submit(tn, smallCampaign(tn, i))
			if err != nil {
				t.Fatal(err)
			}
			owner[st.ID] = tn
			ids = append(ids, st.ID)
		}
	}
	for _, id := range ids {
		if err := o.Wait(id); err != nil {
			t.Fatal(err)
		}
	}

	pools := map[string]bool{}
	for _, id := range ids {
		st, err := o.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("campaign %s (%s): state %s error %q, want done",
				id, st.Tenant, st.State, st.Error)
		}
		pools[st.Pool] = true
	}
	if len(pools) != 1 {
		t.Fatalf("campaigns spread over %d pools %v, want one shared resource set", len(pools), pools)
	}

	if _, per := o.PeakInFlight(); per["a"] > 1 || per["b"] > 1 || per["c"] > 1 {
		t.Errorf("per-tenant in-flight peaks %v exceed the cap of 1", per)
	}

	done := o.CompletionOrder()
	if len(done) != 9 {
		t.Fatalf("completion order has %d entries, want 9: %v", len(done), done)
	}
	// Round-robin rounds: campaigns of one round finish at the same
	// virtual instant (identical workloads started together), so the
	// order within a round is scheduling luck — assert the SET of each
	// boundary round instead. A starving queue would put three of one
	// tenant first.
	distinct := func(seg []string) bool {
		seen := map[string]bool{}
		for _, id := range seg {
			seen[owner[id]] = true
		}
		return len(seen) == len(seg)
	}
	if !distinct(done[:3]) {
		t.Errorf("first three completions %v are not three distinct tenants (starvation)", done[:3])
	}
	if !distinct(done[6:]) {
		t.Errorf("last three completions %v are not three distinct tenants", done[6:])
	}
	// Each tenant's own campaigns must still finish in its submission
	// order (per-tenant FIFO).
	last := map[string]string{}
	for _, id := range done {
		tn := owner[id]
		if prev, ok := last[tn]; ok && id < prev {
			t.Errorf("tenant %s completed %s after %s (per-tenant FIFO broken)", tn, id, prev)
		}
		last[tn] = id
	}
}
