// Persistence: what decouples campaign lifetime from daemon lifetime.
// Each campaign owns one directory under <StateDir>/campaigns/<id>/:
//
//	campaign.json   the submitted description, verbatim
//	meta.json       id, tenant, name, lifecycle state, error
//	report.json     the ReportDoc, written when the campaign settles
//	trace.bin       ENTKPROF dump of the session trace at settlement
//	checkpoint.bin  ENTKCKPT resume state + trace, written at shutdown
//
// A restarted daemon rebuilds its registry from these directories:
// terminal campaigns become queryable again (report and trace served
// from the files), checkpointed ones are re-admitted and resumed, and
// queued ones re-enter admission from scratch.

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"entk"
	"entk/internal/campaign"
	"entk/internal/profile"
)

type metaDoc struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
}

func (o *Orchestrator) campaignDir(id string) string {
	return filepath.Join(o.opts.StateDir, "campaigns", id)
}

func writeJSON(path string, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// persistSubmission writes the spec and initial meta; a daemon killed
// before the campaign settles can then at least re-admit it.
func (o *Orchestrator) persistSubmission(h *handle) {
	if o.opts.StateDir == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	o.persistSubmissionLocked(h)
}

func (o *Orchestrator) persistSubmissionLocked(h *handle) {
	dir := o.campaignDir(h.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(dir, "campaign.json"), h.raw, 0o644)
	_ = o.persistMetaLocked(h)
}

func (o *Orchestrator) persistMetaLocked(h *handle) error {
	if o.opts.StateDir == "" {
		return nil
	}
	dir := o.campaignDir(h.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "meta.json"), metaDoc{
		ID: h.id, Tenant: h.tenant, Name: h.name, State: h.state, Error: h.errText,
	})
}

// persistTerminal writes meta, report, and trace for a settled
// campaign. Runs inside the pool's simulation process, so the trace is
// snapshotted (other campaigns may still be recording on the session).
func (o *Orchestrator) persistTerminal(h *handle) {
	if o.opts.StateDir == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := o.persistMetaLocked(h); err != nil {
		return
	}
	dir := o.campaignDir(h.id)
	_ = writeJSON(filepath.Join(dir, "report.json"),
		buildReportDoc(h.id, h.tenant, h.name, h.result))
	if h.result != nil && h.result.Prof != nil {
		if f, err := os.Create(filepath.Join(dir, "trace.bin")); err == nil {
			_, _ = h.result.Prof.Snapshot().WriteTo(f)
			_ = f.Close()
		}
	}
}

// persistCheckpointLocked writes the shutdown checkpoint: resume state
// plus a snapshot of the session trace so far. h.mu is held.
func (o *Orchestrator) persistCheckpointLocked(h *handle, cp *entk.CampaignCheckpoint) error {
	if o.opts.StateDir == "" {
		return fmt.Errorf("serve: no state directory to checkpoint into")
	}
	dir := o.campaignDir(h.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "checkpoint.bin"))
	if err != nil {
		return err
	}
	var prof *profile.Profiler
	if h.rs != nil {
		prof = h.rs.Session().Prof.Snapshot()
	}
	err = entk.SaveCheckpoint(f, cp, prof)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadReport reads a restored campaign's persisted report. h.mu is held.
func (o *Orchestrator) loadReport(h *handle) (*ReportDoc, error) {
	b, err := os.ReadFile(filepath.Join(o.campaignDir(h.id), "report.json"))
	if err != nil {
		return nil, fmt.Errorf("serve: campaign %s report: %w", h.id, err)
	}
	doc := &ReportDoc{}
	if err := json.Unmarshal(b, doc); err != nil {
		return nil, fmt.Errorf("serve: campaign %s report: %w", h.id, err)
	}
	return doc, nil
}

// copyTrace streams a restored campaign's persisted trace.
func (o *Orchestrator) copyTrace(h *handle, w io.Writer) error {
	f, err := os.Open(filepath.Join(o.campaignDir(h.id), "trace.bin"))
	if err != nil {
		return fmt.Errorf("serve: campaign %s trace: %w", h.id, err)
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

// restore rebuilds the registry from the state directory at startup.
func (o *Orchestrator) restore() error {
	if o.opts.StateDir == "" {
		return nil
	}
	root := filepath.Join(o.opts.StateDir, "campaigns")
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := o.restoreOne(id); err != nil {
			return fmt.Errorf("serve: restoring campaign %s: %w", id, err)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "c")); err == nil && n > o.seq {
			o.seq = n
		}
	}
	return nil
}

func (o *Orchestrator) restoreOne(id string) error {
	dir := o.campaignDir(id)
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return err
	}
	var meta metaDoc
	if err := json.Unmarshal(b, &meta); err != nil {
		return err
	}
	h := &handle{id: id, tenant: meta.Tenant, name: meta.Name, done: make(chan struct{})}

	switch meta.State {
	case StateDone, StateFailed, StateAborted:
		// Terminal: queryable from the files, nothing to run.
		h.state = meta.State
		h.errText = meta.Error
		h.fromDisk = true
		close(h.done)
	case StateCheckpointed:
		if err := o.loadSpec(h, dir); err != nil {
			return err
		}
		cf, err := os.Open(filepath.Join(dir, "checkpoint.bin"))
		if err != nil {
			return err
		}
		cp, err := entk.LoadCheckpoint(cf, nil)
		cf.Close()
		if err != nil {
			return err
		}
		h.resume = cp
		h.state = StateQueued
	default: // queued, or running after a hard crash: re-admit fresh
		if err := o.loadSpec(h, dir); err != nil {
			return err
		}
		h.state = StateQueued
	}

	o.mu.Lock()
	o.campaigns[id] = h
	o.order = append(o.order, id)
	o.mu.Unlock()
	if h.state == StateQueued {
		o.enqueue(h)
	}
	return nil
}

func (o *Orchestrator) loadSpec(h *handle, dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return err
	}
	c, err := campaign.Parse(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	h.raw = raw
	h.spec = c
	if h.name == "" {
		h.name = c.Name
	}
	return nil
}
