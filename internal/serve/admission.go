// Weighted fair-share admission: the queue between accepted campaigns
// and the shared pools. Submission order is preserved per tenant
// (each tenant's campaigns start in the order it submitted them), but
// across tenants the next start always goes to the tenant whose
// in-flight share is furthest below its weight — so a tenant that
// dumps fifty campaigns cannot starve one that submits a single run a
// moment later. Per-tenant and global in-flight caps bound how much of
// the shared batcher any one tenant (and the daemon as a whole) can
// hold at once.

package serve

import "sync"

// job is one admitted-but-not-started campaign launch. run must call
// release exactly once when the campaign settles.
type job struct {
	tenant string
	run    func(release func())
}

type admission struct {
	weights     map[string]float64
	tenantCap   int
	maxInFlight int

	mu       sync.Mutex
	queues   map[string][]*job
	order    []string // tenants in first-seen order (the final tiebreak)
	inflight map[string]int
	started  map[string]float64 // campaigns ever started, per tenant
	total    int

	// Stats the fairness tests assert on.
	peakTotal  int
	peakTenant map[string]int
}

func newAdmission(weights map[string]float64, tenantCap, maxInFlight int) *admission {
	w := make(map[string]float64, len(weights))
	for t, x := range weights {
		w[t] = x
	}
	return &admission{
		weights:     w,
		tenantCap:   tenantCap,
		maxInFlight: maxInFlight,
		queues:      make(map[string][]*job),
		inflight:    make(map[string]int),
		started:     make(map[string]float64),
		peakTenant:  make(map[string]int),
	}
}

func (a *admission) weight(tenant string) float64 {
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// Submit enqueues a launch for the tenant and dispatches whatever the
// caps now allow (possibly this job, possibly other tenants' backlog).
func (a *admission) Submit(tenant string, run func(release func())) {
	a.mu.Lock()
	if _, seen := a.queues[tenant]; !seen {
		a.order = append(a.order, tenant)
	}
	a.queues[tenant] = append(a.queues[tenant], &job{tenant: tenant, run: run})
	starts := a.dispatchLocked()
	a.mu.Unlock()
	a.start(starts)
}

// release returns one in-flight slot for the tenant and dispatches the
// backlog the freed slot admits.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	a.inflight[tenant]--
	a.total--
	starts := a.dispatchLocked()
	a.mu.Unlock()
	a.start(starts)
}

func (a *admission) start(jobs []*job) {
	for _, j := range jobs {
		j := j
		released := false
		var once sync.Mutex
		go j.run(func() {
			once.Lock()
			done := released
			released = true
			once.Unlock()
			if !done {
				a.release(j.tenant)
			}
		})
	}
}

// dispatchLocked pops as many jobs as the caps allow, fair-share
// order: among tenants with backlog and a free per-tenant slot, pick
// the one minimising inflight/weight — the tenant furthest below its
// fair share. Ties break by started/weight (long-run throughput
// tracks the weights, not just the instantaneous share), then by
// first-seen order (deterministic).
func (a *admission) dispatchLocked() []*job {
	var starts []*job
	for {
		if a.maxInFlight > 0 && a.total >= a.maxInFlight {
			break
		}
		best := ""
		var bestShare, bestServed float64
		for _, t := range a.order {
			if len(a.queues[t]) == 0 {
				continue
			}
			if a.tenantCap > 0 && a.inflight[t] >= a.tenantCap {
				continue
			}
			w := a.weight(t)
			share, served := float64(a.inflight[t])/w, a.started[t]/w
			if best == "" || share < bestShare ||
				(share == bestShare && served < bestServed) {
				best, bestShare, bestServed = t, share, served
			}
		}
		if best == "" {
			break
		}
		q := a.queues[best]
		starts = append(starts, q[0])
		a.queues[best] = q[1:]
		a.inflight[best]++
		a.started[best]++
		a.total++
		if a.total > a.peakTotal {
			a.peakTotal = a.total
		}
		if a.inflight[best] > a.peakTenant[best] {
			a.peakTenant[best] = a.inflight[best]
		}
	}
	return starts
}

// Peak returns the peak total and per-tenant in-flight counts observed
// so far (the fairness tests' cap assertions).
func (a *admission) Peak() (total int, perTenant map[string]int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	per := make(map[string]int, len(a.peakTenant))
	for t, n := range a.peakTenant {
		per[t] = n
	}
	return a.peakTotal, per
}
