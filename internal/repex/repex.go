// Package repex is a flexible replica-exchange framework built on the
// Ensemble Toolkit core, reproducing the RepEx application the paper
// cites ([32], Treikalis et al., ICPP 2016) and supports in production:
// it wires the EE execution pattern to the real Metropolis exchange
// physics of internal/md, supports synchronous (collective) and
// asynchronous (pairwise) exchange protocols, and reports both runtime
// and sampling-quality metrics (acceptance ratios, ladder mobility).
package repex

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/core"
	"entk/internal/md"
	"entk/internal/vclock"
)

// Protocol selects the exchange coordination.
type Protocol int

const (
	// Synchronous exchanges after a global barrier per cycle (the
	// configuration the paper's Figures 5-6 measure).
	Synchronous Protocol = iota
	// Asynchronous exchanges pairwise with no global barrier.
	Asynchronous
)

func (p Protocol) String() string {
	if p == Asynchronous {
		return "asynchronous"
	}
	return "synchronous"
}

// Config parametrises a replica-exchange run.
type Config struct {
	// Replicas is the ensemble size (>= 2).
	Replicas int
	// Cycles is the number of simulate-exchange rounds (>= 1).
	Cycles int
	// TMin and TMax bound the geometric temperature ladder in Kelvin.
	TMin, TMax float64
	// PsPerCycle is the MD duration per replica per cycle.
	PsPerCycle float64
	// System is the molecular system; zero value selects alanine
	// dipeptide.
	System md.System
	// Protocol selects synchronous or asynchronous exchange.
	Protocol Protocol
	// Seed makes the exchange decisions reproducible.
	Seed int64

	// Resource, Cores, Walltime describe the allocation; Cores defaults
	// to Replicas (one core per replica, as in the paper).
	Resource string
	Cores    int
	Walltime time.Duration
}

// withDefaults fills unset fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.System.Atoms == 0 {
		c.System = md.AlanineDipeptide
	}
	if c.Cores == 0 {
		c.Cores = c.Replicas
	}
	if c.Walltime == 0 {
		c.Walltime = 24 * time.Hour
	}
	if c.PsPerCycle == 0 {
		c.PsPerCycle = 6
	}
	if c.TMin == 0 && c.TMax == 0 {
		c.TMin, c.TMax = 300, 600
	}
	switch {
	case c.Replicas < 2:
		return c, fmt.Errorf("repex: %d replicas", c.Replicas)
	case c.Cycles < 1:
		return c, fmt.Errorf("repex: %d cycles", c.Cycles)
	case c.Resource == "":
		return c, fmt.Errorf("repex: no resource")
	case c.TMin <= 0 || c.TMax < c.TMin:
		return c, fmt.Errorf("repex: invalid temperature range [%g, %g]", c.TMin, c.TMax)
	case c.PsPerCycle <= 0:
		return c, fmt.Errorf("repex: non-positive ps per cycle")
	}
	return c, nil
}

// Result carries runtime and physics outcomes of a run.
type Result struct {
	// Report is the toolkit's TTC decomposition.
	Report *core.Report
	// AcceptanceRatio is accepted/attempted exchanges overall.
	AcceptanceRatio float64
	// SwapsPerCycle counts accepted swaps per cycle (synchronous) or per
	// pair event bucketed by cycle (asynchronous).
	SwapsPerCycle []int
	// TemperatureWalk[r] is replica r's temperature after each cycle
	// (synchronous protocol only; index 0 is the initial ladder).
	TemperatureWalk [][]float64
	// LadderMobility is the mean number of distinct ladder rungs each
	// replica visited, normalised by the rung count — 1/Replicas means
	// frozen, 1.0 means full traversal.
	LadderMobility float64
}

// Run executes the replica-exchange workload on the toolkit. It must be
// called from within clock.Run (it blocks for the whole campaign).
func Run(clock vclock.Clock, cfg Config) (*Result, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ens, err := md.NewEnsemble(full.Replicas, full.TMin, full.TMax, full.System.Atoms, full.Seed)
	if err != nil {
		return nil, err
	}
	h, err := core.NewResourceHandle(full.Resource, full.Cores, full.Walltime, core.Config{Clock: clock})
	if err != nil {
		return nil, err
	}

	res := &Result{TemperatureWalk: [][]float64{ens.Temperatures()}}
	visited := make([]map[int]bool, full.Replicas)
	ladder := res.TemperatureWalk[0]
	rung := func(temp float64) int {
		for i, t := range ladder {
			if temp == t {
				return i
			}
		}
		return -1
	}
	for r := range visited {
		visited[r] = map[int]bool{rung(ladder[r]): true}
	}
	var mu sync.Mutex
	recordVisit := func() {
		temps := ens.Temperatures()
		for r, t := range temps {
			visited[r][rung(t)] = true
		}
	}

	simK := func(cycle, r int) *core.Kernel {
		mu.Lock()
		temp := ens.Temperatures()[r-1]
		mu.Unlock()
		return &core.Kernel{
			Name: "md.amber",
			Params: map[string]float64{
				"atoms": float64(full.System.Atoms),
				"ps":    full.PsPerCycle,
				"temp":  temp,
			},
		}
	}

	pattern := &core.EnsembleExchange{
		Replicas:         full.Replicas,
		Cycles:           full.Cycles,
		SimulationKernel: simK,
	}
	switch full.Protocol {
	case Synchronous:
		pattern.Mode = core.CollectiveExchange
		pattern.ExchangeKernel = func(cycle int) *core.Kernel {
			return &core.Kernel{
				Name:   "md.remd_exchange",
				Params: map[string]float64{"replicas": float64(full.Replicas)},
			}
		}
		pattern.ExchangeLogic = func(cycle int) {
			mu.Lock()
			defer mu.Unlock()
			ens.SampleEnergies()
			swaps := ens.ExchangeSweep(cycle)
			res.SwapsPerCycle = append(res.SwapsPerCycle, len(swaps))
			res.TemperatureWalk = append(res.TemperatureWalk, ens.Temperatures())
			recordVisit()
		}
	case Asynchronous:
		pattern.Mode = core.PairwiseExchange
		pattern.ExchangeKernel = func(cycle int) *core.Kernel {
			return &core.Kernel{
				Name:   "md.remd_exchange",
				Params: map[string]float64{"replicas": 2},
			}
		}
		res.SwapsPerCycle = make([]int, full.Cycles)
		pattern.PairLogic = func(cycle, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			ri := ens.Replicas[lo-1]
			rj := ens.Replicas[hi-1]
			ens.SampleEnergies()
			if ens.MetropolisAccept(ri, rj) {
				ri.Temp, rj.Temp = rj.Temp, ri.Temp
				res.SwapsPerCycle[cycle-1]++
			}
			recordVisit()
		}
	default:
		return nil, fmt.Errorf("repex: unknown protocol %d", int(full.Protocol))
	}

	rep, err := h.Execute(pattern)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	res.AcceptanceRatio = ens.AcceptanceRatio()
	if full.Protocol == Asynchronous {
		// The async path bypasses ens.ExchangeSweep, so derive acceptance
		// from the recorded swaps.
		attempts := 0
		accepted := 0
		for _, n := range res.SwapsPerCycle {
			accepted += n
		}
		attempts = full.Cycles * (full.Replicas / 2)
		if attempts > 0 {
			res.AcceptanceRatio = float64(accepted) / float64(attempts)
		}
	}

	var mob float64
	for _, vs := range visited {
		mob += float64(len(vs))
	}
	res.LadderMobility = mob / float64(full.Replicas) / float64(full.Replicas)
	return res, nil
}
