package repex

import (
	"testing"
	"time"

	"entk/internal/vclock"
)

func TestConfigDefaultsAndValidation(t *testing.T) {
	good := Config{Replicas: 4, Cycles: 2, Resource: "lsu.supermic"}
	full, err := good.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if full.Cores != 4 || full.PsPerCycle != 6 || full.TMin != 300 || full.TMax != 600 {
		t.Errorf("defaults = %+v", full)
	}
	if full.System.Atoms != 2881 {
		t.Errorf("default system = %+v", full.System)
	}
	bad := []Config{
		{Replicas: 1, Cycles: 1, Resource: "r"},
		{Replicas: 4, Cycles: 0, Resource: "r"},
		{Replicas: 4, Cycles: 1},
		{Replicas: 4, Cycles: 1, Resource: "r", TMin: 500, TMax: 400},
		{Replicas: 4, Cycles: 1, Resource: "r", PsPerCycle: -1},
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if Synchronous.String() != "synchronous" || Asynchronous.String() != "asynchronous" {
		t.Error("protocol strings wrong")
	}
}

func TestSynchronousRun(t *testing.T) {
	v := vclock.NewVirtual()
	var res *Result
	var err error
	v.Run(func() {
		res, err = Run(v, Config{
			Replicas: 16,
			Cycles:   5,
			Resource: "lsu.supermic",
			Seed:     7,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Phase("simulation").Tasks != 16*5 {
		t.Errorf("sim tasks = %d", res.Report.Phase("simulation").Tasks)
	}
	if len(res.SwapsPerCycle) != 5 {
		t.Errorf("swaps per cycle = %v", res.SwapsPerCycle)
	}
	if res.AcceptanceRatio <= 0 || res.AcceptanceRatio > 1 {
		t.Errorf("acceptance = %v", res.AcceptanceRatio)
	}
	if len(res.TemperatureWalk) != 6 { // initial + 5 cycles
		t.Errorf("walk length = %d", len(res.TemperatureWalk))
	}
	// Ladder conservation per cycle snapshot.
	for c, temps := range res.TemperatureWalk {
		if len(temps) != 16 {
			t.Fatalf("cycle %d has %d temps", c, len(temps))
		}
	}
	if res.LadderMobility <= 1.0/16 || res.LadderMobility > 1 {
		t.Errorf("ladder mobility = %v", res.LadderMobility)
	}
}

func TestAsynchronousRun(t *testing.T) {
	v := vclock.NewVirtual()
	var res *Result
	var err error
	v.Run(func() {
		res, err = Run(v, Config{
			Replicas: 8,
			Cycles:   4,
			Resource: "lsu.supermic",
			Protocol: Asynchronous,
			Seed:     11,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Phase("simulation").Tasks != 32 {
		t.Errorf("sim tasks = %d", res.Report.Phase("simulation").Tasks)
	}
	if res.AcceptanceRatio < 0 || res.AcceptanceRatio > 1 {
		t.Errorf("acceptance = %v", res.AcceptanceRatio)
	}
	var total int
	for _, n := range res.SwapsPerCycle {
		total += n
	}
	if total == 0 {
		t.Error("no pairwise swap accepted in 4 cycles (acceptance model broken)")
	}
}

func TestRunErrorsSurface(t *testing.T) {
	v := vclock.NewVirtual()
	v.Run(func() {
		if _, err := Run(v, Config{Replicas: 4, Cycles: 1, Resource: "no.such"}); err == nil {
			t.Error("unknown resource accepted")
		}
		if _, err := Run(v, Config{Replicas: 1, Cycles: 1, Resource: "lsu.supermic"}); err == nil {
			t.Error("single replica accepted")
		}
	})
}

func TestProtocolsAgreeOnWorkload(t *testing.T) {
	// Same replica count and cycles: both protocols run the same number
	// of simulation tasks; the async one finishes no later than sync plus
	// tolerance (heterogeneity is absent here, so they should be close).
	run := func(p Protocol) *Result {
		v := vclock.NewVirtual()
		var res *Result
		var err error
		v.Run(func() {
			res, err = Run(v, Config{
				Replicas: 8, Cycles: 3, Resource: "lsu.supermic", Protocol: p, Seed: 3,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sync := run(Synchronous)
	async := run(Asynchronous)
	if sync.Report.Phase("simulation").Tasks != async.Report.Phase("simulation").Tasks {
		t.Errorf("sim task mismatch: %d vs %d",
			sync.Report.Phase("simulation").Tasks, async.Report.Phase("simulation").Tasks)
	}
	if async.Report.TTC > sync.Report.TTC+30*time.Second {
		t.Errorf("async (%v) much slower than sync (%v)", async.Report.TTC, sync.Report.TTC)
	}
}
