package profile

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"entk/internal/vclock"
)

// layouts enumerates both event-storage layouts so the behavioural suite
// runs against each — the reference store is only worth keeping if it is
// continuously proven equivalent.
var layouts = []Layout{LayoutColumnar, LayoutRef}

// TestRecordConcurrentHammer hammers Record from many goroutines with
// randomized entity fan-in across the stripes, on both layouts, and then
// asserts exact accounting: total and per-entity event counts, and
// per-entity ordering by virtual time (an entity's events must carry
// non-decreasing timestamps — insertion order per stripe plus a monotone
// clock). Run under -race this is the profiler's concurrency gate.
func TestRecordConcurrentHammer(t *testing.T) {
	for _, l := range layouts {
		l := l
		t.Run(l.String(), func(t *testing.T) {
			const (
				goroutines = 32
				perG       = 1500
				entities   = 64 // spread over all 16 stripes
			)
			v := vclock.NewVirtual()
			p := NewLayout(v, l)

			// Pre-intern the vocabulary the way the runtime does; the ids
			// are shared across all recording goroutines.
			eids := make([]EntityID, entities)
			for i := range eids {
				eids[i] = p.Intern(fmt.Sprintf("unit.%06d", i))
			}
			names := []NameID{
				p.InternName("exec_start"),
				p.InternName("exec_stop"),
				p.InternName("state_DONE"),
				p.InternName("new"),
			}

			perEntity := make([]int, entities)
			for g := 0; g < goroutines; g++ {
				rng := rand.New(rand.NewSource(int64(1000 + g)))
				for i := 0; i < perG; i++ {
					perEntity[rng.Intn(entities)]++
				}
			}

			v.Run(func() {
				wg := vclock.NewWaitGroup(v, "hammer")
				for g := 0; g < goroutines; g++ {
					g := g
					wg.Add(1)
					v.Go(func() {
						defer wg.Done()
						// Same seed as the precomputation: the fan-in
						// pattern is randomized but reproducible.
						rng := rand.New(rand.NewSource(int64(1000 + g)))
						for i := 0; i < perG; i++ {
							e := rng.Intn(entities)
							if i%7 == 0 {
								// Exercise the string path too: interned
								// strings must hit the same ids.
								p.Record(fmt.Sprintf("unit.%06d", e), "exec_start")
							} else {
								p.RecordID(eids[e], names[i%len(names)])
							}
							if i%97 == 0 {
								v.Sleep(time.Duration(1+i%5) * time.Millisecond)
							}
						}
					})
				}
				wg.Wait()
			})

			const total = goroutines * perG
			if got := p.EventCount(); got != total {
				t.Fatalf("EventCount = %d, want %d", got, total)
			}
			if got := len(p.Events()); got != total {
				t.Fatalf("len(Events) = %d, want %d", got, total)
			}

			// Per-entity accounting and time ordering.
			gotPer := make(map[string]int)
			lastT := make(map[string]time.Duration)
			for _, e := range p.Events() {
				gotPer[e.Entity]++
				if e.T < lastT[e.Entity] {
					t.Fatalf("entity %s: event at %v after %v — per-entity order broken",
						e.Entity, e.T, lastT[e.Entity])
				}
				lastT[e.Entity] = e.T
			}
			for i, want := range perEntity {
				ent := fmt.Sprintf("unit.%06d", i)
				if gotPer[ent] != want {
					t.Errorf("entity %s: %d events, want %d", ent, gotPer[ent], want)
				}
			}
		})
	}
}

// TestRecordSteadyStateAllocFree pins the columnar layout's headline
// property: once an entity's stripe is warm (inside a chunk, spare
// rotated), Record and RecordID allocate nothing — the event log grows
// only when a chunk fills, and what it stores is pointer-free.
func TestRecordSteadyStateAllocFree(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	e := p.Intern("unit.000001")
	n := p.InternName("exec_start")

	// Warm up past the chunk-growth ladder (256+512+1024 = 1792 events)
	// so the current chunk has ample headroom for the measured records.
	for i := 0; i < 2048; i++ {
		p.RecordID(e, n)
	}
	if allocs := testing.AllocsPerRun(100, func() { p.RecordID(e, n) }); allocs != 0 {
		t.Errorf("RecordID allocates %.1f objects per op in steady state, want 0", allocs)
	}
	// The string path interns via read-locked map hits: also alloc-free
	// once the strings are known.
	if allocs := testing.AllocsPerRun(100, func() { p.Record("unit.000001", "exec_start") }); allocs != 0 {
		t.Errorf("Record allocates %.1f objects per op in steady state, want 0", allocs)
	}
}

// TestLayoutQueryParity runs an identical recording schedule through both
// layouts and asserts every query — First, Last, Span, SumPairs,
// Entities, FirstID/LastID, EventCount — answers identically. The
// profiler-level complement of the end-to-end TestProfilerLayoutParity.
func TestLayoutQueryParity(t *testing.T) {
	build := func(l Layout) *Profiler {
		v := vclock.NewVirtual()
		p := NewLayout(v, l)
		v.Run(func() {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 5000; i++ {
				e := rng.Intn(40)
				kind := "unit"
				if e%5 == 0 {
					kind = "pilot"
				}
				name := []string{"exec_start", "exec_stop", "new", "state_DONE"}[rng.Intn(4)]
				p.Record(fmt.Sprintf("%s.%04d", kind, e), name)
				if i%11 == 0 {
					v.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond)
				}
			}
		})
		return p
	}
	col := build(LayoutColumnar)
	ref := build(LayoutRef)

	if a, b := col.EventCount(), ref.EventCount(); a != b {
		t.Fatalf("EventCount: columnar %d, ref %d", a, b)
	}
	type q2 struct{ prefix, name string }
	for _, q := range []q2{
		{"unit.", "exec_start"}, {"unit.", "exec_stop"}, {"pilot.", "new"},
		{"unit.00", "state_DONE"}, {"", "exec_start"}, {"unit.", "missing"},
	} {
		af, aok := col.First(q.prefix, q.name)
		bf, bok := ref.First(q.prefix, q.name)
		if af != bf || aok != bok {
			t.Errorf("First(%q,%q): columnar (%v,%v), ref (%v,%v)", q.prefix, q.name, af, aok, bf, bok)
		}
		al, aok := col.Last(q.prefix, q.name)
		bl, bok := ref.Last(q.prefix, q.name)
		if al != bl || aok != bok {
			t.Errorf("Last(%q,%q): columnar (%v,%v), ref (%v,%v)", q.prefix, q.name, al, aok, bl, bok)
		}
	}
	if a := col.SumPairs("unit.", "exec_start", "exec_stop"); a != ref.SumPairs("unit.", "exec_start", "exec_stop") {
		t.Errorf("SumPairs diverges: columnar %v, ref %v", a, ref.SumPairs("unit.", "exec_start", "exec_stop"))
	}
	as, aok := col.Span("unit.", "exec_start", "exec_stop")
	bs, bok := ref.Span("unit.", "exec_start", "exec_stop")
	if as != bs || aok != bok {
		t.Errorf("Span diverges: columnar (%v,%v), ref (%v,%v)", as, aok, bs, bok)
	}
	ae := col.Entities("unit.")
	be := ref.Entities("unit.")
	if len(ae) != len(be) {
		t.Fatalf("Entities diverges: columnar %d, ref %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("Entities[%d]: columnar %q, ref %q", i, ae[i], be[i])
		}
	}
	// Exact-entity queries, including an entity with no matching events.
	for _, ent := range []string{"unit.0001", "unit.0039", "pilot.0000"} {
		ec, nc := col.Intern(ent), col.InternName("exec_start")
		er, nr := ref.Intern(ent), ref.InternName("exec_start")
		af, aok := col.FirstID(ec, nc)
		bf, bok := ref.FirstID(er, nr)
		if af != bf || aok != bok {
			t.Errorf("FirstID(%s): columnar (%v,%v), ref (%v,%v)", ent, af, aok, bf, bok)
		}
		al, aok := col.LastID(ec, nc)
		bl, bok := ref.LastID(er, nr)
		if al != bl || aok != bok {
			t.Errorf("LastID(%s): columnar (%v,%v), ref (%v,%v)", ent, al, aok, bl, bok)
		}
	}
}

// TestInternStability asserts intern/lookup/resolve round-trips: the same
// string always yields the same id, ids resolve back to their strings, and
// the two id namespaces (entities, names) are independent.
func TestInternStability(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	e1 := p.Intern("unit.000001")
	n1 := p.InternName("exec_start")
	if e2 := p.Intern("unit.000001"); e2 != e1 {
		t.Errorf("re-intern changed id: %d then %d", e1, e2)
	}
	if got := p.EntityName(e1); got != "unit.000001" {
		t.Errorf("EntityName = %q", got)
	}
	if got := p.Name(n1); got != "exec_start" {
		t.Errorf("Name = %q", got)
	}
	// Same string in both namespaces must not collide semantically.
	eShared := p.Intern("shared")
	nShared := p.InternName("shared")
	if p.EntityName(eShared) != "shared" || p.Name(nShared) != "shared" {
		t.Error("shared string broken across namespaces")
	}
}
