// Package profile records timestamped events on the virtual clock and
// answers the duration queries behind the paper's TTC decomposition
// (toolkit core overhead, pattern overhead, execution time, staging time).
// Every layer — core, pilot, agent — writes into the same Profiler, which
// is what makes the stacked-bar figures reconstructible.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"entk/internal/pad"
	"entk/internal/vclock"
)

// Event is one timestamped occurrence for an entity.
type Event struct {
	Entity string        // e.g. "unit.0042", "pattern", "resource"
	Name   string        // e.g. "exec_start", "exec_stop"
	T      time.Duration // virtual time
}

// Chunk sizing: events are stored in chunks so that recording never
// re-copies the whole history (large runs record hundreds of thousands
// of events). Chunks start small — a stripe that only ever sees a few
// events costs little — and double up to profChunkMax.
const (
	profChunkMin = 256
	profChunkMax = 8192
)

// profStripes shards the profiler by entity so concurrent recorders (one
// per executing unit) do not serialize on one mutex. Power of two.
const profStripes = 16

// stripe is one shard: a mutex, its chunked event log, and a spare chunk
// so rotation inside the critical section never allocates. The stripes
// are cache-line padded: recorders hammer adjacent stripes from many
// goroutines, and false sharing between their mutexes costs more than
// the append they guard. Allocating under mu was worse still — a GC
// assist triggered by the chunk allocation while the lock was held
// convoyed every concurrent recorder onto the stripe mutex.
type stripe struct {
	mu     sync.Mutex
	chunks [][]Event
	spare  []Event
	n      int
	_      pad.Line
}

// Profiler accumulates events. It is safe for concurrent use. Events are
// kept in insertion order per entity (an entity always maps to the same
// stripe); cross-entity order across stripes is not meaningful — queries
// are order-independent and Timeline sorts by time.
type Profiler struct {
	clock   vclock.Clock
	stripes [profStripes]stripe
}

// New returns an empty profiler reading timestamps from clock.
func New(clock vclock.Clock) *Profiler {
	return &Profiler{clock: clock}
}

// stripeFor hashes an entity to its shard (FNV-1a).
func stripeFor(entity string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(entity); i++ {
		h ^= uint32(entity[i])
		h *= 16777619
	}
	return h & (profStripes - 1)
}

// Record appends an event for entity at the current time. The critical
// section is append-only: when a chunk fills, the pre-allocated spare is
// swapped in and its replacement is built after unlock.
func (p *Profiler) Record(entity, name string) {
	t := p.clock.Now()
	s := &p.stripes[stripeFor(entity)]
	s.mu.Lock()
	last := len(s.chunks) - 1
	if last < 0 || len(s.chunks[last]) == cap(s.chunks[last]) {
		if s.spare == nil {
			// First event on this stripe (or the spare was consumed and
			// lost a race to replacement): allocate under mu, once.
			s.spare = make([]Event, 0, p.nextChunkSize(s, last))
		}
		s.chunks = append(s.chunks, s.spare)
		s.spare = nil
		last++
	}
	s.chunks[last] = append(s.chunks[last], Event{Entity: entity, Name: name, T: t})
	s.n++
	needSpare := s.spare == nil && len(s.chunks[last]) == cap(s.chunks[last])
	var size int
	if needSpare {
		size = p.nextChunkSize(s, last)
	}
	s.mu.Unlock()
	if needSpare {
		next := make([]Event, 0, size)
		s.mu.Lock()
		if s.spare == nil {
			s.spare = next
		}
		s.mu.Unlock()
	}
}

// nextChunkSize doubles the chunk size up to the cap. Caller holds mu.
func (p *Profiler) nextChunkSize(s *stripe, last int) int {
	size := profChunkMin
	if last >= 0 {
		if size = 2 * cap(s.chunks[last]); size > profChunkMax {
			size = profChunkMax
		}
	}
	return size
}

// forEach visits all events, stripe by stripe, in per-entity insertion
// order. Each stripe is locked while visited.
func (p *Profiler) forEach(fn func(Event)) {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		for _, c := range s.chunks {
			for j := range c {
				fn(c[j])
			}
		}
		s.mu.Unlock()
	}
}

// Events returns a copy of all events, in per-entity insertion order.
func (p *Profiler) Events() []Event {
	total := 0
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		total += s.n
		s.mu.Unlock()
	}
	out := make([]Event, 0, total)
	p.forEach(func(e Event) { out = append(out, e) })
	return out
}

// First returns the earliest timestamp of the named event for entities
// matching the prefix; ok is false if none exists.
func (p *Profiler) First(entityPrefix, name string) (time.Duration, bool) {
	var best time.Duration
	found := false
	p.forEach(func(e Event) {
		if e.Name == name && strings.HasPrefix(e.Entity, entityPrefix) {
			if !found || e.T < best {
				best = e.T
				found = true
			}
		}
	})
	return best, found
}

// Last returns the latest timestamp of the named event for entities
// matching the prefix; ok is false if none exists.
func (p *Profiler) Last(entityPrefix, name string) (time.Duration, bool) {
	var best time.Duration
	found := false
	p.forEach(func(e Event) {
		if e.Name == name && strings.HasPrefix(e.Entity, entityPrefix) {
			if !found || e.T > best {
				best = e.T
				found = true
			}
		}
	})
	return best, found
}

// Span returns Last(prefix, stop) - First(prefix, start): the wall span
// from the first start to the last stop across matching entities. It is
// the figure-level "phase duration" (e.g. all simulations of an
// iteration). ok is false if either endpoint is missing.
func (p *Profiler) Span(entityPrefix, start, stop string) (time.Duration, bool) {
	a, ok1 := p.First(entityPrefix, start)
	b, ok2 := p.Last(entityPrefix, stop)
	if !ok1 || !ok2 || b < a {
		return 0, false
	}
	return b - a, true
}

// SumPairs sums, over every entity matching the prefix, the duration
// between that entity's start and stop events (pairing first start with
// first stop per entity). It measures aggregate busy time rather than wall
// span.
func (p *Profiler) SumPairs(entityPrefix, start, stop string) time.Duration {
	starts := make(map[string]time.Duration)
	stops := make(map[string]time.Duration)
	p.forEach(func(e Event) {
		if !strings.HasPrefix(e.Entity, entityPrefix) {
			return
		}
		switch e.Name {
		case start:
			if _, seen := starts[e.Entity]; !seen {
				starts[e.Entity] = e.T
			}
		case stop:
			if _, seen := stops[e.Entity]; !seen {
				stops[e.Entity] = e.T
			}
		}
	})
	var total time.Duration
	for ent, s := range starts {
		if e, ok := stops[ent]; ok && e >= s {
			total += e - s
		}
	}
	return total
}

// Entities returns the sorted distinct entities matching the prefix.
func (p *Profiler) Entities(prefix string) []string {
	set := make(map[string]bool)
	p.forEach(func(e Event) {
		if strings.HasPrefix(e.Entity, prefix) {
			set[e.Entity] = true
		}
	})
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Timeline renders events sorted by time, for debugging.
func (p *Profiler) Timeline() string {
	evs := p.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%12v  %-24s %s\n", e.T, e.Entity, e.Name)
	}
	return b.String()
}
