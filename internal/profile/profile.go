// Package profile records timestamped events on the virtual clock and
// answers the duration queries behind the paper's TTC decomposition
// (toolkit core overhead, pattern overhead, execution time, staging time).
// Every layer — core, pilot, agent, batch, staging — writes into the same
// Profiler, which is what makes the stacked-bar figures reconstructible.
//
// Storage is columnar and interned: entities and event names are mapped to
// dense uint32 ids by a striped intern table, and each event is a
// pointer-free {entityID, nameID, t} record, so at 100k-task scale the GC
// scans nothing per event (the seed layout's two string headers cost
// ~40 B/event of scanned memory — the largest allocation source in the
// tree before this layout). The seed string-backed store is kept as
// LayoutRef behind the same store interface, mirroring the Rescan and
// EngineRef precedents, so layout parity is testable forever.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"entk/internal/pad"
)

// EntityID is an interned entity key ("unit.000042", "pilot.0001", ...).
// Ids are dense per profiler, in first-intern order.
type EntityID uint32

// NameID is an interned event name ("exec_start", "state_DONE", ...).
type NameID uint32

// Layout selects the event-storage layout behind a Profiler.
type Layout int

const (
	// LayoutColumnar is the default: pointer-free {entityID, nameID, t}
	// records in chunked stripes. Steady-state Record is alloc-free and
	// the GC never scans the event log.
	LayoutColumnar Layout = iota
	// LayoutRef is the seed string-backed store ({Entity, Name string, T}
	// records), kept as the reference implementation the layout-parity
	// tests compare against — the profiler analogue of Config.Rescan and
	// vclock.EngineRef.
	LayoutRef
)

func (l Layout) String() string {
	if l == LayoutRef {
		return "ref"
	}
	return "columnar"
}

// Event is one timestamped occurrence for an entity, the resolved
// (string-keyed) view returned by Events and consumed by Timeline.
type Event struct {
	Entity string        // e.g. "unit.0042", "pattern", "resource"
	Name   string        // e.g. "exec_start", "exec_stop"
	T      time.Duration // virtual time
}

// ---------------------------------------------------------------------------
// Intern table

// The intern table is striped by string hash so concurrent first-time
// interns (one per created unit) do not serialize, and id→string
// resolution is lock-free: ids are allocated from one dense space and the
// strings live in append-only blocks published through atomic pointers.
const (
	internStripes   = 16   // power of two
	internBlockSize = 4096 // strings per block
	internMaxBlocks = 4096 // supports 16M interned strings
)

// internStripe holds one shard of the string→id map. Cache-line padded:
// unit creation interns from many goroutines at once.
type internStripe struct {
	mu  sync.RWMutex
	ids map[string]uint32
	_   pad.Line
}

type internBlock [internBlockSize]string

// interner maps strings to dense uint32 ids and back. intern and lookup
// take a stripe read-lock (alloc-free on the hit path); resolve is
// lock-free.
type interner struct {
	stripes [internStripes]internStripe

	// allocMu serializes id allocation across stripes; n publishes the
	// count of assigned ids (resolve and the query layer size their
	// scratch off it).
	allocMu sync.Mutex
	n       atomic.Uint32
	blocks  [internMaxBlocks]atomic.Pointer[internBlock]
}

// strHash is FNV-1a, the same hash the seed store striped entities by.
func strHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// intern returns the id for s, assigning one on first sight.
func (t *interner) intern(s string) uint32 {
	st := &t.stripes[strHash(s)&(internStripes-1)]
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id
	}
	t.allocMu.Lock()
	id = t.n.Load()
	if id/internBlockSize >= internMaxBlocks {
		t.allocMu.Unlock()
		panic("profile: intern table full")
	}
	b := t.blocks[id/internBlockSize].Load()
	if b == nil {
		b = new(internBlock)
		t.blocks[id/internBlockSize].Store(b)
	}
	b[id%internBlockSize] = s
	t.n.Store(id + 1)
	t.allocMu.Unlock()
	if st.ids == nil {
		st.ids = make(map[string]uint32)
	}
	st.ids[s] = id
	return id
}

// lookup returns the id for s without assigning one.
func (t *interner) lookup(s string) (uint32, bool) {
	st := &t.stripes[strHash(s)&(internStripes-1)]
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	return id, ok
}

// resolve returns the string for an assigned id. Lock-free: the id was
// obtained through a synchronized path (intern or an event record), which
// happens-after the slot write.
func (t *interner) resolve(id uint32) string {
	return t.blocks[id/internBlockSize].Load()[id%internBlockSize]
}

// count returns the number of assigned ids.
func (t *interner) count() int { return int(t.n.Load()) }

// ---------------------------------------------------------------------------
// Chunked stripe log (shared by both layouts)

// Chunk sizing: events are stored in chunks so that recording never
// re-copies the whole history (large runs record millions of events).
// Chunks start small — a stripe that only ever sees a few events costs
// little — and double up to profChunkMax.
const (
	profChunkMin = 256
	profChunkMax = 8192
)

// profStripes shards the event log so concurrent recorders (one per
// executing unit) do not serialize on one mutex. Power of two.
const profStripes = 16

// stripeLog is one shard of an event log: a mutex, its chunked records,
// and a spare chunk so rotation inside the critical section never
// allocates. The stripes are cache-line padded: recorders hammer adjacent
// stripes from many goroutines, and false sharing between their mutexes
// costs more than the append they guard. Allocating under mu was worse
// still — a GC assist triggered by the chunk allocation while the lock was
// held convoyed every concurrent recorder onto the stripe mutex.
type stripeLog[E any] struct {
	mu     sync.Mutex
	chunks [][]E
	spare  []E
	n      int
	_      pad.Line
}

// append adds one record. The critical section is append-only: when a
// chunk fills, the pre-allocated spare is swapped in and its replacement
// is built after unlock.
func (s *stripeLog[E]) append(e E) {
	s.mu.Lock()
	last := len(s.chunks) - 1
	if last < 0 || len(s.chunks[last]) == cap(s.chunks[last]) {
		if s.spare == nil {
			// First record on this stripe (or the spare was consumed and
			// lost a race to replacement): allocate under mu, once.
			s.spare = make([]E, 0, s.nextChunkSize(last))
		}
		s.chunks = append(s.chunks, s.spare)
		s.spare = nil
		last++
	}
	s.chunks[last] = append(s.chunks[last], e)
	s.n++
	needSpare := s.spare == nil && len(s.chunks[last]) == cap(s.chunks[last])
	var size int
	if needSpare {
		size = s.nextChunkSize(last)
	}
	s.mu.Unlock()
	if needSpare {
		next := make([]E, 0, size)
		s.mu.Lock()
		if s.spare == nil {
			s.spare = next
		}
		s.mu.Unlock()
	}
}

// nextChunkSize doubles the chunk size up to the cap. Caller holds mu.
func (s *stripeLog[E]) nextChunkSize(last int) int {
	size := profChunkMin
	if last >= 0 {
		if size = 2 * cap(s.chunks[last]); size > profChunkMax {
			size = profChunkMax
		}
	}
	return size
}

// visit calls fn for every record in insertion order. Caller must not
// record into this stripe from fn (the stripe is locked while visited).
func (s *stripeLog[E]) visit(fn func(E)) {
	s.mu.Lock()
	for _, c := range s.chunks {
		for j := range c {
			fn(c[j])
		}
	}
	s.mu.Unlock()
}

// count returns the records stored.
func (s *stripeLog[E]) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// ---------------------------------------------------------------------------
// Store interface and the two layouts

// store is the event-storage layout interface. Records travel as
// pre-interned ids in both directions; how a layout materialises them —
// pointer-free columns or seed-style string records — is its own business.
type store interface {
	record(eid, nid uint32, t time.Duration)
	// forEach visits all events, stripe by stripe, in per-entity
	// insertion order. Cross-entity order across stripes is not
	// meaningful — queries are order-independent and Timeline sorts.
	forEach(fn func(eid, nid uint32, t time.Duration))
	// forEachEntity visits the events of one entity, in insertion order.
	forEachEntity(eid uint32, fn func(nid uint32, t time.Duration))
	count() int
}

// colEvent is the columnar record: two interned ids and the timestamp.
// 16 bytes, no pointers — the GC never scans the event log.
type colEvent struct {
	eid, nid uint32
	t        int64
}

// columnarStore stripes colEvents by entity id. An entity always maps to
// the same stripe, so per-entity insertion order is preserved.
type columnarStore struct {
	stripes [profStripes]stripeLog[colEvent]
}

func (c *columnarStore) record(eid, nid uint32, t time.Duration) {
	c.stripes[eid&(profStripes-1)].append(colEvent{eid: eid, nid: nid, t: int64(t)})
}

func (c *columnarStore) forEach(fn func(eid, nid uint32, t time.Duration)) {
	for i := range c.stripes {
		c.stripes[i].visit(func(e colEvent) { fn(e.eid, e.nid, time.Duration(e.t)) })
	}
}

func (c *columnarStore) forEachEntity(eid uint32, fn func(nid uint32, t time.Duration)) {
	// Only the entity's own stripe can hold its events.
	c.stripes[eid&(profStripes-1)].visit(func(e colEvent) {
		if e.eid == eid {
			fn(e.nid, time.Duration(e.t))
		}
	})
}

func (c *columnarStore) count() int {
	n := 0
	for i := range c.stripes {
		n += c.stripes[i].count()
	}
	return n
}

// refStore is the seed layout: string-keyed Event records, striped by
// entity hash. Each record carries two string headers (~32 B of GC-scanned
// memory) exactly as the seed did; the intern table is consulted only to
// translate at the interface boundary. Kept as the reference for layout
// parity tests.
type refStore struct {
	p       *Profiler
	stripes [profStripes]stripeLog[Event]
}

func (r *refStore) record(eid, nid uint32, t time.Duration) {
	entity := r.p.ents.resolve(eid)
	name := r.p.names.resolve(nid)
	r.stripes[strHash(entity)&(profStripes-1)].append(Event{Entity: entity, Name: name, T: t})
}

func (r *refStore) forEach(fn func(eid, nid uint32, t time.Duration)) {
	for i := range r.stripes {
		r.stripes[i].visit(func(e Event) {
			// Both strings were interned at record time; lookups hit.
			eid, _ := r.p.ents.lookup(e.Entity)
			nid, _ := r.p.names.lookup(e.Name)
			fn(eid, nid, e.T)
		})
	}
}

func (r *refStore) forEachEntity(eid uint32, fn func(nid uint32, t time.Duration)) {
	entity := r.p.ents.resolve(eid)
	r.stripes[strHash(entity)&(profStripes-1)].visit(func(e Event) {
		if e.Entity == entity {
			nid, _ := r.p.names.lookup(e.Name)
			fn(nid, e.T)
		}
	})
}

func (r *refStore) count() int {
	n := 0
	for i := range r.stripes {
		n += r.stripes[i].count()
	}
	return n
}

// ---------------------------------------------------------------------------
// Profiler

// Clock is the one thing the profiler needs from the simulation (or
// wall-clock) substrate: a current instant for each recorded event.
// Narrower than vclock.Clock on purpose — tests stamp events with fake
// clocks, and the full interface is sealed to package vclock.
type Clock interface {
	Now() time.Duration
}

// Profiler accumulates events. It is safe for concurrent use. Events are
// kept in insertion order per entity (an entity always maps to the same
// stripe); cross-entity order across stripes is not meaningful — queries
// are order-independent and Timeline sorts by time.
type Profiler struct {
	clock  Clock
	layout Layout
	ents   interner
	names  interner
	store  store
}

// New returns an empty profiler reading timestamps from clock, on the
// default columnar layout.
func New(clock Clock) *Profiler {
	return NewLayout(clock, LayoutColumnar)
}

// NewLayout returns an empty profiler on an explicit event-storage layout.
func NewLayout(clock Clock, l Layout) *Profiler {
	p := &Profiler{clock: clock, layout: l}
	if l == LayoutRef {
		p.store = &refStore{p: p}
	} else {
		p.layout = LayoutColumnar
		p.store = &columnarStore{}
	}
	return p
}

// Layout reports the event-storage layout in use.
func (p *Profiler) Layout() Layout { return p.layout }

// Intern returns the id for an entity key, assigning one on first sight.
// Call sites that record repeatedly for the same entity intern once and
// record by id.
func (p *Profiler) Intern(entity string) EntityID {
	return EntityID(p.ents.intern(entity))
}

// InternName returns the id for an event name, assigning one on first
// sight. The runtime's fixed event vocabulary is interned once per session.
func (p *Profiler) InternName(name string) NameID {
	return NameID(p.names.intern(name))
}

// EntityName resolves an interned entity id back to its key.
func (p *Profiler) EntityName(e EntityID) string { return p.ents.resolve(uint32(e)) }

// Name resolves an interned event-name id back to its string.
func (p *Profiler) Name(n NameID) string { return p.names.resolve(uint32(n)) }

// Record appends an event for entity at the current time. This is the
// string-keyed compatibility path: both keys are interned (a read-locked
// map hit once warm), then the record travels as ids. Hot paths intern
// once and call RecordID instead.
func (p *Profiler) Record(entity, name string) {
	t := p.clock.Now()
	p.store.record(p.ents.intern(entity), p.names.intern(name), t)
}

// RecordID appends an event for a pre-interned entity and name at the
// current time. On the columnar layout the steady state is alloc-free and
// stores 16 pointer-free bytes.
func (p *Profiler) RecordID(e EntityID, n NameID) {
	p.store.record(uint32(e), uint32(n), p.clock.Now())
}

// EventCount returns the number of recorded events.
func (p *Profiler) EventCount() int { return p.store.count() }

// Empty reports whether the profiler has interned nothing and recorded
// nothing — the precondition ReadFrom enforces. Callers that may hand a
// used profiler to a loader can test this cheaply instead of parsing
// the loader's error.
func (p *Profiler) Empty() bool {
	return p.ents.count() == 0 && p.names.count() == 0 && p.store.count() == 0
}

// Count returns the number of occurrences of the named event across
// entities matching the prefix. Like First/Last it streams the id
// columns: two integer compares per event.
func (p *Profiler) Count(entityPrefix, name string) int {
	want, ok := p.names.lookup(name)
	if !ok {
		return 0
	}
	match := p.matchPrefix(entityPrefix)
	n := 0
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		if nid == want && matches(match, eid) {
			n++
		}
	})
	return n
}

// Events returns a copy of all events, resolved to strings, in per-entity
// insertion order.
func (p *Profiler) Events() []Event {
	out := make([]Event, 0, p.store.count())
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		out = append(out, Event{Entity: p.ents.resolve(eid), Name: p.names.resolve(nid), T: t})
	})
	return out
}

// matchPrefix builds the entity-id membership set for a prefix: one pass
// over the (small, deduplicated) intern table instead of a string-prefix
// test per event. The returned slice is indexed by entity id; entities
// interned after the snapshot (concurrent recorders) fall outside it and
// must be treated as non-matching by callers (see matches).
func (p *Profiler) matchPrefix(prefix string) []bool {
	n := p.ents.count()
	match := make([]bool, n)
	for id := 0; id < n; id++ {
		match[id] = strings.HasPrefix(p.ents.resolve(uint32(id)), prefix)
	}
	return match
}

// matches reports whether eid is in the membership set, treating ids
// interned after the set was built as non-matching — a query racing a
// recorder sees a consistent prefix snapshot instead of panicking.
func matches(match []bool, eid uint32) bool {
	return int(eid) < len(match) && match[eid]
}

// First returns the earliest timestamp of the named event for entities
// matching the prefix; ok is false if none exists. The scan streams over
// the id columns: per event it is two integer compares.
func (p *Profiler) First(entityPrefix, name string) (time.Duration, bool) {
	want, ok := p.names.lookup(name)
	if !ok {
		return 0, false
	}
	match := p.matchPrefix(entityPrefix)
	var best time.Duration
	found := false
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		if nid == want && matches(match, eid) && (!found || t < best) {
			best = t
			found = true
		}
	})
	return best, found
}

// Last returns the latest timestamp of the named event for entities
// matching the prefix; ok is false if none exists.
func (p *Profiler) Last(entityPrefix, name string) (time.Duration, bool) {
	want, ok := p.names.lookup(name)
	if !ok {
		return 0, false
	}
	match := p.matchPrefix(entityPrefix)
	var best time.Duration
	found := false
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		if nid == want && matches(match, eid) && (!found || t > best) {
			best = t
			found = true
		}
	})
	return best, found
}

// FirstID returns the earliest timestamp of the named event for exactly
// one pre-interned entity; ok is false if none exists. On the columnar
// layout only the entity's own stripe is scanned.
func (p *Profiler) FirstID(e EntityID, n NameID) (time.Duration, bool) {
	var best time.Duration
	found := false
	p.store.forEachEntity(uint32(e), func(nid uint32, t time.Duration) {
		if nid == uint32(n) && (!found || t < best) {
			best = t
			found = true
		}
	})
	return best, found
}

// LastID returns the latest timestamp of the named event for exactly one
// pre-interned entity; ok is false if none exists.
func (p *Profiler) LastID(e EntityID, n NameID) (time.Duration, bool) {
	var best time.Duration
	found := false
	p.store.forEachEntity(uint32(e), func(nid uint32, t time.Duration) {
		if nid == uint32(n) && (!found || t > best) {
			best = t
			found = true
		}
	})
	return best, found
}

// Span returns Last(prefix, stop) - First(prefix, start): the wall span
// from the first start to the last stop across matching entities. It is
// the figure-level "phase duration" (e.g. all simulations of an
// iteration). ok is false if either endpoint is missing.
func (p *Profiler) Span(entityPrefix, start, stop string) (time.Duration, bool) {
	a, ok1 := p.First(entityPrefix, start)
	b, ok2 := p.Last(entityPrefix, stop)
	if !ok1 || !ok2 || b < a {
		return 0, false
	}
	return b - a, true
}

// SumPairs sums, over every entity matching the prefix, the duration
// between that entity's start and stop events (pairing first start with
// first stop per entity). It measures aggregate busy time rather than wall
// span. The accumulators are flat arrays indexed by entity id — no maps,
// no string keys.
func (p *Profiler) SumPairs(entityPrefix, start, stop string) time.Duration {
	startID, ok1 := p.names.lookup(start)
	stopID, ok2 := p.names.lookup(stop)
	if !ok1 && !ok2 {
		return 0
	}
	match := p.matchPrefix(entityPrefix)
	n := p.ents.count()
	starts := make([]time.Duration, n)
	stops := make([]time.Duration, n)
	seenStart := make([]bool, n)
	seenStop := make([]bool, n)
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		if !matches(match, eid) {
			return
		}
		switch {
		case ok1 && nid == startID:
			if !seenStart[eid] {
				starts[eid] = t
				seenStart[eid] = true
			}
		case ok2 && nid == stopID:
			if !seenStop[eid] {
				stops[eid] = t
				seenStop[eid] = true
			}
		}
	})
	var total time.Duration
	for id := 0; id < n; id++ {
		if seenStart[id] && seenStop[id] && stops[id] >= starts[id] {
			total += stops[id] - starts[id]
		}
	}
	return total
}

// Entities returns the sorted distinct entities matching the prefix that
// have recorded at least one event.
func (p *Profiler) Entities(prefix string) []string {
	match := p.matchPrefix(prefix)
	seen := make([]bool, len(match))
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		if matches(match, eid) {
			seen[eid] = true
		}
	})
	var out []string
	for id, s := range seen {
		if s {
			out = append(out, p.ents.resolve(uint32(id)))
		}
	}
	sort.Strings(out)
	return out
}

// Timeline renders events sorted by time, for debugging.
func (p *Profiler) Timeline() string {
	evs := p.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%12v  %-24s %s\n", e.T, e.Entity, e.Name)
	}
	return b.String()
}
