// Package profile records timestamped events on the virtual clock and
// answers the duration queries behind the paper's TTC decomposition
// (toolkit core overhead, pattern overhead, execution time, staging time).
// Every layer — core, pilot, agent — writes into the same Profiler, which
// is what makes the stacked-bar figures reconstructible.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"entk/internal/vclock"
)

// Event is one timestamped occurrence for an entity.
type Event struct {
	Entity string        // e.g. "unit.0042", "pattern", "resource"
	Name   string        // e.g. "exec_start", "exec_stop"
	T      time.Duration // virtual time
}

// Profiler accumulates events. It is safe for concurrent use.
type Profiler struct {
	clock vclock.Clock
	mu    sync.Mutex
	evs   []Event
}

// New returns an empty profiler reading timestamps from clock.
func New(clock vclock.Clock) *Profiler {
	return &Profiler{clock: clock}
}

// Record appends an event for entity at the current time.
func (p *Profiler) Record(entity, name string) {
	t := p.clock.Now()
	p.mu.Lock()
	p.evs = append(p.evs, Event{Entity: entity, Name: name, T: t})
	p.mu.Unlock()
}

// Events returns a copy of all events in insertion order.
func (p *Profiler) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.evs...)
}

// First returns the earliest timestamp of the named event for entities
// matching the prefix; ok is false if none exists.
func (p *Profiler) First(entityPrefix, name string) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best time.Duration
	found := false
	for _, e := range p.evs {
		if e.Name == name && strings.HasPrefix(e.Entity, entityPrefix) {
			if !found || e.T < best {
				best = e.T
				found = true
			}
		}
	}
	return best, found
}

// Last returns the latest timestamp of the named event for entities
// matching the prefix; ok is false if none exists.
func (p *Profiler) Last(entityPrefix, name string) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best time.Duration
	found := false
	for _, e := range p.evs {
		if e.Name == name && strings.HasPrefix(e.Entity, entityPrefix) {
			if !found || e.T > best {
				best = e.T
				found = true
			}
		}
	}
	return best, found
}

// Span returns Last(prefix, stop) - First(prefix, start): the wall span
// from the first start to the last stop across matching entities. It is
// the figure-level "phase duration" (e.g. all simulations of an
// iteration). ok is false if either endpoint is missing.
func (p *Profiler) Span(entityPrefix, start, stop string) (time.Duration, bool) {
	a, ok1 := p.First(entityPrefix, start)
	b, ok2 := p.Last(entityPrefix, stop)
	if !ok1 || !ok2 || b < a {
		return 0, false
	}
	return b - a, true
}

// SumPairs sums, over every entity matching the prefix, the duration
// between that entity's start and stop events (pairing first start with
// first stop per entity). It measures aggregate busy time rather than wall
// span.
func (p *Profiler) SumPairs(entityPrefix, start, stop string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	starts := make(map[string]time.Duration)
	stops := make(map[string]time.Duration)
	for _, e := range p.evs {
		if !strings.HasPrefix(e.Entity, entityPrefix) {
			continue
		}
		switch e.Name {
		case start:
			if _, seen := starts[e.Entity]; !seen {
				starts[e.Entity] = e.T
			}
		case stop:
			if _, seen := stops[e.Entity]; !seen {
				stops[e.Entity] = e.T
			}
		}
	}
	var total time.Duration
	for ent, s := range starts {
		if e, ok := stops[ent]; ok && e >= s {
			total += e - s
		}
	}
	return total
}

// Entities returns the sorted distinct entities matching the prefix.
func (p *Profiler) Entities(prefix string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := make(map[string]bool)
	for _, e := range p.evs {
		if strings.HasPrefix(e.Entity, prefix) {
			set[e.Entity] = true
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Timeline renders events sorted by time, for debugging.
func (p *Profiler) Timeline() string {
	evs := p.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%12v  %-24s %s\n", e.T, e.Entity, e.Name)
	}
	return b.String()
}
