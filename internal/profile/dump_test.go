package profile

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"entk/internal/vclock"
)

// buildDumpFixture records a randomized but seeded event population on
// the given layout: a fixed vocabulary over a few hundred entities with
// out-of-order interning, so the dump has to preserve id allocation
// order, not just content.
func buildDumpFixture(layout Layout) *Profiler {
	v := vclock.NewVirtual()
	p := NewLayout(v, layout)
	rng := rand.New(rand.NewSource(42))
	names := []string{"exec_start", "exec_stop", "state_DONE", "stagein_start", "stagein_stop"}
	nids := make([]NameID, len(names))
	for i, s := range names {
		nids[i] = p.InternName(s)
	}
	var eids []EntityID
	for i := 0; i < 200; i++ {
		eids = append(eids, p.Intern("unit."+strings.Repeat("0", i%3)+string(rune('a'+i%26))+itoa(i)))
	}
	eids = append(eids, p.Intern("pattern"), p.Intern("core"))
	v.Run(func() {
		for i := 0; i < 5000; i++ {
			v.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			p.RecordID(eids[rng.Intn(len(eids))], nids[rng.Intn(len(nids))])
		}
	})
	return p
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// sortedEvents is the layout-independent view: per-entity order is
// preserved by both stores, but cross-entity stripe order is not
// meaningful, so comparisons sort.
func sortedEvents(p *Profiler) []Event {
	evs := p.Events()
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Entity != evs[j].Entity {
			return evs[i].Entity < evs[j].Entity
		}
		if evs[i].T != evs[j].T {
			return evs[i].T < evs[j].T
		}
		return evs[i].Name < evs[j].Name
	})
	return evs
}

// TestDumpRoundTrip writes a populated profiler to the binary format and
// reads it back into a fresh profiler on every layout pairing: events,
// intern ids, and every query primitive must answer identically.
func TestDumpRoundTrip(t *testing.T) {
	for _, srcLayout := range []Layout{LayoutColumnar, LayoutRef} {
		for _, dstLayout := range []Layout{LayoutColumnar, LayoutRef} {
			src := buildDumpFixture(srcLayout)
			var buf bytes.Buffer
			n, err := src.WriteTo(&buf)
			if err != nil {
				t.Fatalf("%v->%v: WriteTo: %v", srcLayout, dstLayout, err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("%v->%v: WriteTo reported %d bytes, wrote %d", srcLayout, dstLayout, n, buf.Len())
			}
			dst := NewLayout(vclock.NewVirtual(), dstLayout)
			m, err := dst.ReadFrom(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%v->%v: ReadFrom: %v", srcLayout, dstLayout, err)
			}
			if m != n {
				t.Errorf("%v->%v: ReadFrom consumed %d bytes, dump has %d", srcLayout, dstLayout, m, n)
			}
			if dst.EventCount() != src.EventCount() {
				t.Fatalf("%v->%v: event count %d, want %d", srcLayout, dstLayout, dst.EventCount(), src.EventCount())
			}
			if !reflect.DeepEqual(sortedEvents(src), sortedEvents(dst)) {
				t.Fatalf("%v->%v: events diverge after round trip", srcLayout, dstLayout)
			}
			// Interned ids must be reproduced, not just strings: an id
			// recorded against the source resolves identically in the copy.
			if src.EntityName(5) != dst.EntityName(5) || src.Name(2) != dst.Name(2) {
				t.Errorf("%v->%v: intern ids not preserved", srcLayout, dstLayout)
			}
			// Query parity on the reloaded profiler.
			for _, prefix := range []string{"unit.", "pattern", "core", "unit.0"} {
				for _, name := range []string{"exec_start", "exec_stop", "state_DONE"} {
					a1, ok1 := src.First(prefix, name)
					b1, ok2 := dst.First(prefix, name)
					if a1 != b1 || ok1 != ok2 {
						t.Errorf("First(%q,%q) diverges: %v/%v vs %v/%v", prefix, name, a1, ok1, b1, ok2)
					}
					a2, _ := src.Last(prefix, name)
					b2, _ := dst.Last(prefix, name)
					if a2 != b2 {
						t.Errorf("Last(%q,%q) diverges: %v vs %v", prefix, name, a2, b2)
					}
				}
				if got, want := dst.SumPairs(prefix, "exec_start", "exec_stop"), src.SumPairs(prefix, "exec_start", "exec_stop"); got != want {
					t.Errorf("SumPairs(%q) = %v, want %v", prefix, got, want)
				}
				if !reflect.DeepEqual(src.Entities(prefix), dst.Entities(prefix)) {
					t.Errorf("Entities(%q) diverges", prefix)
				}
			}
		}
	}
}

// TestDumpRejectsGarbage pins the error paths: bad magic, bad version,
// truncated streams, and non-empty destinations.
func TestDumpRejectsGarbage(t *testing.T) {
	src := buildDumpFixture(LayoutColumnar)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	fresh := func() *Profiler { return New(vclock.NewVirtual()) }
	if _, err := fresh().ReadFrom(bytes.NewReader([]byte("NOTAPROF"))); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte(nil), good...)
	bad[8] = 99 // version
	if _, err := fresh().ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := fresh().ReadFrom(bytes.NewReader(good[:len(good)-7])); err == nil {
		t.Error("truncated stream accepted")
	}
	used := fresh()
	used.Record("x", "y")
	if used.Empty() {
		t.Error("Empty() true after Record")
	}
	if _, err := used.ReadFrom(bytes.NewReader(good)); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("non-empty destination: err = %v, want ErrNotEmpty", err)
	}
	if !fresh().Empty() {
		t.Error("Empty() false on a fresh profiler")
	}
}
