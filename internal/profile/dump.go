// Persistent binary traces: the intern table makes a compact dump format
// natural — the string tables are written once, and every event travels
// as the same 16-byte {entityID, nameID, t} record the columnar store
// keeps in memory. A 100k-task run (a few million events) serialises in
// tens of MB and round-trips losslessly, so traces can be archived and
// analysed offline (entk-bench -profdump writes one).
package profile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrNotEmpty is wrapped by ReadFrom when the destination profiler has
// already interned or recorded anything; callers can test for it with
// errors.Is (or avoid it up front with Empty).
var ErrNotEmpty = errors.New("profile: ReadFrom needs an empty profiler")

// Dump format, little-endian throughout:
//
//	[8]  magic "ENTKPROF"
//	u32  version (currently 1)
//	u32  entity count, then per entity: u32 length + bytes (id order)
//	u32  name count, same encoding (id order)
//	u64  event count
//	per event: u32 entityID, u32 nameID, i64 t  (16 bytes)
//
// Ids in the records index the two string tables directly; preserving
// table order on read reproduces the in-memory ids exactly, so queries
// against a reloaded profiler answer identically.
const (
	dumpMagic   = "ENTKPROF"
	dumpVersion = 1
	// dumpMaxString bounds one interned string in a dump. Entity keys
	// and event names are tens of bytes; the cap only exists so a
	// corrupted length field fails cleanly instead of asking the
	// allocator for up to 4 GiB before the truncation is detected.
	dumpMaxString = 1 << 20
)

// countingWriter counts the bytes that actually reach the wrapped
// writer, so WriteTo can honour the io.WriterTo contract (n = bytes
// written to w) across a buffering layer even on partial failure.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	m, err := c.w.Write(p)
	c.n += int64(m)
	return m, err
}

// WriteTo serialises the profiler's intern tables and full event log.
// It implements io.WriterTo. The profiler must be quiescent: recorders
// racing the dump may be partially included.
func (p *Profiler) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	write := func(v any) error {
		return binary.Write(bw, binary.LittleEndian, v)
	}
	writeString := func(s string) error {
		if err := write(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if _, err := bw.WriteString(dumpMagic); err != nil {
		return cw.n, err
	}
	if err := write(uint32(dumpVersion)); err != nil {
		return cw.n, err
	}
	for _, table := range []*interner{&p.ents, &p.names} {
		count := table.count()
		if err := write(uint32(count)); err != nil {
			return cw.n, err
		}
		for id := 0; id < count; id++ {
			if err := writeString(table.resolve(uint32(id))); err != nil {
				return cw.n, err
			}
		}
	}
	if err := write(uint64(p.store.count())); err != nil {
		return cw.n, err
	}
	var werr error
	p.store.forEach(func(eid, nid uint32, t time.Duration) {
		if werr != nil {
			return
		}
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:], eid)
		binary.LittleEndian.PutUint32(rec[4:], nid)
		binary.LittleEndian.PutUint64(rec[8:], uint64(t))
		if _, err := bw.Write(rec[:]); err != nil {
			werr = err
		}
	})
	if werr != nil {
		return cw.n, werr
	}
	err := bw.Flush()
	return cw.n, err
}

// ReadFrom loads a dump produced by WriteTo into an empty profiler
// (either storage layout), reproducing the intern ids and the event log
// so every query answers as it did on the original. It implements
// io.ReaderFrom.
func (p *Profiler) ReadFrom(r io.Reader) (int64, error) {
	if !p.Empty() {
		return 0, fmt.Errorf("%w (%d entities, %d names, %d events already present)",
			ErrNotEmpty, p.ents.count(), p.names.count(), p.store.count())
	}
	br := bufio.NewReader(r)
	var n int64
	read := func(v any) error {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}

	magic := make([]byte, len(dumpMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return n, err
	}
	n += int64(len(magic))
	if string(magic) != dumpMagic {
		return n, fmt.Errorf("profile: bad dump magic %q", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return n, err
	}
	if version != dumpVersion {
		return n, fmt.Errorf("profile: dump version %d, want %d", version, dumpVersion)
	}
	for _, table := range []*interner{&p.ents, &p.names} {
		var count uint32
		if err := read(&count); err != nil {
			return n, err
		}
		buf := make([]byte, 0, 64)
		for id := uint32(0); id < count; id++ {
			var length uint32
			if err := read(&length); err != nil {
				return n, err
			}
			if length > dumpMaxString {
				return n, fmt.Errorf("profile: dump string length %d exceeds cap %d (corrupt dump?)", length, dumpMaxString)
			}
			if cap(buf) < int(length) {
				buf = make([]byte, length)
			}
			buf = buf[:length]
			if _, err := io.ReadFull(br, buf); err != nil {
				return n, err
			}
			n += int64(length)
			// Interning in table order reassigns the dense ids 0..count-1
			// exactly as the original profiler allocated them.
			if got := table.intern(string(buf)); got != id {
				return n, fmt.Errorf("profile: dump id %d resolved to %d (duplicate table entry?)", id, got)
			}
		}
	}
	var events uint64
	if err := read(&events); err != nil {
		return n, err
	}
	ents := uint32(p.ents.count())
	names := uint32(p.names.count())
	var rec [16]byte
	for i := uint64(0); i < events; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return n, err
		}
		n += 16
		eid := binary.LittleEndian.Uint32(rec[0:])
		nid := binary.LittleEndian.Uint32(rec[4:])
		t := time.Duration(binary.LittleEndian.Uint64(rec[8:]))
		if eid >= ents || nid >= names {
			return n, fmt.Errorf("profile: event %d references id outside tables (%d/%d)", i, eid, nid)
		}
		p.store.record(eid, nid, t)
	}
	return n, nil
}
