package profile

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickClock is a fake clock handing out strictly increasing timestamps,
// one per Now() call, so every recorded event carries a unique time and
// per-entity ordering is checkable exactly.
type tickClock struct{ n atomic.Int64 }

func (c *tickClock) Now() time.Duration { return time.Duration(c.n.Add(1)) }

// TestConcurrentSnapshotHammer hammers Snapshot while recorders are
// running, on both layouts: every snapshot must contain at least the
// events already recorded when it was taken, be internally consistent
// (every id resolves, per-entity timestamps strictly increase, count
// matches the visit), and serialise through WriteTo/ReadFrom losslessly
// — the live-trace contract the service's /trace endpoint leans on.
func TestConcurrentSnapshotHammer(t *testing.T) {
	for _, l := range layouts {
		l := l
		t.Run(l.String(), func(t *testing.T) {
			const (
				recorders = 8
				perG      = 4000
				perOwner  = 6 // entities per recorder, spread over the stripes
				entities  = recorders * perOwner
				snaps     = 40
			)
			clock := &tickClock{}
			p := NewLayout(clock, l)
			// Each entity has a single writer: Now() and the store append
			// are not one atomic step, so only single-writer entities have
			// strictly increasing timestamps to assert on.
			eids := make([]EntityID, entities)
			for i := range eids {
				eids[i] = p.Intern(fmt.Sprintf("unit.%06d", i))
			}
			names := []NameID{
				p.InternName("exec_start"),
				p.InternName("exec_stop"),
				p.InternName("state_DONE"),
			}

			var recorded atomic.Int64 // events fully recorded so far
			var wg sync.WaitGroup
			for g := 0; g < recorders; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if i%97 == 0 {
							// Exercise the string path too: it interns new
							// entities concurrently with snapshots.
							p.Record(fmt.Sprintf("late.%03d.%03d", g, i), "seen")
						} else {
							p.RecordID(eids[g*perOwner+i%perOwner], names[i%len(names)])
						}
						recorded.Add(1)
					}
				}()
			}

			check := func(snap *Profiler, atLeast int64) {
				t.Helper()
				if got := int64(snap.EventCount()); got < atLeast {
					t.Fatalf("snapshot holds %d events, %d were recorded before it", got, atLeast)
				}
				visited := 0
				lastT := make(map[string]time.Duration)
				for _, e := range snap.Events() { // resolves every id
					visited++
					if e.Name == "" || e.Entity == "" {
						t.Fatal("snapshot event resolved to empty string")
					}
					if prev, ok := lastT[e.Entity]; ok && e.T <= prev {
						t.Fatalf("entity %s out of order: %v after %v", e.Entity, e.T, prev)
					}
					lastT[e.Entity] = e.T
				}
				if visited != snap.EventCount() {
					t.Fatalf("visited %d events, count says %d", visited, snap.EventCount())
				}
			}

			for i := 0; i < snaps; i++ {
				atLeast := recorded.Load()
				check(p.Snapshot(), atLeast)
			}
			wg.Wait()

			// Quiescent now: the final snapshot must match the live
			// profiler exactly and round-trip through the dump format.
			snap := p.Snapshot()
			if snap.EventCount() != p.EventCount() || int64(p.EventCount()) != int64(recorders*perG) {
				t.Fatalf("final counts: snap=%d live=%d want=%d",
					snap.EventCount(), p.EventCount(), recorders*perG)
			}
			check(snap, int64(recorders*perG))
			if got, want := snap.Count("unit.", "exec_start"), p.Count("unit.", "exec_start"); got != want {
				t.Fatalf("snapshot query diverges: Count=%d live=%d", got, want)
			}
			var buf bytes.Buffer
			if _, err := snap.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo on snapshot: %v", err)
			}
			reloaded := NewLayout(clock, l)
			if _, err := reloaded.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("ReadFrom of snapshot dump: %v", err)
			}
			if reloaded.EventCount() != snap.EventCount() {
				t.Fatalf("dump round trip lost events: %d vs %d", reloaded.EventCount(), snap.EventCount())
			}

			// A snapshot is a read view: recording into it must refuse
			// loudly instead of corrupting the frozen chunks.
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("Record on a snapshot did not panic")
					}
				}()
				snap.Record("x", "y")
			}()
		})
	}
}

// TestSnapshotMidChunkTail pins the copy-on-read boundary: events
// recorded after a snapshot must never appear in it, even when they land
// in the same chunk the snapshot's tail copy came from.
func TestSnapshotMidChunkTail(t *testing.T) {
	clock := &tickClock{}
	p := New(clock)
	e := p.Intern("unit.000001")
	n := p.InternName("tick")
	for i := 0; i < 100; i++ { // well inside the first chunk
		p.RecordID(e, n)
	}
	snap := p.Snapshot()
	for i := 0; i < 500; i++ {
		p.RecordID(e, n)
	}
	if got := snap.EventCount(); got != 100 {
		t.Fatalf("snapshot grew after the fact: %d events, want 100", got)
	}
	if got := p.EventCount(); got != 600 {
		t.Fatalf("live profiler lost events: %d, want 600", got)
	}
	if last, ok := snap.LastID(e, n); !ok || last != time.Duration(100) {
		t.Fatalf("snapshot tail = %v (ok=%v), want 100", last, ok)
	}
}
