// Live snapshots: a long-running service wants to stream a campaign's
// trace while the campaign is still executing, but WriteTo requires a
// quiescent profiler (its event count, intern tables, and event log are
// written in separate passes, and recorders racing those passes produce
// a dump whose records reference ids past the tables). Snapshot closes
// the gap with a copy-on-read of the store: a chunk that has filled is
// sealed — the stripe log never touches it again — so sealing chunks
// are aliased for free and only each stripe's unsealed tail (at most
// one chunk) is copied under the stripe lock. The intern tables are
// captured AFTER the store, so every id in the frozen log resolves.
package profile

import "time"

// snapshotStore is the frozen event log behind a Snapshot: per-stripe
// chunk lists of columnar records, immutable after construction. It
// refuses Record — a snapshot is a read view, not a fork.
type snapshotStore struct {
	stripes [profStripes][][]colEvent
	n       int
}

func (s *snapshotStore) record(eid, nid uint32, t time.Duration) {
	panic("profile: Record on a Snapshot profiler (snapshots are read-only)")
}

func (s *snapshotStore) forEach(fn func(eid, nid uint32, t time.Duration)) {
	for i := range s.stripes {
		for _, c := range s.stripes[i] {
			for j := range c {
				fn(c[j].eid, c[j].nid, time.Duration(c[j].t))
			}
		}
	}
}

func (s *snapshotStore) forEachEntity(eid uint32, fn func(nid uint32, t time.Duration)) {
	// An entity's events all live in one source stripe in insertion
	// order, so a full sequential scan preserves per-entity order.
	s.forEach(func(e, nid uint32, t time.Duration) {
		if e == eid {
			fn(nid, t)
		}
	})
}

func (s *snapshotStore) count() int { return s.n }

// freeze captures the stripe's records at this instant: sealed chunks
// (len == cap) are aliased — append only ever touches the tail chunk —
// and the unsealed tail is copied. The work under the stripe lock is
// O(tail), bounded by one chunk, so recorders stall for microseconds,
// not for the length of the history.
func (s *stripeLog[E]) freeze() (chunks [][]E, n int) {
	s.mu.Lock()
	chunks = make([][]E, len(s.chunks))
	copy(chunks, s.chunks)
	if last := len(chunks) - 1; last >= 0 && len(chunks[last]) < cap(chunks[last]) {
		tail := make([]E, len(chunks[last]))
		copy(tail, chunks[last])
		chunks[last] = tail
	}
	n = s.n
	s.mu.Unlock()
	return chunks, n
}

// Snapshot returns a frozen, internally consistent copy of the profiler
// that is safe to take while recorders are still running: every event
// recorded before the call is included, events racing the call are
// included or excluded whole, and every included event resolves against
// the snapshot's own intern tables. The returned profiler answers all
// queries (and WriteTo) like a quiescent profiler would; recording into
// it panics. This is what lets a service stream a live campaign's trace
// without waiting for the run's barrier.
func (p *Profiler) Snapshot() *Profiler {
	frozen := &snapshotStore{}
	switch st := p.store.(type) {
	case *columnarStore:
		for i := range st.stripes {
			chunks, n := st.stripes[i].freeze()
			frozen.stripes[i] = chunks
			frozen.n += n
		}
	case *refStore:
		// The reference layout stores string records; translate through
		// the live intern tables (both strings were interned at record
		// time, so lookups hit) into the columnar snapshot form. The
		// string chunks are frozen first — the translation itself runs
		// on immutable data, outside the stripe locks.
		for i := range st.stripes {
			chunks, n := st.stripes[i].freeze()
			col := make([]colEvent, 0, n)
			for _, c := range chunks {
				for _, e := range c {
					eid, _ := p.ents.lookup(e.Entity)
					nid, _ := p.names.lookup(e.Name)
					col = append(col, colEvent{eid: eid, nid: nid, t: int64(e.T)})
				}
			}
			frozen.stripes[i] = [][]colEvent{col}
			frozen.n += n
		}
	case *snapshotStore:
		// Snapshot of a snapshot: already frozen, share it.
		frozen = st
	}

	// Capture the tables AFTER the store: any id in a frozen record was
	// interned before its record call, which happened before the freeze,
	// so it is covered by the counts read here. Interning in id order
	// reassigns the dense ids 0..n-1 exactly as the source allocated
	// them, so dumps and queries agree with the live profiler.
	s := &Profiler{clock: p.clock, layout: p.layout, store: frozen}
	for id, n := uint32(0), uint32(p.ents.count()); id < n; id++ {
		s.ents.intern(p.ents.resolve(id))
	}
	for id, n := uint32(0), uint32(p.names.count()); id < n; id++ {
		s.names.intern(p.names.resolve(id))
	}
	return s
}
