package profile

import (
	"strings"
	"testing"
	"time"

	"entk/internal/vclock"
)

func TestRecordAndQueries(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	v.Run(func() {
		p.Record("unit.0", "exec_start")
		v.Sleep(10 * time.Second)
		p.Record("unit.0", "exec_stop")
		p.Record("unit.1", "exec_start")
		v.Sleep(5 * time.Second)
		p.Record("unit.1", "exec_stop")
	})

	if n := len(p.Events()); n != 4 {
		t.Fatalf("%d events, want 4", n)
	}
	first, ok := p.First("unit.", "exec_start")
	if !ok || first != 0 {
		t.Errorf("First = %v,%v", first, ok)
	}
	last, ok := p.Last("unit.", "exec_stop")
	if !ok || last != 15*time.Second {
		t.Errorf("Last = %v,%v", last, ok)
	}
	span, ok := p.Span("unit.", "exec_start", "exec_stop")
	if !ok || span != 15*time.Second {
		t.Errorf("Span = %v,%v", span, ok)
	}
	if sum := p.SumPairs("unit.", "exec_start", "exec_stop"); sum != 15*time.Second {
		t.Errorf("SumPairs = %v, want 15s", sum)
	}
	if _, ok := p.First("unit.", "missing"); ok {
		t.Error("First found missing event")
	}
	if _, ok := p.Last("nope.", "exec_stop"); ok {
		t.Error("Last matched wrong prefix")
	}
	if _, ok := p.Span("unit.", "missing", "exec_stop"); ok {
		t.Error("Span with missing start succeeded")
	}
}

func TestSumPairsIgnoresUnpaired(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	v.Run(func() {
		p.Record("u.0", "start")
		v.Sleep(time.Second)
		p.Record("u.0", "stop")
		p.Record("u.1", "start") // never stops
		v.Sleep(time.Second)
		p.Record("u.2", "stop") // never started
	})
	if sum := p.SumPairs("u.", "start", "stop"); sum != time.Second {
		t.Errorf("SumPairs = %v, want 1s", sum)
	}
}

func TestSumPairsUsesFirstOccurrence(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	v.Run(func() {
		p.Record("u.0", "start")
		v.Sleep(time.Second)
		p.Record("u.0", "stop")
		v.Sleep(time.Second)
		p.Record("u.0", "start") // retry: ignored by pairing
		v.Sleep(time.Second)
		p.Record("u.0", "stop")
	})
	if sum := p.SumPairs("u.", "start", "stop"); sum != time.Second {
		t.Errorf("SumPairs = %v, want 1s (first pair only)", sum)
	}
}

func TestEntitiesSortedDistinct(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	v.Run(func() {
		p.Record("unit.2", "x")
		p.Record("unit.1", "x")
		p.Record("unit.1", "y")
		p.Record("pilot.0", "x")
	})
	got := p.Entities("unit.")
	if len(got) != 2 || got[0] != "unit.1" || got[1] != "unit.2" {
		t.Fatalf("Entities = %v", got)
	}
}

func TestTimeline(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	v.Run(func() {
		p.Record("b", "later")
		p.Record("a", "first")
	})
	tl := p.Timeline()
	if !strings.Contains(tl, "first") || !strings.Contains(tl, "later") {
		t.Fatalf("timeline missing events:\n%s", tl)
	}
}

func TestConcurrentRecording(t *testing.T) {
	v := vclock.NewVirtual()
	p := New(v)
	const n = 50
	v.Run(func() {
		wg := vclock.NewWaitGroup(v, "rec")
		for i := 0; i < n; i++ {
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				p.Record("unit.x", "tick")
			})
		}
		wg.Wait()
	})
	if got := len(p.Events()); got != n {
		t.Fatalf("%d events recorded, want %d", got, n)
	}
}
