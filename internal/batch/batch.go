// Package batch simulates an HPC batch-queue system (SLURM/PBS-like) on a
// virtual clock. Jobs request whole nodes for a bounded walltime; the
// scheduler admits them FIFO or with EASY backfill; running jobs are killed
// when their walltime expires. The pilot layer submits its placeholder
// ("container") jobs here, exactly as RADICAL-Pilot submits to SLURM.
package batch

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/cluster"
	"entk/internal/pad"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// Policy selects the queue scheduling discipline.
type Policy int

const (
	// FIFO admits jobs strictly in arrival order; the queue head blocks
	// everything behind it.
	FIFO Policy = iota
	// EASYBackfill admits the queue head when it fits and lets later jobs
	// jump ahead only if doing so cannot delay the head's earliest
	// possible start (EASY backfilling).
	EASYBackfill
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case EASYBackfill:
		return "easy-backfill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// State is a batch job's lifecycle state.
type State int

const (
	// Pending: submitted, waiting for resources.
	Pending State = iota
	// Running: nodes allocated, payload executing.
	Running
	// Completed: payload signalled completion before the walltime.
	Completed
	// TimedOut: killed by the walltime limit.
	TimedOut
	// Cancelled: cancelled by the user.
	Cancelled
)

func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case TimedOut:
		return "TIMEOUT"
	case Cancelled:
		return "CANCELLED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Final reports whether s is a terminal state.
func (s State) Final() bool { return s == Completed || s == TimedOut || s == Cancelled }

// Request describes a job submission.
type Request struct {
	// Name labels the job in diagnostics.
	Name string
	// Cores is the requested core count; the allocation is rounded up to
	// whole nodes as on real HPC machines.
	Cores int
	// Walltime is the hard execution time limit.
	Walltime time.Duration
	// Queue is the submission queue name (informational).
	Queue string
	// Project is the allocation charged (informational).
	Project string
}

// Job is a submitted batch job.
type Job struct {
	ID    int
	Req   Request
	Nodes int // whole nodes allocated

	sys      *System
	entityID profile.EntityID // interned "job.NNNN"; zero when unprofiled

	mu         sync.Mutex
	state      State
	eligibleAt time.Duration // virtual time at which the queue model admits it
	submitted  time.Duration
	started    time.Duration
	ended      time.Duration

	startEv *vclock.Event
	endEv   *vclock.Event
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// WaitStart blocks the calling process until the job leaves Pending. On
// return the job is Running or already final (e.g. cancelled while queued).
func (j *Job) WaitStart() { j.startEv.Wait() }

// WaitEnd blocks the calling process until the job reaches a final state,
// which it returns.
func (j *Job) WaitEnd() State {
	j.endEv.Wait()
	return j.State()
}

// QueueWait returns how long the job waited in the queue; valid once
// started.
func (j *Job) QueueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started - j.submitted
}

// Runtime returns how long the job ran; valid once final.
func (j *Job) Runtime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started == 0 && j.state == Cancelled {
		return 0
	}
	return j.ended - j.started
}

// Finish marks the payload complete, releasing the allocation. It is the
// simulation's stand-in for the job script exiting. Calling it when the
// job is not running is a no-op.
func (j *Job) Finish() { j.sys.endJob(j, Completed) }

// Cancel removes the job from the queue or kills it if running.
func (j *Job) Cancel() { j.sys.cancel(j) }

// Expire kills the job as the machine would at walltime expiry: a
// running job is ended TimedOut, a pending one is discarded as timed
// out without ever starting. Unlike Cancel this models a failure on the
// resource side, so callers charge no client network latency. It is the
// hook fault injection uses to expire an allocation at an exact virtual
// instant.
func (j *Job) Expire() { j.sys.expire(j) }

// System is one machine's batch system.
type System struct {
	v       vclock.Clock
	machine *cluster.Machine
	policy  Policy

	// prof, when set, receives job lifecycle events (submit / start /
	// end) recorded with the pre-interned ids below — the queue-wait
	// component of the TTC decomposition, reconstructed from the batch
	// layer itself.
	prof                     *profile.Profiler
	evSubmit, evStart, evEnd profile.NameID

	mu        sync.Mutex
	nextID    int
	freeNodes int
	queue     []*Job                 // pending jobs in arrival order
	running   map[*Job]time.Duration // job -> walltime deadline (virtual)
}

// SetProfiler wires lifecycle recording into p. The fixed event names are
// interned once here; per-job entities are interned at submission.
func (s *System) SetProfiler(p *profile.Profiler) {
	s.prof = p
	s.evSubmit = p.InternName("job_submit")
	s.evStart = p.InternName("job_start")
	s.evEnd = p.InternName("job_end")
}

// NewSystem creates a batch system for machine with the given policy.
func NewSystem(v vclock.Clock, machine *cluster.Machine, policy Policy) (*System, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	return &System{
		v:         v,
		machine:   machine,
		policy:    policy,
		freeNodes: machine.Nodes,
		running:   make(map[*Job]time.Duration),
	}, nil
}

// Machine returns the machine this system schedules.
func (s *System) Machine() *cluster.Machine { return s.machine }

// FreeNodes returns the currently unallocated node count.
func (s *System) FreeNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeNodes
}

// Submit enqueues a job request. The returned job is Pending; it becomes
// Running once the queue-wait model admits it and nodes are free. Submit
// must be called from a registered vclock process.
func (s *System) Submit(req Request) (*Job, error) {
	if req.Cores <= 0 {
		return nil, fmt.Errorf("batch: job %q requests %d cores", req.Name, req.Cores)
	}
	if req.Walltime <= 0 {
		return nil, fmt.Errorf("batch: job %q has non-positive walltime", req.Name)
	}
	nodes := s.machine.NodesFor(req.Cores)
	if nodes > s.machine.Nodes {
		return nil, fmt.Errorf("batch: job %q needs %d nodes, machine %s has %d",
			req.Name, nodes, s.machine.Name, s.machine.Nodes)
	}

	s.mu.Lock()
	s.nextID++
	j := &Job{
		ID:        s.nextID,
		Req:       req,
		Nodes:     nodes,
		sys:       s,
		state:     Pending,
		submitted: s.v.Now(),
		startEv:   vclock.NewEvent(s.v, fmt.Sprintf("batch job %d start", s.nextID)),
		endEv:     vclock.NewEvent(s.v, fmt.Sprintf("batch job %d end", s.nextID)),
	}
	if s.prof != nil {
		// Interned before the job is published: once it is in s.queue a
		// concurrent schedule() may record job_start at the same virtual
		// instant (zero-wait machines), so entityID must already be set.
		j.entityID = s.prof.Intern("job." + pad.Int(j.ID, 4))
	}
	delay := s.machine.QueueWaitBase + time.Duration(nodes)*s.machine.QueueWaitPerNode
	j.eligibleAt = s.v.Now() + delay
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	if s.prof != nil {
		s.prof.RecordID(j.entityID, s.evSubmit)
	}

	// The queue-wait model: the job becomes schedulable only after its
	// modelled delay, so even an empty machine imposes realistic waits.
	s.v.Go(func() {
		s.v.Sleep(delay)
		s.schedule()
	})
	return j, nil
}

// schedule admits pending jobs per the policy. Called whenever capacity or
// eligibility changes.
func (s *System) schedule() {
	var started []*Job
	s.mu.Lock()
	now := s.v.Now()
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.eligibleAt > now {
			// The head keeps its priority even while the queue-wait model
			// still holds it; nothing may overtake it.
			break
		}
		if head.Nodes <= s.freeNodes {
			s.queue = s.queue[1:]
			s.startLocked(head, now)
			started = append(started, head)
			continue
		}
		if s.policy == EASYBackfill {
			if bf := s.backfillCandidate(0, now); bf >= 0 {
				j := s.queue[bf]
				s.queue = append(s.queue[:bf], s.queue[bf+1:]...)
				s.startLocked(j, now)
				started = append(started, j)
				continue
			}
		}
		break
	}
	s.mu.Unlock()

	for _, j := range started {
		if s.prof != nil {
			s.prof.RecordID(j.entityID, s.evStart)
		}
		j.startEv.Fire()
		s.armWalltime(j)
	}
}

// backfillCandidate returns the index of an eligible job after headIdx that
// can start now without delaying the head's earliest possible start (EASY
// rule), or -1. Caller holds mu.
func (s *System) backfillCandidate(headIdx int, now time.Duration) int {
	head := s.queue[headIdx]
	shadow, extra := s.shadowTime(head, now)
	for i := headIdx + 1; i < len(s.queue); i++ {
		j := s.queue[i]
		if j.eligibleAt > now || j.Nodes > s.freeNodes {
			continue
		}
		if now+j.Req.Walltime <= shadow || j.Nodes <= extra {
			return i
		}
	}
	return -1
}

// shadowTime computes when the head job could start given current running
// jobs' walltime deadlines, and how many nodes would still be free at that
// moment beyond the head's need. Caller holds mu.
func (s *System) shadowTime(head *Job, now time.Duration) (shadow time.Duration, extraNodes int) {
	type rel struct {
		at    time.Duration
		nodes int
	}
	var rels []rel
	for j, deadline := range s.running {
		rels = append(rels, rel{deadline, j.Nodes})
	}
	// Insertion sort by release time (running set is small).
	for i := 1; i < len(rels); i++ {
		for k := i; k > 0 && rels[k].at < rels[k-1].at; k-- {
			rels[k], rels[k-1] = rels[k-1], rels[k]
		}
	}
	free := s.freeNodes
	for _, r := range rels {
		free += r.nodes
		if free >= head.Nodes {
			return r.at, free - head.Nodes
		}
	}
	// Head can never start: treat shadow as infinity so nothing backfills
	// on its account (the submit-time capacity check makes this unlikely).
	return 1<<62 - 1, 0
}

// startLocked transitions j to Running. Caller holds mu.
func (s *System) startLocked(j *Job, now time.Duration) {
	s.freeNodes -= j.Nodes
	if s.freeNodes < 0 {
		panic("batch: node over-allocation")
	}
	j.mu.Lock()
	j.state = Running
	j.started = now
	j.mu.Unlock()
	s.running[j] = now + j.Req.Walltime
}

// armWalltime schedules the walltime kill for a running job.
func (s *System) armWalltime(j *Job) {
	s.v.Go(func() {
		s.v.Sleep(j.Req.Walltime)
		s.endJob(j, TimedOut)
	})
}

// endJob moves a running job to a final state and frees its nodes.
func (s *System) endJob(j *Job, final State) {
	j.mu.Lock()
	if j.state != Running {
		j.mu.Unlock()
		return
	}
	j.state = final
	j.ended = s.v.Now()
	j.mu.Unlock()

	s.mu.Lock()
	delete(s.running, j)
	s.freeNodes += j.Nodes
	s.mu.Unlock()

	if s.prof != nil {
		s.prof.RecordID(j.entityID, s.evEnd)
	}
	j.endEv.Fire()
	s.schedule()
}

// cancel handles Job.Cancel for both queued and running jobs.
func (s *System) cancel(j *Job) {
	j.mu.Lock()
	switch j.state {
	case Pending:
		j.state = Cancelled
		j.ended = s.v.Now()
		j.mu.Unlock()
		s.mu.Lock()
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		j.startEv.Fire() // release WaitStart callers
		j.endEv.Fire()
		return
	case Running:
		j.mu.Unlock()
		s.endJob(j, Cancelled)
		return
	default:
		j.mu.Unlock()
	}
}

// expire handles Job.Expire for both queued and running jobs: the
// machine-side abnormal termination. It mirrors cancel's state walk but
// lands on TimedOut, so the SAGA layer reports the death as Failed.
func (s *System) expire(j *Job) {
	j.mu.Lock()
	switch j.state {
	case Pending:
		j.state = TimedOut
		j.ended = s.v.Now()
		j.mu.Unlock()
		s.mu.Lock()
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if s.prof != nil {
			s.prof.RecordID(j.entityID, s.evEnd)
		}
		j.startEv.Fire() // release WaitStart callers
		j.endEv.Fire()
		return
	case Running:
		j.mu.Unlock()
		s.endJob(j, TimedOut)
		return
	default:
		j.mu.Unlock()
	}
}

// QueueLength returns the number of pending jobs.
func (s *System) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// RunningCount returns the number of running jobs.
func (s *System) RunningCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}
