package batch

import (
	"sync"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/vclock"
)

// testMachine returns a small machine with a deterministic queue model:
// wait = 10s + 1s/node.
func testMachine() *cluster.Machine {
	return &cluster.Machine{
		Name:             "test.machine",
		Nodes:            4,
		CoresPerNode:     10,
		MemPerNodeGB:     16,
		FSBandwidthMBps:  100,
		QueueWaitBase:    10 * time.Second,
		QueueWaitPerNode: time.Second,
	}
}

func newSys(t *testing.T, v *vclock.Virtual, p Policy) *System {
	t.Helper()
	s, err := NewSystem(v, testMachine(), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubmitValidation(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, FIFO)
	v.Run(func() {
		if _, err := s.Submit(Request{Name: "a", Cores: 0, Walltime: time.Hour}); err == nil {
			t.Error("zero cores accepted")
		}
		if _, err := s.Submit(Request{Name: "b", Cores: 10, Walltime: 0}); err == nil {
			t.Error("zero walltime accepted")
		}
		if _, err := s.Submit(Request{Name: "c", Cores: 1000, Walltime: time.Hour}); err == nil {
			t.Error("oversized job accepted")
		}
	})
}

func TestJobLifecycleAndQueueWait(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, FIFO)
	v.Run(func() {
		// 15 cores => 2 nodes => wait 10s + 2s = 12s.
		j, err := s.Submit(Request{Name: "job", Cores: 15, Walltime: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if j.State() != Pending {
			t.Fatalf("state after submit = %v", j.State())
		}
		j.WaitStart()
		if j.State() != Running {
			t.Fatalf("state after start = %v", j.State())
		}
		if got := j.QueueWait(); got != 12*time.Second {
			t.Errorf("queue wait = %v, want 12s", got)
		}
		if got := s.FreeNodes(); got != 2 {
			t.Errorf("free nodes while running = %d, want 2", got)
		}
		v.Sleep(30 * time.Second)
		j.Finish()
		if st := j.WaitEnd(); st != Completed {
			t.Errorf("final state = %v, want COMPLETED", st)
		}
		if got := j.Runtime(); got != 30*time.Second {
			t.Errorf("runtime = %v, want 30s", got)
		}
		if got := s.FreeNodes(); got != 4 {
			t.Errorf("free nodes after finish = %d, want 4", got)
		}
	})
}

func TestWalltimeKill(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, FIFO)
	v.Run(func() {
		j, _ := s.Submit(Request{Name: "long", Cores: 10, Walltime: time.Minute})
		j.WaitStart()
		if st := j.WaitEnd(); st != TimedOut {
			t.Errorf("final state = %v, want TIMEOUT", st)
		}
		if got := j.Runtime(); got != time.Minute {
			t.Errorf("runtime = %v, want 1m", got)
		}
		// Finish after kill is a no-op.
		j.Finish()
		if j.State() != TimedOut {
			t.Error("Finish resurrected a timed-out job")
		}
	})
}

func TestCancelPendingAndRunning(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, FIFO)
	v.Run(func() {
		p, _ := s.Submit(Request{Name: "pending", Cores: 10, Walltime: time.Hour})
		p.Cancel()
		if st := p.WaitEnd(); st != Cancelled {
			t.Errorf("pending cancel state = %v", st)
		}
		p.WaitStart() // must not block after cancel

		r, _ := s.Submit(Request{Name: "running", Cores: 10, Walltime: time.Hour})
		r.WaitStart()
		r.Cancel()
		if st := r.WaitEnd(); st != Cancelled {
			t.Errorf("running cancel state = %v", st)
		}
		if got := s.FreeNodes(); got != 4 {
			t.Errorf("free nodes after cancels = %d, want 4", got)
		}
	})
}

func TestFIFOBlocksBehindBigJob(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, FIFO)
	starts := make(map[string]time.Duration)
	var mu sync.Mutex
	v.Run(func() {
		// hog takes the whole machine for 100s.
		hog, _ := s.Submit(Request{Name: "hog", Cores: 40, Walltime: 100 * time.Second})
		hog.WaitStart()
		// big needs 3 nodes: cannot start until hog ends.
		big, _ := s.Submit(Request{Name: "big", Cores: 30, Walltime: 10 * time.Second})
		// small fits in 0 free nodes? No: 1 node needed, 0 free. Queued
		// behind big under FIFO even though it would fit sooner.
		small, _ := s.Submit(Request{Name: "small", Cores: 5, Walltime: 5 * time.Second})
		wg := vclock.NewWaitGroup(v, "jobs")
		for _, jn := range []struct {
			j *Job
			n string
		}{{big, "big"}, {small, "small"}} {
			jn := jn
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				jn.j.WaitStart()
				mu.Lock()
				starts[jn.n] = v.Now()
				mu.Unlock()
				jn.j.Finish()
			})
		}
		wg.Wait()
	})
	// FIFO means small must never start before big in virtual time (both
	// may start at the same instant once the hog frees the machine —
	// observation order within an instant is scheduler noise, not FIFO).
	bs, bok := starts["big"]
	ss, sok := starts["small"]
	if !bok || !sok {
		t.Fatalf("starts recorded: %v, want both jobs", starts)
	}
	if ss < bs {
		t.Fatalf("small started at %v before big at %v under FIFO", ss, bs)
	}
	if bs < 100*time.Second {
		t.Fatalf("big started at %v, before the hog ended at 100s", bs)
	}
}

func TestEASYBackfillLetsSmallJobJump(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, EASYBackfill)
	var smallStart, bigStart time.Duration
	v.Run(func() {
		// hog: 3 of 4 nodes for 1000s.
		hog, _ := s.Submit(Request{Name: "hog", Cores: 30, Walltime: 1000 * time.Second})
		hog.WaitStart()
		// big: needs all 4 nodes; must wait for hog (shadow = hog end).
		big, _ := s.Submit(Request{Name: "big", Cores: 40, Walltime: 10 * time.Second})
		// small: 1 node, 60s; fits now and ends well before the shadow
		// time, so EASY lets it jump the queue.
		small, _ := s.Submit(Request{Name: "small", Cores: 10, Walltime: 60 * time.Second})
		wg := vclock.NewWaitGroup(v, "jobs")
		wg.Add(2)
		v.Go(func() {
			defer wg.Done()
			small.WaitStart()
			smallStart = v.Now()
			v.Sleep(time.Second)
			small.Finish()
		})
		v.Go(func() {
			defer wg.Done()
			big.WaitStart()
			bigStart = v.Now()
			big.Finish()
		})
		wg.Wait()
	})
	if smallStart >= bigStart {
		t.Fatalf("small started at %v, big at %v: backfill did not happen", smallStart, bigStart)
	}
	if bigStart < 1000*time.Second {
		t.Fatalf("big started at %v, before hog's walltime", bigStart)
	}
}

func TestBackfillNeverDelaysHead(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, EASYBackfill)
	var bigStart time.Duration
	v.Run(func() {
		hog, _ := s.Submit(Request{Name: "hog", Cores: 30, Walltime: 500 * time.Second})
		hog.WaitStart()
		big, _ := s.Submit(Request{Name: "big", Cores: 40, Walltime: 10 * time.Second})
		// wide wants 1 node for 10000s: it fits now, but running it past
		// the shadow time (hog end) would delay big. EASY must refuse.
		wide, _ := s.Submit(Request{Name: "wide", Cores: 10, Walltime: 10000 * time.Second})
		wg := vclock.NewWaitGroup(v, "jobs")
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			big.WaitStart()
			bigStart = v.Now()
			big.Finish()
		})
		wg.Wait()
		wide.Cancel()
	})
	// hog walltime-kills at its submit eligibility (10+3=13s) + 500s.
	wantLatest := 513*time.Second + time.Second
	if bigStart > wantLatest {
		t.Fatalf("big started at %v: a backfilled job delayed the queue head", bigStart)
	}
}

// Invariant: free nodes never negative, never exceed the machine, and
// concurrent running jobs never oversubscribe.
func TestNoOversubscriptionUnderChurn(t *testing.T) {
	v := vclock.NewVirtual()
	s := newSys(t, v, EASYBackfill)
	const jobs = 30
	v.Run(func() {
		wg := vclock.NewWaitGroup(v, "churn")
		for i := 0; i < jobs; i++ {
			i := i
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				cores := 5 + (i%4)*10 // 5..35 cores => 1..4 nodes
				dur := time.Duration(1+i%7) * time.Second
				j, err := s.Submit(Request{Name: "churn", Cores: cores, Walltime: time.Hour})
				if err != nil {
					t.Error(err)
					return
				}
				j.WaitStart()
				if free := s.FreeNodes(); free < 0 || free > 4 {
					t.Errorf("free nodes out of range: %d", free)
				}
				v.Sleep(dur)
				j.Finish()
			})
		}
		wg.Wait()
		if got := s.FreeNodes(); got != 4 {
			t.Errorf("free nodes after drain = %d, want 4", got)
		}
		if s.QueueLength() != 0 || s.RunningCount() != 0 {
			t.Errorf("leftover queue=%d running=%d", s.QueueLength(), s.RunningCount())
		}
	})
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || EASYBackfill.String() != "easy-backfill" {
		t.Error("policy strings wrong")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy string empty")
	}
	for _, st := range []State{Pending, Running, Completed, TimedOut, Cancelled, State(99)} {
		if st.String() == "" {
			t.Error("empty state string")
		}
	}
	if Completed.Final() != true || Pending.Final() != false || Running.Final() != false {
		t.Error("Final() wrong")
	}
}
