package pilot

import (
	"testing"
	"time"

	"entk/internal/vclock"
)

func TestLauncherWidthSerializesLaunches(t *testing.T) {
	// With LauncherWidth=1 and launch latency 10ms, 8 concurrent units
	// pay 80ms of serialized launch before the last one starts.
	v := vclock.NewVirtual()
	s := testSession(t, v)
	s.Cfg.LauncherWidth = 1
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		descs := make([]UnitDescription, 8)
		for i := range descs {
			descs[i] = sleepUnit("w1", 1)
		}
		t0 := v.Now()
		units, _ := um.Submit(descs)
		um.WaitAll(units)
		elapsed := v.Now() - t0
		// submission 80ms + serialized launches 80ms + 1s exec.
		if elapsed < 1100*time.Millisecond {
			t.Errorf("elapsed %v, want >= 1.1s with serialized launcher", elapsed)
		}
		p.Cancel()
	})
}

func TestBestFitPacksTightestNode(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	s.Cfg.Agent = BestFit
	v.Run(func() {
		_, p := startPilot(t, s, 8) // 2 nodes x 4 cores
		um := NewUnitManager(s)
		um.AddPilot(p)
		// Occupy 3 cores on node 0 (leaving 1 free) with a long task.
		long := UnitDescription{Name: "long", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 100}, Cores: 3, MPI: true}
		u1, _ := um.SubmitOne(long)
		v.Sleep(time.Second)
		if u1.State() != UnitExecuting {
			t.Fatalf("long unit state %v", u1.State())
		}
		// A 1-core task under best-fit must choose node 0 (1 free) not
		// node 1 (4 free), leaving node 1 whole for a wide task.
		small, _ := um.SubmitOne(sleepUnit("small", 100))
		v.Sleep(time.Second)
		wide := UnitDescription{Name: "wide", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 1}, Cores: 4, MPI: true}
		u3, _ := um.SubmitOne(wide)
		// Wide task fits whole on node 1 only if best-fit kept it clear.
		start := v.Now()
		if st := u3.WaitFinal(); st != UnitDone {
			t.Fatalf("wide unit state %v (err %v)", st, u3.Err())
		}
		if v.Now()-start > 5*time.Second {
			t.Errorf("wide task waited %v: best-fit fragmented the nodes", v.Now()-start)
		}
		_ = small
		p.Cancel()
	})
}

func TestFirstFitFragmentsInSameScenario(t *testing.T) {
	// The mirror of the best-fit test: first-fit puts the small task on
	// node 1 (first with space after node 0 fills), so the 4-core wide
	// task cannot start until the small task finishes.
	v := vclock.NewVirtual()
	s := testSession(t, v)
	s.Cfg.Agent = FirstFit
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		long := UnitDescription{Name: "long", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 100}, Cores: 4, MPI: true}
		um.SubmitOne(long) // fills node 0 entirely
		v.Sleep(time.Second)
		// Small task lands on node 1 under both policies now; use a
		// 3-core holder to leave 1 free on node 1.
		holder := UnitDescription{Name: "holder", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 30}, Cores: 3, MPI: true}
		um.SubmitOne(holder)
		v.Sleep(time.Second)
		wide := UnitDescription{Name: "wide", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 1}, Cores: 4, MPI: true}
		u3, _ := um.SubmitOne(wide)
		start := v.Now()
		if st := u3.WaitFinal(); st != UnitDone {
			t.Fatalf("wide unit state %v", st)
		}
		// Wide must wait ~28s for the holder to release node 1.
		if v.Now()-start < 25*time.Second {
			t.Errorf("wide task started after %v, expected to wait for fragmentation", v.Now()-start)
		}
		p.Cancel()
	})
}

func TestMPIAllocationExactlyCoversRequest(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 12) // 3 nodes: 4+4+4
		a := p.agent
		a.mu.Lock()
		alloc, ok := a.sched.tryPlace(10, true)
		a.mu.Unlock()
		if !ok {
			t.Fatal("place failed")
		}
		alloc.forEach(func(node, n int) {
			if node < 0 || node >= 3 || n <= 0 || n > 4 {
				t.Errorf("bad allocation entry node=%d n=%d", node, n)
			}
		})
		if total := alloc.total(); total != 10 {
			t.Errorf("allocated %d cores, want 10", total)
		}
		if free := a.freeCores(); free != 2 {
			t.Errorf("free after place = %d, want 2", free)
		}
		a.mu.Lock()
		a.sched.release(alloc)
		a.mu.Unlock()
		if free := a.freeCores(); free != 12 {
			t.Errorf("free after release = %d, want 12", free)
		}
		p.Cancel()
	})
}

func TestPilotSmallerThanOneNode(t *testing.T) {
	// A 2-core pilot on a 4-core-per-node machine gets one node with
	// exactly 2 usable cores.
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 2)
		if got := p.agent.freeCores(); got != 2 {
			t.Errorf("pilot cores = %d, want 2", got)
		}
		um := NewUnitManager(s)
		um.AddPilot(p)
		descs := []UnitDescription{sleepUnit("a", 1), sleepUnit("b", 1), sleepUnit("c", 1)}
		t0 := v.Now()
		units, _ := um.Submit(descs)
		um.WaitAll(units)
		// 3 tasks on 2 cores: 2 waves.
		if elapsed := v.Now() - t0; elapsed < 2*time.Second {
			t.Errorf("3 tasks on 2 cores took %v, want >= 2s", elapsed)
		}
		p.Cancel()
	})
}

func TestAgentContinuousSchedulingSkipsBlockedHead(t *testing.T) {
	// A wide task that cannot fit yet must not block smaller tasks
	// behind it (continuous scheduling, unlike strict FIFO).
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		hog := UnitDescription{Name: "hog", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 50}, Cores: 6, MPI: true}
		um.SubmitOne(hog)
		v.Sleep(time.Second)
		// Wide cannot start (needs 8, only 2 free).
		wide := UnitDescription{Name: "wide", Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 1}, Cores: 8, MPI: true}
		uw, _ := um.SubmitOne(wide)
		// Small fits in the 2 free cores and must run ahead of wide.
		us, _ := um.SubmitOne(sleepUnit("small", 1))
		if st := us.WaitFinal(); st != UnitDone {
			t.Fatalf("small state %v", st)
		}
		if v.Now() > 10*time.Second {
			t.Errorf("small task waited behind blocked wide task (t=%v)", v.Now())
		}
		if st := uw.WaitFinal(); st != UnitDone {
			t.Fatalf("wide state %v", st)
		}
		p.Cancel()
	})
}
