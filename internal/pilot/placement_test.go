package pilot

import (
	"math/rand"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/kernels"
	"entk/internal/vclock"
)

// placementFixture builds a session with three unstarted pilots of
// different shapes and tags — placement policies only need the pilots'
// static shape and free-core counters, so the pilots never activate:
//
//	narrow: 16 cores on 4-core nodes, tags [cpu]
//	wide:   32 cores on 16-core nodes, tags [mpi]
//	spare:  8 cores on 4-core nodes, tags [cpu, spare]
func placementFixture(t *testing.T) []*ComputePilot {
	t.Helper()
	small := &cluster.Machine{
		Name: "test.place.small", Nodes: 8, CoresPerNode: 4, MemPerNodeGB: 8,
		AgentBootTime: time.Second, TaskLaunchLatency: time.Millisecond,
		NetLatency: time.Millisecond, FSBandwidthMBps: 100, FSLatency: time.Millisecond,
	}
	wide := &cluster.Machine{
		Name: "test.place.wide", Nodes: 2, CoresPerNode: 16, MemPerNodeGB: 32,
		AgentBootTime: time.Second, TaskLaunchLatency: time.Millisecond,
		NetLatency: time.Millisecond, FSBandwidthMBps: 100, FSLatency: time.Millisecond,
	}
	for _, m := range []*cluster.Machine{small, wide} {
		if err := cluster.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	v := vclock.NewVirtual()
	s := NewSession(v, kernels.NewRegistry(), DefaultConfig())
	pm := NewPilotManager(s)
	var pilots []*ComputePilot
	v.Run(func() {
		specs := []PilotDescription{
			{Resource: "test.place.small", Cores: 16, Walltime: time.Hour, Tags: []string{"cpu"}},
			{Resource: "test.place.wide", Cores: 32, Walltime: time.Hour, Tags: []string{"mpi"}},
			{Resource: "test.place.small", Cores: 8, Walltime: time.Hour, Tags: []string{"cpu", "spare"}},
		}
		for _, d := range specs {
			p, err := pm.Submit(d)
			if err != nil {
				t.Error(err)
				return
			}
			pilots = append(pilots, p)
		}
	})
	if len(pilots) != 3 {
		t.Fatal("fixture pilots missing")
	}
	return pilots
}

func TestPlacementEligibility(t *testing.T) {
	pilots := placementFixture(t)
	rr := PlaceRoundRobin()

	// A non-MPI 8-core unit only fits the 16-core-node machine.
	d := &UnitDescription{Name: "u", Kernel: "k", Cores: 8}
	for i := 0; i < 4; i++ {
		if p := rr.Place(d, pilots); p != pilots[1] {
			t.Fatalf("8-core non-MPI unit placed on %s, want the wide-node pilot", p.Machine().Name)
		}
	}
	// An MPI unit of the same width may span nodes: any pilot with >= 8
	// cores is eligible, so round-robin alternates narrow and wide.
	mpi := &UnitDescription{Name: "m", Kernel: "k", Cores: 8, MPI: true}
	seen := map[*ComputePilot]bool{}
	for i := 0; i < 4; i++ {
		seen[PlaceRoundRobin().Place(mpi, pilots[:2])] = true
	}
	if len(seen) != 1 {
		// Fresh policies always start at the cursor origin.
		t.Fatalf("fresh round-robin policies disagree on the first pick")
	}
	// A unit larger than every pilot places nowhere.
	if p := rr.Place(&UnitDescription{Name: "x", Kernel: "k", Cores: 64, MPI: true}, pilots); p != nil {
		t.Errorf("64-core unit placed on %d-core pilot", p.Desc.Cores)
	}
}

func TestPlacementRoundRobinCycles(t *testing.T) {
	pilots := placementFixture(t)
	rr := PlaceRoundRobin()
	d := &UnitDescription{Name: "u", Kernel: "k", Cores: 1}
	var got []*ComputePilot
	for i := 0; i < 6; i++ {
		got = append(got, rr.Place(d, pilots))
	}
	for i, p := range got {
		if want := pilots[i%3]; p != want {
			t.Fatalf("pick %d = pilot %d, want pilot %d (set-order rotation)", i, p.ID, want.ID)
		}
	}
}

func TestPlacementLeastLoadedPicksFreeCores(t *testing.T) {
	pilots := placementFixture(t)
	ll := PlaceLeastLoaded()
	d := &UnitDescription{Name: "u", Kernel: "k", Cores: 1}
	// All pilots idle: the 32-core pilot has the most free cores.
	if p := ll.Place(d, pilots); p != pilots[1] {
		t.Fatalf("least-loaded picked pilot %d, want the 32-core pilot", p.ID)
	}
	// Restricted to the two small pilots, the 16-core one wins.
	if p := ll.Place(d, []*ComputePilot{pilots[0], pilots[2]}); p != pilots[0] {
		t.Fatalf("least-loaded picked pilot %d, want the 16-core pilot", p.ID)
	}
}

func TestPlacementTagAffinity(t *testing.T) {
	pilots := placementFixture(t)
	ta := PlaceTagAffinity(nil)

	// A cpu-tagged unit lands on a cpu pilot even though the untagged
	// wide pilot has more free cores.
	cpu := &UnitDescription{Name: "c", Kernel: "k", Cores: 1, Tags: []string{"cpu"}}
	for i := 0; i < 4; i++ {
		p := ta.Place(cpu, pilots)
		if p == pilots[1] {
			t.Fatalf("cpu-tagged unit leaked to the mpi pilot")
		}
	}
	// A two-tag unit needs a pilot carrying both.
	spare := &UnitDescription{Name: "s", Kernel: "k", Cores: 1, Tags: []string{"cpu", "spare"}}
	if p := ta.Place(spare, pilots); p != pilots[2] {
		t.Fatalf("cpu+spare unit placed on pilot %d, want the spare pilot", p.ID)
	}
	// A tag nobody carries falls back to all eligible pilots.
	if p := ta.Place(&UnitDescription{Name: "g", Kernel: "k", Cores: 1, Tags: []string{"gpu"}}, pilots); p == nil {
		t.Fatal("unmatched tag failed instead of falling back")
	}
	// Untagged units go through the fallback policy.
	if p := ta.Place(&UnitDescription{Name: "u", Kernel: "k", Cores: 1}, pilots); p == nil {
		t.Fatal("untagged unit placed nowhere")
	}
	// Tag affinity never overrides structural fit: a cpu-tagged non-MPI
	// 8-core unit cannot run on 4-core nodes, so it falls back to the
	// wide pilot despite the tag.
	bigCPU := &UnitDescription{Name: "b", Kernel: "k", Cores: 8, Tags: []string{"cpu"}}
	if p := ta.Place(bigCPU, pilots); p != pilots[1] {
		t.Fatalf("infeasible tagged unit placed on pilot %d, want the wide fallback", p.ID)
	}
}

// TestPlacementSkipsDeadPilots pins liveness eligibility: a pilot in a
// terminal state (walltime expiry, cancellation) is never picked, even
// when tags or free cores would favour it — its agent would fail every
// unit routed there while live pilots have capacity.
func TestPlacementSkipsDeadPilots(t *testing.T) {
	pilots := placementFixture(t)
	pilots[1].setState(PilotFailed) // the wide 32-core pilot dies
	d := &UnitDescription{Name: "u", Kernel: "k", Cores: 1}
	for i := 0; i < 4; i++ {
		if p := PlaceLeastLoaded().Place(d, pilots); p == pilots[1] {
			t.Fatal("least-loaded picked a FAILED pilot")
		}
		if p := PlaceRoundRobin().Place(d, pilots); p == pilots[1] {
			t.Fatal("round-robin picked a FAILED pilot")
		}
	}
	mpi := &UnitDescription{Name: "m", Kernel: "k", Cores: 1, Tags: []string{"mpi"}}
	if p := PlaceTagAffinity(nil).Place(mpi, pilots); p == pilots[1] || p == nil {
		t.Fatalf("tag-affinity routed to the dead tagged pilot (or nowhere): %v", p)
	}
	// All pilots dead: nothing is placeable.
	pilots[0].setState(PilotCanceled)
	pilots[2].setState(PilotDone)
	if p := PlaceRoundRobin().Place(d, pilots); p != nil {
		t.Fatalf("placed on a dead set: pilot %d", p.ID)
	}
}

// TestPlacementSoak drives every policy over a fixed-seed random unit
// stream twice and asserts (a) determinism — fresh policy instances
// produce identical pick sequences — and (b) the structural invariants:
// picks are always eligible, and tag-affinity picks carry the unit's
// tags whenever any eligible pilot does.
func TestPlacementSoak(t *testing.T) {
	pilots := placementFixture(t)
	tags := [][]string{nil, {"cpu"}, {"mpi"}, {"spare"}, {"cpu", "spare"}, {"gpu"}}
	mkStream := func(seed int64, n int) []UnitDescription {
		rng := rand.New(rand.NewSource(seed))
		descs := make([]UnitDescription, n)
		for i := range descs {
			cores := 1 + rng.Intn(16)
			mpi := rng.Intn(2) == 0
			if !mpi && cores > 4 && rng.Intn(2) == 0 {
				cores = 1 + rng.Intn(4) // keep some narrow-feasible units
			}
			descs[i] = UnitDescription{
				Name: "soak", Kernel: "k",
				Cores: cores, MPI: mpi,
				Tags: tags[rng.Intn(len(tags))],
			}
		}
		return descs
	}
	policies := map[string]func() PlacementPolicy{
		"round-robin":  PlaceRoundRobin,
		"least-loaded": PlaceLeastLoaded,
		"tag-affinity": func() PlacementPolicy { return PlaceTagAffinity(nil) },
	}
	descs := mkStream(42, 500)
	for name, mk := range policies {
		run := func() []*ComputePilot {
			pol := mk()
			out := make([]*ComputePilot, len(descs))
			for i := range descs {
				out[i] = pol.Place(&descs[i], pilots)
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: pick %d differs between identical runs", name, i)
			}
			d := &descs[i]
			if a[i] == nil {
				// Nothing eligible anywhere, or the policy failed: verify
				// the former.
				for _, p := range pilots {
					if eligible(d, p) {
						t.Fatalf("%s: pick %d nil but pilot %d is eligible (cores=%d mpi=%v)",
							name, i, p.ID, d.Cores, d.MPI)
					}
				}
				continue
			}
			if !eligible(d, a[i]) {
				t.Fatalf("%s: pick %d ineligible (unit cores=%d mpi=%v -> pilot %d on %s)",
					name, i, d.Cores, d.MPI, a[i].ID, a[i].Machine().Name)
			}
			if name == "tag-affinity" && len(d.Tags) > 0 && !hasAllTags(d, a[i]) {
				for _, p := range pilots {
					if eligible(d, p) && hasAllTags(d, p) {
						t.Fatalf("tag-affinity: pick %d ignored matching pilot %d for tags %v",
							i, p.ID, d.Tags)
					}
				}
			}
		}
	}
}
