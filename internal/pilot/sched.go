package pilot

// The agent scheduler: node-state bookkeeping and unit placement behind a
// small interface, with two interchangeable implementations.
//
// rescanSched is the seed's reference algorithm: every placement linearly
// scans the node array (O(nodes) per attempt, and the agent's scheduling
// pass retries every pending unit, giving O(pending x nodes) per submit or
// completion event). It is kept as the semantic baseline the tests compare
// against.
//
// indexedSched is the production path: a segment tree over node free-core
// counts answers "leftmost node with >= need free" and "largest free block"
// in O(log nodes), free-value buckets answer best-fit in O(coresPerNode),
// and running totals make infeasibility checks O(1). Combined with the
// agent's pending-need watermark (see agent.go) the continuous-scheduling
// pass becomes incremental: events that cannot place anything cost O(1),
// and a pass costs O(placed x log nodes) instead of O(pending x nodes).
//
// Both implementations place identically: single-node placement first-fit
// (lowest node index) or best-fit (fewest free cores, ties to the lowest
// index), and greedy left-to-right spanning for MPI units that no single
// node can hold. Report-level equivalence is enforced by
// TestIndexedSchedulerReportParity at the repo root.

import "math/bits"

// nodeShare is one node's contribution to a spanning allocation.
type nodeShare struct {
	node  int
	cores int
}

// allocation records the cores a unit holds: cores on a primary node,
// plus spill shares on further nodes when an MPI unit spans. The zero
// value is not a valid allocation; spill is nil for single-node units.
type allocation struct {
	node  int
	cores int
	spill []nodeShare
}

// total returns the allocation's core count.
func (a allocation) total() int {
	n := a.cores
	for _, s := range a.spill {
		n += s.cores
	}
	return n
}

// spans reports whether the allocation crosses node boundaries.
func (a allocation) spans() bool { return len(a.spill) > 0 }

// forEach visits every (node, cores) share of the allocation.
func (a allocation) forEach(fn func(node, cores int)) {
	fn(a.node, a.cores)
	for _, s := range a.spill {
		fn(s.node, s.cores)
	}
}

// scheduler is the node-packing core of the pilot agent: it owns the
// allocation's per-node free-core state and answers placement requests.
// Implementations are not safe for concurrent use; the agent serialises
// access under its mutex.
type scheduler interface {
	// tryPlace attempts to allocate cores for a unit, never blocking.
	// mpi allows the placement to span nodes when no single node fits.
	tryPlace(need int, mpi bool) (allocation, bool)
	// release returns an allocation's cores.
	release(alloc allocation)
	// freeCores reports the total free cores.
	freeCores() int
	// maxNodeFree reports the largest free-core count on any one node.
	maxNodeFree() int
	// capacity reports the total cores the scheduler manages.
	capacity() int
	// markDown removes node i from service — the fault-injection path
	// for node loss: its free cores leave the pool and its capacity is
	// forgotten, so no future placement lands there. Cores currently
	// allocated on the node are the agent's to drop at release time
	// (release must never be called with shares on a downed node).
	// Returns the capacity removed.
	markDown(node int) int
	// nodeFree snapshots per-node free cores (tests and diagnostics).
	nodeFree() []int
}

// linearScanMaxNodes is the adaptive crossover of the indexed scheduler:
// at or below this node count a placement attempt's linear scan is a
// handful of contiguous int reads and beats the segment tree's pointer
// walk on constant factor (BENCH_PR1.json recorded the indexed scheduler
// 21% behind rescan at 256 cores / 16 nodes). Both implementations make
// identical placement decisions (TestSchedulerImplEquivalence), so the
// crossover is invisible to simulated time.
const linearScanMaxNodes = 32

// newScheduler builds the scheduler for an initial per-node capacity
// layout. pack selects the node-packing rule (Backfill packs first-fit;
// its queue discipline lives in the agent). rescan selects the reference
// implementation; small layouts use the linear scan either way (see
// linearScanMaxNodes).
func newScheduler(nodes []int, pack Placement, rescan bool) scheduler {
	if rescan || len(nodes) <= linearScanMaxNodes {
		return newRescanSched(nodes, pack)
	}
	return newIndexedSched(nodes, pack)
}

// ---------------------------------------------------------------------------
// rescanSched: the seed's O(nodes)-per-attempt reference implementation.

type rescanSched struct {
	nodes []int
	caps  []int
	pack  Placement
}

func newRescanSched(nodes []int, pack Placement) *rescanSched {
	s := &rescanSched{
		nodes: append([]int(nil), nodes...),
		caps:  append([]int(nil), nodes...),
		pack:  pack,
	}
	return s
}

func (s *rescanSched) tryPlace(need int, mpi bool) (allocation, bool) {
	total := 0
	for _, f := range s.nodes {
		total += f
	}
	// Single-node placement: first-fit or best-fit.
	best := -1
	for i, free := range s.nodes {
		if free < need {
			continue
		}
		if s.pack != BestFit {
			best = i
			break
		}
		if best == -1 || free < s.nodes[best] {
			best = i
		}
	}
	if best >= 0 {
		s.nodes[best] -= need
		return allocation{node: best, cores: need}, true
	}
	if !mpi || total < need {
		return allocation{}, false
	}
	// MPI spanning placement: greedy across nodes.
	alloc := allocation{node: -1}
	rem := need
	for i, free := range s.nodes {
		if free == 0 {
			continue
		}
		take := free
		if take > rem {
			take = rem
		}
		if alloc.node < 0 {
			alloc.node, alloc.cores = i, take
		} else {
			alloc.spill = append(alloc.spill, nodeShare{i, take})
		}
		rem -= take
		if rem == 0 {
			break
		}
	}
	alloc.forEach(func(node, cores int) { s.nodes[node] -= cores })
	return alloc, true
}

func (s *rescanSched) release(alloc allocation) {
	alloc.forEach(func(node, cores int) { s.nodes[node] += cores })
}

func (s *rescanSched) freeCores() int {
	total := 0
	for _, f := range s.nodes {
		total += f
	}
	return total
}

func (s *rescanSched) maxNodeFree() int {
	max := 0
	for _, f := range s.nodes {
		if f > max {
			max = f
		}
	}
	return max
}

func (s *rescanSched) capacity() int {
	total := 0
	for _, c := range s.caps {
		total += c
	}
	return total
}

func (s *rescanSched) markDown(i int) int {
	c := s.caps[i]
	s.nodes[i] = 0
	s.caps[i] = 0
	return c
}

func (s *rescanSched) nodeFree() []int { return append([]int(nil), s.nodes...) }

// ---------------------------------------------------------------------------
// indexedSched: segment tree + buckets, O(log nodes) placement.

type indexedSched struct {
	nodes []int
	caps  []int
	pack  Placement
	total int
	cap   int

	// tree is a max segment tree over per-node free cores: tree[1] is the
	// root, leaves start at leafBase. It answers maxNodeFree in O(1) and
	// "leftmost node with free >= need at index >= from" in O(log n).
	tree     []int
	leafBase int

	// buckets[v] is a bitset over node indices whose free count is
	// exactly v. Exact membership (updated on every free-count change),
	// so memory is fixed at (maxCap+1) x nodes bits and best-fit is a
	// first-set-bit scan. Only maintained for best-fit packing.
	buckets [][]uint64
	maxCap  int
}

func newIndexedSched(nodes []int, pack Placement) *indexedSched {
	n := len(nodes)
	leafBase := 1
	for leafBase < n {
		leafBase *= 2
	}
	s := &indexedSched{
		nodes:    append([]int(nil), nodes...),
		caps:     append([]int(nil), nodes...),
		pack:     pack,
		tree:     make([]int, 2*leafBase),
		leafBase: leafBase,
	}
	for i, f := range nodes {
		s.tree[leafBase+i] = f
		s.total += f
		s.cap += f
		if f > s.maxCap {
			s.maxCap = f
		}
	}
	for i := leafBase - 1; i >= 1; i-- {
		s.tree[i] = max(s.tree[2*i], s.tree[2*i+1])
	}
	if pack == BestFit {
		words := (n + 63) / 64
		s.buckets = make([][]uint64, s.maxCap+1)
		for v := range s.buckets {
			s.buckets[v] = make([]uint64, words)
		}
		for i, f := range nodes {
			s.buckets[f][i/64] |= 1 << (i % 64)
		}
	}
	return s
}

// setFree updates node i's free count across all indexes.
func (s *indexedSched) setFree(i, free int) {
	if s.buckets != nil {
		s.buckets[s.nodes[i]][i/64] &^= 1 << (i % 64)
		s.buckets[free][i/64] |= 1 << (i % 64)
	}
	s.total += free - s.nodes[i]
	s.nodes[i] = free
	j := s.leafBase + i
	s.tree[j] = free
	for j >>= 1; j >= 1; j >>= 1 {
		m := max(s.tree[2*j], s.tree[2*j+1])
		if s.tree[j] == m {
			break
		}
		s.tree[j] = m
	}
}

// leftmost returns the lowest node index >= from with free >= need, or
// -1. It walks the tree iteratively — climb right from the `from` leaf
// until a subtree's max qualifies, then descend to its leftmost
// qualifying leaf — cutting the recursive version's call overhead on the
// placement hot path.
func (s *indexedSched) leftmost(need, from int) int {
	if from >= len(s.nodes) || s.tree[1] < need {
		return -1
	}
	p := s.leafBase + from
	for {
		if s.tree[p] >= need {
			for p < s.leafBase {
				if s.tree[2*p] >= need {
					p = 2 * p
				} else {
					p = 2*p + 1
				}
			}
			if i := p - s.leafBase; i < len(s.nodes) {
				return i
			}
			return -1 // zero-padded tail leaf (need 0 never queried)
		}
		// Advance to the subtree covering the indices just right of the
		// range checked so far: climb while a right child, then step to
		// the sibling.
		for p&1 == 1 {
			p >>= 1
			if p <= 1 {
				return -1
			}
		}
		p++
	}
}

// bucketMin returns the lowest node index whose free count is exactly v,
// or -1 if none.
func (s *indexedSched) bucketMin(v int) int {
	for w, word := range s.buckets[v] {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

func (s *indexedSched) tryPlace(need int, mpi bool) (allocation, bool) {
	// Single-node placement.
	best := -1
	if need <= s.tree[1] {
		if s.pack == BestFit {
			for v := need; v <= s.maxCap; v++ {
				if got := s.bucketMin(v); got >= 0 {
					best = got
					break
				}
			}
		} else {
			best = s.leftmost(need, 0)
		}
	}
	if best >= 0 {
		s.setFree(best, s.nodes[best]-need)
		return allocation{node: best, cores: need}, true
	}
	if !mpi || s.total < need {
		return allocation{}, false
	}
	// MPI spanning placement: greedy left-to-right over non-empty nodes.
	alloc := allocation{node: -1}
	rem := need
	for from := 0; rem > 0; {
		i := s.leftmost(1, from)
		if i < 0 {
			break // cannot happen given total >= need
		}
		take := s.nodes[i]
		if take > rem {
			take = rem
		}
		if alloc.node < 0 {
			alloc.node, alloc.cores = i, take
		} else {
			alloc.spill = append(alloc.spill, nodeShare{i, take})
		}
		rem -= take
		from = i + 1
	}
	if rem > 0 {
		return allocation{}, false // nothing subtracted yet: clean abort
	}
	alloc.forEach(func(node, cores int) { s.setFree(node, s.nodes[node]-cores) })
	return alloc, true
}

func (s *indexedSched) release(alloc allocation) {
	alloc.forEach(func(node, cores int) { s.setFree(node, s.nodes[node]+cores) })
}

func (s *indexedSched) freeCores() int   { return s.total }
func (s *indexedSched) maxNodeFree() int { return s.tree[1] }
func (s *indexedSched) capacity() int    { return s.cap }

func (s *indexedSched) markDown(i int) int {
	s.setFree(i, 0)
	c := s.caps[i]
	s.cap -= c
	s.caps[i] = 0
	return c
}

func (s *indexedSched) nodeFree() []int { return append([]int(nil), s.nodes...) }
