package pilot

import (
	"sync"
	"time"

	"entk/internal/vclock"
)

// WaveBatcher coalesces bulk submission waves from many concurrent
// submitters — the AppManager runs one submitting process per live
// pipeline — into shared unit-manager rounds: all waves enqueued at one
// virtual instant are created together under a single umgr wave
// bracket, and each wave's units reach its pilot as one bulk agent
// submission. A campaign of a thousand tiny pipelines therefore costs a
// handful of umgr waves per scheduling round instead of a thousand.
//
// The batching is timeline-neutral by construction, which is what lets
// every executor route through it unconditionally (the single-pilot
// parity suites gate this): unit creation takes zero virtual time, and
// each member wave still pays its own client-side submission cost
// (len(descs) × UMSubmitPerUnit) from the instant it arrived before its
// units dispatch — exactly the cost and the dispatch instant of an
// unbatched UnitManager.Submit. Only the wall-clock shape changes:
// fewer brackets, fewer per-unit lock round trips, one scheduling-pass
// request per pilot per wave.
//
// Coalescing is leaderless and opportunistic: the first submitter of a
// round drains the queue (new arrivals during the drain join it), and
// the engine cannot advance virtual time while the leader is runnable,
// so a round never mixes instants.
type WaveBatcher struct {
	um *UnitManager

	mu      sync.Mutex
	queue   []*batchedWave
	leading bool
}

// batchedWave is one member wave of a round. Its descriptions are
// validated before it joins the queue, so creation cannot fail.
type batchedWave struct {
	descs   []UnitDescription
	units   []*ComputeUnit
	created *vclock.Event
}

// NewWaveBatcher returns a batcher over the unit manager.
func NewWaveBatcher(um *UnitManager) *WaveBatcher {
	return &WaveBatcher{um: um}
}

// UnitManager returns the wrapped manager.
func (b *WaveBatcher) UnitManager() *UnitManager { return b.um }

// Submit is UnitManager.Submit through the shared batcher: validate,
// create the wave's units (coalesced with every other wave of the same
// round), pay this wave's own client-side submission cost, then
// late-bind and dispatch. It must be called from a registered vclock
// process and returns the units in description order.
func (b *WaveBatcher) Submit(descs []UnitDescription) ([]*ComputeUnit, error) {
	units, err := b.join(descs)
	if err != nil {
		return nil, err
	}
	// Client-side creation/serialization cost for this wave — each
	// member of a round pays its own, concurrently with the others.
	b.um.sess.V.Sleep(time.Duration(len(units)) * b.um.sess.Cfg.UMSubmitPerUnit)
	b.um.Dispatch(units)
	return units, nil
}

// SubmitStreamed is UnitManager.SubmitStreamed through the shared
// batcher: the wave joins the same creation rounds as bulk waves — all
// waves arriving at one virtual instant are created under one umgr
// bracket — and then dispatches each unit individually as its own
// client-side cost elapses. Every unit still reaches its pilot at
// exactly the instant of an unbatched streamed submission (unit i at
// arrival + (i+1) × UMSubmitPerUnit, late-bound at that instant), so
// the coalescing changes only the wall-clock shape: shared admission
// and creation, fewer umgr brackets. Gated by the streamed-leg
// timeline-neutrality test.
func (b *WaveBatcher) SubmitStreamed(descs []UnitDescription) ([]*ComputeUnit, error) {
	units, err := b.join(descs)
	if err != nil {
		return nil, err
	}
	b.um.DispatchStreamed(units)
	return units, nil
}

// join validates descs and runs the round machinery: the wave's units
// are created together with every other wave enqueued at this instant,
// under one umgr bracket per drain round. It returns the created units
// in description order, with no virtual time elapsed.
func (b *WaveBatcher) join(descs []UnitDescription) ([]*ComputeUnit, error) {
	// Validate before joining a round, so a malformed wave creates no
	// units, brackets no wave, and poisons no round (matching
	// UnitManager.Submit); the leader then creates units without a
	// second validation pass.
	for i := range descs {
		if err := descs[i].Validate(); err != nil {
			return nil, err
		}
	}
	v := b.um.sess.V
	w := &batchedWave{descs: descs, created: vclock.NewEvent(v, "batched wave created")}
	b.mu.Lock()
	b.queue = append(b.queue, w)
	if b.leading {
		// A leader is draining this instant's round: park until it has
		// created this wave's units.
		b.mu.Unlock()
		w.created.Wait()
	} else {
		// Become the round leader: drain the queue until empty,
		// creating every member's units under one umgr bracket per
		// drain iteration. Creation takes no virtual time and the
		// engine cannot advance the clock while this process is
		// runnable, so the whole drain happens at one virtual instant.
		b.leading = true
		for len(b.queue) > 0 {
			round := b.queue
			b.queue = nil
			b.mu.Unlock()
			b.um.beginWave()
			for _, m := range round {
				m.units = b.um.createValidated(m.descs)
				m.created.Fire()
			}
			b.um.endWave()
			b.mu.Lock()
		}
		b.leading = false
		b.mu.Unlock()
	}
	return w.units, nil
}
