package pilot

import (
	"strings"
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/kernels"
	"entk/internal/vclock"
)

// testSession builds a session on a private 8-node x 4-core machine with
// negligible latencies except where a test overrides them.
func testSession(t *testing.T, v *vclock.Virtual) *Session {
	t.Helper()
	m := &cluster.Machine{
		Name:              "test.pilot",
		Nodes:             8,
		CoresPerNode:      4,
		MemPerNodeGB:      8,
		AgentBootTime:     time.Second,
		TaskLaunchLatency: 10 * time.Millisecond,
		NetLatency:        5 * time.Millisecond,
		FSBandwidthMBps:   100,
		FSLatency:         time.Millisecond,
		QueueWaitBase:     2 * time.Second,
		QueueWaitPerNode:  0,
	}
	if err := cluster.Register(m); err != nil {
		t.Fatal(err)
	}
	return NewSession(v, kernels.NewRegistry(), DefaultConfig())
}

// startPilot submits a pilot and waits for activation.
func startPilot(t *testing.T, s *Session, cores int) (*PilotManager, *ComputePilot) {
	t.Helper()
	pm := NewPilotManager(s)
	p, err := pm.Submit(PilotDescription{
		Resource: "test.pilot", Cores: cores, Walltime: 10 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitActive()
	if p.State() != PilotActive {
		t.Fatalf("pilot state = %v, want ACTIVE", p.State())
	}
	return pm, p
}

func sleepUnit(name string, seconds float64) UnitDescription {
	return UnitDescription{
		Name:   name,
		Kernel: "misc.sleep",
		Params: map[string]float64{"seconds": seconds},
		Cores:  1,
	}
}

func TestPilotDescriptionValidate(t *testing.T) {
	bad := []PilotDescription{
		{Cores: 1, Walltime: time.Hour},
		{Resource: "r", Cores: 0, Walltime: time.Hour},
		{Resource: "r", Cores: 1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnitDescriptionValidate(t *testing.T) {
	if err := (&UnitDescription{Kernel: "k", Cores: 4, MPI: true}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []UnitDescription{
		{Cores: 1},                          // no kernel
		{Kernel: "k", Cores: 0},             // no cores
		{Kernel: "k", Cores: 2, MPI: false}, // multicore without MPI
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPilotLifecycle(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		pm := NewPilotManager(s)
		p, err := pm.Submit(PilotDescription{
			Resource: "test.pilot", Cores: 8, Walltime: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.State() != PilotPending {
			t.Errorf("state = %v, want PENDING", p.State())
		}
		p.WaitActive()
		// Queue wait (2s plus the saga submit round trip) is visible
		// through the profiler.
		if qw := p.QueueWait(); qw < 2*time.Second || qw > 2*time.Second+100*time.Millisecond {
			t.Errorf("queue wait = %v, want ~2s", qw)
		}
		p.Cancel()
		if st := p.WaitFinal(); st != PilotCanceled {
			t.Errorf("final = %v, want CANCELED", st)
		}
		if got := pm.Pilots(); len(got) != 1 || got[0] != p {
			t.Errorf("Pilots() = %v", got)
		}
	})
}

func TestPilotSubmitErrors(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		pm := NewPilotManager(s)
		if _, err := pm.Submit(PilotDescription{Resource: "no.such", Cores: 1, Walltime: time.Hour}); err == nil {
			t.Error("unknown resource accepted")
		}
		if _, err := pm.Submit(PilotDescription{Resource: "test.pilot", Cores: 1 << 20, Walltime: time.Hour}); err == nil {
			t.Error("oversized pilot accepted")
		}
	})
}

func TestUnitRunsToDone(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		u, err := um.SubmitOne(sleepUnit("hello", 5))
		if err != nil {
			t.Fatal(err)
		}
		if st := u.WaitFinal(); st != UnitDone {
			t.Fatalf("final = %v (err %v)", st, u.Err())
		}
		if got := u.ExecDuration(); got != 5*time.Second {
			t.Errorf("exec duration = %v, want 5s", got)
		}
		if u.Pilot() != p {
			t.Error("unit not bound to pilot")
		}
		p.Cancel()
	})
}

func TestSubmitWithoutPilotFailsUnit(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		um := NewUnitManager(s)
		u, err := um.SubmitOne(sleepUnit("orphan", 1))
		if err != nil {
			t.Fatal(err)
		}
		if st := u.WaitFinal(); st != UnitFailed {
			t.Errorf("final = %v, want FAILED", st)
		}
		if u.Err() == nil || !strings.Contains(u.Err().Error(), "no pilots") {
			t.Errorf("err = %v", u.Err())
		}
	})
}

func TestMoreUnitsThanCores(t *testing.T) {
	// The core pilot capability: 24 one-second units on 8 cores run in 3
	// waves. This is "decoupling the workload from instantaneous
	// resources".
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		descs := make([]UnitDescription, 24)
		for i := range descs {
			descs[i] = sleepUnit("wave", 1)
		}
		start := v.Now()
		units, err := um.Submit(descs)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range um.WaitAll(units) {
			if st != UnitDone {
				t.Fatalf("unit state %v", st)
			}
		}
		elapsed := v.Now() - start
		// 3 waves of 1s plus launch latencies; must be well under the
		// serial 24s and at least 3s.
		if elapsed < 3*time.Second || elapsed > 6*time.Second {
			t.Errorf("24 units on 8 cores took %v, want ~3s", elapsed)
		}
		p.Cancel()
	})
}

func TestAgentNeverOversubscribes(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		descs := make([]UnitDescription, 40)
		for i := range descs {
			descs[i] = sleepUnit("load", 0.5)
		}
		units, _ := um.Submit(descs)
		// Sample free cores while the workload churns.
		stop := vclock.NewEvent(v, "sampler stop")
		v.Go(func() {
			for i := 0; i < 100; i++ {
				if stop.Fired() {
					return
				}
				if free := p.agent.freeCores(); free < 0 || free > 8 {
					t.Errorf("free cores out of range: %d", free)
					return
				}
				v.Sleep(50 * time.Millisecond)
			}
		})
		um.WaitAll(units)
		stop.Fire()
		if free := p.agent.freeCores(); free != 8 {
			t.Errorf("free cores after drain = %d, want 8", free)
		}
		p.Cancel()
	})
}

func TestMPIUnitSpansNodes(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		// 8 cores over 2 nodes (4 cores/node).
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		u, err := um.SubmitOne(UnitDescription{
			Name:   "mpi-span",
			Kernel: "misc.sleep",
			Params: map[string]float64{"seconds": 1},
			Cores:  6, // must span both nodes
			MPI:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st := u.WaitFinal(); st != UnitDone {
			t.Fatalf("final = %v (err %v)", st, u.Err())
		}
		p.Cancel()
	})
}

func TestNonMPIMulticoreConfinedToNode(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		// 6 > 4 cores/node and not MPI: must fail, not wedge.
		u := newUnit(s, UnitDescription{Name: "toowide", Kernel: "misc.sleep", Cores: 6, MPI: true})
		u.Desc.MPI = false
		u.mu.Lock()
		u.pilot = p
		u.mu.Unlock()
		p.agent.submit(u)
		if st := u.WaitFinal(); st != UnitFailed {
			t.Fatalf("final = %v, want FAILED", st)
		}
		if !strings.Contains(u.Err().Error(), "node has") {
			t.Errorf("err = %v", u.Err())
		}
		p.Cancel()
	})
}

func TestUnitLargerThanPilotFails(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 4)
		um := NewUnitManager(s)
		um.AddPilot(p)
		u, _ := um.SubmitOne(UnitDescription{
			Name: "huge", Kernel: "misc.sleep", Cores: 16, MPI: true,
		})
		if st := u.WaitFinal(); st != UnitFailed {
			t.Fatalf("final = %v, want FAILED", st)
		}
		p.Cancel()
	})
}

func TestRoundRobinSpreadsUnits(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		pm := NewPilotManager(s)
		var pilots []*ComputePilot
		for i := 0; i < 2; i++ {
			p, err := pm.Submit(PilotDescription{
				Resource: "test.pilot", Cores: 4, Walltime: time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			pilots = append(pilots, p)
		}
		for _, p := range pilots {
			p.WaitActive()
		}
		um := NewUnitManager(s)
		for _, p := range pilots {
			um.AddPilot(p)
		}
		descs := make([]UnitDescription, 8)
		for i := range descs {
			descs[i] = sleepUnit("rr", 1)
		}
		units, _ := um.Submit(descs)
		um.WaitAll(units)
		count := map[*ComputePilot]int{}
		for _, u := range units {
			count[u.Pilot()]++
		}
		if count[pilots[0]] != 4 || count[pilots[1]] != 4 {
			t.Errorf("round robin spread %d/%d, want 4/4", count[pilots[0]], count[pilots[1]])
		}
		for _, p := range pilots {
			p.Cancel()
		}
	})
}

func TestFaultInjectionAndAttempts(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		failFirst := func(attempt int) bool { return attempt == 0 }
		d := sleepUnit("flaky", 1)
		d.FailOn = failFirst
		u, _ := um.SubmitOne(d)
		if st := u.WaitFinal(); st != UnitFailed {
			t.Fatalf("attempt 0 state = %v, want FAILED", st)
		}
		// Resubmit as attempt 1 (what the toolkit's retry layer does).
		d.Attempt = 1
		u2, _ := um.SubmitOne(d)
		if st := u2.WaitFinal(); st != UnitDone {
			t.Fatalf("attempt 1 state = %v (err %v)", st, u2.Err())
		}
		p.Cancel()
	})
}

func TestWorkHookRunsAndPropagatesErrors(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		ran := false
		d := sleepUnit("worker", 0.1)
		d.Work = func() error { ran = true; return nil }
		u, _ := um.SubmitOne(d)
		if st := u.WaitFinal(); st != UnitDone || !ran {
			t.Fatalf("work unit state=%v ran=%v", st, ran)
		}
		p.Cancel()
	})
}

func TestPilotCancelFailsQueuedUnits(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 1) // 1 core: everything queues behind one unit
		um := NewUnitManager(s)
		um.AddPilot(p)
		blocker, _ := um.SubmitOne(sleepUnit("blocker", 1000))
		queued, _ := um.SubmitOne(sleepUnit("queued", 1))
		v.Sleep(time.Second) // let the blocker start
		p.Cancel()
		if st := queued.WaitFinal(); st != UnitFailed {
			t.Errorf("queued unit state = %v, want FAILED", st)
		}
		_ = blocker
	})
}

func TestUnitCancelWhileQueued(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 1)
		um := NewUnitManager(s)
		um.AddPilot(p)
		um.SubmitOne(sleepUnit("blocker", 100))
		victim, _ := um.SubmitOne(sleepUnit("victim", 1))
		v.Sleep(500 * time.Millisecond)
		victim.Cancel()
		if st := victim.WaitFinal(); st != UnitCanceled {
			t.Errorf("state = %v, want CANCELED", st)
		}
		p.Cancel()
	})
}

func TestStagingRecordedInProfile(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		d := sleepUnit("stager", 0.1)
		d.InputStaging = []Directive{{Op: OpUpload, Source: "in.dat", SizeMB: 10}}
		d.OutputStaging = []Directive{{Op: OpDownload, Source: "out.dat", SizeMB: 1}}
		u, _ := um.SubmitOne(d)
		if st := u.WaitFinal(); st != UnitDone {
			t.Fatalf("state = %v (err %v)", st, u.Err())
		}
		if _, ok := s.Prof.First(u.Entity(), "stagein_start"); !ok {
			t.Error("no stagein_start event")
		}
		if _, ok := s.Prof.Last(u.Entity(), "stageout_stop"); !ok {
			t.Error("no stageout_stop event")
		}
		p.Cancel()
	})
}

func TestLeastLoadedPrefersIdlePilot(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	s.Cfg.Scheduler = LeastLoaded
	v.Run(func() {
		pm := NewPilotManager(s)
		busy, _ := pm.Submit(PilotDescription{Resource: "test.pilot", Cores: 4, Walltime: time.Hour})
		idle, _ := pm.Submit(PilotDescription{Resource: "test.pilot", Cores: 4, Walltime: time.Hour})
		busy.WaitActive()
		idle.WaitActive()
		um := NewUnitManager(s)
		um.AddPilot(busy)
		// Load up the busy pilot directly.
		descs := make([]UnitDescription, 6)
		for i := range descs {
			descs[i] = sleepUnit("busywork", 50)
		}
		um.Submit(descs)
		um.AddPilot(idle)
		u, _ := um.SubmitOne(sleepUnit("probe", 0.1))
		if u.Pilot() != idle {
			t.Error("least-loaded did not pick the idle pilot")
		}
		u.WaitFinal()
		busy.Cancel()
		idle.Cancel()
	})
}

func TestStateStrings(t *testing.T) {
	for _, s := range []UnitState{UnitNew, UnitScheduling, UnitQueued, UnitStagingInput,
		UnitExecuting, UnitStagingOutput, UnitDone, UnitFailed, UnitCanceled, UnitState(99)} {
		if s.String() == "" {
			t.Errorf("empty unit state string for %d", int(s))
		}
	}
	for _, s := range []PilotState{PilotPending, PilotActive, PilotDone, PilotCanceled,
		PilotFailed, PilotState(99)} {
		if s.String() == "" {
			t.Errorf("empty pilot state string for %d", int(s))
		}
	}
	if !UnitDone.Final() || UnitQueued.Final() {
		t.Error("UnitState.Final wrong")
	}
	if !PilotFailed.Final() || PilotActive.Final() {
		t.Error("PilotState.Final wrong")
	}
	if FirstFit.String() == "" || BestFit.String() == "" ||
		RoundRobin.String() == "" || LeastLoaded.String() == "" {
		t.Error("empty policy strings")
	}
}

func TestFailedUnitsFilter(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um := NewUnitManager(s)
		um.AddPilot(p)
		good := sleepUnit("good", 0.1)
		bad := sleepUnit("bad", 0.1)
		bad.FailOn = func(int) bool { return true }
		units, _ := um.Submit([]UnitDescription{good, bad})
		um.WaitAll(units)
		failed := FailedUnits(units)
		if len(failed) != 1 || failed[0].Desc.Name != "bad" {
			t.Errorf("FailedUnits = %v", failed)
		}
		p.Cancel()
	})
}
