package pilot

import "time"

// The real-mode execution seam. In simulation, a unit's execution window
// is a virtual Sleep of the cost-model duration. With a UnitRunner
// installed (Config.Runner) and the session on a wall clock, the agent
// hands the window to the runner instead: the runner blocks for as long
// as the unit really takes — executing the unit's command as an OS
// process, or sleeping the modelled duration for kernels without one —
// and its error surfaces through exactly the path an injected FailOn
// failure would take, so the retry/rebind machinery upstream needs no
// real-mode awareness at all. Everything around the window (launch
// latency, staging, state transitions, profiler records, utilization
// accounting) is shared between the modes; that shared structure is what
// the sim-vs-real parity test pins.

// ExecRequest describes one unit-execution window handed to a UnitRunner.
type ExecRequest struct {
	// PilotID identifies the pilot whose agent dispatched the unit;
	// runners bound worker slots per pilot.
	PilotID int
	// PilotCores is the pilot's total core count — the runner's slot
	// capacity for this pilot, matching PilotSpec.Cores.
	PilotCores int
	// Unit is the unit's name (profiler entity spelling, e.g. "sim.0007").
	Unit string
	// UnitID is the session-scoped numeric unit id.
	UnitID int
	// Attempt counts resubmissions of logically the same task.
	Attempt int
	// Kernel is the kernel-plugin name (cost model / bookkeeping).
	Kernel string
	// Executable and Args are the real command; an empty Executable marks
	// a modelled kernel, which the runner sleeps for Model instead.
	Executable string
	Args       []string
	// Cores is the unit's core request; the runner holds that many of the
	// pilot's slots for the duration of the window.
	Cores int
	// Model is the cost model's predicted duration — the execution time
	// in sim mode, the fallback sleep for modelled kernels in real mode.
	Model time.Duration
}

// UnitRunner executes unit windows in real mode. Implementations must be
// safe for concurrent use: one agent runs many windows at once.
type UnitRunner interface {
	// RunUnit blocks for the unit's execution window and returns nil on
	// success or the execution failure (non-zero exit, killed process).
	// The agent maps an error onto UnitFailed, burning a retry.
	RunUnit(req ExecRequest) error
	// ReleasePilot tells the runner the pilot stopped (teardown, fault,
	// walltime): kill and reap every process still running on its behalf
	// so no orphans survive the agent. In-flight RunUnit calls for that
	// pilot return with the kill error.
	ReleasePilot(pilotID int)
}
