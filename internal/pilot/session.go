// Package pilot implements the pilot-job runtime system the toolkit
// delegates execution to, modelled on RADICAL-Pilot (Section III-C2). A
// ComputePilot is a placeholder job submitted through the SAGA layer to a
// machine's batch system; once its agent boots inside the allocation, any
// number of ComputeUnits are scheduled onto the pilot's cores at the
// application level — including multi-core (MPI) units — decoupling the
// workload size from the instantaneous resource availability.
package pilot

import (
	"sync"
	"time"

	"entk/internal/batch"
	"entk/internal/cluster"
	"entk/internal/pad"
	"entk/internal/profile"
	"entk/internal/saga"
	"entk/internal/stage"
	"entk/internal/vclock"
)

// CostModel predicts a kernel invocation's runtime; the kernels registry
// implements it. The pilot layer depends only on this interface so it
// stays ignorant of kernel semantics.
type CostModel interface {
	Duration(kernel string, params map[string]float64, cores int, m *cluster.Machine) (time.Duration, error)
}

// Placement selects the agent scheduler's node-packing strategy.
type Placement int

const (
	// FirstFit places a unit on the first node with enough free cores.
	// Units are tried in FIFO order but any unit that fits starts, so
	// later units may overtake a blocked head (continuous scheduling).
	FirstFit Placement = iota
	// BestFit places a unit on the feasible node with the fewest free
	// cores, reducing fragmentation for mixed-size workloads. Queue
	// discipline is continuous, as with FirstFit.
	BestFit
	// Backfill packs first-fit but keeps the queue near-FIFO: the first
	// blocked unit holds a reservation at its earliest possible start
	// (projected from running units' cost-model completion times), and a
	// later unit may jump it only if it cannot delay that start — EASY
	// backfilling at the agent layer. See agent.go.
	Backfill
)

func (p Placement) String() string {
	switch p {
	case BestFit:
		return "best-fit"
	case Backfill:
		return "backfill"
	default:
		return "first-fit"
	}
}

// SchedulerPolicy selects how the unit manager spreads units over pilots.
type SchedulerPolicy int

const (
	// RoundRobin deals units to pilots in turn.
	RoundRobin SchedulerPolicy = iota
	// LeastLoaded sends each unit to the pilot with the fewest queued
	// units (weighted by cores).
	LeastLoaded
)

func (s SchedulerPolicy) String() string {
	if s == LeastLoaded {
		return "least-loaded"
	}
	return "round-robin"
}

// Config tunes the runtime's overhead model and scheduling strategies.
type Config struct {
	// UMSubmitPerUnit is the client-side cost of creating and submitting
	// one unit (serialization, DB round trip). It is the component of the
	// toolkit overhead that grows with the number of tasks.
	UMSubmitPerUnit time.Duration
	// Scheduler picks the unit-to-pilot policy.
	Scheduler SchedulerPolicy
	// Agent picks the node-packing strategy inside each pilot.
	Agent Placement
	// LauncherWidth bounds concurrent task launches inside one pilot;
	// zero means one launcher slot per allocated node.
	LauncherWidth int
	// BatchPolicy is the queue discipline of the simulated batch systems.
	BatchPolicy batch.Policy
	// Rescan selects the seed's O(pending x nodes) rescan scheduler
	// inside the agents instead of the indexed incremental one. The two
	// produce identical placements and identical simulated time; the
	// rescan path is kept as the reference implementation for regression
	// tests (see sched.go).
	Rescan bool
	// ProfLayout selects the profiler's event-storage layout: the default
	// interned columnar layout, or the seed string-backed store
	// (profile.LayoutRef) kept as the reference implementation for the
	// layout-parity tests — the profiler analogue of Rescan.
	ProfLayout profile.Layout
	// PendingRef selects the seed's flat compacting pending FIFO inside
	// the agents instead of the segmented per-class queue. The two
	// produce identical placements and identical simulated time; the
	// FIFO path is kept as the reference implementation for the
	// queue-parity tests (see pendq.go) — the pending-queue analogue of
	// Rescan.
	PendingRef bool
	// Runner, when non-nil, switches the agents into real-mode execution:
	// each unit's execution window is handed to the runner (which execs
	// the unit's command or sleeps its modelled duration in real time)
	// instead of being a virtual Sleep. Requires the session clock to be
	// a wall clock — a runner blocking on a real process under a virtual
	// engine would stall the simulation. See runner.go.
	Runner UnitRunner
}

// DefaultConfig returns the configuration used for the paper
// reproductions.
func DefaultConfig() Config {
	return Config{
		UMSubmitPerUnit: 10 * time.Millisecond,
		Scheduler:       RoundRobin,
		Agent:           FirstFit,
		LauncherWidth:   0,
		BatchPolicy:     batch.FIFO,
	}
}

// profVocab is the runtime's fixed profiler event vocabulary, interned
// once per session so every hot-path Record travels as pre-built ids —
// no per-event string hashing or map lookups, and (on the columnar
// layout) no string headers in the event log.
type profVocab struct {
	evNew, evUmgrBound                        profile.NameID
	evSubmit, evJobRunning, evActive, evFinal profile.NameID
	evStageinStart, evStageinStop             profile.NameID
	evExecStart, evExecStop                   profile.NameID
	evStageoutStart, evStageoutStop           profile.NameID
	evWaveStart, evWaveStop                   profile.NameID
	unitState                                 [len(unitStateEvents)]profile.NameID
	pilotState                                [len(pilotStateEvents)]profile.NameID
}

func (vo *profVocab) init(p *profile.Profiler) {
	vo.evNew = p.InternName("new")
	vo.evUmgrBound = p.InternName("umgr_bound")
	vo.evWaveStart = p.InternName("wave_submit_start")
	vo.evWaveStop = p.InternName("wave_submit_stop")
	vo.evSubmit = p.InternName("submit")
	vo.evJobRunning = p.InternName("job_running")
	vo.evActive = p.InternName("active")
	vo.evFinal = p.InternName("final")
	vo.evStageinStart = p.InternName("stagein_start")
	vo.evStageinStop = p.InternName("stagein_stop")
	vo.evExecStart = p.InternName("exec_start")
	vo.evExecStop = p.InternName("exec_stop")
	vo.evStageoutStart = p.InternName("stageout_start")
	vo.evStageoutStop = p.InternName("stageout_stop")
	for st := range vo.unitState {
		vo.unitState[st] = p.InternName(unitStateEvents[st])
	}
	for st := range vo.pilotState {
		vo.pilotState[st] = p.InternName(pilotStateEvents[st])
	}
}

// Session is the root object of the runtime (mirroring rp.Session): it
// owns the virtual clock, the profiler, the cost model, and one simulated
// batch system per machine.
type Session struct {
	V    vclock.Clock
	Prof *profile.Profiler
	Cost CostModel
	Cfg  Config

	vocab profVocab

	mu       sync.Mutex
	backends map[string]*backend
	nextPID  int
	nextUID  int
}

// unitStateName returns the pre-interned event-name id for a transition
// into st (interning on the fly only for out-of-range states).
func (s *Session) unitStateName(st UnitState) profile.NameID {
	if int(st) < len(s.vocab.unitState) {
		return s.vocab.unitState[st]
	}
	return s.Prof.InternName(st.stateEvent())
}

// pilotStateName is unitStateName for pilot states.
func (s *Session) pilotStateName(st PilotState) profile.NameID {
	if int(st) < len(s.vocab.pilotState) {
		return s.vocab.pilotState[st]
	}
	return s.Prof.InternName(st.stateEvent())
}

// backend bundles the per-machine simulation objects.
type backend struct {
	machine *cluster.Machine
	system  *batch.System
	service saga.Service
	mover   *stage.Mover
}

// NewSession creates a session with the given cost model and config. A
// config carrying a real-mode Runner demands a wall clock: real process
// execution blocks outside the engine's accounting, which would stall
// (and likely deadlock-panic) a virtual simulation.
func NewSession(v vclock.Clock, cost CostModel, cfg Config) *Session {
	if cfg.Runner != nil && v.EngineKind() != vclock.EngineWall {
		panic("pilot: Config.Runner requires a wall clock (vclock.NewWall); real execution cannot run under a virtual engine")
	}
	s := &Session{
		V:        v,
		Prof:     profile.NewLayout(v, cfg.ProfLayout),
		Cost:     cost,
		Cfg:      cfg,
		backends: make(map[string]*backend),
	}
	s.vocab.init(s.Prof)
	return s
}

// backendFor returns (creating on first use) the simulation backend for a
// resource label.
func (s *Session) backendFor(resource string) (*backend, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.backends[resource]; ok {
		return b, nil
	}
	m, err := cluster.Lookup(resource)
	if err != nil {
		return nil, err
	}
	sys, err := batch.NewSystem(s.V, m, s.Cfg.BatchPolicy)
	if err != nil {
		return nil, err
	}
	// Batch and staging record their lifecycle events into the session
	// profiler with pre-interned ids, so the TTC decomposition can be
	// reconstructed down to queue admissions and individual staging ops.
	sys.SetProfiler(s.Prof)
	mover := stage.NewMover(s.V, m)
	mover.SetProfiler(s.Prof, "mover."+resource)
	b := &backend{
		machine: m,
		system:  sys,
		service: saga.NewBatchService(s.V, sys),
		mover:   mover,
	}
	s.backends[resource] = b
	return b, nil
}

// pilotID allocates a pilot identifier.
func (s *Session) pilotID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextPID++
	return s.nextPID
}

// unitID allocates a unit identifier.
func (s *Session) unitID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextUID++
	return s.nextUID
}

// entity name helpers keep profiler keys consistent across layers. They
// are on the per-unit hot path (every profiler record carries an entity
// key), so they format without fmt.
func pilotEntity(id int) string { return "pilot." + pad.Int(id, 4) }
func unitEntity(id int) string  { return "unit." + pad.Int(id, 6) }
