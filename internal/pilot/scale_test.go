package pilot

import (
	"testing"
	"time"

	"entk/internal/cluster"
	"entk/internal/kernels"
	"entk/internal/vclock"
)

// TestScaleFourThousandUnits exercises the paper's largest configuration
// (Figure 8's 4096 concurrent tasks) directly at the pilot layer: all
// units run concurrently, the agent never oversubscribes, and aggregate
// accounting stays exact.
func TestScaleFourThousandUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	v := vclock.NewVirtual()
	s := NewSession(v, kernels.NewRegistry(), DefaultConfig())
	v.Run(func() {
		pm := NewPilotManager(s)
		p, err := pm.Submit(PilotDescription{
			Resource: "xsede.stampede", Cores: 4096, Walltime: 100 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.WaitActive()
		um := NewUnitManager(s)
		um.AddPilot(p)
		descs := make([]UnitDescription, 4096)
		for i := range descs {
			descs[i] = sleepUnit("scale", 30)
		}
		units, err := um.Submit(descs)
		if err != nil {
			t.Fatal(err)
		}
		var done int
		for _, st := range um.WaitAll(units) {
			if st == UnitDone {
				done++
			}
		}
		if done != 4096 {
			t.Fatalf("%d of 4096 units done", done)
		}
		// All concurrent: the span between first exec start and last exec
		// stop must be 30s plus launch stagger, not multiple waves.
		var minStart, maxStop time.Duration
		first := true
		for _, u := range units {
			start, stop, ok := u.ExecWindow()
			if !ok {
				t.Fatal("unit without exec window")
			}
			if first || start < minStart {
				minStart = start
			}
			if stop > maxStop {
				maxStop = stop
			}
			first = false
		}
		span := maxStop - minStart
		if span < 30*time.Second || span > 40*time.Second {
			t.Errorf("4096-unit span = %v, want ~30-40s (single wave)", span)
		}
		if free := p.agent.freeCores(); free != 4096 {
			t.Errorf("free cores after drain = %d", free)
		}
		p.Cancel()
	})
}

// TestMultiMachineSession runs pilots on two different machines in one
// session, with the unit manager spreading units across them.
func TestMultiMachineSession(t *testing.T) {
	v := vclock.NewVirtual()
	s := NewSession(v, kernels.NewRegistry(), DefaultConfig())
	v.Run(func() {
		pm := NewPilotManager(s)
		comet, err := pm.Submit(PilotDescription{
			Resource: "xsede.comet", Cores: 24, Walltime: 10 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		supermic, err := pm.Submit(PilotDescription{
			Resource: "lsu.supermic", Cores: 20, Walltime: 10 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		comet.WaitActive()
		supermic.WaitActive()

		um := NewUnitManager(s)
		um.AddPilot(comet)
		um.AddPilot(supermic)
		descs := make([]UnitDescription, 10)
		for i := range descs {
			descs[i] = sleepUnit("multi", 1)
		}
		units, _ := um.Submit(descs)
		um.WaitAll(units)
		byPilot := map[*ComputePilot]int{}
		for _, u := range units {
			if u.State() != UnitDone {
				t.Fatalf("unit state %v", u.State())
			}
			byPilot[u.Pilot()]++
		}
		if byPilot[comet] != 5 || byPilot[supermic] != 5 {
			t.Errorf("units split %d/%d, want 5/5", byPilot[comet], byPilot[supermic])
		}
		comet.Cancel()
		supermic.Cancel()
	})
}

// TestKernelExecutableResolutionPerMachine verifies the kernel plugin's
// resource transparency claim end to end: the same kernel name resolves
// to different tool paths on different machines.
func TestKernelExecutableResolutionPerMachine(t *testing.T) {
	reg := kernels.NewRegistry()
	amber, err := reg.Lookup("md.amber")
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]string{}
	for _, name := range []string{"xsede.comet", "xsede.stampede", "lsu.supermic"} {
		m, err := cluster.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		exe, err := amber.Executable(m)
		if err != nil {
			t.Fatal(err)
		}
		paths[name] = exe
	}
	if paths["xsede.comet"] == paths["xsede.stampede"] {
		t.Error("comet and stampede resolve to the same amber path")
	}
}
