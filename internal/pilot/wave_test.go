package pilot

import (
	"testing"
	"time"

	"entk/internal/vclock"
)

// TestInterleavedBulkWaves is the AppManager's runtime contract at the
// pilot layer: several live submitters (one per pipeline) push bulk
// waves into one unit manager concurrently — mixing the batched and the
// streamed path — and every unit must bind, execute, and finish, with
// each wave bracketed on the trace. The waves overlap in virtual time
// (each submitter sleeps out its own client-side cost concurrently), so
// this exercises exactly the interleaving a heterogeneous campaign
// produces.
func TestInterleavedBulkWaves(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	um := NewUnitManager(s)

	var waves [4][]*ComputeUnit
	v.Run(func() {
		_, p := startPilot(t, s, 32)
		um.AddPilot(p)
		wg := vclock.NewWaitGroup(v, "submitters")
		for w := 0; w < len(waves); w++ {
			w := w
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				descs := make([]UnitDescription, 8+4*w)
				for i := range descs {
					descs[i] = sleepUnit("w"+pad2(w, i), float64(1+w))
				}
				var err error
				if w%2 == 0 {
					waves[w], err = um.Submit(descs)
				} else {
					waves[w], err = um.SubmitStreamed(descs)
				}
				if err != nil {
					t.Error(err)
				}
			})
		}
		wg.Wait()
		for w := range waves {
			for _, u := range waves[w] {
				if st := u.WaitFinal(); st != UnitDone {
					t.Errorf("wave %d unit %s final state %v", w, u.Entity(), st)
				}
			}
		}
		p.Cancel()
		p.WaitFinal()
	})

	if got := um.Waves(); got != len(waves) {
		t.Errorf("wave count = %d, want %d", got, len(waves))
	}
	// Every wave bracketed itself on the trace, and the brackets
	// overlap: the first wave's stop comes after the last wave's start
	// (waves sleep out their submission costs concurrently).
	starts, stops := 0, 0
	var lastStart, firstStop time.Duration
	firstStop = 1 << 62
	for _, e := range s.Prof.Events() {
		if e.Entity != "umgr" {
			continue
		}
		switch e.Name {
		case "wave_submit_start":
			starts++
			if e.T > lastStart {
				lastStart = e.T
			}
		case "wave_submit_stop":
			stops++
			if e.T < firstStop {
				firstStop = e.T
			}
		}
	}
	if starts != len(waves) || stops != len(waves) {
		t.Errorf("wave brackets = %d/%d, want %d/%d", starts, stops, len(waves), len(waves))
	}
	if firstStop < lastStart {
		t.Logf("waves interleaved: last start %v before first stop %v", lastStart, firstStop)
	} else if firstStop == lastStart {
		t.Log("waves met exactly at one instant")
	}
}

// pad2 builds a small unique unit name without fmt.
func pad2(w, i int) string {
	const digits = "0123456789"
	return string([]byte{digits[w%10], '.', digits[(i/10)%10], digits[i%10]})
}
