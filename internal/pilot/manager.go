package pilot

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/profile"
)

// UnitManager accepts unit descriptions, binds each to a pilot per the
// configured scheduling policy, and forwards it to that pilot's agent
// (mirroring rp.UnitManager). Submissions arrive as bulk waves — one
// Submit or SubmitStreamed call per wave — and waves from any number of
// concurrent callers (the AppManager runs one submitting process per
// live pipeline) interleave safely: per-wave state is call-local, the
// pilot table and round-robin cursor are locked, and the agents accept
// units from many submitters at once. Each wave brackets itself on the
// "umgr" entity so interleaving is visible in the trace.
type UnitManager struct {
	sess *Session
	ent  profile.EntityID // "umgr": wave brackets record here

	mu     sync.Mutex
	pilots []*ComputePilot
	rr     int             // round-robin cursor (legacy Cfg.Scheduler path)
	place  PlacementPolicy // nil = legacy Cfg.Scheduler behaviour
	waves  int             // waves accepted (Submit + SubmitStreamed + batched rounds)
}

// NewUnitManager returns a unit manager bound to the session.
func NewUnitManager(s *Session) *UnitManager {
	return &UnitManager{sess: s, ent: s.Prof.Intern("umgr")}
}

// Waves reports how many submission waves the manager has accepted.
func (um *UnitManager) Waves() int {
	um.mu.Lock()
	defer um.mu.Unlock()
	return um.waves
}

// beginWave/endWave bracket one bulk submission on the trace.
func (um *UnitManager) beginWave() {
	um.mu.Lock()
	um.waves++
	um.mu.Unlock()
	um.sess.Prof.RecordID(um.ent, um.sess.vocab.evWaveStart)
}

func (um *UnitManager) endWave() {
	um.sess.Prof.RecordID(um.ent, um.sess.vocab.evWaveStop)
}

// SetPlacement installs a placement policy, replacing the legacy
// per-unit Cfg.Scheduler choice. Multi-pilot resource sets install one
// at allocation; with none installed the manager keeps the seed
// behaviour unchanged.
func (um *UnitManager) SetPlacement(p PlacementPolicy) {
	um.mu.Lock()
	um.place = p
	um.mu.Unlock()
}

// Placement returns the installed placement policy, nil for the legacy
// scheduler path.
func (um *UnitManager) Placement() PlacementPolicy {
	um.mu.Lock()
	defer um.mu.Unlock()
	return um.place
}

// AddPilot makes a pilot available for unit scheduling.
func (um *UnitManager) AddPilot(p *ComputePilot) {
	um.mu.Lock()
	um.pilots = append(um.pilots, p)
	um.mu.Unlock()
}

// RemovePilot withdraws a pilot from scheduling (already-bound units are
// unaffected).
func (um *UnitManager) RemovePilot(p *ComputePilot) {
	um.mu.Lock()
	for i, q := range um.pilots {
		if q == p {
			um.pilots = append(um.pilots[:i], um.pilots[i+1:]...)
			break
		}
	}
	um.mu.Unlock()
}

// pick selects a pilot for the next unit: the placement policy when one
// is installed (late binding over a multi-pilot set), else the legacy
// Cfg.Scheduler choice.
func (um *UnitManager) pick(d *UnitDescription) (*ComputePilot, error) {
	um.mu.Lock()
	defer um.mu.Unlock()
	if len(um.pilots) == 0 {
		return nil, fmt.Errorf("pilot: unit manager has no pilots")
	}
	if um.place != nil {
		p := um.place.Place(d, um.pilots)
		if p == nil {
			return nil, fmt.Errorf("pilot: no pilot in the set can run unit %q (%d cores, mpi=%v, tags=%v)",
				d.Name, d.Cores, d.MPI, d.Tags)
		}
		return p, nil
	}
	switch um.sess.Cfg.Scheduler {
	case LeastLoaded:
		best := um.pilots[0]
		for _, p := range um.pilots[1:] {
			if p.agent.load() < best.agent.load() {
				best = p
			}
		}
		return best, nil
	default: // RoundRobin
		p := um.pilots[um.rr%len(um.pilots)]
		um.rr++
		return p, nil
	}
}

// Submit validates and submits unit descriptions in bulk: the client
// first creates every unit (paying the per-unit submission cost, which is
// what makes toolkit overhead grow with task count), then dispatches the
// whole batch to the pilots' agents — like EnTK building a stage's CU
// descriptions and calling submit_units once. It must be called from a
// registered vclock process.
func (um *UnitManager) Submit(descs []UnitDescription) ([]*ComputeUnit, error) {
	for i := range descs {
		if err := descs[i].Validate(); err != nil {
			return nil, err
		}
	}
	um.beginWave()
	defer um.endWave()
	units := make([]*ComputeUnit, 0, len(descs))
	for _, d := range descs {
		u := newUnit(um.sess, d)
		um.sess.Prof.RecordID(u.entityID, um.sess.vocab.evNew)
		units = append(units, u)
	}
	// Client-side creation/serialization cost for the whole batch.
	um.sess.V.Sleep(time.Duration(len(descs)) * um.sess.Cfg.UMSubmitPerUnit)
	for _, u := range units {
		u.setState(UnitScheduling)
		p, err := um.pick(&u.Desc)
		if err != nil {
			u.finish(UnitFailed, err)
			continue
		}
		u.mu.Lock()
		u.pilot = p
		u.mu.Unlock()
		um.sess.Prof.RecordID(u.entityID, um.sess.vocab.evUmgrBound)
		p.agent.submit(u)
	}
	return units, nil
}

// SubmitStreamed validates and submits unit descriptions as a stream:
// each unit is created and dispatched to its pilot as soon as its own
// client-side submission cost has elapsed, instead of after the whole
// batch's. Unit i therefore reaches an agent at the same virtual time as
// the i-th of N serialized single-unit Submit calls, which is exactly the
// timeline the ensemble-of-pipelines executor produces with one goroutine
// per pipeline — without the N goroutines. It must be called from a
// registered vclock process.
func (um *UnitManager) SubmitStreamed(descs []UnitDescription) ([]*ComputeUnit, error) {
	for i := range descs {
		if err := descs[i].Validate(); err != nil {
			return nil, err
		}
	}
	um.beginWave()
	defer um.endWave()
	perUnit := um.sess.Cfg.UMSubmitPerUnit
	units := make([]*ComputeUnit, 0, len(descs))
	for i := range descs {
		u := newUnit(um.sess, descs[i])
		um.sess.Prof.RecordID(u.entityID, um.sess.vocab.evNew)
		units = append(units, u)
		// Client-side creation/serialization cost for this one unit.
		um.sess.V.Sleep(perUnit)
		um.dispatchOne(u)
	}
	return units, nil
}

// dispatchOne late-binds one created unit and hands it to its pilot's
// agent — the per-unit dispatch step shared by the streamed paths.
func (um *UnitManager) dispatchOne(u *ComputeUnit) {
	u.setState(UnitScheduling)
	p, err := um.pick(&u.Desc)
	if err != nil {
		u.finish(UnitFailed, err)
		return
	}
	u.mu.Lock()
	u.pilot = p
	u.mu.Unlock()
	um.sess.Prof.RecordID(u.entityID, um.sess.vocab.evUmgrBound)
	p.agent.submit(u)
}

// DispatchStreamed late-binds already-created units one at a time, each
// after its own client-side cost has elapsed — the dispatch half of
// SubmitStreamed, used by the wave batcher once a streamed wave's units
// were created in a shared round. Unit i is picked and submitted at
// exactly the instant the unbatched streamed path would dispatch it.
// Must be called from a registered vclock process.
func (um *UnitManager) DispatchStreamed(units []*ComputeUnit) {
	perUnit := um.sess.Cfg.UMSubmitPerUnit
	for _, u := range units {
		um.sess.V.Sleep(perUnit)
		um.dispatchOne(u)
	}
}

// createValidated creates units for already-validated descriptions
// (recording the NEW lifecycle events), charging no virtual time — the
// creation half of Submit. The wave batcher validates each wave once
// before it joins a round, then uses this to coalesce the creation of
// many concurrent waves under one umgr bracket; each member then pays
// its wave's client-side cost and Dispatches its units.
func (um *UnitManager) createValidated(descs []UnitDescription) []*ComputeUnit {
	units := make([]*ComputeUnit, 0, len(descs))
	for _, d := range descs {
		u := newUnit(um.sess, d)
		um.sess.Prof.RecordID(u.entityID, um.sess.vocab.evNew)
		units = append(units, u)
	}
	return units
}

// dispatchChunkMin bounds how small Dispatch's per-pilot runs get when
// a pilot is saturated: chunks of at least this many units keep the
// agent lock traffic well below per-unit submission while load-based
// tie-breaking still sees fresh state every chunk.
const dispatchChunkMin = 64

// Dispatch late-binds created units to pilots and hands them to the
// agents — the dispatch half of Submit, called once the wave's
// client-side cost has elapsed. Consecutive units bound to the same
// pilot are forwarded as bulk agent submissions (one queue insertion
// and one scheduling-pass request per run), so a single-pilot wave
// reaches its agent in a handful of bulk submits. A run is flushed when
// the pick switches pilots AND when it reaches the free-core count
// sampled at the run's start: the agent absorbs the run (placing what
// fits) before the next pick, so free-core- and load-based policies
// observe state that includes the units already dispatched — without
// the cap, a policy like PlaceLeastLoaded would see frozen counters,
// never switch pilots, and pour an entire wave onto one machine. Must
// be called from a registered vclock process.
func (um *UnitManager) Dispatch(units []*ComputeUnit) {
	var runPilot *ComputePilot
	var run []*ComputeUnit
	runCap := 0
	flush := func() {
		if runPilot != nil && len(run) > 0 {
			runPilot.agent.submitBatch(run)
			run = run[:0]
		}
	}
	// A run is capped at the pilot's current free cores; on a saturated
	// pilot (nothing placeable, runs only grow backlog) the fixed chunk
	// floor applies instead.
	sampleCap := func() int {
		if c := runPilot.FreeCores(); c > 0 {
			return c
		}
		return dispatchChunkMin
	}
	for _, u := range units {
		u.setState(UnitScheduling)
		p, err := um.pick(&u.Desc)
		if err != nil {
			u.finish(UnitFailed, err)
			continue
		}
		u.mu.Lock()
		u.pilot = p
		u.mu.Unlock()
		um.sess.Prof.RecordID(u.entityID, um.sess.vocab.evUmgrBound)
		if p != runPilot {
			flush()
			runPilot = p
			runCap = sampleCap()
		}
		run = append(run, u)
		if len(run) >= runCap {
			flush()
			runCap = sampleCap()
		}
	}
	flush()
}

// SubmitOne is a convenience wrapper for a single description.
func (um *UnitManager) SubmitOne(d UnitDescription) (*ComputeUnit, error) {
	us, err := um.Submit([]UnitDescription{d})
	if err != nil {
		return nil, err
	}
	return us[0], nil
}

// WaitAll blocks until every unit is terminal and returns their final
// states in order.
func (um *UnitManager) WaitAll(units []*ComputeUnit) []UnitState {
	out := make([]UnitState, len(units))
	for i, u := range units {
		out[i] = u.WaitFinal()
	}
	return out
}

// FailedUnits filters units whose final state is FAILED.
func FailedUnits(units []*ComputeUnit) []*ComputeUnit {
	var out []*ComputeUnit
	for _, u := range units {
		if u.State() == UnitFailed {
			out = append(out, u)
		}
	}
	return out
}
