package pilot

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/profile"
	"entk/internal/stage"
	"entk/internal/vclock"
)

// Directive re-exports stage.Directive so that callers describing units
// need not import the staging package separately.
type Directive = stage.Directive

// Staging operation aliases for unit descriptions.
const (
	OpUpload   = stage.Upload
	OpCopy     = stage.Copy
	OpLink     = stage.Link
	OpDownload = stage.Download
)

// UnitState is a compute unit's lifecycle state, a condensed version of
// RADICAL-Pilot's state model.
type UnitState int

const (
	// UnitNew: described, not yet accepted by a unit manager.
	UnitNew UnitState = iota
	// UnitScheduling: accepted, being bound to a pilot.
	UnitScheduling
	// UnitQueued: in the pilot agent's queue, waiting for cores.
	UnitQueued
	// UnitStagingInput: input staging directives executing.
	UnitStagingInput
	// UnitExecuting: running on allocated cores.
	UnitExecuting
	// UnitStagingOutput: output staging directives executing.
	UnitStagingOutput
	// UnitDone: finished successfully.
	UnitDone
	// UnitFailed: finished with an error.
	UnitFailed
	// UnitCanceled: cancelled before completion.
	UnitCanceled
)

func (s UnitState) String() string {
	switch s {
	case UnitNew:
		return "NEW"
	case UnitScheduling:
		return "SCHEDULING"
	case UnitQueued:
		return "QUEUED"
	case UnitStagingInput:
		return "STAGING_INPUT"
	case UnitExecuting:
		return "EXECUTING"
	case UnitStagingOutput:
		return "STAGING_OUTPUT"
	case UnitDone:
		return "DONE"
	case UnitFailed:
		return "FAILED"
	case UnitCanceled:
		return "CANCELED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Final reports whether s is terminal.
func (s UnitState) Final() bool {
	return s == UnitDone || s == UnitFailed || s == UnitCanceled
}

// unitStateEvents precomputes the profiler event name for each state
// transition ("state_" + String()), avoiding a per-transition allocation
// on the unit hot path.
var unitStateEvents = [...]string{
	UnitNew:           "state_NEW",
	UnitScheduling:    "state_SCHEDULING",
	UnitQueued:        "state_QUEUED",
	UnitStagingInput:  "state_STAGING_INPUT",
	UnitExecuting:     "state_EXECUTING",
	UnitStagingOutput: "state_STAGING_OUTPUT",
	UnitDone:          "state_DONE",
	UnitFailed:        "state_FAILED",
	UnitCanceled:      "state_CANCELED",
}

// stateEvent returns the profiler event name for a transition into s.
func (s UnitState) stateEvent() string {
	if int(s) < len(unitStateEvents) {
		return unitStateEvents[s]
	}
	return "state_" + s.String()
}

// UnitDescription describes one task, the pilot-level analogue of a kernel
// plugin instantiation.
type UnitDescription struct {
	// Name labels the unit in profiles and errors, e.g. "sim.0007".
	Name string
	// Kernel is the kernel-plugin name driving the cost model.
	Kernel string
	// Executable and Args are the unit's real command, exec'd as an OS
	// process by a real-mode runner (Config.Runner). Simulation ignores
	// them; a real-mode unit without an Executable sleeps its modelled
	// duration in wall time instead.
	Executable string
	Args       []string
	// Params parameterises the kernel's cost model.
	Params map[string]float64
	// Cores is the core count; >1 requires MPI.
	Cores int
	// MPI marks the unit as an MPI task, allowed to span nodes.
	MPI bool
	// Tags request pilot affinity in multi-pilot sets: a tag-affinity
	// placement policy routes the unit to a pilot carrying every one of
	// these tags. Untagged units place anywhere they fit.
	Tags []string
	// InputStaging runs before execution.
	InputStaging []stage.Directive
	// OutputStaging runs after execution.
	OutputStaging []stage.Directive
	// Work, if non-nil, is real computation executed (in zero virtual
	// time) when the unit completes — the hook by which analysis kernels
	// produce actual numbers while the clock models their cost.
	Work func() error
	// Attempt counts resubmissions of logically the same task; the
	// toolkit's retry layer increments it.
	Attempt int
	// FailOn, if non-nil, reports whether this attempt should fail — the
	// deterministic fault-injection hook used by tests and the fault
	// tolerance examples.
	FailOn func(attempt int) bool
}

// Validate rejects malformed descriptions.
func (d *UnitDescription) Validate() error {
	switch {
	case d.Kernel == "":
		return fmt.Errorf("pilot: unit %q has no kernel", d.Name)
	case d.Cores <= 0:
		return fmt.Errorf("pilot: unit %q requests %d cores", d.Name, d.Cores)
	case d.Cores > 1 && !d.MPI:
		return fmt.Errorf("pilot: unit %q wants %d cores but is not MPI", d.Name, d.Cores)
	}
	return nil
}

// ComputeUnit is a scheduled task instance.
type ComputeUnit struct {
	ID   int
	Desc UnitDescription

	sess     *Session
	entity   string           // cached profiler entity key
	entityID profile.EntityID // interned once; state transitions record by id

	mu       sync.Mutex
	state    UnitState
	err      error
	pilot    *ComputePilot
	started  time.Duration // exec start (virtual)
	stopped  time.Duration // exec stop (virtual)
	finalEv  vclock.Event  // embedded: one allocation per unit, not two
	canceled bool          // cancellation requested
	// gen is the rebind generation. When a pilot dies with a recovery
	// path installed, its teardown steals the unit — bumping gen — and
	// rebinding re-runs it elsewhere; the stale executor still holds the
	// old generation, so its remaining effects (state transitions, exec
	// window, finish) are discarded by the *From accessors below. Zero
	// for the whole life of any unit that is never stolen.
	gen int

	// pendIn/pendTomb are the segmented pending queue's bookkeeping
	// (pendq.go), guarded by the owning agent's mu — NOT by u.mu: pendIn
	// marks the unit live in its agent's queue; pendTomb marks a
	// cancelled entry whose queue slot is reclaimed lazily by the next
	// pass cursor that walks over it.
	pendIn   bool
	pendTomb bool
}

func newUnit(s *Session, desc UnitDescription) *ComputeUnit {
	id := s.unitID()
	entity := unitEntity(id)
	u := &ComputeUnit{
		ID:       id,
		Desc:     desc,
		sess:     s,
		entity:   entity,
		entityID: s.Prof.Intern(entity),
		state:    UnitNew,
	}
	u.finalEv.Init(s.V, entity) // reads "event unit.NNNNNN" in deadlock dumps
	return u
}

// NewReplayUnit reconstructs a settled compute unit from checkpointed
// state, for PostStage hook replay on resume: the unit is born final
// (state must be terminal) with its recorded exec window, its final
// event pre-fired, and no session behind it — every read accessor a
// hook can call (State, Err, ExecWindow, ExecDuration, WaitFinal,
// Desc) answers as the original did, while the mutating paths are all
// no-ops on a final unit. Replay units never touch a pilot, an agent,
// or the profiler.
func NewReplayUnit(v vclock.Clock, desc UnitDescription, st UnitState, start, stop time.Duration) *ComputeUnit {
	if !st.Final() {
		st = UnitDone
	}
	u := &ComputeUnit{
		ID:      -1,
		Desc:    desc,
		entity:  "replay." + desc.Name,
		state:   st,
		started: start,
		stopped: stop,
	}
	u.finalEv.Init(v, u.entity)
	u.finalEv.Fire()
	return u
}

// Entity returns the unit's profiler entity key.
func (u *ComputeUnit) Entity() string { return u.entity }

// State returns the current state.
func (u *ComputeUnit) State() UnitState {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.state
}

// Err returns the failure cause for a FAILED unit.
func (u *ComputeUnit) Err() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

// Pilot returns the pilot the unit was bound to, if any.
func (u *ComputeUnit) Pilot() *ComputePilot {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.pilot
}

// ExecWindow returns the unit's execution start and stop times on the
// virtual clock; ok is false if the unit never executed.
func (u *ComputeUnit) ExecWindow() (start, stop time.Duration, ok bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.stopped == 0 && u.started == 0 {
		return 0, 0, false
	}
	return u.started, u.stopped, true
}

// ExecDuration returns how long the unit executed; valid once final.
func (u *ComputeUnit) ExecDuration() time.Duration {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.stopped < u.started {
		return 0
	}
	return u.stopped - u.started
}

// WaitFinal blocks the calling process until the unit is terminal and
// returns the final state.
func (u *ComputeUnit) WaitFinal() UnitState {
	u.finalEv.Wait()
	return u.State()
}

// Cancel requests cancellation. Queued units are cancelled immediately; a
// unit already executing runs to completion but finishes CANCELED.
func (u *ComputeUnit) Cancel() {
	u.mu.Lock()
	u.canceled = true
	st := u.state
	u.mu.Unlock()
	if st == UnitNew || st == UnitScheduling || st == UnitQueued {
		if p := u.Pilot(); p != nil {
			p.agent.cancelQueued(u)
			return
		}
		u.finish(UnitCanceled, nil)
	}
}

// setState transitions the unit, recording the transition in the profiler.
// Transitions out of a final state are ignored.
func (u *ComputeUnit) setState(st UnitState) {
	u.mu.Lock()
	if u.state.Final() {
		u.mu.Unlock()
		return
	}
	u.state = st
	u.mu.Unlock()
	u.sess.Prof.RecordID(u.entityID, u.sess.unitStateName(st))
}

// finish moves the unit to a terminal state and fires its final event.
func (u *ComputeUnit) finish(st UnitState, err error) { u.finishFrom(-1, st, err) }

// finishFrom is finish gated on the rebind generation: a stale executor
// (gen >= 0, no longer current) must not settle a unit that was stolen
// and re-dispatched. gen < 0 disables the gate (external finishers, and
// agents that do not track in-flight work).
func (u *ComputeUnit) finishFrom(gen int, st UnitState, err error) {
	u.mu.Lock()
	if (gen >= 0 && gen != u.gen) || u.state.Final() {
		u.mu.Unlock()
		return
	}
	if u.canceled && st == UnitDone {
		st = UnitCanceled
	}
	u.state = st
	u.err = err
	u.mu.Unlock()
	u.sess.Prof.RecordID(u.entityID, u.sess.unitStateName(st))
	u.finalEv.Fire()
}

// setStateFrom is setState gated on the rebind generation, reporting
// whether the transition (and its profiler record) happened.
func (u *ComputeUnit) setStateFrom(gen int, st UnitState) bool {
	u.mu.Lock()
	if (gen >= 0 && gen != u.gen) || u.state.Final() {
		u.mu.Unlock()
		return false
	}
	u.state = st
	u.mu.Unlock()
	u.sess.Prof.RecordID(u.entityID, u.sess.unitStateName(st))
	return true
}

// markExecFrom records the execution window for ExecDuration, gated on
// the rebind generation; a false return tells the (stale) executor to
// abandon the unit — the exec-stop record, utilization bump, and finish
// all belong to the rebound run.
func (u *ComputeUnit) markExecFrom(gen int, start, stop time.Duration) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if gen >= 0 && gen != u.gen {
		return false
	}
	u.started, u.stopped = start, stop
	return true
}

// staleGen reports whether gen is an outdated rebind generation.
func (u *ComputeUnit) staleGen(gen int) bool {
	if gen < 0 {
		return false
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return gen != u.gen
}

// generation snapshots the current rebind generation; the agent captures
// it at placement so the executor's effects can be matched to the
// placement they came from.
func (u *ComputeUnit) generation() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.gen
}

// steal reclaims a non-final unit from a dead (or shrinking) pilot for
// rebinding: the generation is bumped — discarding every later effect of
// the stale executor — and the exec window is cleared for the re-run.
// The stale executor itself cannot be interrupted mid-Sleep (virtual
// time has no cancellable timer); it wakes no later than the rebound
// replacement finishes (its sleep started earlier and runs the same
// modelled duration) and exits at its next generation gate.
func (u *ComputeUnit) steal() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.state.Final() {
		return false
	}
	u.gen++
	u.started, u.stopped = 0, 0
	return true
}
