package pilot

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"entk/internal/vclock"
)

// The scheduler invariant suite: every placement policy (FirstFit,
// BestFit, Backfill) on both implementations (rescan reference, indexed)
// must uphold the allocation invariants — node free cores stay within
// [0, capacity], totals stay consistent, every allocation is fully
// released, non-MPI units never span nodes, MPI units span only when no
// single node fits — and the agent-level queue discipline: FIFO order
// except for the policy's sanctioned overtaking.

// schedCase enumerates the policy x implementation matrix.
type schedCase struct {
	name   string
	pack   Placement
	rescan bool
}

func schedMatrix() []schedCase {
	var out []schedCase
	for _, pack := range []Placement{FirstFit, BestFit, Backfill} {
		for _, rescan := range []bool{false, true} {
			impl := "indexed"
			if rescan {
				impl = "rescan"
			}
			out = append(out, schedCase{
				name:   fmt.Sprintf("%v/%s", pack, impl),
				pack:   pack,
				rescan: rescan,
			})
		}
	}
	return out
}

// newSchedImpl constructs the implementation named by the matrix entry
// directly, bypassing newScheduler's small-layout crossover — the suite's
// test layouts are small, and the indexed implementation must stay
// covered regardless of the crossover constant.
func newSchedImpl(caps []int, pack Placement, rescan bool) scheduler {
	if rescan {
		return newRescanSched(caps, pack)
	}
	return newIndexedSched(caps, pack)
}

// TestSchedulerCrossover pins newScheduler's adaptive crossover: small
// layouts take the linear scan even on the indexed configuration, large
// layouts take the index, and the rescan flag always wins.
func TestSchedulerCrossover(t *testing.T) {
	small := make([]int, linearScanMaxNodes)
	large := make([]int, linearScanMaxNodes+1)
	for i := range small {
		small[i] = 4
	}
	for i := range large {
		large[i] = 4
	}
	if _, ok := newScheduler(small, FirstFit, false).(*rescanSched); !ok {
		t.Error("small indexed layout did not cross over to the linear scan")
	}
	if _, ok := newScheduler(large, FirstFit, false).(*indexedSched); !ok {
		t.Error("large indexed layout did not use the index")
	}
	if _, ok := newScheduler(large, FirstFit, true).(*rescanSched); !ok {
		t.Error("rescan flag did not select the reference implementation")
	}
}

// checkSchedState asserts the node-state invariants against a capacity
// layout.
func checkSchedState(t *testing.T, s scheduler, caps []int) {
	t.Helper()
	free := s.nodeFree()
	if len(free) != len(caps) {
		t.Fatalf("nodeFree has %d nodes, want %d", len(free), len(caps))
	}
	total, max := 0, 0
	for i, f := range free {
		if f < 0 || f > caps[i] {
			t.Fatalf("node %d free %d out of [0,%d]", i, f, caps[i])
		}
		total += f
		if f > max {
			max = f
		}
	}
	if got := s.freeCores(); got != total {
		t.Fatalf("freeCores() = %d, nodes sum to %d", got, total)
	}
	if got := s.maxNodeFree(); got != max {
		t.Fatalf("maxNodeFree() = %d, nodes max is %d", got, max)
	}
}

// TestSchedulerPlacementInvariants drives every policy/impl combination
// through a deterministic scenario asserting the placement invariants.
func TestSchedulerPlacementInvariants(t *testing.T) {
	caps := []int{4, 4, 4, 4}
	for _, tc := range schedMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			s := newSchedImpl(caps, tc.pack, tc.rescan)
			if got := s.capacity(); got != 16 {
				t.Fatalf("capacity = %d, want 16", got)
			}
			checkSchedState(t, s, caps)

			// Non-MPI placements never span, even under fragmentation.
			var allocs []allocation
			for i := 0; i < 5; i++ {
				a, ok := s.tryPlace(3, false)
				if i < 4 != ok { // 4 nodes hold one 3-core unit each
					t.Fatalf("place #%d: ok=%v", i, ok)
				}
				if ok {
					if a.spans() {
						t.Fatalf("non-MPI allocation spans nodes: %+v", a)
					}
					allocs = append(allocs, a)
				}
				checkSchedState(t, s, caps)
			}
			// 4 cores free (1 per node): a 2-core non-MPI unit cannot be
			// placed, but a 4-core MPI unit must span exactly.
			if _, ok := s.tryPlace(2, false); ok {
				t.Fatal("2-core non-MPI unit placed on fragmented nodes")
			}
			maxBefore := s.maxNodeFree()
			mpi, ok := s.tryPlace(4, true)
			if !ok {
				t.Fatal("4-core MPI unit not placed on 4 free cores")
			}
			if !mpi.spans() {
				t.Fatal("MPI allocation did not span fragmented nodes")
			}
			if mpi.total() != 4 {
				t.Fatalf("MPI allocation holds %d cores, want 4", mpi.total())
			}
			if 4 <= maxBefore {
				t.Fatalf("MPI unit spanned although one node had %d free", maxBefore)
			}
			checkSchedState(t, s, caps)
			if s.freeCores() != 0 {
				t.Fatalf("free = %d, want 0", s.freeCores())
			}

			// Full release restores capacity exactly.
			s.release(mpi)
			for _, a := range allocs {
				s.release(a)
			}
			checkSchedState(t, s, caps)
			if s.freeCores() != 16 {
				t.Fatalf("free after full release = %d, want 16", s.freeCores())
			}

			// MPI unit that fits one node must not span.
			a, ok := s.tryPlace(4, true)
			if !ok || a.spans() {
				t.Fatalf("4-core MPI on empty machine: ok=%v spans=%v", ok, a.spans())
			}
			s.release(a)
		})
	}
}

// TestSchedulerImplEquivalence drives the rescan and indexed
// implementations through an identical randomized op sequence (fixed
// seed) and asserts they make identical placement decisions — the
// foundation of the report-parity guarantee.
func TestSchedulerImplEquivalence(t *testing.T) {
	caps := []int{8, 8, 8, 8, 8, 8, 8, 8}
	for _, pack := range []Placement{FirstFit, BestFit, Backfill} {
		t.Run(pack.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ref := newSchedImpl(caps, pack, true)
			idx := newSchedImpl(caps, pack, false)
			type held struct{ r, x allocation }
			var live []held
			for op := 0; op < 5000; op++ {
				if rng.Intn(3) < 2 { // place-biased mix
					need := 1 + rng.Intn(12)
					mpi := rng.Intn(2) == 0
					ra, rok := ref.tryPlace(need, mpi)
					xa, xok := idx.tryPlace(need, mpi)
					if rok != xok {
						t.Fatalf("op %d: place(%d,mpi=%v) rescan ok=%v indexed ok=%v",
							op, need, mpi, rok, xok)
					}
					if rok {
						if ra.node != xa.node || ra.cores != xa.cores || len(ra.spill) != len(xa.spill) {
							t.Fatalf("op %d: allocations diverge: rescan %+v indexed %+v", op, ra, xa)
						}
						for i := range ra.spill {
							if ra.spill[i] != xa.spill[i] {
								t.Fatalf("op %d: spill diverges: %+v vs %+v", op, ra.spill, xa.spill)
							}
						}
						live = append(live, held{ra, xa})
					}
				} else if len(live) > 0 {
					i := rng.Intn(len(live))
					ref.release(live[i].r)
					idx.release(live[i].x)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				checkSchedState(t, ref, caps)
				checkSchedState(t, idx, caps)
				if ref.freeCores() != idx.freeCores() {
					t.Fatalf("op %d: free diverges %d vs %d", op, ref.freeCores(), idx.freeCores())
				}
			}
			for _, h := range live {
				ref.release(h.r)
				idx.release(h.x)
			}
			if ref.freeCores() != 64 || idx.freeCores() != 64 {
				t.Fatalf("full release: rescan %d indexed %d, want 64", ref.freeCores(), idx.freeCores())
			}
		})
	}
}

// submitDesc is a soak-test shorthand.
func stressUnit(name string, cores int, mpi bool, seconds float64) UnitDescription {
	return UnitDescription{
		Name:   name,
		Kernel: "misc.sleep",
		Params: map[string]float64{"seconds": seconds},
		Cores:  cores,
		MPI:    mpi,
	}
}

// TestAgentSoakAllPolicies is the randomized soak (fixed seed): mixed
// unit sizes, MPI and non-MPI, on a virtual clock, for every policy/impl
// combination. A sampler asserts the free-core bounds while the workload
// churns; afterwards every unit must be DONE and the allocation fully
// drained.
func TestAgentSoakAllPolicies(t *testing.T) {
	for _, tc := range schedMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			v := vclock.NewVirtual()
			s := testSession(t, v)
			s.Cfg.Agent = tc.pack
			s.Cfg.Rescan = tc.rescan
			v.Run(func() {
				_, p := startPilot(t, s, 32) // 8 nodes x 4 cores
				um := NewUnitManager(s)
				um.AddPilot(p)
				descs := make([]UnitDescription, 200)
				for i := range descs {
					cores := 1 + rng.Intn(6)
					mpi := cores > 1
					secs := 0.5 + rng.Float64()*3
					descs[i] = stressUnit(fmt.Sprintf("soak%03d", i), cores, mpi, secs)
				}
				units, err := um.Submit(descs)
				if err != nil {
					t.Fatal(err)
				}
				stop := vclock.NewEvent(v, "soak sampler stop")
				v.Go(func() {
					for i := 0; i < 400; i++ {
						if stop.Fired() {
							return
						}
						free := p.agent.freeCores()
						if free < 0 || free > 32 {
							t.Errorf("free cores out of range: %d", free)
							return
						}
						for j, f := range p.agent.nodeFree() {
							if f < 0 || f > 4 {
								t.Errorf("node %d free %d out of [0,4]", j, f)
								return
							}
						}
						v.Sleep(100 * time.Millisecond)
					}
				})
				for i, st := range um.WaitAll(units) {
					if st != UnitDone {
						t.Fatalf("unit %d state %v (err %v)", i, st, units[i].Err())
					}
				}
				stop.Fire()
				if free := p.agent.freeCores(); free != 32 {
					t.Errorf("free after drain = %d, want 32 (allocation leak)", free)
				}
				p.Cancel()
			})
		})
	}
}

// TestOversizedUnitFailsFastOnSaturatedPilot pins the fatal-rejection
// path: a unit that can never fit the pilot must fail immediately with
// the oversize error even when submitted while the pilot is saturated
// (when no scheduling pass would otherwise run), not hang until the
// pilot's walltime expires.
func TestOversizedUnitFailsFastOnSaturatedPilot(t *testing.T) {
	for _, tc := range schedMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			v := vclock.NewVirtual()
			s := testSession(t, v)
			s.Cfg.Agent = tc.pack
			s.Cfg.Rescan = tc.rescan
			v.Run(func() {
				_, p := startPilot(t, s, 8)
				um := NewUnitManager(s)
				um.AddPilot(p)
				// Saturate all 8 cores.
				hog, _ := um.SubmitOne(stressUnit("hog", 8, true, 50))
				v.Sleep(time.Second)
				t0 := v.Now()
				big, _ := um.SubmitOne(stressUnit("big", 9, true, 1))
				if st := big.WaitFinal(); st != UnitFailed {
					t.Fatalf("oversized unit state %v, want FAILED", st)
				}
				if dt := v.Now() - t0; dt > time.Second {
					t.Errorf("oversized unit failed after %v, want immediately", dt)
				}
				if err := big.Err(); err == nil || !strings.Contains(err.Error(), "needs 9 cores") {
					t.Errorf("err = %v, want oversize cause", big.Err())
				}
				wide := stressUnit("toowide", 5, true, 1)
				wide.MPI = false
				u := newUnit(s, wide)
				u.mu.Lock()
				u.pilot = p
				u.mu.Unlock()
				p.agent.submit(u)
				if st := u.WaitFinal(); st != UnitFailed {
					t.Fatalf("too-wide non-MPI unit state %v, want FAILED", st)
				}
				if err := u.Err(); err == nil || !strings.Contains(err.Error(), "node has") {
					t.Errorf("err = %v, want per-node cause", u.Err())
				}
				hog.Cancel()
				p.Cancel()
			})
		})
	}
}

// TestContinuousPoliciesOvertakeBlockedHead asserts FirstFit and BestFit
// keep the seed's continuous-scheduling discipline: a blocked wide head
// does not hold back a small unit that fits.
func TestContinuousPoliciesOvertakeBlockedHead(t *testing.T) {
	for _, pack := range []Placement{FirstFit, BestFit} {
		for _, rescan := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/rescan=%v", pack, rescan), func(t *testing.T) {
				v := vclock.NewVirtual()
				s := testSession(t, v)
				s.Cfg.Agent = pack
				s.Cfg.Rescan = rescan
				v.Run(func() {
					_, p := startPilot(t, s, 8)
					um := NewUnitManager(s)
					um.AddPilot(p)
					um.SubmitOne(stressUnit("hog", 6, true, 50))
					v.Sleep(time.Second)
					uw, _ := um.SubmitOne(stressUnit("wide", 8, true, 1))
					us, _ := um.SubmitOne(sleepUnit("small", 1))
					if st := us.WaitFinal(); st != UnitDone {
						t.Fatalf("small state %v", st)
					}
					if v.Now() > 10*time.Second {
						t.Errorf("small waited behind blocked wide head (t=%v)", v.Now())
					}
					if st := uw.WaitFinal(); st != UnitDone {
						t.Fatalf("wide state %v", st)
					}
					p.Cancel()
				})
			})
		}
	}
}

// TestBackfillReservationProtectsHead asserts the Backfill discipline: a
// unit predicted to run past the blocked head's shadow time (and not
// fitting in the spare cores) must NOT overtake — strict FIFO where
// continuous scheduling would let it starve the head.
func TestBackfillReservationProtectsHead(t *testing.T) {
	for _, rescan := range []bool{false, true} {
		t.Run(fmt.Sprintf("rescan=%v", rescan), func(t *testing.T) {
			v := vclock.NewVirtual()
			s := testSession(t, v)
			s.Cfg.Agent = Backfill
			s.Cfg.Rescan = rescan
			v.Run(func() {
				_, p := startPilot(t, s, 8)
				um := NewUnitManager(s)
				um.AddPilot(p)
				// Hog 6 cores until ~51s. Head needs all 8: blocked, with
				// shadow time at the hog's completion and zero spare cores
				// (free 2 + hog 6 - head 8).
				um.SubmitOne(stressUnit("hog", 6, true, 50))
				v.Sleep(time.Second)
				uw, _ := um.SubmitOne(stressUnit("wide", 8, true, 1))
				// A 100s 1-core unit would run far past the shadow time:
				// it must not start before the head.
				ul, _ := um.SubmitOne(sleepUnit("laggard", 100))
				if st := uw.WaitFinal(); st != UnitDone {
					t.Fatalf("wide state %v", st)
				}
				wideStart, _, _ := uw.ExecWindow()
				if st := ul.WaitFinal(); st != UnitDone {
					t.Fatalf("laggard state %v", st)
				}
				lagStart, _, _ := ul.ExecWindow()
				if lagStart < wideStart {
					t.Errorf("laggard (start %v) jumped the blocked FIFO head (start %v)",
						lagStart, wideStart)
				}
				p.Cancel()
			})
		})
	}
}

// TestBackfillAllowsHarmlessOvertake asserts the EASY side of the
// discipline: a short unit predicted to finish before the head's shadow
// time backfills immediately, and the head still starts on time.
func TestBackfillAllowsHarmlessOvertake(t *testing.T) {
	for _, rescan := range []bool{false, true} {
		t.Run(fmt.Sprintf("rescan=%v", rescan), func(t *testing.T) {
			v := vclock.NewVirtual()
			s := testSession(t, v)
			s.Cfg.Agent = Backfill
			s.Cfg.Rescan = rescan
			v.Run(func() {
				_, p := startPilot(t, s, 8)
				um := NewUnitManager(s)
				um.AddPilot(p)
				um.SubmitOne(stressUnit("hog", 6, true, 50))
				v.Sleep(time.Second)
				uw, _ := um.SubmitOne(stressUnit("wide", 8, true, 1))
				// A 1s unit ends well before the ~51s shadow time: it may
				// jump the blocked head.
				us, _ := um.SubmitOne(sleepUnit("short", 1))
				if st := us.WaitFinal(); st != UnitDone {
					t.Fatalf("short state %v", st)
				}
				if v.Now() > 10*time.Second {
					t.Errorf("short unit did not backfill (done at t=%v)", v.Now())
				}
				if st := uw.WaitFinal(); st != UnitDone {
					t.Fatalf("wide state %v", st)
				}
				wideStart, _, _ := uw.ExecWindow()
				// The head must start as soon as the hog releases (~51s),
				// undelayed by the backfilled unit.
				if wideStart > 55*time.Second {
					t.Errorf("head start %v: backfill delayed the head", wideStart)
				}
				p.Cancel()
			})
		})
	}
}

// TestBackfillSpareCoresOvertake asserts the spare-cores side: a unit
// that fits in the cores the head will not need at its shadow time may
// overtake regardless of its own duration.
func TestBackfillSpareCoresOvertake(t *testing.T) {
	for _, rescan := range []bool{false, true} {
		t.Run(fmt.Sprintf("rescan=%v", rescan), func(t *testing.T) {
			v := vclock.NewVirtual()
			s := testSession(t, v)
			s.Cfg.Agent = Backfill
			s.Cfg.Rescan = rescan
			v.Run(func() {
				_, p := startPilot(t, s, 8)
				um := NewUnitManager(s)
				um.AddPilot(p)
				// Hog 4 cores until ~51s; head needs 6: blocked with
				// shadow at the hog's end and 2 spare cores (4 free + 4
				// hog - 6 head).
				um.SubmitOne(stressUnit("hog", 4, true, 50))
				v.Sleep(time.Second)
				uh, _ := um.SubmitOne(stressUnit("head", 6, true, 1))
				// 2-core long unit fits the spare cores: overtakes even
				// though it runs past the shadow time.
				ul, _ := um.SubmitOne(stressUnit("longslim", 2, true, 100))
				// A second long 2-core unit must NOT also overtake: the
				// first consumed the spare budget, and admitting both
				// would leave only 6 of the head's 6 cores... minus 2 at
				// the shadow time — exactly the collective overrun the
				// reservation exists to prevent.
				u2, _ := um.SubmitOne(stressUnit("longslim2", 2, true, 100))
				v.Sleep(5 * time.Second)
				if st := ul.State(); st != UnitExecuting {
					t.Errorf("long slim unit state %v at t=%v, want EXECUTING (spare cores)", st, v.Now())
				}
				if st := u2.State(); st == UnitExecuting || st.Final() {
					t.Errorf("second long slim state %v at t=%v: spare budget overrun", st, v.Now())
				}
				if st := uh.WaitFinal(); st != UnitDone {
					t.Fatalf("head state %v", st)
				}
				headStart, _, _ := uh.ExecWindow()
				if headStart > 55*time.Second {
					t.Errorf("head start %v: spare-core backfill delayed the head", headStart)
				}
				if st := ul.WaitFinal(); st != UnitDone {
					t.Fatalf("long slim state %v", st)
				}
				if st := u2.WaitFinal(); st != UnitDone {
					t.Fatalf("second long slim state %v", st)
				}
				p.Cancel()
			})
		})
	}
}
