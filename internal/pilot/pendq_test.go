package pilot

import (
	"fmt"
	"math"
	"testing"

	"entk/internal/kernels"
	"entk/internal/vclock"
)

// pendUnit builds a bare unit for direct queue tests: push/cancel/drain
// and the pass protocol touch only Desc and the pend flags, so no
// session is needed.
func pendUnit(name string, cores int, mpi bool) *ComputeUnit {
	return &ComputeUnit{Desc: UnitDescription{Name: name, Kernel: "misc.sleep", Cores: cores, MPI: mpi}}
}

// eachQueue runs a subtest against both pending-queue implementations.
func eachQueue(t *testing.T, fn func(t *testing.T, ref bool)) {
	t.Helper()
	for _, ref := range []bool{false, true} {
		name := "seg"
		if ref {
			name = "fifo"
		}
		t.Run(name, func(t *testing.T) { fn(t, ref) })
	}
}

// placeAll drains the queue through one pass placing every yielded unit,
// returning the yield order.
func placeAll(q pendingQueue) []*ComputeUnit {
	var out []*ComputeUnit
	q.beginPass()
	for {
		u := q.next()
		if u == nil {
			break
		}
		out = append(out, u)
		q.placed()
	}
	q.endPass()
	return out
}

// TestPendingQueueFIFOAcrossClasses pins the segmented queue's core
// invariant: bucketing by placement class must not reorder the global
// FIFO — a pass that places everything yields units in exact push order,
// however the classes interleave.
func TestPendingQueueFIFOAcrossClasses(t *testing.T) {
	eachQueue(t, func(t *testing.T, ref bool) {
		q := newPendingQueue(ref)
		classes := []struct {
			cores int
			mpi   bool
		}{{1, false}, {4, true}, {1, false}, {2, true}, {8, true}, {1, false}, {4, true}, {2, true}}
		var pushed []*ComputeUnit
		for i, c := range classes {
			u := pendUnit(fmt.Sprintf("u%02d", i), c.cores, c.mpi)
			q.push(u)
			pushed = append(pushed, u)
		}
		if q.size() != len(pushed) {
			t.Fatalf("size = %d, want %d", q.size(), len(pushed))
		}
		got := placeAll(q)
		if len(got) != len(pushed) {
			t.Fatalf("pass yielded %d units, want %d", len(got), len(pushed))
		}
		for i := range pushed {
			if got[i] != pushed[i] {
				t.Errorf("yield %d = %s, want %s (FIFO order)", i, got[i].Desc.Name, pushed[i].Desc.Name)
			}
		}
		if q.size() != 0 {
			t.Errorf("size after full placement = %d, want 0", q.size())
		}
	})
}

// TestPendingQueueBlockSemantics pins what block() means per
// implementation: the segmented queue stops consulting the blocked
// unit's whole class for the rest of the pass (other classes continue in
// FIFO order), and the next pass sees the class again; the FIFO
// reference maps block to skip, re-yielding later same-class units
// exactly as the seed scan did.
func TestPendingQueueBlockSemantics(t *testing.T) {
	a1 := pendUnit("a1", 1, false)
	b1 := pendUnit("b1", 4, true)
	a2 := pendUnit("a2", 1, false)
	b2 := pendUnit("b2", 4, true)
	a3 := pendUnit("a3", 1, false)

	load := func(ref bool) pendingQueue {
		q := newPendingQueue(ref)
		for _, u := range []*ComputeUnit{a1, b1, a2, b2, a3} {
			q.push(u)
		}
		return q
	}
	yieldNames := func(q pendingQueue, act func(u *ComputeUnit)) []string {
		var names []string
		q.beginPass()
		for {
			u := q.next()
			if u == nil {
				break
			}
			names = append(names, u.Desc.Name)
			act(u)
		}
		q.endPass()
		return names
	}
	want := func(t *testing.T, got, want []string) {
		t.Helper()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("yield order = %v, want %v", got, want)
		}
	}

	t.Run("seg", func(t *testing.T) {
		q := load(false)
		// Place the 1-core class, block the 4-core MPI class at b1: b2
		// must not be consulted this pass.
		got := yieldNames(q, func(u *ComputeUnit) {
			if u.Desc.MPI {
				q.block()
			} else {
				q.placed()
			}
		})
		want(t, got, []string{"a1", "b1", "a2", "a3"})
		// Next pass: the blocked class is live again, in FIFO order.
		want(t, yieldNames(q, func(*ComputeUnit) { q.placed() }), []string{"b1", "b2"})
		if q.size() != 0 {
			t.Errorf("size = %d, want 0", q.size())
		}
	})
	t.Run("fifo", func(t *testing.T) {
		q := load(true)
		// The reference re-prechecks every unit of a blocked class, like
		// the seed scan: b2 is still yielded.
		got := yieldNames(q, func(u *ComputeUnit) {
			if u.Desc.MPI {
				q.block()
			} else {
				q.placed()
			}
		})
		want(t, got, []string{"a1", "b1", "a2", "b2", "a3"})
		want(t, yieldNames(q, func(*ComputeUnit) { q.placed() }), []string{"b1", "b2"})
	})
}

// TestPendingQueueSkipKeepsUnit pins skip(): the unit stays queued (the
// per-unit backfill gate failure), is not re-yielded within the pass,
// and comes back on the next pass in FIFO position.
func TestPendingQueueSkipKeepsUnit(t *testing.T) {
	eachQueue(t, func(t *testing.T, ref bool) {
		q := newPendingQueue(ref)
		u1, u2, u3 := pendUnit("u1", 1, false), pendUnit("u2", 1, false), pendUnit("u3", 1, false)
		for _, u := range []*ComputeUnit{u1, u2, u3} {
			q.push(u)
		}
		q.beginPass()
		if q.next() != u1 {
			t.Fatal("want u1 first")
		}
		q.skip()
		if q.next() != u2 {
			t.Fatal("want u2 after skipping u1")
		}
		q.placed()
		if q.next() != u3 {
			t.Fatal("want u3")
		}
		q.skip()
		if q.next() != nil {
			t.Fatal("skipped units must not re-yield within a pass")
		}
		q.endPass()
		if q.size() != 2 {
			t.Fatalf("size = %d, want 2", q.size())
		}
		got := placeAll(q)
		if len(got) != 2 || got[0] != u1 || got[1] != u3 {
			t.Errorf("next pass yielded %v, want [u1 u3]", got)
		}
	})
}

// TestPendingQueueCancel pins the cancellation contract shared by both
// implementations: a queued unit cancels exactly once, disappears from
// size, passes, and drain, and cancelling unknown or already-cancelled
// units reports false.
func TestPendingQueueCancel(t *testing.T) {
	eachQueue(t, func(t *testing.T, ref bool) {
		q := newPendingQueue(ref)
		units := make([]*ComputeUnit, 6)
		for i := range units {
			units[i] = pendUnit(fmt.Sprintf("u%d", i), 1+i%2*3, i%2 == 1)
			q.push(units[i])
		}
		if !q.cancel(units[2]) {
			t.Fatal("cancel of queued unit reported false")
		}
		if q.cancel(units[2]) {
			t.Error("second cancel reported true")
		}
		if q.cancel(pendUnit("stranger", 1, false)) {
			t.Error("cancel of never-pushed unit reported true")
		}
		if q.size() != 5 {
			t.Errorf("size = %d, want 5", q.size())
		}
		got := placeAll(q)
		for _, u := range got {
			if u == units[2] {
				t.Error("cancelled unit yielded by a pass")
			}
		}
		if len(got) != 5 {
			t.Errorf("pass yielded %d units, want 5", len(got))
		}
	})
}

// TestPendingQueueDrainOrder pins drain(): after placements and a
// cancellation, the remaining units come out in global FIFO order (agent
// stop fails them in order, and profiler event order must match the
// seed), with their pending marks cleared.
func TestPendingQueueDrainOrder(t *testing.T) {
	eachQueue(t, func(t *testing.T, ref bool) {
		q := newPendingQueue(ref)
		units := make([]*ComputeUnit, 9)
		for i := range units {
			units[i] = pendUnit(fmt.Sprintf("u%d", i), []int{1, 4, 2}[i%3], i%3 != 0)
			q.push(units[i])
		}
		// Place the first two in FIFO order, cancel one mid-queue.
		q.beginPass()
		q.next()
		q.placed()
		q.next()
		q.placed()
		q.endPass()
		q.cancel(units[5])
		got := q.drain()
		want := []*ComputeUnit{units[2], units[3], units[4], units[6], units[7], units[8]}
		if len(got) != len(want) {
			t.Fatalf("drained %d units, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("drain[%d] = %s, want %s", i, got[i].Desc.Name, want[i].Desc.Name)
			}
			if got[i].pendIn {
				t.Errorf("drain[%d] still marked pending", i)
			}
		}
		if q.size() != 0 {
			t.Errorf("size after drain = %d, want 0", q.size())
		}
	})
}

// TestPendingQueueWatermarks pins the watermark contract: never above
// the true minimum pending need, MaxInt when empty — and exact for the
// segmented queue, whose minima move with bucket liveness (including
// through cancellation, which the FIFO reference only repairs on its
// next full pass).
func TestPendingQueueWatermarks(t *testing.T) {
	eachQueue(t, func(t *testing.T, ref bool) {
		q := newPendingQueue(ref)
		if q.minNeedAny() != math.MaxInt || q.minNeedMPI() != math.MaxInt {
			t.Fatal("empty queue watermarks must be MaxInt")
		}
		u2 := pendUnit("w2", 2, false)
		q.push(pendUnit("w4", 4, true))
		q.push(u2)
		q.push(pendUnit("w8", 8, true))
		if q.minNeedAny() > 2 {
			t.Errorf("minNeedAny = %d, want <= 2", q.minNeedAny())
		}
		if q.minNeedMPI() > 4 {
			t.Errorf("minNeedMPI = %d, want <= 4", q.minNeedMPI())
		}
		if !ref {
			q.cancel(u2)
			if got := q.minNeedAny(); got != 4 {
				t.Errorf("segmented minNeedAny after cancel = %d, want exact 4", got)
			}
			if got := q.minNeedMPI(); got != 4 {
				t.Errorf("segmented minNeedMPI = %d, want exact 4", got)
			}
		}
	})
}

// TestSegPendingCompaction pins the tombstone lifecycle: mass
// cancellation under a deep single-class backlog compacts the bucket
// once dead slots dominate, so the ring's memory and the next pass's
// work track the live backlog, not its history.
func TestSegPendingCompaction(t *testing.T) {
	q := newPendingQueue(false).(*segPending)
	units := make([]*ComputeUnit, 512)
	for i := range units {
		units[i] = pendUnit(fmt.Sprintf("c%03d", i), 1, false)
		q.push(units[i])
	}
	// Cancel everything but every 8th unit.
	for i, u := range units {
		if i%8 != 0 {
			q.cancel(u)
		}
	}
	if q.size() != 64 {
		t.Fatalf("size = %d, want 64", q.size())
	}
	b := q.buckets[pendClass{need: 1, mpi: false}]
	if remaining := len(b.entries) - b.head; remaining > 2*64+segCompactMin {
		t.Errorf("bucket holds %d slots for 64 live units: compaction never ran", remaining)
	}
	got := placeAll(q)
	if len(got) != 64 {
		t.Fatalf("pass yielded %d units, want 64", len(got))
	}
	for i, u := range got {
		if u != units[i*8] {
			t.Errorf("yield %d = %s, want %s (FIFO among survivors)", i, u.Desc.Name, units[i*8].Desc.Name)
		}
	}
}

// TestSegPendingHeadReclaim pins the consumed-prefix reclaim: draining a
// deep homogeneous backlog via placed-at-head must eventually slide the
// ring down instead of growing the backing array without bound.
func TestSegPendingHeadReclaim(t *testing.T) {
	q := newPendingQueue(false).(*segPending)
	const n = 3 * segReclaimMin
	for i := 0; i < n; i++ {
		q.push(pendUnit("r", 1, false))
	}
	placed := 0
	for q.size() > 0 {
		// Saturated passes: place a few at the head, abort (capacity ran
		// out), repeat — the 1M stress tier's steady state.
		q.beginPass()
		for i := 0; i < 32 && q.next() != nil; i++ {
			q.placed()
			placed++
		}
		q.endPass()
	}
	if placed != n {
		t.Fatalf("placed %d, want %d", placed, n)
	}
	b := q.buckets[pendClass{need: 1, mpi: false}]
	if len(b.entries) >= n {
		t.Errorf("backing array still holds %d slots after draining %d units: head reclaim never ran",
			len(b.entries), n)
	}
}

// drainCost pushes n one-class units and drains them in saturated passes
// of 32 placements each — the steady state of a deep backlog — and
// returns the queue's internal work per unit.
func drainCost(ref bool, n int) float64 {
	q := newPendingQueue(ref)
	for i := 0; i < n; i++ {
		q.push(pendUnit("p", 1, false))
	}
	for q.size() > 0 {
		q.beginPass()
		for i := 0; i < 32 && q.next() != nil; i++ {
			q.placed()
		}
		q.endPass()
	}
	return float64(q.work()) / float64(n)
}

// TestPendingQueuePassCost is the pass-cost regression gate at the queue
// level: the segmented queue's work per placed unit must be independent
// of backlog depth, while the FIFO reference's grows linearly with it —
// the O(pending) compaction this PR exists to kill. An 8x deeper backlog
// must cost the reference several times more per unit and the segmented
// queue roughly the same.
func TestPendingQueuePassCost(t *testing.T) {
	const small, big = 4096, 32768
	segRatio := drainCost(false, big) / drainCost(false, small)
	fifoRatio := drainCost(true, big) / drainCost(true, small)
	if segRatio > 1.5 {
		t.Errorf("segmented work/unit grew %.2fx over an 8x deeper backlog, want flat (<= 1.5x)", segRatio)
	}
	if fifoRatio < 4 {
		t.Errorf("reference work/unit grew only %.2fx over an 8x deeper backlog, want ~8x (>= 4x): "+
			"the reference no longer models the seed's O(pending) pass", fifoRatio)
	}
	if perUnit := drainCost(false, big); perUnit > 4 {
		t.Errorf("segmented queue touches %.2f entries per placed unit, want O(1) (<= 4)", perUnit)
	}
}

// agentDrainCost runs a deep single-class backlog through a real pilot
// agent on the selected queue implementation and returns the queue work
// per placed unit, counter-instrumented via agent.passStats.
func agentDrainCost(t *testing.T, ref bool, n int) float64 {
	t.Helper()
	v := vclock.NewVirtual()
	testSession(t, v) // registers the test.pilot machine
	cfg := DefaultConfig()
	cfg.PendingRef = ref
	s := NewSession(v, kernels.NewRegistry(), cfg)
	var perPlaced float64
	v.Run(func() {
		_, p := startPilot(t, s, 32)
		um := NewUnitManager(s)
		um.AddPilot(p)
		descs := make([]UnitDescription, n)
		for i := range descs {
			descs[i] = sleepUnit("d"+pad2(0, i), 1)
		}
		units, err := um.Submit(descs)
		if err != nil {
			t.Error(err)
			return
		}
		for _, u := range units {
			if st := u.WaitFinal(); st != UnitDone {
				t.Errorf("unit %s final state %v", u.Entity(), st)
			}
		}
		_, _, placed, work := p.agent.passStats()
		if placed != uint64(n) {
			t.Errorf("agent placed %d units, want %d", placed, n)
		}
		perPlaced = float64(work) / float64(placed)
		p.Cancel()
		p.WaitFinal()
	})
	return perPlaced
}

// TestAgentPassCostRegression is the same gate through the full agent:
// driving 8x the backlog through real scheduling passes must leave the
// segmented queue's per-unit work flat while the reference's grows with
// the backlog. This is the counter-level form of the 1M-tier throughput
// acceptance (BenchmarkStress1M pins the wall-clock form).
func TestAgentPassCostRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("pass-cost regression skipped in -short mode (reference legs are slow by design)")
	}
	const small, big = 512, 4096
	segRatio := agentDrainCost(t, false, big) / agentDrainCost(t, false, small)
	fifoRatio := agentDrainCost(t, true, big) / agentDrainCost(t, true, small)
	if segRatio > 2.5 {
		t.Errorf("segmented agent work/unit grew %.2fx over an 8x deeper backlog, want flat (<= 2.5x)", segRatio)
	}
	if fifoRatio < 3 {
		t.Errorf("reference agent work/unit grew only %.2fx over an 8x deeper backlog, want >= 3x", fifoRatio)
	}
}

// TestCancelUnderDeepBacklog is the cancellation-under-load gate: with a
// deep pending backlog behind a saturated pilot, cancelling most of the
// queue must cost amortized O(1) per cancel (no per-cancel scan of
// unrelated entries), the cancelled units must finish CANCELED, and the
// survivors must run to completion untouched.
func TestCancelUnderDeepBacklog(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	v.Run(func() {
		_, p := startPilot(t, s, 32)
		um := NewUnitManager(s)
		um.AddPilot(p)
		const n = 2048
		descs := make([]UnitDescription, n)
		for i := range descs {
			descs[i] = sleepUnit(fmt.Sprintf("x%04d", i), 50)
		}
		units, err := um.Submit(descs)
		if err != nil {
			t.Fatal(err)
		}
		// The first 32 are running; everything behind them is queued. No
		// virtual time passes during the cancel loop, so no scheduling
		// pass interleaves and the work delta below is cancellation cost
		// alone (tombstones plus amortized compaction).
		_, _, _, work0 := p.agent.passStats()
		for _, u := range units[64:] {
			u.Cancel()
		}
		_, _, _, work1 := p.agent.passStats()
		cancelled := uint64(len(units[64:]))
		if delta := work1 - work0; delta > 6*cancelled {
			t.Errorf("cancelling %d queued units cost %d queue touches, want amortized O(1) (<= %d)",
				cancelled, delta, 6*cancelled)
		}
		for i, u := range units {
			st := u.WaitFinal()
			switch {
			case i < 64 && st != UnitDone:
				t.Errorf("survivor %s final state %v, want DONE", u.Entity(), st)
			case i >= 64 && st != UnitCanceled:
				t.Errorf("cancelled %s final state %v, want CANCELED", u.Entity(), st)
			}
		}
		p.Cancel()
		p.WaitFinal()
	})
}
