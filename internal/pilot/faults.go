package pilot

// Deterministic fault injection. A FaultPlan schedules resource-side
// failures — whole-pilot death, walltime expiry, partial node loss — at
// exact virtual instants. Because the virtual clock orders every event
// totally, the same plan against the same campaign produces bit-identical
// traces run after run: fault tolerance becomes a property the test suite
// can pin, not a behaviour observed under luck.
//
// One subtlety matters for reproducibility: when a fault instant
// coincides exactly with a model-derived event (a unit completion, a
// stage barrier), the wake order of the two processes at that instant is
// engine-scheduling-dependent. Plans should therefore pick instants that
// no cost model produces — in practice, offset the time by a nanosecond
// (the tests and benchmarks use odd +1ns offsets throughout).

import (
	"fmt"
	"time"

	"entk/internal/vclock"
)

// FaultKind selects what a scheduled fault does to its pilot.
type FaultKind int

const (
	// FaultKillPilot terminates the pilot outright at the instant: the
	// placeholder job dies resource-side (queued pilots are discarded,
	// running ones end abnormally) and the agent's backlog is displaced.
	FaultKillPilot FaultKind = iota
	// FaultExpireWalltime is FaultKillPilot with a walltime-expiry cause:
	// the modelled "allocation ran out" death, distinguishable in errors.
	FaultExpireWalltime
	// FaultNodeLoss removes Nodes nodes from a running pilot's allocation
	// without killing it: the pilot keeps scheduling on the survivors,
	// units touching lost nodes are displaced for rebinding.
	FaultNodeLoss
)

func (k FaultKind) String() string {
	switch k {
	case FaultKillPilot:
		return "kill-pilot"
	case FaultExpireWalltime:
		return "expire-walltime"
	case FaultNodeLoss:
		return "node-loss"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled failure.
type Fault struct {
	// At is the virtual instant the fault fires, measured from Arm time
	// (campaign start when armed through the ResourceSet).
	At time.Duration
	// Pilot indexes the pilot (in set order) the fault targets.
	Pilot int
	// Kind selects the failure mode.
	Kind FaultKind
	// Nodes is the node count FaultNodeLoss removes; ignored otherwise.
	Nodes int
}

// FaultPlan is a deterministic schedule of failures, armed once against a
// pilot set. The zero value injects nothing.
type FaultPlan struct {
	Faults []Fault
}

// Validate rejects malformed plans against a set of n pilots.
func (fp *FaultPlan) Validate(n int) error {
	for i, f := range fp.Faults {
		switch {
		case f.At < 0:
			return fmt.Errorf("pilot: fault %d fires at negative instant %v", i, f.At)
		case f.Pilot < 0 || f.Pilot >= n:
			return fmt.Errorf("pilot: fault %d targets pilot %d of %d", i, f.Pilot, n)
		case f.Kind == FaultNodeLoss && f.Nodes <= 0:
			return fmt.Errorf("pilot: fault %d loses %d nodes", i, f.Nodes)
		case f.Kind != FaultKillPilot && f.Kind != FaultExpireWalltime && f.Kind != FaultNodeLoss:
			return fmt.Errorf("pilot: fault %d has unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// Arm schedules every fault of the plan on the virtual clock against
// pilots (set order; Fault.Pilot indexes it). displaced receives the
// units a node loss displaces — pilot deaths route through the agent's
// installed recovery path instead, so Arm leaves them to the teardown
// watcher. A nil displaced fails displaced units with the fault cause,
// mirroring an agent without recovery. Must be called from a registered
// vclock process before the fault instants pass.
func (fp *FaultPlan) Arm(v vclock.Clock, pilots []*ComputePilot, displaced func([]*ComputeUnit)) error {
	if err := fp.Validate(len(pilots)); err != nil {
		return err
	}
	for _, f := range fp.Faults {
		f := f
		p := pilots[f.Pilot]
		v.After(f.At, func() {
			switch f.Kind {
			case FaultKillPilot:
				p.Kill(fmt.Errorf("fault: pilot %d killed at %v", p.ID, v.Now()))
			case FaultExpireWalltime:
				p.Kill(fmt.Errorf("fault: pilot %d walltime expired at %v", p.ID, v.Now()))
			case FaultNodeLoss:
				units := p.agent.loseNodes(f.Nodes)
				if len(units) == 0 {
					return
				}
				if displaced != nil {
					displaced(units)
					return
				}
				cause := fmt.Errorf("fault: pilot %d lost %d nodes at %v", p.ID, f.Nodes, v.Now())
				for _, u := range units {
					u.finish(UnitFailed, cause)
				}
			}
		})
	}
	return nil
}
