package pilot

import "math"

// This file is the agent's pending-unit store. The seed kept one flat
// FIFO slice and rebuilt it on every scheduling pass (skip the placed
// prefix, copy the kept tail down), which is O(pending) per pass even
// when a single unit places: at a million queued units every completion
// paid a million-pointer memmove, and the 1M stress tier collapsed from
// ~70k to ~4k units/s of wall throughput. The segmented queue below
// makes a pass O(placed × classes) instead: units are bucketed by
// placement class (exact core need × MPI flag), each bucket is a ring
// whose head index is the saturated-pass cursor (placing the head is
// head++, no memmove), and global FIFO order is preserved by a monotone
// sequence number merged across bucket heads. Cancellation is an O(1)
// tombstone instead of a linear splice.
//
// Both implementations sit behind the pendingQueue interface and the
// shared pass driver in agent.go; Config.PendingRef selects the seed
// FIFO, kept as the reference implementation so the queue-parity tests
// can pin bit-identical simulated timelines (the pending-queue analogue
// of the Rescan / EngineRef / LayoutRef precedent).
//
// The pass protocol (all calls under the owning agent's mu, which is
// held for the whole pass, so no queue mutation interleaves):
//
//	q.beginPass()
//	for {
//	    u := q.next()            // next live unit in FIFO (seq) order
//	    if u == nil { break }
//	    // exactly one of:
//	    q.placed()               // remove u: it was launched
//	    q.skip()                 // keep u, step past it (per-unit
//	                             // backfill-gate failure)
//	    q.block()                // keep u, stop consulting its whole
//	                             // placement class this pass
//	}
//	q.endPass()
//
// block() is sound for the segmented queue because the feasibility
// precheck depends only on (need, MPI) and the free-core state, which
// is monotone non-increasing within a pass (the agent lock is held, no
// release lands mid-pass): if one unit of a class fails the precheck,
// every later unit of that class fails it too, so skipping the rest of
// the bucket drops no placement the seed scan would have made. The
// backfill EASY gate is NOT class-uniform (predicted durations differ
// within a class), so gate failures must use skip(), never block().
// The FIFO reference maps block() to skip() — re-prechecking later
// same-class units exactly as the seed scan did, with the same
// placement outcome and the seed's cost.
type pendingQueue interface {
	// push appends a unit in FIFO order. Caller holds the agent's mu.
	push(u *ComputeUnit)
	// size is the number of queued (non-cancelled) units.
	size() int
	// cancel removes u if still queued, reporting whether it did.
	cancel(u *ComputeUnit) bool
	// minNeedAny/minNeedMPI are the pending-need watermarks: never above
	// the true minimum core need over queued units (math.MaxInt when
	// empty). The FIFO reference keeps the seed's conservative scheme;
	// the segmented queue reads exact bucket minima.
	minNeedAny() int
	minNeedMPI() int
	// drain removes and returns every queued unit in FIFO order (agent
	// stop fails them in order; profiler event order must match the seed).
	drain() []*ComputeUnit
	// work is the cumulative internal pass cost in entry touches (moves,
	// copies, dead-slot drops). The pass-cost regression tests pin that
	// the segmented queue's work per placed unit is independent of
	// backlog depth, while the FIFO reference's grows with it.
	work() uint64

	beginPass()
	next() *ComputeUnit
	placed()
	skip()
	block()
	endPass()
}

// newPendingQueue builds the configured queue implementation.
func newPendingQueue(ref bool) pendingQueue {
	if ref {
		return &fifoPending{minAny: math.MaxInt, minMPI: math.MaxInt}
	}
	return &segPending{buckets: make(map[pendClass]*segBucket)}
}

// fifoPending is the seed's pending store: one flat FIFO slice,
// compacted in place by every pass, with watermarks tightened on push
// and recomputed exactly by any pass that scans the whole queue. Kept
// bit-for-bit equivalent to the seed agent's inline queue handling.
type fifoPending struct {
	units  []*ComputeUnit
	minAny int
	minMPI int

	// Pass state: units[:keep] are kept-so-far, units[scan] is the
	// current candidate, cur* fold the kept units' minima.
	scan, keep     int
	curAny, curMPI int
	passWork       uint64
}

func (q *fifoPending) push(u *ComputeUnit) {
	q.units = append(q.units, u)
	need := u.Desc.Cores
	if need < q.minAny {
		q.minAny = need
	}
	if u.Desc.MPI && need < q.minMPI {
		q.minMPI = need
	}
}

func (q *fifoPending) size() int { return len(q.units) }

func (q *fifoPending) cancel(u *ComputeUnit) bool {
	for i, x := range q.units {
		if x == u {
			q.units = append(q.units[:i], q.units[i+1:]...)
			// Watermarks may now be lower than the true minimum; that is
			// safe (at worst one extra pass recomputes them).
			return true
		}
	}
	return false
}

func (q *fifoPending) minNeedAny() int { return q.minAny }
func (q *fifoPending) minNeedMPI() int { return q.minMPI }

func (q *fifoPending) drain() []*ComputeUnit {
	us := q.units
	q.units = nil
	return us
}

func (q *fifoPending) work() uint64 { return q.passWork }

func (q *fifoPending) beginPass() {
	q.scan, q.keep = 0, 0
	q.curAny, q.curMPI = math.MaxInt, math.MaxInt
}

func (q *fifoPending) next() *ComputeUnit {
	if q.scan >= len(q.units) {
		return nil
	}
	return q.units[q.scan]
}

func (q *fifoPending) placed() { q.scan++ }

func (q *fifoPending) skip() {
	u := q.units[q.scan]
	q.units[q.keep] = u
	q.keep++
	q.scan++
	q.passWork++
	need := u.Desc.Cores
	if need < q.curAny {
		q.curAny = need
	}
	if u.Desc.MPI && need < q.curMPI {
		q.curMPI = need
	}
}

// block has no class structure to act on here: the seed scan kept
// re-prechecking later units of a blocked class, so keep doing that.
func (q *fifoPending) block() { q.skip() }

func (q *fifoPending) endPass() {
	if full := q.scan >= len(q.units); full {
		q.units = q.units[:q.keep]
		q.minAny, q.minMPI = q.curAny, q.curMPI
		return
	}
	// Aborted mid-queue (free cores ran out): keep the unscanned tail as
	// is — the seed's tail copy, the O(pending) memmove this file exists
	// to kill. The watermarks stay conservative: the tail's minima were
	// already folded in by push or an earlier full pass.
	q.passWork += uint64(len(q.units) - q.scan)
	q.keep += copy(q.units[q.keep:], q.units[q.scan:])
	q.units = q.units[:q.keep]
	if q.curAny < q.minAny {
		q.minAny = q.curAny
	}
	if q.curMPI < q.minMPI {
		q.minMPI = q.curMPI
	}
}

// pendClass is a placement class: units of one class are
// indistinguishable to the feasibility precheck.
type pendClass struct {
	need int
	mpi  bool
}

// segEntry is one queue slot. A nil unit is a dead slot (placed, or a
// reclaimed tombstone), dropped lazily when a cursor walks over it.
type segEntry struct {
	seq uint64
	u   *ComputeUnit
}

// segBucket is one placement class's FIFO: entries[head:] holds the
// not-yet-consumed slots (live + dead), in push order. head is the
// saturated-pass cursor — placing the first live unit advances it in
// O(1), so a pass never rescans the placed prefix.
type segBucket struct {
	class   pendClass
	entries []segEntry
	head    int
	live    int // live entries in entries[head:]
	dead    int // dead entries in entries[head:] (tombstoned or nil)

	// Pass-local state, lazily reset when pass != the queue's epoch.
	pass    uint64
	scan    int
	blocked bool
}

const (
	// segCompactMin: a bucket compacts away its dead slots once at least
	// this many have accumulated AND they are the majority of the
	// not-yet-consumed range — O(1) amortized per cancellation, and a
	// pass never walks a dead-dominated ring.
	segCompactMin = 64
	// segReclaimMin: the consumed prefix entries[:head] is slid off once
	// it is at least this long and at least half the backing array, so
	// the ring's memory tracks the live backlog.
	segReclaimMin = 1024
)

// segPending is the segmented pending queue: per-class ring buckets,
// global FIFO order by sequence-number merge across bucket cursors.
type segPending struct {
	buckets map[pendClass]*segBucket
	order   []*segBucket // stable iteration order (few classes)
	nextSeq uint64
	n       int

	epoch    uint64
	cur      *segBucket // bucket of the unit last yielded by next
	passWork uint64
}

func (q *segPending) push(u *ComputeUnit) {
	c := pendClass{need: u.Desc.Cores, mpi: u.Desc.MPI}
	b := q.buckets[c]
	if b == nil {
		b = &segBucket{class: c}
		q.buckets[c] = b
		q.order = append(q.order, b)
	}
	b.entries = append(b.entries, segEntry{seq: q.nextSeq, u: u})
	q.nextSeq++
	b.live++
	q.n++
	u.pendIn = true
}

func (q *segPending) size() int { return q.n }

func (q *segPending) cancel(u *ComputeUnit) bool {
	if !u.pendIn {
		return false
	}
	// O(1): flag the unit, adjust the bucket counters. The slot itself
	// is reclaimed when a pass cursor next walks over it, or by the
	// compaction below once dead slots dominate the bucket — no scan of
	// unrelated entries either way.
	u.pendIn = false
	u.pendTomb = true
	b := q.buckets[pendClass{need: u.Desc.Cores, mpi: u.Desc.MPI}]
	b.live--
	b.dead++
	q.n--
	if b.dead >= segCompactMin && b.dead*2 >= len(b.entries)-b.head {
		q.compact(b)
	}
	return true
}

// compact rewrites a bucket keeping only live slots. Cancellation runs
// under the agent's mu and passes hold that mu throughout, so no pass
// cursor is live here and scan state needs no adjustment.
func (q *segPending) compact(b *segBucket) {
	kept := b.entries[:0]
	for _, e := range b.entries[b.head:] {
		q.passWork++
		if e.u != nil && !e.u.pendTomb {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(b.entries); i++ {
		b.entries[i] = segEntry{}
	}
	b.entries = kept
	b.head = 0
	b.dead = 0
}

func (q *segPending) minNeedAny() int {
	min := math.MaxInt
	for _, b := range q.order {
		if b.live > 0 && b.class.need < min {
			min = b.class.need
		}
	}
	return min
}

func (q *segPending) minNeedMPI() int {
	min := math.MaxInt
	for _, b := range q.order {
		if b.live > 0 && b.class.mpi && b.class.need < min {
			min = b.class.need
		}
	}
	return min
}

func (q *segPending) drain() []*ComputeUnit {
	out := make([]*ComputeUnit, 0, q.n)
	for {
		var best *segBucket
		for _, b := range q.order {
			for b.head < len(b.entries) {
				e := &b.entries[b.head]
				if e.u != nil && !e.u.pendTomb {
					break
				}
				e.u = nil
				b.head++
				b.dead--
			}
			if b.head >= len(b.entries) {
				continue
			}
			if best == nil || b.entries[b.head].seq < best.entries[best.head].seq {
				best = b
			}
		}
		if best == nil {
			break
		}
		e := &best.entries[best.head]
		e.u.pendIn = false
		out = append(out, e.u)
		e.u = nil
		best.head++
		best.live--
	}
	q.buckets = make(map[pendClass]*segBucket)
	q.order = nil
	q.n = 0
	return out
}

func (q *segPending) work() uint64 { return q.passWork }

func (q *segPending) beginPass() {
	q.epoch++
	q.cur = nil
}

// next yields the lowest-sequence live unit among unblocked,
// unexhausted buckets — the same unit the seed's FIFO scan would try
// next, found in O(classes) instead of by walking the queue.
func (q *segPending) next() *ComputeUnit {
	var best *segBucket
	for _, b := range q.order {
		if b.pass != q.epoch {
			b.pass = q.epoch
			b.scan = b.head
			b.blocked = false
		}
		if b.blocked || b.live == 0 {
			continue
		}
		// Step the cursor over dead slots, dropping them from the head.
		for b.scan < len(b.entries) {
			e := &b.entries[b.scan]
			if e.u != nil && !e.u.pendTomb {
				break
			}
			e.u = nil // release a tombstoned unit's pointer
			if b.scan == b.head {
				b.head++
				b.dead--
			}
			b.scan++
			q.passWork++
		}
		if b.scan >= len(b.entries) {
			continue
		}
		if best == nil || b.entries[b.scan].seq < best.entries[best.scan].seq {
			best = b
		}
	}
	q.cur = best
	if best == nil {
		return nil
	}
	q.passWork++
	return best.entries[best.scan].u
}

func (q *segPending) placed() {
	b := q.cur
	e := &b.entries[b.scan]
	e.u.pendIn = false
	e.u = nil
	b.live--
	q.n--
	if b.scan == b.head {
		// Placed at the cursor head: consume in O(1). This is the hot
		// path of a deep homogeneous backlog — no memmove, ever.
		b.head++
		b.scan++
		q.reclaim(b)
	} else {
		// Placed past skipped entries (backfill overtake): the slot dies
		// in place and is dropped when a cursor next reaches it.
		b.dead++
		b.scan++
	}
}

// reclaim slides a long consumed prefix off the ring. Only called with
// scan == head (placed-at-head), so both cursors shift together.
func (q *segPending) reclaim(b *segBucket) {
	if b.head < segReclaimMin || b.head*2 < len(b.entries) {
		return
	}
	n := copy(b.entries, b.entries[b.head:])
	q.passWork += uint64(n)
	for i := n; i < len(b.entries); i++ {
		b.entries[i] = segEntry{}
	}
	b.entries = b.entries[:n]
	b.scan -= b.head
	b.head = 0
}

func (q *segPending) skip() { q.cur.scan++ }

func (q *segPending) block() { q.cur.blocked = true }

func (q *segPending) endPass() { q.cur = nil }
