package pilot

import (
	"fmt"
	"sync"

	"entk/internal/vclock"
)

// agent is the pilot's on-resource component: it owns the allocation's
// cores and schedules compute units onto them at the application level.
// Units wait in a pending list; every submission or completion triggers a
// continuous-scheduling pass that places whichever pending units fit
// (FIFO order, but later units may start if earlier ones do not fit —
// like RADICAL-Pilot's agent scheduler).
type agent struct {
	pilot *ComputePilot
	sess  *Session

	// launch bounds concurrent task launches; each launch also pays the
	// machine's per-task launch latency. This is the runtime-side,
	// per-task overhead component.
	launch *vclock.Semaphore

	mu      sync.Mutex
	nodes   []int // free cores per node of the allocation
	pending []*ComputeUnit
	started bool
	stopped bool
	stopErr error
	running int
}

// allocation records the cores a unit holds: cores[i] taken from node i.
type allocation map[int]int

func newAgent(p *ComputePilot) *agent {
	m := p.backend.machine
	cores := p.Desc.Cores
	nNodes := m.NodesFor(cores)
	nodes := make([]int, nNodes)
	rem := cores
	for i := range nodes {
		take := m.CoresPerNode
		if take > rem {
			take = rem
		}
		nodes[i] = take
		rem -= take
	}
	width := p.sess.Cfg.LauncherWidth
	if width <= 0 {
		width = nNodes
	}
	return &agent{
		pilot:  p,
		sess:   p.sess,
		launch: vclock.NewSemaphore(p.sess.V, fmt.Sprintf("launcher pilot %d", p.ID), width),
		nodes:  nodes,
	}
}

// start begins scheduling queued units; called when the pilot activates.
func (a *agent) start() {
	a.mu.Lock()
	a.started = true
	a.mu.Unlock()
	a.schedule()
}

// stop fails all queued units and refuses future work.
func (a *agent) stop(cause error) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.stopErr = cause
	doomed := a.pending
	a.pending = nil
	a.mu.Unlock()
	for _, u := range doomed {
		u.finish(UnitFailed, cause)
	}
}

// submit enqueues a unit. The unit must already be bound to this agent's
// pilot.
func (a *agent) submit(u *ComputeUnit) {
	a.mu.Lock()
	if a.stopped {
		cause := a.stopErr
		a.mu.Unlock()
		u.finish(UnitFailed, cause)
		return
	}
	a.pending = append(a.pending, u)
	started := a.started
	a.mu.Unlock()
	u.setState(UnitQueued)
	if started {
		a.schedule()
	}
}

// cancelQueued removes a unit from the pending list if still there.
func (a *agent) cancelQueued(u *ComputeUnit) {
	a.mu.Lock()
	for i, q := range a.pending {
		if q == u {
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			a.mu.Unlock()
			u.finish(UnitCanceled, nil)
			return
		}
	}
	a.mu.Unlock()
	// Not pending: either executing (runs to completion, finish() maps
	// Done to Canceled via the unit's canceled flag) or already final.
}

// load approximates the agent's backlog for least-loaded scheduling.
func (a *agent) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending) + a.running
}

// schedule performs one continuous-scheduling pass: place every pending
// unit that fits, in FIFO order.
func (a *agent) schedule() {
	type launchReq struct {
		u     *ComputeUnit
		alloc allocation
	}
	var launches []launchReq

	a.mu.Lock()
	if !a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	var remaining []*ComputeUnit
	for _, u := range a.pending {
		alloc, ok, fatal := a.place(u)
		if fatal != nil {
			// Cannot ever run on this pilot (too big): fail, do not wedge
			// the queue.
			a.mu.Unlock()
			u.finish(UnitFailed, fatal)
			a.mu.Lock()
			continue
		}
		if !ok {
			remaining = append(remaining, u)
			continue
		}
		a.running++
		launches = append(launches, launchReq{u, alloc})
	}
	a.pending = remaining
	a.mu.Unlock()

	for _, lr := range launches {
		lr := lr
		a.sess.V.Go(func() { a.execute(lr.u, lr.alloc) })
	}
}

// place tries to allocate cores for u. Caller holds mu. The third return
// is non-nil if the unit can never fit on this allocation.
func (a *agent) place(u *ComputeUnit) (allocation, bool, error) {
	need := u.Desc.Cores
	total := 0
	for _, f := range a.nodes {
		total += f
	}
	capTotal := a.pilot.Desc.Cores
	if need > capTotal {
		return nil, false, fmt.Errorf("pilot: unit %q needs %d cores, pilot %d holds %d",
			u.Desc.Name, need, a.pilot.ID, capTotal)
	}
	m := a.pilot.backend.machine
	if !u.Desc.MPI && need > m.CoresPerNode {
		return nil, false, fmt.Errorf("pilot: non-MPI unit %q needs %d cores, node has %d",
			u.Desc.Name, need, m.CoresPerNode)
	}

	if !u.Desc.MPI || need <= m.CoresPerNode {
		// Single-node placement: first-fit or best-fit.
		best := -1
		for i, free := range a.nodes {
			if free < need {
				continue
			}
			if a.sess.Cfg.Agent == FirstFit {
				best = i
				break
			}
			if best == -1 || free < a.nodes[best] {
				best = i
			}
		}
		if best >= 0 {
			a.nodes[best] -= need
			return allocation{best: need}, true, nil
		}
		// An MPI unit that would fit on one node but none is free enough
		// may still span nodes below.
		if !u.Desc.MPI {
			return nil, false, nil
		}
	}

	// MPI spanning placement: greedy across nodes.
	if total < need {
		return nil, false, nil
	}
	alloc := make(allocation)
	rem := need
	for i, free := range a.nodes {
		if free == 0 {
			continue
		}
		take := free
		if take > rem {
			take = rem
		}
		alloc[i] = take
		rem -= take
		if rem == 0 {
			break
		}
	}
	if rem > 0 {
		return nil, false, nil // cannot happen given total >= need
	}
	for i, n := range alloc {
		a.nodes[i] -= n
	}
	return alloc, true, nil
}

// release returns an allocation's cores and reschedules.
func (a *agent) release(alloc allocation) {
	a.mu.Lock()
	for i, n := range alloc {
		a.nodes[i] += n
	}
	a.running--
	a.mu.Unlock()
	a.schedule()
}

// execute runs one unit's full lifecycle on its allocation: launch,
// staging-in, execution (virtual sleep of the cost-model duration plus the
// optional real Work), staging-out.
func (a *agent) execute(u *ComputeUnit, alloc allocation) {
	defer a.release(alloc)
	v := a.sess.V
	m := a.pilot.backend.machine
	prof := a.sess.Prof

	// Launch: bounded concurrency, per-task latency.
	a.launch.Acquire(1)
	v.Sleep(m.TaskLaunchLatency)
	a.launch.Release(1)
	if a.isStopped() {
		u.finish(UnitFailed, a.stopErr)
		return
	}

	// Input staging.
	if len(u.Desc.InputStaging) > 0 {
		u.setState(UnitStagingInput)
		prof.Record(u.Entity(), "stagein_start")
		if _, err := a.pilot.backend.mover.Run(u.Desc.InputStaging); err != nil {
			u.finish(UnitFailed, fmt.Errorf("input staging: %w", err))
			return
		}
		prof.Record(u.Entity(), "stagein_stop")
	}

	// Execution.
	dur, err := a.sess.Cost.Duration(u.Desc.Kernel, u.Desc.Params, u.Desc.Cores, m)
	if err != nil {
		u.finish(UnitFailed, err)
		return
	}
	u.setState(UnitExecuting)
	start := v.Now()
	prof.Record(u.Entity(), "exec_start")
	v.Sleep(dur)
	stop := v.Now()
	prof.Record(u.Entity(), "exec_stop")
	u.markExec(start, stop)

	if u.Desc.FailOn != nil && u.Desc.FailOn(u.Desc.Attempt) {
		u.finish(UnitFailed, fmt.Errorf("unit %q failed (injected, attempt %d)",
			u.Desc.Name, u.Desc.Attempt))
		return
	}
	if a.isStopped() {
		u.finish(UnitFailed, a.stopErr)
		return
	}
	if u.Desc.Work != nil {
		if err := u.Desc.Work(); err != nil {
			u.finish(UnitFailed, fmt.Errorf("unit %q work: %w", u.Desc.Name, err))
			return
		}
	}

	// Output staging.
	if len(u.Desc.OutputStaging) > 0 {
		u.setState(UnitStagingOutput)
		prof.Record(u.Entity(), "stageout_start")
		if _, err := a.pilot.backend.mover.Run(u.Desc.OutputStaging); err != nil {
			u.finish(UnitFailed, fmt.Errorf("output staging: %w", err))
			return
		}
		prof.Record(u.Entity(), "stageout_stop")
	}

	u.finish(UnitDone, nil)
}

func (a *agent) isStopped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stopped
}

// freeCores reports currently free cores (tests/diagnostics).
func (a *agent) freeCores() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, f := range a.nodes {
		total += f
	}
	return total
}
