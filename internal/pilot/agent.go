package pilot

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"entk/internal/vclock"
)

// agent is the pilot's on-resource component: it owns the allocation's
// cores and schedules compute units onto them at the application level.
// Units wait in a pending queue (pendq.go: segmented per-class buckets,
// or the seed's flat FIFO as the selectable reference); submissions and
// completions trigger a continuous-scheduling pass that places
// whichever pending units fit. Each agent owns its queue outright, so a
// multi-pilot ResourceSet's pending work is sharded per pilot: the
// WaveBatcher's per-pilot bulk runs land in disjoint queues and the
// pilots schedule independently.
//
// The pass is incremental (see sched.go for the placement index and
// pendq.go for the queue):
//
//   - a pending-need watermark (minNeedAny/minNeedMPI) lets completion
//     events skip the pass entirely when no pending unit can fit the
//     newly freed capacity — the common case for a saturated pilot;
//   - passes are batched: while one pass runs, further submit/completion
//     events only mark the queue dirty, and the running pass loops until
//     clean, so one pass services many same-instant completions;
//   - within a pass, an O(1) feasibility precheck (against the free-core
//     index) rejects units without touching the node state — and, on the
//     segmented queue, blocks the unit's whole placement class for the
//     rest of the pass — and the pass stops early once no free core
//     remains, resuming at the bucket cursors instead of rescanning the
//     placed prefix.
//
// Queue discipline per placement policy: FirstFit and BestFit schedule
// continuously — units are tried in FIFO order and any unit that fits
// starts, so later units may overtake a blocked head (RADICAL-Pilot
// agent semantics). Backfill is stricter, mirroring EASY backfilling at
// the batch layer: the first blocked unit holds a reservation at its
// earliest possible start (the shadow time, projected from the running
// units' cost-model completion times), and a later unit may overtake it
// only if it cannot delay that start — it either uses cores the head
// will not need at the shadow time, or is predicted to finish before it.
// The head is therefore never starved by a stream of small units, which
// continuous scheduling permits.
type agent struct {
	pilot *ComputePilot
	sess  *Session

	// launch bounds concurrent task launches; each launch also pays the
	// machine's per-task launch latency. This is the runtime-side,
	// per-task overhead component.
	launch *vclock.Semaphore

	mu      sync.Mutex
	sched   scheduler
	pend    pendingQueue
	started bool
	stopped bool
	stopErr error
	running int
	// stoppedFlag mirrors stopped for the executor's lock-free checks on
	// the per-unit hot path; written under mu, read via atomic.
	stoppedFlag atomic.Bool

	// inPass and dirty coalesce scheduling passes; scratch is a
	// pass-local buffer reused across passes (only the pass owner
	// touches it).
	inPass  bool
	dirty   bool
	scratch []launchReq

	// idle is a LIFO free list of executor workers whose chains ran dry:
	// parked on plain channels and detached from the virtual clock, so
	// they are invisible to the engine while idle, and a new scheduling
	// wave re-attaches them instead of spawning fresh goroutines (whose
	// stacks would have to regrow — 8k-goroutine waves made the runtime's
	// stack machinery a top profile entry). Guarded by idleMu; drained by
	// stop.
	idleMu sync.Mutex
	idle   *execSlot

	// passCount/passScanned/passPlaced instrument the scheduling passes
	// (under mu): passes run, units yielded by the queue, units placed.
	// Together with the queue's own work counter they let the pass-cost
	// regression tests pin that per-placed-unit work is independent of
	// backlog depth.
	passCount   uint64
	passScanned uint64
	passPlaced  uint64

	// runEnds (Backfill policy only) tracks each running unit's projected
	// completion — placement time + launch latency + cost-model duration —
	// the data the EASY reservation is computed from.
	runEnds map[*ComputeUnit]runInfo

	// utilUnits/utilBusy accumulate the pilot's utilization counters:
	// units that finished executing here and their core-weighted
	// execution time. Updated under mu at exec stop, before the unit
	// turns final (O(1) per unit); campaign reports diff snapshots
	// across their run window.
	utilUnits int
	utilBusy  time.Duration

	// capCores is the pilot's current capacity in cores: the static
	// allocation minus nodes lost to injected faults. Read lock-free by
	// admission and placement eligibility.
	capCores atomic.Int64

	// Fault-tolerance state (all under mu; recover also read via
	// recovery()): recover, when installed (ResourceSet rebind opt-in),
	// receives the units a pilot death or node loss displaces instead of
	// failing them; inflight tracks running units with the allocation and
	// rebind generation of their placement, so teardown can steal them;
	// down marks nodes lost to FaultNodeLoss — release drops their
	// shares; quiesceEv, once armed by quiesce(), fires when no unit is
	// running (the DrainPilot handshake).
	recover   func([]*ComputeUnit)
	inflight  map[*ComputeUnit]flightInfo
	down      map[int]bool
	quiesceEv *vclock.Event
}

// flightInfo is one tracked in-flight unit: the allocation it holds and
// the rebind generation captured at placement.
type flightInfo struct {
	alloc allocation
	gen   int
}

// runInfo is a running unit's projected completion and core count.
type runInfo struct {
	end   time.Duration
	cores int
}

// launchReq is one placement decided by a pass, executed after unlock.
// gen is the unit's rebind generation at placement time (-1 on agents
// that do not track in-flight work): every effect the executor applies
// is gated on it, so a unit stolen for rebinding mid-flight cannot be
// double-settled by its stale executor.
type launchReq struct {
	u     *ComputeUnit
	alloc allocation
	gen   int
}

// execSlot is one idle executor worker: a capacity-1 work channel (the
// dispatcher must never block handing work to a parked worker) and the
// free-list link. Allocated once per worker goroutine.
type execSlot struct {
	ch   chan launchReq
	next *execSlot
}

func newAgent(p *ComputePilot) *agent {
	m := p.backend.machine
	cores := p.Desc.Cores
	nNodes := m.NodesFor(cores)
	nodes := make([]int, nNodes)
	rem := cores
	for i := range nodes {
		take := m.CoresPerNode
		if take > rem {
			take = rem
		}
		nodes[i] = take
		rem -= take
	}
	width := p.sess.Cfg.LauncherWidth
	if width <= 0 {
		width = nNodes
	}
	a := &agent{
		pilot:  p,
		sess:   p.sess,
		launch: vclock.NewSemaphore(p.sess.V, fmt.Sprintf("launcher pilot %d", p.ID), width),
		sched:  newScheduler(nodes, p.sess.Cfg.Agent, p.sess.Cfg.Rescan),
		pend:   newPendingQueue(p.sess.Cfg.PendingRef),
	}
	if p.sess.Cfg.Agent == Backfill {
		a.runEnds = make(map[*ComputeUnit]runInfo)
	}
	a.capCores.Store(int64(cores))
	return a
}

// capacityCores reports the pilot's current capacity: the static
// allocation minus nodes lost to injected faults.
func (a *agent) capacityCores() int { return int(a.capCores.Load()) }

// setRecovery installs the rebind path: the callback receiving units a
// pilot death or node loss displaces, plus the in-flight tracking that
// makes stealing them possible. ResourceSet installs it right after
// submission — before activation — so no placement escapes tracking.
func (a *agent) setRecovery(fn func([]*ComputeUnit)) {
	a.mu.Lock()
	a.recover = fn
	if a.inflight == nil {
		a.inflight = make(map[*ComputeUnit]flightInfo)
	}
	a.mu.Unlock()
}

// recovery returns the installed rebind callback, nil without one.
func (a *agent) recovery() func([]*ComputeUnit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recover
}

// rejectStopped disposes of a unit submitted to a stopped agent: with a
// recovery path installed it bounces back for rebinding (the pilot died
// between the placement pick and the submission landing), otherwise it
// fails with the stop cause.
func (a *agent) rejectStopped(u *ComputeUnit) {
	if rec := a.recovery(); rec != nil {
		rec([]*ComputeUnit{u})
		return
	}
	u.finish(UnitFailed, a.stopCause())
}

// rejectStoppedBatch is rejectStopped for a whole bulk submission.
func (a *agent) rejectStoppedBatch(us []*ComputeUnit) {
	if rec := a.recovery(); rec != nil {
		rec(us)
		return
	}
	cause := a.stopCause()
	for _, u := range us {
		u.finish(UnitFailed, cause)
	}
}

// start begins scheduling queued units; called when the pilot activates.
func (a *agent) start() {
	a.mu.Lock()
	a.started = true
	a.mu.Unlock()
	a.schedule()
}

// stop fails all queued units and refuses future work.
func (a *agent) stop(cause error) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.stoppedFlag.Store(true)
	a.stopErr = cause
	doomed := a.pend.drain()
	a.mu.Unlock()
	// Drain the idle executor pool: closing each slot releases its
	// parked (clock-detached) worker goroutine. stoppedFlag is already
	// set, so a worker racing onto the list exits before parking.
	a.idleMu.Lock()
	idle := a.idle
	a.idle = nil
	a.idleMu.Unlock()
	for w := idle; w != nil; w = w.next {
		close(w.ch)
	}
	// Real mode: reap every OS process still running for this pilot.
	// Their executors' RunUnit calls return with the kill error and the
	// units fail with the stop cause — no orphans outlive the agent.
	if r := a.sess.Cfg.Runner; r != nil {
		r.ReleasePilot(a.pilot.ID)
	}
	for _, u := range doomed {
		u.finish(UnitFailed, cause)
	}
}

// stopWithReturn is stop for a pilot with a recovery path installed:
// instead of failing the backlog it drains the pending queue (the
// queue's own FIFO drain machinery) and steals the in-flight units,
// returning both for the caller to rebind onto surviving pilots. A
// stolen unit's stale executor keeps running — virtual sleeps cannot be
// interrupted — but every subsequent effect is generation-gated
// (unit.go), so it exits harmlessly at its next gate. In-flight units
// are returned first (they are the oldest work), ordered by unit ID so
// the map iteration cannot leak nondeterminism into the rebind order.
func (a *agent) stopWithReturn(cause error) []*ComputeUnit {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return nil
	}
	a.stopped = true
	a.stoppedFlag.Store(true)
	a.stopErr = cause
	pend := a.pend.drain()
	running := make([]*ComputeUnit, 0, len(a.inflight))
	for u := range a.inflight {
		running = append(running, u)
	}
	a.inflight = make(map[*ComputeUnit]flightInfo)
	a.mu.Unlock()
	a.idleMu.Lock()
	idle := a.idle
	a.idle = nil
	a.idleMu.Unlock()
	for w := idle; w != nil; w = w.next {
		close(w.ch)
	}
	// Real mode: kill the stolen units' processes. The stale executors'
	// RunUnit calls return, and every subsequent effect is generation-
	// gated away — the rebound attempts own the units from here.
	if r := a.sess.Cfg.Runner; r != nil {
		r.ReleasePilot(a.pilot.ID)
	}
	sort.Slice(running, func(i, j int) bool { return running[i].ID < running[j].ID })
	returned := make([]*ComputeUnit, 0, len(running)+len(pend))
	for _, u := range running {
		if u.steal() {
			returned = append(returned, u)
		}
	}
	for _, u := range pend {
		if !u.State().Final() { // racing external finish keeps its result
			returned = append(returned, u)
		}
	}
	return returned
}

// drainPending removes and returns the live pending backlog without
// stopping the agent — the DrainPilot path: the unit manager has
// already withdrawn the pilot so no new work arrives, running units
// finish normally, and the returned backlog is rebound elsewhere.
func (a *agent) drainPending() []*ComputeUnit {
	a.mu.Lock()
	pend := a.pend.drain()
	a.mu.Unlock()
	out := make([]*ComputeUnit, 0, len(pend))
	for _, u := range pend {
		if !u.State().Final() {
			out = append(out, u)
		}
	}
	return out
}

// quiesce returns an event that fires once the agent has no running
// unit. Arm it only after the pending backlog is drained and no more
// work will be dispatched here (DrainPilot's handshake); with anything
// still running the event fires from the last release.
func (a *agent) quiesce() *vclock.Event {
	a.mu.Lock()
	if a.quiesceEv == nil {
		a.quiesceEv = vclock.NewEvent(a.sess.V, fmt.Sprintf("pilot %d quiesce", a.pilot.ID))
	}
	ev := a.quiesceEv
	fire := a.running == 0
	a.mu.Unlock()
	if fire {
		ev.Fire()
	}
	return ev
}

// loseNodes takes n nodes out of the allocation at the current instant —
// the FaultNodeLoss path. The last n node indices are chosen
// (deterministic and independent of occupancy); their free cores leave
// the scheduler immediately, and cores a running unit holds there are
// dropped when that unit releases. Every in-flight unit whose
// allocation touches a downed node is stolen (generation-gated, as in
// stopWithReturn) and the whole pending backlog is drained — a queued
// unit may no longer fit the shrunken pilot, and re-placement sorts
// feasible units back (often onto this same pilot's surviving nodes)
// while infeasible ones settle through the caller. Returns the
// displaced units; nil when the fault changed nothing.
func (a *agent) loseNodes(n int) []*ComputeUnit {
	a.mu.Lock()
	if a.stopped || n <= 0 {
		a.mu.Unlock()
		return nil
	}
	total := len(a.sched.nodeFree())
	if n > total {
		n = total
	}
	if a.down == nil {
		a.down = make(map[int]bool)
	}
	lost := 0
	for i := total - n; i < total; i++ {
		if a.down[i] {
			continue
		}
		a.down[i] = true
		lost += a.sched.markDown(i)
	}
	if lost == 0 {
		a.mu.Unlock()
		return nil
	}
	a.capCores.Add(-int64(lost))
	var hit []*ComputeUnit
	for u, fi := range a.inflight {
		touched := false
		fi.alloc.forEach(func(node, _ int) {
			if a.down[node] {
				touched = true
			}
		})
		if touched {
			hit = append(hit, u)
		}
	}
	for _, u := range hit {
		delete(a.inflight, u)
	}
	pend := a.pend.drain()
	a.mu.Unlock()
	sort.Slice(hit, func(i, j int) bool { return hit[i].ID < hit[j].ID })
	returned := make([]*ComputeUnit, 0, len(hit)+len(pend))
	for _, u := range hit {
		if u.steal() {
			returned = append(returned, u)
		}
	}
	for _, u := range pend {
		if !u.State().Final() {
			returned = append(returned, u)
		}
	}
	return returned
}

// submit enqueues a unit. The unit must already be bound to this agent's
// pilot. The QUEUED transition is recorded before the unit becomes
// visible to the scheduler, so a pass can never execute it first; queue
// insertion and the pass request then share one critical section.
func (a *agent) submit(u *ComputeUnit) {
	if !a.admit(u) {
		return
	}
	u.setState(UnitQueued)
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		a.rejectStopped(u)
		return
	}
	a.pend.push(u)
	if !a.started {
		a.mu.Unlock()
		return
	}
	a.dirty = true
	if a.inPass {
		a.mu.Unlock()
		return
	}
	a.runPasses() // unlocks
}

// admit applies the static submission checks shared by submit and
// submitBatch, failing units that can never run here. It returns false
// when the unit was finished (rejected) and must not be queued.
func (a *agent) admit(u *ComputeUnit) bool {
	if a.isStopped() {
		a.rejectStopped(u)
		return false
	}
	// Units that can never be placed on this pilot are rejected here, at
	// submission, against the pilot's static shape — queueing them would
	// wedge the FIFO (and the watermark would rightly never trigger a
	// pass for them). The capacity is the live one: a pilot shrunk by
	// node loss no longer admits units only its lost nodes could hold.
	need := u.Desc.Cores
	if cap := a.capacityCores(); need > cap {
		u.finish(UnitFailed, fmt.Errorf(
			"pilot: unit %q needs %d cores, pilot %d holds %d",
			u.Desc.Name, need, a.pilot.ID, cap))
		return false
	}
	if m := a.pilot.backend.machine; !u.Desc.MPI && need > m.CoresPerNode {
		u.finish(UnitFailed, fmt.Errorf(
			"pilot: non-MPI unit %q needs %d cores, node has %d",
			u.Desc.Name, need, m.CoresPerNode))
		return false
	}
	return true
}

// submitBatch enqueues one wave's worth of units bound to this pilot as
// a single bulk submission: every unit is admitted and recorded QUEUED,
// then the whole group joins the pending FIFO under one critical
// section with one scheduling-pass request — instead of a lock
// acquisition and pass attempt per unit. Placement outcomes are
// identical to per-unit submission (passes are FIFO over pending), so
// this is purely a client-side cost reduction.
func (a *agent) submitBatch(us []*ComputeUnit) {
	queued := us[:0:0]
	for _, u := range us {
		if !a.admit(u) {
			continue
		}
		u.setState(UnitQueued)
		queued = append(queued, u)
	}
	if len(queued) == 0 {
		return
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		a.rejectStoppedBatch(queued)
		return
	}
	for _, u := range queued {
		a.pend.push(u)
	}
	if !a.started {
		a.mu.Unlock()
		return
	}
	a.dirty = true
	if a.inPass {
		a.mu.Unlock()
		return
	}
	a.runPasses() // unlocks
}

// cancelQueued removes a unit from the pending queue if still there —
// an O(1) tombstone on the segmented queue (the seed reference keeps
// its linear splice), so cancelling under a deep backlog never touches
// unrelated entries.
func (a *agent) cancelQueued(u *ComputeUnit) {
	a.mu.Lock()
	ok := a.pend.cancel(u)
	a.mu.Unlock()
	if ok {
		u.finish(UnitCanceled, nil)
		return
	}
	// Not pending: either executing (runs to completion, finish() maps
	// Done to Canceled via the unit's canceled flag) or already final.
}

// load approximates the agent's backlog for least-loaded scheduling.
func (a *agent) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pend.size() + a.running
}

// fitPossible reports whether any pending unit could be placed right now,
// per the queue's watermarks. Caller holds mu.
func (a *agent) fitPossible() bool {
	return a.pend.minNeedAny() <= a.sched.maxNodeFree() || a.pend.minNeedMPI() <= a.sched.freeCores()
}

// passStats snapshots the pass-cost counters (tests): passes run, units
// yielded, units placed, and the queue's cumulative internal work.
func (a *agent) passStats() (passes, scanned, placed, queueWork uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.passCount, a.passScanned, a.passPlaced, a.pend.work()
}

// schedule requests a scheduling pass, coalescing with a running one.
func (a *agent) schedule() {
	a.mu.Lock()
	if !a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.dirty = true
	if a.inPass {
		a.mu.Unlock()
		return
	}
	a.runPasses() // unlocks
}

// utilSnapshot reads the utilization counters.
func (a *agent) utilSnapshot() UtilSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return UtilSnapshot{Units: a.utilUnits, CoreBusy: a.utilBusy}
}

// release returns an allocation's cores and reschedules. The watermark
// check makes completions O(1) when nothing pending can use the freed
// capacity. When the triggered pass places units, the first placement is
// handed back to the caller — a completing executor goroutine runs its
// successor directly instead of spawning a fresh goroutine per unit.
func (a *agent) release(lr launchReq) (launchReq, bool) {
	a.mu.Lock()
	a.releaseAllocLocked(lr.alloc)
	a.running--
	if a.runEnds != nil {
		delete(a.runEnds, lr.u)
	}
	if a.inflight != nil {
		// Only the entry of this very placement: the unit may already be
		// re-placed here under a newer generation.
		if fi, ok := a.inflight[lr.u]; ok && fi.gen == lr.gen {
			delete(a.inflight, lr.u)
		}
	}
	var quiesce *vclock.Event
	if a.running == 0 && a.quiesceEv != nil {
		quiesce = a.quiesceEv
	}
	if !a.started || a.stopped || a.pend.size() == 0 || !a.fitPossible() {
		a.mu.Unlock()
		if quiesce != nil {
			quiesce.Fire()
		}
		return launchReq{}, false
	}
	a.dirty = true
	if a.inPass {
		a.mu.Unlock()
		if quiesce != nil {
			quiesce.Fire()
		}
		return launchReq{}, false
	}
	next, ok := a.runPassesTakeOne() // unlocks
	if quiesce != nil {
		quiesce.Fire()
	}
	return next, ok
}

// releaseAllocLocked returns an allocation's cores to the scheduler,
// dropping shares on nodes lost to injected faults: the cores left with
// the node. Caller holds mu.
func (a *agent) releaseAllocLocked(alloc allocation) {
	if a.down == nil {
		a.sched.release(alloc)
		return
	}
	kept := allocation{node: -1}
	alloc.forEach(func(node, cores int) {
		if a.down[node] {
			return
		}
		if kept.node < 0 {
			kept.node, kept.cores = node, cores
		} else {
			kept.spill = append(kept.spill, nodeShare{node, cores})
		}
	})
	if kept.node >= 0 {
		a.sched.release(kept)
	}
}

// runPasses drains the dirty flag: it runs scheduling passes until no new
// event arrived during the last one, then releases mu. Caller holds mu
// with inPass false and dirty true.
func (a *agent) runPasses() {
	if lr, ok := a.runPassesTakeOne(); ok {
		a.spawnExec(lr)
	}
}

// spawnExec starts lr on an executor: an idle pooled worker when one is
// parked, else a fresh goroutine. The worker is attached to the clock
// before the handoff so the engine cannot advance past the pending work.
func (a *agent) spawnExec(lr launchReq) {
	a.idleMu.Lock()
	w := a.idle
	if w != nil {
		a.idle = w.next
	}
	a.idleMu.Unlock()
	if w != nil {
		a.sess.V.Attach()
		w.ch <- lr // never blocks: cap 1, worker is parked empty
		return
	}
	a.sess.V.Go(func() { a.executorLoop(lr) })
}

// executorLoop is the body of one executor worker goroutine: run chains
// (execute), and between chains park detached on the idle list until the
// next wave dispatches work or stop drains the pool.
func (a *agent) executorLoop(lr launchReq) {
	var slot *execSlot
	for {
		a.execute(lr)
		// Chain dry: park as an idle worker, invisible to the clock.
		if slot == nil {
			slot = &execSlot{ch: make(chan launchReq, 1)}
		}
		a.idleMu.Lock()
		if a.stoppedFlag.Load() {
			a.idleMu.Unlock()
			return // still attached; Go's deregister balances
		}
		slot.next = a.idle
		a.idle = slot
		a.idleMu.Unlock()
		a.sess.V.Detach()
		next, ok := <-slot.ch
		if !ok {
			// Drained by stop: rejoin the clock so the enclosing Go
			// wrapper's deregister stays balanced, then exit.
			a.sess.V.Attach()
			return
		}
		lr = next
	}
}

// runPassesTakeOne is runPasses, but the first placement of the pass
// cascade is returned to the caller instead of spawned. Caller holds mu
// with inPass false and dirty true; the mutex is released on return.
func (a *agent) runPassesTakeOne() (launchReq, bool) {
	var first launchReq
	var haveFirst bool
	a.inPass = true
	for a.dirty && a.started && !a.stopped {
		a.dirty = false
		launches := a.passLocked()
		if len(launches) == 0 {
			continue
		}
		a.mu.Unlock()
		for _, lr := range launches {
			if !haveFirst {
				first, haveFirst = lr, true
				continue
			}
			a.spawnExec(lr)
		}
		a.mu.Lock()
	}
	a.inPass = false
	a.mu.Unlock()
	return first, haveFirst
}

// passLocked performs one continuous-scheduling pass over the pending
// queue, returning the placements decided. Caller holds mu for the
// whole pass (so the queue's pass cursors see no interleaved mutation);
// the returned slice is agent-owned scratch, valid until the next pass.
func (a *agent) passLocked() []launchReq {
	if a.sched.freeCores() == 0 {
		// Saturated: nothing can be placed, leave the queue untouched.
		// (Never-placeable units cannot be in it: submit rejects them.)
		return nil
	}
	launches := a.scratch[:0]
	m := a.pilot.backend.machine
	backfill := a.sess.Cfg.Agent == Backfill

	// Backfill reservation state: set once the FIFO head blocks.
	blocked := false
	var shadow time.Duration // head's earliest possible start
	var extra int            // cores spare at the shadow time

	q := a.pend
	a.passCount++
	q.beginPass()
	for a.sched.freeCores() > 0 {
		u := q.next()
		if u == nil {
			break
		}
		a.passScanned++
		need := u.Desc.Cores
		// O(1) feasibility precheck against the index, then the EASY
		// reservation, then the actual placement.
		fits := need <= a.sched.maxNodeFree() || (u.Desc.MPI && need <= a.sched.freeCores())
		if !fits {
			// The precheck depends only on the unit's placement class
			// (need × MPI) and on free capacity, which never grows within
			// a pass — so every later unit of this class fails it too,
			// and the segmented queue stops consulting the whole bucket.
			if backfill && !blocked {
				blocked = true
				shadow, extra = a.reservationLocked(need)
			}
			q.block()
			continue
		}
		if backfill && blocked {
			// The blocked head holds a reservation: this unit may jump it
			// only if it cannot delay the head's shadow-time start —
			// either it is predicted to finish before the shadow time
			// (its cores are back when the head needs them), or it fits
			// in the spare cores the head will not need then. Spare-core
			// admissions consume the spare budget, so a stream of long
			// small units cannot collectively overrun the reservation.
			ok := false
			if dur, err := a.predictLocked(u); err == nil {
				ok = a.sess.V.Now()+m.TaskLaunchLatency+dur <= shadow
			}
			if !ok && need <= extra {
				ok = true
				extra -= need
			}
			if !ok {
				// The gate is per-unit — predicted durations differ
				// within a placement class — so only this unit waits;
				// its classmates still get their own gate check.
				q.skip()
				continue
			}
		}
		alloc, ok := a.sched.tryPlace(need, u.Desc.MPI)
		if !ok {
			// Defensive (the precheck implies placement succeeds on both
			// scheduler implementations): keep just this unit, claiming
			// no class-wide knowledge.
			if backfill && !blocked {
				blocked = true
				shadow, extra = a.reservationLocked(need)
			}
			q.skip()
			continue
		}
		a.running++
		if a.runEnds != nil {
			end := a.sess.V.Now() + m.TaskLaunchLatency
			if dur, err := a.predictLocked(u); err == nil {
				end += dur
			}
			a.runEnds[u] = runInfo{end: end, cores: need}
		}
		// Capture the rebind generation under the same lock that placed
		// the unit: a steal can only land before or after this critical
		// section, never between placement and capture.
		g := -1
		if a.inflight != nil {
			g = u.generation()
			a.inflight[u] = flightInfo{alloc: alloc, gen: g}
		}
		launches = append(launches, launchReq{u, alloc, g})
		q.placed()
	}
	q.endPass()
	a.passPlaced += uint64(len(launches))
	a.scratch = launches
	return launches
}

// predictLocked estimates a unit's execution duration via the cost model
// (the same call executeUnit will make). Used by the Backfill policy;
// staging and launcher queueing are not modelled — the reservation is a
// scheduling heuristic, exactly as walltime-based EASY backfill is at the
// batch layer.
func (a *agent) predictLocked(u *ComputeUnit) (time.Duration, error) {
	return a.sess.Cost.Duration(u.Desc.Kernel, u.Desc.Params, u.Desc.Cores, a.pilot.backend.machine)
}

// reservationLocked computes the blocked head's EASY reservation from the
// running units' projected completions: the shadow time at which enough
// cores will have been freed for the head, and the cores spare beyond the
// head's need at that moment. Projected completions sharing the shadow
// time are all counted, keeping the result independent of map order.
// Caller holds mu.
func (a *agent) reservationLocked(headNeed int) (shadow time.Duration, extra int) {
	free := a.sched.freeCores()
	infos := make([]runInfo, 0, len(a.runEnds))
	for _, ri := range a.runEnds {
		infos = append(infos, ri)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].end < infos[j].end })
	acc := 0
	for i, ri := range infos {
		acc += ri.cores
		if free+acc >= headNeed && (i+1 == len(infos) || infos[i+1].end != ri.end) {
			return ri.end, free + acc - headNeed
		}
	}
	// The head can never start (larger than capacity would be fatal, so
	// this is only reachable transiently): forbid all overtaking.
	return 0, -1
}

// execute is an executor goroutine: it runs the launched unit's
// lifecycle, releases its allocation, and — when the release's pass hands
// one back — continues directly with a successor unit, so a saturated
// pilot reuses one goroutine per core chain instead of spawning one per
// unit. The chain is also what feeds the vclock engine's direct-handoff
// fast path: the successor's launcher Acquire and first Sleep issue from
// an already-running process, so same-instant block→wake pairs (launcher
// release racing the next acquire) resolve by token handoff instead of a
// park/unpark round trip through the Go scheduler.
func (a *agent) execute(lr launchReq) {
	for {
		a.executeUnit(lr)
		next, ok := a.release(lr)
		if !ok {
			return
		}
		lr = next
	}
}

// executeUnit runs one unit's full lifecycle on its allocation: launch,
// staging-in, execution (virtual sleep of the cost-model duration plus the
// optional real Work), staging-out. The caller releases the allocation.
// Every effect is gated on lr.gen: when the unit was stolen for rebinding
// mid-flight, this (now stale) executor's transitions, profiler records,
// utilization bumps, and finish are all discarded — the rebound run owns
// them. lr.gen is -1 (no gating) on agents without in-flight tracking.
func (a *agent) executeUnit(lr launchReq) {
	u := lr.u
	v := a.sess.V
	m := a.pilot.backend.machine
	prof := a.sess.Prof
	vocab := &a.sess.vocab

	// Launch: bounded concurrency, per-task latency.
	a.launch.Acquire(1)
	v.Sleep(m.TaskLaunchLatency)
	a.launch.Release(1)
	if a.isStopped() {
		u.finishFrom(lr.gen, UnitFailed, a.stopCause())
		return
	}

	// Input staging.
	if len(u.Desc.InputStaging) > 0 {
		if !u.setStateFrom(lr.gen, UnitStagingInput) {
			return
		}
		prof.RecordID(u.entityID, vocab.evStageinStart)
		if _, err := a.pilot.backend.mover.Run(u.Desc.InputStaging); err != nil {
			u.finishFrom(lr.gen, UnitFailed, fmt.Errorf("input staging: %w", err))
			return
		}
		if u.staleGen(lr.gen) {
			return
		}
		prof.RecordID(u.entityID, vocab.evStageinStop)
	}

	// Execution.
	dur, err := a.sess.Cost.Duration(u.Desc.Kernel, u.Desc.Params, u.Desc.Cores, m)
	if err != nil {
		u.finishFrom(lr.gen, UnitFailed, err)
		return
	}
	if !u.setStateFrom(lr.gen, UnitExecuting) {
		return
	}
	start := v.Now()
	prof.RecordID(u.entityID, vocab.evExecStart)
	var execErr error
	if r := a.sess.Cfg.Runner; r != nil {
		// Real mode: the runner blocks for as long as the unit really
		// takes (an OS process, or a wall sleep of the modelled duration
		// for kernels without a command). The window is still bracketed
		// by the same records and accounting as the simulated path.
		execErr = r.RunUnit(ExecRequest{
			PilotID:    a.pilot.ID,
			PilotCores: a.pilot.Desc.Cores,
			Unit:       u.Desc.Name,
			UnitID:     u.ID,
			Attempt:    u.Desc.Attempt,
			Kernel:     u.Desc.Kernel,
			Executable: u.Desc.Executable,
			Args:       u.Desc.Args,
			Cores:      u.Desc.Cores,
			Model:      dur,
		})
	} else {
		v.Sleep(dur)
	}
	stop := v.Now()
	if !u.markExecFrom(lr.gen, start, stop) {
		return
	}
	prof.RecordID(u.entityID, vocab.evExecStop)
	// Utilization counters are bumped before the unit can turn final, so
	// a snapshot taken when a campaign's last unit settles cannot miss
	// its execution.
	a.mu.Lock()
	a.utilUnits++
	a.utilBusy += (stop - start) * time.Duration(u.Desc.Cores)
	a.mu.Unlock()

	if execErr != nil {
		u.finishFrom(lr.gen, UnitFailed, fmt.Errorf("unit %q exec: %w", u.Desc.Name, execErr))
		return
	}
	if u.Desc.FailOn != nil && u.Desc.FailOn(u.Desc.Attempt) {
		u.finishFrom(lr.gen, UnitFailed, fmt.Errorf("unit %q failed (injected, attempt %d)",
			u.Desc.Name, u.Desc.Attempt))
		return
	}
	if a.isStopped() {
		u.finishFrom(lr.gen, UnitFailed, a.stopCause())
		return
	}
	if u.Desc.Work != nil {
		if err := u.Desc.Work(); err != nil {
			u.finishFrom(lr.gen, UnitFailed, fmt.Errorf("unit %q work: %w", u.Desc.Name, err))
			return
		}
	}

	// Output staging.
	if len(u.Desc.OutputStaging) > 0 {
		if !u.setStateFrom(lr.gen, UnitStagingOutput) {
			return
		}
		prof.RecordID(u.entityID, vocab.evStageoutStart)
		if _, err := a.pilot.backend.mover.Run(u.Desc.OutputStaging); err != nil {
			u.finishFrom(lr.gen, UnitFailed, fmt.Errorf("output staging: %w", err))
			return
		}
		if u.staleGen(lr.gen) {
			return
		}
		prof.RecordID(u.entityID, vocab.evStageoutStop)
	}

	u.finishFrom(lr.gen, UnitDone, nil)
}

func (a *agent) isStopped() bool {
	return a.stoppedFlag.Load()
}

// stopCause returns the stop error; valid once isStopped reports true.
func (a *agent) stopCause() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stopErr
}

// freeCores reports currently free cores (tests/diagnostics).
func (a *agent) freeCores() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.freeCores()
}

// nodeFree snapshots per-node free cores (tests/diagnostics).
func (a *agent) nodeFree() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sched.nodeFree()
}
