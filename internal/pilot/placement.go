package pilot

import (
	"sync"
)

// Placement policies for multi-pilot sets. The unit manager binds each
// unit to a pilot at dispatch time — after the wave's client-side
// submission cost has elapsed — so the decision is late-bound: it sees
// the pilots' *current* free cores and backlogs, not the state at
// description time. This is the decoupling the paper delegates to the
// pilot abstraction (Section III-C2): the workload is described once,
// and where each task runs is decided by whichever pilot has capacity
// when the task becomes ready.
//
// A PlacementPolicy replaces the legacy per-unit SchedulerPolicy when a
// multi-pilot set installs one (UnitManager.SetPlacement); with no
// policy installed the manager keeps the seed Cfg.Scheduler behaviour
// bit for bit.

// PlacementPolicy selects which pilot of a set a unit binds to.
// Implementations must be safe for concurrent use; Place is called
// under the unit manager's lock, so it must not call back into the
// unit manager.
type PlacementPolicy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string
	// Place selects a pilot for d from pilots (in set order), or nil
	// when no pilot can run the unit. Pilots that cannot structurally
	// fit the unit (core count, node width for non-MPI units) must not
	// be returned.
	Place(d *UnitDescription, pilots []*ComputePilot) *ComputePilot
}

// eligible reports whether the pilot can run the unit: it is still
// alive (a walltime-expired or cancelled pilot's agent fails everything
// submitted to it, so routing there would fail units another pilot
// could run), has enough total cores, and — for non-MPI units — a node
// wide enough to hold it. The shape checks mirror the agent's static
// admission, so an eligible placement is never rejected at the agent.
func eligible(d *UnitDescription, p *ComputePilot) bool {
	if p.State().Final() {
		return false
	}
	// Live capacity, not the static allocation: a pilot shrunk by node
	// loss must not attract units only its lost nodes could have held.
	if d.Cores > p.CapacityCores() {
		return false
	}
	if !d.MPI && d.Cores > p.Machine().CoresPerNode {
		return false
	}
	return true
}

// hasAllTags reports whether the pilot carries every tag of the unit.
func hasAllTags(d *UnitDescription, p *ComputePilot) bool {
	for _, want := range d.Tags {
		found := false
		for _, have := range p.Desc.Tags {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// rrPlacement deals units to eligible pilots in turn. The cursor
// advances monotonically (reduced modulo the slice length only at scan
// time), so calls over different pilot subsets — tag-affinity routes
// matched subsets and the full set through one instance — cannot reset
// the rotation to the first pilot.
type rrPlacement struct {
	mu     sync.Mutex
	cursor uint64
}

// PlaceRoundRobin returns a policy that deals each unit to the next
// eligible pilot in set order — the default for multi-pilot sets.
func PlaceRoundRobin() PlacementPolicy { return &rrPlacement{} }

func (r *rrPlacement) Name() string { return "round-robin" }

func (r *rrPlacement) Place(d *UnitDescription, pilots []*ComputePilot) *ComputePilot {
	if len(pilots) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.cursor
	for i := 0; i < len(pilots); i++ {
		p := pilots[(start+uint64(i))%uint64(len(pilots))]
		if eligible(d, p) {
			r.cursor = start + uint64(i) + 1
			return p
		}
	}
	return nil
}

// freeCoresPlacement routes each unit to the least-loaded pilot,
// measured by free cores.
type freeCoresPlacement struct{}

// PlaceLeastLoaded returns a policy that routes each unit to the
// eligible pilot with the most free cores right now (ties broken by the
// smaller queued-plus-running backlog, then set order) — so waves drain
// toward whichever machine has capacity at dispatch time.
func PlaceLeastLoaded() PlacementPolicy { return freeCoresPlacement{} }

func (freeCoresPlacement) Name() string { return "least-loaded" }

func (freeCoresPlacement) Place(d *UnitDescription, pilots []*ComputePilot) *ComputePilot {
	var best *ComputePilot
	bestFree, bestLoad := -1, 0
	for _, p := range pilots {
		if !eligible(d, p) {
			continue
		}
		free, load := p.FreeCores(), p.Load()
		if best == nil || free > bestFree || (free == bestFree && load < bestLoad) {
			best, bestFree, bestLoad = p, free, load
		}
	}
	return best
}

// tagAffinity restricts placement to tag-matching pilots, delegating
// the choice among them to an inner policy.
type tagAffinity struct {
	next PlacementPolicy
}

// PlaceTagAffinity returns a policy that routes tagged units to pilots
// carrying every one of the unit's tags (so e.g. MPI-width-4 tasks land
// on the machine provisioned for them), choosing among the matches with
// next (round-robin when nil). Untagged units — and tagged units no
// pilot matches — fall back to next over all eligible pilots, so a
// mislabelled campaign degrades to late binding instead of failing.
func PlaceTagAffinity(next PlacementPolicy) PlacementPolicy {
	if next == nil {
		next = PlaceRoundRobin()
	}
	return &tagAffinity{next: next}
}

func (t *tagAffinity) Name() string { return "tag-affinity+" + t.next.Name() }

func (t *tagAffinity) Place(d *UnitDescription, pilots []*ComputePilot) *ComputePilot {
	if len(d.Tags) > 0 {
		matched := make([]*ComputePilot, 0, len(pilots))
		for _, p := range pilots {
			if eligible(d, p) && hasAllTags(d, p) {
				matched = append(matched, p)
			}
		}
		if len(matched) > 0 {
			return t.next.Place(d, matched)
		}
	}
	return t.next.Place(d, pilots)
}
