package pilot

import (
	"sort"
	"testing"
	"time"

	"entk/internal/vclock"
)

// batcherStreamedWorkload runs three concurrent streamed waves of
// distinct widths through either the batcher's streamed path or the raw
// unit manager's, on a fresh session, and returns each wave's unit exec
// windows in sorted order plus the umgr wave count.
func batcherStreamedWorkload(t *testing.T, batched bool) ([][][2]time.Duration, int) {
	t.Helper()
	v := vclock.NewVirtual()
	s := testSession(t, v)
	um := NewUnitManager(s)
	b := NewWaveBatcher(um)
	widths := []int{3, 5, 9}
	windows := make([][][2]time.Duration, len(widths))
	v.Run(func() {
		_, p := startPilot(t, s, 32)
		um.AddPilot(p)
		wg := vclock.NewWaitGroup(v, "submitters")
		for w, width := range widths {
			w, width := w, width
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				descs := make([]UnitDescription, width)
				for i := range descs {
					descs[i] = sleepUnit("s"+pad2(w, i), float64(1+w))
				}
				var units []*ComputeUnit
				var err error
				if batched {
					units, err = b.SubmitStreamed(descs)
				} else {
					units, err = um.SubmitStreamed(descs)
				}
				if err != nil {
					t.Error(err)
					return
				}
				for _, u := range units {
					if st := u.WaitFinal(); st != UnitDone {
						t.Errorf("wave %d unit %s final state %v", w, u.Entity(), st)
					}
					start, stop, ok := u.ExecWindow()
					if !ok {
						t.Errorf("wave %d unit %s never executed", w, u.Entity())
					}
					windows[w] = append(windows[w], [2]time.Duration{start, stop})
				}
			})
		}
		wg.Wait()
		p.Cancel()
		p.WaitFinal()
	})
	for w := range windows {
		sort.Slice(windows[w], func(i, j int) bool {
			if windows[w][i][0] != windows[w][j][0] {
				return windows[w][i][0] < windows[w][j][0]
			}
			return windows[w][i][1] < windows[w][j][1]
		})
	}
	return windows, um.Waves()
}

// TestBatcherStreamedTimelineNeutral gates the streamed leg of the
// batcher: a streamed wave joining the shared creation rounds must not
// perturb the simulated timeline. Each unit still dispatches at its own
// per-unit cost deadline, so every exec window must match the unbatched
// streamed run exactly — only the umgr wave-bracket count may shrink
// (same-instant streamed waves share a round).
func TestBatcherStreamedTimelineNeutral(t *testing.T) {
	batched, batchedWaves := batcherStreamedWorkload(t, true)
	plain, plainWaves := batcherStreamedWorkload(t, false)
	for w := range plain {
		if len(batched[w]) != len(plain[w]) {
			t.Fatalf("wave %d: %d units batched vs %d unbatched", w, len(batched[w]), len(plain[w]))
		}
		for i := range plain[w] {
			if batched[w][i] != plain[w][i] {
				t.Errorf("wave %d unit %d exec window diverges: batched %v, unbatched %v",
					w, i, batched[w][i], plain[w][i])
			}
		}
	}
	if plainWaves != 3 {
		t.Errorf("unbatched run recorded %d umgr waves, want 3", plainWaves)
	}
	if batchedWaves < 1 || batchedWaves > plainWaves {
		t.Errorf("batched run recorded %d umgr waves, want 1..%d", batchedWaves, plainWaves)
	}
}

// batcherWorkload runs three concurrent bulk waves of distinct widths
// through submit (either the batcher or the raw unit manager) on a
// fresh session, and returns each wave's unit exec windows in sorted
// order plus the umgr wave count.
func batcherWorkload(t *testing.T, batched bool) ([][][2]time.Duration, int) {
	t.Helper()
	v := vclock.NewVirtual()
	s := testSession(t, v)
	um := NewUnitManager(s)
	b := NewWaveBatcher(um)
	widths := []int{3, 5, 9}
	windows := make([][][2]time.Duration, len(widths))
	v.Run(func() {
		_, p := startPilot(t, s, 32)
		um.AddPilot(p)
		wg := vclock.NewWaitGroup(v, "submitters")
		for w, width := range widths {
			w, width := w, width
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				descs := make([]UnitDescription, width)
				for i := range descs {
					descs[i] = sleepUnit("b"+pad2(w, i), float64(1+w))
				}
				var units []*ComputeUnit
				var err error
				if batched {
					units, err = b.Submit(descs)
				} else {
					units, err = um.Submit(descs)
				}
				if err != nil {
					t.Error(err)
					return
				}
				for _, u := range units {
					if st := u.WaitFinal(); st != UnitDone {
						t.Errorf("wave %d unit %s final state %v", w, u.Entity(), st)
					}
					start, stop, ok := u.ExecWindow()
					if !ok {
						t.Errorf("wave %d unit %s never executed", w, u.Entity())
					}
					windows[w] = append(windows[w], [2]time.Duration{start, stop})
				}
			})
		}
		wg.Wait()
		p.Cancel()
		p.WaitFinal()
	})
	for w := range windows {
		sort.Slice(windows[w], func(i, j int) bool {
			if windows[w][i][0] != windows[w][j][0] {
				return windows[w][i][0] < windows[w][j][0]
			}
			return windows[w][i][1] < windows[w][j][1]
		})
	}
	return windows, um.Waves()
}

// TestBatcherTimelineNeutral is the batcher's core contract: coalescing
// concurrent waves changes the wall-clock shape (fewer umgr waves), not
// the simulated timeline — every unit's exec window must match the
// unbatched run exactly, and each wave's units must dispatch at the
// wave's own client-side-cost deadline.
func TestBatcherTimelineNeutral(t *testing.T) {
	batched, batchedWaves := batcherWorkload(t, true)
	plain, plainWaves := batcherWorkload(t, false)
	for w := range plain {
		if len(batched[w]) != len(plain[w]) {
			t.Fatalf("wave %d: %d units batched vs %d unbatched", w, len(batched[w]), len(plain[w]))
		}
		for i := range plain[w] {
			if batched[w][i] != plain[w][i] {
				t.Errorf("wave %d unit %d exec window diverges: batched %v, unbatched %v",
					w, i, batched[w][i], plain[w][i])
			}
		}
	}
	if plainWaves != 3 {
		t.Errorf("unbatched run recorded %d umgr waves, want 3", plainWaves)
	}
	// The batcher coalesces same-instant waves into drain rounds: at
	// least the leader's round merges with whoever enqueued while it
	// drained, so the count never exceeds the unbatched one. (The exact
	// round count depends on wall-clock interleaving.)
	if batchedWaves < 1 || batchedWaves > plainWaves {
		t.Errorf("batched run recorded %d umgr waves, want 1..%d", batchedWaves, plainWaves)
	}
}

// TestBatcherSingleWaveMatchesSubmit pins the uncontended path: one
// wave through the batcher must behave exactly like UnitManager.Submit
// — same unit order, same dispatch deadline (t + n x UMSubmitPerUnit),
// one wave bracket, one bulk agent submission.
func TestBatcherSingleWaveMatchesSubmit(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	um := NewUnitManager(s)
	b := NewWaveBatcher(um)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um.AddPilot(p)
		t0 := v.Now()
		descs := []UnitDescription{sleepUnit("a.00", 1), sleepUnit("a.01", 2), sleepUnit("a.02", 1)}
		units, err := b.Submit(descs)
		if err != nil {
			t.Fatal(err)
		}
		dispatched := v.Now() - t0
		if want := time.Duration(len(descs)) * s.Cfg.UMSubmitPerUnit; dispatched != want {
			t.Errorf("wave dispatched after %v, want %v", dispatched, want)
		}
		for i, u := range units {
			if u.Desc.Name != descs[i].Name {
				t.Errorf("unit %d = %q, want %q (description order)", i, u.Desc.Name, descs[i].Name)
			}
			if st := u.WaitFinal(); st != UnitDone {
				t.Errorf("unit %s final state %v", u.Desc.Name, st)
			}
		}
		p.Cancel()
		p.WaitFinal()
	})
	if got := um.Waves(); got != 1 {
		t.Errorf("wave count = %d, want 1", got)
	}
}

// TestBatcherValidationFailsWholeWave pins the error contract: a
// malformed description fails its own wave before any unit is created,
// and leaves other waves untouched.
func TestBatcherValidationFailsWholeWave(t *testing.T) {
	v := vclock.NewVirtual()
	s := testSession(t, v)
	um := NewUnitManager(s)
	b := NewWaveBatcher(um)
	v.Run(func() {
		_, p := startPilot(t, s, 8)
		um.AddPilot(p)
		if _, err := b.Submit([]UnitDescription{sleepUnit("ok", 1), {Name: "bad"}}); err == nil {
			t.Error("malformed wave accepted")
		}
		units, err := b.Submit([]UnitDescription{sleepUnit("ok2", 1)})
		if err != nil {
			t.Fatal(err)
		}
		if st := units[0].WaitFinal(); st != UnitDone {
			t.Errorf("follow-up wave unit state %v", st)
		}
		p.Cancel()
		p.WaitFinal()
	})
	if got := um.Waves(); got != 1 {
		t.Errorf("wave count = %d, want 1 (failed wave must not bracket)", got)
	}
}
