package pilot

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/cluster"
	"entk/internal/profile"
	"entk/internal/saga"
	"entk/internal/vclock"
)

// PilotState is a compute pilot's lifecycle state.
type PilotState int

const (
	// PilotPending: placeholder job submitted, waiting in the batch queue.
	PilotPending PilotState = iota
	// PilotActive: allocation granted, agent booted, accepting units.
	PilotActive
	// PilotDone: completed (deallocated by the application).
	PilotDone
	// PilotCanceled: cancelled by the application.
	PilotCanceled
	// PilotFailed: terminated abnormally (typically walltime).
	PilotFailed
)

func (s PilotState) String() string {
	switch s {
	case PilotPending:
		return "PENDING"
	case PilotActive:
		return "ACTIVE"
	case PilotDone:
		return "DONE"
	case PilotCanceled:
		return "CANCELED"
	case PilotFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Final reports whether s is terminal.
func (s PilotState) Final() bool {
	return s == PilotDone || s == PilotCanceled || s == PilotFailed
}

// pilotStateEvents precomputes the profiler event name per state.
var pilotStateEvents = [...]string{
	PilotPending:  "state_PENDING",
	PilotActive:   "state_ACTIVE",
	PilotDone:     "state_DONE",
	PilotCanceled: "state_CANCELED",
	PilotFailed:   "state_FAILED",
}

// stateEvent returns the profiler event name for a transition into s.
func (s PilotState) stateEvent() string {
	if int(s) < len(pilotStateEvents) {
		return pilotStateEvents[s]
	}
	return "state_" + s.String()
}

// PilotDescription requests a placeholder allocation on one machine.
type PilotDescription struct {
	// Resource is the machine label, e.g. "xsede.comet".
	Resource string
	// Cores is the number of cores the pilot holds for unit scheduling.
	Cores int
	// Walltime bounds the allocation's lifetime.
	Walltime time.Duration
	// Queue and Project are passed through to the batch system.
	Queue   string
	Project string
	// Tags label the pilot for tag-affinity placement in multi-pilot
	// sets (e.g. "mpi", "gpu", "bigmem"). Purely advisory: only
	// placement policies read them.
	Tags []string
}

// Validate rejects malformed descriptions.
func (d *PilotDescription) Validate() error {
	switch {
	case d.Resource == "":
		return fmt.Errorf("pilot: description has no resource")
	case d.Cores <= 0:
		return fmt.Errorf("pilot: description requests %d cores", d.Cores)
	case d.Walltime <= 0:
		return fmt.Errorf("pilot: description has non-positive walltime")
	}
	return nil
}

// ComputePilot is a submitted placeholder job plus its agent.
type ComputePilot struct {
	ID   int
	Desc PilotDescription

	sess     *Session
	backend  *backend
	job      saga.Job
	agent    *agent
	entity   string           // cached profiler entity key
	entityID profile.EntityID // interned once; lifecycle records by id

	mu       sync.Mutex
	state    PilotState
	fault    error // injected-fault cause; nil for natural lifecycles
	activeEv *vclock.Event
	finalEv  *vclock.Event
}

// Kill terminates the pilot abnormally at the current instant — the
// fault-injection path. The placeholder job dies resource-side (no client
// network latency, unlike Cancel), the teardown watcher maps the death to
// FAILED, and with a recovery path installed the agent returns its
// backlog for rebinding instead of failing it. cause is retained for
// FaultCause.
func (p *ComputePilot) Kill(cause error) {
	p.mu.Lock()
	if p.fault == nil {
		p.fault = cause
	}
	p.mu.Unlock()
	p.job.Kill()
}

// FaultCause returns the injected-fault cause recorded by Kill, nil for
// pilots that died (or live) naturally.
func (p *ComputePilot) FaultCause() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fault
}

// CapacityCores reports the pilot's live capacity: the static allocation
// minus nodes lost to injected faults. Placement eligibility and agent
// admission both use it, so a shrunken pilot neither attracts nor wedges
// units it can no longer hold.
func (p *ComputePilot) CapacityCores() int { return p.agent.capacityCores() }

// SetRecovery installs the rebind path: fn receives the units displaced
// when the pilot dies (or a submission lands after its death) instead of
// those units failing with the stop cause. Installing it also turns on
// in-flight tracking, so running units can be stolen at teardown. Install
// before the pilot activates, or placements made earlier escape tracking.
func (p *ComputePilot) SetRecovery(fn func([]*ComputeUnit)) { p.agent.setRecovery(fn) }

// DrainPending withdraws and returns the pilot's live pending backlog
// without stopping it — the ResourceSet.DrainPilot path. Withdraw the
// pilot from unit scheduling first, or new work keeps arriving.
func (p *ComputePilot) DrainPending() []*ComputeUnit { return p.agent.drainPending() }

// Quiesced returns an event that fires once the pilot has no running
// unit. Arm it only after the pending backlog is drained and no more
// work will be dispatched here.
func (p *ComputePilot) Quiesced() *vclock.Event { return p.agent.quiesce() }

// Entity returns the pilot's profiler entity key.
func (p *ComputePilot) Entity() string { return p.entity }

// Machine returns the platform the pilot is allocated on — the data a
// placement policy needs to judge structural fit (node width for
// non-MPI units).
func (p *ComputePilot) Machine() *cluster.Machine { return p.backend.machine }

// Tags returns the pilot's affinity tags.
func (p *ComputePilot) Tags() []string { return p.Desc.Tags }

// FreeCores reports the agent's currently free cores — the late-binding
// signal free-core placement policies route by.
func (p *ComputePilot) FreeCores() int { return p.agent.freeCores() }

// Load reports the agent's backlog (queued plus running units), the
// signal behind least-loaded unit scheduling.
func (p *ComputePilot) Load() int { return p.agent.load() }

// UtilSnapshot is a point-in-time utilization counter of one pilot:
// how many units have executed on it and how many core-seconds of
// execution they consumed. Campaign reports diff two snapshots to
// compute per-pilot utilization over the campaign window.
type UtilSnapshot struct {
	// Units is the number of units that completed execution (successful
	// or not) on the pilot.
	Units int
	// CoreBusy is the cumulative execution time weighted by each unit's
	// core count (core-seconds of the allocation kept busy).
	CoreBusy time.Duration
}

// Sub returns the counter delta s - prev.
func (s UtilSnapshot) Sub(prev UtilSnapshot) UtilSnapshot {
	return UtilSnapshot{Units: s.Units - prev.Units, CoreBusy: s.CoreBusy - prev.CoreBusy}
}

// Util returns the pilot's cumulative utilization counters since
// activation.
func (p *ComputePilot) Util() UtilSnapshot { return p.agent.utilSnapshot() }

// State returns the pilot's current state.
func (p *ComputePilot) State() PilotState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// WaitActive blocks the calling process until the agent accepts units (or
// the pilot fails first; check State on return).
func (p *ComputePilot) WaitActive() { p.activeEv.Wait() }

// WaitFinal blocks until the pilot is terminal and returns that state.
func (p *ComputePilot) WaitFinal() PilotState {
	p.finalEv.Wait()
	return p.State()
}

// Cancel tears the pilot down: the placeholder job is cancelled and every
// queued unit fails. This is how ResourceHandle.Deallocate releases
// resources.
func (p *ComputePilot) Cancel() { p.job.Cancel() }

// QueueWait reports the batch queue wait as seen through the profiler;
// zero until the pilot activates. The query streams the pilot's own event
// column by pre-interned ids — no string matching.
func (p *ComputePilot) QueueWait() time.Duration {
	a, ok1 := p.sess.Prof.FirstID(p.entityID, p.sess.vocab.evSubmit)
	b, ok2 := p.sess.Prof.FirstID(p.entityID, p.sess.vocab.evJobRunning)
	if !ok1 || !ok2 {
		return 0
	}
	return b - a
}

// setState transitions the pilot unless already terminal.
func (p *ComputePilot) setState(st PilotState) {
	p.mu.Lock()
	if p.state.Final() {
		p.mu.Unlock()
		return
	}
	p.state = st
	p.mu.Unlock()
	p.sess.Prof.RecordID(p.entityID, p.sess.pilotStateName(st))
}

// PilotManager submits and tracks pilots (mirroring rp.PilotManager).
type PilotManager struct {
	sess *Session

	mu     sync.Mutex
	pilots []*ComputePilot
}

// NewPilotManager returns a pilot manager bound to the session.
func NewPilotManager(s *Session) *PilotManager {
	return &PilotManager{sess: s}
}

// Pilots returns the submitted pilots in submission order.
func (pm *PilotManager) Pilots() []*ComputePilot {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return append([]*ComputePilot(nil), pm.pilots...)
}

// Submit validates desc, submits the placeholder job through SAGA, and
// arranges for the agent to boot when the allocation starts. It must be
// called from a registered vclock process.
func (pm *PilotManager) Submit(desc PilotDescription) (*ComputePilot, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	be, err := pm.sess.backendFor(desc.Resource)
	if err != nil {
		return nil, err
	}
	if desc.Cores > be.machine.TotalCores() {
		return nil, fmt.Errorf("pilot: %d cores exceed %s capacity (%d)",
			desc.Cores, be.machine.Name, be.machine.TotalCores())
	}

	p := &ComputePilot{
		ID:      pm.sess.pilotID(),
		Desc:    desc,
		sess:    pm.sess,
		backend: be,
		state:   PilotPending,
	}
	p.entity = pilotEntity(p.ID)
	p.entityID = pm.sess.Prof.Intern(p.entity)
	p.activeEv = vclock.NewEvent(pm.sess.V, fmt.Sprintf("pilot %d active", p.ID))
	p.finalEv = vclock.NewEvent(pm.sess.V, fmt.Sprintf("pilot %d final", p.ID))
	p.agent = newAgent(p)

	pm.sess.Prof.RecordID(p.entityID, pm.sess.vocab.evSubmit)
	job, err := be.service.Submit(saga.JobDescription{
		Executable:    "radical-pilot-agent",
		Arguments:     []string{fmt.Sprintf("--pilot=%d", p.ID)},
		TotalCPUCount: desc.Cores,
		WallTimeLimit: desc.Walltime,
		Queue:         desc.Queue,
		Project:       desc.Project,
	})
	if err != nil {
		return nil, err
	}
	p.job = job

	pm.mu.Lock()
	pm.pilots = append(pm.pilots, p)
	pm.mu.Unlock()

	// Activation watcher: batch job starts -> agent bootstraps -> ACTIVE.
	pm.sess.V.Go(func() {
		job.WaitRunning()
		if job.State() != saga.Running {
			return // cancelled while queued; final watcher handles it
		}
		pm.sess.Prof.RecordID(p.entityID, pm.sess.vocab.evJobRunning)
		pm.sess.V.Sleep(be.machine.AgentBootTime)
		if job.State() != saga.Running {
			return
		}
		p.setState(PilotActive)
		pm.sess.Prof.RecordID(p.entityID, pm.sess.vocab.evActive)
		p.agent.start()
		p.activeEv.Fire()
	})

	// Teardown watcher: job reaches a final state -> agent stops, queued
	// units fail, waiters release. An injected fault (Kill) forces FAILED
	// whatever the job backend reported; with a recovery path installed
	// the agent's backlog is returned for rebinding instead of failed.
	pm.sess.V.Go(func() {
		st := job.WaitFinal()
		if p.FaultCause() != nil {
			st = saga.Failed
		}
		switch st {
		case saga.Done:
			p.setState(PilotDone)
		case saga.Canceled:
			p.setState(PilotCanceled)
		default:
			p.setState(PilotFailed)
		}
		pm.sess.Prof.RecordID(p.entityID, pm.sess.vocab.evFinal)
		cause := fmt.Errorf("pilot %d terminated (%v)", p.ID, p.State())
		if fc := p.FaultCause(); fc != nil {
			cause = fmt.Errorf("pilot %d terminated (%v): %w", p.ID, p.State(), fc)
		}
		if rec := p.agent.recovery(); rec != nil {
			if returned := p.agent.stopWithReturn(cause); len(returned) > 0 {
				rec(returned)
			}
		} else {
			p.agent.stop(cause)
		}
		p.activeEv.Fire() // release WaitActive callers on early death
		p.finalEv.Fire()
	})

	return p, nil
}
