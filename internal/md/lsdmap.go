package md

import (
	"errors"
	"fmt"
	"math"

	"entk/internal/linalg"
)

// LSDMapResult is the output of a diffusion-map analysis.
type LSDMapResult struct {
	// Eigenvalues of the diffusion operator, descending; the first is 1
	// (the stationary distribution).
	Eigenvalues []float64
	// Coords is the (npoints x k) matrix of diffusion coordinates: column
	// j is the (j+2)-th eigenvector scaled by its eigenvalue, the usual
	// embedding (the trivial first eigenvector is dropped).
	Coords *linalg.Matrix
}

// LSDMap computes a locally-scaled-style diffusion map of the sampled
// points (Preto & Clementi [2]): a Gaussian kernel with bandwidth epsilon,
// symmetric normalisation S = D^-1/2 W D^-1/2, eigendecomposition, and
// back-transformation to the eigenvectors of the Markov operator
// P = D^-1 W. k is the number of non-trivial diffusion coordinates
// returned.
func LSDMap(points *linalg.Matrix, epsilon float64, k int) (*LSDMapResult, error) {
	n := points.Rows
	if n < 3 {
		return nil, errors.New("md: lsdmap needs at least three points")
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("md: non-positive lsdmap bandwidth %g", epsilon)
	}
	if k < 1 || k >= n {
		return nil, fmt.Errorf("md: lsdmap wants %d coordinates of %d points", k, n)
	}

	// Gaussian kernel matrix.
	w := linalg.NewMatrix(n, n)
	inv := 1 / (2 * epsilon * epsilon)
	for i := 0; i < n; i++ {
		w.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			v := math.Exp(-linalg.SqDist(points.Row(i), points.Row(j)) * inv)
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}

	// Degrees and symmetric normalisation.
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += w.At(i, j)
		}
		if s <= 0 {
			return nil, errors.New("md: isolated point in lsdmap kernel")
		}
		d[i] = s
	}
	sym := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sym.Set(i, j, w.At(i, j)/math.Sqrt(d[i]*d[j]))
		}
	}

	eig, err := linalg.SymEigen(sym)
	if err != nil {
		return nil, err
	}

	// Eigenvectors of P = D^-1 W are psi = D^-1/2 v; drop the trivial
	// first pair (lambda ~ 1, psi ~ constant).
	res := &LSDMapResult{
		Eigenvalues: eig.Values[:k+1],
		Coords:      linalg.NewMatrix(n, k),
	}
	for j := 0; j < k; j++ {
		lambda := eig.Values[j+1]
		vec := eig.Vectors[j+1]
		for i := 0; i < n; i++ {
			res.Coords.Set(i, j, lambda*vec[i]/math.Sqrt(d[i]))
		}
	}
	return res, nil
}

// Subsample returns every stride-th row of m (at least one), the standard
// preprocessing before the O(n^2) diffusion-map kernel.
func Subsample(m *linalg.Matrix, stride int) (*linalg.Matrix, error) {
	if stride < 1 {
		return nil, fmt.Errorf("md: non-positive subsample stride %d", stride)
	}
	rows := (m.Rows + stride - 1) / stride
	out := linalg.NewMatrix(rows, m.Cols)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), m.Row(i*stride))
	}
	return out, nil
}
