package md

import (
	"errors"
	"fmt"
	"math"

	"entk/internal/linalg"
)

// CoCoResult is the output of one CoCo analysis pass.
type CoCoResult struct {
	// StartPoints are new simulation starting structures placed in the
	// least-sampled corners of the explored space.
	StartPoints [][]float64
	// Values are the variances (eigenvalues) along the principal
	// components used.
	Values []float64
	// Components are the principal axes (unit vectors).
	Components [][]float64
}

// CoCo implements the "complementary coordinates" analysis of Laughton et
// al. [1]: PCA over all sampled frames, then new start points pushed just
// beyond the extremes of the sampling along each retained component —
// enriching conformational coverage on the next SAL iteration.
//
// frames is the pooled (nframes x dim) sampling; nPCs is how many
// principal components to retain; nPoints how many new start points to
// return (cycling over PC extremes).
func CoCo(frames *linalg.Matrix, nPCs, nPoints int) (*CoCoResult, error) {
	if nPCs < 1 || nPCs > frames.Cols {
		return nil, fmt.Errorf("md: coco wants %d PCs of a %d-dim space", nPCs, frames.Cols)
	}
	if nPoints < 1 {
		return nil, errors.New("md: coco needs at least one output point")
	}
	if frames.Rows < 2 {
		return nil, errors.New("md: coco needs at least two frames")
	}
	cov, means, err := linalg.Covariance(frames)
	if err != nil {
		return nil, err
	}
	eig, err := linalg.SymEigen(cov)
	if err != nil {
		return nil, err
	}

	res := &CoCoResult{
		Values:     eig.Values[:nPCs],
		Components: eig.Vectors[:nPCs],
	}

	// Project every frame on the retained components; track extremes.
	minProj := make([]float64, nPCs)
	maxProj := make([]float64, nPCs)
	for k := 0; k < nPCs; k++ {
		minProj[k] = math.Inf(1)
		maxProj[k] = math.Inf(-1)
	}
	centered := make([]float64, frames.Cols)
	for i := 0; i < frames.Rows; i++ {
		row := frames.Row(i)
		for j := range centered {
			centered[j] = row[j] - means[j]
		}
		for k := 0; k < nPCs; k++ {
			p := linalg.Dot(centered, eig.Vectors[k])
			if p < minProj[k] {
				minProj[k] = p
			}
			if p > maxProj[k] {
				maxProj[k] = p
			}
		}
	}

	// Place new start points a 10% margin beyond alternating extremes:
	// point 2k sits past the max of PC (k mod nPCs), point 2k+1 past its
	// min — the "fill the corners" heuristic of CoCo.
	for n := 0; n < nPoints; n++ {
		k := (n / 2) % nPCs
		span := maxProj[k] - minProj[k]
		margin := 0.1 * span
		var target float64
		if n%2 == 0 {
			target = maxProj[k] + margin
		} else {
			target = minProj[k] - margin
		}
		pt := make([]float64, frames.Cols)
		copy(pt, means)
		linalg.AXPY(target, eig.Vectors[k], pt)
		res.StartPoints = append(res.StartPoints, pt)
	}
	return res, nil
}
