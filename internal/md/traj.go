package md

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"entk/internal/linalg"
)

// System describes the simulated molecular system. The paper's experiments
// use solvated alanine dipeptide with 2881 atoms.
type System struct {
	Name  string
	Atoms int
	// Dim is the dimensionality of the reduced configuration space the
	// synthetic integrator samples (collective-coordinate space).
	Dim int
}

// AlanineDipeptide is the paper's benchmark system.
var AlanineDipeptide = System{Name: "alanine-dipeptide (solvated)", Atoms: 2881, Dim: 3}

// doubleWellGrad returns the gradient of the model potential
// U(x) = (x0^2-1)^2 + 0.5 * sum_{k>0} xk^2 — a double well along the
// first coordinate with harmonic restraints elsewhere. Two metastable
// basins at x0 = ±1 give the analysis algorithms something real to find.
func doubleWellGrad(x []float64, grad []float64) {
	grad[0] = 4 * x[0] * (x[0]*x[0] - 1)
	for k := 1; k < len(x); k++ {
		grad[k] = x[k]
	}
}

// Trajectory integrates overdamped Langevin dynamics on the double-well
// potential for the given number of frames at temperature tempK, starting
// from start (copied). It returns a frames x dim matrix. The RNG makes it
// deterministic per seed; temperature scales the noise so hot replicas
// cross the barrier more often, as in real REMD.
func Trajectory(sys System, start []float64, frames int, tempK float64, seed int64) (*linalg.Matrix, error) {
	if frames < 1 {
		return nil, errors.New("md: trajectory needs at least one frame")
	}
	if tempK <= 0 {
		return nil, fmt.Errorf("md: non-positive temperature %g", tempK)
	}
	if len(start) != sys.Dim {
		return nil, fmt.Errorf("md: start point has dim %d, system has %d", len(start), sys.Dim)
	}
	rng := rand.New(rand.NewSource(seed))
	const dt = 0.05
	// Noise amplitude from the fluctuation-dissipation relation,
	// normalised so room temperature gives moderate barrier crossing.
	amp := math.Sqrt(2 * dt * tempK / 300.0)
	x := append([]float64(nil), start...)
	grad := make([]float64, sys.Dim)
	out := linalg.NewMatrix(frames, sys.Dim)
	for f := 0; f < frames; f++ {
		doubleWellGrad(x, grad)
		for k := range x {
			x[k] += -dt*grad[k] + amp*rng.NormFloat64()
		}
		copy(out.Row(f), x)
	}
	return out, nil
}

// Concat stacks trajectories (equal column counts) into one matrix of all
// frames, the input shape both analysis algorithms expect.
func Concat(trajs []*linalg.Matrix) (*linalg.Matrix, error) {
	if len(trajs) == 0 {
		return nil, errors.New("md: no trajectories to concatenate")
	}
	cols := trajs[0].Cols
	rows := 0
	for _, t := range trajs {
		if t.Cols != cols {
			return nil, fmt.Errorf("md: trajectory dim mismatch: %d vs %d", t.Cols, cols)
		}
		rows += t.Rows
	}
	out := linalg.NewMatrix(rows, cols)
	r := 0
	for _, t := range trajs {
		copy(out.Data[r*cols:], t.Data)
		r += t.Rows
	}
	return out, nil
}

// BasinFractions reports the fraction of frames in the left (x0 < 0) and
// right (x0 >= 0) wells — a simple sampling-quality metric used by the
// examples to show CoCo-directed restarts improving coverage.
func BasinFractions(frames *linalg.Matrix) (left, right float64) {
	if frames.Rows == 0 {
		return 0, 0
	}
	var l int
	for i := 0; i < frames.Rows; i++ {
		if frames.At(i, 0) < 0 {
			l++
		}
	}
	left = float64(l) / float64(frames.Rows)
	return left, 1 - left
}
