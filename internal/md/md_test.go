package md

import (
	"math"
	"testing"
	"testing/quick"

	"entk/internal/linalg"
)

func TestTemperatureLadder(t *testing.T) {
	l, err := TemperatureLadder(4, 300, 2400)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{300, 600, 1200, 2400}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-9 {
			t.Errorf("ladder[%d] = %v, want %v", i, l[i], want[i])
		}
	}
	if single, err := TemperatureLadder(1, 300, 400); err != nil || single[0] != 300 {
		t.Errorf("single-rung ladder = %v, %v", single, err)
	}
	for _, bad := range []struct {
		n          int
		tmin, tmax float64
	}{{0, 300, 400}, {3, -1, 400}, {3, 400, 300}} {
		if _, err := TemperatureLadder(bad.n, bad.tmin, bad.tmax); err == nil {
			t.Errorf("ladder(%v) accepted", bad)
		}
	}
}

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(4, 300, 600, 0, 1); err == nil {
		t.Error("zero atoms accepted")
	}
	if _, err := NewEnsemble(0, 300, 600, 100, 1); err == nil {
		t.Error("zero replicas accepted")
	}
}

func TestEnsembleDeterministicPerSeed(t *testing.T) {
	a, _ := NewEnsemble(8, 300, 600, 2881, 42)
	b, _ := NewEnsemble(8, 300, 600, 2881, 42)
	for i := range a.Replicas {
		if a.Replicas[i].Energy != b.Replicas[i].Energy {
			t.Fatal("same seed produced different energies")
		}
	}
	c, _ := NewEnsemble(8, 300, 600, 2881, 43)
	same := true
	for i := range a.Replicas {
		if a.Replicas[i].Energy != c.Replicas[i].Energy {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical energies")
	}
}

func TestMetropolisAlwaysAcceptsFavourable(t *testing.T) {
	e, _ := NewEnsemble(2, 300, 600, 100, 1)
	cold, hot := e.Replicas[0], e.Replicas[1]
	// Hot replica found a lower energy than cold: delta <= 0, always swap.
	cold.Energy = 0
	hot.Energy = -1000
	for i := 0; i < 50; i++ {
		if !e.MetropolisAccept(cold, hot) {
			t.Fatal("favourable swap rejected")
		}
	}
}

func TestExchangeSweepSwapsTemperaturesNotIDs(t *testing.T) {
	e, _ := NewEnsemble(8, 300, 600, 2881, 7)
	ladder := e.Temperatures()
	var total int
	for cycle := 0; cycle < 50; cycle++ {
		e.SampleEnergies()
		total += len(e.ExchangeSweep(cycle))
		// Multiset of temperatures is invariant.
		got := e.Temperatures()
		sorted := append([]float64(nil), got...)
		ref := append([]float64(nil), ladder...)
		for i := 1; i < len(sorted); i++ {
			for k := i; k > 0 && sorted[k] < sorted[k-1]; k-- {
				sorted[k], sorted[k-1] = sorted[k-1], sorted[k]
			}
		}
		for i := range ref {
			if math.Abs(sorted[i]-ref[i]) > 1e-9 {
				t.Fatalf("cycle %d: temperature multiset changed", cycle)
			}
		}
	}
	if total == 0 {
		t.Fatal("no exchange accepted in 50 sweeps (acceptance model broken)")
	}
	ar := e.AcceptanceRatio()
	if ar <= 0 || ar > 1 {
		t.Fatalf("acceptance ratio %v out of (0,1]", ar)
	}
}

func TestAcceptanceRatioZeroBeforeAttempts(t *testing.T) {
	e, _ := NewEnsemble(4, 300, 600, 100, 1)
	if e.AcceptanceRatio() != 0 {
		t.Error("acceptance ratio nonzero before any sweep")
	}
}

func TestTrajectoryShapeAndValidation(t *testing.T) {
	sys := AlanineDipeptide
	start := make([]float64, sys.Dim)
	start[0] = -1
	tr, err := Trajectory(sys, start, 100, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows != 100 || tr.Cols != sys.Dim {
		t.Fatalf("trajectory %dx%d, want 100x%d", tr.Rows, tr.Cols, sys.Dim)
	}
	if _, err := Trajectory(sys, start, 0, 300, 1); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := Trajectory(sys, start, 10, -5, 1); err == nil {
		t.Error("negative temperature accepted")
	}
	if _, err := Trajectory(sys, []float64{1}, 10, 300, 1); err == nil {
		t.Error("wrong-dim start accepted")
	}
}

func TestTrajectoryColdStaysInBasin(t *testing.T) {
	sys := AlanineDipeptide
	start := []float64{-1, 0, 0}
	tr, err := Trajectory(sys, start, 2000, 30, 5) // very cold
	if err != nil {
		t.Fatal(err)
	}
	left, right := BasinFractions(tr)
	if left < 0.95 {
		t.Errorf("cold trajectory escaped its basin: left=%v right=%v", left, right)
	}
}

func TestTrajectoryHotCrossesBarrier(t *testing.T) {
	sys := AlanineDipeptide
	start := []float64{-1, 0, 0}
	tr, err := Trajectory(sys, start, 5000, 1200, 5) // hot
	if err != nil {
		t.Fatal(err)
	}
	left, right := BasinFractions(tr)
	if left == 0 || right == 0 {
		t.Errorf("hot trajectory never crossed: left=%v right=%v", left, right)
	}
}

func TestConcat(t *testing.T) {
	a := linalg.NewMatrix(2, 3)
	b := linalg.NewMatrix(3, 3)
	b.Set(2, 2, 9)
	c, err := Concat([]*linalg.Matrix{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 5 || c.Cols != 3 || c.At(4, 2) != 9 {
		t.Fatalf("concat %dx%d, at(4,2)=%v", c.Rows, c.Cols, c.At(4, 2))
	}
	if _, err := Concat(nil); err == nil {
		t.Error("empty concat accepted")
	}
	d := linalg.NewMatrix(1, 2)
	if _, err := Concat([]*linalg.Matrix{a, d}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestBasinFractionsEmpty(t *testing.T) {
	l, r := BasinFractions(&linalg.Matrix{Rows: 0, Cols: 3})
	if l != 0 || r != 0 {
		t.Error("empty frames gave nonzero fractions")
	}
}

func TestCoCoFindsDominantDirection(t *testing.T) {
	// Points spread along the first axis only: PC1 must be ±e1 and the
	// new start points must extend beyond the sampled extremes.
	n := 50
	frames := linalg.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		frames.Set(i, 0, float64(i)/float64(n-1)*4-2) // [-2, 2]
		frames.Set(i, 1, 0.01*float64(i%3))
	}
	res, err := CoCo(frames, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc := res.Components[0]
	if math.Abs(math.Abs(pc[0])-1) > 1e-6 {
		t.Fatalf("PC1 = %v, want ±e1", pc)
	}
	if len(res.StartPoints) != 2 {
		t.Fatalf("%d start points, want 2", len(res.StartPoints))
	}
	// One point beyond +2, one beyond -2 along x.
	var hi, lo bool
	for _, p := range res.StartPoints {
		if p[0] > 2 {
			hi = true
		}
		if p[0] < -2 {
			lo = true
		}
	}
	if !hi || !lo {
		t.Fatalf("start points %v do not extend both extremes", res.StartPoints)
	}
}

func TestCoCoValidation(t *testing.T) {
	frames := linalg.NewMatrix(10, 3)
	if _, err := CoCo(frames, 0, 1); err == nil {
		t.Error("zero PCs accepted")
	}
	if _, err := CoCo(frames, 4, 1); err == nil {
		t.Error("too many PCs accepted")
	}
	if _, err := CoCo(frames, 1, 0); err == nil {
		t.Error("zero points accepted")
	}
	if _, err := CoCo(linalg.NewMatrix(1, 3), 1, 1); err == nil {
		t.Error("single frame accepted")
	}
}

func TestLSDMapSeparatesClusters(t *testing.T) {
	// Two clusters, weakly connected through the kernel (so the spectrum
	// is non-degenerate): the first diffusion coordinate must separate
	// them by sign.
	n := 20
	pts := linalg.NewMatrix(2*n, 2)
	for i := 0; i < n; i++ {
		pts.Set(i, 0, -1.5+0.1*float64(i%5))
		pts.Set(i, 1, 0.1*float64(i%3))
		pts.Set(n+i, 0, 1.5+0.1*float64(i%5))
		pts.Set(n+i, 1, 0.1*float64(i%3))
	}
	res, err := LSDMap(pts, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalues[0]-1) > 1e-6 {
		t.Errorf("top eigenvalue = %v, want 1", res.Eigenvalues[0])
	}
	// Check sign separation on coordinate 1.
	signA := res.Coords.At(0, 0) > 0
	for i := 1; i < n; i++ {
		if (res.Coords.At(i, 0) > 0) != signA {
			t.Fatal("cluster A not sign-consistent in psi1")
		}
	}
	for i := n; i < 2*n; i++ {
		if (res.Coords.At(i, 0) > 0) == signA {
			t.Fatal("clusters A and B not separated by psi1")
		}
	}
}

func TestLSDMapValidation(t *testing.T) {
	pts := linalg.NewMatrix(10, 2)
	if _, err := LSDMap(pts, 0, 2); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := LSDMap(pts, 1, 0); err == nil {
		t.Error("zero coords accepted")
	}
	if _, err := LSDMap(pts, 1, 10); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := LSDMap(linalg.NewMatrix(2, 2), 1, 1); err == nil {
		t.Error("two points accepted")
	}
}

func TestSubsample(t *testing.T) {
	m := linalg.NewMatrix(10, 2)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, float64(i))
	}
	s, err := Subsample(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 4 || s.At(3, 0) != 9 {
		t.Fatalf("subsample rows=%d last=%v", s.Rows, s.At(3, 0))
	}
	if _, err := Subsample(m, 0); err == nil {
		t.Error("zero stride accepted")
	}
}

// Property: Metropolis acceptance respects detailed-balance symmetry: a
// swap that lowers "effective action" is always accepted, and acceptance
// is monotone in the energy gap sign.
func TestPropertyMetropolisFavourable(t *testing.T) {
	f := func(seed int64, gap uint16) bool {
		e, err := NewEnsemble(2, 300, 600, 100, seed)
		if err != nil {
			return false
		}
		cold, hot := e.Replicas[0], e.Replicas[1]
		cold.Energy = 100
		hot.Energy = cold.Energy - float64(gap) // hot found lower energy
		return e.MetropolisAccept(cold, hot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: trajectories are reproducible per seed.
func TestPropertyTrajectoryDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		start := []float64{-1, 0, 0}
		a, err1 := Trajectory(AlanineDipeptide, start, 50, 300, seed)
		b, err2 := Trajectory(AlanineDipeptide, start, 50, 300, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
