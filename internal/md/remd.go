// Package md implements the molecular-science substrate behind the
// paper's workloads: temperature replica exchange (the EE pattern's
// exchange logic), a synthetic MD trajectory generator on a double-well
// potential, and the two analysis algorithms of the SAL experiments —
// CoCo (PCA-based collective coordinates) and LSDMap (diffusion maps).
// The numerics are real; only the force-field evaluation is synthetic.
package md

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// KB is the Boltzmann constant in kcal/(mol*K), the conventional MD unit.
const KB = 0.0019872041

// Replica is one member of a temperature-exchange ensemble.
type Replica struct {
	// ID is stable across exchanges; temperatures move between replicas.
	ID int
	// Temp is the current temperature in Kelvin.
	Temp float64
	// Energy is the latest sampled potential energy in kcal/mol.
	Energy float64
}

// TemperatureLadder returns n temperatures from tmin to tmax spaced
// geometrically, the standard REMD ladder giving near-uniform acceptance
// between neighbours.
func TemperatureLadder(n int, tmin, tmax float64) ([]float64, error) {
	if n < 1 {
		return nil, errors.New("md: ladder needs at least one rung")
	}
	if tmin <= 0 || tmax < tmin {
		return nil, fmt.Errorf("md: invalid temperature range [%g, %g]", tmin, tmax)
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = tmin
		return out, nil
	}
	ratio := math.Pow(tmax/tmin, 1/float64(n-1))
	t := tmin
	for i := range out {
		out[i] = t
		t *= ratio
	}
	return out, nil
}

// Ensemble is a replica-exchange ensemble with a deterministic RNG so
// simulations are reproducible for a given seed.
type Ensemble struct {
	Replicas []*Replica
	rng      *rand.Rand
	// Atoms scales the energy model (extensive quantity).
	Atoms int
	// attempts and accepts track exchange statistics.
	attempts int
	accepts  int
}

// NewEnsemble creates n replicas on a geometric ladder between tmin and
// tmax for a system of the given atom count.
func NewEnsemble(n int, tmin, tmax float64, atoms int, seed int64) (*Ensemble, error) {
	ladder, err := TemperatureLadder(n, tmin, tmax)
	if err != nil {
		return nil, err
	}
	if atoms < 1 {
		return nil, fmt.Errorf("md: ensemble with %d atoms", atoms)
	}
	e := &Ensemble{rng: rand.New(rand.NewSource(seed)), Atoms: atoms}
	for i, t := range ladder {
		e.Replicas = append(e.Replicas, &Replica{ID: i, Temp: t})
	}
	e.SampleEnergies()
	return e, nil
}

// SampleEnergies draws a fresh potential energy for every replica from the
// model E(T) ~ N(E0 + cv*T, sigma(T)): equipartition-style mean growth
// with T and thermal fluctuations growing with T. It stands in for running
// the MD engine for one cycle.
func (e *Ensemble) SampleEnergies() {
	n := float64(e.Atoms)
	for _, r := range e.Replicas {
		mean := -80*n + 3*KB*r.Temp*n // baseline + 3NkT "kinetic-like" term
		sigma := math.Sqrt(3*n) * KB * r.Temp * 10
		r.Energy = mean + e.rng.NormFloat64()*sigma
	}
}

// MetropolisAccept decides a temperature swap between replicas i and j per
// the REMD criterion: Delta = (1/kTi - 1/kTj)(Ej - Ei); accept with
// probability min(1, exp(-Delta)).
func (e *Ensemble) MetropolisAccept(ri, rj *Replica) bool {
	delta := (1/(KB*ri.Temp) - 1/(KB*rj.Temp)) * (rj.Energy - ri.Energy)
	if delta <= 0 {
		return true
	}
	return e.rng.Float64() < math.Exp(-delta)
}

// Swap records one accepted exchange between two replica IDs.
type Swap struct {
	A, B int
}

// ExchangeSweep attempts temperature swaps between ladder neighbours,
// alternating pair parity by cycle as in standard REMD (cycle 0 pairs
// rungs (0,1),(2,3),..., cycle 1 pairs (1,2),(3,4),...). Accepted pairs
// trade temperatures. It returns the accepted swaps.
func (e *Ensemble) ExchangeSweep(cycle int) []Swap {
	// Order replicas by current temperature to find ladder neighbours.
	order := make([]*Replica, len(e.Replicas))
	copy(order, e.Replicas)
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && order[k].Temp < order[k-1].Temp; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	var swaps []Swap
	start := cycle % 2
	for i := start; i+1 < len(order); i += 2 {
		ri, rj := order[i], order[i+1]
		e.attempts++
		if e.MetropolisAccept(ri, rj) {
			e.accepts++
			ri.Temp, rj.Temp = rj.Temp, ri.Temp
			swaps = append(swaps, Swap{A: ri.ID, B: rj.ID})
		}
	}
	return swaps
}

// AcceptanceRatio returns accepted/attempted exchanges so far (0 if none).
func (e *Ensemble) AcceptanceRatio() float64 {
	if e.attempts == 0 {
		return 0
	}
	return float64(e.accepts) / float64(e.attempts)
}

// Temperatures returns the current temperature of each replica by ID.
func (e *Ensemble) Temperatures() []float64 {
	out := make([]float64, len(e.Replicas))
	for _, r := range e.Replicas {
		out[r.ID] = r.Temp
	}
	return out
}
