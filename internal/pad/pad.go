// Package pad provides zero-padded integer formatting without fmt. It
// exists because entity keys and task names are built once per simulated
// task, which puts their formatting on the hottest allocation path in
// the tree.
package pad

// Int renders n in decimal, left-padded with zeros to at least width
// digits (wider values keep all their digits; negatives render as 0).
func Int(n, width int) string {
	var buf [20]byte
	i := len(buf)
	if n < 0 {
		n = 0
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	for len(buf)-i < width {
		i--
		buf[i] = '0'
	}
	return string(buf[i:])
}
