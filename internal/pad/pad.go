// Package pad provides zero-padded integer formatting without fmt and
// cache-line padding for striped concurrent structures. It exists because
// entity keys and task names are built once per simulated task, which puts
// their formatting on the hottest allocation path in the tree, and because
// the engine's striped tables (vclock blocked tracking, profiler stripes)
// are hammered by many cores at once, where false sharing between adjacent
// stripes costs more than the work they guard.
package pad

// LineSize is the assumed cache-line size in bytes. 64 is correct for
// every x86-64 part and for the vast majority of arm64 server parts; a
// too-small value costs false sharing, a too-large value costs only a few
// bytes per stripe, so the common value is baked in rather than probed.
const LineSize = 64

// Line is cache-line-sized padding. Embed one after each element of a
// striped array so that stripes hit distinct cache lines:
//
//	type stripe struct {
//		mu sync.Mutex
//		m  map[K]V
//		_  pad.Line
//	}
type Line [LineSize]byte

// Int renders n in decimal, left-padded with zeros to at least width
// digits (wider values keep all their digits; negatives render as 0).
func Int(n, width int) string {
	var buf [20]byte
	i := len(buf)
	if n < 0 {
		n = 0
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	for len(buf)-i < width {
		i--
		buf[i] = '0'
	}
	return string(buf[i:])
}
