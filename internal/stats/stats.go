// Package stats provides the small set of descriptive statistics and
// regression helpers used by the experiment harness to characterise
// scaling behaviour (means, linear fits, speedup/efficiency).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// LinearFit fits y = slope*x + intercept by least squares and also returns
// the coefficient of determination r2. It requires len(x) == len(y) >= 2
// and at least two distinct x values.
func LinearFit(x, y []float64) (slope, intercept, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: mismatched sample lengths")
	}
	if len(x) < 2 {
		return 0, 0, 0, errors.New("stats: need at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: x values are all identical")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		// y is constant: a horizontal fit explains everything.
		return slope, intercept, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2, nil
}

// LogLogSlope fits log(y) = a*log(x) + b and returns a. A slope of -1
// indicates ideal strong scaling (time halves when resources double); a
// slope of +1 indicates cost growing linearly with x. All inputs must be
// positive.
func LogLogSlope(x, y []float64) (float64, error) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || i >= len(y) || y[i] <= 0 {
			return 0, errors.New("stats: log-log fit requires positive values")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _, _, err := LinearFit(lx, ly)
	return slope, err
}

// Speedup returns baseline/t for each element of times; baseline is
// typically the time at the smallest resource count.
func Speedup(baseline float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = baseline / t
		}
	}
	return out
}

// Efficiency returns speedup normalised by the resource ratio: eff[i] =
// (baseline/t[i]) / (res[i]/res[0]). Perfect strong scaling gives 1.0
// everywhere.
func Efficiency(res, times []float64) ([]float64, error) {
	if len(res) != len(times) || len(res) == 0 {
		return nil, errors.New("stats: efficiency needs matching non-empty slices")
	}
	out := make([]float64, len(times))
	for i := range times {
		if times[i] <= 0 || res[i] <= 0 || res[0] <= 0 {
			return nil, errors.New("stats: efficiency requires positive values")
		}
		out[i] = (times[0] / times[i]) / (res[i] / res[0])
	}
	return out, nil
}

// RelSpread returns (max-min)/mean, a scale-free measure of how "flat" a
// series is. Weak-scaling checks assert a small relative spread.
func RelSpread(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	m := Mean(xs)
	if m == 0 {
		return 0, errors.New("stats: zero mean")
	}
	return (mx - mn) / m, nil
}
