package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != 1 {
		t.Errorf("Min = %v,%v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v,%v", mx, err)
	}
	md, err := Median(xs)
	if err != nil || md != 3 {
		t.Errorf("Median = %v,%v", md, err)
	}
	md, err = Median([]float64{1, 2, 3, 4})
	if err != nil || md != 2.5 {
		t.Errorf("even Median = %v,%v", md, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Errorf("Median(nil) err = %v, want ErrEmpty", err)
	}
	// Median must not mutate its input.
	orig := []float64{3, 1, 2}
	Median(orig)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Median mutated input: %v", orig)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slope, 2, 1e-12) || !almost(intercept, 3, 1e-12) || !almost(r2, 1, 1e-12) {
		t.Errorf("fit = %v,%v,%v", slope, intercept, r2)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	slope, intercept, r2, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if slope != 0 || intercept != 4 || r2 != 1 {
		t.Errorf("constant fit = %v,%v,%v", slope, intercept, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLogLogSlopeIdealStrongScaling(t *testing.T) {
	cores := []float64{64, 128, 256, 512, 1024}
	times := make([]float64, len(cores))
	for i, c := range cores {
		times[i] = 1e6 / c
	}
	s, err := LogLogSlope(cores, times)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s, -1, 1e-9) {
		t.Errorf("slope = %v, want -1", s)
	}
	if _, err := LogLogSlope([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Error("non-positive x accepted")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	res := []float64{1, 2, 4}
	times := []float64{100, 50, 25}
	sp := Speedup(times[0], times)
	if sp[0] != 1 || sp[1] != 2 || sp[2] != 4 {
		t.Errorf("speedup = %v", sp)
	}
	eff, err := Efficiency(res, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range eff {
		if !almost(e, 1, 1e-12) {
			t.Errorf("eff[%d] = %v, want 1", i, e)
		}
	}
	if _, err := Efficiency(res, times[:2]); err == nil {
		t.Error("mismatched efficiency inputs accepted")
	}
	if _, err := Efficiency([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("zero time accepted")
	}
}

func TestRelSpread(t *testing.T) {
	got, err := RelSpread([]float64{10, 10, 10})
	if err != nil || got != 0 {
		t.Errorf("flat spread = %v,%v", got, err)
	}
	got, err = RelSpread([]float64{9, 11})
	if err != nil || !almost(got, 0.2, 1e-12) {
		t.Errorf("spread = %v,%v, want 0.2", got, err)
	}
	if _, err := RelSpread(nil); err != ErrEmpty {
		t.Errorf("RelSpread(nil) err = %v", err)
	}
	if _, err := RelSpread([]float64{-1, 1}); err == nil {
		t.Error("zero-mean spread accepted")
	}
}

// Property: mean lies within [min, max]; variance is non-negative.
func TestPropertyMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-9 && m <= mx+1e-9 && Variance(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers slope/intercept exactly on noiseless lines.
func TestPropertyLinearFitRecovers(t *testing.T) {
	f := func(a, b int8, n uint8) bool {
		k := int(n%16) + 2
		slope := float64(a)
		intercept := float64(b)
		x := make([]float64, k)
		y := make([]float64, k)
		for i := 0; i < k; i++ {
			x[i] = float64(i)
			y[i] = slope*x[i] + intercept
		}
		gs, gi, _, err := LinearFit(x, y)
		return err == nil && almost(gs, slope, 1e-6) && almost(gi, intercept, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
