// Golden traces: a recorded run's full event trace, persisted with
// profile.WriteTo, becomes a regression fixture. A later run is
// checked by comparing per-entity event sequences — sorted by (T,
// Name) within each entity, so equal-instant recording interleavings
// don't register — and a divergence renders both timelines side by
// side with the first differing event marked.

package campaign

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"entk/internal/profile"
	"entk/internal/vclock"
)

// WriteGolden persists a run's trace as a golden fixture.
func WriteGolden(path string, p *profile.Profiler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := p.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("campaign: writing golden %s: %w", path, err)
	}
	return f.Close()
}

// LoadGolden reads a golden fixture back into a fresh profiler.
func LoadGolden(path string) (*profile.Profiler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p := profile.New(vclock.NewVirtual())
	if _, err := p.ReadFrom(f); err != nil {
		return nil, fmt.Errorf("campaign: reading golden %s: %w", path, err)
	}
	return p, nil
}

// EntityDiff is one entity whose event sequence diverges between a run
// and its golden.
type EntityDiff struct {
	// Entity is the diverging entity ("" never occurs; an entity
	// present on only one side still diffs under its name).
	Entity string
	// Index is the position (in the (T, Name)-sorted sequence) of the
	// first differing event.
	Index int
	// Got and Want are the (T, Name)-sorted sequences on each side.
	Got, Want []profile.Event
}

// DiffTraces compares two traces entity by entity and returns one diff
// per diverging entity, sorted by entity name. Empty means the traces
// agree event-for-event on every entity.
func DiffTraces(got, want *profile.Profiler) []EntityDiff {
	g := entityEvents(got, "")
	w := entityEvents(want, "")
	names := map[string]bool{}
	for e := range g {
		names[e] = true
	}
	for e := range w {
		names[e] = true
	}
	var diffs []EntityDiff
	for e := range names {
		ge, we := g[e], w[e]
		if i, same := firstDivergence(ge, we); !same {
			diffs = append(diffs, EntityDiff{Entity: e, Index: i, Got: ge, Want: we})
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Entity < diffs[j].Entity })
	return diffs
}

// firstDivergence finds the first index where the sequences disagree;
// same is true when they match in full.
func firstDivergence(a, b []profile.Event) (int, bool) {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i].T != b[i].T || a[i].Name != b[i].Name {
			return i, false
		}
	}
	if len(a) != len(b) {
		return n, false
	}
	return 0, true
}

// diffContext is how many matching events are shown on each side of
// the first divergence when rendering.
const diffContext = 3

// RenderDiffs renders entity diffs as side-by-side virtual-time
// timelines, the first divergent row marked with "!". At most maxEnts
// entities are rendered in full; the rest are summarised by name so a
// wholesale divergence doesn't scroll for pages.
func RenderDiffs(diffs []EntityDiff, maxEnts int) string {
	var b strings.Builder
	for i, d := range diffs {
		if i >= maxEnts {
			rest := make([]string, 0, len(diffs)-i)
			for _, r := range diffs[i:] {
				rest = append(rest, r.Entity)
			}
			fmt.Fprintf(&b, "... and %d more diverging entities: %s\n",
				len(rest), strings.Join(rest, ", "))
			break
		}
		fmt.Fprintf(&b, "entity %s diverges at event %d:\n", d.Entity, d.Index)
		lo := d.Index - diffContext
		if lo < 0 {
			lo = 0
		}
		hi := d.Index + diffContext + 1
		fmt.Fprintf(&b, "  %-36s %s\n", "got", "want")
		for row := lo; row < hi; row++ {
			gs, ws := eventAt(d.Got, row), eventAt(d.Want, row)
			if gs == "" && ws == "" {
				break
			}
			marker := " "
			if row == d.Index {
				marker = "!"
			}
			fmt.Fprintf(&b, "%s %-36s %s\n", marker, gs, ws)
		}
	}
	return b.String()
}

func eventAt(evs []profile.Event, i int) string {
	if i < 0 || i >= len(evs) {
		return ""
	}
	return fmt.Sprintf("%12v %s", evs[i].T, evs[i].Name)
}
