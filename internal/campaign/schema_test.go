package campaign

import (
	"strings"
	"testing"
)

// validGraphJSON is a well-formed multi-pilot graph campaign used
// across the schema tests.
const validGraphJSON = `{
  "name": "md-sweep",
  "resources": [
    {"resource": "xsede.comet", "cores": 48, "walltime_min": 120},
    {"resource": "xsede.stampede", "cores": 64, "walltime_min": 120, "tags": ["mpi"]}
  ],
  "placement": "tag_affinity",
  "runtime": {"max_retries": 1},
  "pipelines": [
    {"name": "md", "stages": [
      {"name": "sim", "streamed": true, "tasks": [
        {"name": "eq", "count": 4, "retries": 2,
         "kernel": {"name": "misc.sleep", "params": {"seconds": 5}}}
      ]},
      {"name": "ana", "tasks": [
        {"kernel": {"name": "misc.ccount", "params": {"size_mb": 10}, "cores": 2, "mpi": true, "tags": ["mpi"]}}
      ]}
    ]}
  ]
}`

func TestParseGraphCampaign(t *testing.T) {
	c, err := Parse(strings.NewReader(validGraphJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Resources) != 2 || c.Placement != "tag_affinity" {
		t.Errorf("resources/placement = %d/%q", len(c.Resources), c.Placement)
	}
	if c.Name != "md-sweep" {
		t.Errorf("name = %q, want md-sweep", c.Name)
	}
	pls := c.GraphPipelines()
	if len(pls) != 1 || pls[0].Name != "md" || len(pls[0].Stages) != 2 {
		t.Fatalf("compiled shape wrong: %+v", pls)
	}
	sim := pls[0].Stages[0]
	if !sim.Streamed || len(sim.Tasks) != 4 {
		t.Errorf("sim stage: streamed=%v tasks=%d, want true/4 (count expansion)",
			sim.Streamed, len(sim.Tasks))
	}
	if sim.Tasks[0].Name != "eq.0001" || sim.Tasks[3].Name != "eq.0004" {
		t.Errorf("replica names = %q..%q", sim.Tasks[0].Name, sim.Tasks[3].Name)
	}
	if sim.Tasks[1].Retries != 2 || sim.Tasks[1].Kernel.Params["seconds"] != 5 {
		t.Errorf("task attrs lost: %+v", sim.Tasks[1])
	}
	if sim.Tasks[0].Kernel == sim.Tasks[1].Kernel {
		t.Error("replicas share one kernel value")
	}
	ana := pls[0].Stages[1].Tasks[0].Kernel
	if ana.Cores != 2 || !ana.MPI || len(ana.Tags) != 1 {
		t.Errorf("kernel attrs lost: %+v", ana)
	}
	specs := c.Specs()
	if len(specs) != 2 || specs[1].Tags[0] != "mpi" {
		t.Errorf("specs = %+v", specs)
	}
	if c.PlacementPolicy() == nil {
		t.Error("tag_affinity compiled to nil policy")
	}
}

func TestParseLegacyCampaign(t *testing.T) {
	const legacy = `{
	  "resource": "xsede.comet",
	  "cores": 48,
	  "walltime_min": 120,
	  "pattern": {
	    "type": "eop",
	    "pipelines": 8,
	    "stages": [
	      {"name": "misc.mkfile", "params": {"size_mb": 10}},
	      {"name": "misc.ccount", "params": {"size_mb": 10}}
	    ]
	  }
	}`
	c, err := Parse(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	specs := c.Specs()
	if len(specs) != 1 || specs[0].Resource != "xsede.comet" || specs[0].Cores != 48 {
		t.Errorf("legacy specs = %+v", specs)
	}
	if c.LegacyPattern() == nil {
		t.Error("eop pattern compiled to nil")
	}
	if c.GraphPipelines() != nil {
		t.Error("pattern campaign grew graph pipelines")
	}
}

// TestParseMalformed is the strict-decoding table: every malformed
// description must be rejected, and positional errors must name the
// line the problem is on.
func TestParseMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"unknown-top-field", "{\n  \"resource\": \"xsede.comet\",\n  \"coers\": 48\n}",
			`unknown field "coers"`},
		{"unknown-field-line", "{\n  \"resource\": \"xsede.comet\",\n  \"coers\": 48\n}",
			"line 3"},
		{"unknown-nested-field", `{
  "resource": "xsede.comet", "cores": 4,
  "pipelines": [
    {"stages": [
      {"tasks": [
        {"kernle": {"name": "misc.sleep"}}
      ]}
    ]}
  ]
}`, `unknown field "kernle"`},
		{"unknown-nested-line", "{\n\"resource\": \"x\", \"cores\": 4,\n\"pipelines\": [\n{\"stages\": [\n{\"tasks\": [\n{\"kernle\": {}}\n]}]}]}",
			"line 6"},
		{"type-mismatch", "{\n  \"resource\": \"xsede.comet\",\n  \"cores\": \"forty-eight\"\n}",
			"line 3"},
		{"syntax", "{\n  \"resource\": \"xsede.comet\",,\n}", "line 2"},
		{"trailing", `{"resource": "x", "cores": 4, "pattern": {"type": "eop", "stages": [{"name": "k"}]}} 42`,
			"trailing data"},
		{"no-resources", `{"pattern": {"type": "eop", "stages": [{"name": "k"}]}}`,
			"no resources"},
		{"both-resource-forms", `{"resource": "a", "cores": 4,
			"resources": [{"resource": "b", "cores": 8}],
			"pattern": {"type": "eop", "stages": [{"name": "k"}]}}`,
			"not both"},
		{"no-workload", `{"resource": "a", "cores": 4}`, "exactly one"},
		{"both-workloads", `{"resource": "a", "cores": 4,
			"pattern": {"type": "eop", "stages": [{"name": "k"}]},
			"pipelines": [{"stages": [{"tasks": [{"kernel": {"name": "k"}}]}]}]}`,
			"exactly one"},
		{"bad-placement", `{"resources": [{"resource": "a", "cores": 4}],
			"placement": "random",
			"pattern": {"type": "eop", "stages": [{"name": "k"}]}}`,
			"unknown placement"},
		{"zero-cores", `{"resource": "a", "cores": 0, "walltime_min": 5,
			"pattern": {"type": "eop", "stages": [{"name": "k"}]}}`,
			"cores > 0"},
		{"nameless-kernel", `{"resource": "a", "cores": 4,
			"pipelines": [{"stages": [{"tasks": [{"kernel": {"params": {"x": 1}}}]}]}]}`,
			"kernel.name is required"},
		{"empty-stage", `{"resource": "a", "cores": 4,
			"pipelines": [{"name": "p", "stages": [{"name": "s"}]}]}`,
			"no tasks"},
		{"duplicate-pipeline", `{"resource": "a", "cores": 4,
			"pipelines": [
			  {"name": "p", "stages": [{"tasks": [{"kernel": {"name": "k"}}]}]},
			  {"name": "p", "stages": [{"tasks": [{"kernel": {"name": "k"}}]}]}
			]}`,
			"reuses name"},
		{"bad-pattern-type", `{"resource": "a", "cores": 4,
			"pattern": {"type": "map-reduce"}}`,
			"unknown pattern type"},
		{"ee-missing-kernels", `{"resource": "a", "cores": 4,
			"pattern": {"type": "ee", "replicas": 4, "cycles": 2}}`,
			"simulation and exchange"},
		{"negative-count", `{"resource": "a", "cores": 4,
			"pipelines": [{"stages": [{"tasks": [{"count": -2, "kernel": {"name": "k"}}]}]}]}`,
			"count must be >= 0"},
		{"name-type-mismatch", "{\n  \"name\": 12,\n  \"resource\": \"a\", \"cores\": 4,\n  \"pattern\": {\"type\": \"eop\", \"stages\": [{\"name\": \"k\"}]}\n}",
			"line 2"},
		{"name-not-object", `{"name": {"label": "x"}, "resource": "a", "cores": 4,
			"pattern": {"type": "eop", "stages": [{"name": "k"}]}}`,
			`"name" wants string`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("accepted malformed description")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseAsserts(t *testing.T) {
	const specs = `[
	  {"entity": "unit.", "name": "exec_start", "kind": "exists"},
	  {"entity": "unit.", "name": "exec_start", "kind": "count", "count": 8},
	  {"entity": "core", "name": "run_start", "kind": "order", "before": "run_stop"},
	  {"entity": "unit.", "kind": "span_max", "start": "exec_start", "stop": "exec_stop", "max_ms": 60000}
	]`
	got, err := ParseAsserts(strings.NewReader(specs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[1].Count != 8 || got[3].MaxMS != 60000 {
		t.Errorf("parsed specs = %+v", got)
	}
	for _, bad := range []struct{ name, json, want string }{
		{"unknown-field", `[{"entity": "u", "kind": "exists", "nmae": "x"}]`, "unknown field"},
		{"bad-kind", `[{"entity": "u", "name": "x", "kind": "maybe"}]`, "unknown kind"},
		{"order-incomplete", `[{"entity": "u", "name": "x", "kind": "order"}]`, "needs name and before"},
		{"span-unbounded", `[{"entity": "u", "kind": "span_max", "start": "a", "stop": "b"}]`, "max_ms > 0"},
	} {
		t.Run(bad.name, func(t *testing.T) {
			_, err := ParseAsserts(strings.NewReader(bad.json))
			if err == nil || !strings.Contains(err.Error(), bad.want) {
				t.Errorf("error = %v, want substring %q", err, bad.want)
			}
		})
	}
}
