package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"entk"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// marshal renders a campaign back to JSON; the fuzz target uses it to
// prove accepted campaigns re-parse from their own serialisation.
func marshal(c *Campaign) ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// goldenCases drives the golden-trace regression tier. Single-pipeline
// campaigns produce the same per-entity sequences on both clock
// engines (unit numbering cannot race), so one golden covers both;
// multi-pipeline campaigns may assign unit ids differently at
// same-instant submissions, so each engine pins its own golden.
var goldenCases = []struct {
	fixture   string
	perEngine bool
}{
	{"demo-pipeline", false},
	{"demo-multipilot", true},
}

func engineName(e entk.ClockEngine) string {
	if e == entk.EngineRef {
		return "ref"
	}
	return "handoff"
}

func goldenFile(fixture string, e entk.ClockEngine, perEngine bool) string {
	if perEngine {
		return filepath.Join("testdata", fixture+"."+engineName(e)+".trace")
	}
	return filepath.Join("testdata", fixture+".trace")
}

func loadFixture(t *testing.T, name string) *Campaign {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGoldenTraces replays the fixture campaigns and diffs their
// traces against the committed goldens, across both clock engines and
// both profiler layouts. Regenerate with:
//
//	ENTK_REGEN_GOLDEN=1 go test ./internal/campaign -run TestGoldenTraces
func TestGoldenTraces(t *testing.T) {
	regen := os.Getenv("ENTK_REGEN_GOLDEN") != ""
	for _, gc := range goldenCases {
		c := loadFixture(t, gc.fixture)
		for _, engine := range []entk.ClockEngine{entk.EngineHandoff, entk.EngineRef} {
			if regen {
				// Goldens are recorded on the default (columnar) layout; the
				// layout loop below proves the ref layout replays identically.
				res, err := Run(c, Options{Engine: engine})
				if err != nil {
					t.Fatal(err)
				}
				path := goldenFile(gc.fixture, engine, gc.perEngine)
				if !gc.perEngine && engine != entk.EngineHandoff {
					continue // shared golden: record once
				}
				if err := WriteGolden(path, res.Prof); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s (%d events)", path, res.Prof.EventCount())
				continue
			}
			want, err := LoadGolden(goldenFile(gc.fixture, engine, gc.perEngine))
			if err != nil {
				t.Fatalf("%v (regenerate with ENTK_REGEN_GOLDEN=1)", err)
			}
			for _, layout := range []entk.ProfilerLayout{entk.ProfLayoutColumnar, entk.ProfLayoutRef} {
				name := gc.fixture + "/" + engineName(engine) + "/" + layout.String()
				t.Run(name, func(t *testing.T) {
					res, err := Run(c, Options{Engine: engine, Layout: layout})
					if err != nil {
						t.Fatal(err)
					}
					if diffs := DiffTraces(res.Prof, want); len(diffs) > 0 {
						t.Errorf("trace diverges from golden:\n%s", RenderDiffs(diffs, 3))
					}
				})
			}
		}
	}
}

// TestBrokenGoldenDiff is the negative control the acceptance criteria
// call for: a golden with one event renamed (exec_stop -> exec_halt,
// same byte length, patched directly in the dump's name table) must
// fail the check, and the rendered diff must name the divergent event
// inside a per-entity timeline.
func TestBrokenGoldenDiff(t *testing.T) {
	raw, err := os.ReadFile(goldenFile("demo-pipeline", entk.EngineHandoff, false))
	if err != nil {
		t.Fatalf("%v (regenerate with ENTK_REGEN_GOLDEN=1)", err)
	}
	patched := bytes.Replace(raw, []byte("exec_stop"), []byte("exec_halt"), 1)
	if bytes.Equal(patched, raw) {
		t.Fatal("golden carries no exec_stop event to break")
	}
	want := profile.New(vclock.NewVirtual())
	if _, err := want.ReadFrom(bytes.NewReader(patched)); err != nil {
		t.Fatalf("patched golden no longer loads: %v", err)
	}

	c := loadFixture(t, "demo-pipeline")
	res, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffTraces(res.Prof, want)
	if len(diffs) == 0 {
		t.Fatal("broken golden passed the check")
	}
	rendered := RenderDiffs(diffs, 5)
	if !strings.Contains(rendered, "exec_halt") || !strings.Contains(rendered, "exec_stop") {
		t.Errorf("rendered diff does not name the divergent event:\n%s", rendered)
	}
	if !strings.Contains(rendered, "entity ") || !strings.Contains(rendered, "!") {
		t.Errorf("rendered diff lacks the per-entity timeline marker:\n%s", rendered)
	}
}

// TestGoldenRoundTrip pins WriteGolden/LoadGolden as a lossless pair
// over both profiler layouts: a reloaded golden diffs clean against
// its source.
func TestGoldenRoundTrip(t *testing.T) {
	c := loadFixture(t, "demo-pipeline")
	for _, layout := range []entk.ProfilerLayout{entk.ProfLayoutColumnar, entk.ProfLayoutRef} {
		res, err := Run(c, Options{Layout: layout})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "golden.trace")
		if err := WriteGolden(path, res.Prof); err != nil {
			t.Fatal(err)
		}
		back, err := LoadGolden(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.EventCount() != res.Prof.EventCount() {
			t.Errorf("layout %v: reloaded %d events, want %d",
				layout, back.EventCount(), res.Prof.EventCount())
		}
		if diffs := DiffTraces(res.Prof, back); len(diffs) > 0 {
			t.Errorf("layout %v: round trip diverges:\n%s", layout, RenderDiffs(diffs, 3))
		}
	}
}

// FuzzCampaignSchema feeds arbitrary bytes to the strict parser: it
// must never panic, and whatever it accepts must compile and survive a
// marshal -> re-parse round trip (the schema prints what it parses).
func FuzzCampaignSchema(f *testing.F) {
	f.Add([]byte(validGraphJSON))
	f.Add([]byte(parityJSON))
	f.Add([]byte(`{"resource": "xsede.comet", "cores": 48,
	  "pattern": {"type": "sal", "iterations": 2, "simulations": 4, "analyses": 1,
	    "simulation": {"name": "misc.sleep", "params": {"seconds": 5}},
	    "analysis": {"name": "misc.ccount", "params": {"size_mb": 1}}}}`))
	f.Add([]byte(`{"name": "labelled", "resource": "xsede.comet", "cores": 4,
	  "pattern": {"type": "eop", "pipelines": 2, "stages": [{"name": "misc.sleep"}]}}`))
	f.Add([]byte(`{"coers": 48}`))
	f.Add([]byte(`[1, 2`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted campaigns must compile without panicking...
		_ = c.Specs()
		_ = c.PlacementPolicy()
		_ = c.GraphPipelines()
		_ = c.LegacyPattern()
		// ...and re-parse from their own serialisation.
		out, err := marshal(c)
		if err != nil {
			t.Fatalf("accepted campaign fails to marshal: %v", err)
		}
		if _, err := Parse(bytes.NewReader(out)); err != nil {
			t.Fatalf("marshalled campaign fails to re-parse: %v\n%s", err, out)
		}
	})
}
