package campaign

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"entk"
)

// parityJSON is the declarative form of the campaign parityPipelines
// constructs in Go; TestRunDeclarativeParity pins the two to identical
// reports.
const parityJSON = `{
  "resources": [
    {"resource": "xsede.comet", "cores": 48, "walltime_min": 120},
    {"resource": "xsede.stampede", "cores": 64, "walltime_min": 120, "tags": ["mpi"]}
  ],
  "placement": "tag_affinity",
  "runtime": {"max_retries": 1},
  "pipelines": [
    {"name": "md", "stages": [
      {"name": "sim", "tasks": [
        {"name": "eq", "count": 8, "kernel": {"name": "misc.sleep", "params": {"seconds": 30}}}
      ]},
      {"name": "exch", "streamed": true, "tasks": [
        {"kernel": {"name": "misc.sleep", "params": {"seconds": 10}, "cores": 16, "mpi": true, "tags": ["mpi"]}}
      ]}
    ]},
    {"name": "ana", "stages": [
      {"tasks": [
        {"name": "scan", "count": 4, "retries": 2, "kernel": {"name": "misc.ccount", "params": {"size_mb": 20}}}
      ]}
    ]}
  ]
}`

// parityPipelines is the hand-written equivalent of parityJSON.
func parityPipelines() []*entk.Pipeline {
	sleep := func(sec float64) *entk.Kernel {
		return &entk.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": sec}}
	}
	simTasks := make([]entk.Task, 8)
	for i := range simTasks {
		simTasks[i] = entk.Task{Name: "eq." + []string{"0001", "0002", "0003", "0004", "0005", "0006", "0007", "0008"}[i],
			Kernel: sleep(30)}
	}
	exch := sleep(10)
	exch.Cores, exch.MPI, exch.Tags = 16, true, []string{"mpi"}
	anaTasks := make([]entk.Task, 4)
	for i := range anaTasks {
		anaTasks[i] = entk.Task{Name: "scan." + []string{"0001", "0002", "0003", "0004"}[i],
			Retries: 2,
			Kernel:  &entk.Kernel{Name: "misc.ccount", Params: map[string]float64{"size_mb": 20}}}
	}
	return []*entk.Pipeline{
		{Name: "md", Stages: []*entk.Stage{
			{Name: "sim", Tasks: simTasks},
			{Name: "exch", Tasks: []entk.Task{{Kernel: exch}}, Streamed: true},
		}},
		{Name: "ana", Stages: []*entk.Stage{
			{Tasks: anaTasks},
		}},
	}
}

// TestRunDeclarativeParity gates the lowering: running the JSON
// campaign through the driver must produce the identical campaign
// report — TTC, overheads, phases, pilot rows, everything — as the
// equivalent Go-constructed campaign on an identically configured
// binding. The declarative layer adds vocabulary, not semantics.
func TestRunDeclarativeParity(t *testing.T) {
	c, err := Parse(strings.NewReader(parityJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []entk.ClockEngine{entk.EngineHandoff, entk.EngineRef} {
		res, err := Run(c, Options{Engine: engine})
		if err != nil {
			t.Fatalf("engine %v: declarative run: %v", engine, err)
		}

		v := entk.NewClockEngine(engine)
		rs, err := entk.NewResourceSet([]entk.PilotSpec{
			{Resource: "xsede.comet", Cores: 48, Walltime: 120 * time.Minute},
			{Resource: "xsede.stampede", Cores: 64, Walltime: 120 * time.Minute, Tags: []string{"mpi"}},
		}, entk.Config{Clock: v, MaxRetries: 1})
		if err != nil {
			t.Fatal(err)
		}
		rs.Placement = entk.PlaceTagAffinity(nil)
		var want *entk.CampaignReport
		v.Run(func() {
			if err := rs.Allocate(); err != nil {
				t.Fatal(err)
			}
			var err error
			want, err = entk.NewAppManager(rs).Run(parityPipelines()...)
			if err != nil {
				t.Fatalf("engine %v: Go-constructed run: %v", engine, err)
			}
			rs.Deallocate()
		})

		if !reflect.DeepEqual(res.Campaign, want) {
			t.Errorf("engine %v: declarative report diverges from Go-constructed:\ngot  %+v\nwant %+v",
				engine, res.Campaign, want)
		}
	}
}

// TestRunLegacyPattern keeps the classic pattern path of the runner
// alive: an eop description executes and reports the full task count.
func TestRunLegacyPattern(t *testing.T) {
	const legacy = `{
	  "resource": "xsede.comet", "cores": 24, "walltime_min": 60,
	  "pattern": {"type": "eop", "pipelines": 6, "stages": [
	    {"name": "misc.mkfile", "params": {"size_mb": 10}},
	    {"name": "misc.ccount", "params": {"size_mb": 10}}
	  ]}
	}`
	c, err := Parse(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Campaign != nil {
		t.Fatalf("pattern campaign: Report=%v Campaign=%v", res.Report, res.Campaign)
	}
	if res.Report.Tasks != 12 {
		t.Errorf("tasks = %d, want 12", res.Report.Tasks)
	}
	if res.Prof == nil || res.Prof.EventCount() == 0 {
		t.Error("run returned no trace")
	}
	if !strings.Contains(res.Summary(), "pattern=") {
		t.Errorf("summary misses the report table: %q", res.Summary())
	}
}

// TestCheckAssertsOnRun drives the assertion kinds against a real
// trace: the passing set is empty-failure, each failing spec reports
// with the entity timeline attached.
func TestCheckAssertsOnRun(t *testing.T) {
	c, err := Parse(strings.NewReader(parityJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}

	pass := []AssertSpec{
		{Entity: "unit.", Name: "exec_start", Kind: "exists"},
		// 8 sim + 1 exch + 4 ana first attempts; retries would add more,
		// but misc kernels don't fail here.
		{Entity: "unit.", Name: "exec_start", Kind: "count", Count: 13},
		{Entity: "unit.", Name: "never_recorded", Kind: "absent"},
		{Entity: "core", Name: "run_start", Kind: "order", Before: "run_stop"},
		{Entity: "unit.", Kind: "span_max", Start: "exec_start", Stop: "exec_stop", MaxMS: 1e9},
		{Entity: "unit.", Kind: "sum_max", Start: "exec_start", Stop: "exec_stop", MaxMS: 1e9},
	}
	if fails := CheckAsserts(res.Prof, pass); len(fails) != 0 {
		t.Fatalf("passing specs failed: %v", fails)
	}

	failing := []AssertSpec{
		{Entity: "unit.", Name: "exec_start", Kind: "count", Count: 99},
		{Entity: "core", Name: "run_stop", Kind: "order", Before: "run_start"},
		{Entity: "unit.", Name: "exec_start", Kind: "absent"},
		{Entity: "unit.", Kind: "span_max", Start: "exec_start", Stop: "exec_stop", MaxMS: 0.001},
	}
	fails := CheckAsserts(res.Prof, failing)
	if len(fails) != len(failing) {
		t.Fatalf("failures = %d, want %d: %v", len(fails), len(failing), fails)
	}
	if !strings.Contains(fails[0].Msg, "count = 13") {
		t.Errorf("count failure msg = %q", fails[0].Msg)
	}
	if !strings.Contains(fails[0].Timeline, "entity unit.") ||
		!strings.Contains(fails[0].Timeline, "exec_start") {
		t.Errorf("failure timeline lacks evidence:\n%s", fails[0].Timeline)
	}
}
