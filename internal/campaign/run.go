// Execution driver: compile a campaign, stand up the binding on a
// fresh virtual clock, and run it to completion. The driver is what
// cmd/entk-run and the golden-trace tests share, so a trace recorded
// by the CLI and one recorded by a test are produced by the same code
// path.

package campaign

import (
	"fmt"
	"strings"

	"entk"
	"entk/internal/profile"
	"entk/internal/realtime"
)

// Options selects the execution substrate for one run. The zero value
// is the production default (simulated, handoff clock engine, columnar
// profiler).
type Options struct {
	Engine entk.ClockEngine
	Layout entk.ProfilerLayout
	// Mode selects simulated (default) or real execution. Real mode runs
	// the identical campaign on the wall clock: kernels with an
	// "executable" exec as OS processes, the rest sleep their modelled
	// durations. Engine is ignored in real mode.
	Mode Mode
	// Dir receives real-mode per-unit output captures; empty means a
	// fresh temporary directory. Sim mode ignores it.
	Dir string
	// Runner overrides the real-mode unit runner (the service shares one
	// across pools); nil makes Run construct and close its own local
	// process executor.
	Runner entk.UnitRunner
}

// Mode selects the execution substrate: discrete-event simulation or
// real execution on the wall clock.
type Mode int

const (
	// ModeSim is the default: virtual time, bit-reproducible.
	ModeSim Mode = iota
	// ModeReal executes on the wall clock via a UnitRunner.
	ModeReal
)

func (m Mode) String() string {
	if m == ModeReal {
		return "real"
	}
	return "sim"
}

// ParseMode maps a CLI selector to an execution mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "sim":
		return ModeSim, nil
	case "real":
		return ModeReal, nil
	}
	return 0, fmt.Errorf("campaign: unknown mode %q (want sim or real)", s)
}

// NewClock returns the clock a run with these options executes on: a
// virtual clock with the selected engine, or the wall clock in real mode.
func (o Options) NewClock() entk.Clock {
	if o.Mode == ModeReal {
		return entk.NewWallClock()
	}
	return entk.NewClockEngine(o.Engine)
}

// ParseEngine maps a CLI selector to a clock engine.
func ParseEngine(s string) (entk.ClockEngine, error) {
	switch s {
	case "", "handoff":
		return entk.EngineHandoff, nil
	case "ref":
		return entk.EngineRef, nil
	}
	return 0, fmt.Errorf("campaign: unknown clock engine %q (want handoff or ref)", s)
}

// ParseLayout maps a CLI selector to a profiler layout.
func ParseLayout(s string) (entk.ProfilerLayout, error) {
	switch s {
	case "", "columnar":
		return entk.ProfLayoutColumnar, nil
	case "ref":
		return entk.ProfLayoutRef, nil
	}
	return 0, fmt.Errorf("campaign: unknown profiler layout %q (want columnar or ref)", s)
}

// Result is one campaign execution: the report for whichever workload
// form ran, plus the session profiler holding the full event trace.
type Result struct {
	// Campaign is set for graph-form campaigns (pipelines).
	Campaign *entk.CampaignReport
	// Report is set for pattern-form campaigns (eop/ee/sal).
	Report *entk.Report
	// Prof is the run's profiler; feed it to CheckAsserts, DiffTraces,
	// or WriteGolden.
	Prof *profile.Profiler
}

// Summary renders the run for the terminal: the classic report table
// for pattern campaigns; the campaign table plus per-pipeline and
// per-pilot rows for graph campaigns.
func (r *Result) Summary() string {
	if r.Report != nil {
		return r.Report.String()
	}
	if r.Campaign == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(r.Campaign.Campaign.String())
	for _, pr := range r.Campaign.Pipelines {
		fmt.Fprintf(&b, "pipeline %-12s tasks=%-5d retries=%-3d TTC %10.2fs\n",
			pr.Pattern, pr.Tasks, pr.Retries, pr.TTC.Seconds())
	}
	for _, pu := range r.Campaign.Pilots {
		fmt.Fprintf(&b, "pilot %d %-18s cores=%-4d units=%-5d busy %10.2fs util %5.1f%%\n",
			pu.Pilot, pu.Resource, pu.Cores, pu.Units, pu.CoreBusy.Seconds(), 100*pu.Utilization)
	}
	return b.String()
}

// Config builds the core configuration a run of this campaign uses on
// clock v: runtime defaults, the profiler layout from opts, and the
// campaign's own knobs (retry budget). Run and the service's
// orchestrator share it, so an HTTP-submitted campaign executes on
// exactly the substrate a library run would construct.
func (c *Campaign) Config(v entk.Clock, opts Options) entk.Config {
	cfg := entk.Config{Clock: v}
	// Core only fills runtime defaults for a wholly-zero Runtime, so
	// start from the defaults before selecting the profiler layout.
	cfg.Runtime = entk.DefaultRuntimeConfig()
	cfg.Runtime.ProfLayout = opts.Layout
	if opts.Mode == ModeReal {
		cfg.Runtime.Runner = opts.Runner
	}
	if c.Runtime != nil {
		cfg.MaxRetries = c.Runtime.MaxRetries
	}
	return cfg
}

// Bind compiles the campaign's resource section onto clock v: a
// ResourceSet with the campaign's pilots, placement policy, and config.
func (c *Campaign) Bind(v entk.Clock, opts Options) (*entk.ResourceSet, error) {
	rs, err := entk.NewResourceSet(c.Specs(), c.Config(v, opts))
	if err != nil {
		return nil, err
	}
	if pol := c.PlacementPolicy(); pol != nil {
		rs.Placement = pol
	}
	return rs, nil
}

// Run executes a validated campaign on a fresh clock and binding. A
// failing workload still returns the Result alongside the error — the
// trace evidence of a failed run is exactly what post-mortem assertion
// checks want.
func Run(c *Campaign, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opts.Mode == ModeReal && opts.Runner == nil {
		ex, err := realtime.New(realtime.Config{Dir: opts.Dir})
		if err != nil {
			return nil, err
		}
		defer ex.Close()
		opts.Runner = ex
	}
	v := opts.NewClock()
	rs, err := c.Bind(v, opts)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	var runErr error
	v.Run(func() {
		if runErr = rs.Allocate(); runErr != nil {
			return
		}
		defer rs.Deallocate()
		if c.Pattern != nil {
			res.Report, runErr = rs.Run(c.LegacyPattern())
		} else {
			res.Campaign, runErr = entk.NewAppManager(rs).Run(c.GraphPipelines()...)
		}
	})
	res.Prof = rs.Session().Prof
	return res, runErr
}
