// Trace assertions: declarative expectations checked against the
// columnar profiler after a run. A spec names an entity prefix and an
// event, and asserts existence, absence, an exact count, an ordering
// against another event, or a bound on a span / phase sum. Failures
// render the matching entities' virtual-time timelines, so "the
// assertion failed" arrives with the evidence needed to see why.

package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"entk/internal/profile"
)

// AssertSpec is one declarative expectation over a run's trace.
type AssertSpec struct {
	// Entity is the entity prefix the spec ranges over ("" = every
	// entity; "unit." = all units; "pipeline.md" = one pipeline).
	Entity string `json:"entity"`
	// Name is the event the spec is about (unused by span/sum kinds).
	Name string `json:"name,omitempty"`
	// Kind selects the predicate: "exists", "absent", "count",
	// "order", "span_max", or "sum_max".
	Kind string `json:"kind"`
	// Count is the exact occurrence count for kind "count".
	Count int `json:"count,omitempty"`
	// Before names the event whose first occurrence must come strictly
	// after Name's first occurrence, for kind "order".
	Before string `json:"before,omitempty"`
	// Start/Stop name the bracketing events for "span_max" (first
	// Start to last Stop) and "sum_max" (per-entity phase sums).
	Start string `json:"start,omitempty"`
	Stop  string `json:"stop,omitempty"`
	// MaxMS bounds the span or sum, in virtual milliseconds.
	MaxMS float64 `json:"max_ms,omitempty"`
}

// String renders the spec compactly for failure messages.
func (s AssertSpec) String() string {
	ent := s.Entity
	if ent == "" {
		ent = "*"
	}
	switch s.Kind {
	case "count":
		return fmt.Sprintf("%s[%s] %s == %d", s.Kind, ent, s.Name, s.Count)
	case "order":
		return fmt.Sprintf("%s[%s] %s before %s", s.Kind, ent, s.Name, s.Before)
	case "span_max", "sum_max":
		return fmt.Sprintf("%s[%s] %s..%s <= %.0fms", s.Kind, ent, s.Start, s.Stop, s.MaxMS)
	default:
		return fmt.Sprintf("%s[%s] %s", s.Kind, ent, s.Name)
	}
}

func (s AssertSpec) validate(i int) error {
	switch s.Kind {
	case "exists", "absent":
		if s.Name == "" {
			return fmt.Errorf("campaign: assert[%d]: kind %q needs name", i, s.Kind)
		}
	case "count":
		if s.Name == "" {
			return fmt.Errorf("campaign: assert[%d]: kind count needs name", i)
		}
		if s.Count < 0 {
			return fmt.Errorf("campaign: assert[%d]: count must be >= 0", i)
		}
	case "order":
		if s.Name == "" || s.Before == "" {
			return fmt.Errorf("campaign: assert[%d]: kind order needs name and before", i)
		}
	case "span_max", "sum_max":
		if s.Start == "" || s.Stop == "" {
			return fmt.Errorf("campaign: assert[%d]: kind %s needs start and stop", i, s.Kind)
		}
		if s.MaxMS <= 0 {
			return fmt.Errorf("campaign: assert[%d]: kind %s needs max_ms > 0", i, s.Kind)
		}
	default:
		return fmt.Errorf("campaign: assert[%d]: unknown kind %q (want exists, absent, count, order, span_max, or sum_max)", i, s.Kind)
	}
	return nil
}

// ParseAsserts decodes a JSON array of assertion specs, as strictly as
// Parse decodes campaigns.
func ParseAsserts(r io.Reader) ([]AssertSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var specs []AssertSpec
	if err := dec.Decode(&specs); err != nil {
		return nil, decodeError(data, dec, err)
	}
	for i, s := range specs {
		if err := s.validate(i); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// AssertFailure is one unmet expectation, with the evidence rendered.
type AssertFailure struct {
	Spec AssertSpec
	// Msg states what held instead.
	Msg string
	// Timeline is the per-entity virtual-time timeline of the entities
	// the spec ranges over.
	Timeline string
}

func (f AssertFailure) String() string {
	out := fmt.Sprintf("assert %s: %s", f.Spec, f.Msg)
	if f.Timeline != "" {
		out += "\n" + f.Timeline
	}
	return out
}

// CheckAsserts evaluates every spec against the trace and returns the
// failures, in spec order. An empty result means the trace meets every
// expectation.
func CheckAsserts(p *profile.Profiler, specs []AssertSpec) []AssertFailure {
	var fails []AssertFailure
	fail := func(s AssertSpec, format string, args ...any) {
		fails = append(fails, AssertFailure{
			Spec:     s,
			Msg:      fmt.Sprintf(format, args...),
			Timeline: EntityTimeline(p, s.Entity),
		})
	}
	for _, s := range specs {
		switch s.Kind {
		case "exists":
			if p.Count(s.Entity, s.Name) == 0 {
				fail(s, "event never recorded")
			}
		case "absent":
			if n := p.Count(s.Entity, s.Name); n > 0 {
				fail(s, "event recorded %d time(s)", n)
			}
		case "count":
			if n := p.Count(s.Entity, s.Name); n != s.Count {
				fail(s, "count = %d", n)
			}
		case "order":
			a, okA := p.First(s.Entity, s.Name)
			b, okB := p.First(s.Entity, s.Before)
			switch {
			case !okA:
				fail(s, "%s never recorded", s.Name)
			case !okB:
				fail(s, "%s never recorded", s.Before)
			case a >= b:
				fail(s, "%s at %v is not before %s at %v", s.Name, a, s.Before, b)
			}
		case "span_max":
			span, ok := p.Span(s.Entity, s.Start, s.Stop)
			max := time.Duration(s.MaxMS * float64(time.Millisecond))
			switch {
			case !ok:
				fail(s, "span unbounded: %s or %s never recorded", s.Start, s.Stop)
			case span > max:
				fail(s, "span = %v", span)
			}
		case "sum_max":
			sum := p.SumPairs(s.Entity, s.Start, s.Stop)
			if max := time.Duration(s.MaxMS * float64(time.Millisecond)); sum > max {
				fail(s, "sum = %v", sum)
			}
		}
	}
	return fails
}

// EntityTimeline renders the events of every entity matching the
// prefix as per-entity virtual-time timelines — the failure evidence
// format shared by assertion checks and golden diffs.
func EntityTimeline(p *profile.Profiler, prefix string) string {
	byEnt := entityEvents(p, prefix)
	ents := make([]string, 0, len(byEnt))
	for e := range byEnt {
		ents = append(ents, e)
	}
	sort.Strings(ents)
	var b strings.Builder
	for _, e := range ents {
		fmt.Fprintf(&b, "  entity %s\n", e)
		for _, ev := range byEnt[e] {
			fmt.Fprintf(&b, "    %12v  %s\n", ev.T, ev.Name)
		}
	}
	return b.String()
}

// entityEvents groups a profiler's events by entity, each sequence
// sorted by (T, Name). The sort makes the view independent of
// recording interleavings at equal instants, which is what lets golden
// traces compare across clock engines for single-pipeline campaigns.
func entityEvents(p *profile.Profiler, prefix string) map[string][]profile.Event {
	byEnt := map[string][]profile.Event{}
	for _, ev := range p.Events() {
		if !strings.HasPrefix(ev.Entity, prefix) {
			continue
		}
		byEnt[ev.Entity] = append(byEnt[ev.Entity], ev)
	}
	for _, evs := range byEnt {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].T != evs[j].T {
				return evs[i].T < evs[j].T
			}
			return evs[i].Name < evs[j].Name
		})
	}
	return byEnt
}
