// Sim-vs-real accounting parity: the same campaign file executed under
// both modes must tell the same structural story. Real mode cannot be
// bit-reproducible (wall instants vary run to run), so the contract is
// weaker than the golden-trace one but still sharp: identical per-unit
// event names and counts, identical report task/retry/unit counters, and
// wall durations inside a generous tolerance band. Wave/batcher and
// unit-manager entities are excluded — same-instant coalescing is a
// virtual-time artefact the wall clock cannot reproduce (DESIGN.md §15).

package campaign

import (
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"entk/internal/profile"
)

// loadRealmodeExample parses the quickstart campaign the CLI docs point
// at, so the test pins exactly what examples/realmode demonstrates.
func loadRealmodeExample(t *testing.T) *Campaign {
	t.Helper()
	f, err := os.Open("../../examples/realmode/campaign.json")
	if err != nil {
		t.Fatalf("open example: %v", err)
	}
	defer f.Close()
	c, err := Parse(f)
	if err != nil {
		t.Fatalf("parse example: %v", err)
	}
	return c
}

func TestRealModeAccountingParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real mode sleeps on the wall clock")
	}
	sim, err := Run(loadRealmodeExample(t), Options{})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	real, err := Run(loadRealmodeExample(t), Options{Mode: ModeReal, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("real run: %v", err)
	}

	// Per-unit event structure: same unit entities, same event names and
	// counts on each, same terminal event. The whole stack above the
	// exec seam is shared, so any divergence here means real mode grew
	// its own code path. Comparison is by sorted name multiset: events
	// sim stamps at one instant (sorted alphabetically within it) spread
	// over distinct wall instants in real mode, so intra-instant order
	// is the one structural property that cannot carry across.
	simEvs := entityEvents(sim.Prof, "unit.")
	realEvs := entityEvents(real.Prof, "unit.")
	if len(simEvs) == 0 {
		t.Fatal("sim trace has no unit entities")
	}
	if len(simEvs) != len(realEvs) {
		t.Fatalf("unit entity count: sim %d, real %d", len(simEvs), len(realEvs))
	}
	for ent, sevs := range simEvs {
		revs, ok := realEvs[ent]
		if !ok {
			t.Errorf("entity %s: present in sim, absent in real", ent)
			continue
		}
		sn := eventNames(sevs)
		rn := eventNames(revs)
		if sn != rn {
			t.Errorf("entity %s events:\n  sim:  %s\n  real: %s", ent, sn, rn)
		}
		if last(sevs) != last(revs) {
			t.Errorf("entity %s terminal event: sim %q, real %q", ent, last(sevs), last(revs))
		}
	}

	// Report counters: structurally identical tables.
	sc, rc := sim.Campaign, real.Campaign
	if sc == nil || rc == nil {
		t.Fatal("missing campaign report")
	}
	if sc.Campaign.Tasks != rc.Campaign.Tasks || sc.Campaign.Retries != rc.Campaign.Retries {
		t.Errorf("campaign counters: sim tasks=%d retries=%d, real tasks=%d retries=%d",
			sc.Campaign.Tasks, sc.Campaign.Retries, rc.Campaign.Tasks, rc.Campaign.Retries)
	}
	if len(sc.Pipelines) != len(rc.Pipelines) {
		t.Fatalf("pipeline rows: sim %d, real %d", len(sc.Pipelines), len(rc.Pipelines))
	}
	for i := range sc.Pipelines {
		if sc.Pipelines[i].Tasks != rc.Pipelines[i].Tasks {
			t.Errorf("pipeline %d tasks: sim %d, real %d",
				i, sc.Pipelines[i].Tasks, rc.Pipelines[i].Tasks)
		}
	}
	if len(sc.Pilots) != len(rc.Pilots) {
		t.Fatalf("pilot rows: sim %d, real %d", len(sc.Pilots), len(rc.Pilots))
	}
	for i := range sc.Pilots {
		if sc.Pilots[i].Units != rc.Pilots[i].Units {
			t.Errorf("pilot %d units: sim %d, real %d",
				i, sc.Pilots[i].Units, rc.Pilots[i].Units)
		}
	}

	// Wall durations: the example's longest chain is a 0.2s exec stage
	// followed by a fast echo stage, so real TTC must be at least the
	// dominant sleep and — with lots of headroom for slow CI — well
	// under a minute. Sim TTC stays the bit-exact modelled 0.40s.
	if got := rc.Campaign.TTC; got < 180*time.Millisecond || got > time.Minute {
		t.Errorf("real TTC %v outside [180ms, 1m]", got)
	}
	if got := sc.Campaign.TTC; got != 400*time.Millisecond {
		t.Errorf("sim TTC %v, want the modelled 400ms", got)
	}
}

// eventNames renders one entity's events as a sorted, comparable name
// multiset — instants differ across modes by design.
func eventNames(evs []profile.Event) string {
	names := make([]string, len(evs))
	for i, ev := range evs {
		names[i] = ev.Name
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// last returns the entity's final event name in (T, Name) order.
func last(evs []profile.Event) string {
	if len(evs) == 0 {
		return ""
	}
	return evs[len(evs)-1].Name
}
