// Lowering: a validated Campaign compiles onto the toolkit's Go API —
// pilot specs for the binding, a placement policy, and either graph
// pipelines for the AppManager or a classic pattern value. The
// compiled form is exactly what a Go program would have constructed by
// hand; report-parity tests pin that equivalence.

package campaign

import (
	"fmt"
	"time"

	"entk"
)

// defaultWalltime applies when a resource omits walltime_min, matching
// the runner's historic default.
const defaultWalltime = 60 * time.Minute

// kernel compiles the JSON kernel to the toolkit form. Each call
// returns a fresh value so expanded task replicas don't share state.
func (k *Kernel) kernel() *entk.Kernel {
	if k == nil {
		return nil
	}
	return &entk.Kernel{Name: k.Name, Executable: k.Executable, Args: k.Args,
		Params: k.Params, Cores: k.Cores, MPI: k.MPI, Tags: k.Tags}
}

// Specs compiles the resource section to pilot specs — one for the
// legacy top-level form, one per entry of the resources list.
func (c *Campaign) Specs() []entk.PilotSpec {
	walltime := func(min int) time.Duration {
		if min <= 0 {
			return defaultWalltime
		}
		return time.Duration(min) * time.Minute
	}
	if c.Resource != "" {
		return []entk.PilotSpec{{
			Resource: c.Resource, Cores: c.Cores, Walltime: walltime(c.WalltimeMin),
		}}
	}
	specs := make([]entk.PilotSpec, len(c.Resources))
	for i, p := range c.Resources {
		specs[i] = entk.PilotSpec{
			Resource: p.Resource, Cores: p.Cores, Walltime: walltime(p.WalltimeMin),
			Queue: p.Queue, Project: p.Project, Tags: p.Tags,
		}
	}
	return specs
}

// PlacementPolicy compiles the placement selector; nil means "keep the
// binding's default" (round-robin on multi-pilot sets).
func (c *Campaign) PlacementPolicy() entk.PlacementPolicy {
	switch c.Placement {
	case "least_loaded":
		return entk.PlaceLeastLoaded()
	case "tag_affinity":
		return entk.PlaceTagAffinity(nil)
	case "tag_affinity+least_loaded":
		return entk.PlaceTagAffinity(entk.PlaceLeastLoaded())
	default:
		return nil
	}
}

// GraphPipelines compiles the explicit graph form, expanding each task
// entry's count into that many tasks. Returns nil when the campaign
// uses the pattern form.
func (c *Campaign) GraphPipelines() []*entk.Pipeline {
	if len(c.Pipelines) == 0 {
		return nil
	}
	out := make([]*entk.Pipeline, len(c.Pipelines))
	for i, pl := range c.Pipelines {
		stages := make([]*entk.Stage, len(pl.Stages))
		for s, st := range pl.Stages {
			var tasks []entk.Task
			for _, t := range st.Tasks {
				count := t.Count
				if count == 0 {
					count = 1
				}
				for r := 1; r <= count; r++ {
					name := t.Name
					if name != "" && count > 1 {
						name = fmt.Sprintf("%s.%04d", t.Name, r)
					}
					tasks = append(tasks, entk.Task{
						Name: name, Kernel: t.Kernel.kernel(), Retries: t.Retries,
					})
				}
			}
			stages[s] = &entk.Stage{Name: st.Name, Tasks: tasks, Streamed: st.Streamed}
		}
		out[i] = &entk.Pipeline{Name: pl.Name, Stages: stages}
	}
	return out
}

// LegacyPattern compiles the classic pattern form (eop/ee/sal).
// Returns nil when the campaign uses the graph form. Validation has
// already checked the required kernels, so compilation cannot fail.
func (c *Campaign) LegacyPattern() entk.Pattern {
	p := c.Pattern
	if p == nil {
		return nil
	}
	switch p.Type {
	case "eop":
		stages := make([]*entk.Kernel, len(p.Stages))
		for i := range p.Stages {
			stages[i] = p.Stages[i].kernel()
		}
		return &entk.EnsembleOfPipelines{
			Pipelines: p.Pipelines,
			Stages:    len(stages),
			StageKernel: func(stage, pipe int) *entk.Kernel {
				k := *stages[stage-1] // copy so tasks don't share state
				return &k
			},
		}
	case "ee":
		mode := entk.CollectiveExchange
		if p.Pairwise {
			mode = entk.PairwiseExchange
		}
		return &entk.EnsembleExchange{
			Replicas: p.Replicas,
			Cycles:   p.Cycles,
			Mode:     mode,
			SimulationKernel: func(cycle, r int) *entk.Kernel {
				k := *p.Simulation.kernel()
				return &k
			},
			ExchangeKernel: func(cycle int) *entk.Kernel {
				k := *p.Exchange.kernel()
				return &k
			},
		}
	case "sal":
		return &entk.SimulationAnalysisLoop{
			Iterations:  p.Iterations,
			Simulations: p.Simulations,
			Analyses:    p.Analyses,
			SimulationKernel: func(it, i int) *entk.Kernel {
				k := *p.Simulation.kernel()
				return &k
			},
			AnalysisKernel: func(it, i int) *entk.Kernel {
				k := *p.Analysis.kernel()
				return &k
			},
		}
	}
	return nil
}
