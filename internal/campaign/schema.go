// Package campaign loads declarative campaign descriptions — the JSON
// schema behind cmd/entk-run — and compiles them onto the toolkit's
// graph API.
//
// A campaign names its resources (one pilot or several, with a
// placement policy) and its workload (an explicit pipelines/stages/
// tasks graph, or one of the classic eop/ee/sal patterns), without
// writing Go. The package also carries the trace-assertion harness the
// runner's -assert/-record/-check modes use: expected-event specs
// checked against the run's profiler, and golden-trace diffing with
// per-entity virtual-time timelines on divergence.
//
// Parsing is strict: unknown fields are rejected with the line they
// appear on, so a typo'd key fails loudly instead of silently running
// a different experiment.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Kernel is the JSON form of a kernel invocation. It mirrors the
// cost-model-relevant subset of entk.Kernel.
type Kernel struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
	Cores  int                `json:"cores,omitempty"`
	MPI    bool               `json:"mpi,omitempty"`
	// Tags request pilot affinity under a tag_affinity placement.
	Tags []string `json:"tags,omitempty"`
	// Executable and Args are the task's real command, exec'd as an OS
	// process under -mode=real. Simulation ignores them (the named
	// kernel's cost model still supplies the modelled duration); a
	// real-mode task without an executable sleeps its modelled duration
	// in wall time.
	Executable string   `json:"executable,omitempty"`
	Args       []string `json:"args,omitempty"`
}

// Task is one graph node: a kernel invocation, optionally replicated.
type Task struct {
	// Name labels the task; with Count > 1 replicas are suffixed
	// ".0001", ".0002", ... Empty names take the runtime default.
	Name string `json:"name,omitempty"`
	// Count expands the entry into that many identical tasks (0 and 1
	// both mean one task).
	Count int `json:"count,omitempty"`
	// Retries overrides the campaign retry budget for this task.
	Retries int    `json:"retries,omitempty"`
	Kernel  Kernel `json:"kernel"`
}

// Stage is a set of tasks with a barrier.
type Stage struct {
	Name     string `json:"name,omitempty"`
	Streamed bool   `json:"streamed,omitempty"`
	Tasks    []Task `json:"tasks"`
}

// Pipeline is an ordered sequence of stages.
type Pipeline struct {
	Name   string  `json:"name,omitempty"`
	Stages []Stage `json:"stages"`
}

// Pilot requests one pilot of a multi-pilot resource set.
type Pilot struct {
	Resource    string   `json:"resource"`
	Cores       int      `json:"cores"`
	WalltimeMin int      `json:"walltime_min,omitempty"`
	Queue       string   `json:"queue,omitempty"`
	Project     string   `json:"project,omitempty"`
	Tags        []string `json:"tags,omitempty"`
}

// Runtime tunes campaign-level execution knobs.
type Runtime struct {
	// MaxRetries is the default per-task retry budget.
	MaxRetries int `json:"max_retries,omitempty"`
}

// Pattern is the JSON form of a classic pattern parametrisation
// (eop/ee/sal) — the schema the runner spoke before campaigns grew the
// explicit graph form. It is kept as a first-class alternative to
// "pipelines".
type Pattern struct {
	Type string `json:"type"` // "eop", "ee", "sal"

	// eop
	Pipelines int      `json:"pipelines,omitempty"`
	Stages    []Kernel `json:"stages,omitempty"`

	// ee
	Replicas   int     `json:"replicas,omitempty"`
	Cycles     int     `json:"cycles,omitempty"`
	Simulation *Kernel `json:"simulation,omitempty"`
	Exchange   *Kernel `json:"exchange,omitempty"`
	Pairwise   bool    `json:"pairwise,omitempty"`

	// sal
	Iterations  int     `json:"iterations,omitempty"`
	Simulations int     `json:"simulations,omitempty"`
	Analyses    int     `json:"analyses,omitempty"`
	Analysis    *Kernel `json:"analysis,omitempty"`
}

// Campaign is the top-level description. Resources come either in the
// legacy single-pilot form (resource/cores/walltime_min at the top
// level) or as a "resources" list with an optional placement policy;
// the workload is either a "pattern" or an explicit "pipelines" graph.
type Campaign struct {
	// Name is an optional tenant-visible label for the campaign. The
	// service surfaces it in status and report responses; the library
	// ignores it otherwise.
	Name string `json:"name,omitempty"`

	// Legacy single-pilot binding.
	Resource    string `json:"resource,omitempty"`
	Cores       int    `json:"cores,omitempty"`
	WalltimeMin int    `json:"walltime_min,omitempty"`

	// Multi-pilot binding.
	Resources []Pilot `json:"resources,omitempty"`
	// Placement selects the late-binding policy for multi-pilot sets:
	// "round_robin" (default), "least_loaded", "tag_affinity", or
	// "tag_affinity+least_loaded".
	Placement string `json:"placement,omitempty"`

	Runtime *Runtime `json:"runtime,omitempty"`

	Pattern   *Pattern   `json:"pattern,omitempty"`
	Pipelines []Pipeline `json:"pipelines,omitempty"`
}

// Parse decodes and validates a campaign description. Unknown fields,
// type mismatches, and syntax errors are reported with the line they
// occur on.
func Parse(r io.Reader) (*Campaign, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return nil, decodeError(data, dec, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: line %d: trailing data after the campaign object",
			lineOf(data, dec.InputOffset()))
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// decodeError turns a json.Decoder error into a line-anchored message.
// Syntax and type errors carry byte offsets; the unknown-field error
// does not, so its position is approximated by the decoder's input
// offset — inside or just past the offending field.
func decodeError(data []byte, dec *json.Decoder, err error) error {
	switch e := err.(type) {
	case *json.SyntaxError:
		return fmt.Errorf("campaign: line %d: %v", lineOf(data, e.Offset), err)
	case *json.UnmarshalTypeError:
		where := e.Field
		if where == "" {
			where = "campaign"
		}
		return fmt.Errorf("campaign: line %d: field %q wants %s, got JSON %s",
			lineOf(data, e.Offset), where, e.Type, e.Value)
	}
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		field := strings.TrimPrefix(msg, "json: unknown field ")
		return fmt.Errorf("campaign: line %d: unknown field %s (typo? see the schema in cmd/entk-run)",
			lineOf(data, fieldOffset(data, field, dec.InputOffset())), field)
	}
	return fmt.Errorf("campaign: %w", err)
}

// fieldOffset locates an unknown field in the input: the decoder's
// error carries no position (and its input offset points past the
// whole value), so the quoted key is searched for directly — the first
// occurrence followed by a colon. fallback applies if the key is not
// found verbatim (e.g. it used escape sequences).
func fieldOffset(data []byte, quotedField string, fallback int64) int64 {
	key := []byte(quotedField) // already quoted in the error text
	for from := 0; ; {
		i := bytes.Index(data[from:], key)
		if i < 0 {
			return fallback
		}
		at := from + i
		rest := bytes.TrimLeft(data[at+len(key):], " \t\r\n")
		if len(rest) > 0 && rest[0] == ':' {
			return int64(at)
		}
		from = at + len(key)
	}
}

// Expansion caps: count replication materialises tasks at compile
// time, so descriptions are bounded well above any real campaign (the
// 10M stress tier builds its graph in Go, not JSON) but low enough
// that a corrupt count fails instead of exhausting memory.
const (
	maxTaskCount     = 1 << 20
	maxCampaignTasks = 1 << 22
)

// lineOf returns the 1-based line containing byte offset off.
func lineOf(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

// Validate checks the structural rules compilation relies on.
func (c *Campaign) Validate() error {
	// Exactly one resource form.
	legacy := c.Resource != "" || c.Cores != 0 || c.WalltimeMin != 0
	if legacy && len(c.Resources) > 0 {
		return fmt.Errorf("campaign: use either the top-level resource/cores/walltime_min or the resources list, not both")
	}
	if !legacy && len(c.Resources) == 0 {
		return fmt.Errorf("campaign: no resources: set resource/cores or a resources list")
	}
	if legacy {
		if c.Resource == "" {
			return fmt.Errorf("campaign: cores/walltime_min set but resource is empty")
		}
		if c.Cores <= 0 {
			return fmt.Errorf("campaign: resource %q needs cores > 0", c.Resource)
		}
	}
	for i, p := range c.Resources {
		if p.Resource == "" {
			return fmt.Errorf("campaign: resources[%d]: empty resource name", i)
		}
		if p.Cores <= 0 {
			return fmt.Errorf("campaign: resources[%d] (%s): needs cores > 0", i, p.Resource)
		}
	}
	switch c.Placement {
	case "", "round_robin", "least_loaded", "tag_affinity", "tag_affinity+least_loaded":
	default:
		return fmt.Errorf("campaign: unknown placement %q (want round_robin, least_loaded, tag_affinity, or tag_affinity+least_loaded)", c.Placement)
	}
	if c.Runtime != nil && c.Runtime.MaxRetries < 0 {
		return fmt.Errorf("campaign: runtime.max_retries must be >= 0")
	}

	// Exactly one workload form.
	if (c.Pattern == nil) == (len(c.Pipelines) == 0) {
		return fmt.Errorf("campaign: describe the workload as either a pattern or a pipelines graph (exactly one)")
	}
	total := 0
	seen := map[string]int{}
	for i, pl := range c.Pipelines {
		if pl.Name != "" {
			if j, dup := seen[pl.Name]; dup {
				return fmt.Errorf("campaign: pipelines[%d] reuses name %q of pipelines[%d]", i, pl.Name, j)
			}
			seen[pl.Name] = i
		}
		if len(pl.Stages) == 0 {
			return fmt.Errorf("campaign: pipeline %s has no stages", pipeLabel(pl, i))
		}
		for s, st := range pl.Stages {
			if len(st.Tasks) == 0 {
				return fmt.Errorf("campaign: pipeline %s stage %d has no tasks", pipeLabel(pl, i), s+1)
			}
			for ti, task := range st.Tasks {
				if task.Kernel.Name == "" {
					return fmt.Errorf("campaign: pipeline %s stage %d task %d: kernel.name is required",
						pipeLabel(pl, i), s+1, ti)
				}
				if task.Count < 0 {
					return fmt.Errorf("campaign: pipeline %s stage %d task %d: count must be >= 0",
						pipeLabel(pl, i), s+1, ti)
				}
				// Count expands eagerly at compile time, so bound it:
				// a corrupt or hostile description must fail cleanly
				// instead of asking the allocator for a giant graph.
				if task.Count > maxTaskCount {
					return fmt.Errorf("campaign: pipeline %s stage %d task %d: count %d exceeds the %d cap",
						pipeLabel(pl, i), s+1, ti, task.Count, maxTaskCount)
				}
				if task.Count == 0 {
					total++
				} else {
					total += task.Count
				}
				if total > maxCampaignTasks {
					return fmt.Errorf("campaign: more than %d tasks in total", maxCampaignTasks)
				}
				if task.Retries < 0 {
					return fmt.Errorf("campaign: pipeline %s stage %d task %d: retries must be >= 0",
						pipeLabel(pl, i), s+1, ti)
				}
				if task.Kernel.Cores < 0 {
					return fmt.Errorf("campaign: pipeline %s stage %d task %d: kernel.cores must be >= 0",
						pipeLabel(pl, i), s+1, ti)
				}
				if task.Kernel.Executable == "" && len(task.Kernel.Args) > 0 {
					return fmt.Errorf("campaign: pipeline %s stage %d task %d: kernel.args requires kernel.executable",
						pipeLabel(pl, i), s+1, ti)
				}
			}
		}
	}
	if c.Pattern != nil {
		if err := c.Pattern.validate(); err != nil {
			return err
		}
	}
	return nil
}

func pipeLabel(pl Pipeline, i int) string {
	if pl.Name != "" {
		return fmt.Sprintf("%q", pl.Name)
	}
	return fmt.Sprintf("[%d]", i)
}

func (p *Pattern) validate() error {
	switch p.Type {
	case "eop":
		if len(p.Stages) == 0 {
			return fmt.Errorf("campaign: eop pattern needs stages")
		}
		for i, k := range p.Stages {
			if k.Name == "" {
				return fmt.Errorf("campaign: eop stage %d: kernel name is required", i+1)
			}
		}
	case "ee":
		if p.Simulation == nil || p.Exchange == nil {
			return fmt.Errorf("campaign: ee pattern needs simulation and exchange kernels")
		}
	case "sal":
		if p.Simulation == nil || p.Analysis == nil {
			return fmt.Errorf("campaign: sal pattern needs simulation and analysis kernels")
		}
	default:
		return fmt.Errorf("campaign: unknown pattern type %q (want eop, ee, or sal)", p.Type)
	}
	return nil
}
