package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Fatal("Transpose wrong")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0x3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Error("Dot wrong")
	}
	if Norm2(a) != 5 {
		t.Error("Norm2 wrong")
	}
	if SqDist([]float64{0, 0}, a) != 25 {
		t.Error("SqDist wrong")
	}
	v := []float64{3, 4}
	if n := Normalize(v); n != 5 || math.Abs(Norm2(v)-1) > 1e-12 {
		t.Errorf("Normalize: n=%v v=%v", n, v)
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 || z[0] != 0 {
		t.Error("Normalize(0) must be a no-op")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("AXPY = %v", y)
	}
	s := []float64{1, 2}
	Scale(s, 3)
	if s[0] != 3 || s[1] != 6 {
		t.Errorf("Scale = %v", s)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated dims.
	x := NewMatrix(3, 2)
	for i, v := range []float64{1, 2, 2, 4, 3, 6} {
		x.Data[i] = v
	}
	cov, means, err := Covariance(x)
	if err != nil {
		t.Fatal(err)
	}
	if means[0] != 2 || means[1] != 4 {
		t.Fatalf("means = %v", means)
	}
	if cov.At(0, 0) != 1 || cov.At(1, 1) != 4 || cov.At(0, 1) != 2 || cov.At(1, 0) != 2 {
		t.Fatalf("cov = %+v", cov)
	}
	if _, _, err := Covariance(NewMatrix(1, 2)); err == nil {
		t.Fatal("covariance of a single sample accepted")
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 3)
	a.Set(2, 2, 2)
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-10 {
			t.Errorf("eigenvalue %d = %v, want %v", i, res.Values[i], w)
		}
	}
}

func TestSymEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-3) > 1e-10 || math.Abs(res.Values[1]-1) > 1e-10 {
		t.Fatalf("values = %v", res.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	v := res.Vectors[0]
	if math.Abs(math.Abs(v[0])-math.Sqrt2/2) > 1e-9 || math.Abs(v[0]-v[1]) > 1e-9 {
		t.Fatalf("vector = %v", v)
	}
}

func TestSymEigenRejectsBadInput(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1) // asymmetric
	if _, err := SymEigen(a); err == nil {
		t.Error("asymmetric accepted")
	}
}

// residual returns max_i |A v_i - lambda_i v_i| over all eigenpairs.
func residual(a *Matrix, res *EigenResult) float64 {
	var worst float64
	for k := range res.Values {
		av, _ := a.MulVec(res.Vectors[k])
		for i := range av {
			r := math.Abs(av[i] - res.Values[k]*res.Vectors[k][i])
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Property: for random symmetric matrices, A v = lambda v holds, the trace
// equals the eigenvalue sum, and eigenvectors are orthonormal.
func TestPropertySymEigenInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		res, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		if r := residual(a, res); r > 1e-8 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += res.Values[i]
		}
		if math.Abs(trace-sum) > 1e-8 {
			t.Fatalf("trial %d: trace %v != eigenvalue sum %v", trial, trace, sum)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := Dot(res.Vectors[i], res.Vectors[j])
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(d-want) > 1e-8 {
					t.Fatalf("trial %d: <v%d,v%d> = %v", trial, i, j, d)
				}
			}
		}
		for i := 1; i < n; i++ {
			if res.Values[i] > res.Values[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, res.Values)
			}
		}
	}
}

func TestPowerIterationDominant(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	lambda, v, err := PowerIteration(a, 500, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-3) > 1e-6 {
		t.Fatalf("lambda = %v, want 3", lambda)
	}
	if math.Abs(math.Abs(v[0])-math.Sqrt2/2) > 1e-6 {
		t.Fatalf("v = %v", v)
	}
	if _, _, err := PowerIteration(NewMatrix(2, 3), 10, 1e-6); err == nil {
		t.Fatal("non-square accepted")
	}
}

// Property: Covariance matrices are symmetric positive semi-definite
// (checked via eigenvalues) for random data.
func TestPropertyCovariancePSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		d := 2 + rng.Intn(5)
		x := NewMatrix(n, d)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64() * 10
		}
		cov, _, err := Covariance(x)
		if err != nil || !cov.IsSymmetric(1e-9) {
			return false
		}
		res, err := SymEigen(cov)
		if err != nil {
			return false
		}
		for _, lv := range res.Values {
			if lv < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
