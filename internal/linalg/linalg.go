// Package linalg implements the dense linear algebra needed by the
// analysis kernels (CoCo/PCA and LSDMap/diffusion maps): a dense matrix
// type, a symmetric Jacobi eigensolver, and basic vector operations. It is
// intentionally small and allocation-conscious rather than general.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m * x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale multiplies v by a in place.
func Scale(v []float64, a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Normalize scales v to unit norm in place and returns the original norm.
// A zero vector is left unchanged.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n > 0 {
		Scale(v, 1/n)
	}
	return n
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Covariance returns the d x d sample covariance matrix of the rows of x
// (n samples of dimension d), along with the column means. It requires at
// least two rows.
func Covariance(x *Matrix) (*Matrix, []float64, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, nil, errors.New("linalg: covariance needs >= 2 samples")
	}
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := NewMatrix(d, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - means[a]
			for b := a; b < d; b++ {
				cov.Data[a*d+b] += da * (row[b] - means[b])
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.Data[a*d+b] * inv
			cov.Data[a*d+b] = v
			cov.Data[b*d+a] = v
		}
	}
	return cov, means, nil
}

// EigenResult holds the eigendecomposition of a symmetric matrix with
// eigenvalues sorted in descending order and Vectors[k] the unit
// eigenvector for Values[k].
type EigenResult struct {
	Values  []float64
	Vectors [][]float64
}

// SymEigen computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi method. It converges quadratically and is exact
// enough (off-diagonal norm < 1e-12 * ||A||) for the small matrices used by
// the analysis kernels.
func SymEigen(a *Matrix) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: SymEigen requires a square matrix")
	}
	if !a.IsSymmetric(1e-9) {
		return nil, errors.New("linalg: SymEigen requires a symmetric matrix")
	}
	n := a.Rows
	m := a.Clone()
	// v accumulates the rotations; starts as identity.
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	var frob float64
	for _, x := range m.Data {
		frob += x * x
	}
	tol := 1e-24 * frob
	if tol == 0 {
		tol = 1e-300
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	res := &EigenResult{Values: make([]float64, n), Vectors: make([][]float64, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort eigenpairs by descending eigenvalue (selection sort: n is small).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if m.At(order[j], order[j]) > m.At(order[best], order[best]) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	for k, idx := range order {
		res.Values[k] = m.At(idx, idx)
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v.At(i, idx)
		}
		res.Vectors[k] = vec
	}
	return res, nil
}

// rotate applies a Jacobi rotation in the (p, q) plane to m and
// accumulates it into v.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// PowerIteration returns the dominant eigenvalue/eigenvector of a square
// matrix by power iteration with deflation-free restarts. It is used where
// only the top of the spectrum matters and the matrix is not symmetric
// (e.g. the row-normalised diffusion operator).
func PowerIteration(a *Matrix, iters int, tol float64) (float64, []float64, error) {
	if a.Rows != a.Cols {
		return 0, nil, errors.New("linalg: PowerIteration requires a square matrix")
	}
	n := a.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda float64
	for k := 0; k < iters; k++ {
		w, err := a.MulVec(v)
		if err != nil {
			return 0, nil, err
		}
		nw := Normalize(w)
		if nw == 0 {
			return 0, nil, errors.New("linalg: power iteration collapsed to zero vector")
		}
		newLambda := Dot(w, mustMulVec(a, w)) / Dot(w, w)
		if math.Abs(newLambda-lambda) < tol && k > 0 {
			return newLambda, w, nil
		}
		lambda = newLambda
		v = w
	}
	return lambda, v, nil
}

func mustMulVec(a *Matrix, x []float64) []float64 {
	out, err := a.MulVec(x)
	if err != nil {
		panic(err)
	}
	return out
}
