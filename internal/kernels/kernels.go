// Package kernels implements EnTK's kernel plugins (Section III-B2): an
// abstraction of a computational task that hides resource-specific
// peculiarities. A Spec names a science tool, resolves the right
// executable for each machine, and carries a cost model that predicts the
// tool's execution time from its parameters, core count, and machine —
// the simulation stand-in for actually running Amber or Gromacs.
package kernels

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"entk/internal/cluster"
)

// Params carries a kernel's numeric parameters (atom counts, simulated
// picoseconds, file sizes, ...). Missing keys fall back to the spec's
// defaults. It is an alias so plain map literals work across packages.
type Params = map[string]float64

// merged returns a copy of p merged over defaults. The result is always
// a fresh map (never one of the inputs), so callers may hand it out
// without aliasing the spec's defaults.
func merged(defaults, p Params) Params {
	out := make(Params, len(defaults)+len(p))
	for k, v := range defaults {
		out[k] = v
	}
	for k, v := range p {
		out[k] = v
	}
	return out
}

// CostFn predicts execution time for resolved params on cores of machine
// m. The params map is shared (it may be the caller's own map, passed
// through without copying on the hot path) and MUST be treated as
// read-only.
type CostFn func(p Params, cores int, m *cluster.Machine) time.Duration

// Spec is a kernel plugin definition.
type Spec struct {
	// Name is the registry key, e.g. "md.amber".
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Executables maps machine names to tool paths; "*" is the fallback.
	// This is the "kernel-specific peculiarities across resources" the
	// plugin hides.
	Executables map[string]string
	// DefaultParams supplies parameter defaults.
	DefaultParams Params
	// Cost is the execution-time model. Required.
	Cost CostFn
}

// Executable resolves the tool path for machine m, falling back to "*".
func (s *Spec) Executable(m *cluster.Machine) (string, error) {
	if exe, ok := s.Executables[m.Name]; ok {
		return exe, nil
	}
	if exe, ok := s.Executables["*"]; ok {
		return exe, nil
	}
	return "", fmt.Errorf("kernels: %s has no executable for %s", s.Name, m.Name)
}

// Duration evaluates the cost model with defaults applied.
func (s *Spec) Duration(p Params, cores int, m *cluster.Machine) (time.Duration, error) {
	if cores < 1 {
		return 0, fmt.Errorf("kernels: %s invoked with %d cores", s.Name, cores)
	}
	// Merge (into a fresh map) only when a default is actually missing
	// from p; in the common case — callers pass complete params — the
	// caller's map is passed straight through, which is why CostFn must
	// treat it as read-only. The spec's own DefaultParams map is never
	// handed out.
	resolved := p
	for k := range s.DefaultParams {
		if _, ok := p[k]; !ok {
			resolved = merged(s.DefaultParams, p)
			break
		}
	}
	d := s.Cost(resolved, cores, m)
	if d < 0 {
		return 0, fmt.Errorf("kernels: %s cost model returned negative duration", s.Name)
	}
	return d, nil
}

// Registry maps kernel names to specs. The zero value is unusable; use
// NewRegistry (which installs the builtins) or NewEmptyRegistry.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*Spec
}

// NewEmptyRegistry returns a registry with no kernels.
func NewEmptyRegistry() *Registry {
	return &Registry{specs: make(map[string]*Spec)}
}

// NewRegistry returns a registry pre-populated with the builtin kernels
// used by the paper's experiments.
func NewRegistry() *Registry {
	r := NewEmptyRegistry()
	for _, s := range Builtins() {
		if err := r.Register(s); err != nil {
			panic(err) // builtin table is static; failure is a programming error
		}
	}
	return r
}

// Register adds a spec, rejecting duplicates and malformed specs.
func (r *Registry) Register(s *Spec) error {
	if s.Name == "" {
		return fmt.Errorf("kernels: spec has no name")
	}
	if s.Cost == nil {
		return fmt.Errorf("kernels: %s has no cost model", s.Name)
	}
	if len(s.Executables) == 0 {
		return fmt.Errorf("kernels: %s has no executables", s.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("kernels: %s already registered", s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// Lookup returns the spec registered under name.
func (r *Registry) Lookup(name string) (*Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q", name)
	}
	return s, nil
}

// Names returns the sorted registered kernel names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Duration implements the pilot layer's CostModel interface: it predicts
// the runtime of kernel name with params on cores of m.
func (r *Registry) Duration(name string, params map[string]float64, cores int, m *cluster.Machine) (time.Duration, error) {
	s, err := r.Lookup(name)
	if err != nil {
		return 0, err
	}
	return s.Duration(params, cores, m)
}
