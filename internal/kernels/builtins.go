package kernels

import (
	"time"

	"entk/internal/cluster"
)

// Cost-model calibration constants. Absolute values are tuned so that the
// simulated experiments land in the same regimes the paper reports (MD
// tasks of minutes, exchanges and analyses of seconds); the *shapes* of the
// figures depend only on the functional forms, which follow the paper's
// descriptions (Section IV): MD cost ∝ ps·atoms/cores, exchange cost ∝
// replicas, CoCo analysis serial and ∝ simulations.
const (
	// amberSecPerPsAtom: Amber integrates ~12 ms per ps per atom per core.
	// 6 ps of 2881-atom alanine dipeptide on 1 core ≈ 207 s.
	amberSecPerPsAtom = 0.012
	// gromacsSecPerPsAtom: Gromacs is somewhat faster than Amber.
	gromacsSecPerPsAtom = 0.009
	// mdBaseSec is the fixed setup cost of an MD engine run.
	mdBaseSec = 2.0
	// exchangeSecPerReplica: the temperature-exchange step is a serial
	// pass over all replicas. 2560 replicas ≈ 5.6 s.
	exchangeSecPerReplica = 0.002
	// exchangeBaseSec is the fixed exchange setup cost.
	exchangeBaseSec = 0.5
	// cocoSecPerSim: CoCo reads every simulation's trajectory serially.
	// 1024 simulations ≈ 52 s.
	cocoSecPerSim = 0.05
	// cocoSecPerDim adds PCA cost per collective-coordinate dimension.
	cocoSecPerDim = 0.2
	// cocoBaseSec is the fixed CoCo startup cost.
	cocoBaseSec = 1.0
	// lsdmapSecPerPoint: diffusion-map cost per sampled configuration
	// (dense kernel matrix, but points are subsampled so near-linear).
	lsdmapSecPerPoint = 0.02
	// lsdmapBaseSec is the fixed LSDMap startup cost.
	lsdmapBaseSec = 2.0
)

// secs converts a float64 second count to a Duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Builtins returns the kernel plugins shipped with the toolkit; NewRegistry
// installs them. The set mirrors the plugins used in the paper's
// experiments plus the misc helpers of its character-count application.
func Builtins() []*Spec {
	return []*Spec{
		{
			Name:        "misc.mkfile",
			Description: "create a file of a given size (validation workload, stage 1)",
			Executables: map[string]string{"*": "/bin/dd"},
			DefaultParams: Params{
				"size_mb": 1,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				// One create + streaming write at FS bandwidth.
				write := p["size_mb"] / m.FSBandwidthMBps
				return m.FSLatency + secs(write)
			},
		},
		{
			Name:        "misc.ccount",
			Description: "count characters in a file (validation workload, stage 2)",
			Executables: map[string]string{"*": "/usr/bin/wc"},
			DefaultParams: Params{
				"size_mb": 1,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				read := p["size_mb"] / m.FSBandwidthMBps
				return m.FSLatency + secs(read)
			},
		},
		{
			Name:        "misc.sleep",
			Description: "sleep for a fixed number of seconds (synthetic workloads)",
			Executables: map[string]string{"*": "/bin/sleep"},
			DefaultParams: Params{
				"seconds": 1,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				return secs(p["seconds"])
			},
		},
		{
			Name:        "md.amber",
			Description: "Amber molecular dynamics engine",
			Executables: map[string]string{
				"xsede.comet":    "/opt/amber/bin/pmemd.MPI",
				"xsede.stampede": "/opt/apps/amber/bin/pmemd.MPI",
				"lsu.supermic":   "/usr/local/packages/amber/bin/pmemd.MPI",
				"*":              "pmemd",
			},
			DefaultParams: Params{
				"atoms": 2881, // solvated alanine dipeptide
				"ps":    6,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				// Domain decomposition: near-ideal strong scaling over the
				// task's cores, plus fixed engine setup.
				work := p["ps"] * p["atoms"] * amberSecPerPsAtom / float64(cores)
				return secs(mdBaseSec + work)
			},
		},
		{
			Name:        "md.gromacs",
			Description: "Gromacs molecular dynamics engine",
			Executables: map[string]string{
				"xsede.comet": "/opt/gromacs/bin/mdrun",
				"*":           "mdrun",
			},
			DefaultParams: Params{
				"atoms": 2881,
				"ps":    6,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				work := p["ps"] * p["atoms"] * gromacsSecPerPsAtom / float64(cores)
				return secs(mdBaseSec + work)
			},
		},
		{
			Name:        "md.remd_exchange",
			Description: "temperature-exchange step over all replicas (serial)",
			Executables: map[string]string{"*": "remd_exchange.py"},
			DefaultParams: Params{
				"replicas": 2,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				// Serial pass over every replica's energy; independent of
				// cores (Figures 5-6: constant for fixed replicas, growing
				// with replicas).
				return secs(exchangeBaseSec + exchangeSecPerReplica*p["replicas"])
			},
		},
		{
			Name:        "ana.coco",
			Description: "CoCo collective-coordinate analysis over all simulations (serial)",
			Executables: map[string]string{
				"xsede.stampede": "/opt/apps/coco/bin/pyCoCo",
				"*":              "pyCoCo",
			},
			DefaultParams: Params{
				"sims": 1,
				"dims": 3,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				// "The analysis algorithm is executed in serial and thus
				// depends on the number of simulations" (Section IV-C2).
				return secs(cocoBaseSec + cocoSecPerSim*p["sims"] + cocoSecPerDim*p["dims"])
			},
		},
		{
			Name:        "ana.lsdmap",
			Description: "LSDMap diffusion-map analysis (serial)",
			Executables: map[string]string{
				"xsede.comet": "/opt/lsdmap/bin/lsdmap",
				"*":           "lsdmap",
			},
			DefaultParams: Params{
				"points": 100,
			},
			Cost: func(p Params, cores int, m *cluster.Machine) time.Duration {
				return secs(lsdmapBaseSec + lsdmapSecPerPoint*p["points"])
			},
		},
	}
}
