package kernels

import (
	"strings"
	"testing"
	"time"

	"entk/internal/cluster"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewEmptyRegistry()
	spec := &Spec{
		Name:        "test.k",
		Executables: map[string]string{"*": "k"},
		Cost:        func(Params, int, *cluster.Machine) time.Duration { return time.Second },
	}
	if err := r.Register(spec); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("test.k")
	if err != nil || got != spec {
		t.Fatalf("Lookup = %v,%v", got, err)
	}
	if err := r.Register(spec); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := r.Lookup("missing"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewEmptyRegistry()
	cost := func(Params, int, *cluster.Machine) time.Duration { return 0 }
	bad := []*Spec{
		{Executables: map[string]string{"*": "x"}, Cost: cost},
		{Name: "a", Cost: cost},
		{Name: "b", Executables: map[string]string{"*": "x"}},
	}
	for i, s := range bad {
		if err := r.Register(s); err == nil {
			t.Errorf("case %d: malformed spec accepted", i)
		}
	}
}

func TestBuiltinsAllRegistered(t *testing.T) {
	r := NewRegistry()
	want := []string{
		"ana.coco", "ana.lsdmap",
		"md.amber", "md.gromacs", "md.remd_exchange",
		"misc.ccount", "misc.mkfile", "misc.sleep",
	}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestExecutableResolution(t *testing.T) {
	r := NewRegistry()
	amber, _ := r.Lookup("md.amber")
	exe, err := amber.Executable(&cluster.Comet)
	if err != nil || !strings.Contains(exe, "amber") {
		t.Errorf("comet amber exe = %q, %v", exe, err)
	}
	// Unknown machine falls back to "*".
	other := &cluster.Machine{Name: "other.site", Nodes: 1, CoresPerNode: 1, FSBandwidthMBps: 1}
	exe, err = amber.Executable(other)
	if err != nil || exe != "pmemd" {
		t.Errorf("fallback exe = %q, %v", exe, err)
	}
	noFallback := &Spec{
		Name:        "x",
		Executables: map[string]string{"xsede.comet": "only-comet"},
		Cost:        func(Params, int, *cluster.Machine) time.Duration { return 0 },
	}
	if _, err := noFallback.Executable(other); err == nil {
		t.Error("missing executable accepted")
	}
}

func TestDurationDefaultsAndOverrides(t *testing.T) {
	r := NewRegistry()
	m := &cluster.SuperMIC
	// Default amber params: 2881 atoms, 6 ps, 1 core.
	d1, err := r.Duration("md.amber", nil, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	want := secs(mdBaseSec + 6*2881*amberSecPerPsAtom)
	if d1 != want {
		t.Errorf("default amber duration = %v, want %v", d1, want)
	}
	// Halving ps roughly halves the work term.
	d2, err := r.Duration("md.amber", Params{"ps": 3}, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	if d2 >= d1 {
		t.Errorf("ps=3 (%v) not cheaper than ps=6 (%v)", d2, d1)
	}
	if _, err := r.Duration("md.amber", nil, 0, m); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := r.Duration("nope", nil, 1, m); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestMDStrongScalingShape(t *testing.T) {
	r := NewRegistry()
	m := &cluster.Stampede
	prev, _ := r.Duration("md.amber", Params{"ps": 6}, 1, m)
	for _, cores := range []int{2, 4, 8, 16, 32, 64} {
		d, err := r.Duration("md.amber", Params{"ps": 6}, cores, m)
		if err != nil {
			t.Fatal(err)
		}
		if d >= prev {
			t.Errorf("amber on %d cores (%v) not faster than on %d (%v)", cores, d, cores/2, prev)
		}
		prev = d
	}
}

func TestExchangeCostGrowsWithReplicas(t *testing.T) {
	r := NewRegistry()
	m := &cluster.SuperMIC
	d20, _ := r.Duration("md.remd_exchange", Params{"replicas": 20}, 1, m)
	d2560, _ := r.Duration("md.remd_exchange", Params{"replicas": 2560}, 1, m)
	if d2560 <= d20 {
		t.Errorf("exchange(2560)=%v not greater than exchange(20)=%v", d2560, d20)
	}
	// Independent of cores: serial step.
	d1c, _ := r.Duration("md.remd_exchange", Params{"replicas": 100}, 1, m)
	d64c, _ := r.Duration("md.remd_exchange", Params{"replicas": 100}, 64, m)
	if d1c != d64c {
		t.Errorf("exchange varies with cores: %v vs %v", d1c, d64c)
	}
}

func TestCoCoCostSerialInSims(t *testing.T) {
	r := NewRegistry()
	m := &cluster.Stampede
	d64, _ := r.Duration("ana.coco", Params{"sims": 64}, 1, m)
	d1024, _ := r.Duration("ana.coco", Params{"sims": 1024}, 1, m)
	ratio := float64(d1024-secs(cocoBaseSec+3*cocoSecPerDim)) / float64(d64-secs(cocoBaseSec+3*cocoSecPerDim))
	if ratio < 15 || ratio > 17 { // 1024/64 = 16
		t.Errorf("coco cost ratio = %v, want ~16", ratio)
	}
}

func TestFileKernelsScaleWithSizeAndMachine(t *testing.T) {
	r := NewRegistry()
	slow := &cluster.Machine{Name: "slow", Nodes: 1, CoresPerNode: 1, FSBandwidthMBps: 10, FSLatency: time.Millisecond}
	fast := &cluster.Machine{Name: "fast", Nodes: 1, CoresPerNode: 1, FSBandwidthMBps: 1000, FSLatency: time.Millisecond}
	dSlow, _ := r.Duration("misc.mkfile", Params{"size_mb": 100}, 1, slow)
	dFast, _ := r.Duration("misc.mkfile", Params{"size_mb": 100}, 1, fast)
	if dSlow <= dFast {
		t.Errorf("mkfile on slow fs (%v) not slower than fast fs (%v)", dSlow, dFast)
	}
	small, _ := r.Duration("misc.ccount", Params{"size_mb": 1}, 1, slow)
	big, _ := r.Duration("misc.ccount", Params{"size_mb": 50}, 1, slow)
	if big <= small {
		t.Errorf("ccount(50MB)=%v not slower than ccount(1MB)=%v", big, small)
	}
}

func TestSleepKernelExact(t *testing.T) {
	r := NewRegistry()
	d, err := r.Duration("misc.sleep", Params{"seconds": 7.5}, 1, &cluster.Local)
	if err != nil || d != 7500*time.Millisecond {
		t.Errorf("sleep = %v, %v", d, err)
	}
}

func TestNegativeCostRejected(t *testing.T) {
	r := NewEmptyRegistry()
	r.Register(&Spec{
		Name:        "bad.cost",
		Executables: map[string]string{"*": "x"},
		Cost:        func(Params, int, *cluster.Machine) time.Duration { return -time.Second },
	})
	if _, err := r.Duration("bad.cost", nil, 1, &cluster.Local); err == nil {
		t.Error("negative duration accepted")
	}
}
