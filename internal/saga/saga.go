// Package saga provides a standardised job-submission API in the spirit of
// SAGA and the Job Submission Description Language (JSDL), which the paper
// adopts for portability across HPC machines (Section III-C1). A
// JobDescription is adaptor-agnostic; Services translate it for a concrete
// backend — the simulated batch system of an HPC machine, or an immediate
// "fork" backend for login-node helpers.
package saga

import (
	"fmt"
	"sync"
	"time"

	"entk/internal/batch"
	"entk/internal/cluster"
	"entk/internal/vclock"
)

// JobDescription mirrors the JSDL attributes the toolkit needs.
type JobDescription struct {
	// Executable is the command to launch (informational in simulation).
	Executable string
	// Arguments are the command arguments.
	Arguments []string
	// TotalCPUCount is the number of cores the job needs.
	TotalCPUCount int
	// WallTimeLimit is the requested walltime.
	WallTimeLimit time.Duration
	// Queue is the batch queue to submit to.
	Queue string
	// Project is the allocation to charge.
	Project string
	// WorkingDirectory is the job's working directory (informational).
	WorkingDirectory string
}

// Validate checks the description for obvious errors.
func (jd *JobDescription) Validate() error {
	switch {
	case jd.Executable == "":
		return fmt.Errorf("saga: job description has no executable")
	case jd.TotalCPUCount <= 0:
		return fmt.Errorf("saga: job %q requests %d cpus", jd.Executable, jd.TotalCPUCount)
	case jd.WallTimeLimit <= 0:
		return fmt.Errorf("saga: job %q has non-positive walltime", jd.Executable)
	}
	return nil
}

// State is a SAGA job state.
type State int

const (
	// New: created, not yet submitted.
	New State = iota
	// Pending: submitted, waiting in the queue.
	Pending
	// Running: executing on the resource.
	Running
	// Done: finished successfully.
	Done
	// Canceled: cancelled by the user.
	Canceled
	// Failed: terminated abnormally (e.g. walltime exceeded).
	Failed
)

func (s State) String() string {
	switch s {
	case New:
		return "NEW"
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Done:
		return "DONE"
	case Canceled:
		return "CANCELED"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Final reports whether s is terminal.
func (s State) Final() bool { return s == Done || s == Canceled || s == Failed }

// Job is a submitted job, independent of backend.
type Job interface {
	// ID returns a backend-scoped identifier.
	ID() string
	// State returns the current state.
	State() State
	// WaitRunning blocks until the job leaves Pending (it may then be
	// Running or already final).
	WaitRunning()
	// WaitFinal blocks until the job is terminal and returns that state.
	WaitFinal() State
	// Cancel requests cancellation.
	Cancel()
	// Kill terminates the job abnormally on the resource side, as a
	// walltime kill or node failure would: the job ends Failed, and —
	// unlike Cancel — no client network latency is charged, so the death
	// lands at exactly the caller's instant. Fault injection uses it.
	Kill()
	// SignalDone marks the payload complete; the simulation stand-in for
	// the job script exiting with status 0.
	SignalDone()
}

// Service creates jobs on one backend, like saga.job.Service.
type Service interface {
	// URL identifies the service endpoint, e.g. "slurmsim://xsede.comet".
	URL() string
	// Submit validates jd and submits it.
	Submit(jd JobDescription) (Job, error)
}

// ---------------------------------------------------------------------------
// Batch adaptor: jobs run on a simulated HPC batch system.

// BatchService adapts a batch.System to the Service interface. Every
// control operation pays the machine's network latency, which is where the
// constant component of the toolkit overhead comes from.
type BatchService struct {
	v   vclock.Clock
	sys *batch.System
}

// NewBatchService returns a Service submitting to sys.
func NewBatchService(v vclock.Clock, sys *batch.System) *BatchService {
	return &BatchService{v: v, sys: sys}
}

// URL identifies the simulated endpoint.
func (s *BatchService) URL() string { return "slurmsim://" + s.sys.Machine().Name }

// Submit validates and submits the description to the batch system after a
// network round trip.
func (s *BatchService) Submit(jd JobDescription) (Job, error) {
	if err := jd.Validate(); err != nil {
		return nil, err
	}
	s.v.Sleep(2 * s.sys.Machine().NetLatency) // request + ack
	bj, err := s.sys.Submit(batch.Request{
		Name:     jd.Executable,
		Cores:    jd.TotalCPUCount,
		Walltime: jd.WallTimeLimit,
		Queue:    jd.Queue,
		Project:  jd.Project,
	})
	if err != nil {
		return nil, err
	}
	return &batchJob{v: s.v, machine: s.sys.Machine(), job: bj}, nil
}

type batchJob struct {
	v       vclock.Clock
	machine *cluster.Machine
	job     *batch.Job
}

func (j *batchJob) ID() string { return fmt.Sprintf("[%s]-[%d]", j.machine.Name, j.job.ID) }

func (j *batchJob) State() State {
	switch j.job.State() {
	case batch.Pending:
		return Pending
	case batch.Running:
		return Running
	case batch.Completed:
		return Done
	case batch.Cancelled:
		return Canceled
	case batch.TimedOut:
		return Failed
	default:
		return New
	}
}

func (j *batchJob) WaitRunning() { j.job.WaitStart() }

func (j *batchJob) WaitFinal() State {
	j.job.WaitEnd()
	return j.State()
}

func (j *batchJob) Cancel() {
	j.v.Sleep(j.machine.NetLatency)
	j.job.Cancel()
}

func (j *batchJob) Kill() { j.job.Expire() }

func (j *batchJob) SignalDone() { j.job.Finish() }

// ---------------------------------------------------------------------------
// Fork adaptor: jobs start immediately, e.g. on a login node or laptop.

// ForkService runs jobs with no queue: Submit starts them immediately.
// Jobs remain Running until SignalDone or Cancel; the walltime limit is
// still enforced.
type ForkService struct {
	v       vclock.Clock
	machine *cluster.Machine
	mu      sync.Mutex
	nextID  int
}

// NewForkService returns an immediate-execution Service on machine.
func NewForkService(v vclock.Clock, machine *cluster.Machine) *ForkService {
	return &ForkService{v: v, machine: machine}
}

// URL identifies the fork endpoint.
func (s *ForkService) URL() string { return "fork://" + s.machine.Name }

// Submit validates jd and starts it immediately.
func (s *ForkService) Submit(jd JobDescription) (Job, error) {
	if err := jd.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	j := &forkJob{
		v:     s.v,
		id:    fmt.Sprintf("[fork://%s]-[%d]", s.machine.Name, id),
		state: Running,
		ev:    vclock.NewEvent(s.v, fmt.Sprintf("fork job %d final", id)),
	}
	// Enforce walltime like a real backend would.
	s.v.Go(func() {
		s.v.Sleep(jd.WallTimeLimit)
		j.finish(Failed)
	})
	return j, nil
}

type forkJob struct {
	v     vclock.Clock
	id    string
	mu    sync.Mutex
	state State
	ev    *vclock.Event
}

func (j *forkJob) ID() string { return j.id }

func (j *forkJob) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *forkJob) WaitRunning() {} // fork jobs start instantly

func (j *forkJob) WaitFinal() State {
	j.ev.Wait()
	return j.State()
}

func (j *forkJob) Cancel()     { j.finish(Canceled) }
func (j *forkJob) Kill()       { j.finish(Failed) }
func (j *forkJob) SignalDone() { j.finish(Done) }

func (j *forkJob) finish(st State) {
	j.mu.Lock()
	if j.state.Final() {
		j.mu.Unlock()
		return
	}
	j.state = st
	j.mu.Unlock()
	j.ev.Fire()
}
