package saga

import (
	"strings"
	"testing"
	"time"

	"entk/internal/batch"
	"entk/internal/cluster"
	"entk/internal/vclock"
)

func testMachine() *cluster.Machine {
	return &cluster.Machine{
		Name:             "test.machine",
		Nodes:            4,
		CoresPerNode:     10,
		FSBandwidthMBps:  100,
		NetLatency:       50 * time.Millisecond,
		QueueWaitBase:    10 * time.Second,
		QueueWaitPerNode: time.Second,
	}
}

func TestJobDescriptionValidate(t *testing.T) {
	good := JobDescription{Executable: "agent", TotalCPUCount: 4, WallTimeLimit: time.Hour}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []JobDescription{
		{TotalCPUCount: 4, WallTimeLimit: time.Hour},
		{Executable: "x", TotalCPUCount: 0, WallTimeLimit: time.Hour},
		{Executable: "x", TotalCPUCount: 4},
	}
	for i, jd := range bad {
		if err := jd.Validate(); err == nil {
			t.Errorf("case %d: invalid description accepted", i)
		}
	}
}

func TestStateStringsAndFinal(t *testing.T) {
	finals := map[State]bool{
		New: false, Pending: false, Running: false,
		Done: true, Canceled: true, Failed: true,
	}
	for s, want := range finals {
		if s.Final() != want {
			t.Errorf("%v.Final() = %v", s, s.Final())
		}
		if s.String() == "" {
			t.Errorf("%d has empty string", s)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state string empty")
	}
}

func TestBatchServiceLifecycle(t *testing.T) {
	v := vclock.NewVirtual()
	m := testMachine()
	sys, err := batch.NewSystem(v, m, batch.FIFO)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewBatchService(v, sys)
	if !strings.Contains(svc.URL(), m.Name) {
		t.Errorf("URL = %q", svc.URL())
	}
	v.Run(func() {
		start := v.Now()
		j, err := svc.Submit(JobDescription{
			Executable: "pilot-agent", TotalCPUCount: 15, WallTimeLimit: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Submit pays one network round trip.
		if got := v.Now() - start; got != 100*time.Millisecond {
			t.Errorf("submit latency = %v, want 100ms", got)
		}
		if j.State() != Pending {
			t.Errorf("state = %v, want PENDING", j.State())
		}
		if !strings.Contains(j.ID(), m.Name) {
			t.Errorf("ID = %q", j.ID())
		}
		j.WaitRunning()
		if j.State() != Running {
			t.Errorf("state = %v, want RUNNING", j.State())
		}
		v.Sleep(5 * time.Second)
		j.SignalDone()
		if st := j.WaitFinal(); st != Done {
			t.Errorf("final = %v, want DONE", st)
		}
	})
}

func TestBatchServiceRejectsInvalid(t *testing.T) {
	v := vclock.NewVirtual()
	sys, _ := batch.NewSystem(v, testMachine(), batch.FIFO)
	svc := NewBatchService(v, sys)
	v.Run(func() {
		if _, err := svc.Submit(JobDescription{}); err == nil {
			t.Error("empty description accepted")
		}
		// Valid JSDL but impossible on this machine.
		if _, err := svc.Submit(JobDescription{
			Executable: "x", TotalCPUCount: 10000, WallTimeLimit: time.Hour,
		}); err == nil {
			t.Error("oversized job accepted")
		}
	})
}

func TestBatchServiceCancelAndWalltime(t *testing.T) {
	v := vclock.NewVirtual()
	sys, _ := batch.NewSystem(v, testMachine(), batch.FIFO)
	svc := NewBatchService(v, sys)
	v.Run(func() {
		j, _ := svc.Submit(JobDescription{Executable: "a", TotalCPUCount: 5, WallTimeLimit: time.Minute})
		j.WaitRunning()
		j.Cancel()
		if st := j.WaitFinal(); st != Canceled {
			t.Errorf("final = %v, want CANCELED", st)
		}

		k, _ := svc.Submit(JobDescription{Executable: "b", TotalCPUCount: 5, WallTimeLimit: time.Minute})
		k.WaitRunning()
		if st := k.WaitFinal(); st != Failed {
			t.Errorf("walltime final = %v, want FAILED", st)
		}
	})
}

func TestForkServiceImmediateStart(t *testing.T) {
	v := vclock.NewVirtual()
	svc := NewForkService(v, testMachine())
	if !strings.HasPrefix(svc.URL(), "fork://") {
		t.Errorf("URL = %q", svc.URL())
	}
	v.Run(func() {
		j, err := svc.Submit(JobDescription{Executable: "tool", TotalCPUCount: 1, WallTimeLimit: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		j.WaitRunning() // returns immediately
		if j.State() != Running {
			t.Errorf("state = %v, want RUNNING", j.State())
		}
		j.SignalDone()
		if st := j.WaitFinal(); st != Done {
			t.Errorf("final = %v", st)
		}
		// Finish transitions are sticky.
		j.Cancel()
		if j.State() != Done {
			t.Error("cancel after done changed state")
		}

		if _, err := svc.Submit(JobDescription{}); err == nil {
			t.Error("fork accepted invalid description")
		}
	})
}

func TestForkServiceWalltimeEnforced(t *testing.T) {
	v := vclock.NewVirtual()
	svc := NewForkService(v, testMachine())
	v.Run(func() {
		j, _ := svc.Submit(JobDescription{Executable: "t", TotalCPUCount: 1, WallTimeLimit: 10 * time.Second})
		if st := j.WaitFinal(); st != Failed {
			t.Errorf("final = %v, want FAILED after walltime", st)
		}
		if got := v.Now(); got != 10*time.Second {
			t.Errorf("walltime kill at %v, want 10s", got)
		}
	})
}
