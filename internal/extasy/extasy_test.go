package extasy

import (
	"testing"

	"entk/internal/vclock"
)

func validConfig(w Workflow) *Config {
	return &Config{
		Workload: WorkloadConfig{
			Workflow:    w,
			Simulations: 8,
			Iterations:  2,
			Frames:      150,
			Seed:        5,
		},
		Resource: ResourceConfig{Resource: "xsede.stampede", Cores: 8},
	}
}

func TestParseConfig(t *testing.T) {
	raw := []byte(`{
		"workload": {"workflow": "coco-amber", "simulations": 4, "iterations": 2},
		"resource": {"resource": "xsede.stampede", "cores": 4}
	}`)
	cfg, err := ParseConfig(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.Workflow != CoCoAmber || cfg.Resource.Cores != 4 {
		t.Errorf("parsed = %+v", cfg)
	}
	if _, err := ParseConfig([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ParseConfig([]byte(`{"workload":{"workflow":"nope","simulations":1,"iterations":1},"resource":{"resource":"r","cores":1}}`)); err == nil {
		t.Error("unknown workflow accepted")
	}
	if _, err := ParseConfig([]byte(`{"workload":{"workflow":"coco-amber","simulations":0,"iterations":1},"resource":{"resource":"r","cores":1}}`)); err == nil {
		t.Error("zero simulations accepted")
	}
	if _, err := ParseConfig([]byte(`{"workload":{"workflow":"coco-amber","simulations":1,"iterations":1},"resource":{"cores":0}}`)); err == nil {
		t.Error("missing resource accepted")
	}
}

func TestDefaults(t *testing.T) {
	cfg := validConfig(CoCoAmber)
	cfg.Workload.Frames = 0
	full := cfg.withDefaults()
	if full.Workload.PsPerIter != 0.6 || full.Workload.Frames != 200 ||
		full.Workload.TempK != 300 || full.Resource.WalltimeMin != 24*60 {
		t.Errorf("defaults = %+v", full)
	}
}

func TestCoCoAmberCampaign(t *testing.T) {
	v := vclock.NewVirtual()
	var res *Result
	var err error
	v.Run(func() {
		res, err = Run(v, validConfig(CoCoAmber))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Phase("simulation").Tasks != 16 {
		t.Errorf("sim tasks = %d, want 16", res.Report.Phase("simulation").Tasks)
	}
	if res.AnalysisOutputs != 2 {
		t.Errorf("analysis outputs = %d, want 2", res.AnalysisOutputs)
	}
	if res.FramesSampled != 8*2*150 {
		t.Errorf("frames = %d, want 2400", res.FramesSampled)
	}
	if res.BasinLeft <= 0 {
		t.Errorf("basin fractions = %v/%v", res.BasinLeft, res.BasinRight)
	}
}

func TestDMdMDCampaign(t *testing.T) {
	v := vclock.NewVirtual()
	var res *Result
	var err error
	v.Run(func() {
		res, err = Run(v, validConfig(DMdMD))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Phase("analysis").Tasks != 2 {
		t.Errorf("analysis tasks = %d, want 2", res.Report.Phase("analysis").Tasks)
	}
	if res.FramesSampled == 0 {
		t.Error("no frames sampled")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	v := vclock.NewVirtual()
	v.Run(func() {
		bad := validConfig(CoCoAmber)
		bad.Workload.Workflow = "bogus"
		if _, err := Run(v, bad); err == nil {
			t.Error("invalid workflow accepted at Run")
		}
		unknown := validConfig(CoCoAmber)
		unknown.Resource.Resource = "no.such.machine"
		if _, err := Run(v, unknown); err == nil {
			t.Error("unknown resource accepted at Run")
		}
	})
}
